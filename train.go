package smol

import (
	"fmt"
	"io"
	"math/rand"

	"smol/internal/data"
	"smol/internal/img"
	"smol/internal/nn"
	"smol/internal/tensor"
)

// Classifier couples a trained model with the metadata needed to run it.
type Classifier struct {
	Model    *nn.Model
	Config   nn.ResNetConfig
	InputRes int
}

// TrainOptions configures TrainClassifier.
type TrainOptions struct {
	// Variant is one of nn.Variants(): "resnet-a" (cheapest), "resnet-b",
	// "resnet-c" (most accurate). Empty means resnet-a.
	Variant string
	// Epochs of SGD (0 = 3).
	Epochs int
	// LowResAware enables the augmented training of §5.3: inputs are
	// randomly downsampled to LowRes and upsampled back, teaching the
	// model to tolerate upscaled thumbnails.
	LowResAware bool
	// LowRes is the thumbnail resolution for augmentation (0 = half the
	// input resolution).
	LowRes int
	// Seed fixes initialization and shuffling.
	Seed int64
}

// TrainClassifier trains a micro-ResNet on labelled images. All images
// must be square with identical dimensions.
func TrainClassifier(images []LabeledImage, numClasses int, opts TrainOptions) (*Classifier, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("smol: no training images")
	}
	res := images[0].Image.W
	if images[0].Image.H != res {
		return nil, fmt.Errorf("smol: training images must be square")
	}
	variant := opts.Variant
	if variant == "" {
		variant = nn.VariantA
	}
	cfg, err := nn.VariantConfig(variant, numClasses, res)
	if err != nil {
		return nil, err
	}
	model, err := nn.NewResNet(rand.New(rand.NewSource(opts.Seed)), cfg)
	if err != nil {
		return nil, err
	}
	samples := make([]nn.Sample, len(images))
	for i, li := range images {
		if li.Image.W != res || li.Image.H != res {
			return nil, fmt.Errorf("smol: image %d has mismatched dimensions", i)
		}
		if li.Label < 0 || li.Label >= numClasses {
			return nil, fmt.Errorf("smol: image %d label %d out of range", i, li.Label)
		}
		samples[i] = data.ToSample(li.Image, li.Label)
	}
	epochs := opts.Epochs
	if epochs <= 0 {
		epochs = 3
	}
	tc := nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, LR: 0.06, Momentum: 0.9, WeightDecay: 1e-4,
		Seed: opts.Seed + 1,
	}
	if opts.LowResAware {
		low := opts.LowRes
		if low <= 0 {
			low = res / 2
		}
		tc.Augment = data.DownUpAugmenter(low, 0.5)
	}
	nn.Fit(model, samples, tc)
	return &Classifier{Model: model, Config: cfg, InputRes: res}, nil
}

// LabeledImage pairs an image with its class label.
type LabeledImage struct {
	Image *img.Image
	Label int
}

// ZooSpec names one zoo entry to train: a variant at an input resolution.
type ZooSpec struct {
	// Variant is one of nn.Variants(); empty means resnet-a.
	Variant string
	// InputRes is the square training/serving resolution; zero means the
	// dataset's native resolution.
	InputRes int
}

// ZooTrainOptions configures TrainZoo.
type ZooTrainOptions struct {
	// Specs lists the entries to train. Empty means a default 3-entry
	// spread: resnet-b at native resolution (most accurate), resnet-a at
	// native resolution, and resnet-a at half resolution when that is a
	// legal input size (cheapest).
	Specs []ZooSpec
	// Epochs of SGD per entry (0 = 3).
	Epochs int
	// ValFraction is the trailing fraction of images held out to measure
	// each entry's validation accuracy (0 = 0.2). Accuracy is measured at
	// the entry's own input resolution, so reduced-resolution entries pay
	// their real accuracy cost.
	ValFraction float64
	// LowResAware applies the augmented training of §5.3 to every entry.
	LowResAware bool
	// Int8 additionally quantizes every trained entry to the int8 tier
	// (see QuantizeZoo): each entry gains a "/int8" twin calibrated on the
	// held-out split and carrying its own measured accuracy, so relaxed
	// QoS floors can route to the fast tier while strict floors keep f32.
	Int8 bool
	// Seed fixes initialization and shuffling (entry i trains with Seed+i).
	Seed int64
}

// TrainZoo trains a model zoo: each requested (variant, resolution) entry
// is trained on the head of images and scored on the held-out tail, so the
// zoo carries measured — not assumed — validation accuracies for the
// serving planner to trade against throughput. All images must be square
// with identical dimensions.
func TrainZoo(images []LabeledImage, numClasses int, opts ZooTrainOptions) (*Zoo, error) {
	if len(images) < 2 {
		return nil, fmt.Errorf("smol: need at least 2 images to train and validate a zoo")
	}
	res := images[0].Image.W
	specs := opts.Specs
	if len(specs) == 0 {
		specs = []ZooSpec{{Variant: "resnet-b"}, {Variant: "resnet-a"}}
		if half := res / 2; half >= 8 && half%4 == 0 {
			specs = append(specs, ZooSpec{Variant: "resnet-a", InputRes: half})
		}
	}
	valFrac := opts.ValFraction
	if valFrac <= 0 || valFrac >= 1 {
		valFrac = 0.2
	}
	split := len(images) - int(float64(len(images))*valFrac)
	if split < 1 {
		split = 1
	}
	if split == len(images) {
		split = len(images) - 1
	}
	train, val := images[:split], images[split:]

	z := NewZoo()
	for i, spec := range specs {
		variant := spec.Variant
		if variant == "" {
			variant = "resnet-a"
		}
		entryRes := spec.InputRes
		if entryRes == 0 {
			entryRes = res
		}
		clf, err := TrainClassifier(resizeLabeled(train, entryRes), numClasses, TrainOptions{
			Variant: variant, Epochs: opts.Epochs,
			LowResAware: opts.LowResAware, Seed: opts.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("smol: training zoo entry %s@%d: %w", variant, entryRes, err)
		}
		acc := clf.Evaluate(resizeLabeled(val, entryRes))
		if err := z.AddClassifier(clf, variant, acc); err != nil {
			return nil, err
		}
	}
	if opts.Int8 {
		if err := QuantizeZoo(z, val); err != nil {
			return nil, err
		}
	}
	return z, nil
}

// QuantizeZoo appends an int8 twin for every full-precision entry in the
// zoo: each entry's compiled plan is calibrated by streaming the held-out
// images through it, lowered to the per-channel int8 tier, and scored on
// the same held-out split — so the planner trades the tier's real measured
// accuracy, not an assumed one, against its throughput. The twin's
// accuracy is additionally capped strictly below its parent's: the cost
// model breaks throughput ties by accuracy, so a QoS floor set exactly at
// the f32 accuracy must never legally route to int8. Entries that do not
// compile or quantize are skipped (reference-path models have no int8
// tier); entries already quantized are left alone.
func QuantizeZoo(z *Zoo, heldOut []LabeledImage) error {
	if z == nil || z.Len() == 0 {
		return fmt.Errorf("smol: cannot quantize an empty zoo")
	}
	if len(heldOut) == 0 {
		return fmt.Errorf("smol: QuantizeZoo needs held-out images for calibration and scoring")
	}
	for _, e := range z.Entries() {
		if e.Int8() {
			continue
		}
		plan, err := nn.Compile(e.Model)
		if err != nil {
			continue
		}
		batches, labels := labeledBatches(resizeLabeled(heldOut, e.InputRes), 32)
		cal, err := plan.Calibrate(batches)
		if err != nil {
			return fmt.Errorf("smol: calibrating %s: %w", e.Name(), err)
		}
		qp, err := nn.Quantize(plan, cal)
		if err != nil {
			continue
		}
		correct, total := 0, 0
		for bi, b := range batches {
			for i, p := range qp.Predict(b) {
				if p == labels[bi][i] {
					correct++
				}
				total++
			}
		}
		acc := float64(correct) / float64(total)
		if e.Accuracy > 0 && acc > e.Accuracy-accuracyTieMargin {
			acc = e.Accuracy - accuracyTieMargin
		}
		if acc < 0 {
			acc = 0
		}
		if err := z.Add(ZooEntry{
			Variant: e.Variant, InputRes: e.InputRes, Accuracy: acc,
			Model: e.Model, Config: e.Config,
			Precision: PrecisionInt8, Calib: cal,
		}); err != nil {
			return err
		}
	}
	return nil
}

// accuracyTieMargin keeps an int8 twin's accuracy strictly below its f32
// parent's, so exact-floor QoS targets stay bit-identical full precision.
const accuracyTieMargin = 1e-6

// labeledBatches lowers labelled same-size images into batched input
// tensors (the same pixel scaling training used) plus per-batch labels.
func labeledBatches(images []LabeledImage, batchSize int) ([]*tensor.Tensor, [][]int) {
	var batches []*tensor.Tensor
	var labels [][]int
	for start := 0; start < len(images); start += batchSize {
		end := start + batchSize
		if end > len(images) {
			end = len(images)
		}
		n := end - start
		h, w := images[start].Image.H, images[start].Image.W
		batch := tensor.New(n, 3, h, w)
		lab := make([]int, n)
		for bi := 0; bi < n; bi++ {
			s := data.ToSample(images[start+bi].Image, images[start+bi].Label)
			copy(batch.Data[bi*3*h*w:(bi+1)*3*h*w], s.X.Data)
			lab[bi] = s.Label
		}
		batches = append(batches, batch)
		labels = append(labels, lab)
	}
	return batches, labels
}

// resizeLabeled resizes a labelled set to a square resolution, passing the
// original slice through when no resize is needed.
func resizeLabeled(images []LabeledImage, res int) []LabeledImage {
	if len(images) == 0 || (images[0].Image.W == res && images[0].Image.H == res) {
		return images
	}
	out := make([]LabeledImage, len(images))
	for i, li := range images {
		out[i] = LabeledImage{Image: li.Image.ResizeBilinear(res, res), Label: li.Label}
	}
	return out
}

// Evaluate returns the classifier's accuracy on labelled images.
func (c *Classifier) Evaluate(images []LabeledImage) float64 {
	samples := make([]nn.Sample, len(images))
	for i, li := range images {
		samples[i] = data.ToSample(li.Image, li.Label)
	}
	return nn.Evaluate(c.Model, samples, 64)
}

// Save serializes the classifier.
func (c *Classifier) Save(w io.Writer) error { return nn.SaveModel(w, c.Config, c.Model) }

// LoadClassifier reads a classifier saved with Save.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	cfg, m, err := nn.LoadModel(r)
	if err != nil {
		return nil, err
	}
	return &Classifier{Model: m, Config: cfg, InputRes: cfg.InputRes}, nil
}
