package smol

import (
	"fmt"
	"io"
	"math/rand"

	"smol/internal/data"
	"smol/internal/img"
	"smol/internal/nn"
)

// Classifier couples a trained model with the metadata needed to run it.
type Classifier struct {
	Model    *nn.Model
	Config   nn.ResNetConfig
	InputRes int
}

// TrainOptions configures TrainClassifier.
type TrainOptions struct {
	// Variant is one of nn.Variants(): "resnet-a" (cheapest), "resnet-b",
	// "resnet-c" (most accurate). Empty means resnet-a.
	Variant string
	// Epochs of SGD (0 = 3).
	Epochs int
	// LowResAware enables the augmented training of §5.3: inputs are
	// randomly downsampled to LowRes and upsampled back, teaching the
	// model to tolerate upscaled thumbnails.
	LowResAware bool
	// LowRes is the thumbnail resolution for augmentation (0 = half the
	// input resolution).
	LowRes int
	// Seed fixes initialization and shuffling.
	Seed int64
}

// TrainClassifier trains a micro-ResNet on labelled images. All images
// must be square with identical dimensions.
func TrainClassifier(images []LabeledImage, numClasses int, opts TrainOptions) (*Classifier, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("smol: no training images")
	}
	res := images[0].Image.W
	if images[0].Image.H != res {
		return nil, fmt.Errorf("smol: training images must be square")
	}
	variant := opts.Variant
	if variant == "" {
		variant = nn.VariantA
	}
	cfg, err := nn.VariantConfig(variant, numClasses, res)
	if err != nil {
		return nil, err
	}
	model, err := nn.NewResNet(rand.New(rand.NewSource(opts.Seed)), cfg)
	if err != nil {
		return nil, err
	}
	samples := make([]nn.Sample, len(images))
	for i, li := range images {
		if li.Image.W != res || li.Image.H != res {
			return nil, fmt.Errorf("smol: image %d has mismatched dimensions", i)
		}
		if li.Label < 0 || li.Label >= numClasses {
			return nil, fmt.Errorf("smol: image %d label %d out of range", i, li.Label)
		}
		samples[i] = data.ToSample(li.Image, li.Label)
	}
	epochs := opts.Epochs
	if epochs <= 0 {
		epochs = 3
	}
	tc := nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, LR: 0.06, Momentum: 0.9, WeightDecay: 1e-4,
		Seed: opts.Seed + 1,
	}
	if opts.LowResAware {
		low := opts.LowRes
		if low <= 0 {
			low = res / 2
		}
		tc.Augment = data.DownUpAugmenter(low, 0.5)
	}
	nn.Fit(model, samples, tc)
	return &Classifier{Model: model, Config: cfg, InputRes: res}, nil
}

// LabeledImage pairs an image with its class label.
type LabeledImage struct {
	Image *img.Image
	Label int
}

// Evaluate returns the classifier's accuracy on labelled images.
func (c *Classifier) Evaluate(images []LabeledImage) float64 {
	samples := make([]nn.Sample, len(images))
	for i, li := range images {
		samples[i] = data.ToSample(li.Image, li.Label)
	}
	return nn.Evaluate(c.Model, samples, 64)
}

// Save serializes the classifier.
func (c *Classifier) Save(w io.Writer) error { return nn.SaveModel(w, c.Config, c.Model) }

// LoadClassifier reads a classifier saved with Save.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	cfg, m, err := nn.LoadModel(r)
	if err != nil {
		return nil, err
	}
	return &Classifier{Model: m, Config: cfg, InputRes: cfg.InputRes}, nil
}
