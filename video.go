package smol

import (
	"context"
	"fmt"
	"sync"

	"smol/internal/blazeit"
	"smol/internal/codec/vid"
	"smol/internal/costmodel"
	"smol/internal/engine"
	"smol/internal/hw"
	"smol/internal/img"
	"smol/internal/preproc"
)

// DeblockMode controls the in-loop deblocking filter for a video request.
type DeblockMode int

const (
	// DeblockAuto lets the planner choose: deblocking is dropped only when
	// the accuracy floor tolerates the penalty AND it buys throughput
	// (when execution is the bottleneck, free fidelity is kept).
	DeblockAuto DeblockMode = iota
	// DeblockOn forces full-fidelity decode — the baseline the offline
	// equivalence guarantee is stated against.
	DeblockOn
	// DeblockOff forces reduced-fidelity decode (§6.4) regardless of cost.
	DeblockOff
)

// VideoOpts configures one video serving request.
type VideoOpts struct {
	// Stride classifies every Stride-th frame (0 or 1 = every frame).
	// Skipped frames are still decoded — motion-compensated frames need
	// their references — but their RGB conversion and preprocessing are
	// elided, and the planner prices the stride into the decode cost.
	Stride int
	// QoS is the serving target the video planner satisfies, jointly
	// choosing the zoo entry, the stored rendition, the deblocking toggle,
	// and the preprocessing chain. The zero value inherits the runtime's
	// default (RuntimeConfig.QoS), exactly as still-image Classify does.
	QoS QoS
	// Variants are alternative natively-stored renditions of the same
	// content (the paper's natively-present low-resolution lever, e.g. a
	// 480p proxy encoded alongside the full stream). The planner may route
	// the request to whichever rendition is cheapest under the QoS target;
	// ServePlan.Stream reports the choice (0 = the primary stream, n > 0 =
	// Variants[n-1]).
	Variants [][]byte
	// Deblock overrides the planner's deblocking choice (DeblockAuto lets
	// the plan search decide from the QoS target).
	Deblock DeblockMode
}

// VideoResult reports one ClassifyVideo call: the sampled frame indices,
// their predictions (parallel slices), the plan the video planner chose,
// and the engine/decoder work counters.
type VideoResult struct {
	// FrameIndices lists the classified frames' positions in the stream.
	FrameIndices []int
	// Predictions holds the model outputs, parallel to FrameIndices.
	Predictions []int
	// Plan is the planner's joint choice (entry, rendition, deblock,
	// preprocessing) for this request.
	Plan ServePlan
	// Stats reports the engine-side work (batches, latency, pool reuse).
	Stats engine.Stats
	// Decode reports the video decoder's work (frames, IDCT blocks,
	// deblocked edges).
	Decode VideoDecodeStats
}

// AggregateOpts configures one EstimateMean aggregation query.
type AggregateOpts struct {
	// ErrTarget is the requested confidence-interval half-width on the
	// mean (required).
	ErrTarget float64
	// QoS selects the target model: the zoo entry the planner routes this
	// request to is the expensive model the estimator samples. The zero
	// value inherits the runtime's default (RuntimeConfig.QoS).
	QoS QoS
	// Variants are alternative stored renditions, as in VideoOpts.
	Variants [][]byte
	// Deblock overrides the planner's deblocking choice.
	Deblock DeblockMode
	// Seed drives the sampling order (deterministic per seed).
	Seed int64
	// MaxTargetInvocations caps the expensive-model calls (0 = up to one
	// per frame).
	MaxTargetInvocations int
}

// AggregateResult reports one EstimateMean query.
type AggregateResult struct {
	// Estimate is the estimated mean of the target model's per-frame
	// output.
	Estimate float64
	// HalfWidth is the final confidence-interval half-width.
	HalfWidth float64
	// TargetInvocations is how many frames the expensive target model
	// actually ran on — the quantity the control variate minimizes.
	TargetInvocations int
	// Frames is the stream's total frame count (the cheap proxy ran on
	// every one).
	Frames int
	// ProxyCached reports that the cheap pass was skipped entirely: a
	// persisted proxy score table (see MediaStore ingest and SelectVideo)
	// supplied the specialized model's per-frame predictions, so the query
	// decoded only the sampled target frames.
	ProxyCached bool
	// Plan describes the chosen target entry and decode fidelity.
	Plan ServePlan
	// Decode aggregates the decoder work across the cheap full pass and
	// the sampled target pass (all decoders the query opened).
	Decode VideoDecodeStats
}

// videoUndersizePenalty is the accuracy charge for serving from a stored
// rendition smaller than the chosen model's resize target (the DNN input
// is then an upscale of genuinely missing detail).
const videoUndersizePenalty = 0.02

// videoChoice is the part of a video plan the serving loop executes
// directly rather than reading back out of the ServePlan: which rendition
// to decode and whether to run the deblocking filter.
type videoChoice struct {
	stream  int
	deblock bool
}

// deblockPenalty resolves RuntimeConfig.VideoDeblockPenalty: the accuracy
// cost the planner charges deblock-off plans (negative = never consider
// them).
func (r *Runtime) deblockPenalty() (float64, bool) {
	p := r.cfg.VideoDeblockPenalty
	if p < 0 {
		return 0, false
	}
	if p == 0 {
		p = 0.01
	}
	return p, true
}

// videoSelKey memoizes video planner decisions per (stream-geometry set,
// QoS, stride, deblock mode): the plan search depends on the streams only
// through their probed headers, so requests over same-shaped streams reuse
// the decision — the video counterpart of the still planner's selKey memo.
type videoSelKey struct {
	streams string
	qos     QoS
	stride  int
	mode    DeblockMode
	// seek marks plans costed for GOP-indexed sampling: the decode term is
	// capped at one GOP prefix per sample instead of the whole stride span,
	// which can shift the entry/rendition trade-off.
	seek bool
}

// videoSelection is one memoized video planner decision.
type videoSelection struct {
	entry  *rtEntry
	choice videoChoice
	plan   ServePlan
}

// planVideo runs the video plan search: every zoo entry against every
// stored rendition and both deblocking settings, each with its jointly
// optimized preprocessing chain, costed by the calibrated estimators
// (live-timed forwards, live-timed vid decode, GOP-aware decode model,
// stride amortization) and selected under the QoS constraint. It is the
// video counterpart of selectPlan, with two extra decode-fidelity
// dimensions: the natively-stored resolution variant and the deblocking
// toggle (§6.4). Decisions are memoized per input class and QoS.
func (r *Runtime) planVideo(streams [][]byte, qos QoS, stride int, mode DeblockMode, seek bool) (*rtEntry, videoChoice, ServePlan, error) {
	infos := make([]vid.Info, len(streams))
	for i, s := range streams {
		info, err := vid.Probe(s)
		if err != nil {
			return nil, videoChoice{}, ServePlan{}, fmt.Errorf("smol: probing video stream %d: %w", i, err)
		}
		if i > 0 && info.Frames != infos[0].Frames {
			return nil, videoChoice{}, ServePlan{}, fmt.Errorf(
				"smol: rendition %d has %d frames, primary stream has %d — variants must share the primary's timeline",
				i, info.Frames, infos[0].Frames)
		}
		infos[i] = info
	}
	return r.planVideoInfos(infos, qos, stride, mode, seek)
}

// planVideoInfos is the plan search over already-probed stream headers —
// the entry point for store-backed requests, whose geometry was probed once
// at ingest.
func (r *Runtime) planVideoInfos(infos []vid.Info, qos QoS, stride int, mode DeblockMode, seek bool) (*rtEntry, videoChoice, ServePlan, error) {
	if stride < 1 {
		stride = 1
	}
	if qos == (QoS{}) {
		// An unset target inherits the runtime default, matching the
		// still-image Classify contract.
		qos = r.cfg.QoS
	}
	sig := ""
	for _, info := range infos {
		sig += fmt.Sprintf("%dx%d/g%d;", info.W, info.H, info.GOP)
	}
	key := videoSelKey{streams: sig, qos: qos, stride: stride, mode: mode, seek: seek}
	r.selMu.Lock()
	sel, ok := r.videoSels[key]
	r.selMu.Unlock()
	if ok {
		return sel.entry, sel.choice, sel.plan, nil
	}
	sel, err := r.selectVideoPlan(infos, qos, stride, mode, seek)
	if err != nil {
		return nil, videoChoice{}, ServePlan{}, err
	}
	r.selMu.Lock()
	if len(r.videoSels) >= maxCachedSelections {
		r.videoSels = make(map[videoSelKey]videoSelection)
	}
	r.videoSels[key] = sel
	r.selMu.Unlock()
	return sel.entry, sel.choice, sel.plan, nil
}

// selectVideoPlan runs the candidate enumeration and calibrated selection
// for one memoized video planning class.
func (r *Runtime) selectVideoPlan(infos []vid.Info, qos QoS, stride int, mode DeblockMode, seek bool) (videoSelection, error) {
	env := costmodel.DefaultEnv()
	env.VCPUs = r.workerCount()
	env.BatchSize = r.batchSize()
	env.Calibration = r.videoCalibrate()

	penalty, allowNoDeblock := r.deblockPenalty()
	var deblocks []bool
	switch mode {
	case DeblockOn:
		deblocks = []bool{true}
	case DeblockOff:
		// The forced reduced-fidelity mode still answers to the runtime
		// configuration: an operator who disabled deblock-off plans
		// disabled them for forced requests too, and an allowed forced
		// request is costed with the same accuracy penalty the planner
		// would charge.
		if !allowNoDeblock {
			return videoSelection{}, fmt.Errorf("smol: reduced-fidelity decode is disabled (VideoDeblockPenalty < 0)")
		}
		deblocks = []bool{false}
	default:
		deblocks = []bool{true}
		if allowNoDeblock {
			deblocks = append(deblocks, false)
		}
	}

	type cand struct {
		plan   costmodel.Plan
		ent    *rtEntry
		choice videoChoice
	}
	var cands []cand
	for _, ent := range r.entries {
		for si, info := range infos {
			spec := preproc.ServeSpec(info.W, info.H, ent.InputRes, r.cfg.Mean, r.cfg.Std, nil)
			pplan, err := preproc.Optimize(spec)
			if err != nil {
				return videoSelection{}, fmt.Errorf("smol: optimizing preproc for %s on stream %d: %w", ent.name, si, err)
			}
			for _, deblock := range deblocks {
				acc := ent.Accuracy
				if !deblock {
					acc -= penalty
				}
				// A rendition whose short edge undershoots the model's
				// resize target upscales — information the DNN input wants
				// is genuinely absent (the same legality rule the JPEG
				// decode-scale search applies), so it carries an accuracy
				// charge and only wins under relaxed floors.
				if min(info.W, info.H) < spec.ResizeShort {
					acc -= videoUndersizePenalty
				}
				cands = append(cands, cand{
					plan: costmodel.Plan{
						DNN: costmodel.DNNChoice{Name: ent.name, InputRes: ent.InputRes, Accuracy: acc},
						Format: costmodel.Format{
							Name:            fmt.Sprintf("svid#%d %dx%d", si, info.W, info.H),
							Kind:            hw.FormatVideoH264,
							W:               info.W,
							H:               info.H,
							NoDeblock:       !deblock,
							GOP:             info.GOP,
							FramesPerSample: stride,
							GOPSeek:         seek,
						},
						Preproc: pplan, PreprocSpec: spec,
					},
					ent:    ent,
					choice: videoChoice{stream: si, deblock: deblock},
				})
			}
		}
	}
	plans := make([]costmodel.Plan, len(cands))
	for i, c := range cands {
		plans[i] = c.plan
	}
	evals, err := costmodel.Evaluate(plans, env)
	if err != nil {
		return videoSelection{}, err
	}
	best, err := costmodel.Select(evals, costmodel.Constraint{
		MinAccuracy:  qos.MinAccuracy,
		MaxLatencyUS: qos.MaxLatencyUS,
	})
	if err != nil {
		return videoSelection{}, fmt.Errorf("smol: no video plan satisfies QoS %+v: %w", qos, err)
	}
	for _, c := range cands {
		if c.plan.DNN.Name != best.Plan.DNN.Name ||
			c.plan.Format.Name != best.Plan.Format.Name ||
			c.plan.Format.NoDeblock != best.Plan.Format.NoDeblock {
			continue
		}
		return videoSelection{
			entry:  c.ent,
			choice: c.choice,
			plan: ServePlan{
				Entry:     c.ent.name,
				Variant:   c.ent.Variant,
				InputRes:  c.ent.InputRes,
				Precision: c.ent.PrecisionLabel(),
				Kernel:    r.kernelFor(c.ent),
				// The effective accuracy the QoS floor was checked
				// against: the entry's measured accuracy minus any
				// deblock-off / undersized-rendition fidelity penalties.
				Accuracy:            c.plan.DNN.Accuracy,
				InputFormat:         c.plan.Format.Name,
				DecodeScale:         1,
				Deblock:             c.choice.deblock,
				Stream:              c.choice.stream,
				Preproc:             c.plan.Preproc.Describe(),
				PredictedThroughput: best.Throughput,
				PredictedLatencyUS:  best.LatencyUS,
			},
		}, nil
	}
	return videoSelection{}, fmt.Errorf("smol: video planner lost track of its winner %s", best.Plan)
}

// videoSource streams a video request into the engine: it owns the
// resident decoder, decodes frames in stream order (P-frames need their
// references), skips unsampled frames without converting them to RGB, and
// submits one job per sampled frame. Submission backpressure (the engine's
// bounded queues) paces the decode, and frame buffers recycle through the
// request's pool once a prep worker consumes them, so a long stream runs
// in bounded memory.
type videoSource struct {
	ctx    context.Context
	dec    *vid.Decoder
	cr     *classifyReq
	stride int
	class  int
	// seek routes skipped spans through SeekFrame instead of per-frame
	// Skip: whole GOPs between samples are bypassed via the GOP index
	// (never entered, not even for motion compensation) and only the
	// intra-GOP prefix of each sample is reconstructed.
	seek   bool
	frame  int // next stream frame to decode
	sample int // next sample slot to fill
}

// Next hands the decoded frame to the request (cr.frames slot); the prep
// worker recycles it into framePool after preprocessing.
//
//smol:owns
func (s *videoSource) Next() (engine.Job, bool, error) {
	for {
		if err := s.ctx.Err(); err != nil {
			return engine.Job{}, false, err
		}
		if s.sample >= len(s.cr.preds) {
			return engine.Job{}, false, nil
		}
		if s.seek {
			target := s.sample * s.stride
			if err := s.dec.SeekFrame(target); err != nil {
				return engine.Job{}, false, err
			}
			s.frame = target
		} else if s.frame%s.stride != 0 {
			if err := s.dec.Skip(); err != nil {
				return engine.Job{}, false, err
			}
			s.frame++
			continue
		}
		dst, _ := s.cr.framePool.Get().(*img.Image)
		m, err := s.dec.NextInto(dst)
		if err != nil {
			// Put the pooled frame back before failing: a decode error must
			// not bleed a buffer out of the pool per failed request.
			if dst != nil {
				s.cr.framePool.Put(dst)
			}
			return engine.Job{}, false, err
		}
		i := s.sample
		s.cr.frames[i] = m
		s.frame++
		s.sample++
		return engine.Job{Index: i, Tag: s.cr, Class: s.class}, true, nil
	}
}

// ClassifyVideo streams a video's sampled frames through the shared warm
// engine and blocks until every prediction is ready, ctx is cancelled, or a
// stage fails. The request holds one resident decoder (sequential I/P
// decode with recycled reference frames); sampled frames flow through the
// same per-class tensor pools, batch streams, and compiled forwards as
// still-image traffic, and may share accelerator batches with concurrent
// still-image requests routed to the same zoo entry.
func (s *Server) ClassifyVideo(ctx context.Context, stream []byte, opts VideoOpts) (VideoResult, error) {
	stride := opts.Stride
	if stride < 1 {
		stride = 1
	}
	streams := append([][]byte{stream}, opts.Variants...)
	seek := !s.rt.cfg.DisableGOPSeek
	ent, choice, plan, err := s.rt.planVideo(streams, opts.QoS, stride, opts.Deblock, seek)
	if err != nil {
		return VideoResult{}, err
	}
	dec, err := vid.NewDecoder(streams[choice.stream], vid.DecodeOptions{DisableDeblock: !choice.deblock})
	if err != nil {
		return VideoResult{}, err
	}
	return s.classifySequential(ctx, dec, ent, plan, stride, seek)
}

// classifySequential runs one resident decoder through the warm engine —
// the serving core shared by raw-stream requests and the store-backed
// single-decoder fallback. With seek set the source jumps straight to each
// sample's containing GOP via the decoder's GOP index; otherwise it skips
// frame by frame (the sequential equivalence oracle).
func (s *Server) classifySequential(ctx context.Context, dec *vid.Decoder, ent *rtEntry, plan ServePlan, stride int, seek bool) (VideoResult, error) {
	n := (dec.NumFrames() + stride - 1) / stride
	cr := &classifyReq{
		frames:    make([]*img.Image, n),
		framePool: &sync.Pool{},
		preds:     make([]int, n),
		entry:     ent,
	}
	src := &videoSource{ctx: ctx, dec: dec, cr: cr, stride: stride, class: ent.class, seek: seek}
	stats, err := s.pipe.Process(ctx, src)
	if err != nil {
		return VideoResult{}, err
	}
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i * stride
	}
	return VideoResult{
		FrameIndices: indices,
		Predictions:  cr.preds,
		Plan:         plan,
		Stats:        stats,
		Decode:       dec.Stats(),
	}, nil
}

// classifyFrame runs one already-decoded frame through the warm pipeline
// against a fixed zoo entry — the target-model invocation EstimateMean
// samples.
func (s *Server) classifyFrame(ctx context.Context, ent *rtEntry, m *img.Image) (int, error) {
	cr := &classifyReq{frames: []*img.Image{m}, preds: make([]int, 1), entry: ent}
	job := engine.Job{Index: 0, Tag: cr, Class: ent.class}
	if _, err := s.pipe.Process(ctx, engine.SliceSource([]engine.Job{job})); err != nil {
		return 0, err
	}
	return cr.preds[0], nil
}

// EstimateMean answers a BlazeIt-style aggregation query (§3.2) over a
// video: estimate the mean of the target model's per-frame prediction to
// within opts.ErrTarget, using the cheap specialized model
// (blazeit.BlobCounter on every decoded frame) as a control variate so the
// expensive target — the zoo entry the QoS target selects, executed
// through the warm pipeline — runs on as few frames as possible.
//
// For a zoo trained so that the class index is the per-frame object count,
// the estimate is the mean object count; more generally it is the mean
// predicted class. The returned TargetInvocations is the query's cost
// driver: the better the specialized model tracks the target, the fewer
// samples the confidence interval needs (§8.4).
func (s *Server) EstimateMean(ctx context.Context, stream []byte, opts AggregateOpts) (AggregateResult, error) {
	if opts.ErrTarget <= 0 {
		return AggregateResult{}, fmt.Errorf("smol: aggregation error target must be positive")
	}
	streams := append([][]byte{stream}, opts.Variants...)
	seek := !s.rt.cfg.DisableGOPSeek
	ent, choice, plan, err := s.rt.planVideo(streams, opts.QoS, 1, opts.Deblock, seek)
	if err != nil {
		return AggregateResult{}, err
	}
	decOpts := vid.DecodeOptions{DisableDeblock: !choice.deblock}
	// Raw []byte streams have no persisted index; the seeker builds one
	// lazily on first seek. Frames may still be retained up to the budget —
	// only store-backed queries drop retention entirely.
	return s.estimateMeanStream(ctx, streams[choice.stream], nil, decOpts, ent, plan, opts, seek, true, nil)
}

// estimateMeanStream is the aggregation core shared by raw-stream and
// store-backed queries. index, when non-nil, is a persisted GOP index
// injected into every decoder the query opens. retainOK gates the
// decoded-RGB retention budget: store-backed queries pass false (satellite
// of the GOP-seek work — random access via the index is cheap, so holding
// the whole clip resident buys nothing and costs aggRetainBytes of memory).
// cachedSpec, when non-nil, is the specialized model's per-frame prediction
// from a persisted proxy score table; the cheap decode-everything pass is
// skipped entirely and the query's decode work is the sampled target pass
// alone (the scores are only passed in when they are bit-identical to what
// the pass would compute: the blob proxy at the chosen stream's fidelity).
func (s *Server) estimateMeanStream(ctx context.Context, data []byte, index []vid.GOPEntry, decOpts vid.DecodeOptions, ent *rtEntry, plan ServePlan, opts AggregateOpts, seek, retainOK bool, cachedSpec []float64) (AggregateResult, error) {
	var specPreds []float64
	var frames []*img.Image
	var dstats vid.DecodeStats
	retain := false
	if cachedSpec != nil {
		specPreds = cachedSpec
	} else {
		dec, err := vid.NewDecoder(data, decOpts)
		if err != nil {
			return AggregateResult{}, err
		}
		// The cheap full pass: decode every frame once and run the
		// specialized model. Streams whose decoded frames fit the retention
		// budget keep them resident for the sampled target invocations;
		// past it the pass recycles one output image and the oracle
		// re-decodes on demand instead, keeping memory bounded regardless
		// of stream length or frame size (with GOP seek the re-decode is
		// O(GOP) per sample, without it a sequential re-decode is the
		// honest random-access cost).
		retain = retainOK && dec.NumFrames()*dec.Width()*dec.Height()*3 <= aggRetainBytes
		if retain {
			frames = make([]*img.Image, 0, dec.NumFrames())
		}
		var counter blazeit.BlobCounter
		var dst *img.Image
		for {
			if err := ctx.Err(); err != nil {
				return AggregateResult{}, err
			}
			m, err := dec.NextInto(dst)
			if err == vid.ErrEndOfStream {
				break
			}
			if err != nil {
				return AggregateResult{}, err
			}
			if len(specPreds) == 0 {
				counter = blazeit.DefaultCounter(m.W)
			}
			specPreds = append(specPreds, float64(counter.Count(m)))
			if retain {
				frames = append(frames, m)
			} else {
				dst = m
			}
		}
		dstats = dec.Stats()
	}
	if len(specPreds) == 0 {
		return AggregateResult{}, fmt.Errorf("smol: video stream has no frames")
	}
	seeker := &frameSeeker{data: data, opts: decOpts, index: index, seek: seek}
	// The expensive sampled pass: the chosen zoo entry through the warm
	// engine. blazeit's Oracle interface cannot fail, so the first error
	// latches and short-circuits the remaining invocations.
	var oracleErr error
	oracle := func(f int) float64 {
		if oracleErr != nil {
			return 0
		}
		if err := ctx.Err(); err != nil {
			oracleErr = err
			return 0
		}
		var m *img.Image
		if retain {
			m = frames[f]
		} else if m, oracleErr = seeker.frameAt(ctx, f); oracleErr != nil {
			return 0
		}
		pred, err := s.classifyFrame(ctx, ent, m)
		if err != nil {
			oracleErr = err
			return 0
		}
		return float64(pred)
	}
	res, err := blazeit.EstimateMean(specPreds, oracle, blazeit.Config{
		ErrTarget:  opts.ErrTarget,
		Seed:       opts.Seed,
		MaxSamples: opts.MaxTargetInvocations,
	})
	if err != nil {
		return AggregateResult{}, err
	}
	if oracleErr != nil {
		return AggregateResult{}, oracleErr
	}
	dstats.Add(seeker.stats())
	return AggregateResult{
		Estimate:          res.Estimate,
		HalfWidth:         res.HalfWidth,
		TargetInvocations: res.Samples,
		Frames:            len(specPreds),
		ProxyCached:       cachedSpec != nil,
		Plan:              plan,
		Decode:            dstats,
	}, nil
}

// aggRetainBytes bounds the decoded RGB bytes EstimateMean keeps resident
// for its sampled pass (~40 frames of 1080p at ~6.2MB each); larger
// streams re-decode sampled frames sequentially instead. A var so tests
// can force the re-decode path on short clips.
var aggRetainBytes = 256 << 20

// frameSeeker provides random access to a video stream for the sampled
// target pass. With seek set, one resident decoder jumps to each request
// through its GOP index (injected from a store sidecar, or lazily scanned
// on first use) — backward requests included, so the decoder is never
// rebuilt. Without it, requests at or past the current position decode
// forward (Skip elides RGB conversion for the frames in between) and
// requests behind it restart the decoder. One output image is recycled —
// the caller consumes each frame synchronously before asking for the next.
type frameSeeker struct {
	data  []byte
	opts  vid.DecodeOptions
	index []vid.GOPEntry
	seek  bool
	dec   *vid.Decoder
	pos   int // index of the next frame the decoder will produce
	dst   *img.Image
	acc   vid.DecodeStats // work of decoders already discarded by restarts
}

func (s *frameSeeker) frameAt(ctx context.Context, f int) (*img.Image, error) {
	if s.dec == nil || (!s.seek && f < s.pos) {
		if s.dec != nil {
			s.acc.Add(s.dec.Stats())
		}
		dec, err := vid.NewDecoder(s.data, s.opts)
		if err != nil {
			return nil, err
		}
		if s.index != nil {
			if err := dec.SetGOPIndex(s.index); err != nil {
				return nil, err
			}
		}
		s.dec, s.pos = dec, 0
	}
	if s.seek {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.dec.SeekFrame(f); err != nil {
			return nil, err
		}
	} else {
		for s.pos < f {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := s.dec.Skip(); err != nil {
				return nil, err
			}
			s.pos++
		}
	}
	m, err := s.dec.NextInto(s.dst)
	if err != nil {
		return nil, err
	}
	s.dst = m
	s.pos = f + 1
	return m, nil
}

// stats totals the seeker's decode work across every decoder it opened.
func (s *frameSeeker) stats() vid.DecodeStats {
	total := s.acc
	if s.dec != nil {
		total.Add(s.dec.Stats())
	}
	return total
}
