package smol

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// renderBlobImage draws a dark frame, optionally with one bright blob the
// blob-counter proxy (and a trained presence classifier) can spot. Blob
// geometry scales with resolution so the same scene works for 16px
// training images and 64px video frames.
func renderBlobImage(rng *rand.Rand, res int, blob bool) *Image {
	m := NewImage(res, res)
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			m.Set(x, y, uint8(36+rng.Intn(8)), uint8(36+rng.Intn(8)), uint8(56+rng.Intn(8)))
		}
	}
	if blob {
		r := res / 10
		if r < 1 {
			r = 1
		}
		cx := res/4 + rng.Intn(res/2)
		cy := res/4 + rng.Intn(res/2)
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				x, y := cx+dx, cy+dy
				if x >= 0 && x < res && y >= 0 && y < res {
					m.Set(x, y, 240, 240, uint8(190+rng.Intn(20)))
				}
			}
		}
	}
	return m
}

// benchSelectClassifier trains (once) a presence detector: class 1 = one
// bright blob, class 0 = empty frame. Training is deterministic, so the
// model is shared across every selection benchmark case.
var (
	benchSelOnce sync.Once
	benchSelClf  *Classifier
	benchSelErr  error
)

func benchSelectClassifier(b *testing.B) *Classifier {
	b.Helper()
	benchSelOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		var train []LabeledImage
		for i := 0; i < 192; i++ {
			c := i % 2
			train = append(train, LabeledImage{Image: renderBlobImage(rng, 16, c == 1), Label: c})
		}
		benchSelClf, benchSelErr = TrainClassifier(train, 2, TrainOptions{Epochs: 5, Seed: 3})
	})
	if benchSelErr != nil {
		b.Fatal(benchSelErr)
	}
	return benchSelClf
}

// benchSelectClip encodes a 300-frame counting clip where selPct percent
// of the frames carry exactly one blob (raw proxy score 1) and the rest
// are empty (score 0) — so a 0.9 confidence floor on class 1 prunes every
// empty frame at the proxy stage.
func benchSelectClip(b *testing.B, selPct int) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	const n, res = 300, 64
	frames := make([]*Image, n)
	for f := range frames {
		frames[f] = renderBlobImage(rng, res, f%(100/selPct) == 0)
	}
	enc, err := EncodeVideo(frames, 80, 15)
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

// BenchmarkSelectLimit measures the proxy cascade against the
// verify-every-frame full scan (DisableProxyCascade) on LIMIT selection
// queries, across proxy selectivity (1% and 10% of 300 frames match) and
// K. Scores are materialized at ingest, so both paths read the sidecar;
// the cascade's advantage is pure predicate pushdown — it verifies roughly
// one batch of top-ranked candidates instead of all 300 samples, and seeks
// only the GOPs those candidates live in. oracle-invocations is the
// full-model count the paper's cascades exist to minimize.
func BenchmarkSelectLimit(b *testing.B) {
	clf := benchSelectClassifier(b)
	ms, err := OpenMediaStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer ms.Close()
	clips := map[int]*StoredVideo{}
	for _, selPct := range []int{1, 10} {
		v, err := ms.IngestVideo(fmt.Sprintf("clip-%d", selPct), benchSelectClip(b, selPct),
			IngestOptions{ProxyScores: true})
		if err != nil {
			b.Fatal(err)
		}
		clips[selPct] = v
	}
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cascade", false}, {"fullscan", true}} {
		rt, err := NewRuntime(clf.Model, RuntimeConfig{
			InputRes: 16, BatchSize: 8, Workers: 2, DisableProxyCascade: mode.disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := rt.Serve()
		if err != nil {
			b.Fatal(err)
		}
		for _, selPct := range []int{1, 10} {
			for _, k := range []int{1, 10} {
				opts := SelectOpts{Class: 1, MinConf: 0.9, Limit: k, Deblock: DeblockOn}
				b.Run(fmt.Sprintf("sel-%d/K-%d/%s", selPct, k, mode.name), func(b *testing.B) {
					res, err := srv.SelectVideo(ctx, clips[selPct], opts) // warm pools + plan caches
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if res, err = srv.SelectVideo(ctx, clips[selPct], opts); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(res.OracleInvocations), "oracle-invocations")
					b.ReportMetric(float64(res.GOPsTouched), "gops-touched")
					b.ReportMetric(float64(len(res.Frames)), "frames-found")
				})
			}
		}
		srv.Close()
	}
}
