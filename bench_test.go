package smol

// Benchmark harness: one benchmark per table and figure of the paper (see
// DESIGN.md's experiment index), plus real-substrate microbenchmarks for
// the codecs, preprocessing kernels, queue, and engine so the repo's own
// performance claims are measurable with `go test -bench`.
//
// The experiment benchmarks report the key quantity of their table/figure
// as a custom metric; full tables print via cmd/smol-bench.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"smol/internal/audio"
	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/codec/vid"
	"smol/internal/data"
	"smol/internal/engine"
	"smol/internal/experiments"
	"smol/internal/img"
	"smol/internal/nn"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

// benchScale picks Full when the trained zoo exists (populated by
// cmd/smol-train), Quick otherwise, so accuracy-bearing benchmarks never
// silently train at full budgets.
func benchScale() experiments.Scale {
	if _, err := os.Stat(experiments.ZooDir()); err == nil {
		return experiments.Full
	}
	return experiments.Quick
}

// runExperiment executes one experiment per iteration and reports a cell
// value as a custom metric.
func runExperiment(b *testing.B, id string, metric func(*experiments.Table) (float64, string)) {
	b.Helper()
	if testing.Short() {
		// The CI bench-smoke step (-bench . -benchtime 1x -short) only
		// checks that benchmarks compile and run; the experiment harness is
		// far too slow for that budget.
		b.Skip("experiment benchmarks skipped in -short mode")
	}
	s := benchScale()
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiments.Run(id, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metric != nil {
		v, name := metric(tbl)
		b.ReportMetric(v, name)
	}
}

func cellFloat(b *testing.B, tbl *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q", row, col, tbl.Rows[row][col])
	}
	return v
}

func BenchmarkTable1_Frameworks(b *testing.B) {
	runExperiment(b, "table1", func(t *experiments.Table) (float64, string) {
		return cellFloat(b, t, 2, 1), "tensorrt-im/s"
	})
}

func BenchmarkFigure1_Breakdown(b *testing.B) {
	runExperiment(b, "figure1", func(t *experiments.Table) (float64, string) {
		return cellFloat(b, t, 3, 2) / cellFloat(b, t, 4, 2), "preproc/exec-ratio"
	})
}

func BenchmarkTable2_ResNetTradeoff(b *testing.B) {
	runExperiment(b, "table2", func(t *experiments.Table) (float64, string) {
		return cellFloat(b, t, 2, 1), "rn50-im/s"
	})
}

func BenchmarkTable3_CostModels(b *testing.B) {
	runExperiment(b, "table3", func(t *experiments.Table) (float64, string) {
		// Smol's error on the preprocessing-bound configuration.
		return cellFloat(b, t, 1, 4), "smol-err-%"
	})
}

func BenchmarkTable5_GPUGenerations(b *testing.B) {
	runExperiment(b, "table5", nil)
}

func BenchmarkTable6_Datasets(b *testing.B) {
	runExperiment(b, "table6", nil)
}

func BenchmarkTable7_Training(b *testing.B) {
	runExperiment(b, "table7", func(t *experiments.Table) (float64, string) {
		// Accuracy recovered by low-res training on PNG thumbnails (C).
		return cellFloat(b, t, 1, 2), "lowres-thumb-acc"
	})
}

func BenchmarkTable8_CostScaling(b *testing.B) {
	runExperiment(b, "table8", func(t *experiments.Table) (float64, string) {
		return cellFloat(b, t, 1, 3) / cellFloat(b, t, 0, 3), "cost-savings-x"
	})
}

func BenchmarkFigure4_Pareto(b *testing.B) {
	runExperiment(b, "figure4", nil)
}

func BenchmarkFigure5_Lesion(b *testing.B) {
	runExperiment(b, "figure5", nil)
}

func BenchmarkFigure6_Factor(b *testing.B) {
	runExperiment(b, "figure6", nil)
}

func BenchmarkFigure7_SystemsLesion(b *testing.B) {
	runExperiment(b, "figure7", nil)
}

func BenchmarkFigure8_SystemsFactor(b *testing.B) {
	runExperiment(b, "figure8", nil)
}

func BenchmarkFigure9_VideoAgg(b *testing.B) {
	runExperiment(b, "figure9", func(t *experiments.Table) (float64, string) {
		return cellFloat(b, t, 0, 4), "speedup-x"
	})
}

func BenchmarkFigure10_EngineComparison(b *testing.B) {
	runExperiment(b, "figure10", nil)
}

func BenchmarkPipelineOverhead(b *testing.B) {
	runExperiment(b, "pipeline-overhead", nil)
}

func BenchmarkMobileNetSSD(b *testing.B) {
	runExperiment(b, "mobilenet-ssd", func(t *experiments.Table) (float64, string) {
		return cellFloat(b, t, 0, 1) / cellFloat(b, t, 1, 1), "exec/preproc-x"
	})
}

func BenchmarkLatencyTradeoff(b *testing.B) {
	runExperiment(b, "latency", func(t *experiments.Table) (float64, string) {
		// Estimator-vs-simulated-max ratio at batch 64.
		return cellFloat(b, t, 3, 5), "est/sim-max-b64"
	})
}

func BenchmarkTable_PowerCost(b *testing.B) {
	runExperiment(b, "power-cost", nil)
}

// --- Real-substrate microbenchmarks ---

func benchImage(res int) *img.Image {
	return data.RenderImage(rand.New(rand.NewSource(1)), 3, 10, res)
}

func BenchmarkJPEGEncode(b *testing.B) {
	m := benchImage(256)
	b.SetBytes(int64(len(m.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jpeg.Encode(m, jpeg.EncodeOptions{Quality: 90})
	}
}

func BenchmarkJPEGDecodeFull(b *testing.B) {
	enc := jpeg.Encode(benchImage(256), jpeg.EncodeOptions{Quality: 90})
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJPEGDecodeROI(b *testing.B) {
	enc := jpeg.Encode(benchImage(256), jpeg.EncodeOptions{Quality: 90})
	roi := img.CenterCropRect(256, 256, 96, 96)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := jpeg.DecodeWithOptions(enc, jpeg.DecodeOptions{ROI: &roi}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJPEGDecodeEarlyStop(b *testing.B) {
	enc := jpeg.Encode(benchImage(256), jpeg.EncodeOptions{Quality: 90})
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := jpeg.DecodeWithOptions(enc, jpeg.DecodeOptions{EarlyStopRow: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPNGDecode(b *testing.B) {
	enc := spng.Encode(benchImage(256), 0)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spng.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVideo(b *testing.B) []byte {
	b.Helper()
	spec, err := data.VideoDataset("taipei")
	if err != nil {
		b.Fatal(err)
	}
	spec.Frames = 60
	v := data.GenerateVideo(spec)
	enc, err := vid.Encode(v.Frames, vid.EncodeOptions{Quality: 70, GOP: 30})
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

func BenchmarkVideoDecodeDeblock(b *testing.B) {
	enc := benchVideo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vid.DecodeAll(enc, vid.DecodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVideoDecodeNoDeblock(b *testing.B) {
	enc := benchVideo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vid.DecodeAll(enc, vid.DecodeOptions{DisableDeblock: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPreprocSpec() preproc.Spec {
	return preproc.Spec{
		InW: 500, InH: 375, ResizeShort: 256, CropW: 224, CropH: 224,
		Mean: [3]float32{0.485, 0.456, 0.406}, Std: [3]float32{0.229, 0.224, 0.225},
	}
}

func BenchmarkPreprocNaivePlan(b *testing.B) {
	s := benchPreprocSpec()
	m := benchImage(500).ResizeBilinear(500, 375)
	plan := preproc.NaivePlan(s)
	ex := preproc.NewExecutor()
	out := tensor.New(preproc.OutputShape(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Execute(plan, m, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreprocOptimizedPlan(b *testing.B) {
	s := benchPreprocSpec()
	m := benchImage(500).ResizeBilinear(500, 375)
	plan, err := preproc.Optimize(s)
	if err != nil {
		b.Fatal(err)
	}
	ex := preproc.NewExecutor()
	out := tensor.New(preproc.OutputShape(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Execute(plan, m, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPMCQueue(b *testing.B) {
	q := engine.NewMPMCQueue[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := q.Put(1); err != nil {
				b.Fatal(err)
			}
			if _, ok := q.Take(); !ok {
				b.Fatal("queue closed")
			}
		}
	})
}

func BenchmarkEnginePipeline(b *testing.B) {
	prep := func(ws *engine.WorkerState, job engine.Job, out *tensor.Tensor) error {
		for i := range out.Data {
			out.Data[i] = float32(job.Index)
		}
		return nil
	}
	exec := func(batch *tensor.Tensor, indices []int) error { return nil }
	e, err := engine.New(engine.Config{Workers: 2, Streams: 2, BatchSize: 32,
		SampleShape: [3]int{3, 32, 32}}, prep, exec)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]engine.Job, 512)
	for i := range jobs {
		jobs[i] = engine.Job{Index: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStreamingWarm is the streaming counterpart of
// BenchmarkEnginePipeline: the pipeline (pool, arena, queue, workers) is
// built once and every iteration streams one request through it warm. The
// gap between the two is the per-call setup cost the serving mode removes.
func BenchmarkEngineStreamingWarm(b *testing.B) {
	prep := func(ws *engine.WorkerState, job engine.Job, out *tensor.Tensor) error {
		for i := range out.Data {
			out.Data[i] = float32(job.Index)
		}
		return nil
	}
	exec := func(batch *tensor.Tensor, refs []engine.Ref) error { return nil }
	p, err := engine.NewPipeline(engine.Config{Workers: 2, Streams: 2, BatchSize: 32,
		SampleShape: [3]int{3, 32, 32}}, prep, exec)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	jobs := make([]engine.Job, 512)
	for i := range jobs {
		jobs[i] = engine.Job{Index: i}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Process(ctx, engine.SliceSource(jobs)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineStreamingConcurrent measures many callers sharing one warm
// pipeline, the serving workload of §3.1: each parallel benchmark goroutine
// repeatedly streams a small request through the shared engine.
func BenchmarkEngineStreamingConcurrent(b *testing.B) {
	prep := func(ws *engine.WorkerState, job engine.Job, out *tensor.Tensor) error {
		for i := range out.Data {
			out.Data[i] = float32(job.Index)
		}
		return nil
	}
	exec := func(batch *tensor.Tensor, refs []engine.Ref) error { return nil }
	p, err := engine.NewPipeline(engine.Config{Workers: 4, Streams: 2, BatchSize: 32,
		SampleShape: [3]int{3, 32, 32}}, prep, exec)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		jobs := make([]engine.Job, 64)
		for i := range jobs {
			jobs[i] = engine.Job{Index: i}
		}
		for pb.Next() {
			if _, err := p.Process(ctx, engine.SliceSource(jobs)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkResNetForward(b *testing.B) {
	for _, variant := range nn.Variants() {
		b.Run(variant, func(b *testing.B) {
			cfg, err := nn.VariantConfig(variant, 10, 32)
			if err != nil {
				b.Fatal(err)
			}
			m, err := nn.NewResNet(rand.New(rand.NewSource(1)), cfg)
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.New(8, 3, 32, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Forward(x, false)
			}
		})
	}
}

// BenchmarkResNetForwardCompiled is the compiled-plan counterpart of
// BenchmarkResNetForward: same variants, same batch-8 input, executed
// through nn.Compile's folded/fused/arena path. The ratio between the two
// is the compiled-path speedup tracked in BENCH_infer.json.
func BenchmarkResNetForwardCompiled(b *testing.B) {
	for _, variant := range nn.Variants() {
		b.Run(variant, func(b *testing.B) {
			cfg, err := nn.VariantConfig(variant, 10, 32)
			if err != nil {
				b.Fatal(err)
			}
			m, err := nn.NewResNet(rand.New(rand.NewSource(1)), cfg)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := nn.Compile(m)
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.New(8, 3, 32, 32)
			preds := make([]int, 8)
			plan.PredictInto(x, preds) // warm the arena pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.PredictInto(x, preds)
			}
		})
	}
}

// BenchmarkResNetForwardInt8 is the quantized counterpart of
// BenchmarkResNetForwardCompiled: same variants, same batch-8 input,
// executed through nn.Quantize's int8 plan (calibrated on the benchmark
// input itself — only geometry and arithmetic width matter for speed). The
// ratio between the two is the int8-tier speedup tracked in
// BENCH_infer.json.
func BenchmarkResNetForwardInt8(b *testing.B) {
	for _, variant := range nn.Variants() {
		b.Run(variant, func(b *testing.B) {
			cfg, err := nn.VariantConfig(variant, 10, 32)
			if err != nil {
				b.Fatal(err)
			}
			m, err := nn.NewResNet(rand.New(rand.NewSource(1)), cfg)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := nn.Compile(m)
			if err != nil {
				b.Fatal(err)
			}
			x := tensor.New(8, 3, 32, 32)
			rng := rand.New(rand.NewSource(2))
			for i := range x.Data {
				x.Data[i] = rng.Float32()
			}
			cal, err := plan.Calibrate([]*tensor.Tensor{x})
			if err != nil {
				b.Fatal(err)
			}
			qp, err := nn.Quantize(plan, cal)
			if err != nil {
				b.Fatal(err)
			}
			preds := make([]int, 8)
			qp.PredictInto(x, preds) // warm the arena pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qp.PredictInto(x, preds)
			}
		})
	}
}

// BenchmarkGEMM measures the blocked f32 kernel on square problems — the
// AVX2 microkernel where the hardware has it (see BenchmarkGEMMPortable
// for the scalar tier); the custom metric reports achieved multiply-add
// throughput in GMAC/s so the perf trajectory captures throughput, not
// just ns/op.
func BenchmarkGEMM(b *testing.B) {
	for _, size := range []int{64, 256, 1024} {
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := tensor.New(size, size)
			bm := tensor.New(size, size)
			c := tensor.New(size, size)
			for i := range a.Data {
				a.Data[i] = rng.Float32()
				bm.Data[i] = rng.Float32()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.GEMM(a, bm, c)
			}
			macs := float64(size) * float64(size) * float64(size)
			b.ReportMetric(macs*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
		})
	}
}

// BenchmarkGEMMPortable is BenchmarkGEMM with the AVX2 f32 tier disabled:
// the scalar kernel's GMAC/s alongside the SIMD number quantifies the
// speedup BENCH_infer.json tracks, and — because the tiers are
// bit-identical — the ratio is pure throughput, not an accuracy trade.
func BenchmarkGEMMPortable(b *testing.B) {
	prev := tensor.SetF32SIMD(false)
	defer tensor.SetF32SIMD(prev)
	for _, size := range []int{64, 256, 1024} {
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := tensor.New(size, size)
			bm := tensor.New(size, size)
			c := tensor.New(size, size)
			for i := range a.Data {
				a.Data[i] = rng.Float32()
				bm.Data[i] = rng.Float32()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.GEMM(a, bm, c)
			}
			macs := float64(size) * float64(size) * float64(size)
			b.ReportMetric(macs*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
		})
	}
}

// BenchmarkGEMMInt8 is the quantized counterpart of BenchmarkGEMM: same
// square problems through the int8 dual-MAC kernel with the full
// requantize/bias/ReLU epilogue. The GMAC/s ratio between the two is the
// raw int8 speedup tracked in BENCH_infer.json.
func BenchmarkGEMMInt8(b *testing.B) {
	for _, size := range []int{64, 256, 1024} {
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := make([]int16, size*size)
			bm := make([]int8, size*size)
			for i := range a {
				a[i] = int16(rng.Intn(255) - 127)
				bm[i] = int8(rng.Intn(255) - 127)
			}
			acc := make([]int32, size*size)
			dst := make([]int8, size*size)
			ep := tensor.EpilogueInt8{
				RowScale: make([]float32, size),
				RowBias:  make([]float32, size),
				ReLU:     true,
				OutScale: 0.05,
			}
			for i := range ep.RowScale {
				ep.RowScale[i] = 0.002
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.GEMMInt8(size, size, size, a, bm, acc, dst, ep)
			}
			macs := float64(size) * float64(size) * float64(size)
			b.ReportMetric(macs*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
		})
	}
}

func BenchmarkADPCMDecodeFull(b *testing.B) {
	samples := make([]int16, 64000)
	for i := range samples {
		samples[i] = int16((i * 37) % 8192)
	}
	enc := audio.Encode(samples)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := audio.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkADPCMDecodeEarlyStop(b *testing.B) {
	samples := make([]int16, 64000)
	for i := range samples {
		samples[i] = int16((i * 37) % 8192)
	}
	enc := audio.Encode(samples)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := audio.DecodeSamples(enc, 16000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectrogram(b *testing.B) {
	samples := make([]int16, 16000)
	for i := range samples {
		samples[i] = int16((i * 53) % 8192)
	}
	cfg := audio.SpectrogramConfig{SampleRate: 16000, FrameSize: 400, HopSize: 160, Bins: 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := audio.Spectrogram(samples, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPNGDecodeProgressive(b *testing.B) {
	m := benchImage(256)
	enc, err := spng.EncodeProgressive(m, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Decode only up to the 64x64 level — the multi-resolution decode
		// of Table 4's JPEG2000-style feature.
		if _, _, err := spng.DecodeProgressive(enc, 64, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// hdBenchJPEG renders and encodes one 1920x1080 4:2:0 frame, shared by the
// ingest benchmarks (encoding full HD through the float FDCT is slow, so
// do it once).
var hdBenchJPEG []byte

func hdJPEG(b *testing.B) []byte {
	b.Helper()
	if hdBenchJPEG == nil {
		rng := rand.New(rand.NewSource(2))
		frame := data.RenderImage(rng, 2, 10, 540).ResizeBilinear(1920, 1080)
		hdBenchJPEG = jpeg.Encode(frame, jpeg.EncodeOptions{Quality: 90, Subsampling: jpeg.Sub420})
	}
	return hdBenchJPEG
}

// BenchmarkIngestHD measures the serving ingest hot path in isolation —
// header parse, (scaled/ROI) decode into pooled buffers, residual preproc
// chain into the pooled tensor — on a 1920x1080 JPEG headed for a 224x224
// model input. "full" forces full-resolution decode; "scaled" lets the
// ingest planner pick the decode scale (1/4 here); "scaled-roi" adds
// central-crop ROI decoding. The full/scaled ratio is the compiled-ingest
// speedup tracked in BENCH_preproc.json.
func BenchmarkIngestHD(b *testing.B) {
	enc := hdJPEG(b)
	cfg, err := nn.VariantConfig("resnet-a", 10, 32)
	if err != nil {
		b.Fatal(err)
	}
	model, err := nn.NewResNet(rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		rc   RuntimeConfig
	}{
		{"full", RuntimeConfig{InputRes: 224, DisableCompiled: true, DisableScaledDecode: true}},
		{"scaled", RuntimeConfig{InputRes: 224, DisableCompiled: true}},
		{"scaled-roi", RuntimeConfig{InputRes: 224, DisableCompiled: true, ROIDecode: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rt, err := NewRuntime(model, bc.rc)
			if err != nil {
				b.Fatal(err)
			}
			prep := rt.prepFunc()
			ws := &engine.WorkerState{}
			job := engine.Job{Index: 0, Tag: &classifyReq{inputs: []MediaInput{{Codec: CodecJPEG, Data: enc}}, preds: make([]int, 1), entry: rt.entries[0]}}
			out := tensor.New(3, 224, 224)
			if err := prep(ws, job, out); err != nil { // compile the plan, warm the buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := prep(ws, job, out); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "im/s")
		})
	}
}

// BenchmarkServeIngestHD is the end-to-end serve-mode counterpart: a warm
// streaming pipeline classifying 1920x1080 JPEGs through a 64x64 model,
// with and without the compiled scaled-decode ingest path. Each iteration
// streams one 32-image request through the shared engine; the metric is
// end-to-end images/second.
func BenchmarkServeIngestHD(b *testing.B) {
	enc := hdJPEG(b)
	cfg, err := nn.VariantConfig("resnet-a", 10, 64)
	if err != nil {
		b.Fatal(err)
	}
	model, err := nn.NewResNet(rand.New(rand.NewSource(1)), cfg)
	if err != nil {
		b.Fatal(err)
	}
	const reqImages = 32
	inputs := make([]EncodedImage, reqImages)
	for i := range inputs {
		inputs[i] = EncodedImage{Data: enc}
	}
	for _, bc := range []struct {
		name string
		rc   RuntimeConfig
	}{
		{"full", RuntimeConfig{InputRes: 64, BatchSize: 8, DisableScaledDecode: true}},
		{"scaled", RuntimeConfig{InputRes: 64, BatchSize: 8}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rt, err := NewRuntime(model, bc.rc)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := rt.Serve()
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ctx := context.Background()
			if _, err := srv.Classify(ctx, inputs[:2]); err != nil { // warm
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Classify(ctx, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*reqImages)/b.Elapsed().Seconds(), "im/s")
		})
	}
}

// BenchmarkServePlannerHD sweeps accuracy floors through the serving
// planner on a warm multi-variant server: 1920x1080 JPEGs served by a
// three-entry zoo (resnet-b@128 pinned at 0.95 validation accuracy,
// resnet-a@128 at 0.88, resnet-a@64 at 0.80 — untrained weights, since
// only geometry matters for throughput). The strict floor pins the top
// variant and reproduces the single-model baseline; each relaxation frees
// the planner to route to a cheaper (variant, resolution, decode scale)
// point. The floor-strict/floor-relaxed ratio is the planner speedup
// tracked in BENCH_serve.json.
func BenchmarkServePlannerHD(b *testing.B) {
	enc := hdJPEG(b)
	zoo := NewZoo()
	for _, e := range []struct {
		variant string
		res     int
		acc     float64
	}{
		{"resnet-b", 128, 0.95},
		{"resnet-a", 128, 0.88},
		{"resnet-a", 64, 0.80},
	} {
		cfg, err := nn.VariantConfig(e.variant, 10, e.res)
		if err != nil {
			b.Fatal(err)
		}
		model, err := nn.NewResNet(rand.New(rand.NewSource(1)), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := zoo.Add(ZooEntry{Variant: e.variant, InputRes: e.res, Accuracy: e.acc,
			Model: model, Config: cfg}); err != nil {
			b.Fatal(err)
		}
	}
	rt, err := NewZooRuntime(zoo, RuntimeConfig{BatchSize: 8})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const reqImages = 32
	inputs := make([]EncodedImage, reqImages)
	for i := range inputs {
		inputs[i] = EncodedImage{Data: enc}
	}
	ctx := context.Background()
	for _, bc := range []struct {
		name string
		qos  QoS
	}{
		{"floor-strict", QoS{MinAccuracy: 0.95}},
		{"floor-mid", QoS{MinAccuracy: 0.85}},
		{"floor-relaxed", QoS{}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			res, err := srv.ClassifyQoS(ctx, inputs[:2], bc.qos) // warm this entry's pools
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.ClassifyQoS(ctx, inputs, bc.qos); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*reqImages)/b.Elapsed().Seconds(), "im/s")
			b.StopTimer()
			_ = res
		})
	}
}
