package smol

import (
	"context"
	"math"
	"sync"
	"testing"

	"smol/internal/analysis/alloctest"
	"smol/internal/codec/vid"
	"smol/internal/img"
)

// openTestStore ingests one clip into a fresh store and returns its handle.
func openTestStore(t *testing.T, enc []byte, opts IngestOptions) (*MediaStore, *StoredVideo) {
	t.Helper()
	ms, err := OpenMediaStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	v, err := ms.IngestVideo("clip", enc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ms, v
}

// TestClassifyVideoStoredMatchesSequential is the store-path acceptance
// equivalence: the parallel per-GOP fan-out must predict bit-identically to
// the sequential full-decode oracle (DisableGOPSeek over the same stored
// stream) at every stride, including strides that cross GOP boundaries
// mid-group and strides aligned to the GOP interval.
func TestClassifyVideoStoredMatchesSequential(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	frames, _ := renderClassVideo(t, 53, 48)
	const gop = 6
	enc := encodeClassVideo(t, frames, 85, gop)
	_, v := openTestStore(t, enc, IngestOptions{})
	ctx := context.Background()

	run := func(disable bool, workers, stride int) VideoResult {
		t.Helper()
		rt, err := NewRuntime(clf.Model, RuntimeConfig{
			InputRes: 16, BatchSize: 8, Workers: 2,
			DisableGOPSeek: disable, VideoDecodeWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := rt.Serve()
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		res, err := srv.ClassifyVideoStored(ctx, v, VideoOpts{Stride: stride, Deblock: DeblockOn})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, stride := range []int{1, 4, gop, 7, 13, 2 * gop, 60} {
		seq := run(true, 0, stride)
		for _, workers := range []int{1, 3} {
			par := run(false, workers, stride)
			if len(par.Predictions) != len(seq.Predictions) {
				t.Fatalf("stride %d workers %d: %d predictions vs sequential %d",
					stride, workers, len(par.Predictions), len(seq.Predictions))
			}
			for i := range par.Predictions {
				if par.Predictions[i] != seq.Predictions[i] {
					t.Fatalf("stride %d workers %d sample %d (frame %d): parallel predicted %d, sequential %d",
						stride, workers, i, par.FrameIndices[i], par.Predictions[i], seq.Predictions[i])
				}
			}
			// Every sample costs at most its intra-GOP prefix; nothing
			// outside the sampled GOPs is ever decoded.
			span := (len(seq.Predictions)-1)*stride + 1
			if got := par.Decode.FramesDecoded + par.Decode.FramesBypassed; got < len(par.Predictions) || par.Decode.FramesDecoded > span {
				t.Fatalf("stride %d workers %d: decoded %d bypassed %d over a %d-frame span",
					stride, workers, par.Decode.FramesDecoded, par.Decode.FramesBypassed, span)
			}
			if stride%gop == 0 && par.Decode.FramesDecoded != len(par.Predictions) {
				// GOP-aligned samples land on I-frames: one decode each.
				t.Fatalf("stride %d workers %d: decoded %d frames for %d GOP-aligned samples",
					stride, workers, par.Decode.FramesDecoded, len(par.Predictions))
			}
		}
	}
}

// TestClassifyVideoStoredRenditions: the planner must route a store-backed
// request to an ingested low-resolution rendition exactly as it would to a
// request-supplied variant, under a relaxed accuracy floor.
func TestClassifyVideoStoredRenditions(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	frames, _ := renderClassVideo(t, 24, 96)
	enc := encodeClassVideo(t, frames, 85, 6)
	_, v := openTestStore(t, enc, IngestOptions{RenditionShortEdges: []int{48}})
	if got := len(v.Renditions()); got != 1 {
		t.Fatalf("%d renditions, want 1", got)
	}
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.ClassifyVideoStored(context.Background(), v, VideoOpts{Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Stream != 1 {
		t.Fatalf("relaxed-floor plan served stream %d, want the 48px rendition (1)", res.Plan.Stream)
	}
	if len(res.Predictions) != 6 {
		t.Fatalf("%d predictions, want 6", len(res.Predictions))
	}
}

// TestClassifyVideoStoredConcurrent hammers one stored video from several
// goroutines (run under -race): requests share the runtime's planner memo
// and engine but each owns its decoder pool, so answers must stay
// deterministic.
func TestClassifyVideoStoredConcurrent(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	frames, _ := renderClassVideo(t, 36, 48)
	enc := encodeClassVideo(t, frames, 85, 5)
	_, v := openTestStore(t, enc, IngestOptions{})
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2, VideoDecodeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	want, err := srv.ClassifyVideoStored(ctx, v, VideoOpts{Stride: 3, Deblock: DeblockOn})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	preds := make([][]int, callers)
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer wg.Done()
			res, err := srv.ClassifyVideoStored(ctx, v, VideoOpts{Stride: 3, Deblock: DeblockOn})
			errs[c], preds[c] = err, res.Predictions
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatal(errs[c])
		}
		for i := range want.Predictions {
			if preds[c][i] != want.Predictions[i] {
				t.Fatalf("caller %d sample %d: predicted %d, want %d", c, i, preds[c][i], want.Predictions[i])
			}
		}
	}
}

// TestEstimateMeanStoredMatchesRaw: the store-backed aggregation must give
// the exact same estimate as the raw-stream query over the primary stream —
// and it must do so without retaining decoded frames, seeking each sampled
// frame through the persisted index instead.
func TestEstimateMeanStoredMatchesRaw(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	frames, _ := renderClassVideo(t, 48, 48)
	enc := encodeClassVideo(t, frames, 85, 8)
	_, v := openTestStore(t, enc, IngestOptions{})
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	raw, err := srv.EstimateMean(ctx, enc, AggregateOpts{ErrTarget: 1e-9, Deblock: DeblockOn, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stored, err := srv.EstimateMeanStored(ctx, v, AggregateOpts{ErrTarget: 1e-9, Deblock: DeblockOn, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stored.Estimate-raw.Estimate) > 1e-12 || stored.TargetInvocations != raw.TargetInvocations {
		t.Fatalf("stored query answered %.6f (%d invocations), raw %.6f (%d)",
			stored.Estimate, stored.TargetInvocations, raw.Estimate, raw.TargetInvocations)
	}
	// The raw exhaustive query retained the whole short clip and decoded it
	// once; the stored query re-decodes each sample via the index, so its
	// decode counter must exceed one full pass yet never replay the prefix
	// (every re-decode is bounded by one GOP).
	if stored.Decode.FramesDecoded <= raw.Decode.FramesDecoded {
		t.Fatalf("stored query decoded %d frames, raw retained path %d — retention not dropped?",
			stored.Decode.FramesDecoded, raw.Decode.FramesDecoded)
	}
	if stored.Decode.GOPSeeks == 0 {
		t.Fatal("stored sampled pass never used the GOP index")
	}
	if _, err := srv.EstimateMeanStored(ctx, v, AggregateOpts{}); err == nil {
		t.Fatal("zero error target should error")
	}
}

// TestGOPTasksPartition: the fan-out planner must partition the sampled
// frames into per-GOP groups with contiguous slots, never splitting or
// reordering a group.
func TestGOPTasksPartition(t *testing.T) {
	index := []vid.GOPEntry{
		{FirstFrame: 0, Frames: 5},
		{FirstFrame: 5, Frames: 5},
		{FirstFrame: 10, Frames: 5},
		{FirstFrame: 15, Frames: 2},
	}
	for _, stride := range []int{1, 2, 3, 5, 7, 16, 17, 40} {
		tasks := gopTasks(index, 17, stride)
		slot := 0
		prevFrame := -1
		for _, task := range tasks {
			if task.firstSlot != slot {
				t.Fatalf("stride %d: task starts at slot %d, want %d", stride, task.firstSlot, slot)
			}
			if len(task.frames) == 0 {
				t.Fatalf("stride %d: empty task", stride)
			}
			g := -1
			for _, f := range task.frames {
				if f <= prevFrame || f%stride != 0 {
					t.Fatalf("stride %d: frame %d out of order or off-stride", stride, f)
				}
				prevFrame = f
				fg := f / 5
				if fg > 3 {
					fg = 3
				}
				if g == -1 {
					g = fg
				} else if fg != g {
					t.Fatalf("stride %d: task mixes GOPs %d and %d", stride, g, fg)
				}
				slot++
			}
		}
		if wantSlots := (17 + stride - 1) / stride; slot != wantSlots {
			t.Fatalf("stride %d: tasks cover %d samples, want %d", stride, slot, wantSlots)
		}
	}
}

// TestGOPWorkerWarmPathAllocates pins the decode fan-out's warm path: a
// worker re-running tasks over a warm decoder and frame pool must not
// allocate per frame.
func TestGOPWorkerWarmPathAllocates(t *testing.T) {
	frames, _ := renderClassVideo(t, 30, 32)
	enc := encodeClassVideo(t, frames, 85, 5)
	dec, err := vid.NewDecoder(enc, vid.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	index, err := vid.IndexGOPs(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetGOPIndex(index); err != nil {
		t.Fatal(err)
	}
	cr := &classifyReq{frames: make([]*img.Image, 6), framePool: &sync.Pool{}}
	w := &gopWorker{dec: dec, cr: cr}
	tasks := gopTasks(index, 30, 5)
	ti := 0
	step := func() {
		task := tasks[ti%len(tasks)]
		if err := w.decodeTask(task); err != nil {
			t.Fatal(err)
		}
		for i := range task.frames {
			slot := task.firstSlot + i
			cr.framePool.Put(cr.frames[slot])
			cr.frames[slot] = nil
		}
		ti++
	}
	step() // warm the decoder, pool, and flate reader
	alloctest.Run(t, "smol.gopWorker.decodeTask", 1, step)
}
