package smol

import (
	"fmt"

	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/codec/vid"
	"smol/internal/img"
)

// Codec identifies the encoding of a MediaInput. The serving stack is
// codec-generic: ingest plans, planner memoization, and decode state are all
// keyed by codec, so same-dimension inputs of different codecs never share
// a compiled plan.
type Codec int

// Supported media codecs.
const (
	// CodecJPEG is the built-in baseline JPEG codec (ROI and DCT-domain
	// scaled decoding available).
	CodecJPEG Codec = iota
	// CodecPNG is the lossless spng codec.
	CodecPNG
	// CodecVideo is the H.264-like SVID video codec (I/P frames, in-loop
	// deblocking). Video inputs are streams of frames; serve them with
	// Server.ClassifyVideo or Server.EstimateMean rather than Classify.
	CodecVideo
)

func (c Codec) String() string {
	switch c {
	case CodecJPEG:
		return "jpeg"
	case CodecPNG:
		return "png"
	case CodecVideo:
		return "svid"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// MediaInput is one encoded input tagged with its codec: the media-generic
// unit the serving stack plans for and decodes. Still images (JPEG, PNG)
// flow through Classify; video streams through ClassifyVideo/EstimateMean.
type MediaInput struct {
	Codec Codec
	Data  []byte
}

// Image re-exports the 8-bit interleaved RGB image type used throughout.
type Image = img.Image

// Rect re-exports the rectangle type used for ROI decoding.
type Rect = img.Rect

// NewImage allocates a zeroed image.
func NewImage(w, h int) *Image { return img.New(w, h) }

// EncodeJPEG compresses an image with the built-in baseline JPEG codec.
// quality is the IJG quality in [1,100] (0 = 75).
func EncodeJPEG(m *Image, quality int) []byte {
	return jpeg.Encode(m, jpeg.EncodeOptions{Quality: quality})
}

// DecodeJPEG decompresses a baseline JPEG.
func DecodeJPEG(data []byte) (*Image, error) { return jpeg.Decode(data) }

// JPEGDecodeStats re-exports the partial-decoding work counters.
type JPEGDecodeStats = jpeg.DecodeStats

// DecodeJPEGROI partially decodes only the macroblock-aligned region
// containing roi (the paper's Algorithm 1): entropy decoding stops after
// the last needed macroblock row, and reconstruction (IDCT, upsampling,
// color conversion) is skipped outside the region. The returned rectangle
// locates the decoded image within the full frame.
func DecodeJPEGROI(data []byte, roi Rect) (*Image, Rect, *JPEGDecodeStats, error) {
	return jpeg.DecodeWithOptions(data, jpeg.DecodeOptions{ROI: &roi})
}

// DecodeJPEGScaled decodes at reduced resolution directly in the DCT
// domain (the paper's low-resolution decode, §5): scale 2, 4 or 8 shrinks
// IDCT and color-conversion work by ~scale^2 via reduced 4x4/2x2/1x1
// inverse transforms while the entropy stream is still fully parsed. The
// output approximates a full decode followed by a box downsample by scale.
func DecodeJPEGScaled(data []byte, scale int) (*Image, *JPEGDecodeStats, error) {
	m, _, stats, err := jpeg.DecodeWithOptions(data, jpeg.DecodeOptions{Scale: scale})
	return m, stats, err
}

// JPEGDecoder re-exports the reusable JPEG decoder: Parse once, then
// Decode with any combination of ROI, Scale and a pooled destination
// image. Warm instances decode without allocating.
type JPEGDecoder = jpeg.Decoder

// JPEGDecodeOptions re-exports the decode options (ROI, EarlyStopRow,
// Scale, Dst) accepted by JPEGDecoder.Decode.
type JPEGDecodeOptions = jpeg.DecodeOptions

// EncodePNG compresses losslessly with the PNG-like codec.
func EncodePNG(m *Image) []byte { return spng.Encode(m, 0) }

// DecodePNG decompresses an spng image.
func DecodePNG(data []byte) (*Image, error) { return spng.Decode(data) }

// EncodeVideo compresses frames with the H.264-like codec (I/P frames,
// motion compensation, in-loop deblocking). quality in [1,100], gop is the
// I-frame interval.
func EncodeVideo(frames []*Image, quality, gop int) ([]byte, error) {
	return vid.Encode(frames, vid.EncodeOptions{Quality: quality, GOP: gop})
}

// DecodeVideo decompresses every frame. disableDeblock skips the in-loop
// deblocking filter for faster, reduced-fidelity decoding (§6.4).
func DecodeVideo(data []byte, disableDeblock bool) ([]*Image, error) {
	return vid.DecodeAll(data, vid.DecodeOptions{DisableDeblock: disableDeblock})
}

// VideoInfo re-exports the stream-header summary (dimensions, frame count,
// GOP) the video planner peeks at without decoding.
type VideoInfo = vid.Info

// ProbeVideo parses an SVID stream header.
func ProbeVideo(data []byte) (VideoInfo, error) { return vid.Probe(data) }

// VideoDecodeStats re-exports the video decoder's work counters
// (frames/IDCT blocks/deblocked edges/macroblock modes).
type VideoDecodeStats = vid.DecodeStats
