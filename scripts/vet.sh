#!/usr/bin/env bash
# Runs the repo's own static-analysis suite (cmd/smol-vet) over the whole
# module, including the //smol:noalloc alloc-test coverage check. CI runs
# this as a required job; run it locally before sending a PR.
#
#   scripts/vet.sh             # vet-style findings, nonzero exit if any
#   scripts/vet.sh -json       # machine-readable findings
#
# The analyzers and the annotation vocabulary they enforce:
#
#   pairing      Get/Put on engine.TensorPool and sync.Pool,
#                Acquire/Release on engine.PinnedArena, and send/recv on
#                *Sem worker-semaphore channels must balance on every
#                return and panic path. Deferred releases count. A value
#                that escapes (stored, sent, returned) needs //smol:owns
#                on the function to mark the ownership transfer. Custom
#                wrapper pairs are declared with //smol:acquire <class>
#                and //smol:release <class>.
#   noalloc      Functions marked //smol:noalloc are rejected on any
#                syntactic allocation: make/new, composite literals,
#                growing append, closures, fmt.*/errors.New, interface
#                boxing. A cold path (error construction, one-time
#                warm-up) is exempted line-by-line with //smol:coldpath.
#   ctxdrop      Exported methods taking a context.Context must use it:
#                bare channel ops outside a select watching ctx.Done()
#                and context.Background()/TODO() calls are flagged.
#   lockbalance  sync.Mutex/RWMutex Lock/Unlock and RLock/RUnlock must
#                balance on every path, same rules as pairing.
#   coverage     (-check-coverage) every //smol:noalloc function must be
#                named by an alloctest.Run call in some _test.go file.
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/smol-vet -check-coverage "$@" ./...
