#!/usr/bin/env bash
# Runs the inference micro-benchmarks (reference vs compiled forward, GEMM,
# streaming engine) and records ns/op per benchmark in BENCH_infer.json so
# the perf trajectory of the compiled path is tracked in-repo.
#
#   scripts/bench.sh                # 1s per benchmark, writes BENCH_infer.json
#   BENCHTIME=300ms scripts/bench.sh
#   OUT=/tmp/b.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_infer.json}"
FILTER='BenchmarkResNetForward|BenchmarkResNetForwardCompiled|BenchmarkGEMM|BenchmarkEngineStreamingWarm|BenchmarkEngineStreamingConcurrent'

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$FILTER" -benchtime "$BENCHTIME" . | tee "$tmp"

awk -v benchtime="$BENCHTIME" '
/^Benchmark/ && $4 == "ns/op" {
  name = $1
  sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
  if (out != "") out = out ",\n"
  out = out sprintf("    \"%s\": %s", name, $3)
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
  printf "{\n"
  printf "  \"generated_by\": \"scripts/bench.sh\",\n"
  printf "  \"benchtime\": \"%s\",\n", benchtime
  printf "  \"cpu\": \"%s\",\n", cpu
  printf "  \"unit\": \"ns/op\",\n"
  printf "  \"benchmarks\": {\n%s\n  }\n}\n", out
}' "$tmp" > "$OUT"

echo "wrote $OUT"
