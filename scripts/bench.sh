#!/usr/bin/env bash
# Runs the performance micro-benchmarks and records ns/op per benchmark so
# the perf trajectory is tracked in-repo:
#
#   - BENCH_infer.json: inference path (reference vs compiled forward,
#     the quantized int8 forward, f32 and int8 GEMM GMAC/s, streaming
#     engine).
#   - BENCH_preproc.json: ingest path (full vs DCT-domain scaled JPEG
#     decode on 1920x1080, the compiled ingest prep hot path, and
#     end-to-end serve-mode im/s).
#   - BENCH_serve.json: serving planner (accuracy floors swept through a
#     warm multi-variant zoo server; the floor-strict/floor-relaxed ratio
#     is the planner's throughput headroom).
#   - BENCH_video.json: video serving (frames/s over deblock on/off x
#     native res variants x accuracy floors, the resident decoder, and
#     EstimateMean's target-invocation savings vs exhaustive).
#   - BENCH_select.json: LIMIT selection queries (the proxy cascade vs
#     the verify-every-frame full scan across proxy selectivity and K;
#     the cascade/fullscan ratio is the predicate-pushdown win).
#
#   scripts/bench.sh                # 1s per benchmark, writes all files
#   BENCHTIME=300ms scripts/bench.sh
#   OUT=/tmp/b.json OUT_PREPROC=/tmp/p.json OUT_SERVE=/tmp/s.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_infer.json}"
OUT_PREPROC="${OUT_PREPROC:-BENCH_preproc.json}"
OUT_SERVE="${OUT_SERVE:-BENCH_serve.json}"
OUT_VIDEO="${OUT_VIDEO:-BENCH_video.json}"
OUT_SELECT="${OUT_SELECT:-BENCH_select.json}"
INFER_FILTER='BenchmarkResNetForward|BenchmarkResNetForwardCompiled|BenchmarkResNetForwardInt8|BenchmarkGEMM|BenchmarkGEMMInt8|BenchmarkEngineStreamingWarm|BenchmarkEngineStreamingConcurrent'
PREPROC_FILTER='BenchmarkDecodeScaledHD|BenchmarkIngestHD|BenchmarkServeIngestHD'
SERVE_FILTER='BenchmarkServePlannerHD'
VIDEO_FILTER='BenchmarkVideoServe|BenchmarkEstimateMeanSavings|BenchmarkDecoderResident|BenchmarkStoreSampling'
SELECT_FILTER='BenchmarkSelectLimit'

# collect <filter> <out-file> <packages...>: run the benchmarks and write
# a {benchmark: ns/op} JSON summary.
collect() {
  local filter="$1" out="$2"
  shift 2
  local tmp
  tmp="$(mktemp)"
  # shellcheck disable=SC2064  # expand $tmp now; it is function-local
  trap "rm -f '$tmp'" RETURN
  go test -run '^$' -bench "$filter" -benchtime "$BENCHTIME" "$@" | tee "$tmp"
  awk -v benchtime="$BENCHTIME" '
  /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": %s", name, $3)
  }
  /^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
  END {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench.sh\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"unit\": \"ns/op\",\n"
    printf "  \"benchmarks\": {\n%s\n  }\n}\n", out
  }' "$tmp" > "$out"
  echo "wrote $out"
}

collect "$INFER_FILTER" "$OUT" .
collect "$PREPROC_FILTER" "$OUT_PREPROC" ./internal/codec/jpeg/ .
collect "$SERVE_FILTER" "$OUT_SERVE" .
collect "$VIDEO_FILTER" "$OUT_VIDEO" ./internal/codec/vid/ .
collect "$SELECT_FILTER" "$OUT_SELECT" .
