// Command smol-query runs one visual analytics query end to end.
//
// Classification (trains a model, encodes the test set, classifies through
// the pipelined engine):
//
//	smol-query -type classify -dataset bike-bird
//
// Aggregation (BlazeIt-style control-variate mean estimation over a
// synthetic video with real encode/decode):
//
//	smol-query -type aggregate -dataset taipei -err 0.03
//
// Serving mode (trains once, then holds a warm streaming pipeline and fires
// concurrent classification requests at it — the latency-constrained
// deployment of §3.1):
//
//	smol-query -type classify -dataset bike-bird -serve -requests 4
//
// Planner mode (trains a multi-entry model zoo and lets the serving
// planner jointly pick model variant, input resolution, decode scale,
// numeric precision, and preprocessing chain per request from an accuracy
// floor; each zoo entry gains a quantized int8 twin unless -noint8 is set,
// and -explain prints the chosen plan — precision and the active GEMM
// kernel (avx2/portable) included — next to its predicted vs. measured
// throughput. -nosimd forces the portable f32 kernel, which is
// bit-identical to the AVX2 tier, so it changes throughput only):
//
//	smol-query -type classify -dataset bike-bird -serve -zoo -minacc 0.8 -explain
//	smol-query -type classify -dataset bike-bird -serve -zoo -noint8 -explain
//	smol-query -type classify -dataset bike-bird -serve -zoo -nosimd -explain
//
// Video serving mode (classifies an SVID file — e.g. one written by
// smol-datagen -videos — through the warm engine; the video planner picks
// deblocking, the stored rendition, the zoo entry, and the preprocessing
// chain jointly; -explain prints the chosen video plan):
//
//	smol-query -video out/video/taipei-full.vid -stride 5 -explain
//	smol-query -video taipei-full.vid -lowres taipei-low.vid -zoo -minacc 0.8 -explain
//
// Store-backed video serving (-store ingests the video into an indexed
// media store first, then serves from it: sampling seeks straight to the
// GOPs containing the sampled frames and fans them across a decoder pool
// instead of decoding the whole stream; -noseek forces the sequential
// full-decode path for an A/B comparison):
//
//	smol-query -video taipei-full.vid -store /tmp/mediastore -stride 100 -explain
//	smol-query -video taipei-full.vid -store /tmp/mediastore -stride 100 -noseek
//
// Selection queries (-select runs a BlazeIt-style LIMIT query over an
// ingested video: a cheap proxy scores every frame — from the persisted
// score sidecar when one exists — and only the top-ranked candidates are
// verified through the full model, seeking just the GOPs they live in and
// stopping at -limit confirmations; -explain prints the cascade plan and
// the proxy/oracle invocation and GOP-touch counters):
//
//	smol-query -video taipei-full.vid -store /tmp/mediastore -select -class 1 -limit 10 -explain
//	smol-query -video taipei-full.vid -store /tmp/mediastore -select -class 1 -minconf 0.6 -limit 5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"smol"
	"smol/internal/blazeit"
	"smol/internal/data"
)

func main() {
	log.SetFlags(0)
	qtype := flag.String("type", "classify", "query type: classify or aggregate")
	dataset := flag.String("dataset", "bike-bird", "dataset name")
	errTarget := flag.Float64("err", 0.03, "aggregation error target")
	serve := flag.Bool("serve", false, "classify through a warm streaming server with concurrent requests")
	requests := flag.Int("requests", 4, "concurrent requests in -serve mode")
	execPar := flag.Int("execpar", 0, "max concurrent model executions on the compiled path (0 = 2)")
	compiled := flag.Bool("compiled", true, "execute batches through the compiled inference plan")
	roiDecode := flag.Bool("roidecode", false, "partially decode only the central crop region (Algorithm 1)")
	scaleDecode := flag.Bool("scaledecode", true, "let the ingest planner decode JPEGs at reduced resolution (1/2, 1/4, 1/8) when cheapest")
	zoo := flag.Bool("zoo", false, "train a multi-entry model zoo and serve through the joint accuracy/throughput planner (-serve mode)")
	int8Flag := flag.Bool("int8", true, "quantize every zoo entry to an int8 twin (zoo mode); the planner routes to the fast tier when the accuracy floor allows")
	noInt8 := flag.Bool("noint8", false, "disable the int8 inference tier (overrides -int8)")
	noSIMD := flag.Bool("nosimd", false, "force the portable f32 GEMM kernel instead of AVX2 (bit-identical results; the scalar-tier A/B oracle, mirroring -noint8)")
	minAcc := flag.Float64("minacc", 0, "accuracy floor for the serving planner (0 = max throughput)")
	explain := flag.Bool("explain", false, "print the planner's chosen plan per request (variant, input res, decode scale, preproc chain, predicted vs measured throughput)")
	video := flag.String("video", "", "classify an SVID video file through the warm serving engine")
	lowres := flag.String("lowres", "", "optional natively-stored low-resolution rendition of -video the planner may route to")
	stride := flag.Int("stride", 1, "classify every Nth frame of -video (skipped frames are decoded, not preprocessed)")
	storeDir := flag.String("store", "", "ingest -video into the indexed media store at this directory and serve store-backed (GOP-seek sampling)")
	noSeek := flag.Bool("noseek", false, "disable GOP-seek sampling (sequential full decode, the A/B baseline)")
	selectQ := flag.Bool("select", false, "run a LIMIT selection query over -video through the proxy cascade (requires -store)")
	selClass := flag.Int("class", 1, "predicted class a frame must have to match the -select query")
	selMinConf := flag.Float64("minconf", 0, "proxy confidence floor in [0,1]: -select candidates scoring below it are excluded without verification")
	selLimit := flag.Int("limit", 10, "max frames the -select query returns (0 = all matches)")
	noCascade := flag.Bool("nocascade", false, "disable the proxy cascade: -select verifies every sampled frame (the A/B baseline)")
	flag.Parse()

	// The video, serving, and selection modes partition the flag surface;
	// reject contradictory combinations up front with a usage error instead
	// of silently ignoring flags.
	switch {
	case *serve && *video != "":
		log.Fatalf("smol-query: -serve and -video are mutually exclusive (-video always serves through a warm engine); drop one")
	case *storeDir != "" && *video == "":
		log.Fatalf("smol-query: -store requires -video (the media store ingests and serves video streams)")
	case *lowres != "" && *video == "":
		log.Fatalf("smol-query: -lowres requires -video (it supplies a low-resolution rendition of that stream)")
	case *selectQ && *video == "":
		log.Fatalf("smol-query: -select requires -video (selection queries run over a video stream)")
	case *selectQ && *storeDir == "":
		log.Fatalf("smol-query: -select requires -store (the cascade's score sidecar and GOP pushdown live in the media store)")
	}

	useInt8 := *int8Flag && !*noInt8
	switch *qtype {
	case "classify":
		if *selectQ {
			videoSelect(*video, *storeDir, *dataset, *selClass, *selLimit, *stride, *execPar,
				*compiled, *zoo, useInt8, *noSIMD, *noSeek, *noCascade, *selMinConf, *minAcc, *explain)
		} else if *video != "" {
			videoClassify(*video, *lowres, *storeDir, *dataset, *stride, *execPar, *compiled, *roiDecode, *scaleDecode,
				*zoo, useInt8, *noSIMD, *noSeek, *minAcc, *explain)
		} else if *serve {
			serveClassify(*dataset, *requests, *execPar, *compiled, *roiDecode, *scaleDecode,
				*zoo, useInt8, *noSIMD, *minAcc, *explain)
		} else {
			classify(*dataset, *roiDecode, *scaleDecode, *noSIMD)
		}
	case "aggregate":
		aggregate(*dataset, *errTarget)
	default:
		log.Fatalf("unknown query type %q", *qtype)
	}
}

func classify(name string, roiDecode, scaleDecode, noSIMD bool) {
	spec, err := data.ImageDataset(name)
	if err != nil {
		log.Fatal(err)
	}
	ds := data.Generate(spec)
	fmt.Printf("dataset %s: %d classes, %d train / %d test at %dpx\n",
		spec.Name, spec.NumClasses, len(ds.Train), len(ds.Test), spec.FullRes)

	train := make([]smol.LabeledImage, len(ds.Train))
	for i, li := range ds.Train {
		train[i] = smol.LabeledImage{Image: li.Image, Label: li.Label}
	}
	fmt.Println("training resnet-a...")
	start := time.Now()
	clf, err := smol.TrainClassifier(train, spec.NumClasses, smol.TrainOptions{Epochs: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %s\n", time.Since(start).Round(time.Second))

	inputs := make([]smol.EncodedImage, len(ds.Test))
	for i, li := range ds.Test {
		inputs[i] = smol.EncodedImage{Data: smol.EncodeJPEG(li.Image, 90)}
	}
	rt, err := smol.NewRuntime(clf.Model, smol.RuntimeConfig{
		InputRes: spec.FullRes, BatchSize: 32,
		ROIDecode: roiDecode, DisableScaledDecode: !scaleDecode,
		DisableSIMD: noSIMD,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := rt.Classify(inputs)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, p := range res.Predictions {
		if p == ds.Test[i].Label {
			correct++
		}
	}
	fmt.Printf("accuracy %.1f%% over %d images, engine %.0f im/s (%d batches)\n",
		100*float64(correct)/float64(len(inputs)), len(inputs),
		res.Stats.Throughput, res.Stats.Batches)
}

// trainServingRuntime generates the synthetic image dataset, trains a
// single resnet-a (or a multi-entry zoo, with useZoo), and builds the
// serving runtime from cfg — the setup shared by the -serve and -video
// modes, so runtime flags (-execpar, -compiled, -roidecode, -scaledecode)
// behave identically in both.
func trainServingRuntime(dataset string, useZoo, useInt8 bool, cfg smol.RuntimeConfig) (*smol.Runtime, data.DatasetSpec, *data.Dataset) {
	spec, err := data.ImageDataset(dataset)
	if err != nil {
		log.Fatal(err)
	}
	ds := data.Generate(spec)
	fmt.Printf("dataset %s: %d classes, %d train / %d test at %dpx\n",
		spec.Name, spec.NumClasses, len(ds.Train), len(ds.Test), spec.FullRes)
	train := make([]smol.LabeledImage, len(ds.Train))
	for i, li := range ds.Train {
		train[i] = smol.LabeledImage{Image: li.Image, Label: li.Label}
	}
	var rt *smol.Runtime
	start := time.Now()
	if useZoo {
		if useInt8 {
			fmt.Println("training model zoo (resnet-b, resnet-a, resnet-a@half) with int8 twins...")
		} else {
			fmt.Println("training model zoo (resnet-b, resnet-a, resnet-a@half)...")
		}
		zoo, err := smol.TrainZoo(train, spec.NumClasses, smol.ZooTrainOptions{Epochs: 3, Seed: 1, Int8: useInt8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %s\n", time.Since(start).Round(time.Second))
		for _, e := range zoo.Entries() {
			fmt.Printf("  zoo entry %-19s [%s] validation accuracy %.3f\n",
				e.Name(), e.PrecisionLabel(), e.Accuracy)
		}
		rt, err = smol.NewZooRuntime(zoo, cfg)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("training resnet-a...")
		clf, err := smol.TrainClassifier(train, spec.NumClasses, smol.TrainOptions{Epochs: 3, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %s\n", time.Since(start).Round(time.Second))
		cfg.InputRes = spec.FullRes
		rt, err = smol.NewRuntime(clf.Model, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	return rt, spec, ds
}

// serveClassify trains once, brings up a resident streaming server, and
// fires concurrent classification requests that share the warm engine.
// With the compiled inference plan the requests' batches also execute in
// parallel (up to execPar forwards at once) instead of serializing. With
// useZoo a multi-entry model zoo is trained instead and each request is
// routed by the serving planner from the minAcc accuracy floor.
func serveClassify(name string, requests, execPar int, compiled, roiDecode, scaleDecode,
	useZoo, useInt8, noSIMD bool, minAcc float64, explain bool) {
	if requests < 1 {
		requests = 1
	}
	rt, _, ds := trainServingRuntime(name, useZoo, useInt8, smol.RuntimeConfig{
		BatchSize:    32,
		QoS:          smol.QoS{MinAccuracy: minAcc},
		ExecParallel: execPar, DisableCompiled: !compiled,
		ROIDecode: roiDecode, DisableScaledDecode: !scaleDecode,
		DisableSIMD: noSIMD,
	})

	inputs := make([]smol.EncodedImage, len(ds.Test))
	for i, li := range ds.Test {
		inputs[i] = smol.EncodedImage{Data: smol.EncodeJPEG(li.Image, 90)}
	}
	if rt.Compiled() {
		fmt.Println("execution: compiled inference plan (folded batch-norm, fused GEMM, parallel batches)")
	} else {
		fmt.Println("execution: reference model forward (serialized)")
	}
	fmt.Printf("ingest: scaled decode %v, ROI decode %v\n", scaleDecode, roiDecode)
	srv, err := rt.Serve()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	fmt.Printf("serving: %d concurrent requests x %d images against one warm engine\n",
		requests, len(inputs))
	var wg sync.WaitGroup
	results := make([]smol.ClassifyResult, requests)
	errs := make([]error, requests)
	wall := time.Now()
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = srv.Classify(context.Background(), inputs)
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(wall)
	for r, err := range errs {
		if err != nil {
			log.Fatalf("request %d: %v", r, err)
		}
	}

	total := 0
	for r, res := range results {
		correct := 0
		for i, p := range res.Predictions {
			if p == ds.Test[i].Label {
				correct++
			}
		}
		total += len(res.Predictions)
		fmt.Printf("request %d: accuracy %.1f%%, %.0f im/s, %d batches, mean latency %s\n",
			r, 100*float64(correct)/float64(len(res.Predictions)),
			res.Stats.Throughput, res.Stats.Batches,
			res.Stats.MeanLatency.Round(time.Microsecond))
		if explain {
			p := res.Plan
			fmt.Printf("  plan: entry %s [%s/%s] (val acc %.3f) on %s\n", p.Entry, p.Precision, p.Kernel, p.Accuracy, p.InputFormat)
			fmt.Printf("  plan: decode 1/%d, preproc %s\n", p.DecodeScale, p.Preproc)
			fmt.Printf("  plan: predicted %.0f im/s (latency %.0fus worst-case), measured %.0f im/s\n",
				p.PredictedThroughput, p.PredictedLatencyUS, res.Stats.Throughput)
		}
	}
	last := results[len(results)-1].Stats
	fmt.Printf("aggregate: %d images in %s (%.0f im/s); pool %d allocs / %d reuses across all requests\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), last.PoolAllocs, last.PoolReuses)
}

// videoClassify serves one SVID file through a warm engine: it trains the
// model (or zoo) on the synthetic image dataset, then streams the video's
// sampled frames through the media-generic pipeline, letting the video
// planner jointly pick deblocking, the stored rendition (when -lowres
// supplies one), the zoo entry, and the preprocessing chain for the -minacc
// target. With storeDir the video is first ingested into the indexed media
// store there and served store-backed: the persisted GOP index lets
// sampling seek straight to the sampled GOPs and fan them across a decoder
// pool (noSeek forces the sequential baseline for comparison).
func videoClassify(path, lowPath, storeDir, dataset string, stride, execPar int, compiled, roiDecode, scaleDecode,
	useZoo, useInt8, noSIMD, noSeek bool, minAcc float64, explain bool) {
	streamData, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	info, err := smol.ProbeVideo(streamData)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video %s: %d frames at %dx%d, GOP %d\n", path, info.Frames, info.W, info.H, info.GOP)
	var variants [][]byte
	if lowPath != "" {
		low, err := os.ReadFile(lowPath)
		if err != nil {
			log.Fatal(err)
		}
		variants = append(variants, low)
		if li, err := smol.ProbeVideo(low); err == nil {
			fmt.Printf("low-res rendition %s: %dx%d\n", lowPath, li.W, li.H)
		}
	}
	rt, _, _ := trainServingRuntime(dataset, useZoo, useInt8, smol.RuntimeConfig{
		BatchSize:    32,
		QoS:          smol.QoS{MinAccuracy: minAcc},
		ExecParallel: execPar, DisableCompiled: !compiled,
		ROIDecode: roiDecode, DisableScaledDecode: !scaleDecode,
		DisableGOPSeek: noSeek, DisableSIMD: noSIMD,
	})

	srv, err := rt.Serve()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	var res smol.VideoResult
	var wall time.Time
	if storeDir != "" {
		ms, err := smol.OpenMediaStore(storeDir)
		if err != nil {
			log.Fatal(err)
		}
		defer ms.Close()
		name := storeName(path)
		sv, ok := ms.Video(name)
		if !ok {
			ingest := time.Now()
			if sv, err = ms.IngestVideo(name, streamData, smol.IngestOptions{}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("ingested %q into %s in %s (GOP index persisted)\n",
				name, storeDir, time.Since(ingest).Round(time.Millisecond))
		} else {
			fmt.Printf("serving %q already ingested in %s\n", name, storeDir)
		}
		wall = time.Now()
		res, err = srv.ClassifyVideoStored(context.Background(), sv, smol.VideoOpts{
			Stride: stride,
			QoS:    smol.QoS{MinAccuracy: minAcc},
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		wall = time.Now()
		res, err = srv.ClassifyVideo(context.Background(), streamData, smol.VideoOpts{
			Stride:   stride,
			QoS:      smol.QoS{MinAccuracy: minAcc},
			Variants: variants,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(wall)
	hist := map[int]int{}
	for _, p := range res.Predictions {
		hist[p]++
	}
	fmt.Printf("classified %d frames (stride %d) in %s: %.1f sampled frames/s, %.1f decoded frames/s\n",
		len(res.Predictions), stride, elapsed.Round(time.Millisecond),
		float64(len(res.Predictions))/elapsed.Seconds(),
		float64(res.Decode.FramesDecoded)/elapsed.Seconds())
	fmt.Printf("decode: %d frames decoded, %d bypassed via %d GOP seeks\n",
		res.Decode.FramesDecoded, res.Decode.FramesBypassed, res.Decode.GOPSeeks)
	fmt.Printf("prediction histogram: %v\n", hist)
	if explain {
		p := res.Plan
		fmt.Printf("  plan: %s\n", p)
		fmt.Printf("  plan: rendition %d (%s), deblock %v, preproc %s\n", p.Stream, p.InputFormat, p.Deblock, p.Preproc)
		fmt.Printf("  plan: predicted %.0f im/s (latency %.0fus worst-case)\n", p.PredictedThroughput, p.PredictedLatencyUS)
		fmt.Printf("  decode: %d IDCT blocks, %d deblocked edges, %d inter / %d skipped MBs\n",
			res.Decode.BlocksIDCT, res.Decode.DeblockedEdges, res.Decode.InterMBs, res.Decode.SkippedMBs)
	}
}

// videoSelect answers a LIMIT selection query over an ingested video: the
// planner pairs a cheap proxy (blob counter or a fast zoo entry) with the
// verification plan, the proxy scores every frame (from the persisted
// score sidecar when the video was already queried or ingested with
// scores), and only the highest-confidence candidates are verified through
// the warm engine — seeking just the GOPs they live in and stopping at
// limit confirmations. noCascade verifies every sampled frame instead, the
// equivalence baseline.
func videoSelect(path, storeDir, dataset string, class, limit, stride, execPar int,
	compiled, useZoo, useInt8, noSIMD, noSeek, noCascade bool, minConf, minAcc float64, explain bool) {
	streamData, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	info, err := smol.ProbeVideo(streamData)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video %s: %d frames at %dx%d, GOP %d\n", path, info.Frames, info.W, info.H, info.GOP)
	rt, _, _ := trainServingRuntime(dataset, useZoo, useInt8, smol.RuntimeConfig{
		BatchSize:    32,
		QoS:          smol.QoS{MinAccuracy: minAcc},
		ExecParallel: execPar, DisableCompiled: !compiled,
		DisableGOPSeek:      noSeek,
		DisableProxyCascade: noCascade,
		DisableSIMD:         noSIMD,
	})
	srv, err := rt.Serve()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ms, err := smol.OpenMediaStore(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()
	name := storeName(path)
	sv, ok := ms.Video(name)
	if !ok {
		ingest := time.Now()
		if sv, err = ms.IngestVideo(name, streamData, smol.IngestOptions{ProxyScores: true}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %q into %s in %s (GOP index + proxy scores persisted)\n",
			name, storeDir, time.Since(ingest).Round(time.Millisecond))
	} else {
		fmt.Printf("serving %q already ingested in %s\n", name, storeDir)
	}

	wall := time.Now()
	res, err := srv.SelectVideo(context.Background(), sv, smol.SelectOpts{
		Class: class, MinConf: minConf, Limit: limit, Stride: stride,
		QoS: smol.QoS{MinAccuracy: minAcc},
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(wall)

	fmt.Printf("select class=%d minconf=%g limit=%d: %d frames in %s\n",
		class, minConf, limit, len(res.Frames), elapsed.Round(time.Millisecond))
	for i, f := range res.Frames {
		fmt.Printf("  frame %6d  proxy confidence %.3f\n", f, res.Scores[i])
		if i == 9 && len(res.Frames) > 10 {
			fmt.Printf("  ... %d more\n", len(res.Frames)-10)
			break
		}
	}
	cachedNote := ""
	if res.ScoresCached {
		cachedNote = " (score sidecar hit)"
	}
	fmt.Printf("cascade: %d proxy invocations%s, %d oracle invocations, %d/%d GOPs touched\n",
		res.ProxyInvocations, cachedNote, res.OracleInvocations, res.GOPsTouched, res.GOPsTotal)
	if explain {
		fmt.Printf("  plan: %s\n", res.Plan)
		fmt.Printf("  decode: %d frames decoded, %d bypassed via %d GOP seeks\n",
			res.Decode.FramesDecoded, res.Decode.FramesBypassed, res.Decode.GOPSeeks)
	}
}

// storeName derives a media-store name from a file path: the base name
// without extension, non-name characters replaced so it satisfies the
// store's [a-zA-Z0-9_-] rule.
func storeName(path string) string {
	base := filepath.Base(path)
	if ext := filepath.Ext(base); ext != "" {
		base = base[:len(base)-len(ext)]
	}
	out := []byte(base)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "video"
	}
	return string(out)
}

func aggregate(name string, errTarget float64) {
	spec, err := data.VideoDataset(name)
	if err != nil {
		log.Fatal(err)
	}
	video := data.GenerateVideo(spec)
	fmt.Printf("video %s: %d frames, true mean %.3f objects/frame\n",
		spec.Name, spec.Frames, video.MeanCount())

	enc, err := smol.EncodeVideo(video.LowResFrames(), 70, 30)
	if err != nil {
		log.Fatal(err)
	}
	frames, err := smol.DecodeVideo(enc, false)
	if err != nil {
		log.Fatal(err)
	}
	counter := blazeit.DefaultCounter(spec.LowW)
	preds := make([]float64, len(frames))
	for i, f := range frames {
		preds[i] = float64(counter.Count(f))
	}
	res, err := blazeit.EstimateMean(preds, func(f int) float64 { return float64(video.Counts[f]) },
		blazeit.Config{ErrTarget: errTarget, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate %.3f +/- %.3f using %d target invocations (of %d frames)\n",
		res.Estimate, res.HalfWidth, res.Samples, len(frames))
	fmt.Printf("true mean %.3f, error %.3f\n", video.MeanCount(), res.Estimate-video.MeanCount())
}
