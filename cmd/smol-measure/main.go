// Command smol-measure reproduces the paper's §2 measurement study and §7
// hardware economics: framework throughput (Table 1), the per-image
// preprocessing/execution breakdown (Figure 1), accelerator generations
// (Table 5), and the power/cost split.
package main

import (
	"fmt"
	"log"

	"smol/internal/experiments"
)

func main() {
	log.SetFlags(0)
	for _, id := range []string{"table1", "figure1", "mobilenet-ssd", "table2", "table5", "power-cost"} {
		tbl, err := experiments.Run(id, experiments.Quick)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(tbl)
	}
}
