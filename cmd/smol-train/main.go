// Command smol-train builds the trained-model zoo the experiments consume:
// for every image dataset, the three micro-ResNet variants under both
// regular and low-resolution-aware training (§5.3). Models are written to
// the zoo directory (default ./zoo, override with SMOL_ZOO) as gob files
// that cmd/smol-bench and the benchmarks load.
//
// Usage:
//
//	smol-train [-datasets name,name] [-variants a,b,c] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"smol/internal/data"
	"smol/internal/experiments"
	"smol/internal/nn"
)

func main() {
	log.SetFlags(0)
	datasets := flag.String("datasets", "", "comma-separated dataset names (default: all)")
	variants := flag.String("variants", "", "comma-separated variants: resnet-a,resnet-b,resnet-c (default: all)")
	quick := flag.Bool("quick", false, "use the quick training scale (smaller datasets, fewer epochs)")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	var dsNames []string
	if *datasets == "" {
		for _, d := range data.ImageDatasets() {
			dsNames = append(dsNames, d.Name)
		}
	} else {
		dsNames = strings.Split(*datasets, ",")
	}
	var vNames []string
	if *variants == "" {
		vNames = nn.Variants()
	} else {
		vNames = strings.Split(*variants, ",")
	}

	start := time.Now()
	for _, ds := range dsNames {
		for _, v := range vNames {
			for _, mode := range []experiments.TrainMode{experiments.ModeRegular, experiments.ModeLowRes} {
				t0 := time.Now()
				if err := experiments.SaveZooModel(scale, ds, v, mode); err != nil {
					log.Printf("FAIL %s/%s/%s: %v", ds, v, mode, err)
					os.Exit(1)
				}
				acc, err := experiments.MeasuredAccuracy(scale, ds, v, mode, experiments.FmtFull)
				if err != nil {
					log.Printf("FAIL eval %s/%s/%s: %v", ds, v, mode, err)
					os.Exit(1)
				}
				fmt.Printf("trained %-11s %-9s %-7s full-res acc %.3f (%s)\n",
					ds, v, mode, acc, time.Since(t0).Round(time.Second))
			}
		}
	}
	fmt.Printf("zoo complete in %s -> %s\n", time.Since(start).Round(time.Second), experiments.ZooDir())
}
