// Command smol-bench regenerates every table and figure of the paper's
// evaluation and prints them as aligned text tables. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	smol-bench [-id table3] [-full] [-o results.txt]
//
// Accuracy-bearing experiments (table7, figure4-6) train models on demand
// unless cmd/smol-train has populated the zoo directory; -full uses the
// full dataset scale and the zoo.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"smol/internal/experiments"
)

func main() {
	log.SetFlags(0)
	id := flag.String("id", "", "run only this experiment (default: all)")
	full := flag.Bool("full", false, "full scale (uses the trained zoo; slower)")
	out := flag.String("o", "", "also write results to this file")
	flag.Parse()

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	ids := experiments.IDs()
	if *id != "" {
		ids = []string{*id}
	}
	for _, eid := range ids {
		start := time.Now()
		tbl, err := experiments.Run(eid, scale)
		if err != nil {
			log.Fatalf("%s: %v", eid, err)
		}
		fmt.Fprintln(w, tbl)
		fmt.Fprintf(w, "(%s in %s)\n\n", eid, time.Since(start).Round(time.Millisecond))
	}
}
