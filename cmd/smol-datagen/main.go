// Command smol-datagen materializes the synthetic datasets to disk in the
// form a serving system would hold them: full-resolution JPEGs with
// natively present thumbnails and a labels.tsv manifest for image
// datasets, and dual-resolution encoded video with a ground-truth counts
// manifest for video datasets. The output feeds external tooling or
// inspection; the experiments themselves render in memory.
//
// Usage:
//
//	smol-datagen -out dir [-datasets a,b] [-videos x,y] [-thumb png|jpeg95|jpeg75] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"

	"smol/internal/data"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "datagen-out", "output directory")
	datasets := flag.String("datasets", "", "comma-separated image dataset names (default: all)")
	videos := flag.String("videos", "", "comma-separated video names (default: none; \"all\" for all)")
	thumb := flag.String("thumb", "png", "thumbnail encoding: png, jpeg95, or jpeg75")
	quick := flag.Bool("quick", false, "export small splits (64 train / 32 test)")
	flag.Parse()

	var names []string
	if *datasets == "" {
		for _, d := range data.ImageDatasets() {
			names = append(names, d.Name)
		}
	} else {
		names = strings.Split(*datasets, ",")
	}
	for _, name := range names {
		spec, err := data.ImageDataset(name)
		if err != nil {
			log.Fatal(err)
		}
		if *quick {
			spec.TrainN, spec.TestN = 64, 32
		}
		ds := data.Generate(spec)
		dir := filepath.Join(*out, name)
		n, err := data.ExportImages(ds, dir, data.ExportOptions{ThumbFormat: *thumb})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-11s -> %s (%d files, %d train / %d test)\n",
			name, dir, n, len(ds.Train), len(ds.Test))
	}

	if *videos != "" {
		var vnames []string
		if *videos == "all" {
			for _, v := range data.VideoDatasets() {
				vnames = append(vnames, v.Name)
			}
		} else {
			vnames = strings.Split(*videos, ",")
		}
		for _, name := range vnames {
			spec, err := data.VideoDataset(name)
			if err != nil {
				log.Fatal(err)
			}
			if *quick {
				spec.Frames = 120
			}
			paths, err := data.ExportVideo(spec, filepath.Join(*out, "video"), 0)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Printf("%-11s -> %s (+%d more)\n", name, paths[0], len(paths)-1)
		}
	}
}
