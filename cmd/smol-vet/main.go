// Command smol-vet runs the project's static-analysis suite (package
// smol/internal/analysis) over the named packages:
//
//	smol-vet ./...                  # vet-style findings, exit 1 if any
//	smol-vet -json ./...            # findings as a JSON array
//	smol-vet -check-coverage ./...  # also require every //smol:noalloc
//	                                # function to have an alloctest.Run
//
// Findings print as `file:line:col: analyzer: message`. The tool is
// stdlib-only and loads packages from source via `go list`, so it works
// offline and needs no dependency beyond the Go toolchain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"smol/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	checkCoverage := flag.Bool("check-coverage", false, "require every //smol:noalloc function to be covered by an alloctest.Run check")
	dir := flag.String("C", "", "change to this directory before loading packages")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader(*dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smol-vet:", err)
		os.Exit(2)
	}
	runner := analysis.NewRunner(loader.Fset, pkgs)
	findings := runner.Run()
	if *checkCoverage {
		findings = append(findings, runner.CheckCoverage()...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "smol-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
