// Package audio implements the paper's §10 future-work direction: the
// same preprocessing/inference co-optimization applied to audio analytics.
// Audio compression shares the salient structure of visual compression —
// sequential entropy-coded streams with a fidelity/cost trade-off — so the
// same levers exist: early-stop partial decoding, and cheap low-fidelity
// renditions for throughput.
//
// The codec is IMA ADPCM (4 bits per sample, the classic DVI/IMA
// algorithm): a real, standard speech/audio codec whose decoder is
// strictly sequential, like JPEG's entropy decoder. The preprocessing
// stage is a frame-wise magnitude spectrogram (the standard front end of
// audio DNNs), computed by a real Goertzel filter bank.
package audio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IMA ADPCM step size table (the standard 89-entry table).
var stepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// indexTable adjusts the step index from each 4-bit code.
var indexTable = [16]int{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

var magic = [4]byte{'S', 'A', 'D', 'P'}

// Encode compresses 16-bit PCM samples to IMA ADPCM (4 bits/sample).
func Encode(samples []int16) []byte {
	out := make([]byte, 0, 12+(len(samples)+1)/2)
	out = append(out, magic[:]...)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(samples)))
	// Initial predictor and step index.
	var first int16
	if len(samples) > 0 {
		first = samples[0]
	}
	binary.BigEndian.PutUint16(hdr[4:], uint16(first))
	binary.BigEndian.PutUint16(hdr[6:], 0)
	out = append(out, hdr[:]...)

	pred := int(first)
	idx := 0
	var nibbleBuf byte
	half := false
	for _, s := range samples {
		code := encodeSample(int(s), &pred, &idx)
		if !half {
			nibbleBuf = code << 4
			half = true
		} else {
			out = append(out, nibbleBuf|code)
			half = false
		}
	}
	if half {
		out = append(out, nibbleBuf)
	}
	return out
}

// encodeSample quantizes one sample against the predictor state.
func encodeSample(s int, pred *int, idx *int) byte {
	step := stepTable[*idx]
	diff := s - *pred
	var code byte
	if diff < 0 {
		code = 8
		diff = -diff
	}
	// Successive approximation over the 3 magnitude bits.
	if diff >= step {
		code |= 4
		diff -= step
	}
	if diff >= step/2 {
		code |= 2
		diff -= step / 2
	}
	if diff >= step/4 {
		code |= 1
	}
	decodeStep(code, pred, idx)
	return code
}

// decodeStep applies one 4-bit code to the predictor state.
func decodeStep(code byte, pred *int, idx *int) {
	step := stepTable[*idx]
	delta := step >> 3
	if code&4 != 0 {
		delta += step
	}
	if code&2 != 0 {
		delta += step >> 1
	}
	if code&1 != 0 {
		delta += step >> 2
	}
	if code&8 != 0 {
		*pred -= delta
	} else {
		*pred += delta
	}
	if *pred > 32767 {
		*pred = 32767
	} else if *pred < -32768 {
		*pred = -32768
	}
	*idx += indexTable[code]
	if *idx < 0 {
		*idx = 0
	} else if *idx > 88 {
		*idx = 88
	}
}

// DecodeStats reports partial-decode work.
type DecodeStats struct {
	SamplesDecoded int
	SamplesTotal   int
	BytesRead      int
}

// Decode decompresses the whole stream.
func Decode(data []byte) ([]int16, error) {
	s, _, err := DecodeSamples(data, 0)
	return s, err
}

// DecodeSamples decompresses only the first maxSamples samples (all when
// maxSamples <= 0) — early-stop partial decoding: ADPCM state is strictly
// sequential, so stopping early saves proportional work, exactly like
// JPEG's raster-order early stop.
func DecodeSamples(data []byte, maxSamples int) ([]int16, *DecodeStats, error) {
	if len(data) < 12 || string(data[:4]) != string(magic[:]) {
		return nil, nil, errors.New("audio: bad magic")
	}
	total := int(binary.BigEndian.Uint32(data[4:]))
	if total < 0 || total > 1<<30 {
		return nil, nil, fmt.Errorf("audio: invalid sample count %d", total)
	}
	first := int16(binary.BigEndian.Uint16(data[8:]))
	n := total
	if maxSamples > 0 && maxSamples < total {
		n = maxSamples
	}
	need := 12 + (n+1)/2
	if len(data) < need {
		return nil, nil, errors.New("audio: truncated stream")
	}
	out := make([]int16, n)
	pred := int(first)
	idx := 0
	body := data[12:]
	for i := 0; i < n; i++ {
		var code byte
		if i%2 == 0 {
			code = body[i/2] >> 4
		} else {
			code = body[i/2] & 0xf
		}
		decodeStep(code, &pred, &idx)
		out[i] = int16(pred)
	}
	stats := &DecodeStats{SamplesDecoded: n, SamplesTotal: total, BytesRead: 12 + (n+1)/2}
	return out, stats, nil
}
