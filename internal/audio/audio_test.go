package audio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sine generates a test tone.
func sine(n int, freq, rate float64, amp int16) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(float64(amp) * math.Sin(2*math.Pi*freq*float64(i)/rate))
	}
	return out
}

// snr computes the signal-to-noise ratio (dB) of decoded vs original.
func snr(orig, dec []int16) float64 {
	var sig, noise float64
	for i := range orig {
		s := float64(orig[i])
		d := s - float64(dec[i])
		sig += s * s
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

func TestADPCMRoundTripTone(t *testing.T) {
	orig := sine(8000, 440, 16000, 12000)
	data := Encode(orig)
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(orig) {
		t.Fatalf("decoded %d of %d samples", len(dec), len(orig))
	}
	if s := snr(orig, dec); s < 20 {
		t.Fatalf("tone SNR %.1f dB, want >= 20 (4-bit ADPCM)", s)
	}
	// 4 bits/sample: stream must be about a quarter of the PCM size.
	if len(data) > len(orig)+64 {
		t.Fatalf("ADPCM stream %d bytes for %d samples", len(data), len(orig))
	}
}

func TestADPCMRoundTripNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := make([]int16, 4000)
	// Band-limited-ish noise: smoothed white noise tracks better.
	prev := 0.0
	for i := range orig {
		prev = 0.9*prev + 0.1*rng.NormFloat64()*8000
		orig[i] = int16(prev)
	}
	dec, err := Decode(Encode(orig))
	if err != nil {
		t.Fatal(err)
	}
	if s := snr(orig, dec); s < 12 {
		t.Fatalf("noise SNR %.1f dB", s)
	}
}

func TestADPCMEarlyStop(t *testing.T) {
	orig := sine(10000, 220, 16000, 9000)
	data := Encode(orig)
	part, stats, err := DecodeSamples(data, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 2500 || stats.SamplesDecoded != 2500 || stats.SamplesTotal != 10000 {
		t.Fatalf("stats %+v", stats)
	}
	// Early-stop prefix must match the full decode exactly.
	full, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range part {
		if part[i] != full[i] {
			t.Fatalf("early-stop sample %d differs", i)
		}
	}
	if stats.BytesRead >= len(data) {
		t.Fatal("early stop should read fewer bytes")
	}
}

func TestADPCMOddLengthAndEmpty(t *testing.T) {
	for _, n := range []int{1, 3, 7, 0} {
		orig := sine(n, 300, 8000, 5000)
		dec, err := Decode(Encode(orig))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(dec) != n {
			t.Fatalf("n=%d: decoded %d", n, len(dec))
		}
	}
}

func TestADPCMErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty data should error")
	}
	if _, err := Decode([]byte("XXXX12345678")); err == nil {
		t.Fatal("bad magic should error")
	}
	data := Encode(sine(1000, 440, 16000, 8000))
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Fatal("truncated data should error")
	}
}

// Property: encode/decode never panics and preserves length.
func TestADPCMProperty(t *testing.T) {
	f := func(raw []int16) bool {
		dec, err := Decode(Encode(raw))
		return err == nil && len(dec) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpectrogramPeaksAtToneFrequency(t *testing.T) {
	cfg := SpectrogramConfig{SampleRate: 16000, FrameSize: 512, HopSize: 256, Bins: 32}
	// Tone at 2kHz = 1/8 of the sample rate -> bin ~ (2000/8000)*32 = 8.
	samples := sine(4096, 2000, 16000, 12000)
	spec, err := Spectrogram(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := spec.Shape[1]
	// Average magnitude per bin; the peak bin should be near bin 8.
	best, bestMag := 0, float32(-1)
	for b := 0; b < 32; b++ {
		var s float32
		for f := 0; f < frames; f++ {
			s += spec.Data[b*frames+f]
		}
		if s > bestMag {
			best, bestMag = b, s
		}
	}
	if best < 6 || best > 10 {
		t.Fatalf("tone peak at bin %d, want ~8", best)
	}
}

func TestSpectrogramValidation(t *testing.T) {
	bad := SpectrogramConfig{SampleRate: 16000, FrameSize: 128, HopSize: 256, Bins: 16}
	if err := bad.Validate(); err == nil {
		t.Fatal("hop > frame should fail")
	}
	good := SpectrogramConfig{SampleRate: 16000, FrameSize: 256, HopSize: 128, Bins: 16}
	if _, err := Spectrogram(sine(100, 440, 16000, 1000), good); err == nil {
		t.Fatal("too-short input should error")
	}
}

func TestPreprocCostScales(t *testing.T) {
	cfg := SpectrogramConfig{SampleRate: 16000, FrameSize: 256, HopSize: 128, Bins: 16}
	c1 := PreprocCostOps(16000, cfg)
	c2 := PreprocCostOps(32000, cfg)
	if c1 <= 0 || c2 <= c1 {
		t.Fatalf("cost not scaling: %v %v", c1, c2)
	}
	wide := cfg
	wide.Bins = 32
	if PreprocCostOps(16000, wide) <= c1 {
		t.Fatal("more bins must cost more")
	}
}

// TestTruncationNeverPanics: decoding every prefix of a valid ADPCM stream
// must return an error or a valid (possibly shorter) sample slice, never
// panic.
func TestTruncationNeverPanics(t *testing.T) {
	samples := make([]int16, 4000)
	for i := range samples {
		samples[i] = int16((i * 37) % 4096)
	}
	enc := Encode(samples)
	for n := 0; n < len(enc); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d/%d: panic: %v", n, len(enc), r)
				}
			}()
			Decode(enc[:n]) //nolint:errcheck
		}()
	}
}

// TestByteCorruptionNeverPanics: single-byte corruption must never panic
// the sequential predictor.
func TestByteCorruptionNeverPanics(t *testing.T) {
	samples := make([]int16, 2000)
	for i := range samples {
		samples[i] = int16((i * 53) % 8192)
	}
	enc := Encode(samples)
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), enc...)
		corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			Decode(corrupted) //nolint:errcheck
		}()
	}
}
