package audio

import (
	"fmt"
	"math"

	"smol/internal/tensor"
)

// SpectrogramConfig describes the audio preprocessing front end: framed
// magnitude spectra over a bank of target frequencies — the audio
// equivalent of the image pipeline's decode+resize+normalize.
type SpectrogramConfig struct {
	// SampleRate in Hz.
	SampleRate int
	// FrameSize is the analysis window length in samples.
	FrameSize int
	// HopSize is the stride between frames.
	HopSize int
	// Bins is the number of frequency bins, linearly spaced from 0 to
	// Nyquist.
	Bins int
}

// Validate checks the configuration.
func (c SpectrogramConfig) Validate() error {
	if c.SampleRate <= 0 || c.FrameSize <= 0 || c.HopSize <= 0 || c.Bins <= 0 {
		return fmt.Errorf("audio: invalid spectrogram config %+v", c)
	}
	if c.HopSize > c.FrameSize {
		return fmt.Errorf("audio: hop %d exceeds frame %d", c.HopSize, c.FrameSize)
	}
	return nil
}

// goertzelMagnitude computes the magnitude of one frequency component of a
// frame using the Goertzel algorithm — O(N) per bin, branch-free, the
// classical cheap alternative to a full FFT when only a filter bank is
// needed.
func goertzelMagnitude(frame []int16, k float64) float64 {
	w := 2 * math.Pi * k
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range frame {
		s0 = float64(x)/32768 + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// Spectrogram computes the (Bins, Frames) magnitude spectrogram of the
// samples as a tensor, log-compressed as audio DNN front ends do.
func Spectrogram(samples []int16, cfg SpectrogramConfig) (*tensor.Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(samples) < cfg.FrameSize {
		return nil, fmt.Errorf("audio: %d samples shorter than one frame (%d)",
			len(samples), cfg.FrameSize)
	}
	frames := 1 + (len(samples)-cfg.FrameSize)/cfg.HopSize
	out := tensor.New(cfg.Bins, frames)
	for f := 0; f < frames; f++ {
		frame := samples[f*cfg.HopSize : f*cfg.HopSize+cfg.FrameSize]
		for b := 0; b < cfg.Bins; b++ {
			// Bin center as a fraction of the sample rate, up to Nyquist.
			k := (float64(b) + 0.5) / float64(cfg.Bins) / 2
			mag := goertzelMagnitude(frame, k)
			out.Data[b*frames+f] = float32(math.Log1p(mag))
		}
	}
	return out, nil
}

// PreprocCostOps estimates the arithmetic-operation count of computing the
// spectrogram for n samples — the hook into the hardware cost model, so
// audio pipelines can be placed and costed like image ones (§10).
func PreprocCostOps(n int, cfg SpectrogramConfig) float64 {
	if err := cfg.Validate(); err != nil || n < cfg.FrameSize {
		return 0
	}
	frames := 1 + (n-cfg.FrameSize)/cfg.HopSize
	// Goertzel: ~4 ops per sample per bin.
	return float64(frames) * float64(cfg.FrameSize) * float64(cfg.Bins) * 4
}
