package experiments

import (
	"strconv"
	"strings"
	"testing"

	"smol/internal/costmodel"
)

// cheapIDs are the experiments that need no NN training.
var cheapIDs = []string{
	"table1", "figure1", "mobilenet-ssd", "table2", "table3", "table4", "table5",
	"table6", "pipeline-overhead", "power-cost", "figure7", "figure8", "table8",
	"figure10", "latency",
}

func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range cheapIDs {
		tbl, err := Run(id, Quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		for _, r := range tbl.Rows {
			if len(r) != len(tbl.Columns) {
				t.Fatalf("%s: row width %d vs %d columns", id, len(r), len(tbl.Columns))
			}
		}
		if s := tbl.String(); !strings.Contains(s, tbl.ID) {
			t.Fatalf("%s: String() missing ID", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("table99", Quick); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestIDsRegistered(t *testing.T) {
	ids := IDs()
	want := map[string]bool{}
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "figure1", "figure4", "figure5", "figure6", "figure7",
		"figure8", "figure9", "figure10", "pipeline-overhead", "power-cost"} {
		want[id] = true
	}
	got := map[string]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tbl.Rows[row][col])
	}
	return v
}

func TestMobileNetSSDImbalance(t *testing.T) {
	tbl, err := MobileNetSSD(Quick)
	if err != nil {
		t.Fatal(err)
	}
	exec, pre := cell(t, tbl, 0, 1), cell(t, tbl, 1, 1)
	if exec != 7431 {
		t.Fatalf("exec throughput %v, want the paper anchor 7431", exec)
	}
	// §2: the detection pipeline is even more preprocessing-bound than
	// ResNet-50's 7.1x.
	if imbalance := exec / pre; imbalance < 7.1 {
		t.Fatalf("exec/preproc imbalance %.1fx, want > 7.1x", imbalance)
	}
	if pre < 150 || pre > 800 {
		t.Fatalf("MS-COCO preprocessing %v im/s implausible (paper: 397)", pre)
	}
}

func TestTable1Shape(t *testing.T) {
	tbl, err := Table1Frameworks(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Keras < PyTorch < TensorRT throughput ordering.
	if !(cell(t, tbl, 0, 1) < cell(t, tbl, 1, 1) && cell(t, tbl, 1, 1) < cell(t, tbl, 2, 1)) {
		t.Fatalf("framework ordering broken: %+v", tbl.Rows)
	}
}

func TestFigure1PreprocDominates(t *testing.T) {
	tbl, err := Figure1Breakdown(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Row layout: decode, resize, normalize, total, exec rn50, exec rn18.
	totalPre4 := cell(t, tbl, 3, 2)
	execRN50 := cell(t, tbl, 4, 2)
	ratio := totalPre4 / execRN50
	if ratio < 4 || ratio > 12 {
		t.Fatalf("preproc/exec ratio %.1f, paper reports 7.1x", ratio)
	}
}

func TestTable3SmolErrorsSmall(t *testing.T) {
	tbl, err := Table3CostModels(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		smolErr := cell(t, tbl, i, 4)
		blazeitErr := cell(t, tbl, i, 5)
		tahomaErr := cell(t, tbl, i, 6)
		if smolErr > blazeitErr+0.01 && smolErr > tahomaErr+0.01 {
			t.Fatalf("row %d: smol err %.1f%% worse than both baselines", i, smolErr)
		}
	}
	// The preproc-bound row must show the dramatic BlazeIt failure.
	if e := cell(t, tbl, 1, 5); e < 200 {
		t.Fatalf("preproc-bound blazeit error = %.0f%%, expected hundreds", e)
	}
}

func TestTable8OptimizationsWinOnCost(t *testing.T) {
	tbl, err := Table8CostScaling(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate opt / no-opt per vCPU count; opt must always be
	// cheaper per image and faster.
	for i := 0; i < len(tbl.Rows); i += 2 {
		optTput, noTput := cell(t, tbl, i, 2), cell(t, tbl, i+1, 2)
		optCost, noCost := cell(t, tbl, i, 3), cell(t, tbl, i+1, 3)
		if optTput <= noTput {
			t.Fatalf("vCPU row %d: opt %.0f not faster than no-opt %.0f", i, optTput, noTput)
		}
		if optCost >= noCost {
			t.Fatalf("vCPU row %d: opt %.2f c/1M not cheaper than %.2f", i, optCost, noCost)
		}
	}
}

func TestFigure10SmolWinsEndToEnd(t *testing.T) {
	tbl, err := Figure10EngineComparison(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Index rows by engine name; smol must beat dali and pytorch
	// end-to-end at every vCPU count.
	type key struct {
		engine string
		vcpus  string
	}
	e2e := map[key]float64{}
	for i, r := range tbl.Rows {
		e2e[key{r[0], r[1]}] = cell(t, tbl, i, 4)
	}
	for k, v := range e2e {
		if k.engine != "smol" {
			continue
		}
		for _, other := range []string{"dali", "pytorch"} {
			if ov, ok := e2e[key{other, k.vcpus}]; ok && v <= ov {
				t.Fatalf("smol (%f) not ahead of %s (%f) at %s vCPUs", v, other, ov, k.vcpus)
			}
		}
	}
}

func TestFigure9SmolBeatsBlazeIt(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full video aggregation pipeline (~5s); skipped in -short mode")
	}
	tbl, err := Run("figure9", Quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tbl.Rows {
		speedup := cell(t, tbl, i, 4)
		if speedup < 1 {
			t.Fatalf("row %v: smol slower than blazeit (speedup %.2f)", r, speedup)
		}
	}
}

// TestImageExperimentsSmoke trains the tiniest dataset at Quick scale and
// exercises the training-dependent plumbing end to end. The full
// experiments run via cmd/smol-bench against the zoo.
func TestImageExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	env := costmodel.DefaultEnv()
	naive, err := naivePoints(Quick, "bike-bird", env)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != 3 {
		t.Fatalf("naive points: %d", len(naive))
	}
	smol, err := smolPoints(Quick, "bike-bird", smolConfig{LowRes: true, PreprocOpt: true}, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(smol) != 3*4 {
		t.Fatalf("smol points: %d", len(smol))
	}
	// bike-bird is nearly trivially separable; even tiny training should
	// end well above chance.
	for _, p := range naive {
		if p.Accuracy < 0.6 {
			t.Fatalf("naive %s accuracy %.2f barely above chance", p.Config, p.Accuracy)
		}
	}
	// Thumbnail plans must beat full-resolution plans on throughput.
	var fullBest, thumbBest float64
	for _, p := range smol {
		if strings.HasSuffix(p.Config, "/full") {
			if p.Throughput > fullBest {
				fullBest = p.Throughput
			}
		} else if p.Throughput > thumbBest {
			thumbBest = p.Throughput
		}
	}
	if thumbBest <= fullBest {
		t.Fatalf("thumbnails (%.0f) should out-throughput full res (%.0f)", thumbBest, fullBest)
	}
	front := frontier(smol)
	if len(front) == 0 || len(front) > len(smol) {
		t.Fatalf("frontier size %d", len(front))
	}
}

func TestLatencyTradeoffShape(t *testing.T) {
	tbl, err := LatencyTradeoff(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	for i, r := range tbl.Rows {
		est, mean, max := cell(t, tbl, i, 1), cell(t, tbl, i, 2), cell(t, tbl, i, 3)
		if est < mean {
			t.Fatalf("row %s: estimate %v below simulated mean %v", r[0], est, mean)
		}
		if est < max {
			t.Fatalf("row %s: worst-case estimate %v below simulated max %v", r[0], est, max)
		}
		if est > 2*max {
			t.Fatalf("row %s: estimate %v more than 2x simulated max %v", r[0], est, max)
		}
	}
	// Latency grows with batch; throughput does not degrade much.
	if !(cell(t, tbl, 0, 1) < cell(t, tbl, 4, 1)) {
		t.Fatal("latency should grow with batch size")
	}
}
