// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each experiment
// returns a Table — rows of named columns — that cmd/smol-bench prints and
// EXPERIMENTS.md records against the paper's published values.
//
// Throughput numbers come from the calibrated hardware model and the
// discrete-event pipeline simulator (paper-scale, deterministic); accuracy
// numbers come from really training the micro-model zoo on the synthetic
// datasets (laptop-scale). Scale Quick keeps everything fast enough for
// the test suite; Full is what cmd/smol-bench -full runs.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects experiment fidelity.
type Scale int

// Experiment scales.
const (
	// Quick shrinks datasets and epochs so the whole suite runs in minutes.
	Quick Scale = iota
	// Full uses the complete synthetic datasets and training budgets.
	Full
)

// Table is a generic result table.
type Table struct {
	ID      string // experiment id, e.g. "table3" or "figure4"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries paper-vs-measured commentary.
	Notes []string
}

// Add appends a row, formatting each cell.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Registry maps experiment IDs to their runners, in presentation order.
type Runner func(Scale) (*Table, error)

type entry struct {
	id  string
	run Runner
}

var registry []entry

func register(id string, run Runner) {
	registry = append(registry, entry{id: id, run: run})
}

// IDs lists registered experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Run executes the named experiment.
func Run(id string, s Scale) (*Table, error) {
	for _, e := range registry {
		if e.id == id {
			return e.run(s)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
}

// RunAll executes every experiment in order.
func RunAll(s Scale) ([]*Table, error) {
	out := make([]*Table, 0, len(registry))
	for _, e := range registry {
		t, err := e.run(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.id, err)
		}
		out = append(out, t)
	}
	return out, nil
}
