package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/data"
	"smol/internal/img"
	"smol/internal/nn"
)

// TrainMode selects the training procedure of §5.3.
type TrainMode string

// Training modes.
const (
	// ModeRegular is standard training on full-resolution inputs.
	ModeRegular TrainMode = "reg"
	// ModeLowRes adds the down-up augmentation so the model tolerates
	// upscaled thumbnails (low-resolution-aware training).
	ModeLowRes TrainMode = "lowres"
)

// ZooDir is where trained models are cached on disk; cmd/smol-train fills
// it, experiments load from it. Override with the SMOL_ZOO environment
// variable.
func ZooDir() string {
	if d := os.Getenv("SMOL_ZOO"); d != "" {
		return d
	}
	return "zoo"
}

type zooKey struct {
	dataset string
	variant string
	mode    TrainMode
}

var (
	zooMu    sync.Mutex
	zooCache = map[zooKey]*nn.Model{}
	dsMu     sync.Mutex
	dsCache  = map[string]*data.Dataset{}
)

// dataset returns the (possibly scaled) realized dataset, cached.
func dataset(name string, s Scale) (*data.Dataset, error) {
	spec, err := data.ImageDataset(name)
	if err != nil {
		return nil, err
	}
	if s == Quick {
		spec.TrainN = spec.NumClasses * 24
		if spec.TrainN < 160 {
			spec.TrainN = 160
		}
		if spec.TrainN > 320 {
			spec.TrainN = 320
		}
		spec.TestN = spec.NumClasses * 6
		if spec.TestN < 80 {
			spec.TestN = 80
		}
		if spec.TestN > 160 {
			spec.TestN = 160
		}
	}
	key := fmt.Sprintf("%s/%d", name, spec.TrainN)
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d, nil
	}
	d := data.Generate(spec)
	dsCache[key] = d
	return d, nil
}

// trainBudget returns (epochs, lr) per scale.
func trainBudget(s Scale) (int, float32) {
	if s == Quick {
		return 4, 0.08
	}
	return 3, 0.06
}

// zooPath is the on-disk cache location for a trained model.
func zooPath(k zooKey) string {
	return filepath.Join(ZooDir(), fmt.Sprintf("%s-%s-%s.gob", k.dataset, k.variant, k.mode))
}

// TrainedModel returns the classifier for (dataset, variant, mode),
// training it if it is neither in memory nor on disk. Disk entries are
// only reused at Full scale (Quick-scale models would pollute them).
func TrainedModel(s Scale, datasetName, variant string, mode TrainMode) (*nn.Model, error) {
	zooMu.Lock()
	defer zooMu.Unlock()
	return trainedModelLocked(s, datasetName, variant, mode)
}

// trainedModelLocked implements TrainedModel with zooMu held, so the
// low-resolution fine-tuning path can fetch its base model re-entrantly.
func trainedModelLocked(s Scale, datasetName, variant string, mode TrainMode) (*nn.Model, error) {
	k := zooKey{dataset: datasetName, variant: variant, mode: mode}
	if m, ok := zooCache[k]; ok {
		return m, nil
	}
	if s == Full {
		if f, err := os.Open(zooPath(k)); err == nil {
			_, m, err := nn.LoadModel(f)
			f.Close()
			if err == nil {
				zooCache[k] = m
				return m, nil
			}
		}
	}
	m, err := trainClassifier(s, datasetName, variant, mode)
	if err != nil {
		return nil, err
	}
	zooCache[k] = m
	return m, nil
}

// SaveZooModel trains (if needed) and persists a model to the zoo
// directory. Used by cmd/smol-train.
func SaveZooModel(s Scale, datasetName, variant string, mode TrainMode) error {
	m, err := TrainedModel(s, datasetName, variant, mode)
	if err != nil {
		return err
	}
	ds, err := dataset(datasetName, s)
	if err != nil {
		return err
	}
	cfg, err := nn.VariantConfig(variant, ds.Spec.NumClasses, ds.Spec.FullRes)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(ZooDir(), 0o755); err != nil {
		return err
	}
	k := zooKey{dataset: datasetName, variant: variant, mode: mode}
	f, err := os.Create(zooPath(k))
	if err != nil {
		return err
	}
	defer f.Close()
	return nn.SaveModel(f, cfg, m)
}

func trainClassifier(s Scale, datasetName, variant string, mode TrainMode) (*nn.Model, error) {
	ds, err := dataset(datasetName, s)
	if err != nil {
		return nil, err
	}
	cfg, err := nn.VariantConfig(variant, ds.Spec.NumClasses, ds.Spec.FullRes)
	if err != nil {
		return nil, err
	}
	epochs, lr := trainBudget(s)
	var m *nn.Model
	tc := nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, LR: lr, Momentum: 0.9, WeightDecay: 1e-4,
		Seed: seed(datasetName, variant, string(mode)) + 1,
	}
	if mode == ModeLowRes {
		// §3.1/§5.3: low-resolution-aware models are *fine-tuned* from the
		// full-resolution model with the down-up augmentation ("Smol will
		// fine-tune the networks on the cross product of D and
		// resolutions... this process adds at most a 30% overhead").
		base, err := trainedModelLocked(s, datasetName, variant, ModeRegular)
		if err != nil {
			return nil, err
		}
		m, err = cloneModel(base, cfg)
		if err != nil {
			return nil, err
		}
		// Fine-tuning converges quickly from the trained base; a gentle
		// learning rate keeps the full-resolution features intact while the
		// network adapts to downsampling artifacts.
		tc.Epochs = 2
		if s == Quick {
			tc.Epochs = epochs
		}
		tc.LR = lr / 6
		tc.Momentum = 0.8
		tc.Augment = data.DownUpAugmenter(ds.Spec.ThumbRes, 0.5)
	} else {
		m, err = nn.NewResNet(rand.New(rand.NewSource(seed(datasetName, variant, string(mode)))), cfg)
		if err != nil {
			return nil, err
		}
	}
	train := data.ToSamples(ds.Train, nil)
	nn.Fit(m, train, tc)
	// SGD at these micro budgets occasionally diverges on a bad shuffle
	// seed. Detect a collapsed run (train accuracy near chance) and retry
	// with a reseeded initialization rather than polluting the zoo.
	threshold := 3.0 / float64(ds.Spec.NumClasses)
	if threshold > 0.6 {
		threshold = 0.6
	}
	for retry := 1; retry <= 2 && mode == ModeRegular; retry++ {
		if nn.Evaluate(m, train, 64) >= threshold {
			break
		}
		m, err = nn.NewResNet(rand.New(rand.NewSource(tc.Seed+int64(retry)*7717)), cfg)
		if err != nil {
			return nil, err
		}
		tc.Seed += int64(retry) * 7717
		tc.LR = tc.LR * 0.7
		nn.Fit(m, train, tc)
	}
	return m, nil
}

// cloneModel deep-copies a model via its serialized form.
func cloneModel(m *nn.Model, cfg nn.ResNetConfig) (*nn.Model, error) {
	var buf bytes.Buffer
	if err := nn.SaveModel(&buf, cfg, m); err != nil {
		return nil, err
	}
	_, out, err := nn.LoadModel(&buf)
	return out, err
}

func seed(parts ...string) int64 {
	var h int64 = 99991
	for _, p := range parts {
		for _, b := range []byte(p) {
			h = h*31 + int64(b)
		}
	}
	return h
}

// FormatName identifies an evaluation input format for Table 7 / Figure 4.
type FormatName string

// Evaluation input formats, mirroring Table 7's rows.
const (
	FmtFull     FormatName = "full"
	FmtPNGThumb FormatName = "thumb-png"
	FmtJPEG95   FormatName = "thumb-jpeg-95"
	FmtJPEG75   FormatName = "thumb-jpeg-75"
)

// EvalFormats lists the evaluation formats in Table 7 order.
func EvalFormats() []FormatName {
	return []FormatName{FmtFull, FmtPNGThumb, FmtJPEG95, FmtJPEG75}
}

// applyFormat transforms a full-resolution test image into what the model
// sees when the input arrives in the given format: thumbnails are really
// resized, encoded and decoded with this repo's codecs, then upscaled back
// to the model's input resolution.
func applyFormat(m *img.Image, f FormatName, thumbRes int) (*img.Image, error) {
	switch f {
	case FmtFull:
		return m, nil
	case FmtPNGThumb:
		thumb := m.ResizeBilinear(thumbRes, thumbRes)
		dec, err := spng.Decode(spng.Encode(thumb, 0))
		if err != nil {
			return nil, err
		}
		return dec.ResizeBilinear(m.W, m.H), nil
	case FmtJPEG95, FmtJPEG75:
		q := 95
		if f == FmtJPEG75 {
			q = 75
		}
		thumb := m.ResizeBilinear(thumbRes, thumbRes)
		dec, err := jpeg.Decode(jpeg.Encode(thumb, jpeg.EncodeOptions{Quality: q}))
		if err != nil {
			return nil, err
		}
		return dec.ResizeBilinear(m.W, m.H), nil
	default:
		return nil, fmt.Errorf("experiments: unknown format %q", f)
	}
}

// accuracyCache memoizes per-(dataset,variant,mode,format) accuracies.
var (
	accMu    sync.Mutex
	accCache = map[string]float64{}
)

// MeasuredAccuracy evaluates a trained model on the test set rendered in
// the given input format (real encode/decode round trips).
func MeasuredAccuracy(s Scale, datasetName, variant string, mode TrainMode, f FormatName) (float64, error) {
	key := fmt.Sprintf("%v|%s|%s|%s|%s", s, datasetName, variant, mode, f)
	accMu.Lock()
	if a, ok := accCache[key]; ok {
		accMu.Unlock()
		return a, nil
	}
	accMu.Unlock()

	m, err := TrainedModel(s, datasetName, variant, mode)
	if err != nil {
		return 0, err
	}
	ds, err := dataset(datasetName, s)
	if err != nil {
		return 0, err
	}
	var convErr error
	samples := data.ToSamples(ds.Test, func(im *img.Image) *img.Image {
		out, err := applyFormat(im, f, ds.Spec.ThumbRes)
		if err != nil {
			convErr = err
			return im
		}
		return out
	})
	if convErr != nil {
		return 0, convErr
	}
	acc := nn.Evaluate(m, samples, 64)
	accMu.Lock()
	accCache[key] = acc
	accMu.Unlock()
	return acc, nil
}
