package experiments

import (
	"fmt"
	"sync"

	"smol/internal/blazeit"
	"smol/internal/codec/vid"
	"smol/internal/data"
	"smol/internal/hw"
	"smol/internal/img"
)

func init() {
	register("figure9", Figure9VideoAgg)
}

// videoMaterial holds a realized video with real encode/decode round trips
// at both resolutions plus specialized-model predictions.
type videoMaterial struct {
	spec      data.VideoSpec
	counts    []int
	fullPreds []float64 // blob counter on decoded full-res frames
	lowPreds  []float64 // blob counter on decoded low-res frames
	tinyPreds []float64 // BlazeIt's "tiny ResNet" stand-in: heavily downsampled counting
}

var (
	vmMu    sync.Mutex
	vmCache = map[string]*videoMaterial{}
)

// prepareVideo renders, encodes (H.264-like codec), decodes, and runs the
// specialized counters over one dataset — the real-substrate part of the
// experiment.
func prepareVideo(name string, s Scale) (*videoMaterial, error) {
	key := fmt.Sprintf("%s/%v", name, s)
	vmMu.Lock()
	defer vmMu.Unlock()
	if vm, ok := vmCache[key]; ok {
		return vm, nil
	}
	spec, err := data.VideoDataset(name)
	if err != nil {
		return nil, err
	}
	if s == Quick {
		spec.Frames = 240
	}
	v := data.GenerateVideo(spec)

	// Encode and decode both resolutions through the real codec so the
	// specialized models see codec artifacts, not pristine frames.
	decode := func(frames []*img.Image) ([]*img.Image, error) {
		encoded, err := vid.Encode(frames, vid.EncodeOptions{Quality: 70, GOP: 30})
		if err != nil {
			return nil, err
		}
		return vid.DecodeAll(encoded, vid.DecodeOptions{})
	}
	fullDec, err := decode(v.Frames)
	if err != nil {
		return nil, err
	}
	lowDec, err := decode(v.LowResFrames())
	if err != nil {
		return nil, err
	}

	fullCounter := blazeit.DefaultCounter(spec.W)
	lowCounter := blazeit.DefaultCounter(spec.LowW)
	tinyCounter := blazeit.DefaultCounter(spec.LowW / 2)
	vm := &videoMaterial{spec: spec, counts: v.Counts}
	for i := range fullDec {
		vm.fullPreds = append(vm.fullPreds, float64(fullCounter.Count(fullDec[i])))
		vm.lowPreds = append(vm.lowPreds, float64(lowCounter.Count(lowDec[i])))
		tiny := lowDec[i].ResizeBilinear(spec.LowW/2, spec.LowH/2)
		vm.tinyPreds = append(vm.tinyPreds, float64(tinyCounter.Count(tiny)))
	}
	vmCache[key] = vm
	return vm, nil
}

// aggConfig is one (system, spec predictor, decode cost) combination.
type aggConfig struct {
	name  string
	preds []float64
	cost  blazeit.QueryCost
}

// videoCosts derives paper-scale per-frame costs: decoding 720p-class full
// resolution vs 480p, on 4 vCPUs, plus a Mask R-CNN-class target model at
// ~4 fps (250 ms) per sampled frame. engineFactor scales the specialized
// pass for the engine's efficiency (BlazeIt's runtime is substantially
// less efficient than Smol's, §8.4).
func videoCosts(lowRes bool, engineFactor float64) blazeit.QueryCost {
	w, h := 1280, 720
	if lowRes {
		w, h = 854, 480
	}
	decodeUS := hw.DecodeCostUS(hw.DecodeSpec{Format: hw.FormatVideoH264, W: w, H: h})
	perFrame := decodeUS / 4 * engineFactor // 4 vCPUs
	targetUS := 250000 + decodeUS/4         // target invocation decodes its frame too
	return blazeit.QueryCost{SpecPassUSPerFrame: perFrame, TargetUSPerInvocation: targetUS}
}

// Figure9VideoAgg reproduces Figure 9: aggregation query runtime vs
// requested error for BlazeIt and Smol on the four video datasets.
func Figure9VideoAgg(s Scale) (*Table, error) {
	t := &Table{ID: "figure9", Title: "Aggregation query time vs error target (BlazeIt vs Smol)",
		Columns: []string{"dataset", "error", "blazeit (s)", "smol (s)", "speedup", "smol plan"}}
	errorTargets := []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	if s == Quick {
		errorTargets = []float64{0.02, 0.05}
	}
	for _, name := range []string{"night-street", "taipei", "amsterdam", "rialto"} {
		vm, err := prepareVideo(name, s)
		if err != nil {
			return nil, err
		}
		oracle := func(f int) float64 { return float64(vm.counts[f]) }
		// BlazeIt baseline: tiny specialized NN, full-resolution decode,
		// less efficient runtime engine.
		baseline := aggConfig{name: "blazeit", preds: vm.tinyPreds, cost: videoCosts(false, 2.5)}
		// Smol candidates: accurate spec on full-res decode, cheaper
		// low-res decode with the low-res counter, or BlazeIt's own tiny
		// spec (Smol's search space is a superset of the baseline's, and
		// its runtime engine is more efficient either way).
		candidates := []aggConfig{
			{name: "full-res spec", preds: vm.fullPreds, cost: videoCosts(false, 1.0)},
			{name: "low-res decode", preds: vm.lowPreds, cost: videoCosts(true, 1.0)},
			{name: "tiny spec", preds: vm.tinyPreds, cost: videoCosts(false, 1.0)},
		}
		for _, errTarget := range errorTargets {
			bRes, err := blazeit.EstimateMean(baseline.preds, oracle,
				blazeit.Config{ErrTarget: errTarget, Seed: 11})
			if err != nil {
				return nil, err
			}
			bTime := baseline.cost.TotalSeconds(len(vm.counts), bRes.Samples)
			// Smol picks the candidate with the lowest modeled total time
			// (its cost model covers both preprocessing and sampling).
			bestTime := -1.0
			bestName := ""
			for _, c := range candidates {
				r, err := blazeit.EstimateMean(c.preds, oracle,
					blazeit.Config{ErrTarget: errTarget, Seed: 11})
				if err != nil {
					return nil, err
				}
				tt := c.cost.TotalSeconds(len(vm.counts), r.Samples)
				if bestTime < 0 || tt < bestTime {
					bestTime, bestName = tt, c.name
				}
			}
			t.Add(name, errTarget, bTime, bestTime, bTime/bestTime, bestName)
		}
	}
	t.Notes = append(t.Notes,
		"paper: Smol outperforms BlazeIt in all settings, up to 2.5x at fixed error",
		"paper: night-street/rialto gain from more accurate specialized NNs; taipei/amsterdam from low-res decode")
	return t, nil
}
