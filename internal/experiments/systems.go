package experiments

import (
	"fmt"

	"smol/internal/costmodel"
	"smol/internal/hw"
)

func init() {
	register("figure7", Figure7SystemsLesion)
	register("figure8", Figure8SystemsFactor)
	register("table8", Table8CostScaling)
	register("figure10", Figure10EngineComparison)
}

// sysOpts mirrors the engine's toggles for the simulator: each disabled
// optimization maps onto a calibrated cost penalty.
type sysOpts struct {
	Threading bool // multiple preprocessing workers
	MemReuse  bool // pooled buffers (off: per-image allocation overhead)
	Pinned    bool // pinned staging (off: 3x batch transfer overhead)
	DAGOpt    bool // optimized preprocessing plan (off: naive plan)
}

// allOn returns the full optimization set.
func allOn() sysOpts { return sysOpts{Threading: true, MemReuse: true, Pinned: true, DAGOpt: true} }

// simulateSystems runs the RN-50 pipeline on the given format with the
// given optimization set and returns end-to-end throughput.
func simulateSystems(o sysOpts, format costmodel.Format, env costmodel.Env, images int) (float64, error) {
	gen := costmodel.GenerateOptions{OptimizePreproc: o.DAGOpt, PlaceOps: false}
	plans, err := costmodel.Generate(
		[]costmodel.DNNChoice{{Name: "resnet-50", InputRes: costmodel.StandardRes}},
		[]costmodel.Format{format}, env, gen)
	if err != nil {
		return 0, err
	}
	c, err := costmodel.Costs(plans[0], env)
	if err != nil {
		return 0, err
	}
	cpuUS := c.DecodeUS + c.CPUPostUS
	producers := env.VCPUs
	if !o.Threading {
		producers = 1
	}
	// Calibrated penalties: allocation+touch of a 224x224x3 float buffer
	// per image without reuse, and unpinned (staged) transfers per batch.
	perImageOverhead := 0.0
	if !o.MemReuse {
		perImageOverhead = 160
	}
	batchOverhead := 120.0
	if !o.Pinned {
		batchOverhead = 360
	}
	res, err := hw.SimulatePipeline(hw.PipelineConfig{
		NumImages:          images,
		Producers:          producers,
		Consumers:          2,
		BatchSize:          env.BatchSize,
		QueueCap:           4 * env.BatchSize,
		PreprocUS:          func(int) float64 { return cpuUS },
		ExecUSPerImage:     c.ExecUS + c.AccelPostUS,
		BatchOverheadUS:    batchOverhead,
		PerImageOverheadUS: perImageOverhead,
	})
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

func systemsFormats() map[string]costmodel.Format {
	return map[string]costmodel.Format{
		"full resolution": paperFormat(FmtFull, false),
		"low resolution":  paperFormat(FmtPNGThumb, false),
	}
}

// Figure7SystemsLesion reproduces Figure 7: removing each systems
// optimization individually.
func Figure7SystemsLesion(s Scale) (*Table, error) {
	t := &Table{ID: "figure7", Title: "Systems optimization lesion study (ResNet-50)",
		Columns: []string{"resolution", "condition", "throughput (im/s)"}}
	env := costmodel.DefaultEnv()
	images := imagesFor(s)
	conditions := []struct {
		name string
		mod  func(sysOpts) sysOpts
	}{
		{"all", func(o sysOpts) sysOpts { return o }},
		{"-threading", func(o sysOpts) sysOpts { o.Threading = false; return o }},
		{"-mem reuse", func(o sysOpts) sysOpts { o.MemReuse = false; return o }},
		{"-pinned", func(o sysOpts) sysOpts { o.Pinned = false; return o }},
		{"-DAG", func(o sysOpts) sysOpts { o.DAGOpt = false; return o }},
	}
	for _, resName := range []string{"full resolution", "low resolution"} {
		format := systemsFormats()[resName]
		var allTput float64
		for _, c := range conditions {
			tput, err := simulateSystems(c.mod(allOn()), format, env, images)
			if err != nil {
				return nil, err
			}
			if c.name == "all" {
				allTput = tput
			} else if tput > allTput+1e-9 {
				return nil, fmt.Errorf("lesion %s/%s beat the full configuration", resName, c.name)
			}
			t.Add(resName, c.name, tput)
		}
	}
	t.Notes = append(t.Notes, "paper: every optimization contributes; DAG matters more at low resolution")
	return t, nil
}

// Figure8SystemsFactor reproduces Figure 8: adding the optimizations in
// sequence.
func Figure8SystemsFactor(s Scale) (*Table, error) {
	t := &Table{ID: "figure8", Title: "Systems optimization factor analysis (ResNet-50)",
		Columns: []string{"resolution", "condition", "throughput (im/s)"}}
	env := costmodel.DefaultEnv()
	images := imagesFor(s)
	steps := []struct {
		name string
		o    sysOpts
	}{
		{"none", sysOpts{}},
		{"+threading", sysOpts{Threading: true}},
		{"+mem reuse", sysOpts{Threading: true, MemReuse: true}},
		{"+pinned", sysOpts{Threading: true, MemReuse: true, Pinned: true}},
		{"+DAG", allOn()},
	}
	for _, resName := range []string{"full resolution", "low resolution"} {
		format := systemsFormats()[resName]
		last := -1.0
		for _, st := range steps {
			tput, err := simulateSystems(st.o, format, env, images)
			if err != nil {
				return nil, err
			}
			t.Add(resName, st.name, tput)
			if tput+1e-9 < last {
				t.Notes = append(t.Notes,
					fmt.Sprintf("%s: step %s regressed (bottleneck shifted)", resName, st.name))
			}
			last = tput
		}
	}
	return t, nil
}

func imagesFor(s Scale) int {
	if s == Quick {
		return 6000
	}
	return 20000
}

// Table8CostScaling reproduces Table 8: throughput and cost per million
// images with and without Smol's optimizations, across instance sizes, at
// a 75%-accuracy operating point (ResNet-50 on thumbnails for Smol,
// full-resolution naive pipeline without).
func Table8CostScaling(s Scale) (*Table, error) {
	t := &Table{ID: "table8", Title: "Throughput and cost to reach 75% accuracy on imagenet",
		Columns: []string{"condition", "vCPUs", "throughput (im/s)", "cents / 1M images"}}
	images := imagesFor(s)
	for _, vcpus := range []int{4, 8, 16} {
		env := costmodel.DefaultEnv()
		env.VCPUs = vcpus
		// Optimized: RN-50 on lossless thumbnails (low-res-aware training
		// keeps accuracy), optimized DAG, placement.
		optTput, err := simulateSystems(allOn(), paperFormat(FmtJPEG95, true), env, images)
		if err != nil {
			return nil, err
		}
		t.Add("opt", vcpus, optTput, hw.CostPerMillionImages(optTput, vcpus))
		// Unoptimized: full-resolution naive pipeline, single-threaded
		// decoding disabled only at the DAG level (threading still on —
		// the paper's no-opt baseline parallelizes decode).
		noOpt := allOn()
		noOpt.DAGOpt = false
		noOpt.MemReuse = false
		noOpt.Pinned = false
		noTput, err := simulateSystems(noOpt, paperFormat(FmtFull, false), env, images)
		if err != nil {
			return nil, err
		}
		t.Add("no-opt", vcpus, noTput, hw.CostPerMillionImages(noTput, vcpus))
	}
	t.Notes = append(t.Notes, "paper: opt 1927 im/s @4 vCPUs (7.58 c/1M) vs 377 im/s (38.75 c/1M); up to 5x cheaper")
	return t, nil
}

// engineKind models the three engines of Figure 10.
type engineKind int

const (
	engineSmol engineKind = iota
	engineDALI
	enginePyTorch
)

// engineComparison computes the three panels of Figure 10 for one vCPU
// count: CPU-only preprocessing, optimized preprocessing, and end-to-end
// throughput. Architectural handicaps (per Appendix A): DALI allocates
// fresh buffers per batch (training-library contract) and pays an extra
// copy into TensorRT; its CPU/GPU split is fixed rather than
// hardware-aware. PyTorch's loader is slower per worker and lacks NUMA
// awareness (scaling degrades past 16 vCPUs); its executor lacks an
// optimized inference compiler.
func engineComparison(kind engineKind, vcpus int, images int) (cpuPre, optPre, e2e float64, err error) {
	env := costmodel.DefaultEnv()
	env.VCPUs = vcpus
	format := paperFormat(FmtFull, false)
	choice := costmodel.DNNChoice{Name: "resnet-50", InputRes: costmodel.StandardRes}

	// Per-engine parameters.
	cpuEff := 1.0     // preprocessing efficiency per vCPU
	perImageOv := 0.0 // allocation overhead (us)
	batchOv := 120.0  // transfer overhead (us)
	fwName := "TensorRT"
	dagOpt := true
	placeOps := true
	switch kind {
	case engineDALI:
		cpuEff = 0.85
		perImageOv = 120 // fresh buffers per batch, required by training API
		batchOv = 360    // extra copy into the inference engine
		placeOps = false // fixed CPU/GPU pipeline split
	case enginePyTorch:
		cpuEff = 0.7
		perImageOv = 150
		fwName = "PyTorch" // no optimized inference compiler
		dagOpt = false
		placeOps = false
		if vcpus >= 32 {
			cpuEff *= 0.55 // NUMA-unaware workers collapse at high core counts
		}
	}
	fw, err := hw.Framework(fwName)
	if err != nil {
		return 0, 0, 0, err
	}
	env.Framework = fw

	plans, err := costmodel.Generate([]costmodel.DNNChoice{choice}, []costmodel.Format{format},
		env, costmodel.GenerateOptions{OptimizePreproc: dagOpt, PlaceOps: placeOps})
	if err != nil {
		return 0, 0, 0, err
	}
	p := plans[0]
	c, err := costmodel.Costs(p, env)
	if err != nil {
		return 0, 0, 0, err
	}

	// Panel a: CPU-only preprocessing (optimizations off for Smol too,
	// matching the paper's "Smol optimizations off" condition).
	naivePlans, err := costmodel.Generate([]costmodel.DNNChoice{choice}, []costmodel.Format{format},
		env, costmodel.GenerateOptions{OptimizePreproc: false})
	if err != nil {
		return 0, 0, 0, err
	}
	nc, err := costmodel.Costs(naivePlans[0], env)
	if err != nil {
		return 0, 0, 0, err
	}
	cpuUSNaive := (nc.DecodeUS + nc.CPUPostUS + perImageOv) / cpuEff
	cpuPre = float64(vcpus) / (cpuUSNaive / 1e6)

	// Panel b: optimized preprocessing (each engine's best preprocessing
	// path, no DNN).
	cpuUS := (c.DecodeUS + c.CPUPostUS + perImageOv) / cpuEff
	optPre = float64(vcpus) / (cpuUS / 1e6)

	// Panel c: end-to-end.
	res, err := hw.SimulatePipeline(hw.PipelineConfig{
		NumImages:          images,
		Producers:          vcpus,
		Consumers:          2,
		BatchSize:          env.BatchSize,
		QueueCap:           4 * env.BatchSize,
		PreprocUS:          func(int) float64 { return cpuUS },
		ExecUSPerImage:     c.ExecUS + c.AccelPostUS,
		BatchOverheadUS:    batchOv,
		PerImageOverheadUS: 0,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return cpuPre, optPre, res.Throughput, nil
}

// Figure10EngineComparison reproduces Figure 10 / Appendix A: Smol vs
// DALI vs PyTorch across vCPU counts.
func Figure10EngineComparison(s Scale) (*Table, error) {
	t := &Table{ID: "figure10", Title: "Engine comparison across vCPUs (DALI / PyTorch / Smol)",
		Columns: []string{"engine", "vCPUs", "cpu-preproc (im/s)", "opt-preproc (im/s)", "end-to-end (im/s)"}}
	images := imagesFor(s)
	engines := []struct {
		name string
		kind engineKind
	}{{"smol", engineSmol}, {"dali", engineDALI}, {"pytorch", enginePyTorch}}
	vcpuCounts := []int{4, 8, 16, 32, 64}
	if s == Quick {
		vcpuCounts = []int{4, 16, 64}
	}
	for _, e := range engines {
		for _, v := range vcpuCounts {
			cpuPre, optPre, e2e, err := engineComparison(e.kind, v, images)
			if err != nil {
				return nil, err
			}
			t.Add(e.name, v, cpuPre, optPre, e2e)
		}
	}
	t.Notes = append(t.Notes,
		"paper: Smol wins CPU preprocessing at all core counts and end-to-end everywhere; DALI competitive at 4 vCPUs for optimized preprocessing",
		"PyTorch end-to-end is capped by the unoptimized executor (~424 im/s)")
	return t, nil
}
