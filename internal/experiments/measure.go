package experiments

import (
	"fmt"
	"math"

	"smol/internal/costmodel"
	"smol/internal/hw"
	"smol/internal/preproc"
	"smol/internal/stats"
)

func init() {
	register("table1", Table1Frameworks)
	register("figure1", Figure1Breakdown)
	register("mobilenet-ssd", MobileNetSSD)
	register("table2", Table2ResNets)
	register("table3", Table3CostModels)
	register("table4", Table4Formats)
	register("table5", Table5GPUs)
	register("pipeline-overhead", PipelineOverhead)
	register("power-cost", PowerCost)
}

// Table1Frameworks reproduces Table 1: ResNet-50 throughput on the T4
// under Keras, PyTorch, and TensorRT.
func Table1Frameworks(Scale) (*Table, error) {
	t := &Table{ID: "table1", Title: "ResNet-50 throughput on T4 by execution environment",
		Columns: []string{"framework", "throughput (im/s)", "paper (im/s)"}}
	t4, err := hw.Device("T4")
	if err != nil {
		return nil, err
	}
	rn50, err := hw.DNN("resnet-50")
	if err != nil {
		return nil, err
	}
	paper := map[string]float64{"Keras": 243, "PyTorch": 424, "TensorRT": 4513}
	for _, name := range hw.FrameworkNames() {
		fw, err := hw.Framework(name)
		if err != nil {
			return nil, err
		}
		t.Add(name, hw.ExecThroughput(rn50, t4, fw), paper[name])
	}
	t.Notes = append(t.Notes, "efficient compilers give >17x over Keras; preprocessing becomes the bottleneck")
	return t, nil
}

// Figure1Breakdown reproduces Figure 1: the per-image cost breakdown of
// end-to-end inference for ResNet-50 and ResNet-18 on the g4dn.xlarge.
func Figure1Breakdown(Scale) (*Table, error) {
	t := &Table{ID: "figure1", Title: "Per-image breakdown (us) on g4dn.xlarge (4 vCPUs, T4)",
		Columns: []string{"stage", "us/image (1 vCPU)", "us/image (4 vCPUs)"}}
	decode := hw.DecodeCostUS(hw.DecodeSpec{Format: hw.FormatJPEG, W: 500, H: 375, Quality: 90})
	spec := preproc.Spec{InW: 500, InH: 375, ResizeShort: 256, CropW: 224, CropH: 224,
		Mean: [3]float32{0.485, 0.456, 0.406}, Std: [3]float32{0.229, 0.224, 0.225}}
	plan, err := preproc.Optimize(spec)
	if err != nil {
		return nil, err
	}
	costs := preproc.OpCosts(plan, spec)
	var resizeUS, postUS float64
	for i, op := range plan.Ops {
		us := hw.PostprocCostUS(costs[i])
		switch op.Kind {
		case preproc.OpResizeShort, preproc.OpResizeExact, preproc.OpCenterCrop:
			resizeUS += us
		default:
			postUS += us
		}
	}
	t.Add("decode (JPEG)", decode, decode/4)
	t.Add("resize+crop", resizeUS, resizeUS/4)
	t.Add("normalize+split", postUS, postUS/4)
	totalPre := decode + resizeUS + postUS
	t.Add("preprocessing total", totalPre, totalPre/4)
	t4, _ := hw.Device("T4")
	trt, _ := hw.Framework("TensorRT")
	for _, m := range []string{"resnet-50", "resnet-18"} {
		d, err := hw.DNN(m)
		if err != nil {
			return nil, err
		}
		execUS := 1e6 / hw.ExecThroughput(d, t4, trt)
		t.Add("DNN exec "+m, execUS, execUS)
		ratio := (totalPre / 4) / execUS
		t.Notes = append(t.Notes, fmt.Sprintf("preprocessing/exec ratio for %s: %.1fx (paper: %s)",
			m, ratio, map[string]string{"resnet-50": "7.1x", "resnet-18": "22.9x"}[m]))
	}
	return t, nil
}

// MobileNetSSD reproduces the §2 detection aside: the MLPerf MobileNet-SSD
// executes at 7,431 im/s on the T4 while MS-COCO preprocessing reaches only
// 397 im/s on 4 vCPUs — the imbalance is even starker than ResNet-50's.
func MobileNetSSD(Scale) (*Table, error) {
	t := &Table{ID: "mobilenet-ssd", Title: "MobileNet-SSD vs MS-COCO preprocessing (g4dn.xlarge)",
		Columns: []string{"stage", "throughput (im/s)", "paper (im/s)"}}
	t4, err := hw.Device("T4")
	if err != nil {
		return nil, err
	}
	trt, err := hw.Framework("TensorRT")
	if err != nil {
		return nil, err
	}
	ssd, err := hw.DNN("mobilenet-ssd")
	if err != nil {
		return nil, err
	}
	exec := hw.ExecThroughput(ssd, t4, trt)
	// MS-COCO images average ~640x480; SSD takes a 300x300 input, modeled
	// as a short-edge resize to 300 followed by a 300x300 crop.
	decode := hw.DecodeCostUS(hw.DecodeSpec{Format: hw.FormatJPEG, W: 640, H: 480, Quality: 90})
	spec := preproc.Spec{InW: 640, InH: 480, ResizeShort: 300, CropW: 300, CropH: 300,
		Mean: [3]float32{0.5, 0.5, 0.5}, Std: [3]float32{0.5, 0.5, 0.5}}
	plan, err := preproc.Optimize(spec)
	if err != nil {
		return nil, err
	}
	post := hw.PostprocCostUS(preproc.PlanCost(plan, spec))
	pre := 1e6 / (decode + post) * 4 // parallelized across 4 vCPUs
	t.Add("MobileNet-SSD exec", exec, 7431)
	t.Add("MS-COCO preprocessing (4 vCPUs)", pre, 397)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"exec/preproc imbalance %.1fx (paper: %.1fx) — worse than ResNet-50's 7.1x",
		exec/pre, 7431.0/397.0))
	return t, nil
}

// Table2ResNets reproduces Table 2: throughput and accuracy of ResNet
// depths (paper scale).
func Table2ResNets(Scale) (*Table, error) {
	t := &Table{ID: "table2", Title: "ResNet depth vs throughput and top-1 accuracy (T4, TensorRT)",
		Columns: []string{"model", "throughput (im/s)", "top-1 accuracy"}}
	t4, _ := hw.Device("T4")
	trt, _ := hw.Framework("TensorRT")
	for _, name := range []string{"resnet-18", "resnet-34", "resnet-50"} {
		d, err := hw.DNN(name)
		if err != nil {
			return nil, err
		}
		t.Add(name, hw.ExecThroughput(d, t4, trt), d.Top1)
	}
	t.Notes = append(t.Notes,
		"micro-scale measured counterpart (trained in Go) appears in figure4's accuracy column")
	return t, nil
}

// Table3CostModels reproduces Table 3: estimation error of the three cost
// models across balanced / preproc-bound / DNN-bound configurations.
func Table3CostModels(s Scale) (*Table, error) {
	t := &Table{ID: "table3", Title: "Cost model accuracy (vs simulated pipelined execution)",
		Columns: []string{"config", "preproc (im/s)", "exec (im/s)", "pipelined (im/s)",
			"smol err%", "blazeit err%", "tahoma err%"}}
	env := costmodel.DefaultEnv()
	images := 20000
	if s == Quick {
		images = 6000
	}
	configs := []struct {
		name string
		dnn  costmodel.DNNChoice
		fmtc costmodel.Format
	}{
		// Balanced: thumbnail decode roughly matches a ResNet-50 pushed to
		// a larger input (the paper's balanced row is 4001 vs 4999 im/s).
		{"balanced", costmodel.DNNChoice{Name: "resnet-50", InputRes: 288},
			costmodel.Format{Name: "thumb-jpeg-75", Kind: hw.FormatJPEG, W: 215, H: 161, Quality: 75}},
		// Preprocessing-bound: full-resolution JPEG in front of a fast DNN.
		{"preproc-bound", costmodel.DNNChoice{Name: "resnet-18", InputRes: 224},
			costmodel.Format{Name: "full-jpeg", Kind: hw.FormatJPEG, W: 500, H: 375, Quality: 90}},
		// DNN-bound: tiny thumbnails in front of a very large input.
		{"dnn-bound", costmodel.DNNChoice{Name: "resnet-50", InputRes: 448},
			costmodel.Format{Name: "small-thumb-png", Kind: hw.FormatPNG, W: 120, H: 90, Lossless: true}},
	}
	var smolErrs []float64
	for _, c := range configs {
		plans, err := costmodel.Generate([]costmodel.DNNChoice{c.dnn}, []costmodel.Format{c.fmtc},
			env, costmodel.GenerateOptions{OptimizePreproc: true})
		if err != nil {
			return nil, err
		}
		p := plans[0]
		pre, exec, err := costmodel.StageThroughputs(p, env)
		if err != nil {
			return nil, err
		}
		res, err := costmodel.Measure(p, env, images)
		if err != nil {
			return nil, err
		}
		smol, _ := costmodel.EstimateSmol(p, env)
		blazeit, _ := costmodel.EstimateBlazeIt(p, env)
		tahoma, _ := costmodel.EstimateTahoma(p, env)
		eS := stats.RelErr(smol, res.Throughput) * 100
		eB := stats.RelErr(blazeit, res.Throughput) * 100
		eT := stats.RelErr(tahoma, res.Throughput) * 100
		smolErrs = append(smolErrs, eS)
		t.Add(c.name, pre, exec, res.Throughput, eS, eB, eT)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("smol mean err %.1f%% (paper: 5.9%% avg; blazeit up to 797%%, tahoma up to 44.8%%)",
		stats.Mean(smolErrs)))
	return t, nil
}

// Table4Formats reproduces Table 4: the low-fidelity decode features of
// popular formats, as actually implemented by the codecs in this repo.
func Table4Formats(Scale) (*Table, error) {
	t := &Table{ID: "table4", Title: "Visual formats and low-fidelity decode features",
		Columns: []string{"format", "type", "low-fidelity feature", "implemented by"}}
	t.Add("JPEG", "image", "partial (ROI) decoding + early stop + restart-segment skip", "internal/codec/jpeg")
	t.Add("PNG (spng)", "image", "early stopping (row streaming)", "internal/codec/spng")
	t.Add("JPEG2000-style", "image", "progressive multi-resolution decoding", "internal/codec/spng (EncodeProgressive)")
	t.Add("H.264-like", "video", "reduced-fidelity decoding (deblock off)", "internal/codec/vid")
	t.Add("HEIC/HEVC", "image/video", "reduced fidelity (modeled)", "hw cost model")
	t.Add("VP8/VP9", "video", "reduced fidelity (modeled)", "hw cost model")
	return t, nil
}

// Table5GPUs reproduces Table 5: ResNet-50 throughput across accelerator
// generations.
func Table5GPUs(Scale) (*Table, error) {
	t := &Table{ID: "table5", Title: "ResNet-50 throughput by GPU generation",
		Columns: []string{"gpu", "release", "throughput (im/s)"}}
	for _, name := range hw.DeviceNames() {
		d, _ := hw.Device(name)
		t.Add(d.Name, d.ReleaseYear, d.ResNet50TPut)
	}
	t.Notes = append(t.Notes, "throughput improved >94x from K80 (2014) to RTX (2019)")
	return t, nil
}

// PipelineOverhead reproduces §8.2's pipelining validation: measured
// end-to-end throughput versus the min-model prediction at full load.
func PipelineOverhead(s Scale) (*Table, error) {
	t := &Table{ID: "pipeline-overhead", Title: "Pipelining efficiency at full load (low-res JPEG q75)",
		Columns: []string{"quantity", "im/s"}}
	env := costmodel.DefaultEnv()
	plans, err := costmodel.Generate(
		[]costmodel.DNNChoice{{Name: "resnet-50", InputRes: 224}},
		[]costmodel.Format{{Name: "thumb-jpeg-75", Kind: hw.FormatJPEG, W: 215, H: 161, Quality: 75}},
		env, costmodel.GenerateOptions{OptimizePreproc: true})
	if err != nil {
		return nil, err
	}
	p := plans[0]
	pre, exec, err := costmodel.StageThroughputs(p, env)
	if err != nil {
		return nil, err
	}
	images := 20000
	if s == Quick {
		images = 6000
	}
	res, err := costmodel.Measure(p, env, images)
	if err != nil {
		return nil, err
	}
	predicted := math.Min(pre, exec)
	t.Add("preprocessing only", pre)
	t.Add("DNN execution only", exec)
	t.Add("pipelined end-to-end", res.Throughput)
	t.Add("min-model prediction", predicted)
	overhead := (predicted - res.Throughput) / predicted * 100
	t.Notes = append(t.Notes, fmt.Sprintf("pipelining overhead %.1f%% (paper: 16%% at full load)", overhead))
	return t, nil
}

// PowerCost reproduces §7: the power and dollar split between
// preprocessing and execution, and the vCPU price fit.
func PowerCost(Scale) (*Table, error) {
	t := &Table{ID: "power-cost", Title: "Power and cost split: preprocessing vs DNN execution",
		Columns: []string{"model", "preproc W", "exec W", "preproc $/h", "exec $/h"}}
	t4, _ := hw.Device("T4")
	trt, _ := hw.Framework("TensorRT")
	preprocPerVCPU := 527.0 / 4 // full-res JPEG decode rate per vCPU
	for _, m := range []string{"resnet-50", "resnet-18"} {
		d, err := hw.DNN(m)
		if err != nil {
			return nil, err
		}
		exec := hw.ExecThroughput(d, t4, trt)
		preW, exeW, _ := hw.PowerSplit(exec, preprocPerVCPU)
		preUSD, exeUSD := hw.HourlyCostSplit(exec, preprocPerVCPU)
		t.Add(m, preW, exeW, preUSD, exeUSD)
	}
	// Linear price fit over g4dn sizes (paper: R^2 = 0.999).
	var xs, ys []float64
	for _, v := range hw.G4dnVCPUCounts() {
		xs = append(xs, float64(v))
		ys = append(ys, hw.InstancePrice(v))
	}
	fit := stats.LinReg(xs, ys)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"price fit: %.4f $/vCPU + %.3f intercept, R^2=%.4f; %.1f vCPUs = one T4 (paper: 3.4)",
		fit.Slope, fit.Intercept, fit.R2, hw.VCPUsPerT4Price()))
	return t, nil
}
