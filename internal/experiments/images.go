package experiments

import (
	"fmt"

	"smol/internal/costmodel"
	"smol/internal/hw"
	"smol/internal/nn"
)

func init() {
	register("table6", Table6Datasets)
	register("table7", Table7Training)
	register("figure4", Figure4Pareto)
	register("figure5", Figure5Lesion)
	register("figure6", Figure6Factor)
}

// variantToDNN maps micro-ResNet variants onto the paper-scale networks
// whose throughput the hardware model is calibrated for.
var variantToDNN = map[string]string{
	nn.VariantA: "resnet-18",
	nn.VariantB: "resnet-34",
	nn.VariantC: "resnet-50",
}

// paperFormat maps an evaluation format onto its paper-scale costmodel
// format (full images are ~500x375 ImageNet JPEGs; thumbnails are
// 161-short-side).
func paperFormat(f FormatName, roi bool) costmodel.Format {
	roiFrac := 1.0
	if roi {
		// Central-crop ROI decoding (Algorithm 1): the 224x224 crop of a
		// 256-short-side resize needs ~66% of macroblock rows.
		roiFrac = 0.66
	}
	switch f {
	case FmtFull:
		return costmodel.Format{Name: "full-jpeg", Kind: hw.FormatJPEG, W: 500, H: 375,
			Quality: 90, ROIFraction: roiFrac}
	case FmtPNGThumb:
		return costmodel.Format{Name: "thumb-png", Kind: hw.FormatPNG, W: 215, H: 161,
			Lossless: true}
	case FmtJPEG95:
		return costmodel.Format{Name: "thumb-jpeg-95", Kind: hw.FormatJPEG, W: 215, H: 161,
			Quality: 95, ROIFraction: roiFrac}
	default:
		return costmodel.Format{Name: "thumb-jpeg-75", Kind: hw.FormatJPEG, W: 215, H: 161,
			Quality: 75, ROIFraction: roiFrac}
	}
}

// Table6Datasets reproduces Table 6: dataset statistics.
func Table6Datasets(s Scale) (*Table, error) {
	t := &Table{ID: "table6", Title: "Image dataset statistics (synthetic stand-ins)",
		Columns: []string{"dataset", "classes", "train", "test", "full res", "thumb res", "scaling note"}}
	for _, d := range dataList() {
		ds, err := dataset(d, s)
		if err != nil {
			return nil, err
		}
		sp := ds.Spec
		t.Add(sp.Name, sp.NumClasses, len(ds.Train), len(ds.Test), sp.FullRes, sp.ThumbRes, sp.PaperNote)
	}
	return t, nil
}

func dataList() []string {
	return []string{"bike-bird", "animals-10", "birds-200", "imagenet"}
}

// Table7Training reproduces Table 7: the accuracy effect of the training
// procedure (regular vs low-resolution-aware) across input formats, for
// the two larger model variants, on the hardest dataset.
func Table7Training(s Scale) (*Table, error) {
	t := &Table{ID: "table7", Title: "Training procedure x input format accuracy (imagenet stand-in)",
		Columns: []string{"format", "acc (reg, C)", "acc (low-res, C)", "acc (reg, B)", "acc (low-res, B)"}}
	ds := "imagenet"
	for _, f := range EvalFormats() {
		var cells []any
		cells = append(cells, string(f))
		for _, variant := range []string{nn.VariantC, nn.VariantB} {
			for _, mode := range []TrainMode{ModeRegular, ModeLowRes} {
				acc, err := MeasuredAccuracy(s, ds, variant, mode, f)
				if err != nil {
					return nil, err
				}
				cells = append(cells, acc)
			}
		}
		t.Add(cells...)
	}
	t.Notes = append(t.Notes,
		"paper shape: regular training collapses on thumbnails (75.2%->57.7%); low-res training recovers (75.0%)",
		"variant C stands in for ResNet-50, variant B for ResNet-34")
	return t, nil
}

// systemPoint is one (accuracy, throughput) configuration of a system.
type systemPoint struct {
	System     string
	Config     string
	Accuracy   float64
	Throughput float64
}

// smolConfig toggles the optimizations for the lesion/factor studies.
type smolConfig struct {
	LowRes     bool // consider thumbnail formats (with low-res-trained models)
	PreprocOpt bool // DAG optimization + ROI decoding + placement
}

// smolPoints generates Smol's plan points for one dataset.
func smolPoints(s Scale, dsName string, cfg smolConfig, env costmodel.Env) ([]systemPoint, error) {
	formats := []FormatName{FmtFull}
	if cfg.LowRes {
		formats = EvalFormats()
	}
	var pts []systemPoint
	for _, variant := range nn.Variants() {
		for _, f := range formats {
			mode := ModeRegular
			if f != FmtFull {
				mode = ModeLowRes
			}
			acc, err := MeasuredAccuracy(s, dsName, variant, mode, f)
			if err != nil {
				return nil, err
			}
			choice := costmodel.DNNChoice{Name: variantToDNN[variant], InputRes: costmodel.StandardRes, Accuracy: acc}
			plans, err := costmodel.Generate([]costmodel.DNNChoice{choice},
				[]costmodel.Format{paperFormat(f, cfg.PreprocOpt)}, env,
				costmodel.GenerateOptions{OptimizePreproc: cfg.PreprocOpt, PlaceOps: cfg.PreprocOpt})
			if err != nil {
				return nil, err
			}
			tput, err := costmodel.EstimateSmol(plans[0], env)
			if err != nil {
				return nil, err
			}
			pts = append(pts, systemPoint{
				System: "smol", Config: fmt.Sprintf("%s/%s", variant, f),
				Accuracy: acc, Throughput: tput,
			})
		}
	}
	return pts, nil
}

// naivePoints generates the naive baseline: standard variants on full
// resolution, framework-default preprocessing.
func naivePoints(s Scale, dsName string, env costmodel.Env) ([]systemPoint, error) {
	var pts []systemPoint
	for _, variant := range nn.Variants() {
		acc, err := MeasuredAccuracy(s, dsName, variant, ModeRegular, FmtFull)
		if err != nil {
			return nil, err
		}
		choice := costmodel.DNNChoice{Name: variantToDNN[variant], InputRes: costmodel.StandardRes, Accuracy: acc}
		plans, err := costmodel.Generate([]costmodel.DNNChoice{choice},
			[]costmodel.Format{paperFormat(FmtFull, false)}, env,
			costmodel.GenerateOptions{OptimizePreproc: false})
		if err != nil {
			return nil, err
		}
		tput, err := costmodel.EstimateSmol(plans[0], env)
		if err != nil {
			return nil, err
		}
		pts = append(pts, systemPoint{System: "naive", Config: variant, Accuracy: acc, Throughput: tput})
	}
	return pts, nil
}

// tahomaPoints generates the Tahoma baseline: cascades of a specialized
// model into the most accurate target, across pass-through rates. Cascade
// accuracy is interpolated between the (measured) specialized and target
// accuracies by pass rate; throughput uses the cascade composition with
// Tahoma's fixed full-resolution format.
func tahomaPoints(s Scale, dsName string, env costmodel.Env) ([]systemPoint, error) {
	tgtAcc, err := MeasuredAccuracy(s, dsName, nn.VariantC, ModeRegular, FmtFull)
	if err != nil {
		return nil, err
	}
	specAcc, err := MeasuredAccuracy(s, dsName, nn.VariantA, ModeRegular, FmtFull)
	if err != nil {
		return nil, err
	}
	// A Tahoma specialized NN is far cheaper and less accurate than even
	// variant A; on complex tasks it loses additional accuracy (the paper:
	// "Tahoma's specialized models perform poorly on complex tasks").
	ds, err := dataset(dsName, s)
	if err != nil {
		return nil, err
	}
	complexity := float64(ds.Spec.NumClasses)
	specPenalty := 0.02 + 0.004*complexity
	tinyAcc := specAcc - specPenalty
	if tinyAcc < 1.0/complexity {
		tinyAcc = 1.0 / complexity
	}

	specChoice := costmodel.DNNChoice{Name: "tiny-specialized", InputRes: costmodel.StandardRes, Accuracy: tinyAcc}
	tgtChoice := costmodel.DNNChoice{Name: variantToDNN[nn.VariantC], InputRes: costmodel.StandardRes, Accuracy: tgtAcc}
	fullFmt := paperFormat(FmtFull, false)
	specPlans, err := costmodel.Generate([]costmodel.DNNChoice{specChoice}, []costmodel.Format{fullFmt},
		env, costmodel.GenerateOptions{OptimizePreproc: false})
	if err != nil {
		return nil, err
	}
	tgtPlans, err := costmodel.Generate([]costmodel.DNNChoice{tgtChoice}, []costmodel.Format{fullFmt},
		env, costmodel.GenerateOptions{OptimizePreproc: false})
	if err != nil {
		return nil, err
	}
	var pts []systemPoint
	for _, alpha := range []float64{0.05, 0.15, 0.3, 0.5, 0.7, 0.9} {
		c := costmodel.Cascade{
			Specialized: specPlans[0],
			Target:      tgtPlans[0],
			Alpha:       alpha,
			Accuracy:    tinyAcc + (tgtAcc-tinyAcc)*alpha,
		}
		tput, err := costmodel.CascadeThroughputSmol(c, env)
		if err != nil {
			return nil, err
		}
		pts = append(pts, systemPoint{
			System: "tahoma", Config: fmt.Sprintf("cascade-a%.2f", alpha),
			Accuracy: c.Accuracy, Throughput: tput,
		})
	}
	return pts, nil
}

// frontier reduces points to the accuracy/throughput Pareto frontier.
func frontier(pts []systemPoint) []systemPoint {
	evals := make([]costmodel.Evaluated, len(pts))
	for i, p := range pts {
		evals[i] = costmodel.Evaluated{Accuracy: p.Accuracy, Throughput: p.Throughput}
	}
	front := costmodel.ParetoFrontier(evals)
	var out []systemPoint
	for _, f := range front {
		for _, p := range pts {
			if p.Accuracy == f.Accuracy && p.Throughput == f.Throughput {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// maxSpeedupAtAccuracy finds the throughput ratio between a system's and a
// baseline's best plans meeting the baseline's peak accuracy (minus eps).
func maxSpeedupAtAccuracy(smol, baseline []systemPoint, eps float64) float64 {
	var bestAcc float64
	for _, p := range baseline {
		if p.Accuracy > bestAcc {
			bestAcc = p.Accuracy
		}
	}
	floor := bestAcc - eps
	best := func(pts []systemPoint) float64 {
		var b float64
		for _, p := range pts {
			if p.Accuracy >= floor && p.Throughput > b {
				b = p.Throughput
			}
		}
		return b
	}
	bs, bb := best(smol), best(baseline)
	if bb == 0 {
		return 0
	}
	return bs / bb
}

// Figure4Pareto reproduces Figure 4: accuracy vs throughput frontiers of
// naive, Tahoma, and Smol on the four image datasets.
func Figure4Pareto(s Scale) (*Table, error) {
	t := &Table{ID: "figure4", Title: "Accuracy vs throughput Pareto frontiers (naive / tahoma / smol)",
		Columns: []string{"dataset", "system", "config", "accuracy", "throughput (im/s)"}}
	env := costmodel.DefaultEnv()
	for _, dsName := range dataList() {
		naive, err := naivePoints(s, dsName, env)
		if err != nil {
			return nil, err
		}
		tah, err := tahomaPoints(s, dsName, env)
		if err != nil {
			return nil, err
		}
		smol, err := smolPoints(s, dsName, smolConfig{LowRes: true, PreprocOpt: true}, env)
		if err != nil {
			return nil, err
		}
		for _, pts := range [][]systemPoint{frontier(naive), frontier(tah), frontier(smol)} {
			for _, p := range pts {
				t.Add(dsName, p.System, p.Config, p.Accuracy, p.Throughput)
			}
		}
		sp := maxSpeedupAtAccuracy(smol, naive, 0.005)
		t.Notes = append(t.Notes, fmt.Sprintf("%s: smol speedup at naive's peak accuracy: %.1fx", dsName, sp))
	}
	t.Notes = append(t.Notes, "paper: up to 5.9x over ResNet-18 baseline, 2.2x over ResNet-50, at no accuracy loss")
	return t, nil
}

// Figure5Lesion reproduces Figure 5: removing low-resolution data or the
// preprocessing optimizations individually shifts the frontier down.
func Figure5Lesion(s Scale) (*Table, error) {
	t := &Table{ID: "figure5", Title: "Lesion study: remove low-res data / preproc optimizations",
		Columns: []string{"dataset", "condition", "best im/s at peak acc", "peak acc"}}
	env := costmodel.DefaultEnv()
	conditions := []struct {
		name string
		cfg  smolConfig
	}{
		{"smol (all)", smolConfig{LowRes: true, PreprocOpt: true}},
		{"-low-res", smolConfig{LowRes: false, PreprocOpt: true}},
		{"-preproc-opt", smolConfig{LowRes: true, PreprocOpt: false}},
	}
	for _, dsName := range dataList() {
		for _, c := range conditions {
			pts, err := smolPoints(s, dsName, c.cfg, env)
			if err != nil {
				return nil, err
			}
			var peakAcc float64
			for _, p := range pts {
				if p.Accuracy > peakAcc {
					peakAcc = p.Accuracy
				}
			}
			var best float64
			for _, p := range pts {
				if p.Accuracy >= peakAcc-0.005 && p.Throughput > best {
					best = p.Throughput
				}
			}
			t.Add(dsName, c.name, best, peakAcc)
		}
	}
	t.Notes = append(t.Notes, "paper: removing either optimization shifts the Pareto frontier inward on all datasets")
	return t, nil
}

// Figure6Factor reproduces Figure 6: successively adding the preprocessing
// optimizations and then low-resolution data.
func Figure6Factor(s Scale) (*Table, error) {
	t := &Table{ID: "figure6", Title: "Factor analysis: basic -> +preproc -> +low-res & preproc",
		Columns: []string{"dataset", "condition", "best im/s at peak acc"}}
	env := costmodel.DefaultEnv()
	conditions := []struct {
		name string
		cfg  smolConfig
	}{
		{"basic", smolConfig{}},
		{"+preproc", smolConfig{PreprocOpt: true}},
		{"+lowres&preproc", smolConfig{LowRes: true, PreprocOpt: true}},
	}
	for _, dsName := range dataList() {
		var last float64
		for i, c := range conditions {
			pts, err := smolPoints(s, dsName, c.cfg, env)
			if err != nil {
				return nil, err
			}
			var peakAcc float64
			for _, p := range pts {
				if p.Accuracy > peakAcc {
					peakAcc = p.Accuracy
				}
			}
			var best float64
			for _, p := range pts {
				if p.Accuracy >= peakAcc-0.005 && p.Throughput > best {
					best = p.Throughput
				}
			}
			t.Add(dsName, c.name, best)
			if i > 0 && best+1e-9 < last {
				t.Notes = append(t.Notes, fmt.Sprintf("%s: %s did not improve over previous step", dsName, c.name))
			}
			last = best
		}
	}
	t.Notes = append(t.Notes, "paper: both factors improve the frontier; easy tasks benefit mostly from preproc opts")
	return t, nil
}
