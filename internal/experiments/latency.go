package experiments

import (
	"fmt"

	"smol/internal/costmodel"
	"smol/internal/hw"
)

func init() {
	register("latency", LatencyTradeoff)
}

// LatencyTradeoff exercises the §3.1 extension: the latency/throughput
// trade-off of batch size under the preprocessing-aware cost model. For a
// representative preprocessing-bound plan it sweeps the batch size,
// comparing the analytic worst-case latency estimate against the
// discrete-event simulator's measured mean and max, alongside the
// throughput each batch achieves — the numbers a latency-constrained
// deployment trades between.
func LatencyTradeoff(s Scale) (*Table, error) {
	t := &Table{ID: "latency", Title: "Batch size vs latency and throughput (ResNet-50, thumbnails)",
		Columns: []string{"batch", "est worst-case (ms)", "sim mean (ms)", "sim max (ms)",
			"throughput (im/s)", "est/sim-max"}}
	env := costmodel.DefaultEnv()
	plans, err := costmodel.Generate(
		[]costmodel.DNNChoice{{Name: "resnet-50", InputRes: 224, Accuracy: 0.75}},
		[]costmodel.Format{{Name: "thumb-png", Kind: hw.FormatPNG, W: 215, H: 161, Lossless: true}},
		env, costmodel.GenerateOptions{OptimizePreproc: true})
	if err != nil {
		return nil, err
	}
	p := plans[0]
	images := 20000
	if s == Quick {
		images = 6000
	}
	for _, b := range []int{8, 16, 32, 64, 128} {
		e := env
		e.BatchSize = b
		est, err := costmodel.EstimateLatencyUS(p, e)
		if err != nil {
			return nil, err
		}
		res, err := costmodel.Measure(p, e, images)
		if err != nil {
			return nil, err
		}
		t.Add(b, est/1e3, res.MeanLatencyUS/1e3, res.MaxLatencyUS/1e3,
			res.Throughput, est/res.MaxLatencyUS)
	}
	batch, tput, err := costmodel.BatchForLatency(p, env, 30e3)
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("no batch meets a 30ms worst-case target: %v", err))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"BatchForLatency(30ms) -> batch %d at %.0f im/s", batch, tput))
	}
	t.Notes = append(t.Notes,
		"extension of §3.1 (latency-constrained deployments); not a paper table")
	return t, nil
}
