package costmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smol/internal/hw"
)

// randPlanSpace draws a random but valid D x F plan space.
func randPlanSpace(rng *rand.Rand) ([]DNNChoice, []Format) {
	names := []string{"tiny-specialized", "resnet-18", "resnet-34", "resnet-50"}
	nd := 1 + rng.Intn(3)
	dnns := make([]DNNChoice, nd)
	for i := range dnns {
		dnns[i] = DNNChoice{
			Name:     names[rng.Intn(len(names))],
			InputRes: 96 + 32*rng.Intn(6), // 96..256
			Accuracy: 0.5 + 0.5*rng.Float64(),
		}
	}
	nf := 1 + rng.Intn(3)
	formats := make([]Format, nf)
	for i := range formats {
		if rng.Intn(2) == 0 {
			formats[i] = Format{Name: "jpeg", Kind: hw.FormatJPEG,
				W: 200 + rng.Intn(400), H: 150 + rng.Intn(300), Quality: 50 + rng.Intn(50)}
		} else {
			formats[i] = Format{Name: "png", Kind: hw.FormatPNG,
				W: 100 + rng.Intn(200), H: 80 + rng.Intn(160), Lossless: true}
		}
	}
	return dnns, formats
}

// TestQuickMinEstimatorBounds: for any plan, Smol's estimate (Eq. 4) never
// exceeds either stage's isolated throughput, equals their minimum, and is
// never more optimistic than Tahoma's sequential estimate is pessimistic —
// min >= harmonic sum always.
func TestQuickMinEstimatorBounds(t *testing.T) {
	env := DefaultEnv()
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		dnns, formats := randPlanSpace(rng)
		plans, err := Generate(dnns, formats, env,
			GenerateOptions{OptimizePreproc: true, PlaceOps: rng.Intn(2) == 0})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, p := range plans {
			pre, exec, err := StageThroughputs(p, env)
			if err != nil || pre <= 0 || exec <= 0 {
				t.Logf("seed %d: stages %v/%v err %v", seed, pre, exec, err)
				return false
			}
			smol, _ := EstimateSmol(p, env)
			tahoma, _ := EstimateTahoma(p, env)
			blazeit, _ := EstimateBlazeIt(p, env)
			if smol > pre+1e-9 || smol > exec+1e-9 {
				t.Logf("seed %d: min estimate %v exceeds a stage (%v, %v)", seed, smol, pre, exec)
				return false
			}
			if smol < tahoma-1e-9 {
				t.Logf("seed %d: pipelined estimate %v below sequential %v", seed, smol, tahoma)
				return false
			}
			if blazeit != exec {
				t.Logf("seed %d: exec-only estimate %v != exec %v", seed, blazeit, exec)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParetoFrontierSound: no frontier member is dominated by any
// evaluated plan, and every non-frontier plan is dominated by some
// frontier member.
func TestQuickParetoFrontierSound(t *testing.T) {
	env := DefaultEnv()
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		dnns, formats := randPlanSpace(rng)
		plans, err := Generate(dnns, formats, env, GenerateOptions{OptimizePreproc: true})
		if err != nil {
			return false
		}
		evals, err := Evaluate(plans, env)
		if err != nil {
			return false
		}
		front := ParetoFrontier(evals)
		if len(front) == 0 {
			t.Logf("seed %d: empty frontier from %d plans", seed, len(evals))
			return false
		}
		dominates := func(a, b Evaluated) bool {
			return a.Throughput >= b.Throughput && a.Accuracy >= b.Accuracy &&
				(a.Throughput > b.Throughput || a.Accuracy > b.Accuracy)
		}
		for _, fm := range front {
			for _, e := range evals {
				if dominates(e, fm) {
					t.Logf("seed %d: frontier member %s dominated by %s", seed, fm.Plan, e.Plan)
					return false
				}
			}
		}
		inFront := func(e Evaluated) bool {
			for _, fm := range front {
				if fm.Plan.String() == e.Plan.String() &&
					fm.Throughput == e.Throughput && fm.Accuracy == e.Accuracy {
					return true
				}
			}
			return false
		}
		for _, e := range evals {
			if inFront(e) {
				continue
			}
			dominated := false
			for _, fm := range front {
				if dominates(fm, e) || (fm.Throughput == e.Throughput && fm.Accuracy == e.Accuracy) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Logf("seed %d: plan %s neither on frontier nor dominated", seed, e.Plan)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelectRespectsConstraints: whenever Select succeeds the plan
// satisfies every bound, and when it fails no evaluated plan satisfies
// them all.
func TestQuickSelectRespectsConstraints(t *testing.T) {
	env := DefaultEnv()
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		dnns, formats := randPlanSpace(rng)
		plans, err := Generate(dnns, formats, env, GenerateOptions{OptimizePreproc: true})
		if err != nil {
			return false
		}
		evals, err := Evaluate(plans, env)
		if err != nil {
			return false
		}
		c := Constraint{
			MinAccuracy:   rng.Float64(),
			MinThroughput: rng.Float64() * 6000,
		}
		if rng.Intn(2) == 0 {
			c.MaxLatencyUS = rng.Float64() * 1e6
		}
		feasible := func(e Evaluated) bool {
			if e.Accuracy < c.MinAccuracy || e.Throughput < c.MinThroughput {
				return false
			}
			return c.MaxLatencyUS == 0 || e.LatencyUS <= c.MaxLatencyUS
		}
		got, err := Select(evals, c)
		if err != nil {
			for _, e := range evals {
				if feasible(e) {
					t.Logf("seed %d: Select failed but %s is feasible", seed, e.Plan)
					return false
				}
			}
			return true
		}
		if !feasible(got) {
			t.Logf("seed %d: selected %s violates %+v", seed, got.Plan, c)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
