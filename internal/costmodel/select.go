package costmodel

// Selection (LIMIT) query cost: a proxy pass over every candidate frame
// followed by expensive verification of the frames the proxy could not rule
// out. The planner evaluates SelectCostUS once per (proxy, proxy rendition)
// candidate against the verification plan the QoS search already chose, so
// the proxy choice is costed jointly with the rendition it reads and the
// entry that verifies behind it.

// selectVerifyOvershoot models how many candidates an early-terminating
// cascade verifies per confirmed frame: batching plus proxy false positives
// mean the scan does not stop at exactly Limit frames.
const selectVerifyOvershoot = 2.0

// SelectSpec describes one candidate selection plan.
type SelectSpec struct {
	// Frames is the number of sampled frames the proxy must score.
	Frames int
	// ProxyUS is the per-frame proxy cost (decode + scoring) in us. Zero
	// when a persisted score table makes the proxy pass free.
	ProxyUS float64
	// VerifyUS is the per-candidate verification cost (GOP seek + decode +
	// preproc + execution) in us.
	VerifyUS float64
	// Selectivity is the prior fraction of frames expected to survive the
	// proxy confidence floor; <= 0 or > 1 means no pruning prior.
	Selectivity float64
	// Limit is the query's K; 0 verifies every surviving candidate.
	Limit int
}

// ExpectedVerifications estimates how many frames reach the expensive
// verification stage: the surviving candidates, capped by the early
// termination budget when the query has a LIMIT.
func ExpectedVerifications(s SelectSpec) float64 {
	sel := s.Selectivity
	if sel <= 0 || sel > 1 {
		sel = 1
	}
	cand := float64(s.Frames) * sel
	if s.Limit > 0 {
		if budget := float64(s.Limit) * selectVerifyOvershoot; budget < cand {
			return budget
		}
	}
	return cand
}

// SelectCostUS returns the modeled cost of one selection query in
// vCPU-microseconds: the full proxy pass plus the expected verification
// work. With cached scores (ProxyUS = 0) the cost collapses to the
// verification term — the repeat-query fast path.
func SelectCostUS(s SelectSpec) float64 {
	return float64(s.Frames)*s.ProxyUS + ExpectedVerifications(s)*s.VerifyUS
}
