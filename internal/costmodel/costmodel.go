// Package costmodel implements the paper's §4: throughput estimation for
// end-to-end DNN inference plans. It provides the three estimators the
// paper compares —
//
//   - BlazeIt/NoScope style (Eq. 2): DNN execution only, ignoring
//     preprocessing entirely;
//   - Tahoma style (Eq. 3): sequential (harmonic) composition of
//     preprocessing and execution, ignoring pipelining;
//   - Smol (Eq. 4): min(preprocessing, execution), correct for pipelined
//     engines;
//
// — plus plan generation over the cross product of DNNs and input formats
// (D x F), CPU/accelerator operator placement (§6.3), and Pareto-optimal
// plan selection.
package costmodel

import (
	"fmt"
	"math"

	"smol/internal/hw"
	"smol/internal/preproc"
	"smol/internal/stats"
)

// Format describes one natively available visual data format (§5.2).
type Format struct {
	Name string
	Kind hw.ImageFormat
	// W, H are the encoded dimensions.
	W, H int
	// Quality is the JPEG quality (0 = default, ignored for PNG).
	Quality int
	// Lossless records whether the encoding is lossless (PNG) — this
	// affects accuracy, not speed.
	Lossless bool
	// ROIFraction < 1 enables partial decoding of this fraction of the
	// image (Algorithm 1); 1 or 0 means full decode.
	ROIFraction float64
	// DecodeScale > 1 enables DCT-domain scaled decoding (JPEG only):
	// reconstruction at 1/DecodeScale resolution, entropy decode unchanged.
	DecodeScale int
	// NoDeblock disables the deblocking filter for video formats.
	NoDeblock bool
	// GOP is the video I-frame interval (FormatVideoH264 only; zero means
	// unknown, costing the generic I/P average).
	GOP int
	// FramesPerSample amortizes stride-sampled video: producing one DNN
	// input requires decoding this many frames, because motion-compensated
	// frames need their references even when they are not classified. The
	// decode cost is multiplied by it; zero or one means every decoded
	// frame is sampled.
	FramesPerSample int
	// GOPSeek marks a video stream with a per-GOP byte-offset index
	// (FormatVideoH264 only): stride-sampled decode seeks straight to each
	// sampled frame's GOP, so the per-sample cost is capped at one GOP
	// prefix instead of growing with FramesPerSample.
	GOPSeek bool
}

// DNNChoice pairs a network with the input resolution it will run at and
// its estimated accuracy for the dataset/format under consideration.
type DNNChoice struct {
	Name string
	// InputRes is the square DNN input resolution (224 standard).
	InputRes int
	// Accuracy is estimated on a validation set.
	Accuracy float64
}

// Plan is one executable configuration: a DNN, an input format, a
// preprocessing pipeline, and an operator placement split.
type Plan struct {
	DNN    DNNChoice
	Format Format
	// Preproc is the optimized post-decode operator pipeline.
	Preproc preproc.Plan
	// PreprocSpec records the geometry the pipeline was built for.
	PreprocSpec preproc.Spec
	// AccelOps is the number of trailing pipeline ops placed on the
	// accelerator (0 = all preprocessing on CPU).
	AccelOps int
}

// Env is the hardware/software environment plans execute in.
type Env struct {
	Device    hw.DeviceProfile
	Framework hw.FrameworkProfile
	VCPUs     int
	BatchSize int
	// Calibration, when non-nil, replaces parts of the static hardware
	// model with live measurements: per-DNN execution service times (keyed
	// by DNNChoice.Name) and a CPU-cost scale factor. The serving planner
	// fills it by timing the real compiled forwards and ingest kernels, so
	// plan selection ranks by the machine it is actually running on.
	Calibration *hw.Calibration
}

// DefaultEnv returns the paper's g4dn.xlarge environment: one T4,
// TensorRT, 4 vCPUs, batch 64.
func DefaultEnv() Env {
	dev, err := hw.Device("T4")
	if err != nil {
		panic(err)
	}
	fw, err := hw.Framework("TensorRT")
	if err != nil {
		panic(err)
	}
	return Env{Device: dev, Framework: fw, VCPUs: 4, BatchSize: 64}
}

// StandardRes is the canonical DNN input resolution the paper's
// throughput anchors are measured at.
const StandardRes = 224

// StageCosts decomposes a plan into per-image stage costs.
type StageCosts struct {
	// DecodeUS is decode time per image (vCPU-microseconds).
	DecodeUS float64
	// CPUPostUS is the CPU share of post-decode preprocessing.
	CPUPostUS float64
	// AccelPostUS is the accelerator share of post-decode preprocessing.
	AccelPostUS float64
	// ExecUS is DNN execution time per image on the accelerator.
	ExecUS float64
}

// Costs computes the per-image stage costs of a plan in env.
func Costs(p Plan, env Env) (StageCosts, error) {
	var c StageCosts
	c.DecodeUS = hw.DecodeCostUS(hw.DecodeSpec{
		Format:          p.Format.Kind,
		W:               p.Format.W,
		H:               p.Format.H,
		Quality:         p.Format.Quality,
		ROIFraction:     p.Format.ROIFraction,
		Scale:           p.Format.DecodeScale,
		NoDeblock:       p.Format.NoDeblock,
		GOP:             p.Format.GOP,
		FramesPerSample: p.Format.FramesPerSample,
		GOPSeek:         p.Format.GOPSeek,
	})
	opCosts := preproc.OpCosts(p.Preproc, p.PreprocSpec)
	split := len(opCosts) - p.AccelOps
	if split < 0 {
		split = 0
	}
	for i, oc := range opCosts {
		if p.Preproc.Ops[i].Kind == preproc.OpDecodeScale {
			// Decode cost is carried by DecodeUS (the hw model, including
			// Format.DecodeScale); the plan's decode op only shapes the
			// geometry downstream ops see.
			continue
		}
		if i < split {
			c.CPUPostUS += hw.PostprocCostUS(oc)
		} else {
			c.AccelPostUS += hw.AccelPostprocCostUS(oc)
		}
	}
	// Live CPU-cost calibration: decode and CPU-side preprocessing scale by
	// the measured-vs-modeled factor. Video decode has its own measured
	// factor (the vid codec's live constants differ from the image kernels).
	cpuScale := env.Calibration.CPUScale()
	decodeScale := cpuScale
	if p.Format.Kind == hw.FormatVideoH264 {
		decodeScale = env.Calibration.VideoCPUScale()
	}
	c.DecodeUS *= decodeScale
	c.CPUPostUS *= cpuScale
	// Execution: live-measured service time wins over the static profile,
	// and is already at the choice's input resolution.
	if us, ok := env.Calibration.ExecUSFor(p.DNN.Name); ok {
		c.ExecUS = us
		return c, nil
	}
	dnn, err := hw.DNN(p.DNN.Name)
	if err != nil {
		return StageCosts{}, err
	}
	execTPut := hw.ExecThroughput(dnn, env.Device, env.Framework)
	execTPut = hw.InputScaledThroughput(execTPut, p.DNN.InputRes, StandardRes)
	c.ExecUS = 1e6 / execTPut
	return c, nil
}

// StageThroughputs returns the isolated preprocessing and accelerator
// throughputs of a plan (im/s): preprocessing across env.VCPUs, and the
// accelerator shared between DNN execution and any accelerator-placed
// preprocessing ops.
func StageThroughputs(p Plan, env Env) (preprocTPut, execTPut float64, err error) {
	c, err := Costs(p, env)
	if err != nil {
		return 0, 0, err
	}
	cpuUS := c.DecodeUS + c.CPUPostUS
	preprocTPut = float64(env.VCPUs) / (cpuUS / 1e6)
	accelUS := c.ExecUS + c.AccelPostUS
	execTPut = 1e6 / accelUS
	return preprocTPut, execTPut, nil
}

// EstimateSmol is the paper's Eq. 4: pipelined throughput is the minimum of
// the stage throughputs.
func EstimateSmol(p Plan, env Env) (float64, error) {
	pre, exec, err := StageThroughputs(p, env)
	if err != nil {
		return 0, err
	}
	return math.Min(pre, exec), nil
}

// EstimateBlazeIt is Eq. 2: DNN execution throughput only, ignoring
// preprocessing.
func EstimateBlazeIt(p Plan, env Env) (float64, error) {
	_, exec, err := StageThroughputs(p, env)
	if err != nil {
		return 0, err
	}
	return exec, nil
}

// EstimateTahoma is Eq. 3: unpipelined sequential composition.
func EstimateTahoma(p Plan, env Env) (float64, error) {
	pre, exec, err := StageThroughputs(p, env)
	if err != nil {
		return 0, err
	}
	return stats.HarmonicMeanThroughput(pre, exec), nil
}

// EstimateLatencyUS predicts the worst-case per-image latency of a plan in
// env's pipelined batch engine, from the start of an image's preprocessing
// to the completion of its batch. The paper's §3.1 notes the joint
// preprocessing/inference techniques also apply to latency-constrained
// deployments; this estimator makes the trade-off explicit — larger batches
// raise throughput (amortized transfer overhead) but every image waits for
// its whole batch:
//
//	latency ≈ fill + transfer + backlog + batch-compute
//
// where fill is the time to preprocess a full batch across the vCPUs,
// backlog is the device wait when execution is the bottleneck (bounded by
// the engine's queue capacity), and batch-compute is BatchSize images of
// accelerator time.
func EstimateLatencyUS(p Plan, env Env) (float64, error) {
	c, err := Costs(p, env)
	if err != nil {
		return 0, err
	}
	b := float64(env.BatchSize)
	cpuUS := c.DecodeUS + c.CPUPostUS
	accelUS := c.ExecUS + c.AccelPostUS
	// First image of a batch waits for the remaining B-1 to preprocess.
	fill := cpuUS + (b-1)*cpuUS/float64(env.VCPUs)
	// When execution is the bottleneck the bounded queue (4 batches in
	// Measure and the real engine) backs up; a worst-case image enters with
	// the queue full and waits behind all QueueCap items ahead of it.
	var backlog float64
	perImagePre := cpuUS / float64(env.VCPUs)
	if accelUS > perImagePre {
		backlog = 4 * b * accelUS
	}
	return fill + simBatchOverheadUS + backlog + b*accelUS, nil
}

// simBatchOverheadUS is the per-batch transfer/launch overhead both Measure
// and EstimateLatencyUS assume (pinned-memory transfer of a batch of
// 224x224 float tensors).
const simBatchOverheadUS = 120

// BatchForLatency returns the largest batch size (a power of two up to
// env.BatchSize) whose estimated worst-case latency stays under
// maxLatencyUS, jointly with the throughput that batch achieves. Larger
// batches amortize transfer overhead but delay every image in them, so the
// latency-constrained setting tunes the batch alongside the plan. It
// returns an error when even batch 1 misses the target.
func BatchForLatency(p Plan, env Env, maxLatencyUS float64) (batch int, throughput float64, err error) {
	if maxLatencyUS <= 0 {
		return 0, 0, fmt.Errorf("costmodel: latency target must be positive, got %v", maxLatencyUS)
	}
	for b := env.BatchSize; b >= 1; b /= 2 {
		cand := env
		cand.BatchSize = b
		lat, err := EstimateLatencyUS(p, cand)
		if err != nil {
			return 0, 0, err
		}
		if lat <= maxLatencyUS {
			tput, err := EstimateSmol(p, cand)
			if err != nil {
				return 0, 0, err
			}
			return b, tput, nil
		}
	}
	return 0, 0, fmt.Errorf("costmodel: no batch size meets latency target %.0fus for plan %s",
		maxLatencyUS, p)
}

// Measure runs the plan through the discrete-event pipeline simulator and
// returns the observed end-to-end throughput — the "ground truth" the
// estimators are judged against (Table 3).
func Measure(p Plan, env Env, numImages int) (hw.PipelineResult, error) {
	c, err := Costs(p, env)
	if err != nil {
		return hw.PipelineResult{}, err
	}
	cpuUS := c.DecodeUS + c.CPUPostUS
	accelUS := c.ExecUS + c.AccelPostUS
	cfg := hw.PipelineConfig{
		NumImages:       numImages,
		Producers:       env.VCPUs,
		Consumers:       2,
		BatchSize:       env.BatchSize,
		QueueCap:        4 * env.BatchSize,
		PreprocUS:       func(i int) float64 { return cpuUS },
		ExecUSPerImage:  accelUS,
		BatchOverheadUS: simBatchOverheadUS,
	}
	return hw.SimulatePipeline(cfg)
}

// PlacePreprocOps chooses the accelerator/CPU split (§6.3): it tries every
// split point (preprocessing ops are sequential, so there are only a
// handful) and keeps the one maximizing estimated pipelined throughput.
func PlacePreprocOps(p Plan, env Env) (Plan, error) {
	best := p
	best.AccelOps = 0
	bestTPut := -1.0
	for k := 0; k <= len(p.Preproc.Ops); k++ {
		cand := p
		cand.AccelOps = k
		tput, err := EstimateSmol(cand, env)
		if err != nil {
			return Plan{}, err
		}
		if tput > bestTPut {
			best, bestTPut = cand, tput
		}
	}
	return best, nil
}

// String renders a short human-readable description of the plan.
func (p Plan) String() string {
	placement := "cpu"
	if p.AccelOps > 0 {
		placement = fmt.Sprintf("cpu+%d-accel", p.AccelOps)
	}
	return fmt.Sprintf("%s@%d on %s (%s)", p.DNN.Name, p.DNN.InputRes, p.Format.Name, placement)
}
