package costmodel

import "testing"

// TestExpectedVerifications: the verification estimate must track the
// selectivity prior, cap at the LIMIT's early-termination budget, and
// degrade to "verify everything" without a prior.
func TestExpectedVerifications(t *testing.T) {
	base := SelectSpec{Frames: 1000, Selectivity: 0.1, Limit: 10}
	if got := ExpectedVerifications(base); got != 20 {
		t.Fatalf("capped estimate %g, want Limit x overshoot = 20", got)
	}
	// A large LIMIT stops capping: all surviving candidates verify.
	big := base
	big.Limit = 500
	if got := ExpectedVerifications(big); got != 100 {
		t.Fatalf("uncapped estimate %g, want Frames x selectivity = 100", got)
	}
	// No LIMIT, no prior: every frame verifies.
	all := SelectSpec{Frames: 1000}
	if got := ExpectedVerifications(all); got != 1000 {
		t.Fatalf("no-prior estimate %g, want 1000", got)
	}
	for _, sel := range []float64{0, -1, 1.5} {
		s := SelectSpec{Frames: 100, Selectivity: sel}
		if got := ExpectedVerifications(s); got != 100 {
			t.Fatalf("selectivity %g: estimate %g, want the no-prior 100", sel, got)
		}
	}
}

// TestSelectCostOrdering pins the planner-facing inequalities: a cached
// proxy dominates the same live proxy, a cheaper proxy wins at equal
// verification cost, and the modeled cascade undercuts a full scan
// (everything verified) whenever verification dwarfs the proxy.
func TestSelectCostOrdering(t *testing.T) {
	live := SelectSpec{Frames: 1000, ProxyUS: 50, VerifyUS: 5000, Selectivity: 0.1, Limit: 10}
	cached := live
	cached.ProxyUS = 0
	if c, l := SelectCostUS(cached), SelectCostUS(live); c >= l {
		t.Fatalf("cached proxy costs %g, live %g — cache does not dominate", c, l)
	}
	if got, want := SelectCostUS(cached), ExpectedVerifications(cached)*cached.VerifyUS; got != want {
		t.Fatalf("cached cost %g, want pure verification term %g", got, want)
	}
	cheap := live
	cheap.ProxyUS = 10
	if SelectCostUS(cheap) >= SelectCostUS(live) {
		t.Fatal("cheaper proxy does not lower the joint cost")
	}
	fullScan := SelectSpec{Frames: 1000, ProxyUS: live.ProxyUS, VerifyUS: live.VerifyUS}
	if c, f := SelectCostUS(live), SelectCostUS(fullScan); c >= f {
		t.Fatalf("cascade costs %g, full scan %g — pushdown not modeled", c, f)
	}
}
