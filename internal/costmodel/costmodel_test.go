package costmodel

import (
	"math"
	"testing"

	"smol/internal/hw"
	"smol/internal/preproc"
	"smol/internal/stats"
)

// fullResJPEG is the ImageNet-style full resolution format.
func fullResJPEG() Format {
	return Format{Name: "full-jpeg", Kind: hw.FormatJPEG, W: 500, H: 375, Quality: 90}
}

// thumbPNG is the 161-short-side PNG thumbnail format.
func thumbPNG() Format {
	return Format{Name: "thumb-png", Kind: hw.FormatPNG, W: 215, H: 161, Lossless: true}
}

func rn50() DNNChoice { return DNNChoice{Name: "resnet-50", InputRes: 224, Accuracy: 0.7516} }
func rn18() DNNChoice { return DNNChoice{Name: "resnet-18", InputRes: 224, Accuracy: 0.682} }

func mustPlan(t *testing.T, d DNNChoice, f Format, opt bool) Plan {
	t.Helper()
	plans, err := Generate([]DNNChoice{d}, []Format{f}, DefaultEnv(),
		GenerateOptions{OptimizePreproc: opt, PlaceOps: false})
	if err != nil {
		t.Fatal(err)
	}
	return plans[0]
}

func TestStageThroughputsPreprocBoundOnFullRes(t *testing.T) {
	// The paper's central claim: on the T4, ResNet-50 on full-resolution
	// JPEG is preprocessing-bound (~530 vs ~4500 im/s).
	env := DefaultEnv()
	p := mustPlan(t, rn50(), fullResJPEG(), true)
	pre, exec, err := StageThroughputs(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if pre >= exec {
		t.Fatalf("full-res should be preproc-bound: pre %v, exec %v", pre, exec)
	}
	if pre < 300 || pre > 700 {
		t.Fatalf("preproc throughput %v, want ~450-530", pre)
	}
	if exec < 4000 || exec > 5000 {
		t.Fatalf("exec throughput %v, want ~4513", exec)
	}
}

func TestThumbnailsLiftPreprocThroughput(t *testing.T) {
	env := DefaultEnv()
	full := mustPlan(t, rn50(), fullResJPEG(), true)
	thumb := mustPlan(t, rn50(), thumbPNG(), true)
	preFull, _, err := StageThroughputs(full, env)
	if err != nil {
		t.Fatal(err)
	}
	preThumb, _, err := StageThroughputs(thumb, env)
	if err != nil {
		t.Fatal(err)
	}
	// §5.2: 527 vs 1995 im/s — roughly 3-4x.
	ratio := preThumb / preFull
	if ratio < 2 || ratio > 6 {
		t.Fatalf("thumbnail speedup = %v, want ~3.8", ratio)
	}
}

func TestEstimatorRelationships(t *testing.T) {
	env := DefaultEnv()
	p := mustPlan(t, rn50(), fullResJPEG(), true)
	smol, err := EstimateSmol(p, env)
	if err != nil {
		t.Fatal(err)
	}
	blazeit, err := EstimateBlazeIt(p, env)
	if err != nil {
		t.Fatal(err)
	}
	tahoma, err := EstimateTahoma(p, env)
	if err != nil {
		t.Fatal(err)
	}
	// Tahoma (sum) <= Smol (min) <= BlazeIt (exec) for preproc-bound plans.
	if !(tahoma < smol && smol < blazeit) {
		t.Fatalf("ordering violated: tahoma %v smol %v blazeit %v", tahoma, smol, blazeit)
	}
}

// table3Config builds plans matching Table 3's three regimes.
func table3Plans(t *testing.T) map[string]Plan {
	t.Helper()
	return map[string]Plan{
		// Balanced: thumbnails + mid-size DNN.
		"balanced": mustPlan(t, DNNChoice{Name: "resnet-34", InputRes: 224}, Format{
			Name: "thumb-jpeg", Kind: hw.FormatJPEG, W: 215, H: 161, Quality: 75}, true),
		// Preprocessing-bound: full-res JPEG + fast DNN.
		"preproc-bound": mustPlan(t, rn18(), fullResJPEG(), true),
		// DNN-bound: cheap thumbnails + slow DNN at high input res.
		"dnn-bound": mustPlan(t, DNNChoice{Name: "resnet-50", InputRes: 288}, Format{
			Name: "thumb-jpeg-q50", Kind: hw.FormatJPEG, W: 215, H: 161, Quality: 50}, true),
	}
}

func TestTable3SmolEstimatorWins(t *testing.T) {
	// For each regime, Smol's estimate must be at least as accurate as
	// BlazeIt's and Tahoma's against the simulator's measured throughput.
	env := DefaultEnv()
	for name, p := range table3Plans(t) {
		res, err := Measure(p, env, 20000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		actual := res.Throughput
		smol, _ := EstimateSmol(p, env)
		blazeit, _ := EstimateBlazeIt(p, env)
		tahoma, _ := EstimateTahoma(p, env)
		errSmol := stats.RelErr(smol, actual)
		errBlazeIt := stats.RelErr(blazeit, actual)
		errTahoma := stats.RelErr(tahoma, actual)
		if errSmol > errBlazeIt+1e-9 && errSmol > errTahoma+1e-9 {
			t.Fatalf("%s: smol err %.1f%% worse than blazeit %.1f%% and tahoma %.1f%%",
				name, errSmol*100, errBlazeIt*100, errTahoma*100)
		}
		if errSmol > 0.25 {
			t.Fatalf("%s: smol err %.1f%% too large (actual %v, est %v)",
				name, errSmol*100, actual, smol)
		}
	}
}

func TestBlazeItEstimatorFailsWhenPreprocBound(t *testing.T) {
	// Table 3's headline: the exec-only estimator is off by ~800% on
	// preprocessing-bound configurations.
	env := DefaultEnv()
	p := table3Plans(t)["preproc-bound"]
	res, err := Measure(p, env, 20000)
	if err != nil {
		t.Fatal(err)
	}
	blazeit, _ := EstimateBlazeIt(p, env)
	if e := stats.RelErr(blazeit, res.Throughput); e < 2 {
		t.Fatalf("exec-only error = %.0f%%, expected severe overestimate (>200%%)", e*100)
	}
}

func TestPlacementHelpsPreprocBoundPlans(t *testing.T) {
	env := DefaultEnv()
	p := mustPlan(t, rn18(), fullResJPEG(), true)
	placed, err := PlacePreprocOps(p, env)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := EstimateSmol(p, env)
	after, _ := EstimateSmol(placed, env)
	if placed.AccelOps == 0 {
		t.Fatal("preproc-bound plan should move ops to the accelerator")
	}
	if after < before {
		t.Fatalf("placement made things worse: %v -> %v", before, after)
	}
}

func TestPlacementLeavesDNNBoundPlansAlone(t *testing.T) {
	// When the accelerator is the bottleneck (here: an inefficient
	// framework caps execution at ~243 im/s while thumbnails preprocess at
	// ~1900 im/s), moving preprocessing onto it can only hurt.
	env := DefaultEnv()
	keras, err := hw.Framework("Keras")
	if err != nil {
		t.Fatal(err)
	}
	env.Framework = keras
	p := mustPlan(t, rn50(), thumbPNG(), true)
	placed, err := PlacePreprocOps(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if placed.AccelOps != 0 {
		t.Fatalf("DNN-bound plan moved %d ops to the accelerator", placed.AccelOps)
	}
}

func TestGenerateCrossProduct(t *testing.T) {
	env := DefaultEnv()
	dnns := []DNNChoice{rn18(), rn50()}
	formats := []Format{fullResJPEG(), thumbPNG()}
	plans, err := Generate(dnns, formats, env, GenerateOptions{OptimizePreproc: true, PlaceOps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 4 {
		t.Fatalf("got %d plans, want 4", len(plans))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(nil, []Format{fullResJPEG()}, DefaultEnv(), GenerateOptions{}); err == nil {
		t.Fatal("empty DNN set should error")
	}
}

func TestParetoAndSelect(t *testing.T) {
	env := DefaultEnv()
	dnns := []DNNChoice{
		{Name: "resnet-18", InputRes: 224, Accuracy: 0.682},
		{Name: "resnet-34", InputRes: 224, Accuracy: 0.719},
		{Name: "resnet-50", InputRes: 224, Accuracy: 0.7434},
	}
	formats := []Format{fullResJPEG(), thumbPNG()}
	plans, err := Generate(dnns, formats, env, GenerateOptions{OptimizePreproc: true, PlaceOps: true})
	if err != nil {
		t.Fatal(err)
	}
	evals, err := Evaluate(plans, env)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFrontier(evals)
	if len(front) == 0 || len(front) > len(evals) {
		t.Fatalf("frontier size %d", len(front))
	}
	// Frontier is sorted by throughput and accuracy strictly decreases.
	for i := 1; i < len(front); i++ {
		if front[i].Throughput <= front[i-1].Throughput {
			t.Fatal("frontier not sorted by throughput")
		}
		if front[i].Accuracy >= front[i-1].Accuracy {
			t.Fatal("frontier accuracy should decrease as throughput rises")
		}
	}
	// Accuracy-constrained selection returns the fastest plan above the bar.
	sel, err := Select(evals, Constraint{MinAccuracy: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Accuracy < 0.7 {
		t.Fatalf("selected accuracy %v below constraint", sel.Accuracy)
	}
	for _, e := range evals {
		if e.Accuracy >= 0.7 && e.Throughput > sel.Throughput {
			t.Fatalf("missed a faster feasible plan: %v > %v", e.Throughput, sel.Throughput)
		}
	}
	// Infeasible constraints error.
	if _, err := Select(evals, Constraint{MinAccuracy: 0.99}); err == nil {
		t.Fatal("expected infeasible constraint error")
	}
}

func TestSelectThroughputConstrained(t *testing.T) {
	env := DefaultEnv()
	plans, err := Generate([]DNNChoice{rn18(), rn50()}, []Format{thumbPNG()}, env,
		GenerateOptions{OptimizePreproc: true})
	if err != nil {
		t.Fatal(err)
	}
	evals, err := Evaluate(plans, env)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(evals, Constraint{MinThroughput: 100})
	if err != nil {
		t.Fatal(err)
	}
	// With only a throughput floor, Select maximizes accuracy.
	for _, e := range evals {
		if e.Throughput >= 100 && e.Accuracy > sel.Accuracy {
			t.Fatal("missed a more accurate feasible plan")
		}
	}
}

func TestCascadeThroughput(t *testing.T) {
	env := DefaultEnv()
	spec := mustPlan(t, DNNChoice{Name: "tiny-specialized", InputRes: 224}, fullResJPEG(), true)
	tgt := mustPlan(t, rn50(), fullResJPEG(), true)
	c := Cascade{Specialized: spec, Target: tgt, Alpha: 0.2, Accuracy: 0.7}
	exec, err := CascadeExecThroughput(c, env)
	if err != nil {
		t.Fatal(err)
	}
	_, specExec, _ := StageThroughputs(spec, env)
	_, tgtExec, _ := StageThroughputs(tgt, env)
	if exec >= specExec || exec <= tgtExec {
		t.Fatalf("cascade exec %v should sit between target %v and specialized %v",
			exec, tgtExec, specExec)
	}
	// Alpha=0 degenerates to the specialized model's throughput.
	c0 := c
	c0.Alpha = 0
	exec0, _ := CascadeExecThroughput(c0, env)
	if math.Abs(exec0-specExec)/specExec > 1e-9 {
		t.Fatalf("alpha=0: %v vs %v", exec0, specExec)
	}
	// End-to-end, the cascade on full-res JPEG is preprocessing-bound.
	e2e, err := CascadeThroughputSmol(c, env)
	if err != nil {
		t.Fatal(err)
	}
	pre, _, _ := StageThroughputs(spec, env)
	if e2e > pre {
		t.Fatalf("cascade e2e %v cannot exceed preprocessing %v", e2e, pre)
	}
}

func TestROIDecodingImprovesThroughput(t *testing.T) {
	env := DefaultEnv()
	full := fullResJPEG()
	roi := full
	roi.Name = "full-jpeg-roi"
	// Central 224x224 of a 500x375 after resize-256: ROI covers roughly
	// (224/256)^2 of the image area.
	roi.ROIFraction = 0.66
	pFull := mustPlan(t, rn50(), full, true)
	pROI := mustPlan(t, rn50(), roi, true)
	tputFull, _ := EstimateSmol(pFull, env)
	tputROI, _ := EstimateSmol(pROI, env)
	if tputROI <= tputFull {
		t.Fatalf("ROI decoding should raise throughput: %v vs %v", tputROI, tputFull)
	}
}

func TestEstimateLatencyBoundsSimulation(t *testing.T) {
	// The worst-case latency estimate should upper-bound the simulator's
	// mean latency and land within a small factor of its max, in both the
	// preprocessing-bound and execution-bound regimes.
	env := DefaultEnv()
	for _, tc := range []struct {
		name string
		plan Plan
	}{
		{"preproc-bound", mustPlan(t, rn18(), fullResJPEG(), true)},
		{"exec-bound", mustPlan(t, DNNChoice{Name: "resnet-50", InputRes: 448}, thumbPNG(), true)},
	} {
		est, err := EstimateLatencyUS(tc.plan, env)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Measure(tc.plan, env, 8000)
		if err != nil {
			t.Fatal(err)
		}
		if est < res.MeanLatencyUS {
			t.Fatalf("%s: estimate %v below simulated mean %v", tc.name, est, res.MeanLatencyUS)
		}
		if est > 3*res.MaxLatencyUS {
			t.Fatalf("%s: estimate %v more than 3x simulated max %v", tc.name, est, res.MaxLatencyUS)
		}
	}
}

func TestEstimateLatencyGrowsWithBatch(t *testing.T) {
	env := DefaultEnv()
	p := mustPlan(t, rn50(), fullResJPEG(), true)
	var prev float64
	for _, b := range []int{8, 64, 256} {
		e := env
		e.BatchSize = b
		lat, err := EstimateLatencyUS(p, e)
		if err != nil {
			t.Fatal(err)
		}
		if lat <= prev {
			t.Fatalf("batch %d: latency %v not above previous %v", b, lat, prev)
		}
		prev = lat
	}
}

func TestBatchForLatency(t *testing.T) {
	env := DefaultEnv()
	p := mustPlan(t, rn50(), thumbPNG(), true)
	// A loose target keeps the full batch.
	loose, _, err := BatchForLatency(p, env, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	if loose != env.BatchSize {
		t.Fatalf("loose target should keep batch %d, got %d", env.BatchSize, loose)
	}
	// A tight target shrinks the batch, costing throughput.
	lat64, err := EstimateLatencyUS(p, env)
	if err != nil {
		t.Fatal(err)
	}
	tight, tputTight, err := BatchForLatency(p, env, lat64/4)
	if err != nil {
		t.Fatal(err)
	}
	if tight >= env.BatchSize {
		t.Fatalf("tight target should shrink the batch, got %d", tight)
	}
	tputFull, err := EstimateSmol(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if tputTight > tputFull*1.001 {
		t.Fatalf("smaller batch cannot raise throughput: %v vs %v", tputTight, tputFull)
	}
	// An impossible target errors.
	if _, _, err := BatchForLatency(p, env, 1); err == nil {
		t.Fatal("impossible latency target should error")
	}
	if _, _, err := BatchForLatency(p, env, 0); err == nil {
		t.Fatal("non-positive latency target should error")
	}
}

func TestSelectMaxLatency(t *testing.T) {
	env := DefaultEnv()
	plans, err := Generate(
		[]DNNChoice{rn18(), rn50()},
		[]Format{fullResJPEG(), thumbPNG()},
		env, GenerateOptions{OptimizePreproc: true})
	if err != nil {
		t.Fatal(err)
	}
	evals, err := Evaluate(plans, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evals {
		if e.LatencyUS <= 0 {
			t.Fatalf("plan %s missing latency estimate", e.Plan)
		}
	}
	// Find a latency cap that excludes at least one plan but keeps another.
	var minLat, maxLat float64 = math.Inf(1), 0
	for _, e := range evals {
		minLat = math.Min(minLat, e.LatencyUS)
		maxLat = math.Max(maxLat, e.LatencyUS)
	}
	if minLat == maxLat {
		t.Skip("all plans share one latency; cannot exercise the cap")
	}
	cap := (minLat + maxLat) / 2
	got, err := Select(evals, Constraint{MaxLatencyUS: cap})
	if err != nil {
		t.Fatal(err)
	}
	if got.LatencyUS > cap {
		t.Fatalf("selected plan latency %v violates cap %v", got.LatencyUS, cap)
	}
	// An unsatisfiable cap errors.
	if _, err := Select(evals, Constraint{MaxLatencyUS: minLat / 1e6}); err == nil {
		t.Fatal("unsatisfiable latency cap should error")
	}
}

// TestGenerateSelectsDecodeScale: with preprocessing optimization on, a
// large JPEG format should come back with a sub-full decode scale chosen
// jointly with the preproc chain, and its modeled decode cost must drop
// accordingly.
func TestGenerateSelectsDecodeScale(t *testing.T) {
	env := DefaultEnv()
	dnn := DNNChoice{Name: "resnet-50", InputRes: 224, Accuracy: 0.76}
	hd := Format{Name: "hd-jpeg", Kind: hw.FormatJPEG, W: 1920, H: 1080, Quality: 90}
	opt, err := Generate([]DNNChoice{dnn}, []Format{hd}, env, GenerateOptions{OptimizePreproc: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := opt[0].Preproc.DecodeScale(); got != 4 {
		t.Fatalf("optimized plan decode scale 1/%d (%q), want 1/4", got, opt[0].Preproc.Name)
	}
	if opt[0].Format.DecodeScale != 4 {
		t.Fatalf("format not annotated with the chosen scale: %+v", opt[0].Format)
	}
	naive, err := Generate([]DNNChoice{dnn}, []Format{hd}, env, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	co, err := Costs(opt[0], env)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := Costs(naive[0], env)
	if err != nil {
		t.Fatal(err)
	}
	if co.DecodeUS >= cn.DecodeUS/2 {
		t.Fatalf("scaled decode %v us should be well under half of full %v us", co.DecodeUS, cn.DecodeUS)
	}
	// The decode op must not be double counted as a CPU post-op: the
	// optimized post cost cannot exceed the naive one.
	if co.CPUPostUS > cn.CPUPostUS {
		t.Fatalf("optimized CPU post %v us exceeds naive %v us (decode op double-counted?)", co.CPUPostUS, cn.CPUPostUS)
	}
	// Thumbnails near the input resolution keep full decode.
	thumb := Format{Name: "thumb-jpeg", Kind: hw.FormatJPEG, W: 300, H: 260, Quality: 75}
	small, err := Generate([]DNNChoice{{Name: "resnet-18", InputRes: 224, Accuracy: 0.7}},
		[]Format{thumb}, env, GenerateOptions{OptimizePreproc: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := small[0].Preproc.DecodeScale(); got != 1 {
		t.Fatalf("thumbnail chose decode scale 1/%d", got)
	}
}

// TestCalibratedCosts: a live calibration must override the static DNN
// profile (including names the static tables do not know) and scale the
// CPU-side stage costs, changing the plan ranking accordingly.
func TestCalibratedCosts(t *testing.T) {
	env := DefaultEnv()
	dnns := []DNNChoice{{Name: "live-model@32", InputRes: 32, Accuracy: 0.9}}
	formats := []Format{{Name: "jpeg", Kind: hw.FormatJPEG, W: 500, H: 375, Quality: 90}}
	// Without calibration the unknown DNN name must fail loudly.
	plans, err := Generate(dnns, formats, env, GenerateOptions{OptimizePreproc: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateSmol(plans[0], env); err == nil {
		t.Fatal("unknown DNN without calibration should error")
	}
	env.Calibration = &hw.Calibration{
		ExecUS:       map[string]float64{"live-model@32": 250},
		PreprocScale: 2,
	}
	c, err := Costs(plans[0], env)
	if err != nil {
		t.Fatal(err)
	}
	if c.ExecUS != 250 {
		t.Fatalf("calibrated ExecUS %v, want 250", c.ExecUS)
	}
	uncal := env
	uncal.Calibration = &hw.Calibration{ExecUS: env.Calibration.ExecUS}
	cu, err := Costs(plans[0], uncal)
	if err != nil {
		t.Fatal(err)
	}
	if c.DecodeUS != 2*cu.DecodeUS || c.CPUPostUS != 2*cu.CPUPostUS {
		t.Fatalf("CPU scale not applied: %+v vs %+v", c, cu)
	}
	if _, err := EstimateSmol(plans[0], env); err != nil {
		t.Fatalf("calibrated estimate: %v", err)
	}
}

// TestVideoFormatCosts: the video-specific cost dimensions — stride
// amortization, GOP mix, deblock discount, and the dedicated video
// calibration scale — must all reach the stage costs.
func TestVideoFormatCosts(t *testing.T) {
	env := DefaultEnv()
	env.Calibration = &hw.Calibration{ExecUS: map[string]float64{"vid-model@64": 500}}
	spec := preproc.Spec{
		InW: 640, InH: 360, ResizeShort: 64, CropW: 64, CropH: 64,
		Std: [3]float32{1, 1, 1},
	}
	pplan, err := preproc.Optimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	mkPlan := func(f Format) Plan {
		return Plan{
			DNN:    DNNChoice{Name: "vid-model@64", InputRes: 64, Accuracy: 0.9},
			Format: f, Preproc: pplan, PreprocSpec: spec,
		}
	}
	base := Format{Name: "svid", Kind: hw.FormatVideoH264, W: 640, H: 360, GOP: 30}
	c1, err := Costs(mkPlan(base), env)
	if err != nil {
		t.Fatal(err)
	}
	// Stride 10: one sample costs ten decoded frames.
	strided := base
	strided.FramesPerSample = 10
	c10, err := Costs(mkPlan(strided), env)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c10.DecodeUS, 10*c1.DecodeUS; math.Abs(got-want) > 1e-9 {
		t.Fatalf("stride-10 decode cost %v, want %v", got, want)
	}
	if c10.CPUPostUS != c1.CPUPostUS {
		t.Fatal("stride must not change per-sample preprocessing cost")
	}
	// Deblock off discounts decode only.
	nd := base
	nd.NoDeblock = true
	cnd, err := Costs(mkPlan(nd), env)
	if err != nil {
		t.Fatal(err)
	}
	if cnd.DecodeUS >= c1.DecodeUS {
		t.Fatal("NoDeblock did not discount decode cost")
	}
	// The video calibration scale applies to video decode but not to the
	// post-decode CPU ops (which keep the generic scale).
	calEnv := env
	calEnv.Calibration = &hw.Calibration{
		ExecUS:     env.Calibration.ExecUS,
		VideoScale: 5,
	}
	cv, err := Costs(mkPlan(base), calEnv)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cv.DecodeUS, 5*c1.DecodeUS; math.Abs(got-want) > 1e-9 {
		t.Fatalf("video-calibrated decode cost %v, want %v", got, want)
	}
	if cv.CPUPostUS != c1.CPUPostUS {
		t.Fatal("video scale leaked into post-decode CPU cost")
	}
	// An indexed (GOP-seek) stream caps the strided decode cost at one GOP
	// prefix instead of the whole stride span.
	wide := strided
	wide.FramesPerSample = 100
	cwide, err := Costs(mkPlan(wide), env)
	if err != nil {
		t.Fatal(err)
	}
	seek := wide
	seek.GOPSeek = true
	cseek, err := Costs(mkPlan(seek), env)
	if err != nil {
		t.Fatal(err)
	}
	if cseek.DecodeUS >= cwide.DecodeUS/5 {
		t.Fatalf("GOP-seek stride-100 decode cost %v not well below sequential stride-100 cost %v",
			cseek.DecodeUS, cwide.DecodeUS)
	}
}
