package costmodel

import (
	"fmt"
	"sort"

	"smol/internal/codec/jpeg"
	"smol/internal/hw"
	"smol/internal/preproc"
	"smol/internal/stats"
)

// imagenetMean and imagenetStd are the standard normalization constants.
var (
	imagenetMean = [3]float32{0.485, 0.456, 0.406}
	imagenetStd  = [3]float32{0.229, 0.224, 0.225}
)

// GenerateOptions controls plan generation.
type GenerateOptions struct {
	// OptimizePreproc enables the preprocessing DAG optimizer; when false
	// the naive framework-default plan is used (for lesion studies).
	OptimizePreproc bool
	// PlaceOps enables CPU/accelerator operator placement.
	PlaceOps bool
}

// Generate builds the D x F plan space: every DNN choice against every
// format, each with an optimized preprocessing pipeline and placement.
func Generate(dnns []DNNChoice, formats []Format, env Env, opts GenerateOptions) ([]Plan, error) {
	if len(dnns) == 0 || len(formats) == 0 {
		return nil, fmt.Errorf("costmodel: need at least one DNN and format")
	}
	var plans []Plan
	for _, d := range dnns {
		for _, f := range formats {
			spec := preproc.Spec{
				InW: f.W, InH: f.H,
				// Short-edge target scales with the DNN input resolution in
				// the standard 256:224 ratio.
				ResizeShort: d.InputRes * 256 / 224,
				CropW:       d.InputRes, CropH: d.InputRes,
				Mean: imagenetMean, Std: imagenetStd,
			}
			if opts.OptimizePreproc && f.Kind == hw.FormatJPEG {
				// JPEG offers DCT-domain reduced decoding, so decode
				// resolution joins the plan search (§5 jointly with §6.2).
				spec.DecodeScales = jpeg.SupportedScales()
			}
			// Small thumbnails may be below the resize target; upscale
			// specs are still valid as long as crop <= short target.
			var pplan preproc.Plan
			var err error
			if opts.OptimizePreproc {
				pplan, err = preproc.Optimize(spec)
				if err != nil {
					return nil, fmt.Errorf("costmodel: %s on %s: %w", d.Name, f.Name, err)
				}
			} else {
				pplan = preproc.NaivePlan(spec)
			}
			p := Plan{DNN: d, Format: f, Preproc: pplan, PreprocSpec: spec}
			if sc := pplan.DecodeScale(); sc > 1 {
				// Record the chosen scale on the format so the hw decode
				// model prices the reduced reconstruction.
				p.Format.DecodeScale = sc
			}
			if opts.PlaceOps {
				p, err = PlacePreprocOps(p, env)
				if err != nil {
					return nil, err
				}
			}
			plans = append(plans, p)
		}
	}
	return plans, nil
}

// Evaluated pairs a plan with its estimated accuracy, throughput, and
// worst-case per-image latency.
type Evaluated struct {
	Plan       Plan
	Accuracy   float64
	Throughput float64
	// LatencyUS is the EstimateLatencyUS prediction for the plan.
	LatencyUS float64
}

// Evaluate estimates every plan with the Smol cost model.
func Evaluate(plans []Plan, env Env) ([]Evaluated, error) {
	out := make([]Evaluated, 0, len(plans))
	for _, p := range plans {
		tput, err := EstimateSmol(p, env)
		if err != nil {
			return nil, err
		}
		lat, err := EstimateLatencyUS(p, env)
		if err != nil {
			return nil, err
		}
		out = append(out, Evaluated{Plan: p, Accuracy: p.DNN.Accuracy, Throughput: tput, LatencyUS: lat})
	}
	return out, nil
}

// ParetoFrontier filters evaluated plans to the accuracy/throughput Pareto
// frontier, sorted by ascending throughput.
func ParetoFrontier(evals []Evaluated) []Evaluated {
	pts := make([]stats.Point2, len(evals))
	for i, e := range evals {
		pts[i] = stats.Point2{X: e.Throughput, Y: e.Accuracy, Tag: i}
	}
	front := stats.ParetoFrontier(pts)
	out := make([]Evaluated, len(front))
	for i, p := range front {
		out[i] = evals[p.Tag]
	}
	return out
}

// Constraint restricts plan selection (§3.1). Zero values mean
// unconstrained.
type Constraint struct {
	// MinAccuracy requires at least this accuracy.
	MinAccuracy float64
	// MinThroughput requires at least this throughput (im/s).
	MinThroughput float64
	// MaxLatencyUS caps the worst-case per-image latency (§3.1's
	// latency-constrained deployment). Zero means unconstrained.
	MaxLatencyUS float64
}

// Select returns the best plan under the constraint: the highest-throughput
// plan meeting MinAccuracy, or the highest-accuracy plan meeting
// MinThroughput, or the highest-throughput plan overall when unconstrained.
func Select(evals []Evaluated, c Constraint) (Evaluated, error) {
	feasible := make([]Evaluated, 0, len(evals))
	for _, e := range evals {
		if e.Accuracy < c.MinAccuracy || e.Throughput < c.MinThroughput {
			continue
		}
		if c.MaxLatencyUS > 0 && e.LatencyUS > c.MaxLatencyUS {
			continue
		}
		feasible = append(feasible, e)
	}
	if len(feasible) == 0 {
		return Evaluated{}, fmt.Errorf("costmodel: no plan satisfies constraint %+v", c)
	}
	// With an accuracy floor, maximize throughput; with only a throughput
	// floor, maximize accuracy.
	sort.Slice(feasible, func(i, j int) bool {
		if c.MinThroughput > 0 && c.MinAccuracy == 0 {
			if feasible[i].Accuracy != feasible[j].Accuracy {
				return feasible[i].Accuracy > feasible[j].Accuracy
			}
			return feasible[i].Throughput > feasible[j].Throughput
		}
		if feasible[i].Throughput != feasible[j].Throughput {
			return feasible[i].Throughput > feasible[j].Throughput
		}
		return feasible[i].Accuracy > feasible[j].Accuracy
	})
	return feasible[0], nil
}

// Cascade models a Tahoma-style two-stage cascade: a specialized NN filters
// inputs, passing a fraction alpha through to the target DNN.
type Cascade struct {
	Specialized Plan
	Target      Plan
	// Alpha is the pass-through rate in [0, 1].
	Alpha float64
	// Accuracy is the cascade's end-to-end estimated accuracy.
	Accuracy float64
}

// CascadeExecThroughput composes the accelerator-side throughput of the
// cascade: every image runs the specialized NN; alpha of them also run the
// target (Eq. 2's summation with k=2).
func CascadeExecThroughput(c Cascade, env Env) (float64, error) {
	_, specExec, err := StageThroughputs(c.Specialized, env)
	if err != nil {
		return 0, err
	}
	_, tgtExec, err := StageThroughputs(c.Target, env)
	if err != nil {
		return 0, err
	}
	denom := 1/specExec + c.Alpha/tgtExec
	return 1 / denom, nil
}

// CascadeThroughputSmol estimates cascade end-to-end throughput with the
// preprocessing-aware min model. Preprocessing happens once per image
// (decode feeds the specialized NN; the paper notes cascades pay extra
// coalescing/copy costs, modeled as a 10% preprocessing surcharge on
// passed-through images).
func CascadeThroughputSmol(c Cascade, env Env) (float64, error) {
	pre, _, err := StageThroughputs(c.Specialized, env)
	if err != nil {
		return 0, err
	}
	exec, err := CascadeExecThroughput(c, env)
	if err != nil {
		return 0, err
	}
	pre = pre / (1 + 0.1*c.Alpha)
	if pre < exec {
		return pre, nil
	}
	return exec, nil
}
