package nn

import "smol/internal/tensor"

// SGD is stochastic gradient descent with momentum and weight decay.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD constructs an optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{
		LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*tensor.Tensor]*tensor.Tensor),
	}
}

// Step applies one update to every parameter of the model using the
// accumulated gradients, then leaves the gradients untouched (call
// Model.ZeroGrads before the next accumulation).
func (s *SGD) Step(m *Model) {
	params := m.Params()
	grads := m.Grads()
	for i, p := range params {
		g := grads[i]
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Shape...)
			s.velocity[p] = v
		}
		for j := range p.Data {
			dj := g.Data[j] + s.WeightDecay*p.Data[j]
			v.Data[j] = s.Momentum*v.Data[j] - s.LR*dj
			p.Data[j] += v.Data[j]
		}
	}
}
