// Package nn is a small but real convolutional neural network library:
// forward and backward passes for conv / batch-norm / ReLU / pooling /
// linear layers, SGD with momentum, micro-ResNet builders, and gob model
// serialization.
//
// It exists so the paper's learning-dependent results are reproduced by
// actual learning: accuracy versus network depth (Table 2), accuracy versus
// input resolution, and the low-resolution-aware augmented training
// procedure of §5.3 are all measured on models trained by this package, not
// looked up from tables.
package nn

import "smol/internal/tensor"

// Layer is one differentiable stage of a network. Forward must be called
// before Backward in each step; layers cache what they need in between.
type Layer interface {
	// Forward computes the layer output for a batch. train selects
	// training-mode behaviour (e.g. batch statistics in BatchNorm).
	//
	// The returned tensor may be a buffer owned by the layer that the
	// next Forward call overwrites (ReLU and Residual recycle theirs);
	// callers that need the output beyond the following Forward must
	// Clone it.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients internally.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameter tensors, if any.
	Params() []*tensor.Tensor
	// Grads returns the gradient tensors, aligned with Params.
	Grads() []*tensor.Tensor
}

// zeroGrads zeroes every gradient of a layer set.
func zeroGrads(layers []Layer) {
	for _, l := range layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}
