package nn

import (
	"fmt"
	"math"

	"smol/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
	out  *tensor.Tensor // reused output buffer, valid until the next Forward
}

// Forward clamps negatives to zero. The returned tensor is a buffer owned
// by the layer and is overwritten by the next Forward call.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if r.out == nil || cap(r.out.Data) < len(x.Data) {
		r.out = tensor.New(x.Shape...)
	} else {
		r.out.Data = r.out.Data[:len(x.Data)]
		r.out.Shape = append(r.out.Shape[:0], x.Shape...)
	}
	out := r.out
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v < 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward gates gradients by the forward activation mask.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads returns nil: ReLU has no parameters.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// BatchNorm2D normalizes each channel over the batch and spatial dims.
type BatchNorm2D struct {
	C       int
	Gamma   *tensor.Tensor
	Beta    *tensor.Tensor
	RunMean *tensor.Tensor
	RunVar  *tensor.Tensor

	Momentum float32
	Eps      float32

	gradGamma *tensor.Tensor
	gradBeta  *tensor.Tensor

	// caches for backward
	input   *tensor.Tensor
	normed  *tensor.Tensor
	mean    []float32
	invStd  []float32
	inTrain bool
}

// NewBatchNorm2D creates a batch-norm layer for c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:         c,
		Gamma:     tensor.New(c),
		Beta:      tensor.New(c),
		RunMean:   tensor.New(c),
		RunVar:    tensor.New(c),
		Momentum:  0.1,
		Eps:       1e-5,
		gradGamma: tensor.New(c),
		gradBeta:  tensor.New(c),
		mean:      make([]float32, c),
		invStd:    make([]float32, c),
	}
	for i := 0; i < c; i++ {
		bn.Gamma.Data[i] = 1
		bn.RunVar.Data[i] = 1
	}
	return bn
}

// Forward normalizes x (N,C,H,W) per channel.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D input shape %v, want (N,%d,H,W)", x.Shape, bn.C))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	spatial := h * w
	count := float32(n * spatial)
	out := tensor.New(x.Shape...)
	bn.input = x
	bn.inTrain = train
	if train {
		bn.normed = tensor.New(x.Shape...)
	}
	for c := 0; c < bn.C; c++ {
		var mean, variance float32
		if train {
			var s float64
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * spatial
				for j := 0; j < spatial; j++ {
					s += float64(x.Data[base+j])
				}
			}
			mean = float32(s / float64(count))
			var sv float64
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * spatial
				for j := 0; j < spatial; j++ {
					d := x.Data[base+j] - mean
					sv += float64(d) * float64(d)
				}
			}
			variance = float32(sv / float64(count))
			bn.RunMean.Data[c] = (1-bn.Momentum)*bn.RunMean.Data[c] + bn.Momentum*mean
			bn.RunVar.Data[c] = (1-bn.Momentum)*bn.RunVar.Data[c] + bn.Momentum*variance
		} else {
			mean = bn.RunMean.Data[c]
			variance = bn.RunVar.Data[c]
		}
		invStd := float32(1 / math.Sqrt(float64(variance)+float64(bn.Eps)))
		bn.mean[c] = mean
		bn.invStd[c] = invStd
		g, b := bn.Gamma.Data[c], bn.Beta.Data[c]
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * spatial
			for j := 0; j < spatial; j++ {
				xn := (x.Data[base+j] - mean) * invStd
				if train {
					bn.normed.Data[base+j] = xn
				}
				out.Data[base+j] = g*xn + b
			}
		}
	}
	return out
}

// Backward implements the full batch-norm gradient (training mode).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := bn.input
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	spatial := h * w
	count := float32(n * spatial)
	out := tensor.New(x.Shape...)
	for c := 0; c < bn.C; c++ {
		g := bn.Gamma.Data[c]
		invStd := bn.invStd[c]
		var sumDy, sumDyXn float64
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * spatial
			for j := 0; j < spatial; j++ {
				dy := grad.Data[base+j]
				sumDy += float64(dy)
				if bn.inTrain {
					sumDyXn += float64(dy) * float64(bn.normed.Data[base+j])
				}
			}
		}
		bn.gradBeta.Data[c] += float32(sumDy)
		bn.gradGamma.Data[c] += float32(sumDyXn)
		if !bn.inTrain {
			// Inference-mode backward (rarely used): simple affine gradient.
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * spatial
				for j := 0; j < spatial; j++ {
					out.Data[base+j] = grad.Data[base+j] * g * invStd
				}
			}
			continue
		}
		mDy := float32(sumDy) / count
		mDyXn := float32(sumDyXn) / count
		for i := 0; i < n; i++ {
			base := (i*bn.C + c) * spatial
			for j := 0; j < spatial; j++ {
				xn := bn.normed.Data[base+j]
				out.Data[base+j] = g * invStd * (grad.Data[base+j] - mDy - xn*mDyXn)
			}
		}
	}
	return out
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*tensor.Tensor { return []*tensor.Tensor{bn.Gamma, bn.Beta} }

// Grads returns the gradients aligned with Params.
func (bn *BatchNorm2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{bn.gradGamma, bn.gradBeta} }

// MaxPool2 is 2x2 max pooling with stride 2.
type MaxPool2 struct {
	argmax  []int
	inShape []int
}

// Forward pools x (N,C,H,W) down by 2x.
func (p *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := h/2, w/2
	out := tensor.New(n, c, outH, outW)
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	p.inShape = x.Shape
	oi := 0
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			base := (i*c + ci) * h * w
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					bestIdx := base + (2*oy)*w + 2*ox
					best := x.Data[bestIdx]
					for _, d := range [3][2]int{{0, 1}, {1, 0}, {1, 1}} {
						idx := base + (2*oy+d[0])*w + 2*ox + d[1]
						if x.Data[idx] > best {
							best = x.Data[idx]
							bestIdx = idx
						}
					}
					out.Data[oi] = best
					p.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes gradients to the argmax positions.
func (p *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(p.inShape...)
	for i, v := range grad.Data {
		out.Data[p.argmax[i]] += v
	}
	return out
}

// Params returns nil: pooling has no parameters.
func (p *MaxPool2) Params() []*tensor.Tensor { return nil }

// Grads returns nil: pooling has no parameters.
func (p *MaxPool2) Grads() []*tensor.Tensor { return nil }

// GlobalAvgPool averages each channel's spatial map to a single value,
// producing (N, C).
type GlobalAvgPool struct {
	inShape []int
}

// Forward averages over H and W.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	p.inShape = x.Shape
	out := tensor.New(n, c)
	spatial := h * w
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			base := (i*c + ci) * spatial
			var s float32
			for j := 0; j < spatial; j++ {
				s += x.Data[base+j]
			}
			out.Data[i*c+ci] = s / float32(spatial)
		}
	}
	return out
}

// Backward spreads gradients uniformly over the pooled region.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	out := tensor.New(p.inShape...)
	spatial := h * w
	inv := 1 / float32(spatial)
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			g := grad.Data[i*c+ci] * inv
			base := (i*c + ci) * spatial
			for j := 0; j < spatial; j++ {
				out.Data[base+j] = g
			}
		}
	}
	return out
}

// Params returns nil: pooling has no parameters.
func (p *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads returns nil: pooling has no parameters.
func (p *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// Linear is a fully connected layer for (N, In) inputs.
type Linear struct {
	In, Out int
	W       *tensor.Tensor // (Out, In)
	B       *tensor.Tensor // (Out)

	gradW *tensor.Tensor
	gradB *tensor.Tensor
	input *tensor.Tensor
}

// NewLinear constructs a linear layer with He-initialized weights.
func NewLinear(rng randSource, in, out int) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:     tensor.New(out, in),
		B:     tensor.New(out),
		gradW: tensor.New(out, in),
		gradB: tensor.New(out),
	}
	std := float32(math.Sqrt(2.0 / float64(in)))
	for i := range l.W.Data {
		l.W.Data[i] = float32(rng.NormFloat64()) * std
	}
	return l
}

// Forward computes x @ W^T + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: Linear input shape %v, want (N,%d)", x.Shape, l.In))
	}
	l.input = x
	n := x.Shape[0]
	out := tensor.New(n, l.Out)
	tensor.MatMulTransB(x, l.W, out)
	for i := 0; i < n; i++ {
		for j := 0; j < l.Out; j++ {
			out.Data[i*l.Out+j] += l.B.Data[j]
		}
	}
	return out
}

// Backward accumulates dW = g^T @ x, dB = sum(g), returns g @ W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	gw := tensor.New(l.Out, l.In)
	tensor.MatMulTransA(grad, l.input, gw)
	tensor.AXPY(1, gw, l.gradW)
	for i := 0; i < n; i++ {
		for j := 0; j < l.Out; j++ {
			l.gradB.Data[j] += grad.Data[i*l.Out+j]
		}
	}
	out := tensor.New(n, l.In)
	tensor.MatMulInto(grad, l.W, out)
	return out
}

// Params returns the weight and bias tensors.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// Grads returns the gradients aligned with Params.
func (l *Linear) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.gradW, l.gradB} }
