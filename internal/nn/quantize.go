package nn

import (
	"fmt"
	"sync"

	"smol/internal/tensor"
)

// Quantized inference tier. Quantize lowers a compiled InferencePlan into
// a QuantizedPlan that runs every convolution as int8 im2col + GEMMInt8
// with exact int32 accumulation and a fused saturating requantize epilogue.
// Weights use symmetric per-output-channel scales (computed deterministically
// from the folded f32 weights); activations use symmetric per-tensor scales
// measured by streaming representative inputs — the zoo's held-out split —
// through the f32 plan (Calibrate). Global average pooling dequantizes back
// to f32 and the terminal Linear stays full precision, so the tiny logits
// head costs nothing in accuracy.
//
// Because accumulation is integer-exact, a QuantizedPlan is deterministic
// across worker counts and kernel implementations; drift versus the f32
// plan comes only from the quantization itself and is bounded by the tests
// and measured per zoo entry.

// QuantCalibration carries the measured activation ranges of one compiled
// plan, lowered to symmetric int8 scales. It is the only state beyond the
// f32 weights needed to rebuild a QuantizedPlan bit-identically, so zoo
// serialization persists exactly this.
type QuantCalibration struct {
	// InputScale quantizes the external input: q = round(x / InputScale).
	InputScale float32
	// ActScales holds one output scale per compiled plan op, in op order;
	// entries for non-conv ops are zero.
	ActScales []float32
}

// qplanOp is one step of the quantized graph, mirroring planOp. Conv ops
// carry int8-range weights widened to int16 plus the scale chain; avgpool
// dequantizes its int8 source into the f32 pool buffer; linear runs in f32.
type qplanOp struct {
	kind opKind

	inC, outC, k, stride, pad int
	// w is the quantized folded weight matrix (outC x inC*k*k), values in
	// [-127, 127] widened to int16 for the dual-MAC kernel.
	w []int16
	// rowScale dequantizes row oc's int32 accumulator: inScale * wScale[oc].
	rowScale []float32
	// bias is the folded f32 bias, applied after dequantization.
	bias []float32
	relu bool

	src, dst, add int

	// outScale requantizes this op's output register; addScale dequantizes
	// the residual register; srcScale dequantizes an avgpool source.
	outScale, addScale, srcScale float32

	// Linear weights stay f32 (opLinear).
	wf, biasf []float32
	in, out   int
}

// QuantizedPlan is a compiled int8 forward pass. Create one with Quantize;
// it is immutable and safe for concurrent use. Warm calls allocate nothing:
// all intermediate state lives in recycled byte-sized arenas.
type QuantizedPlan struct {
	inC     int
	classes int
	inScale float32
	ops     []qplanOp

	arenas sync.Pool // of *qArena
}

// qArena is the recycled per-call memory of a quantized forward: int8
// activation registers and im2col buffer (~4x smaller than the f32 arena),
// the int32 accumulator scratch, the quantized copy of the external input,
// and the small f32 tail (pooled features, logits).
type qArena struct {
	regs   [3][]int8
	col    []int8
	acc    []int32
	qin    []int8
	pool   []float32
	logits []float32
}

// Calibrate streams inputs through the f32 plan and returns int8 scales
// covering the observed activation ranges (max-abs over all inputs, per
// op). Use the zoo's held-out split, resized to the plan's resolution;
// inputs outside the calibrated range later saturate at +-127.
func (p *InferencePlan) Calibrate(inputs []*tensor.Tensor) (QuantCalibration, error) {
	if len(inputs) == 0 {
		return QuantCalibration{}, fmt.Errorf("nn: Calibrate: no calibration inputs")
	}
	maxIn := float32(0)
	maxAct := make([]float32, len(p.ops))
	stats := make([]float32, 1+len(p.ops))
	for _, x := range inputs {
		if len(x.Shape) != 4 || x.Shape[1] != p.inC {
			return QuantCalibration{}, fmt.Errorf("nn: Calibrate: input shape %v, want (N,%d,H,W)", x.Shape, p.inC)
		}
		for i := range stats {
			stats[i] = 0
		}
		ar := p.getArena(x.Shape[0], x.Shape[2], x.Shape[3])
		p.run(x, ar, stats)
		p.arenas.Put(ar)
		if stats[0] > maxIn {
			maxIn = stats[0]
		}
		for i := range maxAct {
			if stats[1+i] > maxAct[i] {
				maxAct[i] = stats[1+i]
			}
		}
	}
	cal := QuantCalibration{InputScale: maxIn / 127, ActScales: make([]float32, len(p.ops))}
	if !(cal.InputScale > 0) {
		cal.InputScale = 1 // all-zero calibration input: any scale maps 0 -> 0
	}
	for i := range cal.ActScales {
		cal.ActScales[i] = maxAct[i] / 127
	}
	return cal, nil
}

// Quantize lowers a compiled plan into its int8 twin using the given
// activation calibration. Weight scales are recomputed deterministically
// from the plan's folded f32 weights (symmetric per-output-channel max-abs
// over 127; all-zero channels get scale 1 so no division blows up), which
// is why persisting only QuantCalibration round-trips the plan exactly.
func Quantize(p *InferencePlan, cal QuantCalibration) (*QuantizedPlan, error) {
	if len(cal.ActScales) != len(p.ops) {
		return nil, fmt.Errorf("nn: Quantize: calibration covers %d ops, plan has %d",
			len(cal.ActScales), len(p.ops))
	}
	if !(cal.InputScale > 0) {
		return nil, fmt.Errorf("nn: Quantize: non-positive input scale %v", cal.InputScale)
	}
	q := &QuantizedPlan{inC: p.inC, classes: p.classes, inScale: cal.InputScale}
	var regScale [3]float32
	for idx, op := range p.ops {
		switch op.kind {
		case opConv:
			inS := cal.InputScale
			if op.src >= 0 {
				inS = regScale[op.src]
			}
			if !(inS > 0) {
				return nil, fmt.Errorf("nn: Quantize: op %d reads register %d with no scale", idx, op.src)
			}
			outS := cal.ActScales[idx]
			if !(outS > 0) {
				outS = 1 // dead (all-zero) activation: any scale maps 0 -> 0
			}
			ckk := op.inC * op.k * op.k
			qop := qplanOp{kind: opConv, inC: op.inC, outC: op.outC, k: op.k,
				stride: op.stride, pad: op.pad,
				w:        make([]int16, len(op.w)),
				rowScale: make([]float32, op.outC),
				bias:     op.bias, relu: op.relu,
				src: op.src, dst: op.dst, add: op.add, outScale: outS}
			for oc := 0; oc < op.outC; oc++ {
				row := op.w[oc*ckk : (oc+1)*ckk]
				ws := maxAbs32(row) / 127
				if !(ws > 0) {
					ws = 1 // all-zero output channel: quantized row stays zero
				}
				quantizeWeightRow(row, 1/ws, qop.w[oc*ckk:(oc+1)*ckk])
				qop.rowScale[oc] = inS * ws
			}
			if op.add >= 0 {
				qop.addScale = regScale[op.add]
				if !(qop.addScale > 0) {
					return nil, fmt.Errorf("nn: Quantize: op %d adds register %d with no scale", idx, op.add)
				}
			}
			regScale[op.dst] = outS
			q.ops = append(q.ops, qop)
		case opAvgPool:
			srcS := regScale[op.src]
			if !(srcS > 0) {
				return nil, fmt.Errorf("nn: Quantize: avgpool reads register %d with no scale", op.src)
			}
			q.ops = append(q.ops, qplanOp{kind: opAvgPool, src: op.src, dst: op.dst,
				add: -1, srcScale: srcS})
		case opLinear:
			q.ops = append(q.ops, qplanOp{kind: opLinear, src: op.src, dst: -1, add: -1,
				wf: op.w, biasf: op.bias, in: op.in, out: op.out})
		}
	}
	return q, nil
}

// quantizeWeightRow quantizes one f32 weight row into int8-range int16
// values: dst[i] = clamp(round(row[i] * inv), -127, 127).
func quantizeWeightRow(row []float32, inv float32, dst []int16) {
	for i, v := range row {
		qv := v * inv
		if qv >= 0 {
			qv += 0.5
			if qv >= 127 {
				qv = 127
			}
		} else {
			qv -= 0.5
			if qv <= -127 {
				qv = -127
			}
		}
		dst[i] = int16(qv)
	}
}

// maxAbs32 returns the largest absolute value in s (0 for an empty slice).
func maxAbs32(s []float32) float32 {
	var m float32
	for _, v := range s {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// footprint walks the quantized op list for an (n, h, w) input and returns
// the arena element counts: largest int8 register, largest int8 column
// matrix, largest int32 accumulator, and the f32 pooled-feature width.
func (q *QuantizedPlan) footprint(n, h, w int) (regElems, colElems, accElems, poolElems int) {
	var geoms [3]regGeom
	for _, op := range q.ops {
		switch op.kind {
		case opConv:
			g := regGeom{c: q.inC, h: h, w: w}
			if op.src >= 0 {
				g = geoms[op.src]
			}
			outH := (g.h+2*op.pad-op.k)/op.stride + 1
			outW := (g.w+2*op.pad-op.k)/op.stride + 1
			if e := op.inC * op.k * op.k * n * outH * outW; e > colElems {
				colElems = e
			}
			if e := op.outC * n * outH * outW; e > regElems {
				regElems = e
			}
			if e := op.outC * n * outH * outW; e > accElems {
				accElems = e
			}
			geoms[op.dst] = regGeom{c: op.outC, h: outH, w: outW}
		case opAvgPool:
			g := geoms[op.src]
			if e := n * g.c; e > poolElems {
				poolElems = e
			}
			geoms[op.dst] = regGeom{c: g.c, h: 1, w: 1}
		case opLinear:
		}
	}
	return regElems, colElems, accElems, poolElems
}

// getArena fetches a recycled arena sized for an (n, h, w) batch. The
// caller owns the arena and must Put it back once the forward finishes.
//
//smol:owns
//smol:noalloc
func (q *QuantizedPlan) getArena(n, h, w int) *qArena {
	ar, _ := q.arenas.Get().(*qArena)
	if ar == nil {
		ar = &qArena{} //smol:coldpath first call on this P
	}
	regElems, colElems, accElems, poolElems := q.footprint(n, h, w)
	for i := range ar.regs {
		if cap(ar.regs[i]) < regElems {
			ar.regs[i] = make([]int8, regElems) //smol:coldpath grow on shape change
		}
	}
	if cap(ar.col) < colElems {
		ar.col = make([]int8, colElems) //smol:coldpath grow on shape change
	}
	if cap(ar.acc) < accElems {
		ar.acc = make([]int32, accElems) //smol:coldpath grow on shape change
	}
	if cap(ar.qin) < n*q.inC*h*w {
		ar.qin = make([]int8, n*q.inC*h*w) //smol:coldpath grow on shape change
	}
	if cap(ar.pool) < poolElems {
		ar.pool = make([]float32, poolElems) //smol:coldpath grow on shape change
	}
	if cap(ar.logits) < n*q.classes {
		ar.logits = make([]float32, n*q.classes) //smol:coldpath grow on shape change
	}
	return ar
}

// run executes the quantized plan for x (N, C, H, W), leaving logits in
// ar.logits[:N*classes]. The external input is quantized once into the
// arena; intermediate int8 activations use the same channel-major CNHW
// layout as the f32 plan.
//
//smol:noalloc
func (q *QuantizedPlan) run(x *tensor.Tensor, ar *qArena) {
	if len(x.Shape) != 4 || x.Shape[1] != q.inC {
		//smol:coldpath shape mismatch is a caller bug
		panic(fmt.Sprintf("nn: QuantizedPlan input shape %v, want (N,%d,H,W)", x.Shape, q.inC))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	tensor.QuantizeInt8(x.Data[:n*q.inC*h*w], ar.qin, 1/q.inScale)
	var geoms [3]regGeom
	for _, op := range q.ops {
		switch op.kind {
		case opConv:
			g := regGeom{c: q.inC, h: h, w: w}
			if op.src >= 0 {
				g = geoms[op.src]
			}
			outH := (g.h+2*op.pad-op.k)/op.stride + 1
			outW := (g.w+2*op.pad-op.k)/op.stride + 1
			total := n * outH * outW
			rows := op.inC * op.k * op.k
			col := ar.col[:rows*total]
			if op.src < 0 {
				// External input: NCHW strides.
				tensor.Im2ColBatchInt8(ar.qin, n, op.inC, g.h, g.w, op.inC*g.h*g.w, g.h*g.w,
					op.k, op.k, op.stride, op.pad, col)
			} else {
				// Arena register: CNHW strides.
				tensor.Im2ColBatchInt8(ar.regs[op.src], n, op.inC, g.h, g.w, g.h*g.w, n*g.h*g.w,
					op.k, op.k, op.stride, op.pad, col)
			}
			ep := tensor.EpilogueInt8{RowScale: op.rowScale, RowBias: op.bias,
				ReLU: op.relu, OutScale: op.outScale}
			if op.add >= 0 {
				ep.Add = ar.regs[op.add][:op.outC*total]
				ep.AddScale = op.addScale
			}
			tensor.GEMMInt8(op.outC, rows, total, op.w, col,
				ar.acc[:op.outC*total], ar.regs[op.dst][:op.outC*total], ep)
			geoms[op.dst] = regGeom{c: op.outC, h: outH, w: outW}
		case opAvgPool:
			g := geoms[op.src]
			spatial := g.h * g.w
			src := ar.regs[op.src]
			dst := ar.pool
			scale := op.srcScale / float32(spatial)
			for c := 0; c < g.c; c++ {
				for i := 0; i < n; i++ {
					plane := src[(c*n+i)*spatial : (c*n+i+1)*spatial]
					var s int32
					for _, v := range plane {
						s += int32(v)
					}
					dst[i*g.c+c] = float32(s) * scale
				}
			}
			geoms[op.dst] = regGeom{c: g.c, h: 1, w: 1}
		case opLinear:
			src := ar.pool[:n*op.in]
			logits := ar.logits[:n*op.out]
			for i := 0; i < n; i++ {
				xrow := src[i*op.in : (i+1)*op.in]
				for j := 0; j < op.out; j++ {
					wrow := op.wf[j*op.in : (j+1)*op.in]
					var s float32
					for pi, v := range xrow {
						s += v * wrow[pi]
					}
					logits[i*op.out+j] = s + op.biasf[j]
				}
			}
		}
	}
}

// Forward runs the quantized stack and returns the logits as a freshly
// allocated (N, classes) tensor. Safe for concurrent use.
func (q *QuantizedPlan) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	out := tensor.New(n, q.classes)
	ar := q.getArena(n, x.Shape[2], x.Shape[3])
	q.run(x, ar)
	copy(out.Data, ar.logits[:n*q.classes])
	q.arenas.Put(ar)
	return out
}

// Predict returns the argmax class per sample.
func (q *QuantizedPlan) Predict(x *tensor.Tensor) []int {
	preds := make([]int, x.Shape[0])
	q.PredictInto(x, preds)
	return preds
}

// PredictInto writes the argmax class per sample into preds (len N). A
// warm call allocates nothing.
//
//smol:noalloc
func (q *QuantizedPlan) PredictInto(x *tensor.Tensor, preds []int) {
	n := x.Shape[0]
	if len(preds) != n {
		//smol:coldpath length mismatch is a caller bug
		panic(fmt.Sprintf("nn: QuantizedPlan.PredictInto preds length %d, want %d", len(preds), n))
	}
	ar := q.getArena(n, x.Shape[2], x.Shape[3])
	q.run(x, ar)
	k := q.classes
	for i := 0; i < n; i++ {
		row := ar.logits[i*k : (i+1)*k]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		preds[i] = best
	}
	q.arenas.Put(ar)
}

// Classes returns the classifier output width.
func (q *QuantizedPlan) Classes() int { return q.classes }
