package nn

import (
	"fmt"
	"math/rand"
)

// ResNetConfig describes a micro-ResNet. The three standard depths used
// throughout the repo (stand-ins for ResNet-18/34/50) are produced by
// MicroResNetA/B/C.
type ResNetConfig struct {
	// StageWidths is the channel count of each stage; stage i>0 starts with
	// a stride-2 block, halving the spatial resolution.
	StageWidths []int
	// BlocksPerStage is the number of residual blocks in each stage.
	BlocksPerStage int
	// NumClasses is the classifier output width.
	NumClasses int
	// InputRes is the expected square input resolution (for bookkeeping and
	// FLOPs estimation; the network itself is fully convolutional).
	InputRes int
}

// Validate checks the configuration.
func (c ResNetConfig) Validate() error {
	if len(c.StageWidths) == 0 {
		return fmt.Errorf("nn: no stages")
	}
	for _, w := range c.StageWidths {
		if w <= 0 {
			return fmt.Errorf("nn: invalid stage width %d", w)
		}
	}
	if c.BlocksPerStage <= 0 {
		return fmt.Errorf("nn: invalid blocks per stage %d", c.BlocksPerStage)
	}
	if c.NumClasses <= 0 {
		return fmt.Errorf("nn: invalid class count %d", c.NumClasses)
	}
	if c.InputRes <= 0 || c.InputRes%(1<<uint(len(c.StageWidths)-1)) != 0 {
		return fmt.Errorf("nn: input resolution %d not divisible by stage downsampling", c.InputRes)
	}
	return nil
}

// NewResNet builds the model described by cfg with weights drawn from rng.
func NewResNet(rng *rand.Rand, cfg ResNetConfig) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var layers []Layer
	// Stem.
	layers = append(layers,
		NewConv2D(rng, 3, cfg.StageWidths[0], 3, 1, 1),
		NewBatchNorm2D(cfg.StageWidths[0]),
		&ReLU{},
	)
	inC := cfg.StageWidths[0]
	for si, width := range cfg.StageWidths {
		for b := 0; b < cfg.BlocksPerStage; b++ {
			stride := 1
			if si > 0 && b == 0 {
				stride = 2
			}
			layers = append(layers, NewResidual(rng, inC, width, stride))
			inC = width
		}
	}
	layers = append(layers,
		&GlobalAvgPool{},
		NewLinear(rng, inC, cfg.NumClasses),
	)
	return &Model{Layers: layers}, nil
}

// Named micro-ResNet variants. Depth and width scale together, mirroring
// the accuracy/computation ordering of ResNet-18/34/50 in Table 2.
const (
	// VariantA is the shallowest variant (stand-in for ResNet-18).
	VariantA = "resnet-a"
	// VariantB is the middle variant (stand-in for ResNet-34).
	VariantB = "resnet-b"
	// VariantC is the deepest variant (stand-in for ResNet-50).
	VariantC = "resnet-c"
)

// VariantConfig returns the configuration of a named variant for the given
// class count and input resolution.
func VariantConfig(variant string, numClasses, inputRes int) (ResNetConfig, error) {
	cfg := ResNetConfig{NumClasses: numClasses, InputRes: inputRes}
	switch variant {
	case VariantA:
		cfg.StageWidths = []int{8, 16, 32}
		cfg.BlocksPerStage = 1
	case VariantB:
		cfg.StageWidths = []int{12, 24, 48}
		cfg.BlocksPerStage = 2
	case VariantC:
		cfg.StageWidths = []int{16, 32, 64}
		cfg.BlocksPerStage = 3
	default:
		return ResNetConfig{}, fmt.Errorf("nn: unknown variant %q", variant)
	}
	return cfg, nil
}

// Variants lists the standard variant names, cheapest first.
func Variants() []string { return []string{VariantA, VariantB, VariantC} }

// FLOPsPerImage estimates the multiply-accumulate count of one forward pass
// for a square input of cfg.InputRes, used by the hardware cost model to
// derive relative DNN execution throughput.
func (c ResNetConfig) FLOPsPerImage() float64 {
	res := float64(c.InputRes)
	flops := 0.0
	// Stem: 3 -> w0 at full res, 3x3 kernel.
	flops += 2 * 9 * 3 * float64(c.StageWidths[0]) * res * res
	inC := float64(c.StageWidths[0])
	for si, width := range c.StageWidths {
		w := float64(width)
		stageRes := res / float64(int(1)<<uint(si))
		for b := 0; b < c.BlocksPerStage; b++ {
			outRes := stageRes
			if si > 0 && b == 0 {
				outRes = stageRes // stageRes already accounts for the stride
			}
			// Two 3x3 convs.
			flops += 2 * 9 * inC * w * outRes * outRes
			flops += 2 * 9 * w * w * outRes * outRes
			if inC != w || (si > 0 && b == 0) {
				flops += 2 * inC * w * outRes * outRes // 1x1 projection
			}
			inC = w
		}
	}
	flops += 2 * inC * float64(c.NumClasses)
	return flops
}
