package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smol/internal/tensor"
)

// randConfig draws a small but structurally varied ResNet configuration.
func randConfig(rng *rand.Rand) ResNetConfig {
	stages := 1 + rng.Intn(3)
	widths := make([]int, stages)
	for i := range widths {
		widths[i] = 4 << rng.Intn(2) // 4 or 8 channels
	}
	return ResNetConfig{
		StageWidths:    widths,
		BlocksPerStage: 1 + rng.Intn(2),
		NumClasses:     2 + rng.Intn(6),
		InputRes:       8 << rng.Intn(2), // 8 or 16
	}
}

// TestQuickSaveLoadPreservesForward: serialization round-trips every
// parameter and batch-norm statistic — the reloaded model computes
// bit-identical logits for any architecture and input.
func TestQuickSaveLoadPreservesForward(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		cfg := randConfig(rng)
		m, err := NewResNet(rng, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		x := tensor.New(2, 3, cfg.InputRes, cfg.InputRes)
		for i := range x.Data {
			x.Data[i] = rng.Float32()
		}
		want := m.Forward(x, false)

		var buf bytes.Buffer
		if err := SaveModel(&buf, cfg, m); err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}
		cfg2, m2, err := LoadModel(&buf)
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		if cfg2.NumClasses != cfg.NumClasses || len(cfg2.StageWidths) != len(cfg.StageWidths) {
			t.Logf("seed %d: config mangled: %+v vs %+v", seed, cfg2, cfg)
			return false
		}
		got := m2.Forward(x, false)
		if len(got.Data) != len(want.Data) {
			return false
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Logf("seed %d: logit %d differs: %v vs %v", seed, i, want.Data[i], got.Data[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickForwardDeterministicAndFinite: inference is deterministic and
// never produces NaN or Inf for random weights and inputs.
func TestQuickForwardDeterministicAndFinite(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		cfg := randConfig(rng)
		m, err := NewResNet(rng, cfg)
		if err != nil {
			return false
		}
		x := tensor.New(1, 3, cfg.InputRes, cfg.InputRes)
		for i := range x.Data {
			x.Data[i] = rng.Float32()*2 - 1
		}
		a := m.Forward(x, false)
		b := m.Forward(x, false)
		for i := range a.Data {
			v := float64(a.Data[i])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Logf("seed %d: non-finite logit %v", seed, v)
				return false
			}
			if a.Data[i] != b.Data[i] {
				t.Logf("seed %d: non-deterministic forward", seed)
				return false
			}
		}
		return len(a.Data) == cfg.NumClasses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}
