package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"smol/internal/tensor"
)

// Stateful is implemented by layers carrying non-parameter state that must
// survive serialization (e.g. batch-norm running statistics).
type Stateful interface {
	State() []*tensor.Tensor
}

// State returns batch-norm running statistics.
func (bn *BatchNorm2D) State() []*tensor.Tensor {
	return []*tensor.Tensor{bn.RunMean, bn.RunVar}
}

// State collects state from the block's inner layers.
func (r *Residual) State() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range r.inner() {
		if s, ok := l.(Stateful); ok {
			out = append(out, s.State()...)
		}
	}
	return out
}

// stateTensors returns all tensors that define the trained model: learnable
// parameters plus auxiliary state, in deterministic layer order.
func (m *Model) stateTensors() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
		if s, ok := l.(Stateful); ok {
			out = append(out, s.State()...)
		}
	}
	return out
}

// ModelMeta is the zoo bookkeeping serialized alongside a model: which
// named variant it is and the validation accuracy measured after training.
// A serving planner trades this accuracy against throughput, so it travels
// with the weights rather than in a side channel.
type ModelMeta struct {
	// Variant is the nn variant name ("resnet-a" etc.); empty for models
	// saved before metadata existed or built from custom configs.
	Variant string
	// Accuracy is the measured validation accuracy in [0, 1]; zero means
	// unmeasured.
	Accuracy float64
	// Precision tags the numeric tier this entry serves at: "" or "fp32"
	// for full precision, "int8" for a quantized plan.
	Precision string
	// Calib holds the activation scales of an int8 entry. Weight scales are
	// recomputed deterministically from the f32 weights, so this is all the
	// state needed to rebuild the QuantizedPlan bit-identically on load.
	Calib QuantCalibration
}

// savedModel is the gob wire format. Meta was added after the first release;
// gob's field-by-name decoding keeps both directions compatible (old files
// load with zero Meta, old readers skip it).
type savedModel struct {
	Config  ResNetConfig
	Meta    ModelMeta
	Tensors [][]float32
}

// SaveModel serializes a ResNet built from cfg.
func SaveModel(w io.Writer, cfg ResNetConfig, m *Model) error {
	return SaveModelMeta(w, cfg, ModelMeta{}, m)
}

// SaveModelMeta serializes a ResNet together with its zoo metadata.
func SaveModelMeta(w io.Writer, cfg ResNetConfig, meta ModelMeta, m *Model) error {
	sm := savedModel{Config: cfg, Meta: meta}
	for _, t := range m.stateTensors() {
		sm.Tensors = append(sm.Tensors, t.Data)
	}
	return gob.NewEncoder(w).Encode(&sm)
}

// LoadModel reconstructs a model saved by SaveModel, dropping any metadata.
func LoadModel(r io.Reader) (ResNetConfig, *Model, error) {
	cfg, _, m, err := LoadModelMeta(r)
	return cfg, m, err
}

// LoadModelMeta reconstructs a model and its metadata saved by
// SaveModelMeta (zero metadata for files saved by plain SaveModel).
func LoadModelMeta(r io.Reader) (ResNetConfig, ModelMeta, *Model, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return ResNetConfig{}, ModelMeta{}, nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	// Weight values are overwritten below; the seed only shapes the graph.
	m, err := NewResNet(rand.New(rand.NewSource(0)), sm.Config)
	if err != nil {
		return ResNetConfig{}, ModelMeta{}, nil, err
	}
	tensors := m.stateTensors()
	if len(tensors) != len(sm.Tensors) {
		return ResNetConfig{}, ModelMeta{}, nil, fmt.Errorf("nn: model has %d tensors, file has %d",
			len(tensors), len(sm.Tensors))
	}
	for i, t := range tensors {
		if len(t.Data) != len(sm.Tensors[i]) {
			return ResNetConfig{}, ModelMeta{}, nil, fmt.Errorf("nn: tensor %d size %d, file has %d",
				i, len(t.Data), len(sm.Tensors[i]))
		}
		copy(t.Data, sm.Tensors[i])
	}
	return sm.Config, sm.Meta, m, nil
}
