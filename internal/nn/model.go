package nn

import (
	"smol/internal/tensor"
)

// Model is a sequential stack of layers.
type Model struct {
	Layers []Layer
}

// Forward runs the whole stack.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates gradients through the whole stack.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all learnable parameters.
func (m *Model) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all gradients, aligned with Params.
func (m *Model) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads zeroes all gradients.
func (m *Model) ZeroGrads() { zeroGrads(m.Layers) }

// NumParams returns the total learnable parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Len()
	}
	return n
}

// Predict returns the argmax class per sample for a batch of inputs.
func (m *Model) Predict(x *tensor.Tensor) []int {
	logits := m.Forward(x, false)
	n, k := logits.Shape[0], logits.Shape[1]
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best := 0
		row := logits.Data[i*k : (i+1)*k]
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// Residual is a two-conv residual block (conv-bn-relu-conv-bn + skip,
// followed by ReLU), with an optional 1x1 projection shortcut when the
// shape changes.
type Residual struct {
	conv1 *Conv2D
	bn1   *BatchNorm2D
	relu1 *ReLU
	conv2 *Conv2D
	bn2   *BatchNorm2D
	relu2 *ReLU

	proj   *Conv2D      // nil for identity shortcut
	projBN *BatchNorm2D // nil when proj is nil

	shortcutIn *tensor.Tensor
	sum        *tensor.Tensor // reused pre-activation buffer for the skip add
}

// NewResidual builds a residual block mapping inC channels to outC with the
// given stride on the first conv.
func NewResidual(rng randSource, inC, outC, stride int) *Residual {
	r := &Residual{
		conv1: NewConv2D(rng, inC, outC, 3, stride, 1),
		bn1:   NewBatchNorm2D(outC),
		relu1: &ReLU{},
		conv2: NewConv2D(rng, outC, outC, 3, 1, 1),
		bn2:   NewBatchNorm2D(outC),
		relu2: &ReLU{},
	}
	if inC != outC || stride != 1 {
		r.proj = NewConv2D(rng, inC, outC, 1, stride, 0)
		r.projBN = NewBatchNorm2D(outC)
	}
	return r
}

// Forward computes the block output.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.shortcutIn = x
	y := r.conv1.Forward(x, train)
	y = r.bn1.Forward(y, train)
	y = r.relu1.Forward(y, train)
	y = r.conv2.Forward(y, train)
	y = r.bn2.Forward(y, train)
	var sc *tensor.Tensor
	if r.proj != nil {
		sc = r.proj.Forward(x, train)
		sc = r.projBN.Forward(sc, train)
	} else {
		sc = x
	}
	// Reuse the skip-add buffer instead of cloning y each call; the result
	// is consumed immediately by relu2, which copies into its own buffer.
	if r.sum == nil || cap(r.sum.Data) < len(y.Data) {
		r.sum = tensor.New(y.Shape...)
	} else {
		r.sum.Data = r.sum.Data[:len(y.Data)]
		r.sum.Shape = append(r.sum.Shape[:0], y.Shape...)
	}
	copy(r.sum.Data, y.Data)
	tensor.AXPY(1, sc, r.sum)
	return r.relu2.Forward(r.sum, train)
}

// Backward propagates through both the residual and shortcut paths.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := r.relu2.Backward(grad)
	// Residual path.
	gy := r.bn2.Backward(g)
	gy = r.conv2.Backward(gy)
	gy = r.relu1.Backward(gy)
	gy = r.bn1.Backward(gy)
	gy = r.conv1.Backward(gy)
	// Shortcut path.
	var gs *tensor.Tensor
	if r.proj != nil {
		gs = r.projBN.Backward(g)
		gs = r.proj.Backward(gs)
	} else {
		gs = g
	}
	out := gy.Clone()
	tensor.AXPY(1, gs, out)
	return out
}

func (r *Residual) inner() []Layer {
	ls := []Layer{r.conv1, r.bn1, r.conv2, r.bn2}
	if r.proj != nil {
		ls = append(ls, r.proj, r.projBN)
	}
	return ls
}

// Params returns the parameters of all inner layers.
func (r *Residual) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range r.inner() {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns the gradients of all inner layers.
func (r *Residual) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range r.inner() {
		out = append(out, l.Grads()...)
	}
	return out
}
