package nn

import (
	"fmt"
	"math"

	"smol/internal/tensor"
)

// randSource is the subset of *rand.Rand the layer constructors need,
// kept as an interface so deterministic test doubles can be injected.
type randSource interface {
	NormFloat64() float64
}

// Conv2D is a 2-D convolution over NCHW batches, implemented as
// im2col + matrix multiply (the standard CPU formulation).
type Conv2D struct {
	InC, OutC      int
	K, Stride, Pad int

	W *tensor.Tensor // (OutC, InC, K, K)
	B *tensor.Tensor // (OutC)

	gradW *tensor.Tensor
	gradB *tensor.Tensor

	// caches
	input *tensor.Tensor
	cols  []*tensor.Tensor // per-sample im2col
	outH  int
	outW  int
}

// NewConv2D constructs a conv layer with He-initialized weights.
func NewConv2D(rng randSource, inC, outC, k, stride, pad int) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W:     tensor.New(outC, inC, k, k),
		B:     tensor.New(outC),
		gradW: tensor.New(outC, inC, k, k),
		gradB: tensor.New(outC),
	}
	std := float32(math.Sqrt(2.0 / float64(inC*k*k)))
	for i := range c.W.Data {
		c.W.Data[i] = float32(rng.NormFloat64()) * std
	}
	return c
}

// Forward computes the convolution for x of shape (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input shape %v, want (N,%d,H,W)", x.Shape, c.InC))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	outH := (h+2*c.Pad-c.K)/c.Stride + 1
	outW := (w+2*c.Pad-c.K)/c.Stride + 1
	c.outH, c.outW = outH, outW
	c.input = x
	if cap(c.cols) < n {
		c.cols = make([]*tensor.Tensor, n)
	}
	c.cols = c.cols[:n]

	out := tensor.New(n, c.OutC, outH, outW)
	rows := c.InC * c.K * c.K
	wmat := c.W.Reshape(c.OutC, rows)
	for i := 0; i < n; i++ {
		sample := tensor.FromData(x.Data[i*c.InC*h*w:(i+1)*c.InC*h*w], c.InC, h, w)
		// Re-size the cached column matrix whenever either dimension is
		// stale: a cache entry matching only on outH*outW would make
		// Im2Col panic on the row count.
		if c.cols[i] == nil || c.cols[i].Shape[0] != rows || c.cols[i].Shape[1] != outH*outW {
			c.cols[i] = tensor.New(rows, outH*outW)
		}
		tensor.Im2Col(sample, c.K, c.K, c.Stride, c.Pad, c.cols[i])
		dst := tensor.FromData(out.Data[i*c.OutC*outH*outW:(i+1)*c.OutC*outH*outW], c.OutC, outH*outW)
		tensor.MatMulInto(wmat, c.cols[i], dst)
		// Bias.
		for oc := 0; oc < c.OutC; oc++ {
			b := c.B.Data[oc]
			row := dst.Data[oc*outH*outW : (oc+1)*outH*outW]
			for j := range row {
				row[j] += b
			}
		}
	}
	return out
}

// Backward computes input gradients and accumulates weight/bias gradients.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.input
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	outH, outW := c.outH, c.outW
	gradIn := tensor.New(n, c.InC, h, w)
	wmat := c.W.Reshape(c.OutC, c.InC*c.K*c.K)
	gwmat := c.gradW.Reshape(c.OutC, c.InC*c.K*c.K)

	gradColBuf := tensor.New(c.InC*c.K*c.K, outH*outW)
	sampleGrad := tensor.New(c.InC, h, w)
	gwAccum := tensor.New(c.OutC, c.InC*c.K*c.K)
	for i := 0; i < n; i++ {
		g := tensor.FromData(grad.Data[i*c.OutC*outH*outW:(i+1)*c.OutC*outH*outW], c.OutC, outH*outW)
		// dW += g @ col^T  (col is (ckk, ohow); we need g (oc, ohow) @ col^T (ohow, ckk)).
		tensor.MatMulTransB(g, c.cols[i], gwAccum)
		tensor.AXPY(1, gwAccum, gwmat)
		// dB += sum over spatial.
		for oc := 0; oc < c.OutC; oc++ {
			var s float32
			row := g.Data[oc*outH*outW : (oc+1)*outH*outW]
			for _, v := range row {
				s += v
			}
			c.gradB.Data[oc] += s
		}
		// dCol = W^T @ g ; dIn = col2im(dCol).
		tensor.MatMulTransA(wmat, g, gradColBuf)
		tensor.Col2Im(gradColBuf, c.InC, h, w, c.K, c.K, c.Stride, c.Pad, sampleGrad)
		copy(gradIn.Data[i*c.InC*h*w:(i+1)*c.InC*h*w], sampleGrad.Data)
	}
	return gradIn
}

// Params returns the weight and bias tensors.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns the gradients aligned with Params.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }
