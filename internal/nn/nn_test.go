package nn

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"smol/internal/tensor"
)

// numericalGrad estimates dLoss/dParam[i] by central differences.
func numericalGrad(f func() float64, p *tensor.Tensor, i int) float64 {
	const eps = 1e-3
	orig := p.Data[i]
	p.Data[i] = orig + eps
	up := f()
	p.Data[i] = orig - eps
	down := f()
	p.Data[i] = orig
	return (up - down) / (2 * eps)
}

// checkLayerGradients validates analytic vs numerical gradients for a layer
// wrapped in a scalar loss (sum of squares / 2 so dL/dy = y).
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	loss := func() float64 {
		y := l.Forward(x, true)
		var s float64
		for _, v := range y.Data {
			s += float64(v) * float64(v) / 2
		}
		return s
	}
	// Analytic gradients.
	y := l.Forward(x, true)
	zeroGrads([]Layer{l})
	gradIn := l.Backward(y.Clone())

	// Check input gradient on a sample of indices.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		i := rng.Intn(len(x.Data))
		num := numericalGrad(loss, x, i)
		got := float64(gradIn.Data[i])
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad[%d]: analytic %v vs numerical %v", i, got, num)
		}
	}
	// Check parameter gradients.
	params := l.Params()
	grads := l.Grads()
	for pi, p := range params {
		for trial := 0; trial < 6; trial++ {
			i := rng.Intn(len(p.Data))
			num := numericalGrad(loss, p, i)
			got := float64(grads[pi].Data[i])
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d grad[%d]: analytic %v vs numerical %v", pi, i, got, num)
			}
		}
	}
}

func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	return x
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(rng, 2, 3, 3, 1, 1)
	x := randInput(rng, 2, 2, 5, 5)
	checkLayerGradients(t, conv, x, 2e-2)
}

func TestConvStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D(rng, 2, 2, 3, 2, 1)
	x := randInput(rng, 1, 2, 6, 6)
	checkLayerGradients(t, conv, x, 2e-2)
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lin := NewLinear(rng, 6, 4)
	x := randInput(rng, 3, 6)
	checkLayerGradients(t, lin, x, 2e-2)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randInput(rng, 2, 3, 4, 4)
	// Shift away from zero to avoid kinks in the numerical gradient.
	for i := range x.Data {
		if math.Abs(float64(x.Data[i])) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	checkLayerGradients(t, &ReLU{}, x, 2e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randInput(rng, 2, 2, 6, 6)
	checkLayerGradients(t, &MaxPool2{}, x, 2e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randInput(rng, 2, 3, 4, 4)
	checkLayerGradients(t, &GlobalAvgPool{}, x, 2e-2)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm2D(3)
	x := randInput(rng, 4, 3, 3, 3)
	checkLayerGradients(t, bn, x, 5e-2)
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewResidual(rng, 2, 4, 2) // projection path
	x := randInput(rng, 2, 2, 6, 6)
	checkLayerGradients(t, r, x, 5e-2)
}

func TestResidualIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := NewResidual(rng, 3, 3, 1) // identity shortcut
	x := randInput(rng, 2, 3, 4, 4)
	checkLayerGradients(t, r, x, 5e-2)
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	// Uniform logits: loss = log(K), gradient pushes towards the label.
	logits := tensor.New(1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want log 4", loss)
	}
	for j := 0; j < 4; j++ {
		want := 0.25
		if j == 2 {
			want = -0.75
		}
		if math.Abs(float64(grad.Data[j])-want) > 1e-6 {
			t.Fatalf("grad = %v", grad.Data)
		}
	}
}

func TestSoftmaxCrossEntropyGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := randInput(rng, 3, 5)
	labels := []int{0, 3, 2}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	for trial := 0; trial < 10; trial++ {
		i := rng.Intn(len(logits.Data))
		num := numericalGrad(func() float64 {
			l, _ := SoftmaxCrossEntropy(logits, labels)
			return l
		}, logits, i)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("grad[%d]: analytic %v vs numerical %v", i, grad.Data[i], num)
		}
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(a-2.0/3.0) > 1e-12 {
		t.Fatalf("accuracy = %v", a)
	}
}

func TestBatchNormNormalizesAndTracks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bn := NewBatchNorm2D(2)
	x := tensor.New(8, 2, 4, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*10 + 5
	}
	y := bn.Forward(x, true)
	// Each channel of the output should be ~zero-mean unit-variance.
	n, spatial := 8, 16
	for c := 0; c < 2; c++ {
		var s, s2 float64
		for i := 0; i < n; i++ {
			base := (i*2 + c) * spatial
			for j := 0; j < spatial; j++ {
				v := float64(y.Data[base+j])
				s += v
				s2 += v * v
			}
		}
		count := float64(n * spatial)
		mean := s / count
		variance := s2/count - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d: mean %v var %v", c, mean, variance)
		}
	}
	// Running stats should have moved from their init values.
	if bn.RunMean.Data[0] == 0 || bn.RunVar.Data[0] == 1 {
		t.Fatal("running statistics not updated")
	}
}

func TestResNetBuilderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, v := range Variants() {
		cfg, err := VariantConfig(v, 7, 32)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewResNet(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		x := randInput(rng, 2, 3, 32, 32)
		y := m.Forward(x, false)
		if y.Shape[0] != 2 || y.Shape[1] != 7 {
			t.Fatalf("%s: output shape %v", v, y.Shape)
		}
	}
}

func TestVariantOrdering(t *testing.T) {
	// Deeper variants must have more parameters and FLOPs.
	rng := rand.New(rand.NewSource(14))
	var lastParams int
	var lastFLOPs float64
	for _, v := range Variants() {
		cfg, _ := VariantConfig(v, 10, 32)
		m, err := NewResNet(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := m.NumParams()
		f := cfg.FLOPsPerImage()
		if p <= lastParams || f <= lastFLOPs {
			t.Fatalf("%s: params %d flops %.0f not increasing", v, p, f)
		}
		lastParams, lastFLOPs = p, f
	}
}

func TestVariantConfigUnknown(t *testing.T) {
	if _, err := VariantConfig("resnet-z", 2, 32); err == nil {
		t.Fatal("expected error")
	}
}

func TestResNetConfigValidation(t *testing.T) {
	bad := []ResNetConfig{
		{},
		{StageWidths: []int{8}, BlocksPerStage: 0, NumClasses: 2, InputRes: 32},
		{StageWidths: []int{8, 16}, BlocksPerStage: 1, NumClasses: 0, InputRes: 32},
		{StageWidths: []int{8, 16, 32}, BlocksPerStage: 1, NumClasses: 2, InputRes: 30},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

// xorSamples builds a tiny dataset where class depends on the XOR of two
// spatial quadrant intensities — learnable only with a nonlinear model.
func xorSamples(rng *rand.Rand, n int) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		a := rng.Intn(2)
		b := rng.Intn(2)
		x := tensor.New(3, 8, 8)
		for c := 0; c < 3; c++ {
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					v := float32(0.1)
					if (y < 4 && a == 1) || (y >= 4 && b == 1) {
						v = 0.9
					}
					x.Data[c*64+y*8+xx] = v + rng.Float32()*0.05
				}
			}
		}
		samples[i] = Sample{X: x, Label: a ^ b}
	}
	return samples
}

func TestTrainingLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	train := xorSamples(rng, 256)
	test := xorSamples(rng, 128)
	cfg := ResNetConfig{StageWidths: []int{8, 16}, BlocksPerStage: 1, NumClasses: 2, InputRes: 8}
	m, err := NewResNet(rand.New(rand.NewSource(16)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := Evaluate(m, test, 64)
	Fit(m, train, TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: 17})
	after := Evaluate(m, test, 64)
	if after < 0.95 {
		t.Fatalf("accuracy after training = %v (before %v)", after, before)
	}
}

func TestFitAugmenterIsCalled(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	train := xorSamples(rng, 32)
	cfg := ResNetConfig{StageWidths: []int{4}, BlocksPerStage: 1, NumClasses: 2, InputRes: 8}
	m, err := NewResNet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	Fit(m, train, TrainConfig{
		Epochs: 1, BatchSize: 8,
		Augment: func(r *rand.Rand, x *tensor.Tensor) *tensor.Tensor {
			calls++
			return x
		},
	})
	if calls != 32 {
		t.Fatalf("augmenter called %d times, want 32", calls)
	}
}

func TestSaveLoadModel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cfg := ResNetConfig{StageWidths: []int{4, 8}, BlocksPerStage: 1, NumClasses: 3, InputRes: 16}
	m, err := NewResNet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Push some data through in train mode so running stats are nontrivial.
	x := randInput(rng, 4, 3, 16, 16)
	m.Forward(x, true)

	var buf testBuffer
	if err := SaveModel(&buf, cfg, m); err != nil {
		t.Fatal(err)
	}
	gotCfg, loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg.NumClasses != 3 || len(gotCfg.StageWidths) != 2 {
		t.Fatalf("config %+v", gotCfg)
	}
	// Outputs must match exactly in eval mode.
	y1 := m.Forward(x, false)
	y2 := loaded.Forward(x, false)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("output mismatch at %d: %v vs %v", i, y1.Data[i], y2.Data[i])
		}
	}
}

// testBuffer is a minimal io.ReadWriter.
type testBuffer struct {
	data []byte
	pos  int
}

func (b *testBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *testBuffer) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, errEOF{}
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}

type errEOF struct{}

func (errEOF) Error() string { return "EOF" }

func TestSGDMomentumConverges(t *testing.T) {
	// Minimize (w-3)^2 via the optimizer plumbing using a fake 1-parameter
	// "model".
	w := tensor.New(1)
	g := tensor.New(1)
	m := &Model{Layers: []Layer{&fakeParamLayer{p: w, g: g}}}
	opt := NewSGD(0.1, 0.9, 0)
	for i := 0; i < 400; i++ {
		g.Data[0] = 2 * (w.Data[0] - 3)
		opt.Step(m)
	}
	if math.Abs(float64(w.Data[0])-3) > 1e-3 {
		t.Fatalf("w = %v, want 3", w.Data[0])
	}
}

type fakeParamLayer struct{ p, g *tensor.Tensor }

func (f *fakeParamLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (f *fakeParamLayer) Backward(grad *tensor.Tensor) *tensor.Tensor         { return grad }
func (f *fakeParamLayer) Params() []*tensor.Tensor                            { return []*tensor.Tensor{f.p} }
func (f *fakeParamLayer) Grads() []*tensor.Tensor                             { return []*tensor.Tensor{f.g} }

// TestSaveLoadModelMeta: zoo metadata (variant name, measured accuracy)
// must round-trip with the weights, and metadata-free saves load with zero
// metadata.
func TestSaveLoadModelMeta(t *testing.T) {
	cfg, err := VariantConfig(VariantA, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewResNet(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := ModelMeta{Variant: VariantA, Accuracy: 0.875}
	var buf bytes.Buffer
	if err := SaveModelMeta(&buf, cfg, meta, m); err != nil {
		t.Fatal(err)
	}
	_, gotMeta, loaded, err := LoadModelMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMeta, meta) {
		t.Fatalf("metadata %+v, want %+v", gotMeta, meta)
	}
	x := tensor.New(1, 3, 16, 16)
	if got, want := loaded.Predict(x)[0], m.Predict(x)[0]; got != want {
		t.Fatalf("loaded model predicts %d, original %d", got, want)
	}
	buf.Reset()
	if err := SaveModel(&buf, cfg, m); err != nil {
		t.Fatal(err)
	}
	if _, gotMeta, _, err = LoadModelMeta(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMeta, ModelMeta{}) {
		t.Fatalf("plain save produced metadata %+v", gotMeta)
	}
}
