//go:build !race

package nn

// raceEnabled reports whether the race detector is active; the
// allocation-count test is meaningless under -race because the detector's
// instrumentation allocates and sync.Pool intentionally drops puts.
const raceEnabled = false
