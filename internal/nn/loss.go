package nn

import (
	"fmt"
	"math"

	"smol/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (N, K) against integer labels, and the gradient with respect to the
// logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if len(logits.Shape) != 2 || logits.Shape[0] != len(labels) {
		panic(fmt.Sprintf("nn: loss shape %v vs %d labels", logits.Shape, len(labels)))
	}
	n, k := logits.Shape[0], logits.Shape[1]
	grad := tensor.New(n, k)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		label := labels[i]
		if label < 0 || label >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, k))
		}
		// Stable softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		loss += logSum - float64(row[label]-maxv)
		invN := 1 / float32(n)
		for j := 0; j < k; j++ {
			p := float32(math.Exp(float64(row[j]-maxv)) / sum)
			if j == label {
				p -= 1
			}
			grad.Data[i*k+j] = p * invN
		}
	}
	return loss / float64(n), grad
}

// Accuracy returns the fraction of predictions matching labels.
func Accuracy(preds, labels []int) float64 {
	if len(preds) != len(labels) {
		panic("nn: Accuracy length mismatch")
	}
	if len(preds) == 0 {
		return 0
	}
	correct := 0
	for i := range preds {
		if preds[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}
