package nn

import (
	"fmt"
	"math"
	"sync"

	"smol/internal/tensor"
)

// Compiled inference path. Compile lowers a trained Model into an
// immutable InferencePlan: inference-mode BatchNorm2D layers are folded
// into the preceding convolution's weights, bias / residual add / ReLU are
// fused into the GEMM epilogue, and every convolution runs as a single
// batched im2col + blocked tensor.GEMM over the whole batch. Activations
// live in three fixed "registers" of a per-call arena (recycled through a
// sync.Pool), so a warm forward performs approximately zero heap
// allocations and any number of goroutines can run one plan concurrently.
//
// Model.Forward remains the training/reference path and the equivalence
// oracle; the compiled plan carries its own (folded) copies of all weights
// and no mutable layer caches.

// opKind enumerates the fused op vocabulary of a compiled plan.
type opKind int

const (
	// opConv is a convolution with folded batch-norm and a fused
	// bias/add/ReLU epilogue, executed as batched im2col + GEMM.
	opConv opKind = iota
	// opAvgPool is global average pooling, CNHW -> (N, C).
	opAvgPool
	// opLinear is the terminal fully connected layer writing logits.
	opLinear
)

// planOp is one fused step of the compiled graph. src/dst/add name
// activation registers in the arena; src == -1 reads the caller's input
// tensor, add == -1 means no residual addend.
type planOp struct {
	kind opKind

	// Convolution geometry (opConv).
	inC, outC, k, stride, pad int
	// w is the folded weight matrix: (outC x inC*k*k) for opConv,
	// (out x in) for opLinear. bias is the folded bias (len outC / out).
	w    []float32
	bias []float32
	// wp is w pre-packed at compile time into the GEMM microkernel's
	// MR-interleaved row-panel layout (opConv only), so the per-call
	// forward never re-packs the constant operand.
	wp *tensor.PackedA
	// relu fuses a ReLU into the epilogue.
	relu bool

	src, dst, add int

	// Linear dimensions (opLinear).
	in, out int
}

// InferencePlan is a compiled, immutable, reentrant forward pass. Create
// one with Compile; it is safe for concurrent use.
type InferencePlan struct {
	inC     int // input channels expected by the first conv
	classes int
	ops     []planOp

	arenas sync.Pool // of *inferArena
}

// inferArena holds the recycled per-call activation memory: three
// equally sized registers (enough for the residual dataflow), the im2col
// column buffer, and the logits scratch. Buffers grow on demand and are
// reused across calls via the plan's pool.
type inferArena struct {
	regs   [3][]float32
	col    []float32
	logits []float32
}

// Compile lowers m into an InferencePlan. The model must be a sequential
// inference graph of the shapes NewResNet produces: Conv2D (optionally
// followed by BatchNorm2D and/or ReLU), Residual blocks, GlobalAvgPool,
// and a terminal Linear. Any other layer kind is rejected with an error,
// in which case callers should fall back to Model.Forward.
func Compile(m *Model) (*InferencePlan, error) {
	if m == nil || len(m.Layers) == 0 {
		return nil, fmt.Errorf("nn: Compile: empty model")
	}
	p := &InferencePlan{inC: -1, classes: -1}
	cur := -1 // register holding the current activation; -1 = external input
	i := 0
	for i < len(m.Layers) {
		if p.classes >= 0 {
			return nil, fmt.Errorf("nn: Compile: layer %d after terminal Linear", i)
		}
		switch l := m.Layers[i].(type) {
		case *Conv2D:
			var bn *BatchNorm2D
			relu := false
			j := i + 1
			if j < len(m.Layers) {
				if b, ok := m.Layers[j].(*BatchNorm2D); ok {
					bn = b
					j++
				}
			}
			if j < len(m.Layers) {
				if _, ok := m.Layers[j].(*ReLU); ok {
					relu = true
					j++
				}
			}
			if p.inC < 0 {
				p.inC = l.InC
			}
			dst := otherReg(cur, cur)
			p.ops = append(p.ops, foldConv(l, bn, relu, cur, dst, -1))
			cur = dst
			i = j
		case *Residual:
			if cur < 0 {
				return nil, fmt.Errorf("nn: Compile: Residual cannot be the first layer")
			}
			// y1 = relu(bn1(conv1(x)))
			t1 := otherReg(cur, cur)
			p.ops = append(p.ops, foldConv(l.conv1, l.bn1, true, cur, t1, -1))
			if l.proj != nil {
				// sc = projBN(proj(x)); out = relu(bn2(conv2(y1)) + sc),
				// overwriting x's register (its value is dead after proj).
				t2 := otherReg(cur, t1)
				p.ops = append(p.ops, foldConv(l.proj, l.projBN, false, cur, t2, -1))
				p.ops = append(p.ops, foldConv(l.conv2, l.bn2, true, t1, cur, t2))
			} else {
				// out = relu(bn2(conv2(y1)) + x)
				t2 := otherReg(cur, t1)
				p.ops = append(p.ops, foldConv(l.conv2, l.bn2, true, t1, t2, cur))
				cur = t2
			}
			i++
		case *GlobalAvgPool:
			if cur < 0 {
				return nil, fmt.Errorf("nn: Compile: GlobalAvgPool cannot be the first layer")
			}
			dst := otherReg(cur, cur)
			p.ops = append(p.ops, planOp{kind: opAvgPool, src: cur, dst: dst, add: -1})
			cur = dst
			i++
		case *Linear:
			if cur < 0 {
				return nil, fmt.Errorf("nn: Compile: Linear cannot be the first layer")
			}
			w := make([]float32, len(l.W.Data))
			copy(w, l.W.Data)
			bias := make([]float32, len(l.B.Data))
			copy(bias, l.B.Data)
			p.ops = append(p.ops, planOp{kind: opLinear, src: cur, dst: -1, add: -1,
				w: w, bias: bias, in: l.In, out: l.Out})
			p.classes = l.Out
			i++
		default:
			return nil, fmt.Errorf("nn: Compile: unsupported layer %T", l)
		}
	}
	if p.classes < 0 {
		return nil, fmt.Errorf("nn: Compile: model has no terminal Linear layer")
	}
	if p.inC < 0 {
		return nil, fmt.Errorf("nn: Compile: model has no convolution")
	}
	return p, nil
}

// otherReg returns a register index distinct from both arguments.
func otherReg(a, b int) int {
	for r := 0; r < 3; r++ {
		if r != a && r != b {
			return r
		}
	}
	panic("nn: no free register")
}

// foldConv copies a convolution's weights, folding the (inference-mode)
// batch-norm transform into them: with s_c = gamma_c / sqrt(var_c + eps),
// W'[c,...] = s_c * W[c,...] and b'_c = s_c*(b_c - mean_c) + beta_c, so
// bn(conv(x)) == conv'(x) exactly (up to float rounding).
func foldConv(c *Conv2D, bn *BatchNorm2D, relu bool, src, dst, add int) planOp {
	ckk := c.InC * c.K * c.K
	w := make([]float32, c.OutC*ckk)
	copy(w, c.W.Data)
	bias := make([]float32, c.OutC)
	copy(bias, c.B.Data)
	if bn != nil {
		for oc := 0; oc < c.OutC; oc++ {
			invStd := float32(1 / math.Sqrt(float64(bn.RunVar.Data[oc])+float64(bn.Eps)))
			s := bn.Gamma.Data[oc] * invStd
			row := w[oc*ckk : (oc+1)*ckk]
			for i := range row {
				row[i] *= s
			}
			bias[oc] = s*(bias[oc]-bn.RunMean.Data[oc]) + bn.Beta.Data[oc]
		}
	}
	return planOp{kind: opConv, inC: c.InC, outC: c.OutC, k: c.K, stride: c.Stride,
		pad: c.Pad, w: w, wp: tensor.PackA(c.OutC, ckk, w), bias: bias, relu: relu,
		src: src, dst: dst, add: add}
}

// regGeom is the runtime geometry of one activation register. Geometry is
// tracked per register, not sequentially: a projection shortcut reads the
// block input's dimensions after the main path has already strided down.
type regGeom struct{ c, h, w int }

// inGeom resolves the input geometry of an op: the caller's tensor for
// src < 0, otherwise whatever was last written to the source register.
func inGeom(op planOp, geoms *[3]regGeom, inC, h, w int) regGeom {
	if op.src < 0 {
		return regGeom{c: inC, h: h, w: w}
	}
	return geoms[op.src]
}

// footprint walks the op list for an (n, h, w) input and returns the
// element counts the arena needs: the largest register and the largest
// im2col column matrix.
func (p *InferencePlan) footprint(n, h, w int) (regElems, colElems int) {
	var geoms [3]regGeom
	for _, op := range p.ops {
		switch op.kind {
		case opConv:
			g := inGeom(op, &geoms, p.inC, h, w)
			outH := (g.h+2*op.pad-op.k)/op.stride + 1
			outW := (g.w+2*op.pad-op.k)/op.stride + 1
			if e := op.inC * op.k * op.k * n * outH * outW; e > colElems {
				colElems = e
			}
			if e := op.outC * n * outH * outW; e > regElems {
				regElems = e
			}
			geoms[op.dst] = regGeom{c: op.outC, h: outH, w: outW}
		case opAvgPool:
			g := geoms[op.src]
			if e := n * g.c; e > regElems {
				regElems = e
			}
			geoms[op.dst] = regGeom{c: g.c, h: 1, w: 1}
		case opLinear:
		}
	}
	return regElems, colElems
}

// getArena fetches a recycled arena sized for an (n, h, w) batch. The
// caller owns the arena and must Put it back once the forward finishes.
//
//smol:owns
//smol:noalloc
func (p *InferencePlan) getArena(n, h, w int) *inferArena {
	ar, _ := p.arenas.Get().(*inferArena)
	if ar == nil {
		ar = &inferArena{} //smol:coldpath first call on this P
	}
	regElems, colElems := p.footprint(n, h, w)
	for i := range ar.regs {
		if cap(ar.regs[i]) < regElems {
			ar.regs[i] = make([]float32, regElems) //smol:coldpath grow on shape change
		}
	}
	if cap(ar.col) < colElems {
		ar.col = make([]float32, colElems) //smol:coldpath grow on shape change
	}
	if cap(ar.logits) < n*p.classes {
		ar.logits = make([]float32, n*p.classes) //smol:coldpath grow on shape change
	}
	return ar
}

// run executes the plan for x (N, C, H, W), leaving logits in
// ar.logits[:N*classes]. Intermediate activations use the channel-major
// CNHW layout (channel plane c of sample i starts at (c*N+i)*H*W), which
// lets each conv be one contiguous batched GEMM.
//
// When stats is non-nil (len 1+len(ops)) the pass additionally records
// max-abs activation ranges — stats[0] for the input tensor, stats[1+i]
// for op i's output register — which Calibrate folds into int8 scales.
//
//smol:noalloc
func (p *InferencePlan) run(x *tensor.Tensor, ar *inferArena, stats []float32) {
	if len(x.Shape) != 4 || x.Shape[1] != p.inC {
		//smol:coldpath shape mismatch is a caller bug
		panic(fmt.Sprintf("nn: InferencePlan input shape %v, want (N,%d,H,W)", x.Shape, p.inC))
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	if stats != nil {
		stats[0] = maxAbs32(x.Data[:n*p.inC*h*w])
	}
	var geoms [3]regGeom
	for idx, op := range p.ops {
		switch op.kind {
		case opConv:
			g := inGeom(op, &geoms, p.inC, h, w)
			outH := (g.h+2*op.pad-op.k)/op.stride + 1
			outW := (g.w+2*op.pad-op.k)/op.stride + 1
			total := n * outH * outW
			rows := op.inC * op.k * op.k
			col := ar.col[:rows*total]
			if op.src < 0 {
				// External input: NCHW strides.
				tensor.Im2ColBatch(x.Data, n, op.inC, g.h, g.w, op.inC*g.h*g.w, g.h*g.w,
					op.k, op.k, op.stride, op.pad, col)
			} else {
				// Arena register: CNHW strides.
				tensor.Im2ColBatch(ar.regs[op.src], n, op.inC, g.h, g.w, g.h*g.w, n*g.h*g.w,
					op.k, op.k, op.stride, op.pad, col)
			}
			ep := tensor.Epilogue{RowBias: op.bias, ReLU: op.relu}
			if op.add >= 0 {
				ep.Add = ar.regs[op.add][:op.outC*total]
			}
			tensor.GEMMPackedRaw(op.wp, total, col, ar.regs[op.dst][:op.outC*total], ep)
			if stats != nil {
				stats[1+idx] = maxAbs32(ar.regs[op.dst][:op.outC*total])
			}
			geoms[op.dst] = regGeom{c: op.outC, h: outH, w: outW}
		case opAvgPool:
			g := geoms[op.src]
			spatial := g.h * g.w
			src := ar.regs[op.src]
			dst := ar.regs[op.dst]
			for c := 0; c < g.c; c++ {
				for i := 0; i < n; i++ {
					plane := src[(c*n+i)*spatial : (c*n+i+1)*spatial]
					var s float32
					for _, v := range plane {
						s += v
					}
					dst[i*g.c+c] = s / float32(spatial)
				}
			}
			geoms[op.dst] = regGeom{c: g.c, h: 1, w: 1}
		case opLinear:
			src := ar.regs[op.src][:n*op.in]
			logits := ar.logits[:n*op.out]
			for i := 0; i < n; i++ {
				xrow := src[i*op.in : (i+1)*op.in]
				for j := 0; j < op.out; j++ {
					wrow := op.w[j*op.in : (j+1)*op.in]
					var s float32
					for pi, v := range xrow {
						s += v * wrow[pi]
					}
					logits[i*op.out+j] = s + op.bias[j]
				}
			}
		}
	}
}

// Forward runs the compiled stack and returns the logits as a freshly
// allocated (N, classes) tensor. Safe for concurrent use.
func (p *InferencePlan) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	out := tensor.New(n, p.classes)
	ar := p.getArena(n, x.Shape[2], x.Shape[3])
	p.run(x, ar, nil)
	copy(out.Data, ar.logits[:n*p.classes])
	p.arenas.Put(ar)
	return out
}

// Predict returns the argmax class per sample.
func (p *InferencePlan) Predict(x *tensor.Tensor) []int {
	preds := make([]int, x.Shape[0])
	p.PredictInto(x, preds)
	return preds
}

// PredictInto writes the argmax class per sample into preds (len N). A
// warm call allocates nothing: activations, the im2col buffer, and the
// logits scratch all come from the plan's recycled arenas.
//
//smol:noalloc
func (p *InferencePlan) PredictInto(x *tensor.Tensor, preds []int) {
	n := x.Shape[0]
	if len(preds) != n {
		//smol:coldpath length mismatch is a caller bug
		panic(fmt.Sprintf("nn: PredictInto preds length %d, want %d", len(preds), n))
	}
	ar := p.getArena(n, x.Shape[2], x.Shape[3])
	p.run(x, ar, nil)
	k := p.classes
	for i := 0; i < n; i++ {
		row := ar.logits[i*k : (i+1)*k]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		preds[i] = best
	}
	p.arenas.Put(ar)
}

// Classes returns the classifier output width.
func (p *InferencePlan) Classes() int { return p.classes }
