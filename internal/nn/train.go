package nn

import (
	"math/rand"

	"smol/internal/tensor"
)

// Sample is one labelled training example in NCHW (C=3) layout.
type Sample struct {
	X     *tensor.Tensor // (3, H, W)
	Label int
}

// Augmenter transforms a sample at training time. Smol's low-resolution-
// aware training (§5.3) is implemented as an Augmenter that downsamples and
// re-upsamples inputs to inject the artifacts the model will see at
// inference time.
type Augmenter func(rng *rand.Rand, x *tensor.Tensor) *tensor.Tensor

// TrainConfig bundles the knobs of Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	Momentum  float32
	// WeightDecay is the L2 penalty coefficient.
	WeightDecay float32
	// LRDecayEvery halves the learning rate every this many epochs when > 0.
	LRDecayEvery int
	// Augment, when non-nil, is applied to every training input.
	Augment Augmenter
	// Seed makes shuffling and augmentation deterministic.
	Seed int64
	// Progress, when non-nil, receives (epoch, meanLoss) after each epoch.
	Progress func(epoch int, loss float64)
}

// Fit trains the model on samples with SGD.
func Fit(m *Model, samples []Sample, cfg TrainConfig) {
	if len(samples) == 0 {
		panic("nn: Fit with no samples")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	h := samples[0].X.Shape[1]
	w := samples[0].X.Shape[2]
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRDecayEvery > 0 && epoch > 0 && epoch%cfg.LRDecayEvery == 0 {
			opt.LR /= 2
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var lossSum float64
		batches := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			n := end - start
			batch := tensor.New(n, 3, h, w)
			labels := make([]int, n)
			for bi, si := range idx[start:end] {
				x := samples[si].X
				if cfg.Augment != nil {
					x = cfg.Augment(rng, x)
				}
				copy(batch.Data[bi*3*h*w:(bi+1)*3*h*w], x.Data)
				labels[bi] = samples[si].Label
			}
			m.ZeroGrads()
			logits := m.Forward(batch, true)
			loss, grad := SoftmaxCrossEntropy(logits, labels)
			m.Backward(grad)
			opt.Step(m)
			lossSum += loss
			batches++
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, lossSum/float64(batches))
		}
	}
}

// Evaluate returns the model's accuracy over samples, running inference in
// batches.
func Evaluate(m *Model, samples []Sample, batchSize int) float64 {
	if len(samples) == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	h := samples[0].X.Shape[1]
	w := samples[0].X.Shape[2]
	correct := 0
	for start := 0; start < len(samples); start += batchSize {
		end := start + batchSize
		if end > len(samples) {
			end = len(samples)
		}
		n := end - start
		batch := tensor.New(n, 3, h, w)
		for bi := 0; bi < n; bi++ {
			copy(batch.Data[bi*3*h*w:(bi+1)*3*h*w], samples[start+bi].X.Data)
		}
		preds := m.Predict(batch)
		for bi, p := range preds {
			if p == samples[start+bi].Label {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(samples))
}
