package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"smol/internal/analysis/alloctest"
	"smol/internal/tensor"
)

// randomizeForInference gives every layer nontrivial weights AND
// nontrivial batch-norm running statistics, so folding has real work to do
// (fresh models have RunMean = 0, RunVar = 1, which would hide folding
// bugs behind near-identity transforms).
func randomizeForInference(rng *rand.Rand, layers []Layer) {
	for _, l := range layers {
		switch v := l.(type) {
		case *Conv2D:
			fillRand(rng, v.W, v.B)
			// He-style scaling keeps activation magnitudes O(1), as in a
			// trained model; unscaled +-1 weights explode exponentially with
			// depth and drown the comparison in float32 rounding.
			scale(v.W, float32(math.Sqrt(2.0/float64(v.InC*v.K*v.K))))
		case *Linear:
			fillRand(rng, v.W, v.B)
			scale(v.W, float32(math.Sqrt(2.0/float64(v.In))))
		case *BatchNorm2D:
			fillRand(rng, v.Gamma, v.Beta, v.RunMean)
			for i := range v.RunVar.Data {
				v.RunVar.Data[i] = 0.5 + rng.Float32() // variance must stay positive
			}
		case *Residual:
			randomizeForInference(rng, v.inner())
		}
	}
}

func scale(t *tensor.Tensor, s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

func fillRand(rng *rand.Rand, ts ...*tensor.Tensor) {
	for _, t := range ts {
		for i := range t.Data {
			t.Data[i] = rng.Float32()*2 - 1
		}
	}
}

// compiledVariant builds a variant model with randomized inference state
// and its compiled plan.
func compiledVariant(t *testing.T, variant string, seed int64) (*Model, *InferencePlan, ResNetConfig) {
	t.Helper()
	cfg, err := VariantConfig(variant, 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	m, err := NewResNet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	randomizeForInference(rng, m.Layers)
	plan, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, plan, cfg
}

// TestCompiledMatchesReference: for every variant and batch size, the
// compiled plan's predictions are identical to Model.Predict and its
// logits match Model.Forward(x, false) within 1e-4.
func TestCompiledMatchesReference(t *testing.T) {
	for vi, variant := range Variants() {
		for _, batch := range []int{1, 8, 32} {
			t.Run(fmt.Sprintf("%s/batch%d", variant, batch), func(t *testing.T) {
				m, plan, _ := compiledVariant(t, variant, int64(100+vi))
				rng := rand.New(rand.NewSource(int64(batch)))
				x := tensor.New(batch, 3, 16, 16)
				fillRand(rng, x)

				ref := m.Forward(x, false)
				got := plan.Forward(x)
				if !tensor.SameShape(ref, got) {
					t.Fatalf("logits shape %v, want %v", got.Shape, ref.Shape)
				}
				for i := range ref.Data {
					r, g := float64(ref.Data[i]), float64(got.Data[i])
					if math.Abs(r-g) > 1e-4*math.Max(1, math.Abs(r)) {
						t.Fatalf("logit %d: compiled %v, reference %v", i, g, r)
					}
				}

				wantPred := m.Predict(x)
				gotPred := plan.Predict(x)
				for i := range wantPred {
					if wantPred[i] != gotPred[i] {
						t.Fatalf("sample %d: compiled class %d, reference %d",
							i, gotPred[i], wantPred[i])
					}
				}
			})
		}
	}
}

// TestCompiledPlanConcurrent runs one plan from 8 goroutines with
// distinct inputs; every result must match a serial forward of the same
// input. Run under -race this proves the plan is reentrant.
func TestCompiledPlanConcurrent(t *testing.T) {
	_, plan, _ := compiledVariant(t, VariantB, 42)
	const goroutines = 8
	inputs := make([]*tensor.Tensor, goroutines)
	want := make([][]int, goroutines)
	for g := range inputs {
		rng := rand.New(rand.NewSource(int64(g)))
		inputs[g] = tensor.New(4, 3, 16, 16)
		fillRand(rng, inputs[g])
		want[g] = plan.Predict(inputs[g])
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got := plan.Predict(inputs[g])
				for i := range got {
					if got[i] != want[g][i] {
						errs <- fmt.Errorf("goroutine %d iter %d sample %d: %d != %d",
							g, iter, i, got[i], want[g][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCompiledWarmForwardAllocs: once warm, PredictInto runs out of the
// recycled arena. With GOMAXPROCS pinned to 1 the GEMM never spawns
// goroutines, so the forward should allocate nothing at all.
func TestCompiledWarmForwardAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops puts under -race")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	_, plan, _ := compiledVariant(t, VariantA, 7)
	x := tensor.New(8, 3, 16, 16)
	fillRand(rand.New(rand.NewSource(1)), x)
	preds := make([]int, 8)
	plan.PredictInto(x, preds) // warm the arena pool
	// GOMAXPROCS=1 keeps GEMMRaw on its serial path, so one warm forward
	// transitively exercises every annotated kernel below it.
	alloctest.Run(t, "smol/internal/nn.InferencePlan.PredictInto", 0.5, func() {
		plan.PredictInto(x, preds)
	},
		"smol/internal/nn.InferencePlan.run",
		"smol/internal/nn.InferencePlan.getArena",
		"smol/internal/tensor.gemmRange",
		"smol/internal/tensor.gemm4",
		"smol/internal/tensor.gemm1",
		"smol/internal/tensor.applyEpilogue",
		"smol/internal/tensor.gemmF32RangeAVX2",
		"smol/internal/tensor.packB16",
		"smol/internal/tensor.applyEpilogueAVX2",
		"smol/internal/tensor.Im2ColBatch")
}

// TestCompiledBatchSizeChange: the arena grows when a bigger batch
// arrives and keeps working for smaller ones (engine batches vary in
// size when a request does not fill the last batch).
func TestCompiledBatchSizeChange(t *testing.T) {
	m, plan, _ := compiledVariant(t, VariantA, 11)
	for _, batch := range []int{2, 32, 1, 8} {
		rng := rand.New(rand.NewSource(int64(batch)))
		x := tensor.New(batch, 3, 16, 16)
		fillRand(rng, x)
		want := m.Predict(x)
		got := plan.Predict(x)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("batch %d sample %d: %d != %d", batch, i, got[i], want[i])
			}
		}
	}
}

// TestCompileRejectsUnsupported: layer kinds outside the plan vocabulary
// produce an error (callers then fall back to Model.Forward).
func TestCompileRejectsUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []*Model{
		{Layers: []Layer{&MaxPool2{}}},
		{Layers: []Layer{NewLinear(rng, 4, 2), NewLinear(rng, 2, 2)}},
		{},
		// Conv with no terminal Linear.
		{Layers: []Layer{NewConv2D(rng, 3, 4, 3, 1, 1)}},
	} {
		if _, err := Compile(m); err == nil {
			t.Fatalf("Compile accepted unsupported model %+v", m)
		}
	}
}

// TestConvColCacheInvalidation: a stale cached column matrix whose row
// count no longer matches InC*K*K must be re-sized, not handed to Im2Col
// (which would panic).
func TestConvColCacheInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	conv := NewConv2D(rng, 2, 3, 3, 1, 1)
	x := randInput(rng, 1, 2, 5, 5)
	want := conv.Forward(x, false)
	// Poison the cache with a column matrix matching only on columns
	// (25 = outH*outW) with a wrong row count.
	conv.cols[0] = tensor.New(7, 25)
	got := conv.Forward(x, false)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("output %d changed after cache poisoning: %v != %v",
				i, got.Data[i], want.Data[i])
		}
	}
}
