package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"smol/internal/analysis/alloctest"
	"smol/internal/tensor"
)

// quantizedVariant builds a randomized variant model, calibrates it on a
// handful of random batches, and returns both precisions of the plan.
func quantizedVariant(t *testing.T, variant string, seed int64) (*InferencePlan, *QuantizedPlan) {
	t.Helper()
	_, plan, _ := compiledVariant(t, variant, seed)
	rng := rand.New(rand.NewSource(seed + 1000))
	var calibSet []*tensor.Tensor
	for i := 0; i < 4; i++ {
		x := tensor.New(8, 3, 16, 16)
		fillRand(rng, x)
		calibSet = append(calibSet, x)
	}
	cal, err := plan.Calibrate(calibSet)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := Quantize(plan, cal)
	if err != nil {
		t.Fatal(err)
	}
	return plan, qp
}

// TestQuantizedDriftBound: for every variant and batch size, int8 logits
// track the f32 plan within a small fraction of the logit range, and the
// two argmax decisions agree on the vast majority of samples. This is the
// compiled-vs-reference equivalence suite acting as the drift oracle.
func TestQuantizedDriftBound(t *testing.T) {
	for vi, variant := range Variants() {
		for _, batch := range []int{1, 8, 32} {
			t.Run(fmt.Sprintf("%s/batch%d", variant, batch), func(t *testing.T) {
				plan, qp := quantizedVariant(t, variant, int64(300+vi))
				rng := rand.New(rand.NewSource(int64(batch)))
				x := tensor.New(batch, 3, 16, 16)
				fillRand(rng, x)

				ref := plan.Forward(x)
				got := qp.Forward(x)
				if !tensor.SameShape(ref, got) {
					t.Fatalf("logits shape %v, want %v", got.Shape, ref.Shape)
				}
				span := float64(maxAbs32(ref.Data))
				var maxErr float64
				for i := range ref.Data {
					if e := math.Abs(float64(ref.Data[i] - got.Data[i])); e > maxErr {
						maxErr = e
					}
				}
				// Per-tensor activation scales on a random net keep drift in
				// the few-percent range; 10% of the logit span is the alarm
				// threshold for a broken scale chain, not a quality target.
				if tol := 0.1*span + 0.05; maxErr > tol {
					t.Fatalf("max logit drift %.4f exceeds %.4f (span %.4f)", maxErr, tol, span)
				}

				refPred := plan.Predict(x)
				gotPred := qp.Predict(x)
				agree := 0
				for i := range refPred {
					if refPred[i] == gotPred[i] {
						agree++
					}
				}
				if agree*10 < len(refPred)*8 {
					t.Fatalf("argmax agreement %d/%d below 80%%", agree, len(refPred))
				}
			})
		}
	}
}

// TestQuantizedDeterministicConcurrent runs one quantized plan from 8
// goroutines; int32 accumulation is exact, so every result must be
// identical to the serial answer. Under -race this also proves reentrancy.
func TestQuantizedDeterministicConcurrent(t *testing.T) {
	_, qp := quantizedVariant(t, VariantB, 42)
	const goroutines = 8
	inputs := make([]*tensor.Tensor, goroutines)
	want := make([][]int, goroutines)
	for g := range inputs {
		rng := rand.New(rand.NewSource(int64(g)))
		inputs[g] = tensor.New(4, 3, 16, 16)
		fillRand(rng, inputs[g])
		want[g] = qp.Predict(inputs[g])
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got := qp.Predict(inputs[g])
				for i := range got {
					if got[i] != want[g][i] {
						errs <- fmt.Errorf("goroutine %d iter %d sample %d: %d != %d",
							g, iter, i, got[i], want[g][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQuantizeZeroWeightChannel: an all-zero output channel must not
// produce a zero or infinite weight scale; its outputs stay exactly zero
// and the rest of the network is unaffected.
func TestQuantizeZeroWeightChannel(t *testing.T) {
	m, plan, _ := compiledVariant(t, VariantA, 55)
	// Zero the first conv's first output channel in the source model and
	// recompile so the folded plan carries the zero row.
	conv := m.Layers[0].(*Conv2D)
	ckk := conv.InC * conv.K * conv.K
	for i := 0; i < ckk; i++ {
		conv.W.Data[i] = 0
	}
	conv.B.Data[0] = 0
	if bn, ok := m.Layers[1].(*BatchNorm2D); ok {
		bn.RunMean.Data[0] = 0
		bn.Beta.Data[0] = 0
	}
	plan, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(56))
	x := tensor.New(4, 3, 16, 16)
	fillRand(rng, x)
	cal, err := plan.Calibrate([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	qp, err := Quantize(plan, cal)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range qp.ops {
		for _, s := range op.rowScale {
			if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) || s < 0 {
				t.Fatalf("non-finite row scale %v", s)
			}
		}
	}
	out := qp.Forward(x)
	for i, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("logit %d is %v", i, v)
		}
	}
}

// TestQuantizeCalibrationMismatch: a calibration from a different plan
// shape is rejected instead of silently mis-scaling.
func TestQuantizeCalibrationMismatch(t *testing.T) {
	_, plan, _ := compiledVariant(t, VariantA, 77)
	if _, err := Quantize(plan, QuantCalibration{InputScale: 1}); err == nil {
		t.Fatal("Quantize accepted a calibration with no activation scales")
	}
	cal := QuantCalibration{InputScale: 0, ActScales: make([]float32, len(plan.ops))}
	if _, err := Quantize(plan, cal); err == nil {
		t.Fatal("Quantize accepted a non-positive input scale")
	}
}

// TestQuantizedRoundTrip: rebuilding a quantized plan from the same f32
// model and persisted calibration reproduces logits bit-identically (the
// property zoo serialization relies on).
func TestQuantizedRoundTrip(t *testing.T) {
	_, plan, _ := compiledVariant(t, VariantA, 88)
	rng := rand.New(rand.NewSource(89))
	x := tensor.New(8, 3, 16, 16)
	fillRand(rng, x)
	cal, err := plan.Calibrate([]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	qp1, err := Quantize(plan, cal)
	if err != nil {
		t.Fatal(err)
	}
	qp2, err := Quantize(plan, cal)
	if err != nil {
		t.Fatal(err)
	}
	a, b := qp1.Forward(x), qp2.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("logit %d differs across rebuilds: %v != %v", i, a.Data[i], b.Data[i])
		}
	}
}

// TestQuantizedWarmForwardAllocs: once warm, the int8 PredictInto runs out
// of the recycled byte arena. With GOMAXPROCS pinned to 1 GEMMInt8 stays
// serial, so one warm forward transitively exercises every annotated int8
// kernel below it.
func TestQuantizedWarmForwardAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops puts under -race")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	_, qp := quantizedVariant(t, VariantA, 7)
	x := tensor.New(8, 3, 16, 16)
	fillRand(rand.New(rand.NewSource(1)), x)
	preds := make([]int, 8)
	qp.PredictInto(x, preds) // warm the arena pool
	alloctest.Run(t, "smol/internal/nn.QuantizedPlan.PredictInto", 0.5, func() {
		qp.PredictInto(x, preds)
	},
		"smol/internal/nn.QuantizedPlan.run",
		"smol/internal/nn.QuantizedPlan.getArena",
		"smol/internal/tensor.gemmInt8Range",
		"smol/internal/tensor.gemmInt8Block",
		"smol/internal/tensor.gemmInt8OddK",
		"smol/internal/tensor.requantizeInt8",
		"smol/internal/tensor.roundClampInt8",
		"smol/internal/tensor.QuantizeInt8",
		"smol/internal/tensor.Im2ColBatchInt8")
}
