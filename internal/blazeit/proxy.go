// Proxy scoring for selection (LIMIT) queries: a cheap model assigns every
// frame a raw score, the raw scores are mapped to per-class confidences, and
// only the highest-confidence candidates are verified by the expensive
// target model. Raw scores are class-independent so one persisted score
// table serves every class and stride; per-GOP min/max summaries of the raw
// scores give a sound upper bound on any frame's class confidence inside
// the GOP, which is what lets a selection query skip whole GOPs without
// touching their frames (store-level predicate pushdown).
package blazeit

import (
	"math"
	"sort"

	"smol/internal/img"
)

// BlobProxyName names the BlobCounter proxy in persisted score tables.
// Zoo-entry proxies are named by their entry name ("variant@res[/int8]").
const BlobProxyName = "blob"

// Score returns the counter's raw proxy score for a frame: the blob count
// as a float. Under the counting-zoo convention (class index == objects per
// frame) the raw score doubles as a class prediction, which is what makes
// the counter a usable selection proxy and aggregation control variate.
func (b BlobCounter) Score(m *img.Image) float64 {
	return float64(b.Count(m))
}

// ClassScore maps a raw proxy score to a confidence in (0, 1] that the
// frame shows the given class: 1 at an exact hit, decaying with the
// distance between the raw score and the class index.
func ClassScore(raw float64, class int) float64 {
	return 1 / (1 + math.Abs(raw-float64(class)))
}

// ClassScoreBound returns an upper bound on ClassScore(raw, class) over any
// raw score in [min, max]. ClassScore is unimodal in raw with its peak at
// the class index, so the bound is 1 when the class lies inside the range
// and the score of the nearest endpoint otherwise. A GOP whose bound falls
// below the query's confidence floor cannot contain a candidate and is
// never decoded.
func ClassScoreBound(min, max float64, class int) float64 {
	c := float64(class)
	switch {
	case c < min:
		return ClassScore(min, class)
	case c > max:
		return ClassScore(max, class)
	default:
		return 1
	}
}

// Candidate is one frame surviving the proxy confidence floor.
type Candidate struct {
	// Frame is the frame index in the stream.
	Frame int
	// Score is the frame's class confidence from the proxy.
	Score float64
}

// RankCandidates orders candidates for verification: score descending,
// frame ascending on ties. The order is total (frame indices are unique),
// so the cascade and the full-scan oracle verify in exactly the same
// sequence and an early-terminating top-K is deterministic.
func RankCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Frame < cands[j].Frame
	})
}
