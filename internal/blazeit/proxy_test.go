package blazeit

import (
	"math/rand"
	"sort"
	"testing"
)

// TestClassScoreShape: the class score must peak at raw == class, fall off
// monotonically with distance, and stay in (0, 1].
func TestClassScoreShape(t *testing.T) {
	if got := ClassScore(3, 3); got != 1 {
		t.Fatalf("exact match scores %g, want 1", got)
	}
	for _, class := range []int{0, 1, 5} {
		prev := ClassScore(float64(class), class)
		for d := 0.5; d < 8; d += 0.5 {
			lo := ClassScore(float64(class)-d, class)
			hi := ClassScore(float64(class)+d, class)
			if lo != hi {
				t.Fatalf("class %d: asymmetric at distance %g: %g vs %g", class, d, lo, hi)
			}
			if hi >= prev || hi <= 0 || hi > 1 {
				t.Fatalf("class %d distance %g: score %g not decreasing in (0, 1]", class, d, hi)
			}
			prev = hi
		}
	}
}

// TestClassScoreBoundSound: the GOP bound must dominate the score of every
// raw value inside [min, max] — the soundness condition GOP pruning rests
// on — and be exactly attained at the nearest endpoint (or 1 when the
// class sits inside the range).
func TestClassScoreBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		a, b := rng.Float64()*10-2, rng.Float64()*10-2
		lo, hi := min(a, b), max(a, b)
		class := rng.Intn(8)
		bound := ClassScoreBound(lo, hi, class)
		if c := float64(class); c >= lo && c <= hi && bound != 1 {
			t.Fatalf("class %d inside [%g, %g] bounds %g, want 1", class, lo, hi, bound)
		}
		for i := 0; i <= 64; i++ {
			raw := min(max(lo+(hi-lo)*float64(i)/64, lo), hi)
			if sc := ClassScore(raw, class); sc > bound {
				t.Fatalf("raw %g in [%g, %g] scores %g above bound %g for class %d",
					raw, lo, hi, sc, bound, class)
			}
		}
		// Outside the range the bound is the nearest endpoint's score — it
		// must be attainable, not just an over-estimate.
		if bound != 1 && bound != ClassScore(lo, class) && bound != ClassScore(hi, class) {
			t.Fatalf("bound %g for class %d over [%g, %g] attained nowhere", bound, class, lo, hi)
		}
	}
}

// TestRankCandidatesDeterministic: ranking is a total order — descending
// score, ties broken by ascending frame — so any permutation of the same
// candidates ranks identically.
func TestRankCandidatesDeterministic(t *testing.T) {
	base := []Candidate{
		{Frame: 30, Score: 0.5}, {Frame: 10, Score: 0.5}, {Frame: 20, Score: 0.9},
		{Frame: 5, Score: 0.1}, {Frame: 40, Score: 0.9}, {Frame: 0, Score: 0.5},
	}
	want := append([]Candidate(nil), base...)
	RankCandidates(want)
	if want[0].Frame != 20 || want[1].Frame != 40 {
		t.Fatalf("top of ranking = %v, want frames 20, 40", want[:2])
	}
	for i := 1; i < len(want); i++ {
		if want[i].Score > want[i-1].Score {
			t.Fatalf("rank %d score %g above rank %d score %g", i, want[i].Score, i-1, want[i-1].Score)
		}
		if want[i].Score == want[i-1].Score && want[i].Frame < want[i-1].Frame {
			t.Fatalf("tie at score %g breaks frame order: %d before %d", want[i].Score, want[i-1].Frame, want[i].Frame)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		got := append([]Candidate(nil), base...)
		rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
		RankCandidates(got)
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].Score != got[j].Score {
				return got[i].Score > got[j].Score
			}
			return got[i].Frame < got[j].Frame
		}) {
			t.Fatalf("trial %d: ranking not in canonical order: %v", trial, got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: permutation ranked differently at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}
