package blazeit

import (
	"math"
	"math/rand"
	"testing"

	"smol/internal/data"
	"smol/internal/img"
)

func TestBlobCounterOnSyntheticFrames(t *testing.T) {
	spec, err := data.VideoDataset("taipei")
	if err != nil {
		t.Fatal(err)
	}
	spec.Frames = 120
	v := data.GenerateVideo(spec)
	counter := DefaultCounter(spec.W)
	var absErr, n float64
	for i, f := range v.Frames {
		pred := counter.Count(f)
		absErr += math.Abs(float64(pred - v.Counts[i]))
		n++
	}
	mae := absErr / n
	if mae > 1.5 {
		t.Fatalf("blob counter MAE %v too high to serve as specialized model", mae)
	}
}

func TestBlobCounterResolutionDegradation(t *testing.T) {
	// The counter should be at least as accurate on full-resolution frames
	// as on low-resolution ones (the accuracy/throughput trade-off).
	spec, err := data.VideoDataset("rialto")
	if err != nil {
		t.Fatal(err)
	}
	spec.Frames = 100
	v := data.GenerateVideo(spec)
	low := v.LowResFrames()
	fullC := DefaultCounter(spec.W)
	lowC := DefaultCounter(spec.LowW)
	var fullErr, lowErr float64
	for i := range v.Frames {
		fullErr += math.Abs(float64(fullC.Count(v.Frames[i]) - v.Counts[i]))
		lowErr += math.Abs(float64(lowC.Count(low[i]) - v.Counts[i]))
	}
	if lowErr < fullErr {
		t.Logf("note: low-res counter outperformed full-res (%v < %v)", lowErr, fullErr)
	}
	// Both must remain usable.
	if fullErr/float64(len(v.Frames)) > 1.5 {
		t.Fatalf("full-res MAE %v too high", fullErr/float64(len(v.Frames)))
	}
}

func TestBlobCounterSimpleScenes(t *testing.T) {
	// Empty frame: zero blobs.
	m := img.New(64, 64)
	c := BlobCounter{Threshold: 128, MinArea: 4}
	if got := c.Count(m); got != 0 {
		t.Fatalf("empty frame counted %d", got)
	}
	// Two separated bright squares: two blobs.
	for _, origin := range [][2]int{{8, 8}, {40, 40}} {
		for y := origin[1]; y < origin[1]+6; y++ {
			for x := origin[0]; x < origin[0]+6; x++ {
				m.Set(x, y, 250, 250, 250)
			}
		}
	}
	if got := c.Count(m); got != 2 {
		t.Fatalf("two squares counted %d", got)
	}
	// A dot below MinArea is ignored.
	m.Set(0, 0, 255, 255, 255)
	if got := c.Count(m); got != 2 {
		t.Fatalf("noise dot changed count to %d", got)
	}
}

// syntheticTruth builds per-frame truth and a spec predictor with
// controllable residual noise.
func syntheticTruth(rng *rand.Rand, n int, noise float64) (truth []int, spec []float64) {
	truth = make([]int, n)
	spec = make([]float64, n)
	for i := range truth {
		truth[i] = rng.Intn(5)
		spec[i] = float64(truth[i]) + rng.NormFloat64()*noise
	}
	return truth, spec
}

func TestEstimateMeanConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth, spec := syntheticTruth(rng, 5000, 0.5)
	var actual float64
	for _, v := range truth {
		actual += float64(v)
	}
	actual /= float64(len(truth))

	res, err := EstimateMean(spec, func(f int) float64 { return float64(truth[f]) },
		Config{ErrTarget: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-actual) > 0.1 {
		t.Fatalf("estimate %v vs actual %v", res.Estimate, actual)
	}
	if res.Samples >= len(truth) {
		t.Fatal("estimator sampled every frame; control variate gave no savings")
	}
}

func TestBetterSpecNeedsFewerSamples(t *testing.T) {
	// BlazeIt's core scaling: lower residual variance -> fewer samples.
	rng := rand.New(rand.NewSource(3))
	truth, goodSpec := syntheticTruth(rng, 8000, 0.3)
	_, badSpec := syntheticTruth(rng, 8000, 1.5)
	oracle := func(f int) float64 { return float64(truth[f]) }
	cfg := Config{ErrTarget: 0.05, Seed: 4}
	good, err := EstimateMean(goodSpec, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := EstimateMean(badSpec[:len(truth)], func(f int) float64 { return float64(truth[f]) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if good.Samples >= bad.Samples {
		t.Fatalf("good spec used %d samples, bad used %d", good.Samples, bad.Samples)
	}
}

func TestTighterErrorNeedsMoreSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth, spec := syntheticTruth(rng, 8000, 0.8)
	oracle := func(f int) float64 { return float64(truth[f]) }
	loose, err := EstimateMean(spec, oracle, Config{ErrTarget: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := EstimateMean(spec, oracle, Config{ErrTarget: 0.02, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Samples <= loose.Samples {
		t.Fatalf("tight target used %d samples, loose used %d", tight.Samples, loose.Samples)
	}
}

func TestEstimateRespectsErrorBound(t *testing.T) {
	// Across many seeds, the estimate should fall within the error target
	// of the truth at roughly the configured confidence.
	rng := rand.New(rand.NewSource(7))
	truth, spec := syntheticTruth(rng, 6000, 0.7)
	var actual float64
	for _, v := range truth {
		actual += float64(v)
	}
	actual /= float64(len(truth))
	oracle := func(f int) float64 { return float64(truth[f]) }
	const trials = 40
	miss := 0
	for s := int64(0); s < trials; s++ {
		res, err := EstimateMean(spec, oracle, Config{ErrTarget: 0.05, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Estimate-actual) > 0.05 {
			miss++
		}
	}
	// 95% confidence: expect ~2 misses in 40; allow generous slack.
	if miss > 8 {
		t.Fatalf("%d of %d trials violated the error bound", miss, trials)
	}
}

func TestEstimateMeanValidation(t *testing.T) {
	if _, err := EstimateMean(nil, func(int) float64 { return 0 }, Config{ErrTarget: 0.1}); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := EstimateMean([]float64{1}, func(int) float64 { return 0 }, Config{}); err == nil {
		t.Fatal("zero error target should error")
	}
}

func TestPerfectSpecZeroVariance(t *testing.T) {
	// A perfect specialized model ends sampling at MinSamples.
	spec := make([]float64, 1000)
	for i := range spec {
		spec[i] = float64(i % 3)
	}
	res, err := EstimateMean(spec, func(f int) float64 { return spec[f] },
		Config{ErrTarget: 0.01, MinSamples: 25, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 25 {
		t.Fatalf("perfect spec sampled %d frames, want MinSamples=25", res.Samples)
	}
}

func TestSpecQuality(t *testing.T) {
	truth := []int{1, 2, 3, 4}
	spec := []float64{1.5, 2.5, 3.5, 4.5}
	v, bias := SpecQuality(spec, truth)
	if math.Abs(bias+0.5) > 1e-12 {
		t.Fatalf("bias = %v, want -0.5", bias)
	}
	if v > 1e-12 {
		t.Fatalf("variance = %v, want 0 (constant offset)", v)
	}
}

func TestQueryCost(t *testing.T) {
	q := QueryCost{SpecPassUSPerFrame: 100, TargetUSPerInvocation: 250000}
	// 1000 frames + 10 samples: 0.1s + 2.5s.
	got := q.TotalSeconds(1000, 10)
	if math.Abs(got-2.6) > 1e-9 {
		t.Fatalf("cost = %v", got)
	}
}

// BenchmarkBlobCounter measures the cheap specialized model on a realistic
// frame size — the per-frame cost of the aggregation query's full pass.
func BenchmarkBlobCounter(b *testing.B) {
	m := img.New(160, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 160; x++ {
			m.Set(x, y, uint8(60+x), uint8(70+y), 90)
		}
	}
	for k := 0; k < 4; k++ {
		for dy := 0; dy < 8; dy++ {
			for dx := 0; dx < 12; dx++ {
				m.Set(20+k*35+dx, 30+dy, 250, 240, 200)
			}
		}
	}
	counter := DefaultCounter(160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if counter.Count(m) == 0 {
			b.Fatal("counter lost the blobs")
		}
	}
}

// BenchmarkEstimateMean measures the estimator loop itself (oracle cost
// excluded) at aggregation-query scale.
func BenchmarkEstimateMean(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	spec := make([]float64, 5000)
	truth := make([]float64, 5000)
	for i := range spec {
		truth[i] = float64(rng.Intn(4))
		spec[i] = truth[i] + rng.NormFloat64()*0.5
	}
	oracle := func(f int) float64 { return truth[f] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateMean(spec, oracle, Config{ErrTarget: 0.05, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
