// Package blazeit implements BlazeIt-style approximate aggregation queries
// over video (Kang et al., VLDB 2019), the second query system Smol is
// integrated into (§3.2): estimate the mean number of target objects per
// frame to within an error bound, using a cheap specialized model as a
// control variate to reduce the number of expensive target-model
// invocations.
//
// The specialized model here is a real computer-vision algorithm (threshold
// + connected components) run on real decoded frames; the expensive target
// model is a ground-truth oracle with a calibrated per-frame cost (the
// paper's Mask R-CNN at 3-5 fps).
package blazeit

import (
	"fmt"
	"math"
	"math/rand"

	"smol/internal/img"
	"smol/internal/stats"
)

// BlobCounter counts bright connected components — a specialized NN
// stand-in whose accuracy genuinely degrades with resolution and scene
// darkness, as specialized NNs do.
type BlobCounter struct {
	// Threshold is the minimum luma for an object pixel.
	Threshold uint8
	// MinArea is the minimum component area in pixels (filters noise).
	MinArea int
}

// DefaultCounter returns a counter tuned for the synthetic videos at the
// given frame width (area threshold scales with resolution).
func DefaultCounter(frameW int) BlobCounter {
	area := frameW * frameW / 1600
	if area < 2 {
		area = 2
	}
	return BlobCounter{Threshold: 140, MinArea: area}
}

// Count returns the number of connected bright components in the frame.
func (b BlobCounter) Count(m *img.Image) int {
	w, h := m.W, m.H
	mask := make([]bool, w*h)
	for i := 0; i < w*h; i++ {
		luma := 0.299*float64(m.Pix[i*3]) + 0.587*float64(m.Pix[i*3+1]) + 0.114*float64(m.Pix[i*3+2])
		mask[i] = luma >= float64(b.Threshold)
	}
	seen := make([]bool, w*h)
	var stack []int
	count := 0
	for start := 0; start < w*h; start++ {
		if !mask[start] || seen[start] {
			continue
		}
		// Flood fill.
		area := 0
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			area++
			x, y := i%w, i/w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if mask[j] && !seen[j] {
					seen[j] = true
					stack = append(stack, j)
				}
			}
		}
		if area >= b.MinArea {
			count++
		}
	}
	return count
}

// Oracle returns the expensive target model's answer for a frame index.
type Oracle func(frame int) float64

// Result summarizes one aggregation query execution.
type Result struct {
	// Estimate is the estimated mean objects per frame.
	Estimate float64
	// Samples is the number of target-model invocations used.
	Samples int
	// HalfWidth is the final confidence interval half-width.
	HalfWidth float64
}

// Config controls the estimator.
type Config struct {
	// ErrTarget is the requested absolute error (CI half-width).
	ErrTarget float64
	// Z is the normal quantile for the confidence level (1.96 = 95%).
	Z float64
	// MinSamples guards the initial variance estimate.
	MinSamples int
	// MaxSamples caps the sampling loop (0 = number of frames).
	MaxSamples int
	// Seed drives the sampling order.
	Seed int64
}

func (c Config) withDefaults(n int) Config {
	if c.Z == 0 {
		c.Z = 1.96
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 30
	}
	if c.MaxSamples <= 0 || c.MaxSamples > n {
		c.MaxSamples = n
	}
	return c
}

// EstimateMean runs the control-variate estimator: specPreds holds the
// specialized model's prediction for every frame (the cheap full pass);
// oracle is the expensive target model, sampled without replacement until
// the CI half-width meets cfg.ErrTarget.
//
//	E[target] ≈ mean(spec) + mean_sampled(target - spec)
//
// The better the specialized model, the smaller Var(target - spec) and the
// fewer samples needed — BlazeIt's core insight, and the reason Smol's more
// accurate specialized NNs shrink query time (§8.4).
func EstimateMean(specPreds []float64, oracle Oracle, cfg Config) (Result, error) {
	n := len(specPreds)
	if n == 0 {
		return Result{}, fmt.Errorf("blazeit: no frames")
	}
	if cfg.ErrTarget <= 0 {
		return Result{}, fmt.Errorf("blazeit: error target must be positive")
	}
	cfg = cfg.withDefaults(n)
	specMean := stats.Mean(specPreds)

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)
	var acc stats.Accumulator
	var hw float64
	i := 0
	for ; i < cfg.MaxSamples; i++ {
		f := order[i]
		acc.Add(oracle(f) - specPreds[f])
		if i+1 >= cfg.MinSamples {
			hw = stats.CIHalfWidth(acc.Variance(), acc.N(), cfg.Z)
			// Finite population correction: sampling without replacement
			// from n frames shrinks the CI as the sample approaches n.
			fpc := math.Sqrt(float64(n-acc.N()) / float64(n-1))
			hw *= fpc
			if hw <= cfg.ErrTarget {
				i++
				break
			}
		}
	}
	return Result{
		Estimate:  specMean + acc.Mean(),
		Samples:   acc.N(),
		HalfWidth: hw,
	}, nil
}

// SpecQuality summarizes how good a specialized model is as a control
// variate on a labelled prefix: the variance of (truth - spec) drives
// sample counts.
func SpecQuality(specPreds []float64, truth []int) (residualVar float64, bias float64) {
	if len(specPreds) != len(truth) {
		panic("blazeit: length mismatch")
	}
	var acc stats.Accumulator
	for i := range truth {
		acc.Add(float64(truth[i]) - specPreds[i])
	}
	return acc.Variance(), acc.Mean()
}

// QueryCost models the wall-clock cost of one aggregation query:
// a full cheap pass (decode + specialized model on every frame) plus the
// sampled expensive invocations.
type QueryCost struct {
	// SpecPassUSPerFrame is decode+spec cost per frame in us (across all
	// workers, i.e. already divided by parallelism).
	SpecPassUSPerFrame float64
	// TargetUSPerInvocation is the target model cost per sampled frame.
	TargetUSPerInvocation float64
}

// TotalSeconds returns the modeled query runtime.
func (q QueryCost) TotalSeconds(frames, samples int) float64 {
	return (float64(frames)*q.SpecPassUSPerFrame + float64(samples)*q.TargetUSPerInvocation) / 1e6
}
