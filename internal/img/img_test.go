package img

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomImage(rng *rand.Rand, w, h int) *Image {
	m := New(w, h)
	rng.Read(m.Pix)
	return m
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 5)
}

func TestSetAt(t *testing.T) {
	m := New(4, 3)
	m.Set(2, 1, 10, 20, 30)
	r, g, b := m.At(2, 1)
	if r != 10 || g != 20 || b != 30 {
		t.Fatalf("got %d,%d,%d", r, g, b)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1, 2, 3)
	c := m.Clone()
	c.Set(0, 0, 9, 9, 9)
	r, _, _ := m.At(0, 0)
	if r != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("got %+v", got)
	}
	if !a.Intersect(Rect{20, 20, 30, 30}).Empty() {
		t.Fatal("disjoint rects should intersect empty")
	}
}

func TestRectAlignTo(t *testing.T) {
	r := Rect{X0: 3, Y0: 9, X1: 18, Y1: 21}
	got := r.AlignTo(8, 100, 100)
	want := Rect{X0: 0, Y0: 8, X1: 24, Y1: 24}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// Clipping to image bounds.
	got = Rect{X0: 60, Y0: 60, X1: 70, Y1: 70}.AlignTo(8, 64, 64)
	want = Rect{X0: 56, Y0: 56, X1: 64, Y1: 64}
	if got != want {
		t.Fatalf("clipped: got %+v, want %+v", got, want)
	}
}

func TestCenterCropRect(t *testing.T) {
	r := CenterCropRect(256, 341, 224, 224)
	if r.W() != 224 || r.H() != 224 {
		t.Fatalf("dims %dx%d", r.W(), r.H())
	}
	if r.X0 != 16 || r.Y0 != 58 {
		t.Fatalf("origin %d,%d", r.X0, r.Y0)
	}
	// Oversized crop clips to the image.
	r = CenterCropRect(100, 100, 300, 50)
	if r.W() != 100 || r.H() != 50 {
		t.Fatalf("clipped dims %dx%d", r.W(), r.H())
	}
}

func TestCrop(t *testing.T) {
	m := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			m.Set(x, y, uint8(x), uint8(y), 0)
		}
	}
	c := m.Crop(Rect{2, 3, 6, 7})
	if c.W != 4 || c.H != 4 {
		t.Fatalf("dims %dx%d", c.W, c.H)
	}
	r, g, _ := c.At(0, 0)
	if r != 2 || g != 3 {
		t.Fatalf("origin pixel %d,%d", r, g)
	}
	r, g, _ = c.At(3, 3)
	if r != 5 || g != 6 {
		t.Fatalf("far pixel %d,%d", r, g)
	}
}

func TestResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomImage(rng, 13, 7)
	out := m.ResizeBilinear(13, 7)
	if !bytes.Equal(out.Pix, m.Pix) {
		t.Fatal("identity resize should copy exactly")
	}
}

func TestResizeConstantImage(t *testing.T) {
	m := New(16, 16)
	for i := range m.Pix {
		m.Pix[i] = 77
	}
	out := m.ResizeBilinear(5, 9)
	for i, p := range out.Pix {
		if p != 77 {
			t.Fatalf("pixel %d = %d, want 77", i, p)
		}
	}
}

func TestResizeDownUpRoundTrip(t *testing.T) {
	// A smooth gradient should round-trip a 2x down/up cycle with small error.
	m := New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			m.Set(x, y, uint8(2*x), uint8(2*y), uint8(x+y))
		}
	}
	down := m.ResizeBilinear(32, 32)
	up := down.ResizeBilinear(64, 64)
	if d := MeanAbsDiff(m, up); d > 3 {
		t.Fatalf("round-trip MAD = %v", d)
	}
}

func TestAspectPreservingSize(t *testing.T) {
	cases := []struct{ w, h, s, ww, wh int }{
		{500, 375, 256, 341, 256},
		{375, 500, 256, 256, 341},
		{100, 100, 50, 50, 50},
	}
	for _, c := range cases {
		w, h := AspectPreservingSize(c.w, c.h, c.s)
		if w != c.ww || h != c.wh {
			t.Errorf("AspectPreservingSize(%d,%d,%d) = %d,%d want %d,%d",
				c.w, c.h, c.s, w, h, c.ww, c.wh)
		}
	}
}

func TestResizeShortEdge(t *testing.T) {
	m := New(100, 50)
	out := m.ResizeShortEdge(25)
	if out.H != 25 || out.W != 50 {
		t.Fatalf("dims %dx%d", out.W, out.H)
	}
}

func TestMeanAbsDiffAndPSNR(t *testing.T) {
	a := New(4, 4)
	b := a.Clone()
	if MeanAbsDiff(a, b) != 0 {
		t.Fatal("identical images should have MAD 0")
	}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("identical images should have infinite PSNR")
	}
	b.Pix[0] = 255
	if MeanAbsDiff(a, b) == 0 {
		t.Fatal("differing images should have MAD > 0")
	}
	if p := PSNR(a, b); p <= 0 || math.IsInf(p, 1) {
		t.Fatalf("PSNR = %v", p)
	}
}

func TestPPMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomImage(rng, 31, 17)
	var buf bytes.Buffer
	if err := WritePPM(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != m.W || got.H != m.H || !bytes.Equal(got.Pix, m.Pix) {
		t.Fatal("PPM round trip mismatch")
	}
}

func TestReadPPMRejectsGarbage(t *testing.T) {
	if _, err := ReadPPM(bytes.NewBufferString("P5\n1 1\n255\nx")); err == nil {
		t.Fatal("expected error for P5")
	}
	if _, err := ReadPPM(bytes.NewBufferString("P6\n-3 1\n255\n")); err == nil {
		t.Fatal("expected error for negative width")
	}
	if _, err := ReadPPM(bytes.NewBufferString("P6\n2 2\n255\nxy")); err == nil {
		t.Fatal("expected error for truncated pixels")
	}
}

func TestClamp(t *testing.T) {
	if Clamp8(-5) != 0 || Clamp8(300) != 255 || Clamp8(42) != 42 {
		t.Fatal("Clamp8 broken")
	}
	if ClampF(-0.4) != 0 || ClampF(254.6) != 255 || ClampF(41.5) != 42 {
		t.Fatal("ClampF broken")
	}
}

// Property: cropping to an aligned ROI then reading a pixel equals reading
// the same pixel from the original.
func TestCropPreservesPixels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomImage(r, 16+r.Intn(32), 16+r.Intn(32))
		x0, y0 := r.Intn(m.W-8), r.Intn(m.H-8)
		rect := Rect{x0, y0, x0 + 8, y0 + 8}
		c := m.Crop(rect)
		for i := 0; i < 10; i++ {
			x, y := r.Intn(8), r.Intn(8)
			cr, cg, cb := c.At(x, y)
			or, og, ob := m.At(x0+x, y0+y)
			if cr != or || cg != og || cb != ob {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRectShift(t *testing.T) {
	r := Rect{X0: 1, Y0: 2, X1: 5, Y1: 7}
	got := r.Shift(10, -2)
	want := Rect{X0: 11, Y0: 0, X1: 15, Y1: 5}
	if got != want {
		t.Fatalf("Shift = %+v, want %+v", got, want)
	}
	if got.W() != r.W() || got.H() != r.H() {
		t.Fatal("Shift must preserve size")
	}
}
