package img

import "math"

func inf() float64            { return math.Inf(1) }
func log10(x float64) float64 { return math.Log10(x) }

// Clamp8 clamps an integer to the uint8 range.
func Clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// ClampF clamps a float to the uint8 range with rounding.
func ClampF(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}
