// Package img provides the 8-bit RGB image type shared by the codecs and the
// preprocessing pipeline, together with the geometric primitives (resize,
// crop) that visual DNN preprocessing is built from.
//
// Pixels are stored interleaved (R, G, B, R, G, B, ...) in row-major order,
// the layout produced by decoders and consumed by the preprocessing DAG.
package img

import "fmt"

// Image is an 8-bit interleaved RGB image.
type Image struct {
	W, H int
	// Pix holds W*H*3 bytes in RGBRGB... row-major order.
	Pix []uint8
}

// New allocates a zeroed (black) image of the given dimensions.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// Reset reshapes m to w x h, reusing the existing pixel buffer when it has
// capacity (the contents become undefined). Decoders use it to fill
// caller-owned images without reallocating on warm serving paths.
func (m *Image) Reset(w, h int) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	m.W, m.H = w, h
	n := w * h * 3
	if cap(m.Pix) < n {
		m.Pix = make([]uint8, n)
	} else {
		m.Pix = m.Pix[:n]
	}
}

// At returns the RGB triple at (x, y). Out-of-bounds access panics via the
// underlying slice.
func (m *Image) At(x, y int) (r, g, b uint8) {
	i := (y*m.W + x) * 3
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set writes the RGB triple at (x, y).
func (m *Image) Set(x, y int, r, g, b uint8) {
	i := (y*m.W + x) * 3
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Pix: make([]uint8, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// Rect is an axis-aligned rectangle [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle's width.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the rectangle's height.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Intersect returns the intersection of r and o.
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: maxInt(r.X0, o.X0), Y0: maxInt(r.Y0, o.Y0),
		X1: minInt(r.X1, o.X1), Y1: minInt(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// AlignTo expands the rectangle outward so that all edges are multiples of
// block (used to align an ROI to the 8x8 JPEG macroblock grid, per the
// paper's Algorithm 1), then clips to [0,w) x [0,h).
func (r Rect) AlignTo(block, w, h int) Rect {
	out := Rect{
		X0: (r.X0 / block) * block,
		Y0: (r.Y0 / block) * block,
		X1: ((r.X1 + block - 1) / block) * block,
		Y1: ((r.Y1 + block - 1) / block) * block,
	}
	if out.X0 < 0 {
		out.X0 = 0
	}
	if out.Y0 < 0 {
		out.Y0 = 0
	}
	if out.X1 > w {
		out.X1 = w
	}
	if out.Y1 > h {
		out.Y1 = h
	}
	return out
}

// CenterCropRect returns the centered cw x ch rectangle within an image of
// dimensions w x h. If the crop is larger than the image it is clipped.
func CenterCropRect(w, h, cw, ch int) Rect {
	if cw > w {
		cw = w
	}
	if ch > h {
		ch = h
	}
	x0 := (w - cw) / 2
	y0 := (h - ch) / 2
	return Rect{X0: x0, Y0: y0, X1: x0 + cw, Y1: y0 + ch}
}

// Shift translates the rectangle by (dx, dy).
func (r Rect) Shift(dx, dy int) Rect {
	return Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
}

// Crop returns a copy of the subimage described by r, clipped to the image
// bounds. It panics if the clipped rectangle is empty.
func (m *Image) Crop(r Rect) *Image {
	r = r.Intersect(Rect{X1: m.W, Y1: m.H})
	if r.Empty() {
		panic("img: empty crop")
	}
	out := New(r.W(), r.H())
	for y := r.Y0; y < r.Y1; y++ {
		src := m.Pix[(y*m.W+r.X0)*3 : (y*m.W+r.X1)*3]
		dst := out.Pix[(y-r.Y0)*out.W*3:]
		copy(dst, src)
	}
	return out
}

// ResizeBilinear resizes the image to w x h using bilinear interpolation.
func (m *Image) ResizeBilinear(w, h int) *Image {
	out := New(w, h)
	ResizeBilinearInto(m, out)
	return out
}

// ResizeBilinearInto resizes src into dst (whose dimensions define the target
// size), reusing dst's pixel buffer. This is the allocation-free path used by
// the runtime engine's buffer-reuse optimization.
func ResizeBilinearInto(src, dst *Image) {
	if src.W == dst.W && src.H == dst.H {
		copy(dst.Pix, src.Pix)
		return
	}
	xRatio := float64(src.W) / float64(dst.W)
	yRatio := float64(src.H) / float64(dst.H)
	for y := 0; y < dst.H; y++ {
		sy := (float64(y)+0.5)*yRatio - 0.5
		if sy < 0 {
			sy = 0
		}
		y0 := int(sy)
		y1 := y0 + 1
		if y1 >= src.H {
			y1 = src.H - 1
		}
		fy := sy - float64(y0)
		row0 := src.Pix[y0*src.W*3:]
		row1 := src.Pix[y1*src.W*3:]
		drow := dst.Pix[y*dst.W*3:]
		for x := 0; x < dst.W; x++ {
			sx := (float64(x)+0.5)*xRatio - 0.5
			if sx < 0 {
				sx = 0
			}
			x0 := int(sx)
			x1 := x0 + 1
			if x1 >= src.W {
				x1 = src.W - 1
			}
			fx := sx - float64(x0)
			for c := 0; c < 3; c++ {
				p00 := float64(row0[x0*3+c])
				p01 := float64(row0[x1*3+c])
				p10 := float64(row1[x0*3+c])
				p11 := float64(row1[x1*3+c])
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				v := top + (bot-top)*fy
				drow[x*3+c] = uint8(v + 0.5)
			}
		}
	}
}

// ScaledDims returns the dimensions of an image downsampled by an integer
// factor, rounding partial edge boxes up — the output geometry of both
// DownsampleBoxInto and the JPEG codec's DCT-domain scaled decode.
func ScaledDims(w, h, factor int) (int, int) {
	if factor <= 1 {
		return w, h
	}
	return (w + factor - 1) / factor, (h + factor - 1) / factor
}

// DownsampleBoxInto box-averages src by an integer factor into dst, which
// is reshaped to ScaledDims(src.W, src.H, factor). Partial boxes at the
// right/bottom edges average only the pixels they cover. This is the
// reference semantics of reduced-resolution decoding: the codec's scaled
// DCT reconstruction approximates exactly this kernel.
func DownsampleBoxInto(src, dst *Image, factor int) {
	if factor <= 1 {
		dst.Reset(src.W, src.H)
		copy(dst.Pix, src.Pix)
		return
	}
	ow, oh := ScaledDims(src.W, src.H, factor)
	dst.Reset(ow, oh)
	for y := 0; y < oh; y++ {
		y0 := y * factor
		y1 := y0 + factor
		if y1 > src.H {
			y1 = src.H
		}
		for x := 0; x < ow; x++ {
			x0 := x * factor
			x1 := x0 + factor
			if x1 > src.W {
				x1 = src.W
			}
			var r, g, b, n int
			for sy := y0; sy < y1; sy++ {
				row := src.Pix[(sy*src.W+x0)*3 : (sy*src.W+x1)*3]
				for i := 0; i < len(row); i += 3 {
					r += int(row[i])
					g += int(row[i+1])
					b += int(row[i+2])
				}
			}
			n = (y1 - y0) * (x1 - x0)
			i := (y*ow + x) * 3
			dst.Pix[i] = uint8((r + n/2) / n)
			dst.Pix[i+1] = uint8((g + n/2) / n)
			dst.Pix[i+2] = uint8((b + n/2) / n)
		}
	}
}

// DownsampleBox returns a new image box-downsampled by an integer factor.
func (m *Image) DownsampleBox(factor int) *Image {
	out := &Image{}
	DownsampleBoxInto(m, out, factor)
	return out
}

// AspectPreservingSize returns the dimensions of an aspect-preserving resize
// such that the short edge equals shortEdge (the standard ImageNet-style
// "resize short side to 256" step).
func AspectPreservingSize(w, h, shortEdge int) (int, int) {
	if w <= 0 || h <= 0 {
		panic("img: invalid dimensions")
	}
	if w < h {
		return shortEdge, (h*shortEdge + w/2) / w
	}
	return (w*shortEdge + h/2) / h, shortEdge
}

// ResizeShortEdge performs an aspect-preserving bilinear resize so the short
// edge equals shortEdge.
func (m *Image) ResizeShortEdge(shortEdge int) *Image {
	w, h := AspectPreservingSize(m.W, m.H, shortEdge)
	return m.ResizeBilinear(w, h)
}

// MeanAbsDiff returns the mean absolute per-channel difference between two
// images of identical dimensions, a cheap fidelity metric used in codec
// tests. It panics on dimension mismatch.
func MeanAbsDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("img: MeanAbsDiff dimension mismatch")
	}
	var s float64
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		s += float64(d)
	}
	return s / float64(len(a.Pix))
}

// PSNR returns the peak signal-to-noise ratio in dB between two images of
// identical dimensions. Identical images return +Inf.
func PSNR(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("img: PSNR dimension mismatch")
	}
	var mse float64
	for i := range a.Pix {
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return inf()
	}
	return 10 * log10(255*255/mse)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
