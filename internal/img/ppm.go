package img

import (
	"bufio"
	"fmt"
	"io"
)

// WritePPM writes the image in binary PPM (P6) format, a trivially portable
// container used by the example programs for visual inspection.
func WritePPM(w io.Writer, m *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	if _, err := bw.Write(m.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPPM reads a binary PPM (P6) image.
func ReadPPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("img: reading PPM magic: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("img: unsupported PPM magic %q", magic)
	}
	var w, h, maxval int
	if _, err := fmt.Fscan(br, &w, &h, &maxval); err != nil {
		return nil, fmt.Errorf("img: reading PPM header: %w", err)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("img: unsupported PPM maxval %d", maxval)
	}
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return nil, fmt.Errorf("img: invalid PPM dimensions %dx%d", w, h)
	}
	// Exactly one whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	m := New(w, h)
	if _, err := io.ReadFull(br, m.Pix); err != nil {
		return nil, fmt.Errorf("img: reading PPM pixels: %w", err)
	}
	return m, nil
}
