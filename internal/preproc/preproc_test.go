package preproc

import (
	"math"
	"math/rand"
	"testing"

	"smol/internal/img"
	"smol/internal/tensor"
)

func testSpec() Spec {
	return Spec{
		InW: 100, InH: 80,
		ResizeShort: 64,
		CropW:       56, CropH: 56,
		Mean: [3]float32{0.485, 0.456, 0.406},
		Std:  [3]float32{0.229, 0.224, 0.225},
	}
}

func smoothImage(w, h int) *img.Image {
	m := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m.Set(x, y, uint8(x*255/w), uint8(y*255/h), uint8((x+y)*128/(w+h)))
		}
	}
	return m
}

func TestSpecValidate(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.Std[1] = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero std should fail")
	}
	bad = s
	bad.CropW = 200
	if err := bad.Validate(); err == nil {
		t.Fatal("crop > short edge should fail")
	}
}

func TestEnumeratePlansShape(t *testing.T) {
	plans := EnumeratePlans(testSpec())
	// 2 geom orders x {convert-early unfused, late unfused, late fused} = 6.
	if len(plans) != 6 {
		t.Fatalf("got %d plans", len(plans))
	}
	for _, p := range plans {
		if len(p.Ops) == 0 {
			t.Fatalf("empty plan %q", p.Name)
		}
	}
}

func TestPruneRules(t *testing.T) {
	s := testSpec()
	pruned := PruneRules(EnumeratePlans(s))
	for _, p := range pruned {
		if convertsBeforeResize(p) {
			t.Fatalf("pruned set contains float-resize plan %q", p.Name)
		}
		if !isFused(p) {
			t.Fatalf("pruned set contains unfused plan %q with a fused twin", p.Name)
		}
	}
	if len(pruned) != 2 {
		t.Fatalf("expected 2 surviving plans (fused, both geometric orders), got %d", len(pruned))
	}
}

func TestOptimizePicksCheapest(t *testing.T) {
	s := testSpec()
	best, err := Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	bestCost := PlanCost(best, s)
	for _, p := range EnumeratePlans(s) {
		if c := PlanCost(p, s); c < bestCost-1e-9 {
			t.Fatalf("optimize returned %q (%.0f) but %q costs %.0f", best.Name, bestCost, p.Name, c)
		}
	}
	// The optimized plan must beat the naive plan decisively.
	if naive := PlanCost(NaivePlan(s), s); naive <= bestCost {
		t.Fatalf("naive %.0f should cost more than optimized %.0f", naive, bestCost)
	}
}

func TestCostModelRules(t *testing.T) {
	s := testSpec()
	// Rule check: resize on float costs more than on u8.
	g8 := geometry{w: s.InW, h: s.InH}
	gF := geometry{w: s.InW, h: s.InH, isFloat: true}
	c8, _ := OpCost(Op{Kind: OpResizeShort, Short: 64}, g8)
	cF, _ := OpCost(Op{Kind: OpResizeShort, Short: 64}, gF)
	if cF <= c8 {
		t.Fatalf("float resize %.0f should cost more than u8 resize %.0f", cF, c8)
	}
	// Fused post must beat convert+normalize+reorder.
	fused, _ := OpCost(Op{Kind: OpFusedPost}, g8)
	cc, g2 := OpCost(Op{Kind: OpConvert}, g8)
	cn, g3 := OpCost(Op{Kind: OpNormalize}, g2)
	cr, _ := OpCost(Op{Kind: OpReorder}, g3)
	if fused >= cc+cn+cr {
		t.Fatalf("fused %.0f should beat unfused %.0f", fused, cc+cn+cr)
	}
}

func TestOpCostsAlignWithPlanCost(t *testing.T) {
	s := testSpec()
	p := NaivePlan(s)
	costs := OpCosts(p, s)
	var sum float64
	for _, c := range costs {
		sum += c
	}
	if math.Abs(sum-PlanCost(p, s)) > 1e-9 {
		t.Fatal("OpCosts must sum to PlanCost")
	}
	if len(costs) != len(p.Ops) {
		t.Fatal("one cost per op")
	}
}

func executePlan(t *testing.T, p Plan, m *img.Image, s Spec) *tensor.Tensor {
	t.Helper()
	out := tensor.New(OutputShape(s))
	if err := NewExecutor().Execute(p, m, out); err != nil {
		t.Fatalf("%q: %v", p.Name, err)
	}
	return out
}

func TestAllPlansProduceEquivalentOutput(t *testing.T) {
	s := testSpec()
	m := smoothImage(s.InW, s.InH)
	ref := executePlan(t, NaivePlan(s), m, s)
	for _, p := range EnumeratePlans(s) {
		got := executePlan(t, p, m, s)
		if !tensor.SameShape(ref, got) {
			t.Fatalf("%q: shape %v vs %v", p.Name, got.Shape, ref.Shape)
		}
		var maxDiff float64
		for i := range ref.Data {
			d := math.Abs(float64(ref.Data[i] - got.Data[i]))
			if d > maxDiff {
				maxDiff = d
			}
		}
		// Plans differ in interpolation order (crop-first resamples at a
		// slightly different grid), so equivalence is approximate — the
		// same approximation the paper's rule 3 makes.
		if maxDiff > 0.35 {
			t.Fatalf("%q: max deviation %v from reference", p.Name, maxDiff)
		}
	}
}

func TestExecuteNormalizationValues(t *testing.T) {
	// A constant mid-gray image must normalize to (0.5-mean)/std exactly.
	s := Spec{
		InW: 64, InH: 64, ResizeShort: 32, CropW: 32, CropH: 32,
		Mean: [3]float32{0.5, 0.25, 0.75},
		Std:  [3]float32{0.5, 0.5, 0.5},
	}
	m := img.New(64, 64)
	for i := range m.Pix {
		m.Pix[i] = 128 // ~0.502 after /255
	}
	for _, p := range []Plan{NaivePlan(s), mustOptimize(t, s)} {
		out := executePlan(t, p, m, s)
		n := 32 * 32
		for c := 0; c < 3; c++ {
			want := (float32(128)/255 - s.Mean[c]) / s.Std[c]
			for i := 0; i < n; i++ {
				got := out.Data[c*n+i]
				if math.Abs(float64(got-want)) > 1e-3 {
					t.Fatalf("%q: channel %d value %v, want %v", p.Name, c, got, want)
				}
			}
		}
	}
}

func mustOptimize(t *testing.T, s Spec) Plan {
	t.Helper()
	p, err := Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecutorReusesBuffers(t *testing.T) {
	s := testSpec()
	m := smoothImage(s.InW, s.InH)
	e := NewExecutor()
	p := mustOptimize(t, s)
	out := tensor.New(OutputShape(s))
	if err := e.Execute(p, m, out); err != nil {
		t.Fatal(err)
	}
	first := append([]float32(nil), out.Data...)
	// Second run with the same executor must produce identical output
	// (buffer reuse must not leak state).
	if err := e.Execute(p, m, out); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if out.Data[i] != first[i] {
			t.Fatal("executor state leaked between runs")
		}
	}
}

func TestExecuteRejectsWrongOutputSize(t *testing.T) {
	s := testSpec()
	m := smoothImage(s.InW, s.InH)
	out := tensor.New(3, 10, 10)
	if err := NewExecutor().Execute(mustOptimize(t, s), m, out); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestExecuteRejectsIncompletePlan(t *testing.T) {
	s := testSpec()
	m := smoothImage(s.InW, s.InH)
	p := Plan{Ops: []Op{{Kind: OpResizeShort, Short: 64}}}
	out := tensor.New(3, 56, 56)
	if err := NewExecutor().Execute(p, m, out); err == nil {
		t.Fatal("plan without CHW output should error")
	}
}

func TestPreResizeCropGeometry(t *testing.T) {
	s := testSpec() // in 100x80, short 64, crop 56
	w, h := preResizeCrop(s.InW, s.InH, s)
	// scale = 80/64 = 1.25; 56*1.25 = 70.
	if w != 70 || h != 70 {
		t.Fatalf("preResizeCrop = %dx%d, want 70x70", w, h)
	}
}

func TestF32ResizeMatchesU8Resize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := img.New(40, 30)
	rng.Read(m.Pix)
	u8out := m.ResizeBilinear(20, 15)

	f := make([]float32, 40*30*3)
	for i, p := range m.Pix {
		f[i] = float32(p)
	}
	fout := make([]float32, 20*15*3)
	resizeBilinearF32(f, 40, 30, fout, 20, 15)
	for i := range fout {
		if d := math.Abs(float64(fout[i]) - float64(u8out.Pix[i])); d > 1 {
			t.Fatalf("resize paths diverge at %d: %v vs %d", i, fout[i], u8out.Pix[i])
		}
	}
}

func hdSpec() Spec {
	return Spec{
		InW: 1920, InH: 1080,
		ResizeShort: 256,
		CropW:       224, CropH: 224,
		Mean:         [3]float32{0.485, 0.456, 0.406},
		Std:          [3]float32{0.229, 0.224, 0.225},
		DecodeScales: []int{1, 2, 4, 8},
	}
}

func TestEnumerateWithDecodeScales(t *testing.T) {
	s := hdSpec()
	plans := EnumeratePlans(s)
	// Legal scales for 1920x1080 -> short 256: 1 (1080), 2 (540), 4 (270);
	// 8 undershoots (135 < 256). 6 orderings each.
	if len(plans) != 18 {
		t.Fatalf("got %d plans, want 18", len(plans))
	}
	counts := map[int]int{}
	for _, p := range plans {
		if p.Ops[0].Kind != OpDecodeScale {
			t.Fatalf("plan %q does not start with a decode op", p.Name)
		}
		counts[p.DecodeScale()]++
	}
	if counts[1] != 6 || counts[2] != 6 || counts[4] != 6 || counts[8] != 0 {
		t.Fatalf("plans per scale: %v", counts)
	}
	// Without DecodeScales the space is unchanged (no decode ops).
	base := testSpec()
	for _, p := range EnumeratePlans(base) {
		for _, op := range p.Ops {
			if op.Kind == OpDecodeScale {
				t.Fatalf("plan %q has a decode op without DecodeScales", p.Name)
			}
		}
	}
}

// TestOptimizePicksSubFullDecodeScale is the paper's joint
// decode+preprocess selection: when the target resolution makes reduced
// decoding cheapest, Optimize must choose a sub-full DecodeScale — here
// 1/4, the largest scale whose decoded short edge (270) still covers the
// resize target (256).
func TestOptimizePicksSubFullDecodeScale(t *testing.T) {
	s := hdSpec()
	plan, err := Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.DecodeScale(); got != 4 {
		t.Fatalf("Optimize chose decode scale 1/%d (%q), want 1/4", got, plan.Name)
	}
	if plan.Ops[0].Kind != OpDecodeScale {
		t.Fatalf("plan %q does not lead with the decode op", plan.Name)
	}
	resid := plan.ResidualAfterDecode()
	if len(resid.Ops) != len(plan.Ops)-1 || resid.Ops[0].Kind == OpDecodeScale {
		t.Fatalf("residual chain %+v", resid.Ops)
	}
	// A small input offers no legal reduced scale: full decode survives.
	small := s
	small.InW, small.InH = 300, 260
	plan, err = Optimize(small)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.DecodeScale(); got != 1 {
		t.Fatalf("small input chose decode scale 1/%d", got)
	}
}

func TestPruneDropsDominatedScales(t *testing.T) {
	s := hdSpec()
	pruned := PruneRules(EnumeratePlans(s))
	for _, p := range pruned {
		if got := p.DecodeScale(); got != 4 {
			t.Fatalf("pruned set keeps dominated scale 1/%d (%q)", got, p.Name)
		}
	}
	if len(pruned) == 0 {
		t.Fatal("pruning removed every plan")
	}
}

// TestScaledPlanCostBelowFullDecode: joint cost of decode-1/4 + preproc
// must undercut full decode + preproc for HD inputs — the core claim that
// decode resolution belongs in the plan search.
func TestScaledPlanCostBelowFullDecode(t *testing.T) {
	s := hdSpec()
	plans := EnumeratePlans(s)
	best := map[int]float64{}
	for _, p := range plans {
		c := PlanCost(p, s)
		sc := p.DecodeScale()
		if v, ok := best[sc]; !ok || c < v {
			best[sc] = c
		}
	}
	if !(best[4] < best[2] && best[2] < best[1]) {
		t.Fatalf("per-scale best costs not monotone: %v", best)
	}
	if best[1]/best[4] < 2 {
		t.Fatalf("1/4 decode should cut joint cost >2x on HD inputs, got %v", best)
	}
}

// TestExecuteDecodeScaleFallback: executing a decode-scale plan on a
// full-resolution image box-downsamples in software, matching a manual
// DownsampleBox + residual-chain execution exactly.
func TestExecuteDecodeScaleFallback(t *testing.T) {
	s := Spec{
		InW: 200, InH: 160, ResizeShort: 40, CropW: 32, CropH: 32,
		Mean: [3]float32{0.5, 0.5, 0.5}, Std: [3]float32{0.3, 0.3, 0.3},
		DecodeScales: []int{1, 2, 4},
	}
	plan, err := Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	sc := plan.DecodeScale()
	if sc != 4 {
		t.Fatalf("chose scale 1/%d, want 1/4 (short 40 of 200x160)", sc)
	}
	m := smoothImage(s.InW, s.InH)
	got := tensor.New(OutputShape(s))
	if err := NewExecutor().Execute(plan, m, got); err != nil {
		t.Fatal(err)
	}
	want := tensor.New(OutputShape(s))
	if err := NewExecutor().Execute(plan.ResidualAfterDecode(), m.DownsampleBox(sc), want); err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestScaledPlansStayFaithful: the reduced-resolution plans remain close
// to the naive full-resolution pipeline on smooth content — decode scaling
// trades a bounded fidelity delta for large cost savings.
func TestScaledPlansStayFaithful(t *testing.T) {
	s := Spec{
		InW: 320, InH: 240, ResizeShort: 56, CropW: 48, CropH: 48,
		Mean: [3]float32{0.45, 0.45, 0.45}, Std: [3]float32{0.25, 0.25, 0.25},
		DecodeScales: []int{1, 2, 4},
	}
	m := smoothImage(s.InW, s.InH)
	ref := tensor.New(OutputShape(s))
	if err := NewExecutor().Execute(NaivePlan(s), m, ref); err != nil {
		t.Fatal(err)
	}
	for _, p := range EnumeratePlans(s) {
		got := tensor.New(OutputShape(s))
		if err := NewExecutor().Execute(p, m, got); err != nil {
			t.Fatalf("%q: %v", p.Name, err)
		}
		var sum float64
		for i := range ref.Data {
			d := float64(ref.Data[i]-got.Data[i]) * 0.25 // back to raw pixel space
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if mean := sum / float64(len(ref.Data)); mean > 0.03 {
			t.Errorf("%q: mean raw deviation %.4f from naive plan", p.Name, mean)
		}
	}
}

// TestServeSpec: the serving-time spec constructor must be parameterized
// by the chosen model resolution and validate for every legal (dims, res)
// pair the planner produces.
func TestServeSpec(t *testing.T) {
	mean := [3]float32{0.5, 0.5, 0.5}
	std := [3]float32{1, 1, 1}
	s := ServeSpec(1920, 1080, 224, mean, std, []int{1, 2, 4, 8})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ResizeShort != 224 || s.CropW != 224 || s.CropH != 224 {
		t.Fatalf("spec geometry %+v", s)
	}
	plan, err := Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DecodeScale() != 4 {
		t.Fatalf("1080p to 224 chose decode 1/%d, want 1/4", plan.DecodeScale())
	}
	// Different chosen resolution, same input class: a distinct spec with a
	// deeper legal scale.
	s64 := ServeSpec(1920, 1080, 64, mean, std, []int{1, 2, 4, 8})
	plan64, err := Optimize(s64)
	if err != nil {
		t.Fatal(err)
	}
	if plan64.DecodeScale() != 8 {
		t.Fatalf("1080p to 64 chose decode 1/%d, want 1/8", plan64.DecodeScale())
	}
}
