package preproc

import (
	"math"
	"math/rand"
	"testing"

	"smol/internal/img"
	"smol/internal/tensor"
)

func testSpec() Spec {
	return Spec{
		InW: 100, InH: 80,
		ResizeShort: 64,
		CropW:       56, CropH: 56,
		Mean: [3]float32{0.485, 0.456, 0.406},
		Std:  [3]float32{0.229, 0.224, 0.225},
	}
}

func smoothImage(w, h int) *img.Image {
	m := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m.Set(x, y, uint8(x*255/w), uint8(y*255/h), uint8((x+y)*128/(w+h)))
		}
	}
	return m
}

func TestSpecValidate(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.Std[1] = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero std should fail")
	}
	bad = s
	bad.CropW = 200
	if err := bad.Validate(); err == nil {
		t.Fatal("crop > short edge should fail")
	}
}

func TestEnumeratePlansShape(t *testing.T) {
	plans := EnumeratePlans(testSpec())
	// 2 geom orders x {convert-early unfused, late unfused, late fused} = 6.
	if len(plans) != 6 {
		t.Fatalf("got %d plans", len(plans))
	}
	for _, p := range plans {
		if len(p.Ops) == 0 {
			t.Fatalf("empty plan %q", p.Name)
		}
	}
}

func TestPruneRules(t *testing.T) {
	s := testSpec()
	pruned := PruneRules(EnumeratePlans(s))
	for _, p := range pruned {
		if convertsBeforeResize(p) {
			t.Fatalf("pruned set contains float-resize plan %q", p.Name)
		}
		if !isFused(p) {
			t.Fatalf("pruned set contains unfused plan %q with a fused twin", p.Name)
		}
	}
	if len(pruned) != 2 {
		t.Fatalf("expected 2 surviving plans (fused, both geometric orders), got %d", len(pruned))
	}
}

func TestOptimizePicksCheapest(t *testing.T) {
	s := testSpec()
	best, err := Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	bestCost := PlanCost(best, s)
	for _, p := range EnumeratePlans(s) {
		if c := PlanCost(p, s); c < bestCost-1e-9 {
			t.Fatalf("optimize returned %q (%.0f) but %q costs %.0f", best.Name, bestCost, p.Name, c)
		}
	}
	// The optimized plan must beat the naive plan decisively.
	if naive := PlanCost(NaivePlan(s), s); naive <= bestCost {
		t.Fatalf("naive %.0f should cost more than optimized %.0f", naive, bestCost)
	}
}

func TestCostModelRules(t *testing.T) {
	s := testSpec()
	// Rule check: resize on float costs more than on u8.
	g8 := geometry{w: s.InW, h: s.InH}
	gF := geometry{w: s.InW, h: s.InH, isFloat: true}
	c8, _ := OpCost(Op{Kind: OpResizeShort, Short: 64}, g8)
	cF, _ := OpCost(Op{Kind: OpResizeShort, Short: 64}, gF)
	if cF <= c8 {
		t.Fatalf("float resize %.0f should cost more than u8 resize %.0f", cF, c8)
	}
	// Fused post must beat convert+normalize+reorder.
	fused, _ := OpCost(Op{Kind: OpFusedPost}, g8)
	cc, g2 := OpCost(Op{Kind: OpConvert}, g8)
	cn, g3 := OpCost(Op{Kind: OpNormalize}, g2)
	cr, _ := OpCost(Op{Kind: OpReorder}, g3)
	if fused >= cc+cn+cr {
		t.Fatalf("fused %.0f should beat unfused %.0f", fused, cc+cn+cr)
	}
}

func TestOpCostsAlignWithPlanCost(t *testing.T) {
	s := testSpec()
	p := NaivePlan(s)
	costs := OpCosts(p, s)
	var sum float64
	for _, c := range costs {
		sum += c
	}
	if math.Abs(sum-PlanCost(p, s)) > 1e-9 {
		t.Fatal("OpCosts must sum to PlanCost")
	}
	if len(costs) != len(p.Ops) {
		t.Fatal("one cost per op")
	}
}

func executePlan(t *testing.T, p Plan, m *img.Image, s Spec) *tensor.Tensor {
	t.Helper()
	out := tensor.New(OutputShape(s))
	if err := NewExecutor().Execute(p, m, out); err != nil {
		t.Fatalf("%q: %v", p.Name, err)
	}
	return out
}

func TestAllPlansProduceEquivalentOutput(t *testing.T) {
	s := testSpec()
	m := smoothImage(s.InW, s.InH)
	ref := executePlan(t, NaivePlan(s), m, s)
	for _, p := range EnumeratePlans(s) {
		got := executePlan(t, p, m, s)
		if !tensor.SameShape(ref, got) {
			t.Fatalf("%q: shape %v vs %v", p.Name, got.Shape, ref.Shape)
		}
		var maxDiff float64
		for i := range ref.Data {
			d := math.Abs(float64(ref.Data[i] - got.Data[i]))
			if d > maxDiff {
				maxDiff = d
			}
		}
		// Plans differ in interpolation order (crop-first resamples at a
		// slightly different grid), so equivalence is approximate — the
		// same approximation the paper's rule 3 makes.
		if maxDiff > 0.35 {
			t.Fatalf("%q: max deviation %v from reference", p.Name, maxDiff)
		}
	}
}

func TestExecuteNormalizationValues(t *testing.T) {
	// A constant mid-gray image must normalize to (0.5-mean)/std exactly.
	s := Spec{
		InW: 64, InH: 64, ResizeShort: 32, CropW: 32, CropH: 32,
		Mean: [3]float32{0.5, 0.25, 0.75},
		Std:  [3]float32{0.5, 0.5, 0.5},
	}
	m := img.New(64, 64)
	for i := range m.Pix {
		m.Pix[i] = 128 // ~0.502 after /255
	}
	for _, p := range []Plan{NaivePlan(s), mustOptimize(t, s)} {
		out := executePlan(t, p, m, s)
		n := 32 * 32
		for c := 0; c < 3; c++ {
			want := (float32(128)/255 - s.Mean[c]) / s.Std[c]
			for i := 0; i < n; i++ {
				got := out.Data[c*n+i]
				if math.Abs(float64(got-want)) > 1e-3 {
					t.Fatalf("%q: channel %d value %v, want %v", p.Name, c, got, want)
				}
			}
		}
	}
}

func mustOptimize(t *testing.T, s Spec) Plan {
	t.Helper()
	p, err := Optimize(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecutorReusesBuffers(t *testing.T) {
	s := testSpec()
	m := smoothImage(s.InW, s.InH)
	e := NewExecutor()
	p := mustOptimize(t, s)
	out := tensor.New(OutputShape(s))
	if err := e.Execute(p, m, out); err != nil {
		t.Fatal(err)
	}
	first := append([]float32(nil), out.Data...)
	// Second run with the same executor must produce identical output
	// (buffer reuse must not leak state).
	if err := e.Execute(p, m, out); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if out.Data[i] != first[i] {
			t.Fatal("executor state leaked between runs")
		}
	}
}

func TestExecuteRejectsWrongOutputSize(t *testing.T) {
	s := testSpec()
	m := smoothImage(s.InW, s.InH)
	out := tensor.New(3, 10, 10)
	if err := NewExecutor().Execute(mustOptimize(t, s), m, out); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestExecuteRejectsIncompletePlan(t *testing.T) {
	s := testSpec()
	m := smoothImage(s.InW, s.InH)
	p := Plan{Ops: []Op{{Kind: OpResizeShort, Short: 64}}}
	out := tensor.New(3, 56, 56)
	if err := NewExecutor().Execute(p, m, out); err == nil {
		t.Fatal("plan without CHW output should error")
	}
}

func TestPreResizeCropGeometry(t *testing.T) {
	s := testSpec() // in 100x80, short 64, crop 56
	w, h := preResizeCrop(s)
	// scale = 80/64 = 1.25; 56*1.25 = 70.
	if w != 70 || h != 70 {
		t.Fatalf("preResizeCrop = %dx%d, want 70x70", w, h)
	}
}

func TestF32ResizeMatchesU8Resize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := img.New(40, 30)
	rng.Read(m.Pix)
	u8out := m.ResizeBilinear(20, 15)

	f := make([]float32, 40*30*3)
	for i, p := range m.Pix {
		f[i] = float32(p)
	}
	fout := make([]float32, 20*15*3)
	resizeBilinearF32(f, 40, 30, fout, 20, 15)
	for i := range fout {
		if d := math.Abs(float64(fout[i]) - float64(u8out.Pix[i])); d > 1 {
			t.Fatalf("resize paths diverge at %d: %v vs %d", i, fout[i], u8out.Pix[i])
		}
	}
}
