package preproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smol/internal/img"
	"smol/internal/tensor"
)

// randSpec draws a valid preprocessing geometry: input at least as big as
// the crop after resizing, targets in realistic DNN ranges.
func randSpec(rng *rand.Rand) Spec {
	short := 16 + 8*rng.Intn(8) // 16..72
	crop := short - rng.Intn(short/2)
	if crop < 8 {
		crop = 8
	}
	return Spec{
		InW: short + rng.Intn(128), InH: short + rng.Intn(128),
		ResizeShort: short, CropW: crop, CropH: crop,
		Mean: [3]float32{rng.Float32(), rng.Float32(), rng.Float32()},
		Std:  [3]float32{0.2 + rng.Float32(), 0.2 + rng.Float32(), 0.2 + rng.Float32()},
	}
}

// smoothRandImage renders a low-frequency image so resampling-order
// differences between plans stay small, mirroring the fixed-case test.
func smoothRandImage(rng *rand.Rand, w, h int) *img.Image {
	m := img.New(w, h)
	fx := 1 + rng.Intn(3)
	fy := 1 + rng.Intn(3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := 127 + 120*math.Sin(float64(fx*x)/float64(w)*math.Pi)
			g := 127 + 120*math.Cos(float64(fy*y)/float64(h)*math.Pi)
			b := 127 + 120*math.Sin(float64(x+y)/float64(w+h)*2*math.Pi)
			m.Set(x, y, uint8(r), uint8(g), uint8(b))
		}
	}
	return m
}

// TestQuickAllPlansEquivalent: for arbitrary geometry, every enumerated
// plan (all legal reorderings and fusions of §6.2) produces the same
// output as the naive framework-default plan, up to the interpolation
// tolerance the paper's swap rule accepts. Optimization must change cost,
// never semantics.
func TestQuickAllPlansEquivalent(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		s := randSpec(rng)
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: generated invalid spec %+v: %v", seed, s, err)
			return false
		}
		m := smoothRandImage(rng, s.InW, s.InH)
		ex := NewExecutor()
		ref := tensor.New(OutputShape(s))
		if err := ex.Execute(NaivePlan(s), m, ref); err != nil {
			t.Logf("seed %d: naive: %v", seed, err)
			return false
		}
		plane := s.CropW * s.CropH
		for _, p := range EnumeratePlans(s) {
			got := tensor.New(OutputShape(s))
			if err := ex.Execute(p, m, got); err != nil {
				t.Logf("seed %d: %q: %v", seed, p.Name, err)
				return false
			}
			for i := range ref.Data {
				// Compare in raw pixel space: normalized deviations scale
				// with 1/std, which the random spec makes arbitrary.
				std := float64(s.Std[i/plane])
				if d := math.Abs(float64(ref.Data[i]-got.Data[i])) * std; d > 0.12 {
					t.Logf("seed %d: %q deviates %v (raw) at %d (spec %+v)", seed, p.Name, d, i, s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOptimizeNeverCostlier: the optimizer's chosen plan never counts
// more arithmetic than the naive plan, for any geometry.
func TestQuickOptimizeNeverCostlier(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		s := randSpec(rng)
		opt, err := Optimize(s)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if PlanCost(opt, s) > PlanCost(NaivePlan(s), s) {
			t.Logf("seed %d: optimized plan costlier than naive (spec %+v)", seed, s)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
