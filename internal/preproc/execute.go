package preproc

import (
	"fmt"

	"smol/internal/img"
	"smol/internal/tensor"
)

// Executor runs plans with reusable scratch buffers, so steady-state
// execution performs no allocations (the memory-reuse optimization of §6.1).
// An Executor is not safe for concurrent use; the engine gives each worker
// its own.
type Executor struct {
	// Slots 0 and 1 ping-pong between resize and crop; slot 2 is reserved
	// for the decode-scale fallback so its (differently sized) output does
	// not evict the resize/crop buffers every run.
	scratchU8  [3]*img.Image
	scratchF32 [2][]float32
}

// NewExecutor returns an empty executor; buffers grow on first use.
func NewExecutor() *Executor { return &Executor{} }

// value is the in-flight representation between ops: either a uint8 HWC
// image or a float32 buffer (HWC, or CHW after reordering).
type value struct {
	u8   *img.Image
	f32  []float32
	chw  bool
	w, h int
}

func (e *Executor) u8Buf(slot, w, h int) *img.Image {
	b := e.scratchU8[slot]
	if b == nil || b.W != w || b.H != h {
		b = img.New(w, h)
		e.scratchU8[slot] = b
	}
	return b
}

func (e *Executor) f32Buf(slot, n int) []float32 {
	if cap(e.scratchF32[slot]) < n {
		e.scratchF32[slot] = make([]float32, n)
	}
	return e.scratchF32[slot][:n]
}

// Execute runs plan p on m, writing the float32 CHW result into out, which
// must have shape (3, H, W) matching the plan's final geometry.
func (e *Executor) Execute(p Plan, m *img.Image, out *tensor.Tensor) error {
	v := value{u8: m, w: m.W, h: m.H}
	for i, op := range p.Ops {
		var err error
		v, err = e.apply(op, v, i, out)
		if err != nil {
			return fmt.Errorf("preproc: op %d (%s): %w", i, op.Kind, err)
		}
	}
	if !v.chw {
		return fmt.Errorf("preproc: plan did not produce CHW output (missing reorder or fused-post)")
	}
	want := 3 * v.w * v.h
	if out.Len() != want {
		return fmt.Errorf("preproc: output tensor has %d elements, plan produces %d", out.Len(), want)
	}
	return nil
}

// apply runs one op. The final CHW-producing op writes directly into out.
func (e *Executor) apply(op Op, v value, opIdx int, out *tensor.Tensor) (value, error) {
	switch op.Kind {
	case OpDecodeScale:
		// Software reference for reduced-resolution decoding: a box
		// downsample of the full-resolution image. Serving paths never
		// reach this case — they lower the op into the codec
		// (jpeg.DecodeOptions.Scale) and execute only
		// Plan.ResidualAfterDecode — but it keeps every plan executable
		// on plain decoded images (tests, codecs without scaling).
		if v.u8 == nil {
			return v, fmt.Errorf("decode-scale expects uint8 input")
		}
		if op.Scale <= 1 {
			return v, nil
		}
		ow, oh := img.ScaledDims(v.w, v.h, op.Scale)
		dst := e.u8Buf(2, ow, oh)
		img.DownsampleBoxInto(v.u8, dst, op.Scale)
		return value{u8: dst, w: ow, h: oh}, nil
	case OpResizeShort:
		w, h := shortEdgeDims(v.w, v.h, op.Short)
		return e.resize(v, w, h)
	case OpResizeExact:
		return e.resize(v, op.W, op.H)
	case OpCenterCrop:
		return e.crop(v, op.W, op.H)
	case OpConvert:
		if v.u8 == nil {
			return v, fmt.Errorf("input already float")
		}
		buf := e.f32Buf(0, v.w*v.h*3)
		for i, p := range v.u8.Pix[:v.w*v.h*3] {
			buf[i] = float32(p) / 255
		}
		return value{f32: buf, w: v.w, h: v.h}, nil
	case OpNormalize:
		if v.f32 == nil || v.chw {
			return v, fmt.Errorf("normalize expects float HWC input")
		}
		for i := 0; i < v.w*v.h; i++ {
			for c := 0; c < 3; c++ {
				v.f32[i*3+c] = (v.f32[i*3+c] - op.Mean[c]) / op.Std[c]
			}
		}
		return v, nil
	case OpReorder:
		if v.f32 == nil || v.chw {
			return v, fmt.Errorf("reorder expects float HWC input")
		}
		n := v.w * v.h
		if out.Len() != 3*n {
			return v, fmt.Errorf("output tensor size %d, want %d", out.Len(), 3*n)
		}
		for i := 0; i < n; i++ {
			out.Data[i] = v.f32[i*3]
			out.Data[n+i] = v.f32[i*3+1]
			out.Data[2*n+i] = v.f32[i*3+2]
		}
		return value{f32: out.Data, chw: true, w: v.w, h: v.h}, nil
	case OpFusedPost:
		if v.u8 == nil {
			return v, fmt.Errorf("fused-post expects uint8 input")
		}
		n := v.w * v.h
		if out.Len() != 3*n {
			return v, fmt.Errorf("output tensor size %d, want %d", out.Len(), 3*n)
		}
		// Single pass: convert, normalize, and transpose to CHW.
		inv := [3]float32{1 / (255 * op.Std[0]), 1 / (255 * op.Std[1]), 1 / (255 * op.Std[2])}
		off := [3]float32{op.Mean[0] / op.Std[0], op.Mean[1] / op.Std[1], op.Mean[2] / op.Std[2]}
		pix := v.u8.Pix
		for i := 0; i < n; i++ {
			out.Data[i] = float32(pix[i*3])*inv[0] - off[0]
			out.Data[n+i] = float32(pix[i*3+1])*inv[1] - off[1]
			out.Data[2*n+i] = float32(pix[i*3+2])*inv[2] - off[2]
		}
		return value{f32: out.Data, chw: true, w: v.w, h: v.h}, nil
	default:
		return v, fmt.Errorf("unknown op kind %d", op.Kind)
	}
}

func (e *Executor) resize(v value, w, h int) (value, error) {
	if v.chw {
		return v, fmt.Errorf("cannot resize CHW data")
	}
	if v.u8 != nil {
		dst := e.u8Buf(0, w, h)
		if v.u8 == dst {
			dst = e.u8Buf(1, w, h)
		}
		img.ResizeBilinearInto(v.u8, dst)
		return value{u8: dst, w: w, h: h}, nil
	}
	dst := e.f32Buf(1, w*h*3)
	resizeBilinearF32(v.f32, v.w, v.h, dst, w, h)
	return value{f32: dst, w: w, h: h}, nil
}

func (e *Executor) crop(v value, cw, ch int) (value, error) {
	if v.chw {
		return v, fmt.Errorf("cannot crop CHW data")
	}
	r := img.CenterCropRect(v.w, v.h, cw, ch)
	if v.u8 != nil {
		dst := e.u8Buf(1, r.W(), r.H())
		if v.u8 == dst {
			dst = e.u8Buf(0, r.W(), r.H())
		}
		for y := r.Y0; y < r.Y1; y++ {
			src := v.u8.Pix[(y*v.w+r.X0)*3 : (y*v.w+r.X1)*3]
			copy(dst.Pix[(y-r.Y0)*dst.W*3:], src)
		}
		return value{u8: dst, w: r.W(), h: r.H()}, nil
	}
	dst := e.f32Buf(0, r.W()*r.H()*3)
	if sameSlice(dst, v.f32) {
		dst = e.f32Buf(1, r.W()*r.H()*3)
	}
	for y := r.Y0; y < r.Y1; y++ {
		src := v.f32[(y*v.w+r.X0)*3 : (y*v.w+r.X1)*3]
		copy(dst[(y-r.Y0)*r.W()*3:], src)
	}
	return value{f32: dst, w: r.W(), h: r.H()}, nil
}

func sameSlice(a, b []float32) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// resizeBilinearF32 resizes an HWC float32 buffer.
func resizeBilinearF32(src []float32, sw, sh int, dst []float32, dw, dh int) {
	xRatio := float64(sw) / float64(dw)
	yRatio := float64(sh) / float64(dh)
	for y := 0; y < dh; y++ {
		sy := (float64(y)+0.5)*yRatio - 0.5
		if sy < 0 {
			sy = 0
		}
		y0 := int(sy)
		y1 := y0 + 1
		if y1 >= sh {
			y1 = sh - 1
		}
		fy := float32(sy - float64(y0))
		for x := 0; x < dw; x++ {
			sx := (float64(x)+0.5)*xRatio - 0.5
			if sx < 0 {
				sx = 0
			}
			x0 := int(sx)
			x1 := x0 + 1
			if x1 >= sw {
				x1 = sw - 1
			}
			fx := float32(sx - float64(x0))
			for c := 0; c < 3; c++ {
				p00 := src[(y0*sw+x0)*3+c]
				p01 := src[(y0*sw+x1)*3+c]
				p10 := src[(y1*sw+x0)*3+c]
				p11 := src[(y1*sw+x1)*3+c]
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				dst[(y*dw+x)*3+c] = top + (bot-top)*fy
			}
		}
	}
}

// OutputShape returns the (C,H,W) shape a plan produces for spec s.
func OutputShape(s Spec) (c, h, w int) { return 3, s.CropH, s.CropW }
