package preproc

import "smol/internal/img"

// Cost model: each operator's cost is an estimated arithmetic-operation
// count for the given data geometry, with a dtype multiplier (float32
// arithmetic costs more than uint8 on typical CPUs, chiefly through memory
// bandwidth). The absolute numbers are unitless; only relative comparisons
// matter for plan selection.

const (
	// dtypeF32Factor scales op cost when operating on float32 data.
	dtypeF32Factor = 2.5
	// bilinearOpsPerPixel is the per-output-pixel-channel cost of bilinear
	// interpolation (4 taps, 3 lerps, index math).
	bilinearOpsPerPixel = 8.0

	// JPEG decode cost split for OpDecodeScale, calibrated against
	// internal/hw: full decode is ~40.5 ns/px x 7500 ops/us ~= 304 ops per
	// source pixel, of which hw's partial-decode model attributes 30% to
	// entropy decoding (paid on every source pixel regardless of scale —
	// Huffman streams are sequential) and 70% to reconstruction
	// (dequantization, IDCT, upsampling, color conversion), which scaled
	// decoding pays only per *output* pixel.
	decodeEntropyOpsPerPixel = 91.0
	decodeReconOpsPerPixel   = 213.0
)

// geometry tracks the image dims and dtype as ops are applied.
type geometry struct {
	w, h    int
	isFloat bool
}

// OpCost returns the cost of applying op to a given geometry and the
// resulting geometry.
func OpCost(op Op, g geometry) (float64, geometry) {
	dtype := 1.0
	if g.isFloat {
		dtype = dtypeF32Factor
	}
	switch op.Kind {
	case OpDecodeScale:
		// Geometry here is the *encoded* image: entropy decode is paid in
		// full, reconstruction only for the pixels actually produced. The
		// resulting geometry is the decoder's reduced-resolution output.
		sc := op.Scale
		if sc < 1 {
			sc = 1
		}
		ow, oh := img.ScaledDims(g.w, g.h, sc)
		cost := float64(g.w*g.h)*decodeEntropyOpsPerPixel + float64(ow*oh)*decodeReconOpsPerPixel
		return cost, geometry{w: ow, h: oh}
	case OpResizeShort:
		ow, oh := shortEdgeDims(g.w, g.h, op.Short)
		cost := float64(ow*oh*3) * bilinearOpsPerPixel * dtype
		return cost, geometry{w: ow, h: oh, isFloat: g.isFloat}
	case OpResizeExact:
		cost := float64(op.W*op.H*3) * bilinearOpsPerPixel * dtype
		return cost, geometry{w: op.W, h: op.H, isFloat: g.isFloat}
	case OpCenterCrop:
		w, h := op.W, op.H
		if w > g.w {
			w = g.w
		}
		if h > g.h {
			h = g.h
		}
		// A crop is a strided copy.
		cost := float64(w*h*3) * dtype
		return cost, geometry{w: w, h: h, isFloat: g.isFloat}
	case OpConvert:
		return float64(g.w*g.h*3) * 1.5, geometry{w: g.w, h: g.h, isFloat: true}
	case OpNormalize:
		// subtract + multiply per element.
		return float64(g.w*g.h*3) * 2 * dtypeF32Factor, g
	case OpReorder:
		return float64(g.w*g.h*3) * dtypeF32Factor, g
	case OpFusedPost:
		// One pass doing convert+normalize+reorder: ~3 ops per element on
		// u8 input, writing float out.
		return float64(g.w*g.h*3) * 3, geometry{w: g.w, h: g.h, isFloat: true}
	default:
		panic("preproc: unknown op kind")
	}
}

func shortEdgeDims(w, h, short int) (int, int) {
	if w < h {
		return short, (h*short + w/2) / w
	}
	return (w*short + h/2) / h, short
}

// PlanCost sums operator costs over the plan for the spec's input geometry.
func PlanCost(p Plan, s Spec) float64 {
	g := geometry{w: s.InW, h: s.InH}
	total := 0.0
	for _, op := range p.Ops {
		c, ng := OpCost(op, g)
		total += c
		g = ng
	}
	return total
}

// OpCosts returns the per-op costs of a plan, used by operator placement to
// split the pipeline between CPU and accelerator.
func OpCosts(p Plan, s Spec) []float64 {
	g := geometry{w: s.InW, h: s.InH}
	out := make([]float64, len(p.Ops))
	for i, op := range p.Ops {
		c, ng := OpCost(op, g)
		out[i] = c
		g = ng
	}
	return out
}
