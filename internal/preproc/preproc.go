// Package preproc implements the preprocessing stage of visual DNN
// inference as an optimizable operator pipeline (the paper's §6.2): resize,
// crop, dtype conversion, normalization and channel reordering, with
// rule-based reordering/fusion and cost-based plan selection.
//
// The executable kernels are real: Execute runs the chosen plan on an
// actual image and produces the float32 CHW tensor a DNN consumes. The
// plan optimizer enumerates the legal orderings (resize/crop swap, late vs
// early float conversion, fused vs separate post-ops), prunes dominated
// plans by rule, and picks the cheapest by counting arithmetic operations.
package preproc

import (
	"fmt"
	"strings"

	"smol/internal/img"
)

// OpKind identifies a preprocessing operator.
type OpKind int

// Operator kinds. ResizeShort performs an aspect-preserving resize of the
// short edge; ResizeExact resizes to explicit dimensions; FusedPost is the
// fused convert+normalize+reorder kernel.
const (
	OpResizeShort OpKind = iota
	OpResizeExact
	OpCenterCrop
	OpConvert
	OpNormalize
	OpReorder
	OpFusedPost
	// OpDecodeScale asks the decoder for reduced-resolution output (the
	// paper's low-resolution decoding, §5): the image enters the pipeline
	// already downsampled by Scale. It is always the first op of a plan.
	// Executed in software (Executor) it is a box downsample — the
	// reference semantics that DCT-domain scaled JPEG decoding implements
	// for ~Scale^2 less reconstruction work; serving lowers it into
	// jpeg.DecodeOptions.Scale instead.
	OpDecodeScale
)

func (k OpKind) String() string {
	switch k {
	case OpResizeShort:
		return "resize-short"
	case OpResizeExact:
		return "resize-exact"
	case OpCenterCrop:
		return "center-crop"
	case OpConvert:
		return "convert-f32"
	case OpNormalize:
		return "normalize"
	case OpReorder:
		return "reorder-chw"
	case OpFusedPost:
		return "fused-post"
	case OpDecodeScale:
		return "decode-scale"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operator instance in a plan.
type Op struct {
	Kind OpKind
	// Short is the target short edge for OpResizeShort.
	Short int
	// W, H are the target dims for OpResizeExact / OpCenterCrop.
	W, H int
	// Scale is the decode downsample factor for OpDecodeScale (1 = full).
	Scale int
	// Mean, Std are per-channel normalization constants (OpNormalize,
	// OpFusedPost).
	Mean, Std [3]float32
}

// Plan is an ordered operator pipeline.
type Plan struct {
	Ops []Op
	// Name describes how the plan was constructed (for reports).
	Name string
}

// Describe renders the plan as its operator kinds joined with "+", the
// compact form serving reports (ServePlan) and CLI -explain output use.
func (p Plan) Describe() string {
	kinds := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		kinds[i] = op.Kind.String()
	}
	return strings.Join(kinds, "+")
}

// DecodeScale returns the reduced decode factor the plan asks of the
// decoder (1 = full-resolution decode, no decode op present).
func (p Plan) DecodeScale() int {
	for _, op := range p.Ops {
		if op.Kind == OpDecodeScale && op.Scale > 1 {
			return op.Scale
		}
	}
	return 1
}

// ResidualAfterDecode returns the plan with any leading decode op removed:
// the chain an executor runs on an image the codec already produced at the
// plan's decode scale. Serving lowers the decode op into the codec and
// executes only this residue.
func (p Plan) ResidualAfterDecode() Plan {
	ops := p.Ops
	for len(ops) > 0 && ops[0].Kind == OpDecodeScale {
		ops = ops[1:]
	}
	return Plan{Ops: ops, Name: p.Name}
}

// Spec describes a preprocessing problem: input dimensions and the target
// DNN input contract.
type Spec struct {
	InW, InH     int
	ResizeShort  int
	CropW, CropH int
	Mean, Std    [3]float32
	// DecodeScales lists the reduced decode factors the input's codec
	// offers (e.g. 1, 2, 4, 8 for DCT-domain scaled JPEG decoding), making
	// decode resolution part of the joint plan search: enumeration
	// considers each scale whose decoded short edge still covers
	// ResizeShort, so the optimizer picks decode scale and the post-decode
	// chain together. Empty means the decoder only produces full
	// resolution and plans contain no decode op.
	DecodeScales []int
}

// ServeSpec builds the serving-time preprocessing problem for one input
// class and one chosen model resolution: decode an inW x inH image, resize
// its short edge to res, center-crop res x res, and normalize by mean/std.
// decodeScales lists the codec's reduced decode factors (nil for codecs
// that only decode at full resolution, or when scaled decode is disabled).
// The serving planner calls this once per (input class, zoo entry) pair, so
// a spec is always parameterized by the resolution the planner chose rather
// than a runtime-wide constant.
func ServeSpec(inW, inH, res int, mean, std [3]float32, decodeScales []int) Spec {
	return Spec{
		InW: inW, InH: inH,
		ResizeShort: res, CropW: res, CropH: res,
		Mean: mean, Std: std,
		DecodeScales: decodeScales,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.InW <= 0 || s.InH <= 0 {
		return fmt.Errorf("preproc: invalid input dims %dx%d", s.InW, s.InH)
	}
	if s.ResizeShort <= 0 || s.CropW <= 0 || s.CropH <= 0 {
		return fmt.Errorf("preproc: invalid targets short=%d crop=%dx%d", s.ResizeShort, s.CropW, s.CropH)
	}
	for _, sc := range s.DecodeScales {
		if sc < 1 {
			return fmt.Errorf("preproc: invalid decode scale %d", sc)
		}
	}
	if s.CropW > s.ResizeShort || s.CropH > s.ResizeShort {
		return fmt.Errorf("preproc: crop %dx%d exceeds resized short edge %d", s.CropW, s.CropH, s.ResizeShort)
	}
	for c := 0; c < 3; c++ {
		if s.Std[c] == 0 {
			return fmt.Errorf("preproc: zero std for channel %d", c)
		}
	}
	return nil
}

// NaivePlan is the framework-default ordering many training-oriented
// loaders use: convert to float first, then resize and crop in float32,
// then separate normalize and reorder passes. Correct but expensive.
func NaivePlan(s Spec) Plan {
	var ops []Op
	if len(s.DecodeScales) > 0 {
		// Naive loaders always decode at full resolution; the explicit op
		// keeps decode cost in the total so naive and optimized plans for
		// a scale-capable codec compare like for like.
		ops = append(ops, Op{Kind: OpDecodeScale, Scale: 1})
	}
	return Plan{
		Name: "naive",
		Ops: append(ops,
			Op{Kind: OpConvert},
			Op{Kind: OpResizeShort, Short: s.ResizeShort},
			Op{Kind: OpCenterCrop, W: s.CropW, H: s.CropH},
			Op{Kind: OpNormalize, Mean: s.Mean, Std: s.Std},
			Op{Kind: OpReorder},
		),
	}
}

// EnumeratePlans generates the legal plan space for s using the reordering
// rules of §6.2 plus the decode-resolution dimension of §5:
//
//  1. normalization / conversion may move anywhere (they are linear and
//     pointwise, and bilinear resize is linear),
//  2. conversion+normalization+reordering may fuse,
//  3. resize and crop may swap (with adjusted crop geometry),
//  4. when the codec offers reduced decode scales, decoding may happen at
//     any scale whose decoded short edge still covers ResizeShort (never
//     below the resize target, so no information the DNN input needs is
//     lost), with every post-decode ordering enumerated per scale.
func EnumeratePlans(s Spec) []Plan {
	if len(s.DecodeScales) == 0 {
		return enumerateAtScale(s, 0)
	}
	var plans []Plan
	for _, sc := range s.DecodeScales {
		if sc < 1 {
			continue
		}
		sw, sh := img.ScaledDims(s.InW, s.InH, sc)
		if min(sw, sh) < s.ResizeShort {
			continue // decoded short edge below the resize target
		}
		plans = append(plans, enumerateAtScale(s, sc)...)
	}
	if len(plans) == 0 {
		// Every offered scale undershoots the resize target (tiny input):
		// fall back to full-resolution decode.
		plans = enumerateAtScale(s, 1)
	}
	return plans
}

// enumerateAtScale generates the post-decode orderings for one decode
// scale. scale 0 means "no decode op" (codec without scaling support);
// scale >= 1 prepends an explicit decode op so decode cost is part of
// every plan's total and scales compete on equal footing.
func enumerateAtScale(s Spec, scale int) []Plan {
	inW, inH := s.InW, s.InH
	var prefix []Op
	prefixName := ""
	if scale >= 1 {
		inW, inH = img.ScaledDims(s.InW, s.InH, scale)
		prefix = []Op{{Kind: OpDecodeScale, Scale: scale}}
		prefixName = fmt.Sprintf("decode-1/%d/", scale)
	}
	var plans []Plan
	for _, cropFirst := range []bool{false, true} {
		for _, convertEarly := range []bool{false, true} {
			for _, fuse := range []bool{false, true} {
				if convertEarly && fuse {
					// Fusion requires conversion to happen in the fused
					// kernel at the end.
					continue
				}
				ops := append([]Op(nil), prefix...)
				name := prefixName
				if convertEarly {
					ops = append(ops, Op{Kind: OpConvert})
					name += "convert-early/"
				}
				if cropFirst {
					// Crop the region of the original that maps onto the
					// final crop, then resize exactly.
					cw, ch := preResizeCrop(inW, inH, s)
					ops = append(ops,
						Op{Kind: OpCenterCrop, W: cw, H: ch},
						Op{Kind: OpResizeExact, W: s.CropW, H: s.CropH},
					)
					name += "crop-first/"
				} else {
					ops = append(ops,
						Op{Kind: OpResizeShort, Short: s.ResizeShort},
						Op{Kind: OpCenterCrop, W: s.CropW, H: s.CropH},
					)
					name += "resize-first/"
				}
				if fuse {
					ops = append(ops, Op{Kind: OpFusedPost, Mean: s.Mean, Std: s.Std})
					name += "fused"
				} else {
					if !convertEarly {
						ops = append(ops, Op{Kind: OpConvert})
					}
					ops = append(ops,
						Op{Kind: OpNormalize, Mean: s.Mean, Std: s.Std},
						Op{Kind: OpReorder},
					)
					name += "unfused"
				}
				plans = append(plans, Plan{Ops: ops, Name: name})
			}
		}
	}
	return plans
}

// preResizeCrop computes the centered crop of the decoded image (inW x
// inH) that maps onto the final CropW x CropH after an exact resize, for
// the crop-first ordering.
func preResizeCrop(inW, inH int, s Spec) (w, h int) {
	short := inW
	if inH < short {
		short = inH
	}
	scale := float64(short) / float64(s.ResizeShort)
	w = int(float64(s.CropW)*scale + 0.5)
	h = int(float64(s.CropH)*scale + 0.5)
	if w > inW {
		w = inW
	}
	if h > inH {
		h = inH
	}
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return w, h
}

// PruneRules removes plans dominated under the paper's pruning rules:
// resizing on float data is never cheaper than on uint8, unfused
// post-processing is never cheaper than fused, and decoding at a lower
// scale than another legal plan is never cheaper (entropy decoding costs
// the same at every scale while reconstruction and every downstream op
// shrink, and the resize target — hence the DNN input — is identical).
// Returns the surviving plans.
func PruneRules(plans []Plan) []Plan {
	maxScale := 0
	for _, p := range plans {
		if sc := p.DecodeScale(); sc > maxScale {
			maxScale = sc
		}
	}
	var out []Plan
	for _, p := range plans {
		if convertsBeforeResize(p) {
			continue // rule: resizing is cheaper with smaller dtypes
		}
		if !isFused(p) && existsFusedTwin(plans, p) {
			continue // rule: fusion always improves performance
		}
		if maxScale > 1 && p.DecodeScale() < maxScale {
			continue // rule: the largest legal decode scale dominates
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return plans
	}
	return out
}

func convertsBeforeResize(p Plan) bool {
	seenConvert := false
	for _, op := range p.Ops {
		switch op.Kind {
		case OpConvert:
			seenConvert = true
		case OpResizeShort, OpResizeExact:
			if seenConvert {
				return true
			}
		}
	}
	return false
}

func isFused(p Plan) bool {
	for _, op := range p.Ops {
		if op.Kind == OpFusedPost {
			return true
		}
	}
	return false
}

// existsFusedTwin reports whether plans contains a fused plan with the same
// geometric prefix (same resize/crop ordering).
func existsFusedTwin(plans []Plan, p Plan) bool {
	for _, q := range plans {
		if !isFused(q) {
			continue
		}
		if geometricPrefix(q) == geometricPrefix(p) {
			return true
		}
	}
	return false
}

func geometricPrefix(p Plan) string {
	s := ""
	for _, op := range p.Ops {
		switch op.Kind {
		case OpResizeShort, OpResizeExact, OpCenterCrop:
			s += fmt.Sprintf("%d:%d:%d:%d;", op.Kind, op.Short, op.W, op.H)
		case OpDecodeScale:
			s += fmt.Sprintf("d%d;", op.Scale)
		}
	}
	return s
}

// Optimize enumerates, prunes, and returns the cheapest plan by the
// arithmetic-operation cost model.
func Optimize(s Spec) (Plan, error) {
	if err := s.Validate(); err != nil {
		return Plan{}, err
	}
	plans := PruneRules(EnumeratePlans(s))
	best := plans[0]
	bestCost := PlanCost(best, s)
	for _, p := range plans[1:] {
		if c := PlanCost(p, s); c < bestCost {
			best, bestCost = p, c
		}
	}
	return best, nil
}
