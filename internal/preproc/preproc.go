// Package preproc implements the preprocessing stage of visual DNN
// inference as an optimizable operator pipeline (the paper's §6.2): resize,
// crop, dtype conversion, normalization and channel reordering, with
// rule-based reordering/fusion and cost-based plan selection.
//
// The executable kernels are real: Execute runs the chosen plan on an
// actual image and produces the float32 CHW tensor a DNN consumes. The
// plan optimizer enumerates the legal orderings (resize/crop swap, late vs
// early float conversion, fused vs separate post-ops), prunes dominated
// plans by rule, and picks the cheapest by counting arithmetic operations.
package preproc

import (
	"fmt"
)

// OpKind identifies a preprocessing operator.
type OpKind int

// Operator kinds. ResizeShort performs an aspect-preserving resize of the
// short edge; ResizeExact resizes to explicit dimensions; FusedPost is the
// fused convert+normalize+reorder kernel.
const (
	OpResizeShort OpKind = iota
	OpResizeExact
	OpCenterCrop
	OpConvert
	OpNormalize
	OpReorder
	OpFusedPost
)

func (k OpKind) String() string {
	switch k {
	case OpResizeShort:
		return "resize-short"
	case OpResizeExact:
		return "resize-exact"
	case OpCenterCrop:
		return "center-crop"
	case OpConvert:
		return "convert-f32"
	case OpNormalize:
		return "normalize"
	case OpReorder:
		return "reorder-chw"
	case OpFusedPost:
		return "fused-post"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operator instance in a plan.
type Op struct {
	Kind OpKind
	// Short is the target short edge for OpResizeShort.
	Short int
	// W, H are the target dims for OpResizeExact / OpCenterCrop.
	W, H int
	// Mean, Std are per-channel normalization constants (OpNormalize,
	// OpFusedPost).
	Mean, Std [3]float32
}

// Plan is an ordered operator pipeline.
type Plan struct {
	Ops []Op
	// Name describes how the plan was constructed (for reports).
	Name string
}

// Spec describes a preprocessing problem: input dimensions and the target
// DNN input contract.
type Spec struct {
	InW, InH     int
	ResizeShort  int
	CropW, CropH int
	Mean, Std    [3]float32
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.InW <= 0 || s.InH <= 0 {
		return fmt.Errorf("preproc: invalid input dims %dx%d", s.InW, s.InH)
	}
	if s.ResizeShort <= 0 || s.CropW <= 0 || s.CropH <= 0 {
		return fmt.Errorf("preproc: invalid targets short=%d crop=%dx%d", s.ResizeShort, s.CropW, s.CropH)
	}
	if s.CropW > s.ResizeShort || s.CropH > s.ResizeShort {
		return fmt.Errorf("preproc: crop %dx%d exceeds resized short edge %d", s.CropW, s.CropH, s.ResizeShort)
	}
	for c := 0; c < 3; c++ {
		if s.Std[c] == 0 {
			return fmt.Errorf("preproc: zero std for channel %d", c)
		}
	}
	return nil
}

// NaivePlan is the framework-default ordering many training-oriented
// loaders use: convert to float first, then resize and crop in float32,
// then separate normalize and reorder passes. Correct but expensive.
func NaivePlan(s Spec) Plan {
	return Plan{
		Name: "naive",
		Ops: []Op{
			{Kind: OpConvert},
			{Kind: OpResizeShort, Short: s.ResizeShort},
			{Kind: OpCenterCrop, W: s.CropW, H: s.CropH},
			{Kind: OpNormalize, Mean: s.Mean, Std: s.Std},
			{Kind: OpReorder},
		},
	}
}

// EnumeratePlans generates the legal plan space for s using the reordering
// rules of §6.2:
//
//  1. normalization / conversion may move anywhere (they are linear and
//     pointwise, and bilinear resize is linear),
//  2. conversion+normalization+reordering may fuse,
//  3. resize and crop may swap (with adjusted crop geometry).
func EnumeratePlans(s Spec) []Plan {
	var plans []Plan
	for _, cropFirst := range []bool{false, true} {
		for _, convertEarly := range []bool{false, true} {
			for _, fuse := range []bool{false, true} {
				if convertEarly && fuse {
					// Fusion requires conversion to happen in the fused
					// kernel at the end.
					continue
				}
				var ops []Op
				name := ""
				if convertEarly {
					ops = append(ops, Op{Kind: OpConvert})
					name += "convert-early/"
				}
				if cropFirst {
					// Crop the region of the original that maps onto the
					// final crop, then resize exactly.
					cw, ch := preResizeCrop(s)
					ops = append(ops,
						Op{Kind: OpCenterCrop, W: cw, H: ch},
						Op{Kind: OpResizeExact, W: s.CropW, H: s.CropH},
					)
					name += "crop-first/"
				} else {
					ops = append(ops,
						Op{Kind: OpResizeShort, Short: s.ResizeShort},
						Op{Kind: OpCenterCrop, W: s.CropW, H: s.CropH},
					)
					name += "resize-first/"
				}
				if fuse {
					ops = append(ops, Op{Kind: OpFusedPost, Mean: s.Mean, Std: s.Std})
					name += "fused"
				} else {
					if !convertEarly {
						ops = append(ops, Op{Kind: OpConvert})
					}
					ops = append(ops,
						Op{Kind: OpNormalize, Mean: s.Mean, Std: s.Std},
						Op{Kind: OpReorder},
					)
					name += "unfused"
				}
				plans = append(plans, Plan{Ops: ops, Name: name})
			}
		}
	}
	return plans
}

// preResizeCrop computes the centered crop of the original image that maps
// onto the final CropW x CropH after an exact resize, for the crop-first
// ordering.
func preResizeCrop(s Spec) (w, h int) {
	short := s.InW
	if s.InH < short {
		short = s.InH
	}
	scale := float64(short) / float64(s.ResizeShort)
	w = int(float64(s.CropW)*scale + 0.5)
	h = int(float64(s.CropH)*scale + 0.5)
	if w > s.InW {
		w = s.InW
	}
	if h > s.InH {
		h = s.InH
	}
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return w, h
}

// PruneRules removes plans dominated under the paper's pruning rules:
// resizing on float data is never cheaper than on uint8, and unfused
// post-processing is never cheaper than fused. Returns the surviving plans.
func PruneRules(plans []Plan) []Plan {
	var out []Plan
	for _, p := range plans {
		if convertsBeforeResize(p) {
			continue // rule: resizing is cheaper with smaller dtypes
		}
		if !isFused(p) && existsFusedTwin(plans, p) {
			continue // rule: fusion always improves performance
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return plans
	}
	return out
}

func convertsBeforeResize(p Plan) bool {
	seenConvert := false
	for _, op := range p.Ops {
		switch op.Kind {
		case OpConvert:
			seenConvert = true
		case OpResizeShort, OpResizeExact:
			if seenConvert {
				return true
			}
		}
	}
	return false
}

func isFused(p Plan) bool {
	for _, op := range p.Ops {
		if op.Kind == OpFusedPost {
			return true
		}
	}
	return false
}

// existsFusedTwin reports whether plans contains a fused plan with the same
// geometric prefix (same resize/crop ordering).
func existsFusedTwin(plans []Plan, p Plan) bool {
	for _, q := range plans {
		if !isFused(q) {
			continue
		}
		if geometricPrefix(q) == geometricPrefix(p) {
			return true
		}
	}
	return false
}

func geometricPrefix(p Plan) string {
	s := ""
	for _, op := range p.Ops {
		switch op.Kind {
		case OpResizeShort, OpResizeExact, OpCenterCrop:
			s += fmt.Sprintf("%d:%d:%d:%d;", op.Kind, op.Short, op.W, op.H)
		}
	}
	return s
}

// Optimize enumerates, prunes, and returns the cheapest plan by the
// arithmetic-operation cost model.
func Optimize(s Spec) (Plan, error) {
	if err := s.Validate(); err != nil {
		return Plan{}, err
	}
	plans := PruneRules(EnumeratePlans(s))
	best := plans[0]
	bestCost := PlanCost(best, s)
	for _, p := range plans[1:] {
		if c := PlanCost(p, s); c < bestCost {
			best, bestCost = p, c
		}
	}
	return best, nil
}
