// Proxy score sidecar: per-stream, per-proxy raw frame scores with per-GOP
// min/max summaries, persisted as "<name>.scr" next to the video's streams.
//
// Unlike the GOP index, score tables are pure acceleration state — they are
// regenerated from the streams by one live proxy pass — so they live outside
// the WAL protocol: PutScores rewrites the sidecar in place, and a torn or
// corrupted sidecar is simply ignored at load (queries fall back to live
// scoring and re-persist). Scores are stored as raw float64 bits so a
// persisted score is bit-identical to the live computation that produced it.
//
// Framing (all integers big-endian, trailing CRC-32 IEEE over the body):
//
//	"SSCR" | u16 version | u16 tables
//	per table:
//	  u16 stream | u16 len(proxy) | proxy | u32 frames | frames x f64
//	  u32 gops | gops x (f64 min, f64 max)
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"smol/internal/blazeit"
	"smol/internal/codec/vid"
	"smol/internal/img"
)

// ScoreTable holds one proxy's raw score for every frame of one stream,
// plus per-GOP min/max summaries aligned with the stream's GOP index — the
// structure selection queries prune GOPs with before touching any bytes.
type ScoreTable struct {
	// Stream indexes the video's Streams() slice.
	Stream int
	// Proxy names the scoring model (blazeit.BlobProxyName or a zoo entry
	// name).
	Proxy string
	// Frames holds the raw score per frame.
	Frames []float64
	// GOPMin and GOPMax summarize each GOP's raw score range, aligned with
	// the stream's Index.
	GOPMin []float64
	GOPMax []float64
}

type scoreKey struct {
	stream int
	proxy  string
}

// Scores returns the persisted score table for one stream and proxy of an
// ingested video, if present.
func (s *Store) Scores(video string, stream int, proxy string) (*ScoreTable, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[video]
	if !ok {
		return nil, false
	}
	t, ok := v.scores[scoreKey{stream, proxy}]
	return t, ok
}

// PutScores materializes a proxy's per-frame raw scores for one stream of
// an ingested video: the per-GOP summaries are derived from the stream's
// GOP index, the table replaces any previous one for the same (stream,
// proxy), and the video's whole score sidecar is rewritten and fsynced.
// Persisting is idempotent — repeat queries over the same proxy overwrite
// the table with identical bytes.
func (s *Store) PutScores(video string, stream int, proxy string, frames []float64) (*ScoreTable, error) {
	if proxy == "" || len(proxy) > 255 {
		return nil, fmt.Errorf("store: invalid proxy name %q", proxy)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[video]
	if !ok {
		return nil, fmt.Errorf("store: unknown video %q", video)
	}
	streams := v.Streams()
	if stream < 0 || stream >= len(streams) {
		return nil, fmt.Errorf("store: video %q has no stream %d", video, stream)
	}
	t, err := buildScoreTable(stream, proxy, frames, streams[stream])
	if err != nil {
		return nil, err
	}
	if v.scores == nil {
		v.scores = make(map[scoreKey]*ScoreTable)
	}
	v.scores[scoreKey{stream, proxy}] = t
	if err := writeFileSync(filepath.Join(s.dir, video+".scr"), encodeScores(v.scores)); err != nil {
		return nil, err
	}
	return t, nil
}

// buildScoreTable validates the score vector against the stream and derives
// the per-GOP summaries from its GOP index.
func buildScoreTable(stream int, proxy string, frames []float64, st Stream) (*ScoreTable, error) {
	if len(frames) != st.Info.Frames {
		return nil, fmt.Errorf("store: %d scores for a %d-frame stream", len(frames), st.Info.Frames)
	}
	t := &ScoreTable{
		Stream: stream,
		Proxy:  proxy,
		Frames: append([]float64(nil), frames...),
		GOPMin: make([]float64, len(st.Index)),
		GOPMax: make([]float64, len(st.Index)),
	}
	for g, e := range st.Index {
		lo, hi := math.Inf(1), math.Inf(-1)
		for f := e.FirstFrame; f < e.FirstFrame+e.Frames; f++ {
			if frames[f] < lo {
				lo = frames[f]
			}
			if frames[f] > hi {
				hi = frames[f]
			}
		}
		t.GOPMin[g], t.GOPMax[g] = lo, hi
	}
	return t, nil
}

// BlobScores runs the canonical blob-proxy pass over a stream: a sequential
// full-fidelity decode (deblocking on) with frame reuse, one raw score per
// frame, plus the decode work it cost. Ingest-time materialization and live
// query-time scoring both run exactly this, so persisted and recomputed
// scores are bit-identical.
func BlobScores(st Stream) ([]float64, vid.DecodeStats, error) {
	dec, err := vid.NewDecoder(st.Data, vid.DecodeOptions{})
	if err != nil {
		return nil, vid.DecodeStats{}, err
	}
	counter := blazeit.DefaultCounter(st.Info.W)
	scores := make([]float64, 0, st.Info.Frames)
	var dst *img.Image
	for {
		m, err := dec.NextInto(dst)
		if err == vid.ErrEndOfStream {
			break
		}
		if err != nil {
			return nil, vid.DecodeStats{}, err
		}
		scores = append(scores, counter.Score(m))
		dst = m
	}
	return scores, dec.Stats(), nil
}

const (
	scoresVersion = 1
)

var scoresMagic = [4]byte{'S', 'S', 'C', 'R'}

// encodeScores serializes a video's score tables in deterministic (stream,
// proxy) order with a trailing checksum.
func encodeScores(tables map[scoreKey]*ScoreTable) []byte {
	keys := make([]scoreKey, 0, len(tables))
	for k := range tables {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].stream != keys[j].stream {
			return keys[i].stream < keys[j].stream
		}
		return keys[i].proxy < keys[j].proxy
	})
	buf := append([]byte(nil), scoresMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, scoresVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(keys)))
	for _, k := range keys {
		t := tables[k]
		buf = binary.BigEndian.AppendUint16(buf, uint16(t.Stream))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Proxy)))
		buf = append(buf, t.Proxy...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Frames)))
		for _, v := range t.Frames {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.GOPMin)))
		for g := range t.GOPMin {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(t.GOPMin[g]))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(t.GOPMax[g]))
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeScores parses a score sidecar, verifying framing and checksum.
func decodeScores(data []byte) ([]*ScoreTable, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("store: score sidecar truncated")
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("store: score sidecar checksum mismatch")
	}
	pos := 0
	need := func(n int) error {
		if pos+n > len(body) {
			return fmt.Errorf("store: score sidecar truncated")
		}
		return nil
	}
	if err := need(8); err != nil {
		return nil, err
	}
	if [4]byte(body[:4]) != scoresMagic {
		return nil, fmt.Errorf("store: bad score sidecar magic")
	}
	if v := binary.BigEndian.Uint16(body[4:]); v != scoresVersion {
		return nil, fmt.Errorf("store: unsupported score sidecar version %d", v)
	}
	count := int(binary.BigEndian.Uint16(body[6:]))
	pos = 8
	tables := make([]*ScoreTable, 0, count)
	for i := 0; i < count; i++ {
		if err := need(4); err != nil {
			return nil, err
		}
		t := &ScoreTable{Stream: int(binary.BigEndian.Uint16(body[pos:]))}
		plen := int(binary.BigEndian.Uint16(body[pos+2:]))
		pos += 4
		if err := need(plen + 4); err != nil {
			return nil, err
		}
		t.Proxy = string(body[pos : pos+plen])
		pos += plen
		nf := int(binary.BigEndian.Uint32(body[pos:]))
		pos += 4
		if err := need(8*nf + 4); err != nil {
			return nil, err
		}
		t.Frames = make([]float64, nf)
		for f := range t.Frames {
			t.Frames[f] = math.Float64frombits(binary.BigEndian.Uint64(body[pos:]))
			pos += 8
		}
		ng := int(binary.BigEndian.Uint32(body[pos:]))
		pos += 4
		if err := need(16 * ng); err != nil {
			return nil, err
		}
		t.GOPMin = make([]float64, ng)
		t.GOPMax = make([]float64, ng)
		for g := 0; g < ng; g++ {
			t.GOPMin[g] = math.Float64frombits(binary.BigEndian.Uint64(body[pos:]))
			t.GOPMax[g] = math.Float64frombits(binary.BigEndian.Uint64(body[pos+8:]))
			pos += 16
		}
		tables = append(tables, t)
	}
	if pos != len(body) {
		return nil, fmt.Errorf("store: score sidecar has %d trailing bytes", len(body)-pos)
	}
	return tables, nil
}

// loadScores attaches a video's persisted score tables, if any. Scores are
// regenerable acceleration state, so every failure mode — missing file,
// torn write, checksum mismatch, tables that no longer match the streams —
// degrades to "no cached scores" rather than failing the video load.
func loadScores(dir string, v *Video) {
	data, err := os.ReadFile(filepath.Join(dir, v.Name+".scr"))
	if err != nil {
		return
	}
	tables, err := decodeScores(data)
	if err != nil {
		return
	}
	streams := v.Streams()
	for _, t := range tables {
		if t.Stream < 0 || t.Stream >= len(streams) {
			continue
		}
		st := streams[t.Stream]
		if len(t.Frames) != st.Info.Frames || len(t.GOPMin) != len(st.Index) {
			continue
		}
		if v.scores == nil {
			v.scores = make(map[scoreKey]*ScoreTable)
		}
		v.scores[scoreKey{t.Stream, t.Proxy}] = t
	}
}

// ScoreRef names one persisted score table.
type ScoreRef struct {
	Stream int
	Proxy  string
}

// ScoredProxies lists the score tables persisted for a video, in
// deterministic (stream, proxy) order — what the selection planner keys
// its cached-proxy arithmetic on.
func (s *Store) ScoredProxies(video string) []ScoreRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[video]
	if !ok {
		return nil
	}
	refs := make([]ScoreRef, 0, len(v.scores))
	for k := range v.scores {
		refs = append(refs, ScoreRef{Stream: k.stream, Proxy: k.proxy})
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Stream != refs[j].Stream {
			return refs[i].Stream < refs[j].Stream
		}
		return refs[i].Proxy < refs[j].Proxy
	})
	return refs
}
