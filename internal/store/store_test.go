package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"smol/internal/codec/vid"
	"smol/internal/img"
)

// storeClip encodes a small moving-gradient clip.
func storeClip(t testing.TB, frames, w, h, gop int) []byte {
	t.Helper()
	imgs := make([]*img.Image, frames)
	for f := range imgs {
		m := img.New(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				m.Set(x, y, uint8(40+x+f*3), uint8(70+y), uint8(90+((x+y+f)&31)))
			}
		}
		imgs[f] = m
	}
	enc, err := vid.Encode(imgs, vid.EncodeOptions{Quality: 70, GOP: gop})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestIngestRoundTrip: an ingested video must come back byte-identical
// with a valid GOP table — both from the live store and from a fresh Open
// of the same directory — and renditions must share the primary's timeline.
func TestIngestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clip := storeClip(t, 13, 96, 64, 5)
	// 48 duplicated, 64 matches the source short edge, 512 oversized:
	// only 48 and 32 materialize.
	v, err := s.Ingest("clip", clip, IngestOptions{RenditionShortEdges: []int{32, 48, 64, 512, 48}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Primary.Data, clip) {
		t.Fatal("primary stream not stored byte-identical")
	}
	if len(v.Renditions) != 2 {
		t.Fatalf("%d renditions, want 2 (oversized and duplicate edges skipped)", len(v.Renditions))
	}
	for i, r := range v.Renditions {
		if r.Info.Frames != 13 || r.Info.GOP != 5 {
			t.Fatalf("rendition %d timeline %+v does not match the primary", i, r.Info)
		}
		if min(r.Info.W, r.Info.H) >= min(96, 64) {
			t.Fatalf("rendition %d is not smaller than the source", i)
		}
		if len(r.Index) != 3 {
			t.Fatalf("rendition %d has %d GOPs, want 3", i, len(r.Index))
		}
	}
	if got := len(v.Primary.Index); got != 3 {
		t.Fatalf("primary has %d GOPs indexed, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Video("clip")
	if !ok {
		t.Fatal("reopened store lost the video")
	}
	if !bytes.Equal(got.Primary.Data, clip) {
		t.Fatal("reloaded primary differs from the ingested bytes")
	}
	if len(got.Renditions) != 2 {
		t.Fatalf("reloaded store has %d renditions, want 2", len(got.Renditions))
	}
	for i, st := range got.Streams() {
		want := v.Streams()[i]
		if !bytes.Equal(st.Data, want.Data) || st.Info != want.Info {
			t.Fatalf("stream %d changed across reopen", i)
		}
		for g := range st.Index {
			if st.Index[g] != want.Index[g] {
				t.Fatalf("stream %d GOP %d index changed across reopen", i, g)
			}
		}
		// The persisted index must actually drive a decoder.
		dec, err := vid.NewDecoder(st.Data, vid.DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.SetGOPIndex(st.Index); err != nil {
			t.Fatalf("stream %d: persisted index rejected: %v", i, err)
		}
		if err := dec.SeekFrame(st.Info.Frames - 1); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Next(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALRecovery: files of a video that began ingest but never committed —
// and layout files with no journal entry at all — must be removed on Open,
// leaving committed videos untouched.
func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clip := storeClip(t, 6, 48, 32, 3)
	if _, err := s.Ingest("good", clip, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-ingest: Begin journaled, files half-written,
	// no Commit.
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := appendWAL(wal, opBegin, "partial"); err != nil {
		t.Fatal(err)
	}
	wal.Close()
	s.Close()
	for _, f := range []string{"partial.svid", "partial.idx", "partial.r0.svid", "stray.svid"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated file must survive recovery.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Video("good"); !ok {
		t.Fatal("recovery lost the committed video")
	}
	if re.Len() != 1 {
		t.Fatalf("recovered store holds %d videos, want 1", re.Len())
	}
	for _, f := range []string{"partial.svid", "partial.idx", "partial.r0.svid", "stray.svid"} {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery", f)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("recovery removed an unrelated file")
	}
	got, _ := re.Video("good")
	if !bytes.Equal(got.Primary.Data, clip) {
		t.Fatal("committed video corrupted by recovery")
	}
}

// TestTornWALTail: a crash mid-append leaves a torn record; the journal
// scan must trust everything before it and discard the tail.
func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("good", storeClip(t, 4, 48, 32, 2), IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte{opBegin, 0, 9, 'h', 'a'}); err != nil {
		t.Fatal(err)
	}
	wal.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Video("good"); !ok {
		t.Fatal("torn journal tail lost the committed video")
	}
}

// TestSidecarCorruption: a committed video whose sidecar fails its
// checksum must fail Open loudly rather than serve a wrong index.
func TestSidecarCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("clip", storeClip(t, 4, 48, 32, 2), IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, "clip.idx")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupt sidecar")
	}
}

// TestIngestValidation: names outside the safe alphabet, duplicate names,
// and non-SVID payloads are rejected before anything touches disk.
func TestIngestValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	clip := storeClip(t, 4, 48, 32, 2)
	for _, name := range []string{"", "a/b", "a.b", "..", "x y"} {
		if _, err := s.Ingest(name, clip, IngestOptions{}); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	if _, err := s.Ingest("ok", []byte("not a video"), IngestOptions{}); err == nil {
		t.Fatal("garbage payload accepted")
	}
	if _, err := s.Ingest("ok", clip, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("ok", clip, IngestOptions{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}
