package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"smol/internal/codec/vid"
)

// Sidecar index format (<name>.idx), all integers big-endian:
//
//	magic "SIDX" | u16 version | u16 stream count
//	per stream:
//	  u32 W | u32 H | u32 frames | u16 GOP | u8 quality | u32 GOP count
//	  per GOP: u64 byte offset | u32 first frame | u32 frame count
//	u32 CRC-32 (IEEE) of everything above
//
// The sidecar is the ingest-time product that makes store-backed sampling
// O(sampled): a decoder handed the table seeks straight to a sampled GOP's
// I-frame byte offset instead of walking the stream. Stream 0 is the
// primary; streams 1..n-1 are the materialized renditions in file order.

var sidecarMagic = [4]byte{'S', 'I', 'D', 'X'}

const sidecarVersion = 1

// encodeSidecar serializes the per-stream GOP tables.
func encodeSidecar(streams []Stream) []byte {
	buf := append([]byte(nil), sidecarMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, sidecarVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(streams)))
	for _, st := range streams {
		buf = binary.BigEndian.AppendUint32(buf, uint32(st.Info.W))
		buf = binary.BigEndian.AppendUint32(buf, uint32(st.Info.H))
		buf = binary.BigEndian.AppendUint32(buf, uint32(st.Info.Frames))
		buf = binary.BigEndian.AppendUint16(buf, uint16(st.Info.GOP))
		buf = append(buf, byte(st.Info.Quality))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.Index)))
		for _, e := range st.Index {
			buf = binary.BigEndian.AppendUint64(buf, uint64(e.Offset))
			buf = binary.BigEndian.AppendUint32(buf, uint32(e.FirstFrame))
			buf = binary.BigEndian.AppendUint32(buf, uint32(e.Frames))
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeSidecar parses and checksums a sidecar, returning the per-stream
// metadata with nil Data (the caller pairs streams with their files).
func decodeSidecar(data []byte) ([]Stream, error) {
	if len(data) < 4+2+2+4 {
		return nil, fmt.Errorf("store: sidecar truncated (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("store: sidecar checksum mismatch")
	}
	if string(body[:4]) != string(sidecarMagic[:]) {
		return nil, fmt.Errorf("store: bad sidecar magic")
	}
	if v := binary.BigEndian.Uint16(body[4:]); v != sidecarVersion {
		return nil, fmt.Errorf("store: unsupported sidecar version %d", v)
	}
	count := int(binary.BigEndian.Uint16(body[6:]))
	pos := 8
	need := func(n int) error {
		if pos+n > len(body) {
			return fmt.Errorf("store: sidecar truncated at byte %d", pos)
		}
		return nil
	}
	streams := make([]Stream, 0, count)
	for s := 0; s < count; s++ {
		if err := need(4 + 4 + 4 + 2 + 1 + 4); err != nil {
			return nil, err
		}
		info := vid.Info{
			W:       int(binary.BigEndian.Uint32(body[pos:])),
			H:       int(binary.BigEndian.Uint32(body[pos+4:])),
			Frames:  int(binary.BigEndian.Uint32(body[pos+8:])),
			GOP:     int(binary.BigEndian.Uint16(body[pos+12:])),
			Quality: int(body[pos+14]),
		}
		gops := int(binary.BigEndian.Uint32(body[pos+15:]))
		pos += 19
		if err := need(gops * 16); err != nil {
			return nil, err
		}
		index := make([]vid.GOPEntry, gops)
		for g := range index {
			index[g] = vid.GOPEntry{
				Offset:     int64(binary.BigEndian.Uint64(body[pos:])),
				FirstFrame: int(binary.BigEndian.Uint32(body[pos+8:])),
				Frames:     int(binary.BigEndian.Uint32(body[pos+12:])),
				W:          info.W,
				H:          info.H,
			}
			pos += 16
		}
		streams = append(streams, Stream{Info: info, Index: index})
	}
	if pos != len(body) {
		return nil, fmt.Errorf("store: %d trailing sidecar bytes", len(body)-pos)
	}
	return streams, nil
}
