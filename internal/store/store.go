// Package store is an embedded media store: SVID streams are written once
// at ingest under a write-ahead log, each with a per-GOP byte-offset index
// persisted in a sidecar, and optionally with low-resolution renditions
// materialized alongside the primary. Queries then open any stream with its
// index already in hand and seek straight to sampled GOPs — the layout that
// makes stride-sampling cost O(sampled GOPs) instead of O(stream length).
//
// Layout under the store directory:
//
//	wal.log        ingest journal: Begin/Commit records, CRC-framed
//	<name>.svid    the primary stream, byte-for-byte as ingested
//	<name>.r<i>.svid  rendition i, re-encoded at ingest
//	<name>.idx     sidecar: per-stream geometry + GOP tables (see index.go)
//	<name>.scr     sidecar: proxy score tables, optional (see scores.go)
//
// Crash safety follows the classic WAL protocol: a Begin record is fsynced
// before any data file is written and a Commit record is fsynced after all
// of them, so Open can identify half-ingested videos (Begin without Commit,
// or files with no journal entry at all) and remove their files. Committed
// videos load with checksum-verified sidecars.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"smol/internal/blazeit"
	"smol/internal/codec/vid"
	"smol/internal/img"
)

// Stream is one encoded rendition resident in the store: its bytes, probed
// geometry, and the ingest-time GOP table a decoder seeks with.
type Stream struct {
	Data  []byte
	Info  vid.Info
	Index []vid.GOPEntry
}

// Video is one ingested video: the primary stream plus any renditions
// materialized at ingest, all sharing the primary's timeline (equal frame
// counts and GOP interval).
type Video struct {
	Name       string
	Primary    Stream
	Renditions []Stream

	// scores holds the video's proxy score tables, keyed by (stream,
	// proxy). Accessed through Store.Scores/PutScores under the store
	// mutex; may be nil when nothing has been scored.
	scores map[scoreKey]*ScoreTable
}

// Streams returns the primary followed by the renditions — the order
// ServePlan.Stream indexes.
func (v *Video) Streams() []Stream {
	out := make([]Stream, 0, 1+len(v.Renditions))
	out = append(out, v.Primary)
	return append(out, v.Renditions...)
}

// IngestOptions configures one Ingest call.
type IngestOptions struct {
	// RenditionShortEdges lists the low-resolution renditions to
	// materialize, by short-edge pixels (e.g. 64 for a thumbnail proxy).
	// Edges at or above the source's short edge are skipped — a rendition
	// never fabricates detail — as are duplicates.
	RenditionShortEdges []int
	// RenditionQuality is the encoder quality for renditions (0 = the
	// source stream's quality).
	RenditionQuality int
	// ProxyScores materializes blob-proxy score tables for every stream at
	// ingest (one extra sequential decode per stream), so the first
	// selection or aggregation query over the video skips its proxy pass.
	// Off by default: queries that need scores compute and persist them
	// lazily on first use.
	ProxyScores bool
}

// Store is an open media store. All methods are safe for concurrent use.
type Store struct {
	dir string

	mu     sync.Mutex
	wal    *os.File
	videos map[string]*Video
}

const walName = "wal.log"

// Open opens (creating if needed) the store rooted at dir, recovering from
// any interrupted ingest: files of videos without a Commit record are
// removed, and every committed video is loaded with its sidecar verified.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	committed, err := readWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	if err := removeOrphans(dir, committed); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, videos: make(map[string]*Video)}
	for name := range committed {
		v, err := loadVideo(dir, name)
		if err != nil {
			return nil, fmt.Errorf("store: loading committed video %q: %w", name, err)
		}
		s.videos[name] = v
	}
	// Rewrite the journal compacted: one Commit per surviving video. This
	// both truncates torn tails and drops Begin noise from past crashes.
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, name := range sortedNames(s.videos) {
		if err := appendWAL(wal, opCommit, name); err != nil {
			wal.Close()
			return nil, err
		}
	}
	s.wal = wal
	return s, nil
}

// Close releases the journal handle. Resident video data stays valid.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Video returns an ingested video by name.
func (s *Store) Video(name string) (*Video, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[name]
	return v, ok
}

// Names lists the ingested videos in lexical order.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sortedNames(s.videos)
}

// Len reports the number of ingested videos.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.videos)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Ingest validates and indexes an SVID stream, materializes any requested
// renditions, and commits the video to the store under the WAL protocol.
// The stream is written once; every later query seeks through the
// persisted GOP table instead of re-scanning it.
func (s *Store) Ingest(name string, data []byte, opts IngestOptions) (*Video, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	info, err := vid.Probe(data)
	if err != nil {
		return nil, fmt.Errorf("store: ingesting %q: %w", name, err)
	}
	index, err := vid.IndexGOPs(data)
	if err != nil {
		return nil, fmt.Errorf("store: indexing %q: %w", name, err)
	}
	v := &Video{
		Name:    name,
		Primary: Stream{Data: data, Info: info, Index: index},
	}
	if edges := renditionEdges(info, opts.RenditionShortEdges); len(edges) > 0 {
		v.Renditions, err = buildRenditions(data, info, edges, opts.RenditionQuality)
		if err != nil {
			return nil, fmt.Errorf("store: rendering %q renditions: %w", name, err)
		}
	}
	if opts.ProxyScores {
		v.scores = make(map[scoreKey]*ScoreTable)
		for i, st := range v.Streams() {
			raw, _, err := BlobScores(st)
			if err != nil {
				return nil, fmt.Errorf("store: scoring %q stream %d: %w", name, i, err)
			}
			t, err := buildScoreTable(i, blazeit.BlobProxyName, raw, st)
			if err != nil {
				return nil, fmt.Errorf("store: scoring %q stream %d: %w", name, i, err)
			}
			v.scores[scoreKey{i, blazeit.BlobProxyName}] = t
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil, fmt.Errorf("store: closed")
	}
	if _, ok := s.videos[name]; ok {
		return nil, fmt.Errorf("store: %q already ingested", name)
	}
	if err := appendWAL(s.wal, opBegin, name); err != nil {
		return nil, err
	}
	files := map[string][]byte{
		name + ".svid": v.Primary.Data,
		name + ".idx":  encodeSidecar(v.Streams()),
	}
	for i, r := range v.Renditions {
		files[fmt.Sprintf("%s.r%d.svid", name, i)] = r.Data
	}
	if len(v.scores) > 0 {
		files[name+".scr"] = encodeScores(v.scores)
	}
	for fname, content := range files {
		if err := writeFileSync(filepath.Join(s.dir, fname), content); err != nil {
			return nil, err
		}
	}
	if err := appendWAL(s.wal, opCommit, name); err != nil {
		return nil, err
	}
	s.videos[name] = v
	return v, nil
}

// renditionEdges filters the requested short edges: in-range, deduplicated,
// strictly below the source's short edge, largest first (so rendition order
// is deterministic and roughly mirrors quality).
func renditionEdges(info vid.Info, edges []int) []int {
	short := info.W
	if info.H < short {
		short = info.H
	}
	seen := make(map[int]bool)
	var out []int
	for _, e := range edges {
		if e < 8 || e >= short || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// buildRenditions decodes the primary once and re-encodes it at each
// requested short edge, preserving the source GOP interval so every
// rendition shares the primary's timeline (the planner's variant contract).
func buildRenditions(data []byte, info vid.Info, edges []int, quality int) ([]Stream, error) {
	frames, err := vid.DecodeAll(data, vid.DecodeOptions{})
	if err != nil {
		return nil, err
	}
	if quality <= 0 {
		quality = info.Quality
	}
	out := make([]Stream, 0, len(edges))
	for _, edge := range edges {
		w, h := img.AspectPreservingSize(info.W, info.H, edge)
		scaled := make([]*img.Image, len(frames))
		for i, f := range frames {
			scaled[i] = f.ResizeBilinear(w, h)
		}
		enc, err := vid.Encode(scaled, vid.EncodeOptions{Quality: quality, GOP: info.GOP})
		if err != nil {
			return nil, err
		}
		rinfo, err := vid.Probe(enc)
		if err != nil {
			return nil, err
		}
		rindex, err := vid.IndexGOPs(enc)
		if err != nil {
			return nil, err
		}
		out = append(out, Stream{Data: enc, Info: rinfo, Index: rindex})
	}
	return out, nil
}

// validateName restricts names to a filesystem- and layout-safe alphabet.
// Dots are excluded so "<name>.r<i>.svid" rendition files can never collide
// with another video's primary.
func validateName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("store: invalid name %q", name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("store: invalid name %q (allowed: letters, digits, '-', '_')", name)
		}
	}
	return nil
}

// loadVideo reads one committed video: sidecar first (checksummed), then
// the stream files it describes, cross-checking each stream's header
// against the persisted geometry.
func loadVideo(dir, name string) (*Video, error) {
	sidecar, err := os.ReadFile(filepath.Join(dir, name+".idx"))
	if err != nil {
		return nil, err
	}
	streams, err := decodeSidecar(sidecar)
	if err != nil {
		return nil, err
	}
	if len(streams) == 0 {
		return nil, fmt.Errorf("sidecar lists no streams")
	}
	for i := range streams {
		fname := name + ".svid"
		if i > 0 {
			fname = fmt.Sprintf("%s.r%d.svid", name, i-1)
		}
		data, err := os.ReadFile(filepath.Join(dir, fname))
		if err != nil {
			return nil, err
		}
		info, err := vid.Probe(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fname, err)
		}
		if info != streams[i].Info {
			return nil, fmt.Errorf("%s header %+v does not match sidecar %+v", fname, info, streams[i].Info)
		}
		streams[i].Data = data
	}
	v := &Video{Name: name, Primary: streams[0], Renditions: streams[1:]}
	loadScores(dir, v)
	return v, nil
}

// WAL record framing: op byte, u16 name length, name, CRC-32 of the
// preceding bytes. Torn tails (a crash mid-append) fail the length or
// checksum test and terminate the scan.
const (
	opBegin  = 'B'
	opCommit = 'C'
)

func appendWAL(f *os.File, op byte, name string) error {
	rec := make([]byte, 0, 3+len(name)+4)
	rec = append(rec, op)
	rec = binary.BigEndian.AppendUint16(rec, uint16(len(name)))
	rec = append(rec, name...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	if _, err := f.Write(rec); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	return nil
}

// readWAL returns the set of committed names. A record that fails framing
// or checksum marks the torn tail of an interrupted append; everything
// before it is trusted, everything after discarded.
func readWAL(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading journal: %w", err)
	}
	committed := make(map[string]bool)
	pos := 0
	for pos+3 <= len(data) {
		nameLen := int(binary.BigEndian.Uint16(data[pos+1:]))
		end := pos + 3 + nameLen + 4
		if end > len(data) {
			break // torn tail
		}
		body := data[pos : pos+3+nameLen]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[pos+3+nameLen:]) {
			break // torn tail
		}
		op, name := body[0], string(body[3:])
		switch op {
		case opBegin:
			// Begin alone proves nothing; only Commit admits the video.
		case opCommit:
			committed[name] = true
		default:
			return nil, fmt.Errorf("store: unknown journal op %q", op)
		}
		pos = end
	}
	return committed, nil
}

// removeOrphans deletes store-layout files whose video has no Commit
// record: the half-written remains of an interrupted ingest.
func removeOrphans(dir string, committed map[string]bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || e.Name() == walName {
			continue
		}
		base, ok := videoBase(e.Name())
		if !ok || committed[base] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return fmt.Errorf("store: removing orphan %s: %w", e.Name(), err)
		}
	}
	return nil
}

// videoBase maps a store-layout file name back to its video name:
// "<name>.svid", "<name>.idx", "<name>.scr", or "<name>.r<i>.svid". Files
// outside the layout are left alone.
func videoBase(fname string) (string, bool) {
	base, found := strings.CutSuffix(fname, ".svid")
	if !found {
		base, found = strings.CutSuffix(fname, ".idx")
		if !found {
			base, found = strings.CutSuffix(fname, ".scr")
			if !found {
				return "", false
			}
		}
		return base, validateName(base) == nil
	}
	// Strip a rendition suffix ".r<i>" if present.
	if i := strings.LastIndex(base, ".r"); i >= 0 {
		digits := base[i+2:]
		allDigits := len(digits) > 0
		for _, c := range digits {
			if c < '0' || c > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			base = base[:i]
		}
	}
	return base, validateName(base) == nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	return f.Close()
}

func sortedNames(m map[string]*Video) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
