package store

import (
	"os"
	"path/filepath"
	"testing"

	"smol/internal/blazeit"
)

// TestScoresPutGetReopen: a persisted score table must come back
// bit-identical — from the live store and from a fresh Open — with per-GOP
// summaries derived from the stream's GOP index.
func TestScoresPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clip := storeClip(t, 13, 96, 64, 5)
	v, err := s.Ingest("clip", clip, IngestOptions{RenditionShortEdges: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, v.Primary.Info.Frames)
	for i := range scores {
		scores[i] = float64((i*7)%5) + 0.25
	}
	if _, err := s.PutScores("clip", 0, "blob", scores[:3]); err == nil {
		t.Fatal("short score vector accepted")
	}
	if _, err := s.PutScores("clip", 5, "blob", scores); err == nil {
		t.Fatal("out-of-range stream accepted")
	}
	if _, err := s.PutScores("nope", 0, "blob", scores); err == nil {
		t.Fatal("unknown video accepted")
	}
	if _, err := s.PutScores("clip", 0, "", scores); err == nil {
		t.Fatal("empty proxy name accepted")
	}
	tab, err := s.PutScores("clip", 0, "blob", scores)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.GOPMin) != len(v.Primary.Index) {
		t.Fatalf("%d GOP summaries for %d GOPs", len(tab.GOPMin), len(v.Primary.Index))
	}
	for g, e := range v.Primary.Index {
		lo, hi := scores[e.FirstFrame], scores[e.FirstFrame]
		for f := e.FirstFrame; f < e.FirstFrame+e.Frames; f++ {
			lo, hi = min(lo, scores[f]), max(hi, scores[f])
		}
		if tab.GOPMin[g] != lo || tab.GOPMax[g] != hi {
			t.Fatalf("GOP %d summary [%g, %g], want [%g, %g]", g, tab.GOPMin[g], tab.GOPMax[g], lo, hi)
		}
	}
	refs := s.ScoredProxies("clip")
	if len(refs) != 1 || refs[0] != (ScoreRef{Stream: 0, Proxy: "blob"}) {
		t.Fatalf("ScoredProxies = %v", refs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Scores("clip", 0, "blob")
	if !ok {
		t.Fatal("reopened store lost the score table")
	}
	for i := range scores {
		if got.Frames[i] != scores[i] {
			t.Fatalf("frame %d score changed across reopen: %g != %g", i, got.Frames[i], scores[i])
		}
	}
	for g := range tab.GOPMin {
		if got.GOPMin[g] != tab.GOPMin[g] || got.GOPMax[g] != tab.GOPMax[g] {
			t.Fatalf("GOP %d summary changed across reopen", g)
		}
	}
}

// TestScoreSidecarCorruption: score tables are regenerable acceleration
// state, so — unlike the GOP index — a corrupt score sidecar must degrade
// to "no cached scores" instead of failing the store open.
func TestScoreSidecarCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clip := storeClip(t, 6, 48, 32, 3)
	v, err := s.Ingest("clip", clip, IngestOptions{ProxyScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Scores("clip", 0, blazeit.BlobProxyName); !ok {
		t.Fatal("ProxyScores ingest did not materialize a score table")
	}
	s.Close()
	path := filepath.Join(dir, "clip.scr")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt score sidecar failed the open: %v", err)
	}
	defer re.Close()
	if _, ok := re.Scores("clip", 0, blazeit.BlobProxyName); ok {
		t.Fatal("corrupt score sidecar served a table")
	}
	if got := re.ScoredProxies("clip"); len(got) != 0 {
		t.Fatalf("corrupt sidecar still lists proxies: %v", got)
	}
	// The video itself must be unharmed, and re-persisting must recover.
	got, ok := re.Video("clip")
	if !ok {
		t.Fatal("video lost alongside its score sidecar")
	}
	fresh, _, err := BlobScores(got.Primary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.PutScores("clip", 0, blazeit.BlobProxyName, fresh); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Scores("clip", 0, blazeit.BlobProxyName); !ok {
		t.Fatal("re-persisted score table missing")
	}
	_ = v
}

// TestIngestProxyScores: opt-in ingest-time materialization must produce
// one blob table per stream, bit-identical to a live BlobScores pass, and
// persist across reopen.
func TestIngestProxyScores(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clip := storeClip(t, 10, 96, 64, 4)
	v, err := s.Ingest("clip", clip, IngestOptions{ProxyScores: true, RenditionShortEdges: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	streams := v.Streams()
	if len(streams) != 2 {
		t.Fatalf("%d streams, want primary + 1 rendition", len(streams))
	}
	s.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for si, st := range streams {
		tab, ok := re.Scores("clip", si, blazeit.BlobProxyName)
		if !ok {
			t.Fatalf("stream %d has no persisted blob scores", si)
		}
		live, _, err := BlobScores(st)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Frames) != len(live) {
			t.Fatalf("stream %d: %d persisted scores, %d live", si, len(tab.Frames), len(live))
		}
		for f := range live {
			if tab.Frames[f] != live[f] {
				t.Fatalf("stream %d frame %d: persisted %g != live %g", si, f, tab.Frames[f], live[f])
			}
		}
	}
}

// TestScoreSidecarOrphanRemoval: a stray .scr with no journaled video must
// be swept on Open like any other layout orphan.
func TestScoreSidecarOrphanRemoval(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest("good", storeClip(t, 4, 48, 32, 2), IngestOptions{ProxyScores: true}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "stray.scr"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := os.Stat(filepath.Join(dir, "stray.scr")); !os.IsNotExist(err) {
		t.Fatal("orphan .scr survived recovery")
	}
	if _, ok := re.Scores("good", 0, blazeit.BlobProxyName); !ok {
		t.Fatal("recovery dropped a committed video's score sidecar")
	}
}
