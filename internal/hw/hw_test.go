package hw

import (
	"math"
	"testing"
)

func TestDeviceLookup(t *testing.T) {
	d, err := Device("T4")
	if err != nil || d.ResNet50TPut != 4513 {
		t.Fatalf("T4 = %+v, err %v", d, err)
	}
	if _, err := Device("H100"); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestDeviceNamesOrderedByYear(t *testing.T) {
	names := DeviceNames()
	if len(names) != 5 || names[0] != "K80" {
		t.Fatalf("names = %v", names)
	}
	var lastYear int
	for _, n := range names {
		d, _ := Device(n)
		if d.ReleaseYear < lastYear {
			t.Fatalf("not ordered by year: %v", names)
		}
		lastYear = d.ReleaseYear
	}
}

func TestFrameworkEfficiencyOrdering(t *testing.T) {
	// Table 1: Keras < PyTorch < TensorRT.
	var last float64
	for _, n := range FrameworkNames() {
		f, err := Framework(n)
		if err != nil {
			t.Fatal(err)
		}
		if f.Efficiency <= last {
			t.Fatalf("%s efficiency %v not increasing", n, f.Efficiency)
		}
		last = f.Efficiency
	}
}

func TestExecThroughputAnchors(t *testing.T) {
	t4, _ := Device("T4")
	trt, _ := Framework("TensorRT")
	for name, want := range map[string]float64{
		"resnet-18": 12592, "resnet-34": 6860, "resnet-50": 4513,
	} {
		d, err := DNN(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := ExecThroughput(d, t4, trt); math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s on T4/TensorRT = %v, want %v", name, got, want)
		}
	}
}

func TestExecThroughputTable1(t *testing.T) {
	// Keras and PyTorch throughputs of ResNet-50 on T4 must reproduce
	// Table 1 within rounding.
	t4, _ := Device("T4")
	rn50, _ := DNN("resnet-50")
	for fw, want := range map[string]float64{"Keras": 243, "PyTorch": 424, "TensorRT": 4513} {
		f, _ := Framework(fw)
		got := ExecThroughput(rn50, t4, f)
		if math.Abs(got-want) > 1 {
			t.Fatalf("%s: %v, want %v", fw, got, want)
		}
	}
}

func TestExecThroughputScalesWithDevice(t *testing.T) {
	rn50, _ := DNN("resnet-50")
	trt, _ := Framework("TensorRT")
	var last float64
	for _, dev := range []string{"K80", "P100", "T4", "V100", "RTX"} {
		d, _ := Device(dev)
		tput := ExecThroughput(rn50, d, trt)
		if tput <= last {
			t.Fatalf("%s throughput %v not increasing", dev, tput)
		}
		last = tput
	}
}

func TestInputScaledThroughput(t *testing.T) {
	// 161x161 input should run (224/161)^2 ~ 1.94x faster.
	got := InputScaledThroughput(4513, 161, 224)
	want := 4513 * (224.0 / 161.0) * (224.0 / 161.0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDecodeCostCalibration(t *testing.T) {
	// Full-resolution ImageNet JPEG (500x375): ~527 im/s across 4 vCPUs.
	us := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 500, H: 375, Quality: 90})
	tput4 := 4 / (us / 1e6)
	if tput4 < 400 || tput4 > 700 {
		t.Fatalf("full-res JPEG decode = %.0f im/s on 4 vCPUs, want ~527", tput4)
	}
	// 161-short thumbnails in PNG: ~1995 im/s across 4 vCPUs.
	us = DecodeCostUS(DecodeSpec{Format: FormatPNG, W: 215, H: 161})
	tput4 = 4 / (us / 1e6)
	if tput4 < 1500 || tput4 > 2500 {
		t.Fatalf("thumbnail PNG decode = %.0f im/s on 4 vCPUs, want ~1995", tput4)
	}
}

func TestDecodeCostMonotonicity(t *testing.T) {
	full := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 500, H: 375})
	small := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 215, H: 161})
	if small >= full {
		t.Fatal("smaller images must decode faster")
	}
	q95 := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 500, H: 375, Quality: 95})
	q50 := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 500, H: 375, Quality: 50})
	if q50 >= q95 {
		t.Fatal("lower quality must decode faster")
	}
	roi := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 500, H: 375, ROIFraction: 0.3})
	if roi >= full {
		t.Fatal("ROI decode must be cheaper")
	}
	noDeblock := DecodeCostUS(DecodeSpec{Format: FormatVideoH264, W: 640, H: 360, NoDeblock: true})
	deblock := DecodeCostUS(DecodeSpec{Format: FormatVideoH264, W: 640, H: 360})
	if noDeblock >= deblock {
		t.Fatal("disabling deblock must be cheaper")
	}
}

func TestPricingFitMatchesPaper(t *testing.T) {
	// §7: ~3.4 vCPUs cost the same as one T4.
	if v := VCPUsPerT4Price(); v < 3.3 || v > 3.5 {
		t.Fatalf("vCPUs per T4 price = %v", v)
	}
	// Linear fit should track the published instance prices closely.
	for _, v := range G4dnVCPUCounts() {
		fit := T4HourlyUSD + VCPUHourlyUSD*float64(v)
		actual := InstancePrice(v)
		if math.Abs(fit-actual)/actual > 0.12 {
			t.Fatalf("vCPUs=%d: fit %.3f vs actual %.3f", v, fit, actual)
		}
	}
	// Unknown size falls back to the fit.
	if p := InstancePrice(12); math.Abs(p-(T4HourlyUSD+12*VCPUHourlyUSD)) > 1e-9 {
		t.Fatalf("fallback price = %v", p)
	}
}

func TestPowerSplitMatchesPaperClaim(t *testing.T) {
	// §2: for ResNet-50, preprocessing needs ~2.2x the power of execution
	// (158 W vs 70 W). Exec at 4513 im/s, preprocessing ~132 im/s per vCPU
	// (527/4).
	pre, exec, _ := PowerSplit(4513, 527.0/4)
	ratio := pre / exec
	if ratio < 1.8 || ratio > 2.8 {
		t.Fatalf("power ratio = %v, want ~2.2", ratio)
	}
	// Cost: $2.37 vs $0.218 per hour → ~11x.
	preUSD, execUSD := HourlyCostSplit(4513, 527.0/4)
	if r := preUSD / execUSD; r < 8 || r > 13 {
		t.Fatalf("cost ratio = %v, want ~11", r)
	}
}

func TestCostPerMillionImages(t *testing.T) {
	// 1927 im/s on 4 vCPUs is Table 8's optimized row: 7.58 cents/1M.
	c := CostPerMillionImages(1927, 4)
	if math.Abs(c-7.58) > 0.1 {
		t.Fatalf("cost = %v cents, want ~7.58", c)
	}
}

func simCfg(preUS, execUS float64, n int) PipelineConfig {
	return PipelineConfig{
		NumImages: n, Producers: 4, Consumers: 2,
		QueueCap: 256, BatchSize: 64,
		PreprocUS:      func(int) float64 { return preUS },
		ExecUSPerImage: execUS,
	}
}

func TestSimulatePreprocBound(t *testing.T) {
	// Preprocessing 10x slower than execution: pipelined throughput should
	// approach the preprocessing rate.
	cfg := simCfg(1000, 25, 4000) // 4 producers at 1000us -> 4000 im/s; exec 40k im/s
	res, err := SimulatePipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre, _ := StageThroughputs(cfg)
	if math.Abs(res.Throughput-pre)/pre > 0.1 {
		t.Fatalf("throughput %v, want ~%v (preproc-bound)", res.Throughput, pre)
	}
	if res.ProducerBusyFrac < 0.9 {
		t.Fatalf("producers should be saturated: %v", res.ProducerBusyFrac)
	}
}

func TestSimulateExecBound(t *testing.T) {
	cfg := simCfg(50, 500, 2000) // producers 80k im/s; exec 2k im/s
	res, err := SimulatePipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, exec := StageThroughputs(cfg)
	if math.Abs(res.Throughput-exec)/exec > 0.1 {
		t.Fatalf("throughput %v, want ~%v (exec-bound)", res.Throughput, exec)
	}
	if res.ConsumerBusyFrac < 0.45 {
		t.Fatalf("device should be busy: %v", res.ConsumerBusyFrac)
	}
}

func TestSimulateBalancedApproxMin(t *testing.T) {
	// Balanced stages: pipelined throughput approaches min(pre, exec) with
	// a modest overhead — the paper's §8.2 observation (16% at full load).
	cfg := simCfg(250, 250, 8000) // both stages at 4000 im/s
	res, err := SimulatePipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre, exec := StageThroughputs(cfg)
	minStage := math.Min(pre, exec)
	if res.Throughput > minStage*1.001 {
		t.Fatalf("throughput %v exceeds min stage %v", res.Throughput, minStage)
	}
	if res.Throughput < minStage*0.75 {
		t.Fatalf("pipelining overhead too large: %v vs min %v", res.Throughput, minStage)
	}
}

func TestSimulateBatchOverheadHidesWithStreams(t *testing.T) {
	base := simCfg(100, 100, 8000)
	base.BatchOverheadUS = 3000
	single := base
	single.Consumers = 1
	dual := base
	dual.Consumers = 2
	r1, err := SimulatePipeline(single)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulatePipeline(dual)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Throughput <= r1.Throughput*1.05 {
		t.Fatalf("second stream should hide transfer overhead: %v vs %v",
			r2.Throughput, r1.Throughput)
	}
}

func TestSimulatePerImageOverheadHurts(t *testing.T) {
	fast := simCfg(200, 50, 4000)
	slow := fast
	slow.PerImageOverheadUS = 100
	rFast, err := SimulatePipeline(fast)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := SimulatePipeline(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Throughput >= rFast.Throughput {
		t.Fatal("per-image overhead must reduce throughput")
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := simCfg(100, 100, 100)
	cfg.QueueCap = 8 // below batch size
	if _, err := SimulatePipeline(cfg); err == nil {
		t.Fatal("queue smaller than batch should be rejected")
	}
	cfg = simCfg(100, 100, 0)
	if _, err := SimulatePipeline(cfg); err == nil {
		t.Fatal("zero images should be rejected")
	}
}

func TestSimulateConservation(t *testing.T) {
	// All images exactly consumed; batches sum to image count.
	cfg := simCfg(120, 80, 999) // non-multiple of batch size
	res, err := SimulatePipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches < 999/64 {
		t.Fatalf("too few batches: %d", res.Batches)
	}
	if res.MakespanUS <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestSimulateVariablePreprocTimes(t *testing.T) {
	// Deterministic per-image variation (e.g. mixed image sizes) must still
	// complete and respect the mean-rate bound.
	cfg := PipelineConfig{
		NumImages: 2000, Producers: 4, Consumers: 2,
		QueueCap: 128, BatchSize: 32,
		PreprocUS: func(i int) float64 {
			if i%10 == 0 {
				return 2000 // occasional big image
			}
			return 300
		},
		ExecUSPerImage: 100,
	}
	res, err := SimulatePipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre, exec := StageThroughputs(cfg)
	bound := math.Min(pre, exec)
	if res.Throughput > bound*1.001 {
		t.Fatalf("throughput %v exceeds bound %v", res.Throughput, bound)
	}
}

func TestSimulateLatencyTracked(t *testing.T) {
	cfg := simCfg(250, 25, 2000)
	res, err := SimulatePipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatencyUS <= 0 || res.MaxLatencyUS <= 0 {
		t.Fatalf("latency not tracked: mean=%v max=%v", res.MeanLatencyUS, res.MaxLatencyUS)
	}
	if res.MeanLatencyUS > res.MaxLatencyUS {
		t.Fatalf("mean latency %v exceeds max %v", res.MeanLatencyUS, res.MaxLatencyUS)
	}
	// An image's latency at least covers its own preprocessing plus one
	// image of execution, and the max cannot exceed the whole makespan.
	if res.MeanLatencyUS < 250+25 {
		t.Fatalf("mean latency %v below single-image floor", res.MeanLatencyUS)
	}
	if res.MaxLatencyUS > res.MakespanUS {
		t.Fatalf("max latency %v exceeds makespan %v", res.MaxLatencyUS, res.MakespanUS)
	}
}

func TestSimulateLatencyGrowsWithBatch(t *testing.T) {
	// Larger batches make every image wait longer: latency should grow
	// monotonically with batch size in the preproc-bound regime.
	var prev float64
	for _, b := range []int{8, 32, 128} {
		cfg := simCfg(500, 25, 2048)
		cfg.BatchSize = b
		cfg.QueueCap = 4 * b
		res, err := SimulatePipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanLatencyUS <= prev {
			t.Fatalf("batch %d: mean latency %v not above previous %v", b, res.MeanLatencyUS, prev)
		}
		prev = res.MeanLatencyUS
	}
}

func TestSimulateLatencyExecBoundBacklog(t *testing.T) {
	// When execution is the bottleneck the bounded queue backs up and
	// latency includes the backlog wait.
	fast, err := SimulatePipeline(simCfg(250, 25, 2000)) // preproc-bound
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulatePipeline(simCfg(25, 500, 2000)) // exec-bound
	if err != nil {
		t.Fatal(err)
	}
	if slow.MeanLatencyUS <= fast.MeanLatencyUS {
		t.Fatalf("exec-bound latency %v should exceed preproc-bound %v",
			slow.MeanLatencyUS, fast.MeanLatencyUS)
	}
}

func TestDecodeCostScaled(t *testing.T) {
	full := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 1920, H: 1080})
	prev := full
	for _, scale := range []int{2, 4, 8} {
		s := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 1920, H: 1080, Scale: scale})
		if s >= prev {
			t.Fatalf("scale 1/%d (%v us) not cheaper than next-larger resolution (%v us)", scale, s, prev)
		}
		prev = s
	}
	// At 1/8 only the entropy share remains (within ~4%): reconstruction
	// work is 64x smaller.
	s8 := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 1920, H: 1080, Scale: 8})
	entropy := full * (1 - jpegReconShare)
	if s8 < entropy || s8 > entropy*1.05 {
		t.Fatalf("1/8 decode %v us, want just above the entropy floor %v us", s8, entropy)
	}
	// Scale composes with ROI: both discounts apply to reconstruction only.
	roiScaled := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 1920, H: 1080, Scale: 4, ROIFraction: 0.25})
	scaled := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 1920, H: 1080, Scale: 4})
	if roiScaled >= scaled || roiScaled < entropy {
		t.Fatalf("ROI+scale %v us, scale-only %v us, entropy floor %v us", roiScaled, scaled, entropy)
	}
	// Scale=1 must be byte-identical to the legacy path.
	if a, b := DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 500, H: 375, ROIFraction: 0.3, Scale: 1}),
		DecodeCostUS(DecodeSpec{Format: FormatJPEG, W: 500, H: 375, ROIFraction: 0.3}); a != b {
		t.Fatalf("scale 1 diverges from unscaled: %v vs %v", a, b)
	}
	// Non-JPEG formats ignore Scale.
	if a, b := DecodeCostUS(DecodeSpec{Format: FormatPNG, W: 500, H: 375, Scale: 8}),
		DecodeCostUS(DecodeSpec{Format: FormatPNG, W: 500, H: 375}); a != b {
		t.Fatalf("PNG should ignore Scale: %v vs %v", a, b)
	}
}

func TestCalibrationZeroValueAndLookup(t *testing.T) {
	var nilCal *Calibration
	if s := nilCal.CPUScale(); s != 1 {
		t.Fatalf("nil calibration CPU scale %v, want 1", s)
	}
	if _, ok := nilCal.ExecUSFor("resnet-50"); ok {
		t.Fatal("nil calibration should not resolve exec times")
	}
	cal := &Calibration{
		ExecUS:       map[string]float64{"live@64": 123.5, "broken": 0},
		PreprocScale: 0.25,
	}
	if us, ok := cal.ExecUSFor("live@64"); !ok || us != 123.5 {
		t.Fatalf("ExecUSFor = %v, %v", us, ok)
	}
	if _, ok := cal.ExecUSFor("missing"); ok {
		t.Fatal("missing entry resolved")
	}
	if _, ok := cal.ExecUSFor("broken"); ok {
		t.Fatal("non-positive measurement resolved")
	}
	if s := cal.CPUScale(); s != 0.25 {
		t.Fatalf("CPU scale %v", s)
	}
}

func TestVideoDecodeCostGOP(t *testing.T) {
	base := DecodeSpec{Format: FormatVideoH264, W: 640, H: 360}
	// All-intra (GOP 1) must cost more than a long-GOP stream: intra frames
	// carry full DCT coefficients, predicted frames mostly motion vectors.
	gop1 := base
	gop1.GOP = 1
	gop30 := base
	gop30.GOP = 30
	if DecodeCostUS(gop1) <= DecodeCostUS(gop30) {
		t.Fatal("all-intra video must cost more than long-GOP video")
	}
	// Longer GOPs monotonically approach the pure P-frame cost from above.
	prev := DecodeCostUS(gop1)
	for _, g := range []int{2, 4, 8, 30, 300} {
		s := base
		s.GOP = g
		c := DecodeCostUS(s)
		if c >= prev {
			t.Fatalf("GOP %d cost %v not below GOP-shorter cost %v", g, c, prev)
		}
		prev = c
	}
	// The deblock discount applies on top of the GOP mix.
	nd := gop30
	nd.NoDeblock = true
	if DecodeCostUS(nd) >= DecodeCostUS(gop30) {
		t.Fatal("NoDeblock must discount GOP-amortized cost")
	}
}

func TestVideoDecodeCostGOPSeek(t *testing.T) {
	base := DecodeSpec{Format: FormatVideoH264, W: 640, H: 360, GOP: 30}
	// Without a stride there is nothing to seek over: the flag is a no-op.
	seek := base
	seek.GOPSeek = true
	if DecodeCostUS(seek) != DecodeCostUS(base) {
		t.Fatal("GOPSeek must not change the per-frame cost at stride 1")
	}
	// At a stride past the GOP, seek cost is capped at one GOP prefix while
	// sequential cost keeps growing linearly with the stride.
	prevSeek := 0.0
	for i, fps := range []int{30, 100, 300, 1000} {
		seq := base
		seq.FramesPerSample = fps
		sk := seq
		sk.GOPSeek = true
		cSeq, cSeek := DecodeCostUS(seq), DecodeCostUS(sk)
		if cSeek >= cSeq {
			t.Fatalf("stride %d: seek cost %v not below sequential %v", fps, cSeek, cSeq)
		}
		if i > 0 && cSeek != prevSeek {
			t.Fatalf("stride %d: seek cost %v changed with stride (prev %v) — must be O(sampled GOPs)", fps, cSeek, prevSeek)
		}
		prevSeek = cSeek
	}
	// Below one GOP prefix of work, seeking cannot beat the stride span:
	// the model takes the cheaper of the two.
	small := base
	small.FramesPerSample = 2
	smallSeek := small
	smallSeek.GOPSeek = true
	if DecodeCostUS(smallSeek) > DecodeCostUS(small) {
		t.Fatal("seek cost must never exceed the sequential stride span")
	}
	// The deblock discount reaches the seek term too.
	nd := seek
	nd.FramesPerSample = 300
	ndOff := nd
	ndOff.NoDeblock = true
	if DecodeCostUS(ndOff) >= DecodeCostUS(nd) {
		t.Fatal("NoDeblock must discount the seek-capped cost")
	}
}

func TestCalibrationVideoScale(t *testing.T) {
	var nilCal *Calibration
	if s := nilCal.VideoCPUScale(); s != 1 {
		t.Fatalf("nil calibration video scale %v, want 1", s)
	}
	// Uncalibrated video falls back to the generic CPU scale.
	cal := &Calibration{PreprocScale: 3}
	if s := cal.VideoCPUScale(); s != 3 {
		t.Fatalf("video scale fallback %v, want 3", s)
	}
	cal.VideoScale = 7
	if s := cal.VideoCPUScale(); s != 7 {
		t.Fatalf("video scale %v, want 7", s)
	}
	if s := cal.CPUScale(); s != 3 {
		t.Fatalf("video scale leaked into generic CPU scale: %v", s)
	}
}
