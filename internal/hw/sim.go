package hw

import (
	"container/heap"
	"fmt"
)

// PipelineConfig describes one end-to-end inference pipeline run for the
// discrete-event simulator: P preprocessing workers feed a bounded MPMC
// queue consumed in batches by C accelerator streams — the same topology as
// the real engine in internal/engine.
type PipelineConfig struct {
	// NumImages is the total number of images to push through.
	NumImages int
	// Producers is the number of preprocessing workers (vCPUs).
	Producers int
	// Consumers is the number of accelerator streams.
	Consumers int
	// QueueCap is the bounded queue capacity (must be >= BatchSize).
	QueueCap int
	// BatchSize is the accelerator batch size.
	BatchSize int
	// PreprocUS returns the preprocessing time (microseconds of one vCPU)
	// of image i.
	PreprocUS func(i int) float64
	// ExecUSPerImage is the accelerator execution time per image within a
	// batch.
	ExecUSPerImage float64
	// BatchOverheadUS is the fixed per-batch cost (kernel launch + host to
	// device transfer). Without pinned memory this roughly triples.
	BatchOverheadUS float64
	// PerImageOverheadUS models per-image allocation/copy overhead on the
	// producer side when buffer reuse is disabled.
	PerImageOverheadUS float64
}

// Validate checks the configuration.
func (c PipelineConfig) Validate() error {
	if c.NumImages <= 0 || c.Producers <= 0 || c.Consumers <= 0 {
		return fmt.Errorf("hw: invalid pipeline counts %+v", c)
	}
	if c.BatchSize <= 0 || c.QueueCap < c.BatchSize {
		return fmt.Errorf("hw: queue capacity %d must be >= batch size %d", c.QueueCap, c.BatchSize)
	}
	if c.PreprocUS == nil || c.ExecUSPerImage < 0 {
		return fmt.Errorf("hw: missing stage costs")
	}
	return nil
}

// PipelineResult summarizes one simulated run.
type PipelineResult struct {
	// MakespanUS is the total virtual time from start to last batch done.
	MakespanUS float64
	// Throughput is images per second.
	Throughput float64
	// ProducerBusyFrac and ConsumerBusyFrac are stage utilizations in
	// [0, 1] (averaged over workers).
	ProducerBusyFrac float64
	ConsumerBusyFrac float64
	// Batches is the number of accelerator batches executed.
	Batches int
	// MeanLatencyUS and MaxLatencyUS measure per-image latency from the
	// start of an image's preprocessing to the completion of the batch
	// that carried it (the latency a caller of the engine observes in the
	// latency-constrained setting of §3.1).
	MeanLatencyUS float64
	MaxLatencyUS  float64
}

type simEvent struct {
	t     float64
	kind  int // 0 = producer finished an image, 1 = consumer finished a batch
	who   int
	n     int     // batch size for consumer events
	start float64 // preprocessing start time of the image (producer events)
}

type eventHeap []simEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// SimulatePipeline runs the discrete-event simulation and returns aggregate
// statistics. The simulation is deterministic for a deterministic PreprocUS.
func SimulatePipeline(cfg PipelineConfig) (PipelineResult, error) {
	if err := cfg.Validate(); err != nil {
		return PipelineResult{}, err
	}
	type stalled struct {
		who   int
		start float64
	}
	var (
		events       eventHeap
		queue        []float64 // preprocessing start times of items waiting for the accelerator
		blocked      []stalled // producers stalled on a full queue, with their item's start time
		nextImage    int
		produced     int
		consumed     int
		now          float64
		prodBusyUS   float64
		consBusyUS   float64
		batches      int
		idleCons     []int
		deviceFreeAt float64 // the accelerator is a single serialized resource
		latSumUS     float64
		latMaxUS     float64
	)

	preprocTime := func(i int) float64 {
		return cfg.PreprocUS(i) + cfg.PerImageOverheadUS
	}

	// Start every producer on its first image.
	for p := 0; p < cfg.Producers && nextImage < cfg.NumImages; p++ {
		d := preprocTime(nextImage)
		nextImage++
		prodBusyUS += d
		heap.Push(&events, simEvent{t: d, kind: 0, who: p, start: 0})
	}
	for c := 0; c < cfg.Consumers; c++ {
		idleCons = append(idleCons, c)
	}

	allProduced := func() bool {
		return produced == cfg.NumImages && len(blocked) == 0
	}

	// tryDispatch starts idle consumer streams when a full batch is ready,
	// or a partial batch when no more input will arrive. A stream first
	// pays the transfer/launch overhead, then waits for the accelerator
	// (a single serialized compute resource); with two or more streams the
	// overhead of one batch hides behind the compute of another, which is
	// exactly why the engine uses multiple CUDA streams (§6.1).
	tryDispatch := func() {
		for len(idleCons) > 0 && len(queue) > 0 {
			if len(queue) < cfg.BatchSize && !allProduced() {
				return // wait for a fuller batch
			}
			n := len(queue)
			if n > cfg.BatchSize {
				n = cfg.BatchSize
			}
			c := idleCons[len(idleCons)-1]
			idleCons = idleCons[:len(idleCons)-1]
			transferDone := now + cfg.BatchOverheadUS
			start := transferDone
			if deviceFreeAt > start {
				start = deviceFreeAt
			}
			compute := float64(n) * cfg.ExecUSPerImage
			deviceFreeAt = start + compute
			consBusyUS += compute
			batches++
			for _, s := range queue[:n] {
				lat := deviceFreeAt - s
				latSumUS += lat
				if lat > latMaxUS {
					latMaxUS = lat
				}
			}
			queue = queue[n:]
			heap.Push(&events, simEvent{t: deviceFreeAt, kind: 1, who: c, n: n})
			// Dequeue freed space: unblock stalled producers.
			for len(blocked) > 0 && len(queue) < cfg.QueueCap {
				p := blocked[0]
				blocked = blocked[1:]
				queue = append(queue, p.start)
				produced++
				if nextImage < cfg.NumImages {
					d := preprocTime(nextImage)
					nextImage++
					prodBusyUS += d
					heap.Push(&events, simEvent{t: now + d, kind: 0, who: p.who, start: now})
				}
			}
		}
	}

	for events.Len() > 0 {
		e := heap.Pop(&events).(simEvent)
		now = e.t
		switch e.kind {
		case 0: // producer finished an image
			if len(queue) < cfg.QueueCap {
				queue = append(queue, e.start)
				produced++
				if nextImage < cfg.NumImages {
					d := preprocTime(nextImage)
					nextImage++
					prodBusyUS += d
					heap.Push(&events, simEvent{t: now + d, kind: 0, who: e.who, start: now})
				}
			} else {
				blocked = append(blocked, stalled{who: e.who, start: e.start})
			}
			tryDispatch()
		case 1: // consumer finished a batch
			consumed += e.n
			idleCons = append(idleCons, e.who)
			tryDispatch()
		}
	}

	if consumed != cfg.NumImages {
		return PipelineResult{}, fmt.Errorf("hw: simulation stalled: %d of %d images consumed",
			consumed, cfg.NumImages)
	}
	res := PipelineResult{
		MakespanUS:    now,
		Batches:       batches,
		MeanLatencyUS: latSumUS / float64(cfg.NumImages),
		MaxLatencyUS:  latMaxUS,
	}
	if now > 0 {
		res.Throughput = float64(cfg.NumImages) / (now / 1e6)
		res.ProducerBusyFrac = prodBusyUS / (now * float64(cfg.Producers))
		res.ConsumerBusyFrac = consBusyUS / (now * float64(cfg.Consumers))
	}
	return res, nil
}

// StageThroughputs returns the isolated stage rates implied by a config:
// preprocessing-only (all producers, no downstream) and execution-only
// (one accelerator; with two or more streams the per-batch transfer
// overhead hides behind compute), both in images/second. These are what a
// cost model measures when benchmarking stages separately.
func StageThroughputs(cfg PipelineConfig) (preproc, exec float64) {
	var totalUS float64
	for i := 0; i < cfg.NumImages; i++ {
		totalUS += cfg.PreprocUS(i) + cfg.PerImageOverheadUS
	}
	meanUS := totalUS / float64(cfg.NumImages)
	preproc = float64(cfg.Producers) / (meanUS / 1e6)
	perImage := cfg.ExecUSPerImage
	if cfg.Consumers <= 1 {
		perImage += cfg.BatchOverheadUS / float64(cfg.BatchSize)
	}
	exec = 1 / (perImage / 1e6)
	return preproc, exec
}
