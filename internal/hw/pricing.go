package hw

import (
	"fmt"
	"sort"
)

// AWS g4dn instance economics (§7). All prices are on-demand hourly USD at
// the paper's time of writing.
const (
	// VCPUHourlyUSD is the per-vCPU price from the paper's linear fit.
	VCPUHourlyUSD = 0.0639
	// T4HourlyUSD is the T4's intercept price from the same fit.
	T4HourlyUSD = 0.218
	// VCPUWatts is the per-vCPU power draw (210 W / 48 vCPUs on the 8259CL).
	VCPUWatts = 4.375
	// T4Watts is the T4 board power.
	T4Watts = 70
)

// G4dnPrices maps vCPU count to the instance's hourly price, each instance
// carrying one T4 (g4dn.xlarge through g4dn.16xlarge).
var G4dnPrices = map[int]float64{
	4:  0.526,
	8:  0.752,
	16: 1.204,
	32: 2.176,
	64: 4.352,
}

// G4dnVCPUCounts returns the instance sizes in ascending order.
func G4dnVCPUCounts() []int {
	out := make([]int, 0, len(G4dnPrices))
	for v := range G4dnPrices {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// InstancePrice returns the hourly price of the g4dn instance with the
// given vCPU count, falling back to the linear fit for unknown sizes.
func InstancePrice(vcpus int) float64 {
	if p, ok := G4dnPrices[vcpus]; ok {
		return p
	}
	return T4HourlyUSD + VCPUHourlyUSD*float64(vcpus)
}

// CostPerMillionImages returns the processing cost in US cents per million
// images at the given end-to-end throughput on the given instance size.
func CostPerMillionImages(throughputImS float64, vcpus int) float64 {
	if throughputImS <= 0 {
		panic("hw: non-positive throughput")
	}
	hours := 1e6 / throughputImS / 3600
	return hours * InstancePrice(vcpus) * 100
}

// PowerSplit estimates the power draw of preprocessing versus DNN execution
// for a configuration where execution runs at execTPut (im/s) on the
// accelerator and preprocessing sustains preprocPerVCPU (im/s) on each
// vCPU: to keep the accelerator fed, ceil(execTPut/preprocPerVCPU) vCPUs
// must preprocess.
func PowerSplit(execTPut, preprocPerVCPU float64) (preprocWatts, execWatts float64, vcpusNeeded float64) {
	if preprocPerVCPU <= 0 {
		panic("hw: non-positive preprocessing throughput")
	}
	vcpusNeeded = execTPut / preprocPerVCPU
	return vcpusNeeded * VCPUWatts, T4Watts, vcpusNeeded
}

// HourlyCostSplit estimates the hourly dollar cost of the vCPUs needed to
// feed the accelerator versus the accelerator itself.
func HourlyCostSplit(execTPut, preprocPerVCPU float64) (preprocUSD, execUSD float64) {
	_, _, vcpus := PowerSplit(execTPut, preprocPerVCPU)
	return vcpus * VCPUHourlyUSD, T4HourlyUSD
}

// VCPUsPerT4Price returns how many vCPUs cost the same as one T4 — the
// paper's "approximately 3.4 vCPU cores is the same price as the T4".
func VCPUsPerT4Price() float64 { return T4HourlyUSD / VCPUHourlyUSD }

// String pretty-prints a device profile row as in Table 5.
func (d DeviceProfile) String() string {
	return fmt.Sprintf("%-5s %d  %8.0f im/s", d.Name, d.ReleaseYear, d.ResNet50TPut)
}
