package hw

import "fmt"

// CPU preprocessing cost model, calibrated to the paper's §2 and §5.2
// measurements on the g4dn.xlarge (4 vCPUs = 2 physical cores):
//
//   - full-resolution ImageNet JPEG decode: 527 im/s across 4 vCPUs,
//   - 161-short-side PNG thumbnails: 1995 im/s,
//   - total preprocessing ~7.1x slower than ResNet-50 execution.
//
// Costs are expressed in CPU-microseconds on a single vCPU; dividing by the
// worker count is the simulator's job.

// ImageFormat identifies an on-disk visual encoding.
type ImageFormat int

// Image formats, with the decode characteristics of Table 4.
const (
	FormatJPEG ImageFormat = iota
	FormatPNG
	FormatVideoH264 // H.264-like video (per-frame amortized)
)

func (f ImageFormat) String() string {
	switch f {
	case FormatJPEG:
		return "jpeg"
	case FormatPNG:
		return "png"
	case FormatVideoH264:
		return "h264"
	default:
		return fmt.Sprintf("ImageFormat(%d)", int(f))
	}
}

// Decode cost calibration constants, in nanoseconds per pixel per vCPU.
//
// JPEG: 500x375 (187.5k px) at 527 im/s over 4 vCPUs → 7590 us·vCPU/image
// → ~40.5 ns/px. PNG (DEFLATE-dominated): 215x161 (34.6k px) at 1995 im/s
// over 4 vCPUs → 2005 us·vCPU/image → ~58 ns/px.
const (
	jpegNsPerPixel = 40.5
	pngNsPerPixel  = 58.0
	// h264NsPerPixel reflects motion compensation + residual decode, cheaper
	// per pixel than JPEG's full entropy decode for P-frames. It is the
	// GOP-amortized default when the I-frame interval is unknown.
	h264NsPerPixel = 22.0
	// h264IntraNsPerPixel is the intra-frame cost: no motion compensation,
	// but every block carries full DCT coefficients, close to JPEG decode.
	h264IntraNsPerPixel = 36.0
	// jpegQualityRef scales entropy-decode cost with quality: higher quality
	// keeps more coefficients. Cost multiplier = 0.6 + 0.4*q/75.
	jpegQualityRef = 75.0
	// jpegReconShare is the fraction of JPEG decode cost spent on
	// reconstruction (dequantization, IDCT, upsampling, color conversion)
	// as opposed to sequential entropy decoding. It is both the ROI
	// partial-decode discount (reconstruction outside the region is
	// skipped, entropy is not) and the share that DCT-domain scaled
	// decoding divides by Scale^2 (reduced IDCTs produce Scale^2 fewer
	// samples while the entropy stream is still fully parsed).
	jpegReconShare = 0.7
)

// DecodeSpec describes a decode task for costing.
type DecodeSpec struct {
	Format ImageFormat
	W, H   int
	// Quality is the JPEG quality (ignored for PNG); zero means 75.
	Quality int
	// ROIFraction, in (0,1], is the fraction of macroblock rows/areas that
	// partial (ROI or early-stop) decoding actually reconstructs; 1 means a
	// full decode. Entropy decoding of rows above the ROI still costs, which
	// the model reflects by discounting only ~70% of the skipped work for
	// JPEG (IDCT+color) and ~95% for row-streaming PNG.
	ROIFraction float64
	// Scale, when > 1, models DCT-domain scaled decoding (JPEG only):
	// reconstruction runs on Scale^2 fewer samples via reduced IDCTs while
	// entropy decoding is unchanged. Composes with ROIFraction — both
	// discount only the reconstruction share.
	Scale int
	// NoDeblock skips the in-loop deblocking filter (video only), saving
	// roughly 15% of decode cost (§6.4).
	NoDeblock bool
	// GOP is the video I-frame interval (video only). When > 1 the
	// per-frame cost amortizes one expensive intra frame over GOP-1
	// cheaper motion-compensated frames; zero keeps the generic average.
	GOP int
	// FramesPerSample amortizes stride-sampled video: producing one output
	// requires decoding this many frames, because motion-compensated frames
	// need their references even when they are not consumed. Zero or one
	// means every decoded frame is consumed.
	FramesPerSample int
	// GOPSeek marks a video stream served through a per-GOP byte-offset
	// index: the decoder jumps straight to a sampled frame's GOP instead of
	// decoding the whole stride span, capping the per-sample cost at one
	// I-frame plus (on average) half a GOP of P-frames regardless of
	// stride. Only meaningful with FramesPerSample > 1.
	GOPSeek bool
}

// DecodeCostUS returns the modeled decode cost in CPU-microseconds on one
// vCPU.
func DecodeCostUS(s DecodeSpec) float64 {
	if s.W <= 0 || s.H <= 0 {
		panic(fmt.Sprintf("hw: invalid decode dims %dx%d", s.W, s.H))
	}
	px := float64(s.W * s.H)
	frac := s.ROIFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	var nsPerPx, partialDiscount float64
	switch s.Format {
	case FormatJPEG:
		q := float64(s.Quality)
		if q == 0 {
			q = jpegQualityRef
		}
		nsPerPx = jpegNsPerPixel * (0.6 + 0.4*q/jpegQualityRef)
		partialDiscount = jpegReconShare
		if s.Scale > 1 {
			// cost = base * (entropy share + recon share * frac / scale^2):
			// entropy is paid in full, reconstruction only for the region
			// fraction actually produced, at scale^2 fewer samples.
			base := px * nsPerPx / 1000
			return base * ((1 - jpegReconShare) + jpegReconShare*frac/float64(s.Scale*s.Scale))
		}
	case FormatPNG:
		nsPerPx = pngNsPerPixel
		partialDiscount = 0.95
	case FormatVideoH264:
		return videoDecodeCostUS(s, px)
	default:
		panic("hw: unknown format")
	}
	full := px * nsPerPx / 1000 // us
	if frac >= 1 {
		return full
	}
	saved := full * (1 - frac) * partialDiscount
	return full - saved
}

// videoDecodeCostUS models the per-sample video decode cost: the
// GOP-amortized per-frame mix scaled by the stride span, capped — when a
// per-GOP byte-offset index lets the decoder seek — by the cost of decoding
// one sampled GOP prefix (the I-frame plus on average half the group's
// P-frames). The cap is what makes stride-sampling O(sampled GOPs): past
// stride ≈ GOP/2 the seek path's cost stops growing with stride entirely.
func videoDecodeCostUS(s DecodeSpec, px float64) float64 {
	intraNs, interNs := h264IntraNsPerPixel, h264NsPerPixel
	if s.NoDeblock {
		intraNs *= 0.85
		interNs *= 0.85
	}
	frameNs := interNs
	if s.GOP >= 1 {
		g := float64(s.GOP)
		frameNs = intraNs/g + interNs*(g-1)/g
	}
	fps := float64(s.FramesPerSample)
	if fps < 1 {
		fps = 1
	}
	cost := px * frameNs * fps / 1000
	if s.GOPSeek && s.GOP >= 1 && fps > 1 {
		g := float64(s.GOP)
		seek := px * (intraNs + interNs*(g-1)/2) / 1000
		if seek < cost {
			cost = seek
		}
	}
	return cost
}

// cpuOpsPerUS converts the preproc package's arithmetic-op counts into
// vCPU-microseconds. Calibration anchor: Figure 1 reports resize+normalize
// at ~330 us/image for the standard 500x375 -> 256-short -> 224 pipeline,
// whose optimized plan counts ~2.5M ops, giving ~7.5k ops/us per
// hyperthread (SIMD-optimized OpenCV kernels).
const cpuOpsPerUS = 7500.0

// PostprocCostUS converts an arithmetic-op count (from preproc.PlanCost)
// into vCPU-microseconds.
func PostprocCostUS(arithOps float64) float64 { return arithOps / cpuOpsPerUS }

// AccelOpsPerUS is the accelerator-side equivalent: data-parallel
// preprocessing ops run ~40x faster on the accelerator (the paper's §6.3
// observation that resize/normalize map well onto GPU hardware).
const AccelOpsPerUS = 40000.0

// AccelPostprocCostUS converts arithmetic ops into accelerator-microseconds.
func AccelPostprocCostUS(arithOps float64) float64 { return arithOps / AccelOpsPerUS }

// blobProxyNsPerPixel is the per-pixel cost of the blob-counter selection
// proxy (luma threshold + 4-connected flood fill): a few branchy passes
// over the frame, cheaper than any DNN but pricier per pixel than SIMD
// resize kernels.
const blobProxyNsPerPixel = 6.0

// BlobProxyCostUS returns the vCPU-microsecond cost of scoring one w x h
// frame with the blob-counter proxy (decode not included).
func BlobProxyCostUS(w, h int) float64 {
	return float64(w*h) * blobProxyNsPerPixel / 1000
}
