package hw

// Live calibration. The static profiles in this package anchor the cost
// model to the paper's published testbed measurements; a serving planner
// running on real hardware wants the same estimators fed with service times
// measured on the live machine instead. A Calibration carries those
// measurements: per-DNN execution times from timing the actual compiled
// forwards, and a scale factor mapping the modeled CPU decode/preprocess
// costs onto the live machine's observed speed (the same quantity
// scripts/bench.sh tracks in the BENCH_*.json files).

// Calibration overrides parts of the static hardware model with
// measurements taken on the live machine. The zero value changes nothing.
type Calibration struct {
	// ExecUS maps a DNN choice name to its measured per-image execution
	// time in microseconds (already at the choice's input resolution, so no
	// further input scaling applies). Names absent from the map fall back
	// to the static profile.
	ExecUS map[string]float64
	// Kernel records the f32 GEMM kernel tier ("avx2", "portable") that
	// was active when ExecUS was measured. Informational: calibration is
	// per-runtime, so a runtime constructed with a different SIMD setting
	// re-measures under its own tier rather than trusting stale numbers.
	Kernel string
	// PreprocScale multiplies the modeled CPU-side decode and
	// preprocessing costs (measured live cost / modeled cost); zero or
	// negative means uncalibrated (factor 1).
	PreprocScale float64
	// VideoScale multiplies the modeled video decode cost specifically
	// (measured live vid decode / modeled cost). The video codec's live
	// speed tracks the still-image kernels only loosely — inflate, motion
	// compensation and the deblocking loop have different constants — so
	// the video planner times a real vid decode the same way the still
	// planner times forwards. Zero or negative falls back to PreprocScale.
	VideoScale float64
}

// ExecUSFor returns the measured per-image execution time for a DNN name,
// if calibrated.
func (c *Calibration) ExecUSFor(name string) (float64, bool) {
	if c == nil || c.ExecUS == nil {
		return 0, false
	}
	us, ok := c.ExecUS[name]
	return us, ok && us > 0
}

// CPUScale returns the multiplier for modeled CPU-side costs (1 when
// uncalibrated).
func (c *Calibration) CPUScale() float64 {
	if c == nil || c.PreprocScale <= 0 {
		return 1
	}
	return c.PreprocScale
}

// VideoCPUScale returns the multiplier for modeled video decode costs,
// falling back to the generic CPU scale when video was not calibrated.
func (c *Calibration) VideoCPUScale() float64 {
	if c == nil || c.VideoScale <= 0 {
		return c.CPUScale()
	}
	return c.VideoScale
}
