// Package hw models the hardware substrate of the paper's experiments: GPU
// accelerators (K80 through T4), DNN execution frameworks (Keras, PyTorch,
// TensorRT), CPU preprocessing costs, and the AWS g4dn price/power model of
// §7. A deterministic discrete-event simulator (sim.go) composes these into
// pipelined end-to-end throughput.
//
// Substitution note (see DESIGN.md): no GPU is available in this
// environment, so DNN execution time is a calibrated service-time model.
// The calibration anchors are the paper's own published measurements
// (Tables 1, 2, 5 and §2); everything downstream — cost-model accuracy,
// Pareto frontiers, operator placement — consumes only these service times,
// which is exactly what it would consume from a real device.
package hw

import (
	"fmt"
	"sort"
)

// DeviceProfile describes one accelerator generation.
type DeviceProfile struct {
	Name        string
	ReleaseYear int
	// ResNet50TPut is the measured ResNet-50 throughput (im/s) with an
	// optimized compiler at batch 64 (Table 5).
	ResNet50TPut float64
	// PowerWatts is the board power draw under inference load.
	PowerWatts float64
	// HourlyUSD is the accelerator's amortized hourly price (the T4 figure
	// comes from the paper's linear fit; others are scaled by list price).
	HourlyUSD float64
}

// Devices indexed by name. Throughputs are the paper's Table 5.
var devices = map[string]DeviceProfile{
	"K80":  {Name: "K80", ReleaseYear: 2014, ResNet50TPut: 159, PowerWatts: 300, HourlyUSD: 0.35},
	"P100": {Name: "P100", ReleaseYear: 2016, ResNet50TPut: 1955, PowerWatts: 250, HourlyUSD: 0.75},
	"V100": {Name: "V100", ReleaseYear: 2017, ResNet50TPut: 7151, PowerWatts: 300, HourlyUSD: 1.35},
	"T4":   {Name: "T4", ReleaseYear: 2019, ResNet50TPut: 4513, PowerWatts: 70, HourlyUSD: 0.218},
	"RTX":  {Name: "RTX", ReleaseYear: 2019, ResNet50TPut: 15008, PowerWatts: 280, HourlyUSD: 1.20},
}

// Device returns the named device profile.
func Device(name string) (DeviceProfile, error) {
	d, ok := devices[name]
	if !ok {
		return DeviceProfile{}, fmt.Errorf("hw: unknown device %q", name)
	}
	return d, nil
}

// DeviceNames lists known devices sorted by release year then name.
func DeviceNames() []string {
	names := make([]string, 0, len(devices))
	for n := range devices {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := devices[names[i]], devices[names[j]]
		if a.ReleaseYear != b.ReleaseYear {
			return a.ReleaseYear < b.ReleaseYear
		}
		return a.Name < b.Name
	})
	return names
}

// FrameworkProfile scales DNN throughput by software efficiency (Table 1:
// the same T4 runs ResNet-50 at 243 im/s under Keras and 4513 under
// TensorRT).
type FrameworkProfile struct {
	Name string
	// Efficiency is the fraction of the optimized-compiler throughput the
	// framework achieves.
	Efficiency float64
	// BatchSize is the optimal batch size the paper used.
	BatchSize int
}

var frameworks = map[string]FrameworkProfile{
	"Keras":    {Name: "Keras", Efficiency: 243.0 / 4513.0, BatchSize: 64},
	"PyTorch":  {Name: "PyTorch", Efficiency: 424.0 / 4513.0, BatchSize: 256},
	"TensorRT": {Name: "TensorRT", Efficiency: 1.0, BatchSize: 64},
}

// Framework returns the named framework profile.
func Framework(name string) (FrameworkProfile, error) {
	f, ok := frameworks[name]
	if !ok {
		return FrameworkProfile{}, fmt.Errorf("hw: unknown framework %q", name)
	}
	return f, nil
}

// FrameworkNames lists known frameworks in ascending efficiency.
func FrameworkNames() []string { return []string{"Keras", "PyTorch", "TensorRT"} }

// DNNProfile is a network's compute profile at paper scale.
type DNNProfile struct {
	Name string
	// GFLOPs per image at the standard 224x224 input.
	GFLOPs float64
	// T4TPut is the measured TensorRT throughput on the T4 (im/s), the
	// calibration anchor (Table 2). Zero means "derive from GFLOPs".
	T4TPut float64
	// Top1 is the paper's reported full-resolution ImageNet accuracy.
	Top1 float64
}

// Paper-scale DNNs (Table 2 plus the specialized-NN regime).
var dnns = map[string]DNNProfile{
	"resnet-18": {Name: "resnet-18", GFLOPs: 1.82, T4TPut: 12592, Top1: 0.682},
	"resnet-34": {Name: "resnet-34", GFLOPs: 3.67, T4TPut: 6860, Top1: 0.719},
	"resnet-50": {Name: "resnet-50", GFLOPs: 4.12, T4TPut: 4513, Top1: 0.7434},
	// The MLPerf Inference MobileNet-SSD detector the paper cites in §2
	// (7,431 im/s on the T4 vs 397 im/s MS-COCO preprocessing). Top1 here
	// is its COCO mAP, not an ImageNet top-1; it only feeds the §2
	// measurement reproduction, never an accuracy-constrained plan search.
	"mobilenet-ssd": {Name: "mobilenet-ssd", GFLOPs: 2.47, T4TPut: 7431, Top1: 0.22},
	// A BlazeIt/NoScope-style tiny specialized NN: orders of magnitude
	// cheaper, far less accurate (§5.1: up to 250k im/s).
	"tiny-specialized": {Name: "tiny-specialized", GFLOPs: 0.008, T4TPut: 250000, Top1: 0.55},
}

// DNN returns the named network profile.
func DNN(name string) (DNNProfile, error) {
	d, ok := dnns[name]
	if !ok {
		return DNNProfile{}, fmt.Errorf("hw: unknown DNN %q", name)
	}
	return d, nil
}

// DNNNames lists known paper-scale networks, cheapest first.
func DNNNames() []string {
	return []string{"tiny-specialized", "resnet-18", "mobilenet-ssd", "resnet-34", "resnet-50"}
}

// ExecThroughput returns the modeled DNN execution throughput (im/s) for a
// network on a device under a framework. Known (network, T4) pairs use
// measured anchors; everything else scales by FLOPs and device capability.
func ExecThroughput(dnn DNNProfile, dev DeviceProfile, fw FrameworkProfile) float64 {
	base := dnn.T4TPut
	if base == 0 {
		// FLOPs scaling against the ResNet-50 anchor.
		rn50 := dnns["resnet-50"]
		base = rn50.T4TPut * rn50.GFLOPs / dnn.GFLOPs
	}
	deviceScale := dev.ResNet50TPut / devices["T4"].ResNet50TPut
	return base * deviceScale * fw.Efficiency
}

// InputScaledThroughput adjusts a network's throughput for a non-standard
// input resolution: convolutional cost scales with pixel count, so a
// 161x161 input runs (224/161)^2 faster than 224x224.
func InputScaledThroughput(base float64, inputRes, standardRes int) float64 {
	if inputRes <= 0 || standardRes <= 0 {
		panic("hw: invalid resolutions")
	}
	s := float64(standardRes) / float64(inputRes)
	return base * s * s
}
