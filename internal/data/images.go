// Package data generates the synthetic stand-ins for the paper's eight
// evaluation datasets: four image-classification datasets of graded
// difficulty (bike-bird, animals-10, birds-200, imagenet — §8.1, Table 6)
// and four fixed-camera videos for aggregation queries (night-street,
// taipei, amsterdam, rialto).
//
// Image classes combine a coarse signature (shape and color, surviving
// downsampling) with a fine texture signature (high-frequency stripes,
// destroyed by downsampling). Classes are grouped so that members of a
// group share coarse features and differ only in texture: small class
// counts are separable at low resolution, large class counts are not —
// reproducing the paper's finding that naive low-resolution inference
// loses accuracy on hard datasets and low-resolution-aware training
// recovers it (Table 7).
package data

import (
	"fmt"
	"math"
	"math/rand"

	"smol/internal/img"
	"smol/internal/nn"
	"smol/internal/tensor"
)

// DatasetSpec describes one synthetic image dataset.
type DatasetSpec struct {
	Name       string
	NumClasses int
	TrainN     int
	TestN      int
	// FullRes is the "full resolution" image edge (square images).
	FullRes int
	// ThumbRes is the natively-present thumbnail edge.
	ThumbRes int
	// PaperName and scaling notes for reporting.
	PaperNote string
}

// Image datasets at laptop scale. Class counts follow Table 6's difficulty
// ordering; birds-200 and imagenet are scaled down (documented per entry).
var imageDatasets = []DatasetSpec{
	{Name: "bike-bird", NumClasses: 2, TrainN: 400, TestN: 200, FullRes: 32, ThumbRes: 16,
		PaperNote: "paper: 2 classes, 23k train, ~500px; scaled for single-core training"},
	{Name: "animals-10", NumClasses: 10, TrainN: 600, TestN: 300, FullRes: 32, ThumbRes: 16,
		PaperNote: "paper: 10 classes, 25.4k train; scaled for single-core training"},
	{Name: "birds-200", NumClasses: 20, TrainN: 700, TestN: 400, FullRes: 32, ThumbRes: 16,
		PaperNote: "paper: 200 classes, 6k train; scaled to 20 classes"},
	{Name: "imagenet", NumClasses: 32, TrainN: 800, TestN: 480, FullRes: 32, ThumbRes: 16,
		PaperNote: "paper: 1000 classes, 1.2M train; scaled to 32 classes"},
}

// ImageDatasets returns the dataset specs in difficulty order.
func ImageDatasets() []DatasetSpec {
	out := make([]DatasetSpec, len(imageDatasets))
	copy(out, imageDatasets)
	return out
}

// ImageDataset returns the named spec.
func ImageDataset(name string) (DatasetSpec, error) {
	for _, d := range imageDatasets {
		if d.Name == name {
			return d, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("data: unknown dataset %q", name)
}

// classStyle are the rendering parameters of one class.
type classStyle struct {
	r, g, b   uint8   // coarse: dominant color
	shape     int     // coarse: 0 blob, 1 bar, 2 ring
	texFreq   float64 // fine: stripe spatial frequency
	texAngle  float64 // fine: stripe orientation
	texPhase  float64
	texWeight float64 // how much class identity lives in texture
}

// styleFor derives a deterministic style for class c of k classes. Classes
// are grouped in fours: group members share coarse features, differing
// only in fine texture. With k <= 4 every class gets its own coarse group,
// making the dataset easy even at low resolution.
func styleFor(c, k int) classStyle {
	const groupSize = 4
	group := c / groupSize
	member := c % groupSize
	if k <= groupSize {
		group = c
		member = 0
	}
	rng := rand.New(rand.NewSource(int64(group)*7919 + 17))
	st := classStyle{
		r:     uint8(60 + rng.Intn(180)),
		g:     uint8(60 + rng.Intn(180)),
		b:     uint8(60 + rng.Intn(180)),
		shape: group % 3,
	}
	// Fine features: unique per member within the group. Frequencies are
	// chosen so stripes are crisp at full resolution but only *attenuated*
	// (blurred and phase-shifted), not erased, by a 2x thumbnail round
	// trip — mirroring real photos, where most class signal survives
	// downsampling as artifacts (the mechanism behind Table 7's recovery).
	st.texFreq = 0.12 + 0.08*float64(member)
	st.texAngle = float64(member) * math.Pi / float64(groupSize)
	st.texPhase = float64(member) * 1.3
	if k <= groupSize {
		st.texWeight = 0.25 // easy datasets barely depend on texture
	} else {
		st.texWeight = 0.85
	}
	return st
}

// RenderImage draws one sample of class c (of k classes) at the given
// resolution, with rng providing intra-class variation.
func RenderImage(rng *rand.Rand, c, k, res int) *img.Image {
	st := styleFor(c, k)
	m := img.New(res, res)
	// Background: soft vertical gradient with noise.
	bgBase := 40 + rng.Intn(40)
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			v := uint8(bgBase + y*40/res + rng.Intn(25))
			m.Set(x, y, v, v, v)
		}
	}
	// Object placement with jitter.
	cx := float64(res)/2 + (rng.Float64()-0.5)*float64(res)*0.25
	cy := float64(res)/2 + (rng.Float64()-0.5)*float64(res)*0.25
	size := float64(res) * (0.28 + rng.Float64()*0.12)
	cosA, sinA := math.Cos(st.texAngle), math.Sin(st.texAngle)
	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			if !inShape(st.shape, dx, dy, size) {
				continue
			}
			// Fine texture: oriented stripes at class-specific frequency.
			// Frequency is expressed in cycles relative to a 64px
			// reference so the physical pattern is resolution-invariant
			// (and thus degraded, though not erased, by downsampling).
			u := (dx*cosA + dy*sinA) * 64 / float64(res)
			tex := math.Sin(u*st.texFreq*math.Pi + st.texPhase)
			tw := st.texWeight
			shade := 1 - tw/2 + tw/2*tex
			r := img.ClampF(float64(st.r) * shade)
			g := img.ClampF(float64(st.g) * shade)
			b := img.ClampF(float64(st.b) * shade)
			m.Set(x, y, r, g, b)
		}
	}
	return m
}

func inShape(shape int, dx, dy, size float64) bool {
	switch shape {
	case 0: // blob (ellipse)
		return dx*dx/(size*size)+dy*dy/(size*size*0.7) < 1
	case 1: // bar
		return math.Abs(dx) < size && math.Abs(dy) < size*0.4
	default: // ring
		d := math.Sqrt(dx*dx + dy*dy)
		return d > size*0.5 && d < size
	}
}

// Dataset is a realized dataset: raw rendered images plus labels.
type Dataset struct {
	Spec  DatasetSpec
	Train []LabeledImage
	Test  []LabeledImage
}

// LabeledImage pairs a rendered image with its class.
type LabeledImage struct {
	Image *img.Image
	Label int
}

// Generate renders the dataset deterministically from its name.
func Generate(spec DatasetSpec) *Dataset {
	rng := rand.New(rand.NewSource(seedFor(spec.Name)))
	d := &Dataset{Spec: spec}
	d.Train = renderSet(rng, spec, spec.TrainN)
	d.Test = renderSet(rng, spec, spec.TestN)
	return d
}

func renderSet(rng *rand.Rand, spec DatasetSpec, n int) []LabeledImage {
	out := make([]LabeledImage, n)
	for i := range out {
		c := i % spec.NumClasses
		out[i] = LabeledImage{Image: RenderImage(rng, c, spec.NumClasses, spec.FullRes), Label: c}
	}
	return out
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, b := range []byte(name) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h
}

// ToSample converts an image to a normalized NN training sample in [0,1].
func ToSample(m *img.Image, label int) nn.Sample {
	x := tensor.New(3, m.H, m.W)
	n := m.W * m.H
	for i := 0; i < n; i++ {
		x.Data[i] = float32(m.Pix[i*3]) / 255
		x.Data[n+i] = float32(m.Pix[i*3+1]) / 255
		x.Data[2*n+i] = float32(m.Pix[i*3+2]) / 255
	}
	return nn.Sample{X: x, Label: label}
}

// ToSamples converts a labeled set, optionally transforming each image
// first (e.g. thumbnail round-trips).
func ToSamples(set []LabeledImage, transform func(*img.Image) *img.Image) []nn.Sample {
	out := make([]nn.Sample, len(set))
	for i, li := range set {
		m := li.Image
		if transform != nil {
			m = transform(m)
		}
		out[i] = ToSample(m, li.Label)
	}
	return out
}

// DownUpAugmenter returns the low-resolution-aware training augmenter of
// §5.3: with probability p it downsamples the input tensor to lowRes and
// upsamples it back, teaching the network the artifacts it will see when
// fed upscaled thumbnails at inference time.
func DownUpAugmenter(lowRes int, p float64) nn.Augmenter {
	return func(rng *rand.Rand, x *tensor.Tensor) *tensor.Tensor {
		if rng.Float64() >= p {
			return x
		}
		return DownUpTensor(x, lowRes)
	}
}

// DownUpTensor downsamples a (3,H,W) tensor to lowRes and back using
// bilinear interpolation.
func DownUpTensor(x *tensor.Tensor, lowRes int) *tensor.Tensor {
	h, w := x.Shape[1], x.Shape[2]
	small := resizeCHW(x, lowRes, lowRes)
	return resizeCHW(small, h, w)
}

// resizeCHW bilinearly resizes a (3,H,W) tensor.
func resizeCHW(x *tensor.Tensor, nh, nw int) *tensor.Tensor {
	h, w := x.Shape[1], x.Shape[2]
	out := tensor.New(3, nh, nw)
	xr := float64(w) / float64(nw)
	yr := float64(h) / float64(nh)
	for c := 0; c < 3; c++ {
		src := x.Data[c*h*w : (c+1)*h*w]
		dst := out.Data[c*nh*nw : (c+1)*nh*nw]
		for y := 0; y < nh; y++ {
			sy := (float64(y)+0.5)*yr - 0.5
			if sy < 0 {
				sy = 0
			}
			y0 := int(sy)
			y1 := y0 + 1
			if y1 >= h {
				y1 = h - 1
			}
			fy := float32(sy - float64(y0))
			for xx := 0; xx < nw; xx++ {
				sx := (float64(xx)+0.5)*xr - 0.5
				if sx < 0 {
					sx = 0
				}
				x0 := int(sx)
				x1 := x0 + 1
				if x1 >= w {
					x1 = w - 1
				}
				fx := float32(sx - float64(x0))
				p00 := src[y0*w+x0]
				p01 := src[y0*w+x1]
				p10 := src[y1*w+x0]
				p11 := src[y1*w+x1]
				top := p00 + (p01-p00)*fx
				bot := p10 + (p11-p10)*fx
				dst[y*nw+xx] = top + (bot-top)*fy
			}
		}
	}
	return out
}
