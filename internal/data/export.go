package data

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/codec/vid"
	"smol/internal/img"
)

// ExportOptions controls dataset materialization.
type ExportOptions struct {
	// JPEGQuality for full-resolution images; zero means 90.
	JPEGQuality int
	// ThumbFormat is "png", "jpeg95", or "jpeg75" (default "png").
	ThumbFormat string
}

// ExportImages writes a rendered image dataset to dir as encoded files —
// the on-disk form a serving system would hold: full-resolution JPEGs
// under full/, natively present thumbnails under thumb/, and a labels.tsv
// manifest. It returns the number of files written.
func ExportImages(ds *Dataset, dir string, opts ExportOptions) (int, error) {
	q := opts.JPEGQuality
	if q == 0 {
		q = 90
	}
	thumbFmt := opts.ThumbFormat
	if thumbFmt == "" {
		thumbFmt = "png"
	}
	encodeThumb := func(m *img.Image) ([]byte, string, error) {
		t := m.ResizeBilinear(ds.Spec.ThumbRes, ds.Spec.ThumbRes)
		switch thumbFmt {
		case "png":
			return spng.Encode(t, 0), "spng", nil
		case "jpeg95":
			return jpeg.Encode(t, jpeg.EncodeOptions{Quality: 95}), "jpg", nil
		case "jpeg75":
			return jpeg.Encode(t, jpeg.EncodeOptions{Quality: 75}), "jpg", nil
		default:
			return nil, "", fmt.Errorf("data: unknown thumb format %q", thumbFmt)
		}
	}
	for _, sub := range []string{"full", "thumb"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return 0, err
		}
	}
	manifest, err := os.Create(filepath.Join(dir, "labels.tsv"))
	if err != nil {
		return 0, err
	}
	defer manifest.Close()
	fmt.Fprintln(manifest, "split\tid\tlabel\tfull\tthumb")

	written := 0
	write := func(split string, items []LabeledImage) error {
		for i, li := range items {
			id := fmt.Sprintf("%s-%05d", split, i)
			fullPath := filepath.Join("full", id+".jpg")
			if err := os.WriteFile(filepath.Join(dir, fullPath),
				jpeg.Encode(li.Image, jpeg.EncodeOptions{Quality: q}), 0o644); err != nil {
				return err
			}
			enc, ext, err := encodeThumb(li.Image)
			if err != nil {
				return err
			}
			thumbPath := filepath.Join("thumb", id+"."+ext)
			if err := os.WriteFile(filepath.Join(dir, thumbPath), enc, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(manifest, "%s\t%s\t%d\t%s\t%s\n", split, id, li.Label, fullPath, thumbPath)
			written += 2
		}
		return nil
	}
	if err := write("train", ds.Train); err != nil {
		return written, err
	}
	if err := write("test", ds.Test); err != nil {
		return written, err
	}
	return written, nil
}

// ExportVideo encodes a synthetic video at full and low resolution into
// dir, plus a counts.tsv ground-truth manifest — the layout the BlazeIt
// experiments consume. Returns the paths written.
func ExportVideo(spec VideoSpec, dir string, quality int) ([]string, error) {
	if quality == 0 {
		quality = 70
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	v := GenerateVideo(spec)
	var paths []string

	fullEnc, err := vid.Encode(v.Frames, vid.EncodeOptions{Quality: quality, GOP: 30})
	if err != nil {
		return nil, err
	}
	fullPath := filepath.Join(dir, spec.Name+"-full.vid")
	if err := os.WriteFile(fullPath, fullEnc, 0o644); err != nil {
		return nil, err
	}
	paths = append(paths, fullPath)

	low := make([]*img.Image, len(v.Frames))
	for i, f := range v.Frames {
		low[i] = f.ResizeBilinear(f.W/2, f.H/2)
	}
	lowEnc, err := vid.Encode(low, vid.EncodeOptions{Quality: quality, GOP: 30})
	if err != nil {
		return nil, err
	}
	lowPath := filepath.Join(dir, spec.Name+"-low.vid")
	if err := os.WriteFile(lowPath, lowEnc, 0o644); err != nil {
		return nil, err
	}
	paths = append(paths, lowPath)

	counts, err := os.Create(filepath.Join(dir, spec.Name+"-counts.tsv"))
	if err != nil {
		return nil, err
	}
	defer counts.Close()
	fmt.Fprintln(counts, "frame\tcount")
	for i, c := range v.Counts {
		fmt.Fprintf(counts, "%d\t%d\n", i, c)
	}
	paths = append(paths, counts.Name())
	return paths, nil
}

// RenderSample renders n preview images of distinct classes for a spec,
// deterministic in seed — used by smol-datagen's -preview mode.
func RenderSample(spec DatasetSpec, n int, seed int64) []LabeledImage {
	rng := rand.New(rand.NewSource(seed))
	out := make([]LabeledImage, 0, n)
	for i := 0; i < n; i++ {
		c := i % spec.NumClasses
		out = append(out, LabeledImage{Image: RenderImage(rng, c, spec.NumClasses, spec.FullRes), Label: c})
	}
	return out
}
