package data

import (
	"fmt"
	"math"
	"math/rand"

	"smol/internal/img"
)

// VideoSpec describes one synthetic fixed-camera video dataset for
// BlazeIt-style aggregation queries ("how many cars per frame").
type VideoSpec struct {
	Name string
	// W, H are the full-resolution frame dimensions; LowW, LowH are the
	// natively present low-resolution (480p-equivalent) dimensions.
	W, H       int
	LowW, LowH int
	Frames     int
	// MeanObjects is the mean number of target objects visible per frame.
	MeanObjects float64
	// Darkness in [0,1] dims the scene (night-street is hard to see).
	Darkness  float64
	PaperNote string
}

// Video datasets at laptop scale (paper: hours of 720p+ video each).
var videoDatasets = []VideoSpec{
	{Name: "night-street", W: 160, H: 96, LowW: 80, LowH: 48, Frames: 600,
		MeanObjects: 1.2, Darkness: 0.6, PaperNote: "paper: 1080p night traffic cam"},
	{Name: "taipei", W: 160, H: 96, LowW: 80, LowH: 48, Frames: 600,
		MeanObjects: 2.5, Darkness: 0.1, PaperNote: "paper: busy intersection"},
	{Name: "amsterdam", W: 160, H: 96, LowW: 80, LowH: 48, Frames: 600,
		MeanObjects: 1.0, Darkness: 0.2, PaperNote: "paper: canal scene"},
	{Name: "rialto", W: 160, H: 96, LowW: 80, LowH: 48, Frames: 600,
		MeanObjects: 3.0, Darkness: 0.15, PaperNote: "paper: Rialto bridge boats"},
}

// VideoDatasets returns the video specs.
func VideoDatasets() []VideoSpec {
	out := make([]VideoSpec, len(videoDatasets))
	copy(out, videoDatasets)
	return out
}

// VideoDataset returns the named video spec.
func VideoDataset(name string) (VideoSpec, error) {
	for _, v := range videoDatasets {
		if v.Name == name {
			return v, nil
		}
	}
	return VideoSpec{}, fmt.Errorf("data: unknown video %q", name)
}

// mover is one object crossing the scene.
type mover struct {
	enter     int // frame at which it appears
	speed     float64
	lane      float64 // vertical position fraction
	size      float64
	r, g, b   uint8
	fromRight bool
}

// Video is a realized synthetic video: frames plus ground-truth counts.
type Video struct {
	Spec   VideoSpec
	Frames []*img.Image
	// Counts is the ground-truth number of visible objects per frame.
	Counts []int
}

// GenerateVideo renders the video deterministically from its name.
func GenerateVideo(spec VideoSpec) *Video {
	rng := rand.New(rand.NewSource(seedFor(spec.Name)))
	// Spawn movers as a Poisson-ish process tuned to hit MeanObjects.
	crossingFrames := float64(spec.W) / 2.0 // at speed ~2 px/frame
	spawnRate := spec.MeanObjects / crossingFrames
	var movers []mover
	for f := 0; f < spec.Frames; f++ {
		if rng.Float64() < spawnRate*1.0 {
			movers = append(movers, mover{
				enter:     f,
				speed:     1.5 + rng.Float64()*1.5,
				lane:      0.25 + rng.Float64()*0.6,
				size:      0.08 + rng.Float64()*0.06,
				r:         uint8(120 + rng.Intn(135)),
				g:         uint8(120 + rng.Intn(135)),
				b:         uint8(40 + rng.Intn(100)),
				fromRight: rng.Intn(2) == 0,
			})
		}
	}
	v := &Video{Spec: spec}
	dim := 1 - spec.Darkness
	for f := 0; f < spec.Frames; f++ {
		m := img.New(spec.W, spec.H)
		// Static background: road + sky gradient with mild noise.
		for y := 0; y < spec.H; y++ {
			for x := 0; x < spec.W; x++ {
				base := 90 + 60*y/spec.H
				n := int(3 * math.Sin(float64(x)*0.7+float64(y)*1.3))
				val := img.Clamp8(int(float64(base+n) * dim))
				m.Set(x, y, val, val, img.Clamp8(int(float64(base+n+15)*dim)))
			}
		}
		count := 0
		for _, mv := range movers {
			if f < mv.enter {
				continue
			}
			progress := float64(f-mv.enter) * mv.speed
			var cx float64
			if mv.fromRight {
				cx = float64(spec.W) - progress
			} else {
				cx = progress
			}
			halfW := mv.size * float64(spec.W)
			if cx+halfW < 0 || cx-halfW > float64(spec.W) {
				continue
			}
			count++
			cy := mv.lane * float64(spec.H)
			halfH := halfW * 0.55
			for y := int(cy - halfH); y <= int(cy+halfH); y++ {
				if y < 0 || y >= spec.H {
					continue
				}
				for x := int(cx - halfW); x <= int(cx+halfW); x++ {
					if x < 0 || x >= spec.W {
						continue
					}
					m.Set(x, y,
						img.Clamp8(int(float64(mv.r)*dim)),
						img.Clamp8(int(float64(mv.g)*dim)),
						img.Clamp8(int(float64(mv.b)*dim)))
				}
			}
		}
		v.Frames = append(v.Frames, m)
		v.Counts = append(v.Counts, count)
	}
	return v
}

// LowResFrames returns the natively-present low-resolution rendition of the
// video (as a serving stack would store for reduced bandwidth).
func (v *Video) LowResFrames() []*img.Image {
	out := make([]*img.Image, len(v.Frames))
	for i, f := range v.Frames {
		out[i] = f.ResizeBilinear(v.Spec.LowW, v.Spec.LowH)
	}
	return out
}

// MeanCount returns the average ground-truth object count.
func (v *Video) MeanCount() float64 {
	var s float64
	for _, c := range v.Counts {
		s += float64(c)
	}
	return s / float64(len(v.Counts))
}
