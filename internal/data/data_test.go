package data

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smol/internal/codec/jpeg"
	"smol/internal/codec/vid"
	"smol/internal/img"
	"smol/internal/tensor"
)

func TestImageDatasetsOrdering(t *testing.T) {
	ds := ImageDatasets()
	if len(ds) != 4 {
		t.Fatalf("got %d datasets", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].NumClasses <= ds[i-1].NumClasses {
			t.Fatal("datasets should be ordered easy to hard")
		}
	}
	if _, err := ImageDataset("bike-bird"); err != nil {
		t.Fatal(err)
	}
	if _, err := ImageDataset("cifar"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestRenderDeterministic(t *testing.T) {
	a := RenderImage(rand.New(rand.NewSource(1)), 3, 10, 64)
	b := RenderImage(rand.New(rand.NewSource(1)), 3, 10, 64)
	if img.MeanAbsDiff(a, b) != 0 {
		t.Fatal("same seed must render identical images")
	}
	c := RenderImage(rand.New(rand.NewSource(2)), 3, 10, 64)
	if img.MeanAbsDiff(a, c) == 0 {
		t.Fatal("different seeds should vary")
	}
}

func TestGenerateShapeAndBalance(t *testing.T) {
	spec := DatasetSpec{Name: "test", NumClasses: 5, TrainN: 50, TestN: 25, FullRes: 32, ThumbRes: 16}
	d := Generate(spec)
	if len(d.Train) != 50 || len(d.Test) != 25 {
		t.Fatalf("sizes %d/%d", len(d.Train), len(d.Test))
	}
	counts := make([]int, 5)
	for _, li := range d.Train {
		counts[li.Label]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
	if d.Train[0].Image.W != 32 {
		t.Fatalf("res %d", d.Train[0].Image.W)
	}
}

// classMean averages n renders of class c, suppressing placement jitter.
func classMean(rng *rand.Rand, c, k, res, n int) []float64 {
	acc := make([]float64, res*res*3)
	for i := 0; i < n; i++ {
		m := RenderImage(rng, c, k, res)
		for j, p := range m.Pix {
			acc[j] += float64(p)
		}
	}
	for j := range acc {
		acc[j] /= float64(n)
	}
	return acc
}

func meanDiff(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

func TestClassesAreVisuallyDistinct(t *testing.T) {
	// Class-mean images of different classes must differ more than two
	// independent class-means of the same class (per-render jitter averages
	// out over 20 renders).
	rng := rand.New(rand.NewSource(3))
	k := 10
	const n = 20
	intra := meanDiff(classMean(rng, 0, k, 64, n), classMean(rng, 0, k, 64, n))
	inter := meanDiff(classMean(rng, 0, k, 64, n), classMean(rng, 5, k, 64, n))
	if inter < intra*1.5 {
		t.Fatalf("inter-class diff %v should clearly exceed intra-class %v", inter, intra)
	}
}

func TestFineTextureDestroyedByDownsampling(t *testing.T) {
	// Classes 0 and 1 share a coarse group when k > 4 (same color/shape,
	// different texture). At full resolution they are distinguishable; after
	// a down-up round trip they should become much closer.
	rng := rand.New(rand.NewSource(4))
	k := 20
	mkPair := func() (*img.Image, *img.Image) {
		r1 := rand.New(rand.NewSource(rng.Int63()))
		r2 := rand.New(rand.NewSource(rng.Int63()))
		return RenderImage(r1, 0, k, 64), RenderImage(r2, 1, k, 64)
	}
	var fullDiff, lowDiff float64
	const trials = 12
	for i := 0; i < trials; i++ {
		a, b := mkPair()
		fullDiff += img.MeanAbsDiff(a, b)
		al := a.ResizeBilinear(16, 16).ResizeBilinear(64, 64)
		bl := b.ResizeBilinear(16, 16).ResizeBilinear(64, 64)
		lowDiff += img.MeanAbsDiff(al, bl)
	}
	if lowDiff >= fullDiff {
		t.Fatalf("downsampling should shrink texture-only class differences: full %v low %v",
			fullDiff/trials, lowDiff/trials)
	}
}

func TestToSampleRange(t *testing.T) {
	m := RenderImage(rand.New(rand.NewSource(5)), 0, 2, 32)
	s := ToSample(m, 1)
	if s.Label != 1 || s.X.Shape[0] != 3 || s.X.Shape[1] != 32 {
		t.Fatalf("sample %v label %d", s.X.Shape, s.Label)
	}
	for _, v := range s.X.Data {
		if v < 0 || v > 1 {
			t.Fatalf("value %v out of [0,1]", v)
		}
	}
	// Channel layout: sample pixel (0,0) red channel.
	r, _, _ := m.At(0, 0)
	if math.Abs(float64(s.X.Data[0])-float64(r)/255) > 1e-6 {
		t.Fatal("channel layout mismatch")
	}
}

func TestToSamplesTransform(t *testing.T) {
	set := []LabeledImage{
		{Image: RenderImage(rand.New(rand.NewSource(6)), 0, 2, 32), Label: 0},
	}
	samples := ToSamples(set, func(m *img.Image) *img.Image {
		return m.ResizeBilinear(16, 16)
	})
	if samples[0].X.Shape[1] != 16 {
		t.Fatalf("transform not applied: %v", samples[0].X.Shape)
	}
}

func TestDownUpTensor(t *testing.T) {
	x := tensor.New(3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(i%7) / 7
	}
	y := DownUpTensor(x, 8)
	if !tensor.SameShape(x, y) {
		t.Fatalf("shape changed: %v", y.Shape)
	}
	// Smoothing must change values but keep them in range.
	same := true
	for i := range y.Data {
		if y.Data[i] != x.Data[i] {
			same = false
		}
		if y.Data[i] < -0.01 || y.Data[i] > 1.01 {
			t.Fatalf("value %v out of range", y.Data[i])
		}
	}
	if same {
		t.Fatal("down-up round trip should alter high-frequency content")
	}
}

func TestDownUpAugmenterProbability(t *testing.T) {
	aug := DownUpAugmenter(8, 0.5)
	rng := rand.New(rand.NewSource(7))
	x := tensor.New(3, 16, 16)
	for i := range x.Data {
		x.Data[i] = float32(i % 5)
	}
	changed := 0
	const n = 200
	for i := 0; i < n; i++ {
		y := aug(rng, x)
		if y != x {
			changed++
		}
	}
	if changed < n/4 || changed > 3*n/4 {
		t.Fatalf("augmenter fired %d of %d times at p=0.5", changed, n)
	}
}

func TestVideoDatasets(t *testing.T) {
	vs := VideoDatasets()
	if len(vs) != 4 {
		t.Fatalf("got %d videos", len(vs))
	}
	if _, err := VideoDataset("taipei"); err != nil {
		t.Fatal(err)
	}
	if _, err := VideoDataset("tokyo"); err == nil {
		t.Fatal("unknown video should error")
	}
}

func TestGenerateVideoGroundTruth(t *testing.T) {
	spec := VideoSpec{Name: "test-vid", W: 80, H: 48, LowW: 40, LowH: 24,
		Frames: 200, MeanObjects: 2.0}
	v := GenerateVideo(spec)
	if len(v.Frames) != 200 || len(v.Counts) != 200 {
		t.Fatalf("frames %d counts %d", len(v.Frames), len(v.Counts))
	}
	mean := v.MeanCount()
	if mean < 0.5 || mean > 4.5 {
		t.Fatalf("mean count %v far from target 2.0", mean)
	}
	// Counts vary over time (needed for the control-variate experiment).
	varies := false
	for i := 1; i < len(v.Counts); i++ {
		if v.Counts[i] != v.Counts[0] {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("constant counts make aggregation trivial")
	}
}

func TestGenerateVideoDeterministic(t *testing.T) {
	spec, _ := VideoDataset("amsterdam")
	spec.Frames = 30
	a := GenerateVideo(spec)
	b := GenerateVideo(spec)
	for i := range a.Frames {
		if img.MeanAbsDiff(a.Frames[i], b.Frames[i]) != 0 {
			t.Fatal("video generation must be deterministic")
		}
		if a.Counts[i] != b.Counts[i] {
			t.Fatal("counts must be deterministic")
		}
	}
}

func TestLowResFrames(t *testing.T) {
	spec, _ := VideoDataset("taipei")
	spec.Frames = 10
	v := GenerateVideo(spec)
	low := v.LowResFrames()
	if len(low) != 10 || low[0].W != spec.LowW || low[0].H != spec.LowH {
		t.Fatalf("low res %dx%d", low[0].W, low[0].H)
	}
}

func TestDarknessDimsScene(t *testing.T) {
	bright, _ := VideoDataset("taipei")
	dark, _ := VideoDataset("night-street")
	bright.Frames, dark.Frames = 5, 5
	vb := GenerateVideo(bright)
	vd := GenerateVideo(dark)
	mb := meanLuma(vb.Frames[0])
	md := meanLuma(vd.Frames[0])
	if md >= mb {
		t.Fatalf("night-street (%v) should be darker than taipei (%v)", md, mb)
	}
}

func meanLuma(m *img.Image) float64 {
	var s float64
	for i := 0; i < len(m.Pix); i += 3 {
		s += 0.299*float64(m.Pix[i]) + 0.587*float64(m.Pix[i+1]) + 0.114*float64(m.Pix[i+2])
	}
	return s / float64(len(m.Pix)/3)
}

func TestExportImages(t *testing.T) {
	spec, err := ImageDataset("bike-bird")
	if err != nil {
		t.Fatal(err)
	}
	spec.TrainN, spec.TestN = 6, 4
	ds := Generate(spec)
	dir := t.TempDir()
	n, err := ExportImages(ds, dir, ExportOptions{ThumbFormat: "jpeg75"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*(6+4) {
		t.Fatalf("wrote %d files, want %d", n, 2*(6+4))
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "labels.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(manifest)), "\n")
	if len(lines) != 1+6+4 {
		t.Fatalf("manifest has %d lines", len(lines))
	}
	// Every referenced file exists and decodes.
	for _, line := range lines[1:] {
		f := strings.Split(line, "\t")
		if len(f) != 5 {
			t.Fatalf("bad manifest line %q", line)
		}
		enc, err := os.ReadFile(filepath.Join(dir, f[3]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jpeg.Decode(enc); err != nil {
			t.Fatalf("%s: %v", f[3], err)
		}
		tb, err := os.ReadFile(filepath.Join(dir, f[4]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jpeg.Decode(tb); err != nil {
			t.Fatalf("%s: %v", f[4], err)
		}
	}
	if _, err := ExportImages(ds, dir, ExportOptions{ThumbFormat: "bogus"}); err == nil {
		t.Fatal("bogus thumb format should error")
	}
}

func TestExportVideo(t *testing.T) {
	spec, err := VideoDataset("taipei")
	if err != nil {
		t.Fatal(err)
	}
	spec.Frames = 20
	dir := t.TempDir()
	paths, err := ExportVideo(spec, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	fullEnc, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	frames, err := vid.DecodeAll(fullEnc, vid.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 20 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	lowEnc, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	low, err := vid.DecodeAll(lowEnc, vid.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if low[0].W != frames[0].W/2 {
		t.Fatalf("low res width %d, want half of %d", low[0].W, frames[0].W)
	}
}

func TestRenderSample(t *testing.T) {
	spec, _ := ImageDataset("animals-10")
	s := RenderSample(spec, 12, 3)
	if len(s) != 12 {
		t.Fatalf("got %d samples", len(s))
	}
	for i, li := range s {
		if li.Label != i%spec.NumClasses {
			t.Fatalf("sample %d label %d", i, li.Label)
		}
		if li.Image.W != spec.FullRes {
			t.Fatalf("sample %d res %d", i, li.Image.W)
		}
	}
}
