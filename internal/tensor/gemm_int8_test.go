package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// refGEMMInt8 is the obvious triple loop plus the documented epilogue,
// used as the oracle for the blocked/assembly kernels.
func refGEMMInt8(m, k, n int, a []int16, b []int8, ep EpilogueInt8) []int8 {
	out := make([]int8, m*n)
	inv := 1 / ep.OutScale
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			v := float32(acc) * ep.RowScale[i]
			if ep.RowBias != nil {
				v += ep.RowBias[i]
			}
			if ep.Add != nil {
				v += float32(ep.Add[i*n+j]) * ep.AddScale
			}
			if ep.ReLU && v < 0 {
				v = 0
			}
			out[i*n+j] = roundClampInt8(v * inv)
		}
	}
	return out
}

func randInt8s(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(255) - 127)
	}
	return s
}

// TestGEMMInt8MatchesReference sweeps shapes that exercise every remainder
// path (rows < 4, columns < 16, odd k, multi-tile columns) and every
// epilogue variant against the triple-loop oracle.
func TestGEMMInt8MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{
		{1, 1, 1}, {1, 3, 17}, {3, 5, 15}, {4, 2, 16}, {4, 3, 16},
		{5, 7, 33}, {8, 16, 64}, {7, 27, 70}, {16, 9, 300}, {12, 32, 257},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for variant := 0; variant < 4; variant++ {
			t.Run(fmt.Sprintf("m%dk%dn%d/ep%d", m, k, n, variant), func(t *testing.T) {
				a := make([]int16, m*k)
				for i := range a {
					a[i] = int16(rng.Intn(255) - 127)
				}
				bm := randInt8s(rng, k*n)
				ep := EpilogueInt8{
					RowScale: make([]float32, m),
					OutScale: 0.07,
					ReLU:     variant&1 != 0,
				}
				for i := range ep.RowScale {
					ep.RowScale[i] = 0.001 + rng.Float32()*0.01
				}
				if variant&2 != 0 {
					ep.RowBias = make([]float32, m)
					for i := range ep.RowBias {
						ep.RowBias[i] = rng.Float32() - 0.5
					}
					ep.Add = randInt8s(rng, m*n)
					ep.AddScale = 0.05
				}
				want := refGEMMInt8(m, k, n, a, bm, ep)
				acc := make([]int32, m*n)
				dst := make([]int8, m*n)
				GEMMInt8(m, k, n, a, bm, acc, dst, ep)
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
					}
				}
			})
		}
	}
}

// TestGEMMInt8AsmMatchesPortable forces the portable kernel and checks the
// assembly path produces bit-identical output (exact integer accumulation
// makes the two paths indistinguishable). A no-op on hosts without the
// assembly kernel.
func TestGEMMInt8AsmMatchesPortable(t *testing.T) {
	if !gemmInt8AsmActive {
		t.Skip("assembly kernel not active on this host")
	}
	rng := rand.New(rand.NewSource(2))
	for _, sh := range [][3]int{{4, 2, 16}, {8, 33, 48}, {9, 27, 1000}, {5, 64, 17}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]int16, m*k)
		for i := range a {
			a[i] = int16(rng.Intn(255) - 127)
		}
		bm := randInt8s(rng, k*n)
		ep := EpilogueInt8{RowScale: make([]float32, m), OutScale: 0.03, ReLU: true}
		for i := range ep.RowScale {
			ep.RowScale[i] = 0.002
		}
		acc := make([]int32, m*n)
		asmDst := make([]int8, m*n)
		GEMMInt8(m, k, n, a, bm, acc, asmDst, ep)

		gemmInt8AsmActive = false
		goDst := make([]int8, m*n)
		GEMMInt8(m, k, n, a, bm, acc, goDst, ep)
		gemmInt8AsmActive = true

		for i := range goDst {
			if asmDst[i] != goDst[i] {
				t.Fatalf("shape %v: asm dst[%d] = %d, portable %d", sh, i, asmDst[i], goDst[i])
			}
		}
	}
}

// TestGEMMInt8Saturation: accumulators far outside int8 range clamp to
// +-127 instead of wrapping.
func TestGEMMInt8Saturation(t *testing.T) {
	const m, k, n = 2, 8, 16
	a := make([]int16, m*k)
	b := make([]int8, k*n)
	for j := range b {
		b[j] = 127
	}
	// Row 0 accumulates 8*127*127 (far above 127), row 1 its negation.
	for i := 0; i < k; i++ {
		a[i] = 127
		a[k+i] = -127
	}
	ep := EpilogueInt8{RowScale: []float32{1, 1}, OutScale: 1}
	acc := make([]int32, m*n)
	dst := make([]int8, m*n)
	GEMMInt8(m, k, n, a, b, acc, dst, ep)
	for i := 0; i < m*n; i++ {
		var want int8
		if acc[i] > 127 {
			want = 127
		} else if acc[i] < -127 {
			want = -127
		} else {
			want = int8(acc[i])
		}
		if dst[i] != want {
			t.Fatalf("dst[%d] = %d, want saturated %d (acc %d)", i, dst[i], want, acc[i])
		}
	}
}

// TestRoundClampInt8 pins the rounding rule: nearest, half away from zero,
// saturating at the symmetric +-127.
func TestRoundClampInt8(t *testing.T) {
	cases := []struct {
		in   float32
		want int8
	}{
		{0, 0}, {0.4, 0}, {0.5, 1}, {-0.4, 0}, {-0.5, -1},
		{126.4, 126}, {126.5, 127}, {127.2, 127}, {1e9, 127},
		{-126.5, -127}, {-127.9, -127}, {-1e9, -127},
	}
	for _, c := range cases {
		if got := roundClampInt8(c.in); got != c.want {
			t.Errorf("roundClampInt8(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestIm2ColBatchInt8MatchesFloat: on integer-valued inputs the int8 and
// f32 unfoldings agree element-for-element, for both NCHW and CNHW stride
// conventions and for strided, padded kernels.
func TestIm2ColBatchInt8MatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, c, h, w = 2, 3, 7, 6
	src8 := randInt8s(rng, n*c*h*w)
	src32 := make([]float32, len(src8))
	for i, v := range src8 {
		src32[i] = float32(v)
	}
	for _, cfg := range []struct {
		kh, kw, stride, pad      int
		sampleStride, chanStride int
		name                     string
	}{
		{3, 3, 1, 1, c * h * w, h * w, "nchw-s1"},
		{3, 3, 2, 1, c * h * w, h * w, "nchw-s2"},
		{2, 2, 2, 0, h * w, n * h * w, "cnhw-s2"},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			outH := (h+2*cfg.pad-cfg.kh)/cfg.stride + 1
			outW := (w+2*cfg.pad-cfg.kw)/cfg.stride + 1
			size := c * cfg.kh * cfg.kw * n * outH * outW
			col8 := make([]int8, size)
			col32 := make([]float32, size)
			oh8, ow8 := Im2ColBatchInt8(src8, n, c, h, w, cfg.sampleStride, cfg.chanStride, cfg.kh, cfg.kw, cfg.stride, cfg.pad, col8)
			oh32, ow32 := Im2ColBatch(src32, n, c, h, w, cfg.sampleStride, cfg.chanStride, cfg.kh, cfg.kw, cfg.stride, cfg.pad, col32)
			if oh8 != oh32 || ow8 != ow32 {
				t.Fatalf("geometry (%d,%d) != (%d,%d)", oh8, ow8, oh32, ow32)
			}
			for i := range col8 {
				if float32(col8[i]) != col32[i] {
					t.Fatalf("col[%d] = %d, want %v", i, col8[i], col32[i])
				}
			}
		})
	}
}

// TestQuantizeInt8 pins quantization of an f32 tensor: round to nearest,
// saturate, exact zeros stay zero.
func TestQuantizeInt8(t *testing.T) {
	src := []float32{0, 0.5, -0.5, 1, -1, 2, 100}
	dst := make([]int8, len(src))
	QuantizeInt8(src, dst, 127) // scale 1/127: full range maps to +-127
	want := []int8{0, 64, -64, 127, -127, 127, 127}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}
