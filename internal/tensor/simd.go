package tensor

import (
	"sync"
	"sync/atomic"
)

// SIMD f32 GEMM tier: packing, dispatch, and the runtime toggle.
//
// The AVX2 microkernel (gemm_f32_amd64.s) is bit-identical to the portable
// gemm4/gemm1 path: vector lanes are distinct output columns, every k step
// uses a separate multiply and add (no FMA contraction), and steps walk k
// in ascending order — so no single output element's sum is ever reordered
// or fused differently from the scalar code. That makes the portable
// kernel a true equivalence oracle, and lets the toggle below flip
// mid-process without changing any result.

const (
	// gemmF32NR is the microkernel tile width: 16 f32 columns = 2 YMM
	// vectors per row.
	gemmF32NR = 16

	// KernelAVX2 and KernelPortable name the f32/int8 kernel tiers in
	// plans, calibration records, and -explain output.
	KernelAVX2     = "avx2"
	KernelPortable = "portable"
)

// gemmF32Asm gates dispatch to the AVX2 f32 microkernel. Atomic because
// runtimes may flip it (RuntimeConfig.DisableSIMD) while other goroutines
// are inside a GEMM; the kernels are bit-identical, so a mid-flight flip
// is harmless — each GEMM call reads the flag once.
var gemmF32Asm atomic.Bool

// SetF32SIMD enables or disables the AVX2 f32 GEMM tier process-wide and
// reports the previous setting. Enabling is a no-op on builds or hardware
// without the kernel. Because the tiers are bit-identical this only moves
// throughput, never results.
func SetF32SIMD(enable bool) (previous bool) {
	return gemmF32Asm.Swap(enable && f32SIMDSupported())
}

// F32SIMDActive reports whether f32 GEMMs currently dispatch to the AVX2
// microkernel.
func F32SIMDActive() bool { return gemmF32Asm.Load() }

// F32SIMDAvailable reports whether this build and CPU carry the AVX2 f32
// microkernel at all, regardless of the runtime toggle.
func F32SIMDAvailable() bool { return f32SIMDSupported() }

// F32KernelName names the active f32 GEMM kernel tier.
func F32KernelName() string {
	if F32SIMDActive() {
		return KernelAVX2
	}
	return KernelPortable
}

// Int8KernelName names the active int8 GEMM kernel tier.
func Int8KernelName() string {
	if gemmInt8AsmActive {
		return KernelAVX2
	}
	return KernelPortable
}

// PackedA is a GEMM a-operand prepared once at compile time: the original
// row-major matrix plus (on SIMD-capable builds) its rows re-laid into
// MR-interleaved quad panels, so the microkernel reads 4 rows' k-th
// elements as one contiguous 16-byte line instead of 4 strided loads.
// Panel element (quad i, k-index p, row r) lives at panels[i*4*k + p*4 + r];
// the trailing m%4 rows stay in raw only and run through the portable
// remainder kernel.
type PackedA struct {
	m, k   int
	raw    []float32
	panels []float32
}

// PackA packs a row-major (m x k) matrix for repeated GEMMPackedRaw calls.
// The raw slice is referenced, not copied; it must stay live and unchanged.
// Panels are built even while the SIMD toggle is off, so flipping it back
// on needs no re-pack.
func PackA(m, k int, a []float32) *PackedA {
	if len(a) < m*k {
		panic("tensor: PackA operand length mismatch")
	}
	pa := &PackedA{m: m, k: k, raw: a}
	if quad := m &^ (gemmMR - 1); f32SIMDSupported() && quad > 0 && k > 0 {
		pa.panels = make([]float32, quad*k)
		packAF32(quad, k, a, pa.panels)
	}
	return pa
}

// packAF32 interleaves quad full row quads of the (.. x k) matrix a into
// dst: dst[i*4*k + p*4 + r] = a[(i*4+r)*k + p]. quad must be a multiple of
// gemmMR.
//
//smol:noalloc
func packAF32(quad, k int, a, dst []float32) {
	for i := 0; i < quad; i += gemmMR {
		panel := dst[i*k : (i+gemmMR)*k : (i+gemmMR)*k]
		r0 := a[i*k : i*k+k]
		r1 := a[(i+1)*k : (i+1)*k+k]
		r2 := a[(i+2)*k : (i+2)*k+k]
		r3 := a[(i+3)*k : (i+3)*k+k]
		for p, v := range r0 {
			panel[p*4] = v
			panel[p*4+1] = r1[p]
			panel[p*4+2] = r2[p]
			panel[p*4+3] = r3[p]
		}
	}
}

// packB16 gathers the (kc x 16) b tile at k-block pc, column jb into dst:
// dst[p*16 + j] = b[(pc+p)*n + jb + j]. At gemmKC depth the tile is 16 KiB
// — L1-resident, and reused by every row quad of the current range.
//
//smol:noalloc
func packB16(n int, b []float32, pc, kc, jb int, dst *[gemmKC * gemmF32NR]float32) {
	for p := 0; p < kc; p++ {
		src := b[(pc+p)*n+jb : (pc+p)*n+jb+gemmF32NR]
		copy(dst[p*gemmF32NR:(p+1)*gemmF32NR], src)
	}
}

// packBuf is the pooled scratch GEMMRaw packs its a operand into when the
// streamed path (no precompiled PackedA) dispatches to the microkernel.
type packBuf struct{ buf []float32 }

var packAPool = sync.Pool{New: func() any { return new(packBuf) }}

// gemmRawAVX2 is GEMMRaw's SIMD path: pack a's full row quads into pooled
// scratch, run the parallel kernel, return the scratch. Warm calls do not
// allocate.
func gemmRawAVX2(m, k, n int, a, b, c []float32, ep Epilogue) {
	pb := packAPool.Get().(*packBuf)
	quad := m &^ (gemmMR - 1)
	if cap(pb.buf) < quad*k {
		pb.buf = make([]float32, quad*k)
	}
	panels := pb.buf[:quad*k]
	packAF32(quad, k, a, panels)
	gemmParallel(m, k, n, panels, a, b, c, ep)
	packAPool.Put(pb)
}

// GEMMPackedRaw is GEMMRaw with a compile-time packed a operand: the
// panels skip the per-call packing pass, and the portable path (or a
// disabled SIMD toggle) falls back to the referenced raw matrix. Results
// are bit-identical either way.
func GEMMPackedRaw(pa *PackedA, n int, b, c []float32, ep Epilogue) {
	m, k := pa.m, pa.k
	if len(b) < k*n || len(c) < m*n {
		panic("tensor: GEMMPackedRaw operand length mismatch")
	}
	checkEpilogue(m, n, ep)
	panels := pa.panels
	if panels != nil && !(gemmF32Asm.Load() && n >= gemmF32NR) {
		panels = nil
	}
	gemmParallel(m, k, n, panels, pa.raw, b, c, ep)
}

// gemmDispatch routes one worker's disjoint region to the SIMD range when
// an a panel is available, and to the portable range otherwise.
func gemmDispatch(m, k, n int, panels, a, b, c []float32, i0, i1, j0, j1 int, ep Epilogue) {
	if panels != nil {
		gemmF32RangeAVX2(k, n, panels, a, b, c, i0, i1, j0, j1, ep)
		return
	}
	gemmRange(m, k, n, a, b, c, i0, i1, j0, j1, ep)
}

// gemmF32RangeAVX2 is the SIMD serial core: the same jc/pc blocking as
// gemmRange, but 16-column b tiles are packed into stack scratch and full
// row quads run the 4x16 microkernel. Row remainders (i1 not a multiple of
// 4 — only ever the matrix tail, since parallel row splits round to
// gemmMR) and column remainders (nc % 16) run the portable gemm4/gemm1 on
// the raw operands, which is bit-identical by construction. i0 must be a
// multiple of gemmMR.
//
//smol:noalloc
func gemmF32RangeAVX2(k, n int, panels, a, b, c []float32, i0, i1, j0, j1 int, ep Epilogue) {
	var bpack [gemmKC * gemmF32NR]float32
	quad := i0 + (i1-i0)&^(gemmMR-1)
	for jc := j0; jc < j1; jc += gemmNC {
		nc := j1 - jc
		if nc > gemmNC {
			nc = gemmNC
		}
		for pc := 0; pc < k; pc += gemmKC {
			kc := k - pc
			if kc > gemmKC {
				kc = gemmKC
			}
			first := 0
			if pc == 0 {
				first = 1
			}
			jb := jc
			for ; jb+gemmF32NR <= jc+nc; jb += gemmF32NR {
				packB16(n, b, pc, kc, jb, &bpack)
				for i := i0; i < quad; i += gemmMR {
					gemmF32Tile4x16(&panels[i*k+pc*gemmMR], &bpack[0], &c[i*n+jb], kc, n, first)
				}
				for i := quad; i < i1; i++ {
					gemm1(k, n, a, b, c, i, jb, gemmF32NR, pc, kc, first == 1)
				}
			}
			if rem := jc + nc - jb; rem > 0 {
				i := i0
				for ; i+gemmMR <= i1; i += gemmMR {
					gemm4(k, n, a, b, c, i, jb, rem, pc, kc, first == 1)
				}
				for ; i < i1; i++ {
					gemm1(k, n, a, b, c, i, jb, rem, pc, kc, first == 1)
				}
			}
		}
		applyEpilogueAVX2(n, c, i0, i1, jc, nc, ep)
	}
}

// applyEpilogueAVX2 is applyEpilogue with the row body vectorized: full
// 8-wide octets run the epilogueF32Row kernel, the tail runs the same
// scalar arithmetic in the same order ((c + bias) + add, then ReLU).
//
//smol:noalloc
func applyEpilogueAVX2(n int, c []float32, i0, i1, jc, nc int, ep Epilogue) {
	if ep.RowBias == nil && ep.Add == nil && !ep.ReLU {
		return
	}
	flags := 0
	if ep.ReLU {
		flags |= 1
	}
	if ep.Add != nil {
		flags |= 2
	}
	octets := nc / 8
	for i := i0; i < i1; i++ {
		var bias float32
		if ep.RowBias != nil {
			bias = ep.RowBias[i]
		}
		off := i*n + jc
		if octets > 0 {
			var addp *float32
			if ep.Add != nil {
				addp = &ep.Add[off]
			}
			epilogueF32Row(&c[off], addp, bias, octets, flags)
		}
		for j := off + octets*8; j < off+nc; j++ {
			v := c[j] + bias
			if ep.Add != nil {
				v += ep.Add[j]
			}
			if ep.ReLU && v < 0 {
				v = 0
			}
			c[j] = v
		}
	}
}
