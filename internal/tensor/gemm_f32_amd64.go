//go:build amd64 && !noasm

package tensor

import "smol/internal/cpu"

func init() { gemmF32Asm.Store(cpu.AVX2()) }

// f32SIMDSupported reports whether this build carries the AVX2 f32
// microkernel and the hardware can run it (ignoring runtime toggles, so
// weight panels are still packed while the kernel is temporarily disabled
// for an oracle comparison).
func f32SIMDSupported() bool { return cpu.AVX2Supported() }

// gemmF32Tile4x16 computes a 4x16 f32 tile of c from an MR-interleaved a
// panel and a packed 16-column b panel; see gemm_f32_amd64.s for the
// layout and the bit-identity contract (no FMA, ascending k).
//
//go:noescape
func gemmF32Tile4x16(a, b, c *float32, kc, cStride, first int)

// epilogueF32Row applies c[j] = relu?(c[j] + bias + add[j]) over octets*8
// contiguous elements of one row. flags bit 0 = ReLU, bit 1 = add present.
//
//go:noescape
func epilogueF32Row(c, add *float32, bias float32, octets, flags int)
