package tensor

import (
	"runtime"
	"sync"
)

// Blocked, parallel GEMM with a fused epilogue. This is the execution
// kernel of the compiled inference path: convolutions lowered to im2col
// run one batched matrix multiply per layer through GEMMFused, with bias,
// residual add, and ReLU folded into the epilogue so the activation tensor
// is touched exactly once.
//
// The loop nest is the classic three-level blocking (column tiles, k
// blocks, register-tiled row panels). Within one output element the k
// terms are accumulated in strictly ascending order, so results are
// bit-identical to the reference MatMulInto regardless of blocking or
// worker count — the equivalence suite relies on this.

const (
	// gemmMR is the register-tile height: rows of a processed together so
	// every streamed element of b is reused gemmMR times from registers.
	gemmMR = 4
	// gemmNC is the column-tile width: a gemmMR x gemmNC tile of c stays
	// L1-resident while k streams through it.
	gemmNC = 512
	// gemmKC is the k-block depth: the (gemmKC x gemmNC) panel of b is
	// reused across all row panels of one column tile.
	gemmKC = 256
	// gemmSerialMACs is the problem size (m*k*n multiply-adds) below which
	// spawning goroutines costs more than it saves.
	gemmSerialMACs = 1 << 16
)

// Epilogue describes the fused tail applied to every element of c after
// accumulation: c[i,j] = f(c[i,j] + RowBias[i] + Add[i,j]) where f is ReLU
// when requested. Nil fields are skipped.
type Epilogue struct {
	// RowBias is a per-row constant (len m), e.g. a conv bias indexed by
	// output channel when c is an (outC x cols) im2col product.
	RowBias []float32
	// Add is an elementwise addend with c's layout (len m*n), e.g. a
	// residual shortcut.
	Add []float32
	// ReLU clamps negatives to zero after bias and add.
	ReLU bool
}

// GEMM computes c = a @ b for a (m x k) and b (k x n) using the blocked,
// parallel kernel. c must be presized to (m x n); it is fully overwritten.
func GEMM(a, b, c *Tensor) {
	GEMMFused(a, b, c, Epilogue{})
}

// GEMMFused computes c = epilogue(a @ b). Large problems are split across
// goroutines — row panels when m is tall enough, column panels otherwise
// (the batched-im2col shape: few output channels, very many columns).
func GEMMFused(a, b, c *Tensor, ep Epilogue) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(c.Shape) != 2 {
		panic("tensor: GEMMFused wants 2-D operands")
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	if b.Shape[0] != k || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: GEMMFused shape mismatch")
	}
	GEMMRaw(m, k, n, a.Data, b.Data, c.Data, ep)
}

// GEMMRaw is GEMMFused over raw row-major slices: a is (m x k), b is
// (k x n), c is (m x n). It is the allocation-free entry point the
// compiled inference path uses (no tensor headers are built per call).
func GEMMRaw(m, k, n int, a, b, c []float32, ep Epilogue) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GEMMRaw operand length mismatch")
	}
	checkEpilogue(m, n, ep)
	if gemmF32Asm.Load() && m >= gemmMR && k > 0 && n >= gemmF32NR {
		gemmRawAVX2(m, k, n, a, b, c, ep)
		return
	}
	gemmParallel(m, k, n, nil, a, b, c, ep)
}

// checkEpilogue validates the epilogue operands against the output shape.
func checkEpilogue(m, n int, ep Epilogue) {
	if ep.RowBias != nil && len(ep.RowBias) != m {
		panic("tensor: GEMM RowBias length mismatch")
	}
	if ep.Add != nil && len(ep.Add) != m*n {
		panic("tensor: GEMM Add length mismatch")
	}
}

// gemmParallel splits the output across workers and runs each disjoint
// region through gemmDispatch — the SIMD range when panels holds the
// MR-interleaved a quads, the portable range otherwise. Row panels round
// to gemmMR, so every worker's i0 stays quad-aligned for the panel layout.
func gemmParallel(m, k, n int, panels, a, b, c []float32, ep Epilogue) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || m*k*n < gemmSerialMACs {
		gemmDispatch(m, k, n, panels, a, b, c, 0, m, 0, n, ep)
		return
	}
	var wg sync.WaitGroup
	if rows := (m + workers - 1) / workers; rows >= gemmMR {
		// Tall enough: row panels, rounded to the register tile.
		rows = (rows + gemmMR - 1) / gemmMR * gemmMR
		for i0 := 0; i0 < m; i0 += rows {
			i1 := i0 + rows
			if i1 > m {
				i1 = m
			}
			wg.Add(1)
			go func(i0, i1 int) {
				defer wg.Done()
				gemmDispatch(m, k, n, panels, a, b, c, i0, i1, 0, n, ep)
			}(i0, i1)
		}
	} else {
		// Short and wide: column panels (disjoint output columns).
		cols := (n + workers - 1) / workers
		if cols < 64 {
			cols = 64
		}
		for j0 := 0; j0 < n; j0 += cols {
			j1 := j0 + cols
			if j1 > n {
				j1 = n
			}
			wg.Add(1)
			go func(j0, j1 int) {
				defer wg.Done()
				gemmDispatch(m, k, n, panels, a, b, c, 0, m, j0, j1, ep)
			}(j0, j1)
		}
	}
	wg.Wait()
}

// gemmRange computes rows [i0,i1) x columns [j0,j1) of c = a @ b and
// applies the epilogue to that region. It is the serial core; parallel
// callers give each worker a disjoint region.
//
//smol:noalloc
func gemmRange(m, k, n int, a, b, c []float32, i0, i1, j0, j1 int, ep Epilogue) {
	for jc := j0; jc < j1; jc += gemmNC {
		nc := j1 - jc
		if nc > gemmNC {
			nc = gemmNC
		}
		for pc := 0; pc < k; pc += gemmKC {
			kc := k - pc
			if kc > gemmKC {
				kc = gemmKC
			}
			first := pc == 0
			i := i0
			for ; i+gemmMR <= i1; i += gemmMR {
				gemm4(k, n, a, b, c, i, jc, nc, pc, kc, first)
			}
			for ; i < i1; i++ {
				gemm1(k, n, a, b, c, i, jc, nc, pc, kc, first)
			}
		}
		applyEpilogue(n, c, i0, i1, jc, nc, ep)
	}
}

// gemm4 accumulates a 4-row register tile: c[i..i+3, jc..jc+nc] (+)=
// a[i..i+3, pc..pc+kc] @ b[pc..pc+kc, jc..jc+nc]. When first is set the
// p == pc term assigns instead of accumulating, saving a zeroing pass.
//
// The main loop unrolls k by 4 with left-associated chained adds, so each
// c element is loaded and stored once per 4 multiply-adds while the
// per-element accumulation order stays strictly ascending in p (results
// remain bit-identical to MatMulInto).
//
//smol:noalloc
func gemm4(k, n int, a, b, c []float32, i, jc, nc, pc, kc int, first bool) {
	c0 := c[i*n+jc : i*n+jc+nc : i*n+jc+nc]
	c1 := c[(i+1)*n+jc : (i+1)*n+jc+nc : (i+1)*n+jc+nc]
	c2 := c[(i+2)*n+jc : (i+2)*n+jc+nc : (i+2)*n+jc+nc]
	c3 := c[(i+3)*n+jc : (i+3)*n+jc+nc : (i+3)*n+jc+nc]
	a0 := a[i*k+pc : i*k+pc+kc]
	a1 := a[(i+1)*k+pc : (i+1)*k+pc+kc]
	a2 := a[(i+2)*k+pc : (i+2)*k+pc+kc]
	a3 := a[(i+3)*k+pc : (i+3)*k+pc+kc]
	p := 0
	switch {
	case first && kc >= 4:
		// Assign a full 4-deep chain so the unrolled loop below stays
		// aligned (k divisible by 4 then has no slow remainder steps).
		b0 := b[pc*n+jc : pc*n+jc+nc : pc*n+jc+nc]
		b1 := b[(pc+1)*n+jc:][:len(b0)]
		b2 := b[(pc+2)*n+jc:][:len(b0)]
		b3 := b[(pc+3)*n+jc:][:len(b0)]
		r0, r1, r2, r3 := c0[:len(b0)], c1[:len(b0)], c2[:len(b0)], c3[:len(b0)]
		a00, a01, a02, a03 := a0[0], a0[1], a0[2], a0[3]
		a10, a11, a12, a13 := a1[0], a1[1], a1[2], a1[3]
		a20, a21, a22, a23 := a2[0], a2[1], a2[2], a2[3]
		a30, a31, a32, a33 := a3[0], a3[1], a3[2], a3[3]
		for j := range b0 {
			bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
			r0[j] = a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
			r1[j] = a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
			r2[j] = a20*bv0 + a21*bv1 + a22*bv2 + a23*bv3
			r3[j] = a30*bv0 + a31*bv1 + a32*bv2 + a33*bv3
		}
		p = 4
	case first:
		av0, av1, av2, av3 := a0[0], a1[0], a2[0], a3[0]
		brow := b[pc*n+jc : pc*n+jc+nc]
		r0, r1, r2, r3 := c0[:len(brow)], c1[:len(brow)], c2[:len(brow)], c3[:len(brow)]
		for j, bv := range brow {
			r0[j] = av0 * bv
			r1[j] = av1 * bv
			r2[j] = av2 * bv
			r3[j] = av3 * bv
		}
		p = 1
	}
	for ; p+3 < kc; p += 4 {
		b0 := b[(pc+p)*n+jc : (pc+p)*n+jc+nc : (pc+p)*n+jc+nc]
		// Reslicing everything to len(b0) lets the compiler elide the
		// per-element bounds checks in the hot loop below.
		b1 := b[(pc+p+1)*n+jc:][:len(b0)]
		b2 := b[(pc+p+2)*n+jc:][:len(b0)]
		b3 := b[(pc+p+3)*n+jc:][:len(b0)]
		r0, r1, r2, r3 := c0[:len(b0)], c1[:len(b0)], c2[:len(b0)], c3[:len(b0)]
		a00, a01, a02, a03 := a0[p], a0[p+1], a0[p+2], a0[p+3]
		a10, a11, a12, a13 := a1[p], a1[p+1], a1[p+2], a1[p+3]
		a20, a21, a22, a23 := a2[p], a2[p+1], a2[p+2], a2[p+3]
		a30, a31, a32, a33 := a3[p], a3[p+1], a3[p+2], a3[p+3]
		for j := range b0 {
			bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
			r0[j] = r0[j] + a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
			r1[j] = r1[j] + a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
			r2[j] = r2[j] + a20*bv0 + a21*bv1 + a22*bv2 + a23*bv3
			r3[j] = r3[j] + a30*bv0 + a31*bv1 + a32*bv2 + a33*bv3
		}
	}
	for ; p < kc; p++ {
		av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
		brow := b[(pc+p)*n+jc : (pc+p)*n+jc+nc]
		r0, r1, r2, r3 := c0[:len(brow)], c1[:len(brow)], c2[:len(brow)], c3[:len(brow)]
		for j, bv := range brow {
			r0[j] += av0 * bv
			r1[j] += av1 * bv
			r2[j] += av2 * bv
			r3[j] += av3 * bv
		}
	}
}

// gemm1 is the single-row remainder kernel, k-unrolled like gemm4.
//
//smol:noalloc
func gemm1(k, n int, a, b, c []float32, i, jc, nc, pc, kc int, first bool) {
	crow := c[i*n+jc : i*n+jc+nc : i*n+jc+nc]
	arow := a[i*k+pc : i*k+pc+kc]
	p := 0
	switch {
	case first && kc >= 4:
		b0 := b[pc*n+jc : pc*n+jc+nc : pc*n+jc+nc]
		b1 := b[(pc+1)*n+jc:][:len(b0)]
		b2 := b[(pc+2)*n+jc:][:len(b0)]
		b3 := b[(pc+3)*n+jc:][:len(b0)]
		r := crow[:len(b0)]
		av0, av1, av2, av3 := arow[0], arow[1], arow[2], arow[3]
		for j := range b0 {
			r[j] = av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
		}
		p = 4
	case first:
		av := arow[0]
		brow := b[pc*n+jc : pc*n+jc+nc]
		for j, bv := range brow {
			crow[j] = av * bv
		}
		p = 1
	}
	for ; p+3 < kc; p += 4 {
		b0 := b[(pc+p)*n+jc : (pc+p)*n+jc+nc : (pc+p)*n+jc+nc]
		b1 := b[(pc+p+1)*n+jc:][:len(b0)]
		b2 := b[(pc+p+2)*n+jc:][:len(b0)]
		b3 := b[(pc+p+3)*n+jc:][:len(b0)]
		r := crow[:len(b0)]
		av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		for j := range b0 {
			r[j] = r[j] + av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
		}
	}
	for ; p < kc; p++ {
		av := arow[p]
		brow := b[(pc+p)*n+jc : (pc+p)*n+jc+nc]
		for j, bv := range brow {
			crow[j] += av * bv
		}
	}
}

// applyEpilogue applies bias / add / ReLU to rows [i0,i1) x columns
// [jc,jc+nc) of c, immediately after those elements finish accumulating so
// the tile is still cache-hot.
//
//smol:noalloc
func applyEpilogue(n int, c []float32, i0, i1, jc, nc int, ep Epilogue) {
	if ep.RowBias == nil && ep.Add == nil && !ep.ReLU {
		return
	}
	for i := i0; i < i1; i++ {
		row := c[i*n+jc : i*n+jc+nc : i*n+jc+nc]
		var bias float32
		if ep.RowBias != nil {
			bias = ep.RowBias[i]
		}
		switch {
		case ep.Add != nil && ep.ReLU:
			add := ep.Add[i*n+jc : i*n+jc+nc]
			for j := range row {
				v := row[j] + bias + add[j]
				if v < 0 {
					v = 0
				}
				row[j] = v
			}
		case ep.Add != nil:
			add := ep.Add[i*n+jc : i*n+jc+nc]
			for j := range row {
				row[j] = row[j] + bias + add[j]
			}
		case ep.ReLU:
			for j := range row {
				v := row[j] + bias
				if v < 0 {
					v = 0
				}
				row[j] = v
			}
		default:
			for j := range row {
				row[j] += bias
			}
		}
	}
}

// Im2ColBatch unfolds a batch of n images into one (C*kh*kw) x (n*outH*outW)
// column matrix — sample i owns the column block [i*outH*outW,
// (i+1)*outH*outW) — so a whole conv layer lowers to a single GEMM. The
// source layout is described by strides: sample i's channel ci plane starts
// at src[i*sampleStride + ci*chanStride]. NCHW inputs use sampleStride =
// C*H*W, chanStride = H*W; the compiled path's channel-major CNHW
// activations use sampleStride = H*W, chanStride = n*H*W.
// col is the raw destination, at least (C*kh*kw) * (n*outH*outW) long.
//
//smol:noalloc
func Im2ColBatch(src []float32, n, c, h, w, sampleStride, chanStride, kh, kw, stride, pad int, col []float32) (outH, outW int) {
	outH = (h+2*pad-kh)/stride + 1
	outW = (w+2*pad-kw)/stride + 1
	ohow := outH * outW
	total := n * ohow
	rows := c * kh * kw
	if len(col) < rows*total {
		panic("tensor: Im2ColBatch output buffer too small")
	}
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			plane := src[i*sampleStride+ci*chanStride : i*sampleStride+ci*chanStride+h*w]
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row := ((ci*kh+ky)*kw+kx)*total + i*ohow
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride + ky - pad
						dst := col[row+oy*outW : row+oy*outW+outW]
						if iy < 0 || iy >= h {
							for ox := range dst {
								dst[ox] = 0
							}
							continue
						}
						inRow := plane[iy*w : iy*w+w]
						if stride == 1 {
							// The valid ix range [ox0,ox1) is contiguous at
							// stride 1: bulk-copy it, zero only the pad edges.
							ox0 := pad - kx
							if ox0 < 0 {
								ox0 = 0
							} else if ox0 > outW {
								ox0 = outW
							}
							ox1 := w + pad - kx
							if ox1 > outW {
								ox1 = outW
							} else if ox1 < ox0 {
								ox1 = ox0 // kernel wider than the padded row: all zeros
							}
							for ox := 0; ox < ox0; ox++ {
								dst[ox] = 0
							}
							if ox1 > ox0 {
								copy(dst[ox0:ox1], inRow[ox0+kx-pad:])
							}
							for ox := ox1; ox < outW; ox++ {
								dst[ox] = 0
							}
							continue
						}
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								dst[ox] = 0
							} else {
								dst[ox] = inRow[ix]
							}
						}
					}
				}
			}
		}
	}
	return outH, outW
}
