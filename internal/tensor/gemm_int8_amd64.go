//go:build amd64 && !noasm

package tensor

import "smol/internal/cpu"

// gemmInt8AsmActive gates the AVX2 microkernel. It is a variable (not a
// constant) so the equivalence tests can force the portable kernel and
// compare the two paths bit-for-bit.
var gemmInt8AsmActive = cpu.AVX2()

// gemmInt8Tile4x16 accumulates a full-k 4-row x 16-column int32 tile:
//
//	acc[r*n+j] = sum over p < 2*pairs of a[r*aStride+p] * b[p*n+j]
//
// for r < 4, j < 16. a holds int8-range weights widened to int16 (row
// stride aStride elements); b is int8 row-major with row stride n; the
// tile of acc is overwritten. k is consumed two rows of b at a time via
// VPMADDWD, so the caller passes pairs = k/2 and adds any odd trailing
// term itself.
//
//go:noescape
func gemmInt8Tile4x16(a *int16, b *int8, acc *int32, pairs, aStride, n int)
