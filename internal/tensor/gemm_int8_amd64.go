//go:build amd64

package tensor

// gemmInt8AsmActive gates the AVX2 microkernel. It is a variable (not a
// constant) so the equivalence tests can force the portable kernel and
// compare the two paths bit-for-bit.
var gemmInt8AsmActive = cpuSupportsAVX2()

// gemmInt8Tile4x16 accumulates a full-k 4-row x 16-column int32 tile:
//
//	acc[r*n+j] = sum over p < 2*pairs of a[r*aStride+p] * b[p*n+j]
//
// for r < 4, j < 16. a holds int8-range weights widened to int16 (row
// stride aStride elements); b is int8 row-major with row stride n; the
// tile of acc is overwritten. k is consumed two rows of b at a time via
// VPMADDWD, so the caller passes pairs = k/2 and adds any odd trailing
// term itself.
//
//go:noescape
func gemmInt8Tile4x16(a *int16, b *int8, acc *int32, pairs, aStride, n int)

// cpuid executes CPUID for the given leaf and subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the set of processor states the OS has enabled.
func xgetbv0() uint64

// cpuSupportsAVX2 reports whether both the CPU and the OS support AVX2:
// leaf-1 OSXSAVE+AVX, XCR0 XMM+YMM state enabled, leaf-7 AVX2.
func cpuSupportsAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	const xmmYmm = 0x6
	if xgetbv0()&xmmYmm != xmmYmm {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}
