//go:build amd64 && !noasm

#include "textflag.h"

// func gemmInt8Tile4x16(a *int16, b *int8, acc *int32, pairs, aStride, n int)
//
// AVX2 int8 GEMM microkernel: a full-k 4x16 int32 tile. Per k-pair it
// sign-extends two 16-byte rows of b to int16 (VPMOVSXBW), interleaves them
// per 128-bit lane (VPUNPCKLWD/VPUNPCKHWD) so each dword holds the
// (b[p][j], b[p+1][j]) pair, broadcasts each a row's adjacent weight pair
// (one dword of the widened int16 weights, VPBROADCASTD), and dual-MACs
// with VPMADDWD: pairwise int16 products summed into int32 lanes. The
// interleave leaves columns permuted {0-3,8-11}/{4-7,12-15} across the two
// accumulators per row; VPERM2I128 undoes that at store time.
//
// Products are bounded by 127*127 and k by a few thousand, so the int32
// accumulators cannot overflow (max |k * 2 * 16129| << 2^31).
TEXT ·gemmInt8Tile4x16(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ acc+16(FP), DI
	MOVQ pairs+24(FP), CX
	MOVQ aStride+32(FP), R8
	MOVQ n+40(FP), DX

	// Row pointers into a (stride in bytes = 2*aStride).
	SHLQ $1, R8
	LEAQ (SI)(R8*1), R9
	LEAQ (SI)(R8*2), R10
	LEAQ (R9)(R8*2), R11

	// Eight accumulators: Y8/Y9 row 0, ... Y14/Y15 row 3.
	VPXOR Y8, Y8, Y8
	VPXOR Y9, Y9, Y9
	VPXOR Y10, Y10, Y10
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12
	VPXOR Y13, Y13, Y13
	VPXOR Y14, Y14, Y14
	VPXOR Y15, Y15, Y15

pairloop:
	// Y0 = b row p, Y1 = b row p+1, widened to int16.
	VPMOVSXBW (BX), Y0
	VPMOVSXBW (BX)(DX*1), Y1
	LEAQ (BX)(DX*2), BX

	// Interleave into (b[p][j], b[p+1][j]) dword pairs per 128-bit lane:
	// Y2 = columns {0-3, 8-11}, Y3 = columns {4-7, 12-15}.
	VPUNPCKLWD Y1, Y0, Y2
	VPUNPCKHWD Y1, Y0, Y3

	// Row 0: broadcast (a[p], a[p+1]) and dual-MAC.
	VPBROADCASTD (SI), Y4
	VPMADDWD     Y2, Y4, Y5
	VPADDD       Y5, Y8, Y8
	VPMADDWD     Y3, Y4, Y5
	VPADDD       Y5, Y9, Y9

	// Row 1.
	VPBROADCASTD (R9), Y4
	VPMADDWD     Y2, Y4, Y5
	VPADDD       Y5, Y10, Y10
	VPMADDWD     Y3, Y4, Y5
	VPADDD       Y5, Y11, Y11

	// Row 2.
	VPBROADCASTD (R10), Y4
	VPMADDWD     Y2, Y4, Y5
	VPADDD       Y5, Y12, Y12
	VPMADDWD     Y3, Y4, Y5
	VPADDD       Y5, Y13, Y13

	// Row 3.
	VPBROADCASTD (R11), Y4
	VPMADDWD     Y2, Y4, Y5
	VPADDD       Y5, Y14, Y14
	VPMADDWD     Y3, Y4, Y5
	VPADDD       Y5, Y15, Y15

	ADDQ $4, SI
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNZ  pairloop

	// Un-permute ({0-3,8-11},{4-7,12-15}) -> ({0-7},{8-15}) and store.
	SHLQ $2, DX // acc row stride in bytes

	VPERM2I128 $0x20, Y9, Y8, Y0
	VPERM2I128 $0x31, Y9, Y8, Y1
	VMOVDQU    Y0, (DI)
	VMOVDQU    Y1, 32(DI)
	ADDQ       DX, DI

	VPERM2I128 $0x20, Y11, Y10, Y0
	VPERM2I128 $0x31, Y11, Y10, Y1
	VMOVDQU    Y0, (DI)
	VMOVDQU    Y1, 32(DI)
	ADDQ       DX, DI

	VPERM2I128 $0x20, Y13, Y12, Y0
	VPERM2I128 $0x31, Y13, Y12, Y1
	VMOVDQU    Y0, (DI)
	VMOVDQU    Y1, 32(DI)
	ADDQ       DX, DI

	VPERM2I128 $0x20, Y15, Y14, Y0
	VPERM2I128 $0x31, Y15, Y14, Y1
	VMOVDQU    Y0, (DI)
	VMOVDQU    Y1, 32(DI)

	VZEROUPPER
	RET
