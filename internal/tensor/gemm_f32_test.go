package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"smol/internal/analysis/alloctest"
)

// The f32 SIMD tier's whole contract is bit identity: the AVX2 microkernel
// must be indistinguishable from the portable kernel (and therefore from
// MatMulInto) on every input, including -0.0 and NaN. These tests compare
// raw float bits, never approximate equality.

func f32BitsDiff(a, b []float32) int {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i
		}
	}
	return -1
}

func randF32s(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func epilogueVariant(rng *rand.Rand, variant, m, n int) Epilogue {
	var ep Epilogue
	if variant&1 != 0 {
		ep.RowBias = randF32s(rng, m)
	}
	if variant&2 != 0 {
		ep.Add = randF32s(rng, m*n)
	}
	ep.ReLU = variant&4 != 0
	return ep
}

// TestGEMMF32AsmMatchesPortable: exact bit equality between the AVX2 and
// portable kernels across ragged shapes (m%4 != 0, n%16 != 0, odd k),
// kc/nc tile boundaries (k > gemmKC forces accumulate-mode tiles, n >
// gemmNC forces multiple column tiles), and every epilogue combination.
func TestGEMMF32AsmMatchesPortable(t *testing.T) {
	if !F32SIMDAvailable() {
		t.Skip("AVX2 f32 kernel not available on this host")
	}
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 15}, {4, 3, 16}, {5, 7, 33}, {8, 16, 64},
		{7, 27, 70}, {4, 257, 16}, {13, 300, 45}, {16, 256, 512},
		{12, 32, 530}, {9, 513, 100}, {17, 259, 529},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for variant := 0; variant < 8; variant++ {
			t.Run(fmt.Sprintf("m%dk%dn%d/ep%d", m, k, n, variant), func(t *testing.T) {
				a := randF32s(rng, m*k)
				bm := randF32s(rng, k*n)
				ep := epilogueVariant(rng, variant, m, n)

				asmC := make([]float32, m*n)
				prev := SetF32SIMD(true)
				GEMMRaw(m, k, n, a, bm, asmC, ep)
				SetF32SIMD(false)
				goC := make([]float32, m*n)
				GEMMRaw(m, k, n, a, bm, goC, ep)
				SetF32SIMD(prev)

				if i := f32BitsDiff(asmC, goC); i >= 0 {
					t.Fatalf("shape %v ep %d: asm c[%d] = %x, portable %x", sh, variant, i,
						math.Float32bits(asmC[i]), math.Float32bits(goC[i]))
				}
			})
		}
	}
}

// TestGEMMF32PropertySweep: randomized shapes and epilogues, asm vs
// portable, raw bits.
func TestGEMMF32PropertySweep(t *testing.T) {
	if !F32SIMDAvailable() {
		t.Skip("AVX2 f32 kernel not available on this host")
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(560)
		n := 1 + rng.Intn(700)
		a := randF32s(rng, m*k)
		bm := randF32s(rng, k*n)
		ep := epilogueVariant(rng, rng.Intn(8), m, n)

		asmC := make([]float32, m*n)
		prev := SetF32SIMD(true)
		GEMMRaw(m, k, n, a, bm, asmC, ep)
		SetF32SIMD(false)
		goC := make([]float32, m*n)
		GEMMRaw(m, k, n, a, bm, goC, ep)
		SetF32SIMD(prev)

		if i := f32BitsDiff(asmC, goC); i >= 0 {
			t.Fatalf("trial %d (m=%d k=%d n=%d): asm c[%d] bits %x, portable %x",
				trial, m, k, n, i, math.Float32bits(asmC[i]), math.Float32bits(goC[i]))
		}
	}
}

// TestGEMMF32SpecialValues: -0.0, NaN, and infinities must propagate
// through the microkernel and the vectorized ReLU exactly like the scalar
// code — ReLU keeps -0.0 and NaN (v < 0 is false for both), and a compare
// -and-mask must not canonicalize them the way VMAXPS would.
func TestGEMMF32SpecialValues(t *testing.T) {
	if !F32SIMDAvailable() {
		t.Skip("AVX2 f32 kernel not available on this host")
	}
	rng := rand.New(rand.NewSource(13))
	const m, k, n = 8, 37, 48
	nan := float32(math.NaN())
	negZero := float32(math.Copysign(0, -1))
	inf := float32(math.Inf(1))
	for variant := 0; variant < 8; variant++ {
		a := randF32s(rng, m*k)
		bm := randF32s(rng, k*n)
		// Whole rows of zeros times anything give -0.0 sums; seeded NaN and
		// +-Inf exercise payload and sign propagation.
		for p := 0; p < k; p++ {
			a[p] = negZero
		}
		a[3*k+1] = nan
		a[5*k+2] = inf
		bm[7*n+5] = nan
		bm[2*n+11] = -inf
		ep := epilogueVariant(rng, variant, m, n)

		asmC := make([]float32, m*n)
		prev := SetF32SIMD(true)
		GEMMRaw(m, k, n, a, bm, asmC, ep)
		SetF32SIMD(false)
		goC := make([]float32, m*n)
		GEMMRaw(m, k, n, a, bm, goC, ep)
		SetF32SIMD(prev)

		if i := f32BitsDiff(asmC, goC); i >= 0 {
			t.Fatalf("ep %d: asm c[%d] bits %x, portable %x", variant, i,
				math.Float32bits(asmC[i]), math.Float32bits(goC[i]))
		}
	}
}

// TestGEMMPackedMatchesRaw: a compile-time packed operand must give the
// same bits as the streamed path, with the SIMD toggle both on and off
// (off exercises the fallback onto the referenced raw matrix).
func TestGEMMPackedMatchesRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sh := range [][3]int{{1, 4, 20}, {4, 16, 16}, {7, 80, 130}, {23, 300, 530}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randF32s(rng, m*k)
		bm := randF32s(rng, k*n)
		ep := Epilogue{RowBias: randF32s(rng, m), ReLU: true}
		want := make([]float32, m*n)
		GEMMRaw(m, k, n, a, bm, want, ep)

		pa := PackA(m, k, a)
		for _, simd := range []bool{true, false} {
			prev := SetF32SIMD(simd)
			got := make([]float32, m*n)
			GEMMPackedRaw(pa, n, bm, got, ep)
			SetF32SIMD(prev)
			if i := f32BitsDiff(got, want); i >= 0 {
				t.Fatalf("shape %v simd=%v: packed c[%d] bits %x, raw %x", sh, simd, i,
					math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

// TestGEMMF32ParallelMatchesSerial: the worker split must stay bit-stable
// for the SIMD path too — row splits are quad-aligned for the panel
// layout, column splits hand the SIMD range a nonzero j0.
func TestGEMMF32ParallelMatchesSerial(t *testing.T) {
	if !F32SIMDAvailable() {
		t.Skip("AVX2 f32 kernel not available on this host")
	}
	rng := rand.New(rand.NewSource(15))
	for _, sh := range [][3]int{{64, 128, 640}, {4, 90, 2000}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randF32s(rng, m*k)
		bm := randF32s(rng, k*n)
		ep := Epilogue{RowBias: randF32s(rng, m), ReLU: true}

		prev := SetF32SIMD(true)
		old := runtime.GOMAXPROCS(1)
		serial := make([]float32, m*n)
		GEMMRaw(m, k, n, a, bm, serial, ep)
		runtime.GOMAXPROCS(4)
		parallel := make([]float32, m*n)
		GEMMRaw(m, k, n, a, bm, parallel, ep)
		runtime.GOMAXPROCS(old)
		SetF32SIMD(prev)

		if i := f32BitsDiff(parallel, serial); i >= 0 {
			t.Fatalf("shape %v: parallel c[%d] bits %x, serial %x", sh, i,
				math.Float32bits(parallel[i]), math.Float32bits(serial[i]))
		}
	}
}

// TestSetF32SIMD pins the toggle contract: it reports the previous state,
// and enabling is a no-op where the kernel does not exist.
func TestSetF32SIMD(t *testing.T) {
	orig := F32SIMDActive()
	defer SetF32SIMD(orig)
	if prev := SetF32SIMD(false); prev != orig {
		t.Fatalf("SetF32SIMD(false) reported previous %v, want %v", prev, orig)
	}
	if F32SIMDActive() {
		t.Fatal("kernel active after SetF32SIMD(false)")
	}
	SetF32SIMD(true)
	if F32SIMDActive() != F32SIMDAvailable() {
		t.Fatalf("SetF32SIMD(true): active %v, available %v", F32SIMDActive(), F32SIMDAvailable())
	}
	want := KernelPortable
	if F32SIMDAvailable() {
		want = KernelAVX2
	}
	if got := F32KernelName(); got != want {
		t.Fatalf("F32KernelName() = %q, want %q", got, want)
	}
}

// TestGEMMF32WarmAllocs: the pack/dispatch path reuses pooled and stack
// scratch — once warm, streamed and packed SIMD GEMMs allocate nothing.
// GOMAXPROCS is pinned to 1 so the serial SIMD core (not the goroutine
// split) carries the call.
func TestGEMMF32WarmAllocs(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(16))
	const m, k, n = 8, 64, 96
	a := randF32s(rng, m*k)
	bm := randF32s(rng, k*n)
	c := make([]float32, m*n)
	ep := Epilogue{RowBias: randF32s(rng, m), ReLU: true}
	pa := PackA(m, k, a)
	GEMMRaw(m, k, n, a, bm, c, ep) // warm the pack pool
	alloctest.Run(t, "smol/internal/tensor.gemmF32RangeAVX2", 0, func() {
		GEMMRaw(m, k, n, a, bm, c, ep)
		GEMMPackedRaw(pa, n, bm, c, ep)
	},
		"smol/internal/tensor.packAF32",
		"smol/internal/tensor.packB16",
		"smol/internal/tensor.applyEpilogueAVX2")
}
