package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestGEMMMatchesMatMulInto: the blocked kernel accumulates each output
// element's k terms in ascending order, so it must agree bit-for-bit with
// the reference kernel across awkward shapes (tile remainders, single
// rows/columns, sizes straddling every block boundary).
func TestGEMMMatchesMatMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 1}, {3, 5, 2}, {4, 4, 4}, {5, 9, 7},
		{8, 27, 33}, {13, 300, 17}, {4, 513, 515}, {6, 257, 600},
		{65, 64, 63}, {2, 1024, 9},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := New(m, n)
		MatMulInto(a, b, want)
		got := New(m, n)
		// Poison the output to catch missing initialization.
		for i := range got.Data {
			got.Data[i] = 999
		}
		GEMM(a, b, got)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%dx%dx%d: element %d: GEMM %v, MatMulInto %v",
					m, k, n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGEMMParallelMatchesSerial raises GOMAXPROCS so the goroutine-split
// paths (row panels for tall problems, column panels for wide ones) are
// exercised even on a single-core machine.
func TestGEMMParallelMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(2))
	for _, s := range [][3]int{
		{64, 64, 64},   // tall enough for row panels
		{8, 72, 4096},  // conv shape: few rows, many columns -> column panels
		{3, 100, 2000}, // column panels with a row remainder
	} {
		m, k, n := s[0], s[1], s[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := New(m, n)
		MatMulInto(a, b, want)
		got := New(m, n)
		GEMM(a, b, got)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%dx%dx%d: element %d differs under parallel GEMM", m, k, n, i)
			}
		}
	}
}

// TestGEMMFusedEpilogue checks bias, elementwise add, and ReLU against a
// naive recomputation, in every combination.
func TestGEMMFusedEpilogue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 6, 40, 530 // straddles one gemmNC boundary
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	base := New(m, n)
	MatMulInto(a, b, base)
	bias := make([]float32, m)
	for i := range bias {
		bias[i] = rng.Float32()*2 - 1
	}
	add := make([]float32, m*n)
	for i := range add {
		add[i] = rng.Float32()*2 - 1
	}
	for _, tc := range []struct {
		name string
		ep   Epilogue
	}{
		{"none", Epilogue{}},
		{"bias", Epilogue{RowBias: bias}},
		{"add", Epilogue{Add: add}},
		{"relu", Epilogue{ReLU: true}},
		{"bias+add", Epilogue{RowBias: bias, Add: add}},
		{"bias+relu", Epilogue{RowBias: bias, ReLU: true}},
		{"bias+add+relu", Epilogue{RowBias: bias, Add: add, ReLU: true}},
	} {
		got := New(m, n)
		GEMMFused(a, b, got, tc.ep)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want := base.Data[i*n+j]
				if tc.ep.RowBias != nil {
					want += bias[i]
				}
				if tc.ep.Add != nil {
					want += add[i*n+j]
				}
				if tc.ep.ReLU && want < 0 {
					want = 0
				}
				if got.Data[i*n+j] != want {
					t.Fatalf("%s: c[%d,%d] = %v, want %v", tc.name, i, j, got.Data[i*n+j], want)
				}
			}
		}
	}
}

// TestIm2ColBatchMatchesIm2Col: the batched unfold with NCHW strides must
// reproduce the per-sample reference column-for-column.
func TestIm2ColBatchMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, g := range []struct{ n, c, h, w, k, stride, pad int }{
		{1, 1, 5, 5, 3, 1, 1},
		{3, 2, 6, 6, 3, 2, 1},
		{2, 3, 8, 7, 1, 2, 0},
		{4, 2, 5, 9, 3, 1, 0},
		// Kernel wider than the padded row: the stride-1 fast path must
		// zero-fill fully instead of computing a negative copy range.
		{1, 1, 1, 1, 6, 1, 3},
	} {
		x := randTensor(rng, g.n, g.c, g.h, g.w)
		outH := (g.h+2*g.pad-g.k)/g.stride + 1
		outW := (g.w+2*g.pad-g.k)/g.stride + 1
		rows := g.c * g.k * g.k
		ohow := outH * outW
		batch := New(rows, g.n*ohow)
		Im2ColBatch(x.Data, g.n, g.c, g.h, g.w, g.c*g.h*g.w, g.h*g.w,
			g.k, g.k, g.stride, g.pad, batch.Data)
		single := New(rows, ohow)
		for i := 0; i < g.n; i++ {
			sample := FromData(x.Data[i*g.c*g.h*g.w:(i+1)*g.c*g.h*g.w], g.c, g.h, g.w)
			Im2Col(sample, g.k, g.k, g.stride, g.pad, single)
			for r := 0; r < rows; r++ {
				for j := 0; j < ohow; j++ {
					got := batch.Data[r*g.n*ohow+i*ohow+j]
					want := single.Data[r*ohow+j]
					if got != want {
						t.Fatalf("geom %+v sample %d: col[%d,%d] = %v, want %v", g, i, r, j, got, want)
					}
				}
			}
		}
	}
}

// TestIm2ColBatchCNHW: with channel-major strides, reading channel plane
// (c*n+i) must produce the same columns as the NCHW layout of the same
// logical tensor.
func TestIm2ColBatchCNHW(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, c, h, w := 3, 4, 6, 5
	k, stride, pad := 3, 1, 1
	nchw := randTensor(rng, n, c, h, w)
	// Transpose to CNHW.
	cnhw := make([]float32, len(nchw.Data))
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			copy(cnhw[(ci*n+i)*h*w:(ci*n+i+1)*h*w], nchw.Data[(i*c+ci)*h*w:(i*c+ci+1)*h*w])
		}
	}
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	rows := c * k * k
	want := New(rows, n*outH*outW)
	Im2ColBatch(nchw.Data, n, c, h, w, c*h*w, h*w, k, k, stride, pad, want.Data)
	got := New(rows, n*outH*outW)
	Im2ColBatch(cnhw, n, c, h, w, h*w, n*h*w, k, k, stride, pad, got.Data)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("element %d: CNHW %v, NCHW %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMulStillWorks pins the public MatMul wrapper after the dead
// variable cleanup.
func TestMatMulStillWorks(t *testing.T) {
	a := FromData([]float32{1, 2, 3, 4}, 2, 2)
	b := FromData([]float32{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}
