package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 || a.Dim(0) != 2 || a.Dim(2) != 4 {
		t.Fatalf("bad tensor %v", a.Shape)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0)
}

func TestFromDataValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromData(make([]float32, 5), 2, 3)
}

func TestReshape(t *testing.T) {
	a := New(2, 6)
	for i := range a.Data {
		a.Data[i] = float32(i)
	}
	b := a.Reshape(3, 4)
	if b.Dim(0) != 3 || b.Dim(1) != 4 {
		t.Fatal("bad reshape")
	}
	b.Data[0] = 99
	if a.Data[0] != 99 {
		t.Fatal("reshape should alias data")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(4)
	a.Data[0] = 1
	b := a.Clone()
	b.Data[0] = 2
	if a.Data[0] != 1 {
		t.Fatal("clone aliases")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromData([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromData([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 5)
	for i := range a.Data {
		a.Data[i] = rng.Float32()
	}
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Data[i*5+i] = 1
	}
	c := MatMul(a, eye)
	for i := range a.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A @ I != A")
		}
	}
}

// naiveMatMul is the reference implementation for property tests.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

func TestMatMulVariantsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := naiveMatMul(a, b)

		c1 := New(m, n)
		MatMulInto(a, b, c1)

		// MatMulTransB with b stored transposed.
		bt := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Data[j*k+i] = b.Data[i*n+j]
			}
		}
		c2 := New(m, n)
		MatMulTransB(a, bt, c2)

		// MatMulTransA with a stored transposed.
		at := New(k, m)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				at.Data[j*m+i] = a.Data[i*k+j]
			}
		}
		c3 := New(m, n)
		MatMulTransA(at, b, c3)

		for i := range want.Data {
			for _, c := range []*Tensor{c1, c2, c3} {
				if math.Abs(float64(c.Data[i]-want.Data[i])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// naiveConv is a direct convolution used to validate Im2Col+MatMul.
func naiveConv(in, w *Tensor, stride, pad int) *Tensor {
	c, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	oc, kh, kw := w.Shape[0], w.Shape[2], w.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (wd+2*pad-kw)/stride + 1
	out := New(oc, outH, outW)
	for o := 0; o < oc; o++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				var s float32
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy := oy*stride + ky - pad
							ix := ox*stride + kx - pad
							if iy < 0 || iy >= h || ix < 0 || ix >= wd {
								continue
							}
							s += in.Data[ci*h*wd+iy*wd+ix] *
								w.Data[((o*c+ci)*kh+ky)*kw+kx]
						}
					}
				}
				out.Data[(o*outH+oy)*outW+ox] = s
			}
		}
	}
	return out
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(3)
		h := 4 + rng.Intn(6)
		wd := 4 + rng.Intn(6)
		oc := 1 + rng.Intn(4)
		k := 1 + 2*rng.Intn(2) // 1 or 3
		stride := 1 + rng.Intn(2)
		pad := k / 2

		in := randTensor(rng, c, h, wd)
		wt := randTensor(rng, oc, c, k, k)
		want := naiveConv(in, wt, stride, pad)

		outH := (h+2*pad-k)/stride + 1
		outW := (wd+2*pad-k)/stride + 1
		col := New(c*k*k, outH*outW)
		Im2Col(in, k, k, stride, pad, col)
		wmat := wt.Reshape(oc, c*k*k)
		got := MatMul(wmat, col)

		for i := range want.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// The adjoint test: <Im2Col(x), y> == <x, Col2Im(y)> for random x, y.
	rng := rand.New(rand.NewSource(7))
	c, h, w, k, stride, pad := 2, 6, 5, 3, 1, 1
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1

	x := randTensor(rng, c, h, w)
	y := randTensor(rng, c*k*k, outH*outW)

	colX := New(c*k*k, outH*outW)
	Im2Col(x, k, k, stride, pad, colX)
	var lhs float64
	for i := range colX.Data {
		lhs += float64(colX.Data[i]) * float64(y.Data[i])
	}

	xGrad := New(c, h, w)
	Col2Im(y, c, h, w, k, k, stride, pad, xGrad)
	var rhs float64
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(xGrad.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestAXPYAndScale(t *testing.T) {
	x := FromData([]float32{1, 2, 3}, 3)
	y := FromData([]float32{10, 20, 30}, 3)
	AXPY(2, x, y)
	want := []float32{12, 24, 36}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("AXPY = %v", y.Data)
		}
	}
	y.Scale(0.5)
	for i := range want {
		if y.Data[i] != want[i]/2 {
			t.Fatalf("Scale = %v", y.Data)
		}
	}
}

func TestArgmax(t *testing.T) {
	a := FromData([]float32{1, 5, 3, 5}, 4)
	if a.Argmax() != 1 {
		t.Fatalf("Argmax = %d (first max wins)", a.Argmax())
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("equal shapes reported unequal")
	}
	if SameShape(New(2, 3), New(3, 2)) || SameShape(New(2), New(2, 1)) {
		t.Fatal("unequal shapes reported equal")
	}
}
