// Package tensor provides the minimal dense float32 tensor the neural
// network substrate is built on: an NCHW-oriented container plus the hot
// linear-algebra kernels (matrix multiply, im2col) used by convolution
// layers.
package tensor

import "fmt"

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data (not copied) with the given shape.
func FromData(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Reshape returns a view of the same data with a new shape. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// MatMul computes c = a @ b for a (m x k) and b (k x n), writing into a
// newly allocated (m x n) tensor.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	c := New(a.Shape[0], b.Shape[1])
	MatMulInto(a, b, c)
	return c
}

// MatMulInto computes c = a @ b into an existing output tensor. The loop
// order (i, p, j) streams b rows sequentially, which is cache-friendly
// without blocking.
func MatMulInto(a, b, c *Tensor) {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	if b.Shape[0] != k || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	for i := range c.Data {
		c.Data[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes c = a @ b^T for a (m x k) and b (n x k).
func MatMulTransB(a, b, c *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransB shape mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			c.Data[i*n+j] = s
		}
	}
}

// MatMulTransA computes c = a^T @ b for a (k x m) and b (k x n).
func MatMulTransA(a, b, c *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransA shape mismatch")
	}
	for i := range c.Data {
		c.Data[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// Im2Col unfolds an NCHW input (single image: C x H x W) into a matrix of
// shape (C*kh*kw) x (outH*outW) for convolution-as-matmul, writing into
// col, which must be presized. It is the single-image case of Im2ColBatch
// (see gemm.go), which owns the unfold loop.
func Im2Col(in *Tensor, kh, kw, stride, pad int, col *Tensor) (outH, outW int) {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	outH = (h+2*pad-kh)/stride + 1
	outW = (w+2*pad-kw)/stride + 1
	rows := c * kh * kw
	cols := outH * outW
	if col.Shape[0] != rows || col.Shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2Col output shape %v, want %dx%d", col.Shape, rows, cols))
	}
	return Im2ColBatch(in.Data, 1, c, h, w, c*h*w, h*w, kh, kw, stride, pad, col.Data)
}

// Col2Im folds gradients back from im2col layout into an input-shaped
// gradient tensor (accumulating), the adjoint of Im2Col.
func Col2Im(col *Tensor, c, h, w, kh, kw, stride, pad int, out *Tensor) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := outH * outW
	for i := range out.Data {
		out.Data[i] = 0
	}
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ci*kh+ky)*kw + kx) * cols
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					inRow := chanBase + iy*w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						out.Data[inRow+ix] += col.Data[row+oy*outW+ox]
					}
				}
			}
		}
	}
}

// AXPY computes y += alpha * x elementwise.
func AXPY(alpha float32, x, y *Tensor) {
	if len(x.Data) != len(y.Data) {
		panic("tensor: AXPY length mismatch")
	}
	for i, v := range x.Data {
		y.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Argmax returns the index of the maximum element.
func (t *Tensor) Argmax() int {
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}
