//go:build amd64 && !noasm

#include "textflag.h"

// func gemmF32Tile4x16(a, b, c *float32, kc, cStride, first int)
//
// AVX2 f32 GEMM microkernel: a 4-row x 16-column tile of c, k-depth kc.
// a points into an MR-interleaved row panel (the 4 rows' k-th elements are
// adjacent: 16 contiguous bytes per k step); b points into a packed column
// panel (16 contiguous floats per k step); c is the output tile origin with
// row stride cStride elements.
//
// Bit-identity contract: each k step issues one VBROADCASTSS per row and a
// separate VMULPS + VADDPS per accumulator — never FMA, which would skip
// the intermediate rounding the portable kernel performs — and steps walk p
// in ascending order, extending each output element's k-sum exactly like
// the scalar code. Vector lanes are distinct output columns, so vectorizing
// never reorders a single element's sum. The a operand is kept as the
// first multiplicand (src1) to mirror the portable a*b, preserving NaN
// payload selection.
//
// first != 0 seeds the accumulators with the p == 0 products (the portable
// kernel's assign-instead-of-accumulate first step); otherwise the existing
// c tile is loaded so a later k block extends the sums in place.
TEXT ·gemmF32Tile4x16(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ c+16(FP), DI
	MOVQ kc+24(FP), CX
	MOVQ cStride+32(FP), DX
	MOVQ first+40(FP), R8

	// c row pointers (stride in bytes = 4*cStride).
	SHLQ $2, DX
	LEAQ (DI)(DX*1), R9
	LEAQ (DI)(DX*2), R10
	LEAQ (R9)(DX*2), R11

	CMPQ R8, $0
	JNE  seed

	// Accumulate mode: start from the existing c tile.
	VMOVUPS (DI), Y8
	VMOVUPS 32(DI), Y9
	VMOVUPS (R9), Y10
	VMOVUPS 32(R9), Y11
	VMOVUPS (R10), Y12
	VMOVUPS 32(R10), Y13
	VMOVUPS (R11), Y14
	VMOVUPS 32(R11), Y15
	JMP  kloop

seed:
	// First k block: accumulators = a[.,0] * b[0,.], no zero-init pass.
	VMOVUPS (BX), Y0
	VMOVUPS 32(BX), Y1
	ADDQ    $64, BX

	VBROADCASTSS (SI), Y2
	VMULPS       Y0, Y2, Y8
	VMULPS       Y1, Y2, Y9
	VBROADCASTSS 4(SI), Y2
	VMULPS       Y0, Y2, Y10
	VMULPS       Y1, Y2, Y11
	VBROADCASTSS 8(SI), Y2
	VMULPS       Y0, Y2, Y12
	VMULPS       Y1, Y2, Y13
	VBROADCASTSS 12(SI), Y2
	VMULPS       Y0, Y2, Y14
	VMULPS       Y1, Y2, Y15

	ADDQ $16, SI
	DECQ CX
	JZ   store

kloop:
	VMOVUPS (BX), Y0
	VMOVUPS 32(BX), Y1
	ADDQ    $64, BX

	// Row 0: broadcast a[0][p], multiply both column halves, add.
	VBROADCASTSS (SI), Y2
	VMULPS       Y0, Y2, Y3
	VADDPS       Y3, Y8, Y8
	VMULPS       Y1, Y2, Y3
	VADDPS       Y3, Y9, Y9

	// Row 1.
	VBROADCASTSS 4(SI), Y2
	VMULPS       Y0, Y2, Y3
	VADDPS       Y3, Y10, Y10
	VMULPS       Y1, Y2, Y3
	VADDPS       Y3, Y11, Y11

	// Row 2.
	VBROADCASTSS 8(SI), Y2
	VMULPS       Y0, Y2, Y3
	VADDPS       Y3, Y12, Y12
	VMULPS       Y1, Y2, Y3
	VADDPS       Y3, Y13, Y13

	// Row 3.
	VBROADCASTSS 12(SI), Y2
	VMULPS       Y0, Y2, Y3
	VADDPS       Y3, Y14, Y14
	VMULPS       Y1, Y2, Y3
	VADDPS       Y3, Y15, Y15

	ADDQ $16, SI
	DECQ CX
	JNZ  kloop

store:
	VMOVUPS Y8, (DI)
	VMOVUPS Y9, 32(DI)
	VMOVUPS Y10, (R9)
	VMOVUPS Y11, 32(R9)
	VMOVUPS Y12, (R10)
	VMOVUPS Y13, 32(R10)
	VMOVUPS Y14, (R11)
	VMOVUPS Y15, 32(R11)

	VZEROUPPER
	RET

// func epilogueF32Row(c, add *float32, bias float32, octets, flags int)
//
// Vectorized fused epilogue over octets*8 contiguous elements of one c
// row: c[j] = relu?(c[j] + bias + add[j]). flags bit 0 enables ReLU, bit 1
// enables the add operand (which must then cover octets*8 elements). The
// bias is always added — mirroring the portable applyEpilogue, which adds
// its (possibly zero) bias variable whenever any epilogue field is set.
//
// ReLU is a compare-and-mask (v < 0 ? 0 : v), not VMAXPS: max would turn
// -0.0 into +0.0 and pick the non-NaN operand, while the portable scalar
// branch keeps both -0.0 and NaN untouched.
TEXT ·epilogueF32Row(SB), NOSPLIT, $0-40
	MOVQ         c+0(FP), DI
	MOVQ         add+8(FP), SI
	VBROADCASTSS bias+16(FP), Y1
	MOVQ         octets+24(FP), CX
	MOVQ         flags+32(FP), DX
	VXORPS       Y4, Y4, Y4       // zeros for the ReLU compare

octloop:
	VMOVUPS (DI), Y0
	VADDPS  Y1, Y0, Y0    // v = c[j] + bias (c is src1, as in the scalar code)

	TESTQ $2, DX
	JZ    noadd
	VMOVUPS (SI), Y2
	VADDPS  Y2, Y0, Y0    // v += add[j]
	ADDQ    $32, SI

noadd:
	TESTQ $1, DX
	JZ    norelu
	VCMPPS  $1, Y4, Y0, Y3 // mask = v < 0 (LT_OS: false for NaN)
	VANDNPS Y0, Y3, Y0     // v = ~mask & v: negatives -> 0, -0.0/NaN kept

norelu:
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	DECQ    CX
	JNZ     octloop

	VZEROUPPER
	RET
