package tensor

import (
	"runtime"
	"sync"
)

// Quantized int8 GEMM with a fused saturating requantize epilogue. This is
// the execution kernel of the quantized inference tier: conv layers lowered
// to int8 im2col run one a @ b product per layer with int8 x int8 -> int32
// accumulation, then each finished column tile is dequantized, biased,
// residual-added, ReLU'd, and requantized back to int8 while still cache-hot.
//
// The a operand (quantized weights) is stored widened to int16 so the AVX2
// microkernel can broadcast adjacent weight pairs as one dword and dual-MAC
// them against sign-extended b lanes with VPMADDWD; values stay in int8
// range. Accumulation is exact integer arithmetic, so results are identical
// regardless of blocking, worker count, or whether the assembly kernel is
// active — the drift suite compares the two kernels bit-for-bit.

const (
	// int8MR is the register-tile height of the assembly microkernel.
	int8MR = 4
	// int8NR is the register-tile width of the assembly microkernel: 16
	// int32 accumulators per row live in two ymm registers.
	int8NR = 16
	// int8NC is the column-tile width: the k x int8NC panel of b stays
	// cache-resident while every row quad streams through it, and the
	// finished int8MR x int8NC accumulator region is requantized hot.
	int8NC = 256
	// int8SerialMACs mirrors gemmSerialMACs: below this many multiply-adds
	// spawning goroutines costs more than it saves.
	int8SerialMACs = 1 << 16
)

// EpilogueInt8 describes the fused requantization tail applied to every
// int32 accumulator element: v = float32(acc)*RowScale[i] + RowBias[i] +
// float32(Add[i,j])*AddScale, then ReLU when requested, then dst[i,j] =
// clamp(round(v/OutScale), -127, 127). Nil fields are skipped.
type EpilogueInt8 struct {
	// RowScale dequantizes row i's accumulator back to real units:
	// inputScale * weightScale[i] for a per-output-channel quantized conv.
	// Required, len m.
	RowScale []float32
	// RowBias is a per-row f32 constant added after dequantization (len m).
	RowBias []float32
	// Add is an elementwise int8 addend with dst's layout (len m*n), e.g. a
	// residual shortcut register; AddScale dequantizes it.
	Add      []int8
	AddScale float32
	// ReLU clamps negatives to zero before requantization.
	ReLU bool
	// OutScale requantizes the epilogue result into dst. Must be > 0.
	OutScale float32
}

// GEMMInt8 computes dst = requantize(a @ b) for a (m x k) int8-range
// weights widened to int16, b (k x n) int8, accumulating exactly in the
// caller-provided int32 scratch acc (len >= m*n, fully overwritten) and
// writing the requantized result into dst (len >= m*n). Large problems are
// split across goroutines exactly like GEMMRaw: row panels when m is tall
// enough, column panels for the batched-im2col shape (few output channels,
// very many columns).
func GEMMInt8(m, k, n int, a []int16, b []int8, acc []int32, dst []int8, ep EpilogueInt8) {
	if len(a) < m*k || len(b) < k*n || len(acc) < m*n || len(dst) < m*n {
		panic("tensor: GEMMInt8 operand length mismatch")
	}
	if len(ep.RowScale) != m {
		panic("tensor: GEMMInt8 RowScale length mismatch")
	}
	if ep.RowBias != nil && len(ep.RowBias) != m {
		panic("tensor: GEMMInt8 RowBias length mismatch")
	}
	if ep.Add != nil && len(ep.Add) != m*n {
		panic("tensor: GEMMInt8 Add length mismatch")
	}
	if !(ep.OutScale > 0) {
		panic("tensor: GEMMInt8 OutScale must be positive")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || m*k*n < int8SerialMACs {
		gemmInt8Range(m, k, n, a, b, acc, dst, 0, m, 0, n, ep)
		return
	}
	var wg sync.WaitGroup
	if rows := (m + workers - 1) / workers; rows >= int8MR {
		rows = (rows + int8MR - 1) / int8MR * int8MR
		for i0 := 0; i0 < m; i0 += rows {
			i1 := i0 + rows
			if i1 > m {
				i1 = m
			}
			wg.Add(1)
			go func(i0, i1 int) {
				defer wg.Done()
				gemmInt8Range(m, k, n, a, b, acc, dst, i0, i1, 0, n, ep)
			}(i0, i1)
		}
	} else {
		cols := (n + workers - 1) / workers
		if cols < 64 {
			cols = 64
		}
		for j0 := 0; j0 < n; j0 += cols {
			j1 := j0 + cols
			if j1 > n {
				j1 = n
			}
			wg.Add(1)
			go func(j0, j1 int) {
				defer wg.Done()
				gemmInt8Range(m, k, n, a, b, acc, dst, 0, m, j0, j1, ep)
			}(j0, j1)
		}
	}
	wg.Wait()
}

// gemmInt8Range accumulates rows [i0,i1) x columns [j0,j1) of a @ b into
// acc and requantizes that region into dst, one column tile at a time. It
// is the serial core; parallel callers give each worker a disjoint region.
//
//smol:noalloc
func gemmInt8Range(m, k, n int, a []int16, b []int8, acc []int32, dst []int8, i0, i1, j0, j1 int, ep EpilogueInt8) {
	for jc := j0; jc < j1; jc += int8NC {
		nc := j1 - jc
		if nc > int8NC {
			nc = int8NC
		}
		i := i0
		if gemmInt8AsmActive && k >= 2 {
			pairs := k / 2
			for ; i+int8MR <= i1; i += int8MR {
				jb := jc
				for ; jb+int8NR <= jc+nc; jb += int8NR {
					gemmInt8Tile4x16(&a[i*k], &b[jb], &acc[i*n+jb], pairs, k, n)
				}
				if k%2 != 0 {
					gemmInt8OddK(k, n, a, b, acc, i, i+int8MR, jc, jb)
				}
				if jb < jc+nc {
					gemmInt8Block(k, n, a, b, acc, i, i+int8MR, jb, jc+nc)
				}
			}
		}
		if i < i1 {
			gemmInt8Block(k, n, a, b, acc, i, i1, jc, jc+nc)
		}
		requantizeInt8(n, acc, dst, i0, i1, jc, nc, ep)
	}
}

// gemmInt8Block is the portable accumulation kernel: it computes rows
// [iA,iB) x columns [jA,jB) of acc = a @ b from scratch. It carries the
// full workload on non-AVX2 hosts and the row/column remainders next to
// the assembly tiles elsewhere.
//
//smol:noalloc
func gemmInt8Block(k, n int, a []int16, b []int8, acc []int32, iA, iB, jA, jB int) {
	for i := iA; i < iB; i++ {
		arow := a[i*k : i*k+k]
		crow := acc[i*n+jA : i*n+jA+(jB-jA) : i*n+jA+(jB-jA)]
		for j := range crow {
			crow[j] = 0
		}
		p := 0
		for ; p+1 < k; p += 2 {
			av0, av1 := int32(arow[p]), int32(arow[p+1])
			if av0 == 0 && av1 == 0 {
				continue
			}
			b0 := b[p*n+jA : p*n+jA+(jB-jA) : p*n+jA+(jB-jA)]
			b1 := b[(p+1)*n+jA:][:len(b0)]
			r := crow[:len(b0)]
			for j := range b0 {
				r[j] += av0*int32(b0[j]) + av1*int32(b1[j])
			}
		}
		for ; p < k; p++ {
			av := int32(arow[p])
			if av == 0 {
				continue
			}
			brow := b[p*n+jA : p*n+jA+(jB-jA)]
			r := crow[:len(brow)]
			for j := range brow {
				r[j] += av * int32(brow[j])
			}
		}
	}
}

// gemmInt8OddK adds the final k-1 term the pair-stepping assembly kernel
// leaves off when k is odd, for rows [iA,iB) x columns [jA,jB).
//
//smol:noalloc
func gemmInt8OddK(k, n int, a []int16, b []int8, acc []int32, iA, iB, jA, jB int) {
	p := k - 1
	brow := b[p*n+jA : p*n+jA+(jB-jA)]
	for i := iA; i < iB; i++ {
		av := int32(a[i*k+p])
		if av == 0 {
			continue
		}
		crow := acc[i*n+jA : i*n+jA+(jB-jA)]
		for j := range brow {
			crow[j] += av * int32(brow[j])
		}
	}
}

// requantizeInt8 lowers the finished int32 accumulator region rows [i0,i1)
// x columns [jc,jc+nc) into dst: dequantize, bias, residual add, ReLU,
// round-to-nearest (half away from zero), saturate to +-127.
//
//smol:noalloc
func requantizeInt8(n int, acc []int32, dst []int8, i0, i1, jc, nc int, ep EpilogueInt8) {
	inv := 1 / ep.OutScale
	for i := i0; i < i1; i++ {
		row := acc[i*n+jc : i*n+jc+nc : i*n+jc+nc]
		out := dst[i*n+jc:][:len(row)]
		scale := ep.RowScale[i]
		var bias float32
		if ep.RowBias != nil {
			bias = ep.RowBias[i]
		}
		switch {
		case ep.Add != nil && ep.ReLU:
			add := ep.Add[i*n+jc:][:len(row)]
			for j := range row {
				v := float32(row[j])*scale + bias + float32(add[j])*ep.AddScale
				if v < 0 {
					v = 0
				}
				out[j] = roundClampInt8(v * inv)
			}
		case ep.Add != nil:
			add := ep.Add[i*n+jc:][:len(row)]
			for j := range row {
				v := float32(row[j])*scale + bias + float32(add[j])*ep.AddScale
				out[j] = roundClampInt8(v * inv)
			}
		case ep.ReLU:
			for j := range row {
				v := float32(row[j])*scale + bias
				if v < 0 {
					v = 0
				}
				out[j] = roundClampInt8(v * inv)
			}
		default:
			for j := range row {
				out[j] = roundClampInt8((float32(row[j])*scale + bias) * inv)
			}
		}
	}
}

// roundClampInt8 rounds to the nearest integer (half away from zero) and
// saturates to the symmetric int8 range [-127, 127].
//
//smol:noalloc
func roundClampInt8(v float32) int8 {
	if v >= 0 {
		v += 0.5
		if v >= 127 {
			return 127
		}
		return int8(v)
	}
	v -= 0.5
	if v <= -127 {
		return -127
	}
	return int8(v)
}

// QuantizeInt8 quantizes src into dst: dst[i] = clamp(round(src[i] *
// invScale), -127, 127). invScale is the reciprocal of the tensor's
// quantization scale.
//
//smol:noalloc
func QuantizeInt8(src []float32, dst []int8, invScale float32) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = roundClampInt8(v * invScale)
	}
}

// Im2ColBatchInt8 is Im2ColBatch over int8 activations: it unfolds a batch
// of n quantized images into one (C*kh*kw) x (n*outH*outW) column matrix so
// a conv layer lowers to a single GEMMInt8. Layout and stride semantics are
// identical to Im2ColBatch (zero padding quantizes to zero exactly under
// symmetric scales, so padding commutes with quantization).
//
//smol:noalloc
func Im2ColBatchInt8(src []int8, n, c, h, w, sampleStride, chanStride, kh, kw, stride, pad int, col []int8) (outH, outW int) {
	outH = (h+2*pad-kh)/stride + 1
	outW = (w+2*pad-kw)/stride + 1
	ohow := outH * outW
	total := n * ohow
	rows := c * kh * kw
	if len(col) < rows*total {
		panic("tensor: Im2ColBatchInt8 output buffer too small")
	}
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			plane := src[i*sampleStride+ci*chanStride : i*sampleStride+ci*chanStride+h*w]
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row := ((ci*kh+ky)*kw+kx)*total + i*ohow
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride + ky - pad
						dst := col[row+oy*outW : row+oy*outW+outW]
						if iy < 0 || iy >= h {
							for ox := range dst {
								dst[ox] = 0
							}
							continue
						}
						inRow := plane[iy*w : iy*w+w]
						if stride == 1 {
							ox0 := pad - kx
							if ox0 < 0 {
								ox0 = 0
							} else if ox0 > outW {
								ox0 = outW
							}
							ox1 := w + pad - kx
							if ox1 > outW {
								ox1 = outW
							} else if ox1 < ox0 {
								ox1 = ox0
							}
							for ox := 0; ox < ox0; ox++ {
								dst[ox] = 0
							}
							if ox1 > ox0 {
								copy(dst[ox0:ox1], inRow[ox0+kx-pad:])
							}
							for ox := ox1; ox < outW; ox++ {
								dst[ox] = 0
							}
							continue
						}
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								dst[ox] = 0
							} else {
								dst[ox] = inRow[ix]
							}
						}
					}
				}
			}
		}
	}
	return outH, outW
}
