//go:build !amd64 || noasm

package tensor

// gemmInt8AsmActive is always false without the AVX2 microkernel; the
// portable gemmInt8Block carries the whole workload. A variable (not a
// constant) so the cross-kernel equivalence test compiles everywhere.
var gemmInt8AsmActive = false

// gemmInt8Tile4x16 is never reached when gemmInt8AsmActive is false.
func gemmInt8Tile4x16(a *int16, b *int8, acc *int32, pairs, aStride, n int) {
	panic("tensor: gemmInt8Tile4x16 called without assembly support")
}
