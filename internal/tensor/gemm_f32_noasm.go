//go:build !amd64 || noasm

package tensor

// f32SIMDSupported is always false without the AVX2 microkernel; PackA
// skips panel packing and every GEMM runs the portable kernels.
func f32SIMDSupported() bool { return false }

// gemmF32Tile4x16 is never reached when f32SIMDSupported is false.
func gemmF32Tile4x16(a, b, c *float32, kc, cStride, first int) {
	panic("tensor: gemmF32Tile4x16 called without assembly support")
}

// epilogueF32Row is never reached when f32SIMDSupported is false.
func epilogueF32Row(c, add *float32, bias float32, octets, flags int) {
	panic("tensor: epilogueF32Row called without assembly support")
}
