//go:build amd64 && !noasm

package cpu

func init() { hasAVX2 = detectAVX2() }

// cpuid executes CPUID for the given leaf and subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the set of processor states the OS has enabled.
func xgetbv0() uint64

// detectAVX2 reports whether both the CPU and the OS support AVX2:
// leaf-1 OSXSAVE+AVX, XCR0 XMM+YMM state enabled, leaf-7 AVX2.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	const xmmYmm = 0x6
	if xgetbv0()&xmmYmm != xmmYmm {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}
