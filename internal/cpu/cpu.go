// Package cpu is the single CPU-feature detection point for the SIMD
// kernels in internal/tensor. Detection runs once at init on amd64 (CPUID
// leaf 7 for AVX2, gated on OSXSAVE + XGETBV so the OS actually preserves
// the YMM state across context switches); every other architecture — and
// any build with the noasm tag — reports no vector support and the
// portable kernels carry the whole workload.
//
// One override knob: setting the SMOL_NOSIMD environment variable (to any
// non-empty value) disables every vector kernel at process start, turning
// the whole binary into its own portable-equivalence oracle without a
// rebuild. Finer-grained toggles (per-tier, per-runtime) live with their
// kernels — see tensor.SetF32SIMD and RuntimeConfig.DisableSIMD.
package cpu

import "os"

// hasAVX2 is set by the amd64 detection init; it stays false on other
// architectures and under the noasm build tag.
var hasAVX2 bool

// simdDisabled is the process-wide kill switch, read once from
// SMOL_NOSIMD at init.
var simdDisabled = os.Getenv("SMOL_NOSIMD") != ""

// AVX2 reports whether AVX2 kernels may be dispatched: the CPU and OS
// support them and SMOL_NOSIMD did not veto them.
func AVX2() bool { return hasAVX2 && !simdDisabled }

// AVX2Supported reports raw CPU+OS support, ignoring the SMOL_NOSIMD
// override. Kernels that keep their own runtime toggle (so an oracle can
// flip back and forth) key their capability on this.
func AVX2Supported() bool { return hasAVX2 }
