package cpu

import (
	"os"
	"runtime"
	"testing"
)

// TestAVX2ConsistentWithSupport: the dispatchable view can only ever be a
// restriction of raw hardware support, and support only exists on amd64
// builds that include the assembly.
func TestAVX2ConsistentWithSupport(t *testing.T) {
	if AVX2() && !AVX2Supported() {
		t.Fatal("AVX2() true but AVX2Supported() false")
	}
	if AVX2Supported() && runtime.GOARCH != "amd64" {
		t.Fatalf("AVX2Supported() true on GOARCH=%s", runtime.GOARCH)
	}
}

// TestNoSIMDOverride: when SMOL_NOSIMD was set at process start, nothing
// may dispatch to vector kernels regardless of hardware support.
func TestNoSIMDOverride(t *testing.T) {
	if os.Getenv("SMOL_NOSIMD") == "" {
		t.Skip("SMOL_NOSIMD not set for this process")
	}
	if AVX2() {
		t.Fatal("AVX2() true despite SMOL_NOSIMD override")
	}
}
