package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The pairing engine: a flow-insensitive-but-path-aware balance check for
// acquire/release resource pairs. It walks a function body once, in
// source order, tracking for every acquired resource the branch
// conditions it was acquired under. A release (or a deferred release, or
// an explicit ownership escape) covers an exit path when its recorded
// conditions do not contradict the exit's; any exit — return, panic,
// continue, break, loop end — still holding an uncovered resource is a
// finding.
//
// The engine is deliberately conservative in what it tracks (the known
// resource vocabulary plus //smol:acquire- and //smol:release-annotated
// wrappers) and in what it concludes: bare releases with no visible
// acquire are ignored, and correlation across loop iterations is not
// attempted.

// cond is one branch condition on the current path: the normalized
// condition text and the branch taken.
type cond struct {
	text string
	val  bool
}

// normCond normalizes a branch condition: parens and leading negations
// are stripped into the boolean, and `x == nil` is canonicalized to the
// negation of `x != nil` so if/else and inverted guards correlate. It
// returns the core expression the text was rendered from, so the caller
// can fingerprint the identifiers in it.
func normCond(e ast.Expr) (cond, ast.Expr) {
	val := true
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op == token.NOT {
				val = !val
				e = x.X
				continue
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL && isNilIdent(x.Y) {
				return cond{text: types.ExprString(x.X) + " != nil", val: !val}, x.X
			}
			if x.Op == token.NEQ && isNilIdent(x.Y) {
				return cond{text: types.ExprString(x.X) + " != nil", val: val}, x.X
			}
		}
		return cond{text: types.ExprString(e), val: val}, e
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// condOf normalizes a condition and appends the object positions of its
// identifiers to the text, so two conditions correlate only when they
// name the same variables — `if err := a(); err != nil` and a later
// `if err := b(); err != nil` must not cancel each other out.
func (w *pairWalker) condOf(e ast.Expr) cond {
	c, core := normCond(e)
	var fp strings.Builder
	fp.WriteString(c.text)
	ast.Inspect(core, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pkg.Info.Uses[id]; obj != nil {
				fmt.Fprintf(&fp, "|%d", obj.Pos())
			}
		}
		return true
	})
	c.text = fp.String()
	return c
}

// negate flips a condition.
func (c cond) negate() cond { return cond{text: c.text, val: !c.val} }

// envWith extends a path environment without aliasing the parent's
// backing array.
func envWith(env []cond, c cond) []cond {
	out := make([]cond, len(env)+1)
	copy(out, env)
	out[len(env)] = c
	return out
}

// compatible reports whether two environments can describe the same
// dynamic path: no condition appears in both with opposite branches.
func compatible(a, b []cond) bool {
	for _, ca := range a {
		for _, cb := range b {
			if ca.text == cb.text && ca.val != cb.val {
				return false
			}
		}
	}
	return true
}

// heldRes is one tracked resource acquisition.
type heldRes struct {
	class  string
	key    string
	varObj types.Object // variable bound to the acquired value, if any
	env    []cond       // path conditions at the acquire
	pos    token.Pos
	node   ast.Node

	relEnvs  [][]cond // environments a release was seen under
	escEnvs  [][]cond // environments an ownership escape was seen under
	reported bool
}

// coveredAt reports whether a release or escape covers paths described
// by env.
func (h *heldRes) coveredAt(env []cond) bool {
	for _, rel := range h.relEnvs {
		if compatible(rel, env) {
			return true
		}
	}
	for _, esc := range h.escEnvs {
		if compatible(esc, env) {
			return true
		}
	}
	return false
}

// deferRel is a deferred release: it covers one held resource of its
// class/key on every exit whose path is compatible with the defer's.
type deferRel struct {
	class string
	key   string
	env   []cond
	pos   token.Pos
}

// span is a source range (used for loop bodies).
type span struct{ pos, end token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.pos && p <= s.end }

// pairWalker runs the balance check over one function body.
type pairWalker struct {
	r        *Runner
	pkg      *Package
	analyzer string
	track    func(class string) bool
	owns     bool
	fname    string

	held     []*heldRes
	deferred []deferRel
	loops    []span
	findings *[]Finding
}

// runPairing runs the engine over every function of a package for one
// class filter.
func (r *Runner) runPairing(pkg *Package, analyzer string, track func(string) bool) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, u := range funcsIn(file) {
			// A literal inherits its enclosing declaration's //smol:owns:
			// the annotation describes the whole function's contract.
			owns := false
			if u.decl != nil {
				if fn, ok := pkg.Info.Defs[u.decl.Name].(*types.Func); ok {
					owns = r.anns[fn].owns
				}
			}
			w := &pairWalker{
				r: r, pkg: pkg, analyzer: analyzer, track: track,
				owns: owns, fname: u.name(), findings: &findings,
			}
			term := w.walkStmts(u.body.List, nil)
			if !term {
				// Falling off the end of the body is an implicit return.
				w.checkExit(nil, u.body.Rbrace, "function end")
			}
		}
	}
	return findings
}

// pairing checks TensorPool Get/Put, PinnedArena Acquire/Release,
// sync.Pool Get/Put, semaphore-channel send/receive, and annotated
// wrapper pairs.
func (r *Runner) pairing(pkg *Package) []Finding {
	return r.runPairing(pkg, "pairing", func(class string) bool {
		switch class {
		case "TensorPool", "PinnedArena", "sync.Pool", "sem":
			return true
		}
		return strings.HasPrefix(class, "wrap:")
	})
}

// lockbalance checks sync.Mutex / sync.RWMutex lock/unlock pairing with
// the same path rules.
func (r *Runner) lockbalance(pkg *Package) []Finding {
	return r.runPairing(pkg, "lockbalance", func(class string) bool {
		return class == "mutex" || class == "rlock"
	})
}

// resolveCallOp classifies a call as a tracked acquire or release.
func (w *pairWalker) resolveCallOp(call *ast.CallExpr) (class, key string, acquire, ok bool) {
	if ann, found := w.r.annFor(w.pkg, call); found {
		if ann.acquire != "" {
			cl := "wrap:" + ann.acquire
			if w.track(cl) {
				return cl, cl, true, true
			}
		}
		if ann.release != "" {
			cl := "wrap:" + ann.release
			if w.track(cl) {
				return cl, cl, false, true
			}
		}
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	fn, isFn := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false, false
	}
	recvPath := namedTypePath(sig.Recv().Type())
	method := fn.Name()
	switch recvPath {
	case "smol/internal/engine.TensorPool":
		class = "TensorPool"
		acquire = method == "Get"
		ok = method == "Get" || method == "Put"
	case "smol/internal/engine.PinnedArena":
		class = "PinnedArena"
		acquire = method == "Acquire"
		ok = method == "Acquire" || method == "Release"
	case "sync.Pool":
		class = "sync.Pool"
		acquire = method == "Get"
		ok = method == "Get" || method == "Put"
	case "sync.Mutex":
		class = "mutex"
		acquire = method == "Lock"
		ok = method == "Lock" || method == "Unlock"
	case "sync.RWMutex":
		switch method {
		case "Lock", "Unlock":
			class = "mutex"
			acquire = method == "Lock"
			ok = true
		case "RLock", "RUnlock":
			class = "rlock"
			acquire = method == "RLock"
			ok = true
		}
	}
	if !ok || !w.track(class) {
		return "", "", false, false
	}
	return class, class + "(" + types.ExprString(sel.X) + ")", acquire, true
}

// semChan reports whether an expression is a semaphore channel by the
// project convention: a channel-typed variable or field whose name ends
// in "Sem". A send acquires a token; a receive releases it.
func (w *pairWalker) semChan(e ast.Expr) (key string, ok bool) {
	if !w.track("sem") {
		return "", false
	}
	var name string
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return "", false
	}
	if !strings.HasSuffix(name, "Sem") {
		return "", false
	}
	if tv, found := w.pkg.Info.Types[e]; !found || tv.Type == nil {
		return "", false
	} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return "", false
	}
	return "sem(" + types.ExprString(e) + ")", true
}

// acquire records a new held resource.
func (w *pairWalker) acquire(class, key string, varObj types.Object, env []cond, node ast.Node) {
	w.held = append(w.held, &heldRes{
		class: class, key: key, varObj: varObj,
		env: append([]cond(nil), env...), pos: node.Pos(), node: node,
	})
}

// release covers the newest held resource of class/key still uncovered
// on the current path. Releases with no matching acquire are ignored —
// releasing a parameter or a field is the callee half of a transfer.
func (w *pairWalker) release(class, key string, env []cond) {
	for i := len(w.held) - 1; i >= 0; i-- {
		h := w.held[i]
		if h.class == class && h.key == key && compatible(h.env, env) && !h.coveredAt(env) {
			h.relEnvs = append(h.relEnvs, append([]cond(nil), env...))
			return
		}
	}
}

// escape covers a resource whose ownership leaves the function (returned,
// stored into a struct field, slice slot, map, or channel). Without a
// //smol:owns annotation the transfer itself is a finding: the invariant
// moved somewhere the checker cannot see, and the code must say so.
func (w *pairWalker) escape(h *heldRes, env []cond, node ast.Node) {
	h.escEnvs = append(h.escEnvs, append([]cond(nil), env...))
	if !w.owns && !h.reported {
		h.reported = true
		*w.findings = append(*w.findings, w.r.finding(w.analyzer, node,
			"%s acquired at line %d escapes %s here; annotate it //smol:owns if ownership transfer is intended",
			h.what(), w.r.fset.Position(h.pos).Line, w.fname))
	}
}

func (h *heldRes) what() string {
	if strings.HasPrefix(h.class, "wrap:") {
		return "resource " + strings.TrimPrefix(h.class, "wrap:")
	}
	return h.key
}

// checkExit reports every resource still uncovered on an exit path.
func (w *pairWalker) checkExit(env []cond, at token.Pos, why string) {
	avail := append([]deferRel(nil), w.deferred...)
	for _, h := range w.held {
		if h.reported || !compatible(h.env, env) || h.coveredAt(env) {
			continue
		}
		if consumeDefer(&avail, h.class, h.key, env) {
			continue
		}
		h.reported = true
		*w.findings = append(*w.findings, Finding{
			File:     w.r.fset.Position(h.pos).Filename,
			Line:     w.r.fset.Position(h.pos).Line,
			Col:      w.r.fset.Position(h.pos).Column,
			Analyzer: w.analyzer,
			Message: fmt.Sprintf("%s is not released on the %s at line %d (release it on every path, defer the release, or annotate %s //smol:owns)",
				h.what(), why, w.r.fset.Position(at).Line, w.fname),
		})
	}
}

// checkLoopEnd reports resources acquired inside a loop body that are
// uncovered when the iteration ends: they would leak once per iteration.
func (w *pairWalker) checkLoopEnd(env []cond, body span, at token.Pos, why string) {
	avail := append([]deferRel(nil), w.deferred...)
	for _, h := range w.held {
		if h.reported || !body.contains(h.pos) || !compatible(h.env, env) || h.coveredAt(env) {
			continue
		}
		// A defer registered inside the loop still only runs at function
		// exit, but it does bound the leak; accept it.
		if consumeDefer(&avail, h.class, h.key, env) {
			continue
		}
		h.reported = true
		*w.findings = append(*w.findings, Finding{
			File:     w.r.fset.Position(h.pos).Filename,
			Line:     w.r.fset.Position(h.pos).Line,
			Col:      w.r.fset.Position(h.pos).Column,
			Analyzer: w.analyzer,
			Message: fmt.Sprintf("%s is not released before the %s at line %d: it leaks once per iteration",
				h.what(), why, w.r.fset.Position(at).Line),
		})
	}
}

func consumeDefer(avail *[]deferRel, class, key string, env []cond) bool {
	for i, d := range *avail {
		if d.class == class && d.key == key && compatible(d.env, env) {
			*avail = append((*avail)[:i], (*avail)[i+1:]...)
			return true
		}
	}
	return false
}

// heldByObj finds the active held resource bound to a variable object.
func (w *pairWalker) heldByObj(obj types.Object) *heldRes {
	if obj == nil {
		return nil
	}
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].varObj == obj {
			return w.held[i]
		}
	}
	return nil
}

// objOf resolves an identifier to its object (definition or use).
func (w *pairWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.pkg.Info.Uses[id]
}

// scanExprOps performs the resource ops contained in an expression, in
// traversal order: acquires, releases, semaphore receives, and composite
// literal / closure captures of held variables (ownership escapes).
// bindCall, when non-nil, names the call whose acquire binds to bindObj.
func (w *pairWalker) scanExprOps(e ast.Expr, env []cond, bindCall *ast.CallExpr, bindObj types.Object) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Analyzed as its own unit; here it only matters as a capture
			// site for held variables (the closure may release or retain
			// them on its own schedule — an escape either way).
			w.escapeCaptured(x.Body, env)
			return false
		case *ast.CallExpr:
			if class, key, acq, ok := w.resolveCallOp(x); ok {
				if acq {
					var obj types.Object
					if x == bindCall {
						obj = bindObj
					}
					w.acquire(class, key, obj, env, x)
				} else {
					w.release(class, key, env)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if key, ok := w.semChan(x.X); ok {
					w.release("sem", key, env)
				}
			}
		case *ast.CompositeLit:
			// A held variable stored into a composite value escapes: the
			// literal owns it now.
			for _, elt := range x.Elts {
				v := elt
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					v = kv.Value
				}
				if id, isID := ast.Unparen(v).(*ast.Ident); isID {
					if h := w.heldByObj(w.objOf(id)); h != nil {
						w.escape(h, env, x)
					}
				}
			}
		}
		return true
	})
}

// escapeCaptured escapes every held variable referenced inside a nested
// function body.
func (w *pairWalker) escapeCaptured(body *ast.BlockStmt, env []cond) {
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if h := w.heldByObj(w.pkg.Info.Uses[id]); h != nil {
				w.escape(h, env, id)
			}
		}
		return true
	})
}

// walkStmts walks a statement list sequentially, refining the path
// environment as terminating branches rule conditions out. It reports
// whether the list always terminates (returns, panics, or branches away).
func (w *pairWalker) walkStmts(list []ast.Stmt, env []cond) bool {
	for _, s := range list {
		var term bool
		env, term = w.walkStmt(s, env)
		if term {
			return true
		}
	}
	return false
}

func (w *pairWalker) walkStmt(s ast.Stmt, env []cond) ([]cond, bool) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return env, w.walkStmts(x.List, env)

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok && w.isTerminalCall(call) {
			w.scanExprOps(x.X, env, nil, nil)
			w.checkExit(env, x.Pos(), "panic")
			return env, true
		}
		w.scanExprOps(x.X, env, nil, nil)
		return env, false

	case *ast.AssignStmt:
		w.handleAssign(x, env)
		return env, false

	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, isVS := spec.(*ast.ValueSpec)
				if !isVS {
					continue
				}
				var bindCall *ast.CallExpr
				var bindObj types.Object
				if len(vs.Names) >= 1 && len(vs.Values) == 1 {
					if call, isCall := unwrapCall(vs.Values[0]); isCall {
						bindCall = call
						bindObj = w.objOf(vs.Names[0])
					}
				}
				for _, v := range vs.Values {
					w.scanExprOps(v, env, bindCall, bindObj)
				}
			}
		}
		return env, false

	case *ast.SendStmt:
		if key, ok := w.semChan(x.Chan); ok {
			w.acquire("sem", key, nil, env, x)
		}
		if id, ok := ast.Unparen(x.Value).(*ast.Ident); ok {
			if h := w.heldByObj(w.objOf(id)); h != nil {
				w.escape(h, env, x)
			}
		}
		w.scanExprOps(x.Value, env, nil, nil)
		return env, false

	case *ast.IncDecStmt:
		w.scanExprOps(x.X, env, nil, nil)
		return env, false

	case *ast.DeferStmt:
		w.handleDefer(x, env)
		return env, false

	case *ast.GoStmt:
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.escapeCaptured(lit.Body, env)
		}
		for _, a := range x.Call.Args {
			w.scanExprOps(a, env, nil, nil)
		}
		return env, false

	case *ast.ReturnStmt:
		for _, res := range x.Results {
			w.escapeReturned(res, env)
			w.scanExprOps(res, env, nil, nil)
		}
		// An acquire inside the return expression itself escapes with it.
		for _, h := range w.held {
			if h.pos >= x.Pos() && h.pos <= x.End() {
				w.escape(h, env, x)
			}
		}
		w.checkExit(env, x.Pos(), "return")
		return env, true

	case *ast.IfStmt:
		if x.Init != nil {
			env, _ = w.walkStmt(x.Init, env)
		}
		w.scanExprOps(x.Cond, env, nil, nil)
		c := w.condOf(x.Cond)
		thenTerm := w.walkStmts(x.Body.List, envWith(env, c))
		elseTerm := false
		if x.Else != nil {
			_, elseTerm = w.walkStmt(x.Else, envWith(env, c.negate()))
		}
		if thenTerm && elseTerm {
			return env, true
		}
		if thenTerm {
			env = envWith(env, c.negate())
		} else if elseTerm {
			env = envWith(env, c)
		}
		return env, false

	case *ast.ForStmt:
		if x.Init != nil {
			env, _ = w.walkStmt(x.Init, env)
		}
		if x.Cond != nil {
			w.scanExprOps(x.Cond, env, nil, nil)
		}
		w.loops = append(w.loops, span{x.Body.Pos(), x.Body.End()})
		w.walkStmts(x.Body.List, env)
		if x.Post != nil {
			w.walkStmt(x.Post, env)
		}
		w.loops = w.loops[:len(w.loops)-1]
		w.checkLoopEnd(env, span{x.Body.Pos(), x.Body.End()}, x.Body.End(), "end of the loop body")
		return env, false

	case *ast.RangeStmt:
		w.scanExprOps(x.X, env, nil, nil)
		w.loops = append(w.loops, span{x.Body.Pos(), x.Body.End()})
		w.walkStmts(x.Body.List, env)
		w.loops = w.loops[:len(w.loops)-1]
		w.checkLoopEnd(env, span{x.Body.Pos(), x.Body.End()}, x.Body.End(), "end of the loop body")
		return env, false

	case *ast.SwitchStmt:
		if x.Init != nil {
			env, _ = w.walkStmt(x.Init, env)
		}
		if x.Tag != nil {
			w.scanExprOps(x.Tag, env, nil, nil)
		}
		allTerm, hasDefault := true, false
		for _, c := range x.Body.List {
			cc, isCC := c.(*ast.CaseClause)
			if !isCC {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.scanExprOps(e, env, nil, nil)
			}
			if !w.walkStmts(cc.Body, env) {
				allTerm = false
			}
		}
		return env, allTerm && hasDefault

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			env, _ = w.walkStmt(x.Init, env)
		}
		allTerm, hasDefault := true, false
		for _, c := range x.Body.List {
			cc, isCC := c.(*ast.CaseClause)
			if !isCC {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			if !w.walkStmts(cc.Body, env) {
				allTerm = false
			}
		}
		return env, allTerm && hasDefault

	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc, isCC := c.(*ast.CommClause)
			if !isCC {
				continue
			}
			if cc.Comm != nil {
				env2, _ := w.walkStmt(cc.Comm, env)
				w.walkStmts(cc.Body, env2)
			} else {
				w.walkStmts(cc.Body, env)
			}
		}
		return env, false

	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, env)

	case *ast.BranchStmt:
		switch x.Tok {
		case token.CONTINUE, token.BREAK:
			if len(w.loops) > 0 {
				why := "continue"
				if x.Tok == token.BREAK {
					why = "break"
				}
				w.checkLoopEnd(env, w.loops[len(w.loops)-1], x.Pos(), why)
			}
			return env, true
		case token.GOTO:
			return env, true
		}
		return env, false
	}
	// Statements with no special handling: scan for ops generically.
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			w.scanExprOps(e, env, nil, nil)
			return false
		}
		return true
	})
	return env, false
}

// handleAssign processes acquires, releases, escapes, and ownership
// rebinding in one assignment.
func (w *pairWalker) handleAssign(s *ast.AssignStmt, env []cond) {
	// Field / slot stores of a held variable are ownership escapes.
	storesTo := func(lhs ast.Expr) bool {
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		}
		return false
	}
	escaping := false
	for _, lhs := range s.Lhs {
		if storesTo(lhs) {
			escaping = true
		}
		w.scanExprOps(lhsIndexExprs(lhs), env, nil, nil)
	}
	if escaping {
		for _, rhs := range s.Rhs {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
				if h := w.heldByObj(w.objOf(id)); h != nil {
					w.escape(h, env, s)
				}
			}
		}
	}

	// Ownership rebinding: `m, err := f(dst)` moves dst's resource to m
	// when the call takes the held value and an assigned variable has its
	// exact type (the borrow-through idiom, e.g. Decoder.NextInto).
	if len(s.Rhs) == 1 {
		if call, ok := unwrapCall(s.Rhs[0]); ok {
			for _, arg := range call.Args {
				id, isID := ast.Unparen(arg).(*ast.Ident)
				if !isID {
					continue
				}
				h := w.heldByObj(w.objOf(id))
				if h == nil || h.varObj == nil {
					continue
				}
				for _, lhs := range s.Lhs {
					lid, isLID := lhs.(*ast.Ident)
					if !isLID || lid.Name == "_" {
						continue
					}
					obj := w.objOf(lid)
					if obj != nil && types.Identical(obj.Type(), h.varObj.Type()) {
						h.varObj = obj
						break
					}
				}
			}
		}
	}

	// Acquire binding: `x := pool.Get()` (possibly through a type
	// assertion) binds the resource to x.
	var bindCall *ast.CallExpr
	var bindObj types.Object
	if len(s.Rhs) == 1 && len(s.Lhs) >= 1 {
		if call, ok := unwrapCall(s.Rhs[0]); ok {
			if id, isID := s.Lhs[0].(*ast.Ident); isID && id.Name != "_" {
				bindCall = call
				bindObj = w.objOf(id)
			}
		}
	}
	for _, rhs := range s.Rhs {
		w.scanExprOps(rhs, env, bindCall, bindObj)
	}
}

// lhsIndexExprs returns the index/selector sub-expressions of an
// assignment target worth scanning for ops (the target itself is not an
// op site, but `m[pool.Get()] = x` style indices are).
func lhsIndexExprs(lhs ast.Expr) ast.Expr {
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		return ix.Index
	}
	return nil
}

// handleDefer records deferred releases: a direct deferred release call,
// or every release inside a deferred closure.
func (w *pairWalker) handleDefer(s *ast.DeferStmt, env []cond) {
	if class, key, acq, ok := w.resolveCallOp(s.Call); ok && !acq {
		w.deferred = append(w.deferred, deferRel{class: class, key: key, env: append([]cond(nil), env...), pos: s.Pos()})
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if class, key, acq, ok := w.resolveCallOp(x); ok && !acq {
					w.deferred = append(w.deferred, deferRel{class: class, key: key, env: append([]cond(nil), env...), pos: s.Pos()})
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if key, ok := w.semChan(x.X); ok {
						w.deferred = append(w.deferred, deferRel{class: "sem", key: key, env: append([]cond(nil), env...), pos: s.Pos()})
					}
				}
			}
			return true
		})
	}
	for _, a := range s.Call.Args {
		w.scanExprOps(a, env, nil, nil)
	}
}

// escapeReturned escapes held variables appearing in a return value.
func (w *pairWalker) escapeReturned(res ast.Expr, env []cond) {
	ast.Inspect(res, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if h := w.heldByObj(w.objOf(id)); h != nil {
				w.escape(h, env, id)
			}
		}
		return true
	})
}

// isTerminalCall reports whether a call never returns: panic, os.Exit,
// runtime.Goexit.
func (w *pairWalker) isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := w.pkg.Info.Uses[fun].(*types.Builtin); ok && fun.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if fn, ok := w.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			full := fn.FullName()
			return full == "os.Exit" || full == "runtime.Goexit" || full == "log.Fatal" ||
				full == "log.Fatalf" || full == "log.Fatalln"
		}
	}
	return false
}

// unwrapCall strips parens and type assertions around a call expression.
func unwrapCall(e ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			return x, true
		default:
			return nil, false
		}
	}
}
