package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
)

// CheckCoverage verifies that every //smol:noalloc function in the
// target packages is exercised by at least one alloctest.Run check. Test
// files are scanned syntactically (parse only, no type-check — test
// binaries aren't part of the main load) for the canonical function
// names passed to alloctest.Run as string literals, including the
// alsoCovers variadic tail for functions covered transitively.
func (r *Runner) CheckCoverage() []Finding {
	covered := make(map[string]bool)
	fset := token.NewFileSet()
	for _, pkg := range r.pkgs {
		files := append(append([]string(nil), pkg.TestGoFiles...), pkg.XTestGoFiles...)
		for _, f := range files {
			path := filepath.Join(pkg.Dir, f)
			af, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				continue
			}
			ast.Inspect(af, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Run" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "alloctest" {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if s, err := strconv.Unquote(lit.Value); err == nil {
							covered[s] = true
						}
					}
				}
				return true
			})
		}
	}

	var findings []Finding
	names := r.NoallocFuncs()
	sort.Strings(names)
	for _, name := range names {
		if covered[name] {
			continue
		}
		pos := r.noallocDeclPos(name)
		findings = append(findings, Finding{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: "coverage",
			Message:  "//smol:noalloc function " + name + " has no alloctest.Run check covering it",
		})
	}
	return findings
}

// noallocDeclPos finds the declaration position of a canonical noalloc
// function name.
func (r *Runner) noallocDeclPos(name string) token.Position {
	for fn, ann := range r.anns {
		if ann.noalloc && canonicalFuncName(fn) == name {
			return r.fset.Position(fn.Pos())
		}
	}
	return token.Position{}
}
