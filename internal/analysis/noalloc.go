package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noalloc rejects syntactic heap allocation inside functions annotated
// //smol:noalloc. The check is syntactic on purpose: it cannot prove the
// compiler won't stack-allocate a flagged expression, but every warm-path
// regression this project has seen entered through one of these shapes —
// make/new, slice or map literals, append into a fresh slice, closures,
// fmt/errors on the hot path, and interface boxing of values.
// Statements on a //smol:coldpath line (error and warm-up branches) are
// exempt, subtree included.
func (r *Runner) noalloc(pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !r.anns[fn].noalloc {
				continue
			}
			nw := &noallocWalker{r: r, pkg: pkg, findings: &findings}
			nw.collectAllowed(fd.Body)
			nw.walk(fd.Body)
		}
	}
	return findings
}

type noallocWalker struct {
	r        *Runner
	pkg      *Package
	findings *[]Finding

	// allowedAppend holds append calls of the self-append idiom
	// `x = append(x, ...)` (including the `buf = append(buf, 0)[:n]`
	// capacity-probe form), which reuse the backing array once warm.
	allowedAppend map[*ast.CallExpr]bool
	// addrOf holds composite literals under a unary & — those escape to
	// the heap; plain value literals stay in registers/stack.
	addrOf map[*ast.CompositeLit]bool
}

// collectAllowed pre-computes the append-reuse and &-literal maps, which
// need parent context a plain Inspect doesn't give.
func (nw *noallocWalker) collectAllowed(body *ast.BlockStmt) {
	nw.allowedAppend = make(map[*ast.CallExpr]bool)
	nw.addrOf = make(map[*ast.CompositeLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				call := findAppend(rhs, nw.pkg)
				if call == nil || len(call.Args) == 0 {
					continue
				}
				if types.ExprString(x.Lhs[i]) == types.ExprString(sliceBase(call.Args[0])) {
					nw.allowedAppend[call] = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					nw.addrOf[cl] = true
				}
			}
		}
		return true
	})
}

// findAppend unwraps parens and slice expressions around a builtin
// append call.
func findAppend(e ast.Expr, pkg *Package) *ast.CallExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isB := pkg.Info.Uses[id].(*types.Builtin); isB {
					return x
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// sliceBase strips slicing from an expression: append(buf[:0], ...)
// reuses buf.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// walk visits the body, skipping //smol:coldpath subtrees, and flags
// allocating shapes.
func (nw *noallocWalker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isStmt := n.(ast.Stmt); isStmt && nw.r.isCold(n) {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			nw.flag(x, "go statement allocates a goroutine on the hot path")
			return false
		case *ast.FuncLit:
			nw.flag(x, "closure allocation")
			return false
		case *ast.CompositeLit:
			nw.checkCompositeLit(x)
		case *ast.CallExpr:
			nw.checkCall(x)
		case *ast.AssignStmt:
			nw.checkAssignBoxing(x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := nw.pkg.Info.Types[x]; ok && tv.Value == nil && isString(tv.Type) {
					nw.flag(x, "string concatenation allocates")
				}
			}
		}
		return true
	})
}

func (nw *noallocWalker) flag(n ast.Node, format string, args ...any) {
	*nw.findings = append(*nw.findings, nw.r.finding("noalloc", n, format, args...))
}

func (nw *noallocWalker) checkCompositeLit(x *ast.CompositeLit) {
	tv, ok := nw.pkg.Info.Types[x]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		nw.flag(x, "slice literal allocates")
	case *types.Map:
		nw.flag(x, "map literal allocates")
	default:
		if nw.addrOf[x] {
			nw.flag(x, "&composite literal escapes to the heap")
		}
	}
}

func (nw *noallocWalker) checkCall(call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isB := nw.pkg.Info.Uses[fun].(*types.Builtin); isB {
			switch fun.Name {
			case "make":
				nw.flag(call, "make allocates")
			case "new":
				nw.flag(call, "new allocates")
			case "append":
				if !nw.allowedAppend[call] {
					nw.flag(call, "append into a non-reused slice allocates (only `x = append(x, ...)` reuse is allowed)")
				}
			case "panic":
				nw.checkBoxedArg(call.Args[0])
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, isFn := nw.pkg.Info.Uses[fun.Sel].(*types.Func); isFn && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt":
				nw.flag(call, "fmt.%s allocates; move it to a //smol:coldpath line", fn.Name())
				return
			case "errors":
				nw.flag(call, "errors.%s allocates; move it to a //smol:coldpath line", fn.Name())
				return
			}
		}
	}

	// Conversions that copy: string <-> []byte/[]rune.
	if tv, ok := nw.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		if src, ok := nw.pkg.Info.Types[call.Args[0]]; ok && src.Type != nil {
			_, dstSlice := dst.(*types.Slice)
			if (isString(tv.Type) && !isString(src.Type) && src.Value == nil) ||
				(dstSlice && isString(src.Type)) {
				nw.flag(call, "string conversion allocates")
			}
		}
		return
	}

	// Interface boxing at call boundaries.
	tv, ok := nw.pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			nw.checkBoxedArg(arg)
		}
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) > sig.Params().Len()-1 {
		last := sig.Params().At(sig.Params().Len() - 1)
		if sl, isSl := last.Type().Underlying().(*types.Slice); isSl {
			if _, isIface := sl.Elem().Underlying().(*types.Interface); isIface {
				nw.flag(call, "variadic interface call allocates the argument slice")
			}
		}
	}
}

// paramType returns the type of parameter i, expanding the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if sl, ok := sig.Params().At(n - 1).Type().Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// checkBoxedArg flags a concrete value converted to an interface unless
// it is pointer-shaped or a compile-time constant (both box without
// allocating).
func (nw *noallocWalker) checkBoxedArg(arg ast.Expr) {
	tv, ok := nw.pkg.Info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	if !boxingAllocates(tv.Type) {
		return
	}
	nw.flag(arg, "interface boxing of a %s value allocates", tv.Type.Underlying().String())
}

// checkAssignBoxing flags assignments of allocating concrete values into
// interface-typed destinations.
func (nw *noallocWalker) checkAssignBoxing(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		lt, ok := nw.pkg.Info.Types[lhs]
		if !ok || lt.Type == nil {
			// := defines; look up the object instead.
			if id, isID := lhs.(*ast.Ident); isID {
				if obj := nw.pkg.Info.Defs[id]; obj != nil {
					if _, isIface := obj.Type().Underlying().(*types.Interface); isIface {
						nw.checkBoxedArg(s.Rhs[i])
					}
				}
			}
			continue
		}
		if _, isIface := lt.Type.Underlying().(*types.Interface); isIface {
			nw.checkBoxedArg(s.Rhs[i])
		}
	}
}

// boxingAllocates reports whether converting a value of type t to an
// interface heap-allocates: anything not pointer-shaped does.
func boxingAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// exported for the coverage checker: NoallocFuncs lists the canonical
// names ("importpath.Func" or "importpath.Type.Method") of every
// //smol:noalloc function in the target packages.
func (r *Runner) NoallocFuncs() []string {
	var out []string
	for fn, ann := range r.anns {
		if ann.noalloc {
			out = append(out, canonicalFuncName(fn))
		}
	}
	return out
}

// canonicalFuncName renders "pkgpath.Name" or "pkgpath.Recv.Name" with
// pointer receivers stripped — the same form alloctest.Run takes.
func canonicalFuncName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path() + "."
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := rt.(*types.Named); ok {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
		return pkg + strings.TrimPrefix(rt.String(), fn.Pkg().Path()+".") + "." + fn.Name()
	}
	return pkg + fn.Name()
}
