//go:build race

package alloctest

func init() { raceEnabled = true }
