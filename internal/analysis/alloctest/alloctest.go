// Package alloctest is the shared harness behind the project's
// zero-allocation regression tests. Every //smol:noalloc function must be
// exercised — directly or transitively — by an alloctest.Run check;
// `smol-vet -check-coverage` enforces that by matching the canonical
// names passed here against the annotated function set.
package alloctest

import (
	"testing"
)

// raceEnabled is set to true by alloctest_race.go under -race.
var raceEnabled = false

// Run measures allocations of fn and fails t when the average exceeds
// max. name is the canonical name of the //smol:noalloc function under
// test ("importpath.Func" or "importpath.Type.Method", pointer receiver
// stripped); alsoCovers lists further annotated functions the same run
// exercises transitively (e.g. a forward pass covering its GEMM
// kernels). The names are what `smol-vet -check-coverage` greps for, so
// they must be string literals at the call site.
//
// Under the race detector allocation counts are meaningless (the
// instrumentation itself allocates), so Run executes fn once for
// coverage and skips the measurement.
func Run(t testing.TB, name string, max float64, fn func(), alsoCovers ...string) {
	t.Helper()
	if raceEnabled {
		fn()
		t.Logf("alloctest: race detector enabled; ran %s without measuring allocations", name)
		return
	}
	got := testing.AllocsPerRun(100, fn)
	if got > max {
		t.Errorf("alloctest: %s allocated %.2f allocs/op on the warm path, want <= %.2f (annotated //smol:noalloc)",
			name, got, max)
	}
	_ = alsoCovers
}
