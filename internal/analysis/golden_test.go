package analysis

import (
	"regexp"
	"strings"
	"testing"
)

// TestAnalyzersGolden loads each seeded-bug fixture package under
// testdata/src and diffs the suite's findings against the `// want`
// expectation comments: every want must be matched by a finding on its
// line, and every finding must be claimed by a want.
func TestAnalyzersGolden(t *testing.T) {
	loader := NewLoader("")
	for _, name := range []string{"pairingfix", "noallocfix", "ctxdropfix", "lockbalancefix"} {
		t.Run(name, func(t *testing.T) {
			pkgs, err := loader.Load("./testdata/src/" + name)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			runner := NewRunner(loader.Fset, pkgs)
			findings := runner.Run()

			type want struct {
				file string
				line int
				re   *regexp.Regexp
				hit  bool
			}
			var wants []*want
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					for _, cg := range file.Comments {
						for _, c := range cg.List {
							text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
							if !strings.HasPrefix(text, "want ") {
								continue
							}
							expr := strings.TrimPrefix(text, "want ")
							expr = strings.Trim(expr, "`")
							re, err := regexp.Compile(expr)
							if err != nil {
								t.Fatalf("bad want regexp %q: %v", expr, err)
							}
							pos := loader.Fset.Position(c.Pos())
							wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
						}
					}
				}
			}

			matched := make([]bool, len(findings))
			for _, w := range wants {
				for i, f := range findings {
					if matched[i] || f.File != w.file || f.Line != w.line {
						continue
					}
					if w.re.MatchString(f.Analyzer + ": " + f.Message) {
						matched[i] = true
						w.hit = true
						break
					}
				}
				if !w.hit {
					t.Errorf("%s:%d: want %q: no matching finding", w.file, w.line, w.re)
				}
			}
			for i, f := range findings {
				if !matched[i] {
					t.Errorf("unexpected finding: %s", f)
				}
			}
		})
	}
}

// TestModuleClean runs the full suite (coverage included) over the real
// module: the tree must stay finding-free, and every //smol:noalloc
// function must keep an alloctest.Run check.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := NewLoader("../..")
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	runner := NewRunner(loader.Fset, pkgs)
	findings := runner.Run()
	findings = append(findings, runner.CheckCoverage()...)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(pkgs) < 10 {
		t.Errorf("loaded only %d target packages; go list pattern broke", len(pkgs))
	}
}

// TestAnnotationIndex spot-checks that the runner indexed the module's
// key annotations: the wrapper pair on the engine buffer helpers and a
// //smol:noalloc on the compiled forward.
func TestAnnotationIndex(t *testing.T) {
	loader := NewLoader("../..")
	pkgs, err := loader.Load("./internal/engine", "./internal/nn")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	runner := NewRunner(loader.Fset, pkgs)
	byName := make(map[string]funcAnn)
	for fn, ann := range runner.anns {
		byName[canonicalFuncName(fn)] = ann
	}
	checks := []struct {
		name string
		ok   func(funcAnn) bool
		desc string
	}{
		{"smol/internal/engine.Pipeline.newBuf", func(a funcAnn) bool { return a.acquire == "tensorbuf" && a.owns }, "acquire tensorbuf + owns"},
		{"smol/internal/engine.Pipeline.recycle", func(a funcAnn) bool { return a.release == "tensorbuf" }, "release tensorbuf"},
		{"smol/internal/nn.InferencePlan.PredictInto", func(a funcAnn) bool { return a.noalloc }, "noalloc"},
	}
	for _, c := range checks {
		ann, ok := byName[c.name]
		if !ok || !c.ok(ann) {
			t.Errorf("%s: want %s annotation, got %+v (indexed: %v)", c.name, c.desc, ann, ok)
		}
	}
}
