// Package noallocfix seeds allocation shapes inside //smol:noalloc
// functions next to the reuse idioms the analyzer must accept.
package noallocfix

import "fmt"

type ring struct {
	buf    []byte
	sink   interface{}
	logits []float32
}

// allocEveryCall is a warm path doing everything wrong.
//
//smol:noalloc
func (r *ring) allocEveryCall(n int) []byte {
	scratch := make([]byte, n)    // want `make allocates`
	extra := new(ring)            // want `new allocates`
	_ = append(r.buf, scratch...) // want `append into a non-reused slice allocates`
	fn := func() int { return n } // want `closure allocation`
	_ = fn()
	_ = extra
	fmt.Println(n) // want `fmt\.Println allocates`
	return scratch
}

// sliceLiteral builds a fresh slice per call.
//
//smol:noalloc
func sliceLiteral(a, b float32) []float32 {
	return []float32{a, b} // want `slice literal allocates`
}

// boxesValue converts a struct value to an interface per call.
//
//smol:noalloc
func (r *ring) boxesValue(g struct{ x, y int }) {
	r.sink = g // want `interface boxing of a struct`
}

// selfAppend reuses its backing array — the sanctioned growth probe: no
// finding.
//
//smol:noalloc
func (r *ring) selfAppend() {
	if len(r.buf) == cap(r.buf) {
		r.buf = append(r.buf, 0)[:len(r.buf)]
	}
	r.buf = append(r.buf, 42)
}

// coldGuarded allocates only on annotated cold lines: no finding.
//
//smol:noalloc
func (r *ring) coldGuarded(n int) {
	if cap(r.logits) < n {
		r.logits = make([]float32, n) //smol:coldpath grow on shape change
	}
	for i := range r.logits[:n] {
		r.logits[i] = 0
	}
}

// pointerBox stores a pointer into an interface — pointer-shaped values
// box without allocating: no finding.
//
//smol:noalloc
func (r *ring) pointerBox() {
	r.sink = r
}
