// Package pairingfix seeds the defect classes the pairing analyzer must
// catch — pool leaks, arena leaks, semaphore leaks, unannotated
// ownership escapes — next to the balanced shapes it must accept.
package pairingfix

import (
	"errors"

	"smol/internal/engine"
)

type server struct {
	pool    *engine.TensorPool
	arena   *engine.PinnedArena
	execSem chan struct{}
	stash   interface{}
}

// leakOnError drops the pooled buffer when the prep step fails.
func (s *server) leakOnError(fail bool) error {
	buf := s.pool.Get() // want `TensorPool\(s\.pool\) is not released on the return`
	if fail {
		return errors.New("prep failed")
	}
	s.pool.Put(buf)
	return nil
}

// balancedOnError releases on both paths: no finding.
func (s *server) balancedOnError(fail bool) error {
	buf := s.pool.Get()
	if fail {
		s.pool.Put(buf)
		return errors.New("prep failed")
	}
	s.pool.Put(buf)
	return nil
}

// deferRelease covers every exit, panics included: no finding.
func (s *server) deferRelease(fail bool) error {
	buf := s.pool.Get()
	defer s.pool.Put(buf)
	if fail {
		return errors.New("prep failed")
	}
	return nil
}

// arenaLeak acquires staging memory and forgets it on the early return.
func (s *server) arenaLeak(n int) []float32 {
	staging := s.arena.Acquire() // want `PinnedArena\(s\.arena\) is not released on the return`
	if n == 0 {
		return nil
	}
	out := make([]float32, n)
	copy(out, staging)
	s.arena.Release(staging)
	return out
}

// conditionalMatched acquires and releases under correlated conditions
// (the runStream shape): no finding.
func (s *server) conditionalMatched(disable bool, n int) int {
	var staging []float32
	if disable {
		staging = make([]float32, n)
	} else {
		staging = s.arena.Acquire()
	}
	total := 0
	for _, b := range staging {
		total += int(b)
	}
	if !disable {
		s.arena.Release(staging)
	}
	return total
}

// semLeakOnPanicPath takes an execution token but only returns it on the
// happy path; the panicking branch leaks a slot forever.
func (s *server) semLeakOnPanicPath(poisoned bool) {
	s.execSem <- struct{}{} // want `sem\(s\.execSem\) is not released on the panic`
	if poisoned {
		panic("poisoned batch")
	}
	<-s.execSem
}

// semDeferredClosure returns the token from a deferred closure, the
// runtime's own idiom: no finding.
func (s *server) semDeferredClosure(poisoned bool) {
	s.execSem <- struct{}{}
	defer func() { <-s.execSem }()
	if poisoned {
		panic("poisoned batch")
	}
}

// escapeWithoutOwns stores the pooled buffer into a struct field without
// declaring the transfer.
func (s *server) escapeWithoutOwns() {
	buf := s.pool.Get()
	s.stash = buf // want `escapes .*escapeWithoutOwns.*//smol:owns`
}

// escapeWithOwns declares the transfer: no finding.
//
//smol:owns
func (s *server) escapeWithOwns() {
	buf := s.pool.Get()
	s.stash = buf
}

// loopLeak re-acquires every iteration and releases only after the loop.
func (s *server) loopLeak(rounds int) {
	var last []float32
	for i := 0; i < rounds; i++ {
		staging := s.arena.Acquire() // want `not released before the end of the loop body`
		last = staging
	}
	if last != nil {
		s.arena.Release(last)
	}
}
