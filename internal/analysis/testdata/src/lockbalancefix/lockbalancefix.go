// Package lockbalancefix seeds unbalanced mutex shapes next to the
// defer and both-paths idioms the lockbalance analyzer must accept.
package lockbalancefix

import (
	"errors"
	"sync"
)

type table struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// heldAcrossReturn leaves the mutex locked on the error path.
func (t *table) heldAcrossReturn(k string) (int, error) {
	t.mu.Lock() // want `mutex\(t\.mu\) is not released on the return`
	v, ok := t.data[k]
	if !ok {
		return 0, errors.New("missing key")
	}
	t.mu.Unlock()
	return v, nil
}

// deferUnlock is the canonical shape: no finding.
func (t *table) deferUnlock(k string) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.data[k]
	if !ok {
		return 0, errors.New("missing key")
	}
	return v, nil
}

// bothPaths unlocks on every branch: no finding.
func (t *table) bothPaths(k string, v int) bool {
	t.mu.Lock()
	if _, ok := t.data[k]; ok {
		t.mu.Unlock()
		return false
	}
	t.data[k] = v
	t.mu.Unlock()
	return true
}

// readLeak forgets the read side on the early return.
func (t *table) readLeak(k string) int {
	t.rw.RLock() // want `rlock\(t\.rw\) is not released on the return`
	if t.data == nil {
		return 0
	}
	v := t.data[k]
	t.rw.RUnlock()
	return v
}

// writeThenRead uses both lock classes correctly: no finding.
func (t *table) writeThenRead(k string, v int) int {
	t.rw.Lock()
	t.data[k] = v
	t.rw.Unlock()
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.data[k]
}
