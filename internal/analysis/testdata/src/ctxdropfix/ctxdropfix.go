// Package ctxdropfix seeds dropped-context shapes in exported methods
// next to the sanctioned select-on-Done patterns.
package ctxdropfix

import "context"

type Worker struct {
	jobs    chan int
	results chan int
}

// Submit blocks on a bare channel send; cancellation cannot reach it.
func (w *Worker) Submit(ctx context.Context, job int) {
	if ctx.Err() != nil {
		return
	}
	w.jobs <- job // want `channel send can block forever`
}

// SubmitCtx is the sanctioned shape: no finding.
func (w *Worker) SubmitCtx(ctx context.Context, job int) error {
	select {
	case w.jobs <- job:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Collect receives outside any select watching ctx.
func (w *Worker) Collect(ctx context.Context) int {
	_ = ctx.Err()
	return <-w.results // want `channel receive can block forever`
}

// Detach shadows the caller's context with a fresh root.
func (w *Worker) Detach(ctx context.Context) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	fresh := context.Background() // want `context\.Background\(\) discards the caller's context`
	return fresh.Err()
}

// Ignore takes a context and never looks at it.
func (w *Worker) Ignore(ctx context.Context, job int) { // want `takes a context\.Context but never uses it`
	w.results = make(chan int, job)
}
