// Package analysis implements smol-vet, the project's static-analysis
// suite: a stdlib-only (go/parser + go/types) checker that enforces the
// runtime's resource-safety and zero-allocation invariants at "compile
// time" instead of discovering violations under load.
//
// The suite knows the module's resource vocabulary — engine.TensorPool
// Get/Put, engine.PinnedArena Acquire/Release, sync.Pool Get/Put,
// semaphore channels (names ending in "Sem"), and sync.Mutex/RWMutex —
// and a small annotation vocabulary that transfers invariants explicitly
// where the code means to:
//
//	//smol:noalloc      this function must not heap-allocate (checked
//	//                  syntactically; see the noalloc analyzer)
//	//smol:coldpath     this statement/block is an error or slow path,
//	//                  exempt from the enclosing //smol:noalloc
//	//smol:owns         this function intentionally transfers resource
//	//                  ownership (returning a pooled buffer, storing it
//	//                  in a struct); escapes are not leaks here
//	//smol:acquire C    calls to this function acquire one resource of
//	//                  class C (a wrapper around a tracked acquire)
//	//smol:release C    calls to this function release one resource of
//	//                  class C
//
// Package loading is go list-driven: `go list -deps -json` names the
// exact files and import graph for the current platform, and everything
// (standard library included) is parsed and type-checked from source, so
// the tool works offline with no dependency outside the standard library.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the standard library
	DepOnly    bool // loaded only as a dependency, not named by the patterns
	GoFiles    []string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TestGoFiles and XTestGoFiles are recorded (not parsed) so the
	// coverage checker can scan test sources syntactically.
	TestGoFiles  []string
	XTestGoFiles []string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	CgoFiles     []string
	Imports      []string
	ImportMap    map[string]string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// Loader loads and type-checks packages from source. One Loader shares a
// FileSet and a cache of checked packages across Load calls, so fixture
// packages loaded one at a time pay for the standard library once.
type Loader struct {
	// Dir is the directory `go list` runs in (the module root, or any
	// directory inside it). Empty means the current directory.
	Dir string

	Fset    *token.FileSet
	checked map[string]*Package
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, Fset: token.NewFileSet(), checked: make(map[string]*Package)}
}

// Load resolves the patterns with `go list -deps -json`, parses and
// type-checks every resulting package bottom-up, and returns the packages
// the patterns named directly (dependencies are checked but reported with
// DepOnly set and excluded from the result).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var metas []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listPkg
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		metas = append(metas, &m)
	}
	var targets []*Package
	for _, m := range metas {
		if m.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", m.ImportPath, m.Error.Err)
		}
		pkg, err := l.check(m)
		if err != nil {
			return nil, err
		}
		if !m.DepOnly {
			targets = append(targets, pkg)
		}
	}
	return targets, nil
}

// check parses and type-checks one package, memoized by import path.
// go list -deps emits dependencies before dependents, so every import is
// already in the cache when its importer asks for it.
func (l *Loader) check(m *listPkg) (*Package, error) {
	if p, ok := l.checked[m.ImportPath]; ok {
		return p, nil
	}
	if m.ImportPath == "unsafe" {
		p := &Package{ImportPath: "unsafe", Standard: true, DepOnly: m.DepOnly, Types: types.Unsafe}
		l.checked["unsafe"] = p
		return p, nil
	}
	files := make([]*ast.File, 0, len(m.GoFiles))
	names := make([]string, 0, len(m.GoFiles))
	for _, f := range append(append([]string(nil), m.GoFiles...), m.CgoFiles...) {
		path := filepath.Join(m.Dir, f)
		af, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", path, err)
		}
		files = append(files, af)
		names = append(names, path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{
		Importer:    &mapImporter{loader: l, importMap: m.ImportMap},
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
	}
	tpkg, err := cfg.Check(m.ImportPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", m.ImportPath, err)
	}
	p := &Package{
		ImportPath:   m.ImportPath,
		Dir:          m.Dir,
		Standard:     m.Standard,
		DepOnly:      m.DepOnly,
		GoFiles:      names,
		Files:        files,
		Types:        tpkg,
		Info:         info,
		TestGoFiles:  m.TestGoFiles,
		XTestGoFiles: m.XTestGoFiles,
	}
	l.checked[m.ImportPath] = p
	return p, nil
}

// mapImporter resolves imports against the loader's cache, honouring the
// package's vendor ImportMap.
type mapImporter struct {
	loader    *Loader
	importMap map[string]string
}

func (mi *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.importMap[path]; ok {
		path = mapped
	}
	if p, ok := mi.loader.checked[path]; ok {
		return p.Types, nil
	}
	return nil, fmt.Errorf("analysis: import %q not loaded (go list -deps should have listed it)", path)
}
