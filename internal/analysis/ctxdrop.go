package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxdrop checks that exported functions and methods taking a
// context.Context actually honour it: the parameter must be used, fresh
// root contexts must not shadow it, and raw channel operations must sit
// in a select that also watches ctx.Done() — otherwise cancellation
// cannot interrupt the blocking point and the "takes a context" contract
// is a lie.
func (r *Runner) ctxdrop(pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ctxObj := contextParam(pkg, fd)
			if ctxObj == nil {
				continue
			}
			cw := &ctxWalker{r: r, pkg: pkg, ctxObj: ctxObj, findings: &findings}
			cw.walk(fd.Body, false)
			if !cw.used {
				findings = append(findings, r.finding("ctxdrop", fd.Name,
					"%s takes a context.Context but never uses it", fd.Name.Name))
			}
		}
	}
	return findings
}

// contextParam returns the object of the function's context.Context
// parameter, or nil.
func contextParam(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if namedTypePath(obj.Type()) == "context.Context" {
				return obj
			}
		}
	}
	return nil
}

type ctxWalker struct {
	r        *Runner
	pkg      *Package
	ctxObj   types.Object
	findings *[]Finding
	used     bool
}

// walk visits the body. inSafeSelect is true while visiting the comm
// clauses of a select that also has a ctx.Done() case — channel ops
// there are exactly the sanctioned pattern.
func (cw *ctxWalker) walk(n ast.Node, inSafeSelect bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if cw.pkg.Info.Uses[x] == cw.ctxObj {
				cw.used = true
			}
		case *ast.SelectStmt:
			safe := cw.selectWatchesCtx(x)
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm != nil {
					cw.walk(cc.Comm, safe)
				}
				for _, s := range cc.Body {
					cw.walk(s, false)
				}
			}
			return false
		case *ast.SendStmt:
			if !inSafeSelect && cw.isChanOp(x.Chan) {
				cw.flag(x, "channel send can block forever; wrap it in a select with a <-ctx.Done() case")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inSafeSelect && cw.isChanOp(x.X) && !cw.isDone(x.X) {
				cw.flag(x, "channel receive can block forever; wrap it in a select with a <-ctx.Done() case")
			}
		case *ast.CallExpr:
			if name := rootContextCall(cw.pkg, x); name != "" {
				cw.flag(x, "context.%s() discards the caller's context; thread the ctx parameter instead", name)
			}
		}
		return true
	})
}

func (cw *ctxWalker) flag(n ast.Node, format string, args ...any) {
	*cw.findings = append(*cw.findings, cw.r.finding("ctxdrop", n, format, args...))
}

// selectWatchesCtx reports whether any comm clause receives from a
// Done() channel of a context.Context value.
func (cw *ctxWalker) selectWatchesCtx(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		found := false
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW && cw.isDone(u.X) {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isDone reports whether an expression is a Done() call on a
// context.Context value.
func (cw *ctxWalker) isDone(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := cw.pkg.Info.Types[sel.X]
	return ok && tv.Type != nil && namedTypePath(tv.Type) == "context.Context"
}

// isChanOp reports whether an expression has channel type (a real
// blocking point; time.After results etc. included by design).
func (cw *ctxWalker) isChanOp(e ast.Expr) bool {
	tv, ok := cw.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// rootContextCall reports context.Background/context.TODO calls.
func rootContextCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}
