package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic, anchored to a source position.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the vet-style file:line: analyzer: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// funcAnn is the parsed //smol: annotation set of one function declaration.
type funcAnn struct {
	// noalloc: the function must not heap-allocate (noalloc analyzer).
	noalloc bool
	// owns: the function intentionally transfers resource ownership;
	// escaping a tracked resource (returning it, storing it in a struct or
	// slot) is not a finding here.
	owns bool
	// acquire/release name a resource class: calls to this function
	// acquire (or release) one resource of that class in the caller — the
	// wrapper form of a tracked acquire/release.
	acquire string
	release string
}

// parseFuncAnn extracts //smol: directives from a doc comment group.
func parseFuncAnn(doc *ast.CommentGroup) (ann funcAnn, ok bool) {
	if doc == nil {
		return funcAnn{}, false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, "smol:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, "smol:"))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "noalloc":
			ann.noalloc, ok = true, true
		case "owns":
			ann.owns, ok = true, true
		case "acquire":
			if len(fields) > 1 {
				ann.acquire, ok = fields[1], true
			}
		case "release":
			if len(fields) > 1 {
				ann.release, ok = fields[1], true
			}
		}
	}
	return ann, ok
}

// Runner holds the cross-package state the analyzers share: the loaded
// packages, the function-annotation index, and the per-file cold-path
// line sets.
type Runner struct {
	pkgs []*Package
	fset *token.FileSet

	// anns indexes //smol: function annotations by their type-checker
	// object, so wrapper acquire/release annotations resolve across
	// package boundaries.
	anns map[*types.Func]funcAnn

	// cold maps filename -> set of lines carrying a //smol:coldpath
	// directive. A statement starting on (or immediately below) such a
	// line is exempt from noalloc checking, subtree included.
	cold map[string]map[int]bool
}

// NewRunner indexes the target packages' annotations.
func NewRunner(fset *token.FileSet, pkgs []*Package) *Runner {
	r := &Runner{
		pkgs: pkgs,
		fset: fset,
		anns: make(map[*types.Func]funcAnn),
		cold: make(map[string]map[int]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				ann, ok := parseFuncAnn(fd.Doc)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					r.anns[fn] = ann
				}
			}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "smol:coldpath") {
						pos := fset.Position(c.Pos())
						lines := r.cold[pos.Filename]
						if lines == nil {
							lines = make(map[int]bool)
							r.cold[pos.Filename] = lines
						}
						lines[pos.Line] = true
					}
				}
			}
		}
	}
	return r
}

// annFor resolves the annotation of the function a call expression names,
// if any.
func (r *Runner) annFor(pkg *Package, call *ast.CallExpr) (funcAnn, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return funcAnn{}, false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return funcAnn{}, false
	}
	ann, ok := r.anns[fn]
	return ann, ok
}

// isCold reports whether a node is on (or directly below) a
// //smol:coldpath line of its file.
func (r *Runner) isCold(n ast.Node) bool {
	pos := r.fset.Position(n.Pos())
	lines := r.cold[pos.Filename]
	return lines != nil && (lines[pos.Line] || lines[pos.Line-1])
}

// Run executes every analyzer over every target package and returns the
// findings sorted by position.
func (r *Runner) Run() []Finding {
	var findings []Finding
	for _, pkg := range r.pkgs {
		findings = append(findings, r.pairing(pkg)...)
		findings = append(findings, r.lockbalance(pkg)...)
		findings = append(findings, r.noalloc(pkg)...)
		findings = append(findings, r.ctxdrop(pkg)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// finding constructs a Finding at a node's position.
func (r *Runner) finding(analyzer string, n ast.Node, format string, args ...any) Finding {
	pos := r.fset.Position(n.Pos())
	return Finding{
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// namedTypePath returns "importpath.TypeName" for a (possibly pointered)
// named type, or "".
func namedTypePath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// funcsIn yields every function body in a file worth analyzing as an
// independent unit: declared functions and methods plus every function
// literal (literals run with their own call frames; the pairing engine
// treats each as its own scope, which is also how the deferred-closure
// release idiom works).
type funcUnit struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
	typ  *ast.FuncType
}

func funcsIn(file *ast.File) []funcUnit {
	var units []funcUnit
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, funcUnit{decl: fd, body: fd.Body, typ: fd.Type})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				units = append(units, funcUnit{decl: fd, lit: lit, body: lit.Body, typ: lit.Type})
			}
			return true
		})
	}
	return units
}

// name renders a human-readable function name for diagnostics.
func (u funcUnit) name() string {
	if u.lit != nil {
		if u.decl != nil {
			return u.decl.Name.Name + " (func literal)"
		}
		return "func literal"
	}
	if u.decl.Recv != nil && len(u.decl.Recv.List) == 1 {
		return recvTypeName(u.decl.Recv.List[0].Type) + "." + u.decl.Name.Name
	}
	return u.decl.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}
