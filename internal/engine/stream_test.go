package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smol/internal/tensor"
)

// streamCfg is a small topology used across the streaming tests.
func streamCfg() Config {
	return Config{Workers: 4, Streams: 2, BatchSize: 8, SampleShape: [3]int{3, 4, 4}}
}

// tagPrep writes the job index into the buffer so exec can check routing.
func tagPrep(ws *WorkerState, job Job, out *tensor.Tensor) error {
	for i := range out.Data {
		out.Data[i] = float32(job.Index)
	}
	return nil
}

// routeExec writes batch contents back through each sample's Tag, which
// must be a *[]int32 result slice owned by the submitting request.
func routeExec(batch *tensor.Tensor, refs []Ref) error {
	sampleLen := batch.Len() / batch.Shape[0]
	for i, r := range refs {
		res := r.Tag.(*results)
		got := batch.Data[i*sampleLen]
		if got != float32(r.Index) {
			return fmt.Errorf("batch slot %d carries %v, want %d", i, got, r.Index)
		}
		res.mu.Lock()
		res.preds[r.Index] = int(got) + res.offset
		res.mu.Unlock()
	}
	return nil
}

// results is one request's output buffer.
type results struct {
	mu     sync.Mutex
	preds  []int
	offset int
}

func tagJobs(n int, res *results) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Index: i, Tag: res}
	}
	return jobs
}

func TestPipelineConcurrentRequestsShareWarmEngine(t *testing.T) {
	p, err := NewPipeline(streamCfg(), tagPrep, routeExec)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const callers, perCaller = 4, 100
	var wg sync.WaitGroup
	resSlices := make([]*results, callers)
	statsOut := make([]Stats, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		resSlices[c] = &results{preds: make([]int, perCaller), offset: c * 1000}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			statsOut[c], errs[c] = p.Process(context.Background(),
				SliceSource(tagJobs(perCaller, resSlices[c])))
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if statsOut[c].Images != perCaller {
			t.Fatalf("caller %d: images %d", c, statsOut[c].Images)
		}
		for i, got := range resSlices[c].preds {
			if got != i+c*1000 {
				t.Fatalf("caller %d job %d routed to %d", c, i, got)
			}
		}
	}
	// All four requests ran through one warm pool: the pool never allocated
	// per-image (4 x 100 images >> pipeline depth).
	allocs, reuses := p.poolStats()
	if reuses == 0 {
		t.Fatal("warm pipeline never reused a buffer")
	}
	if allocs > 200 {
		t.Fatalf("shared pipeline allocated %d buffers for %d images", allocs, callers*perCaller)
	}
}

func TestPipelineWarmAcrossSequentialRequests(t *testing.T) {
	p, err := NewPipeline(streamCfg(), tagPrep, routeExec)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	res1 := &results{preds: make([]int, 300)}
	st1, err := p.Process(context.Background(), SliceSource(tagJobs(300, res1)))
	if err != nil {
		t.Fatal(err)
	}
	res2 := &results{preds: make([]int, 300)}
	st2, err := p.Process(context.Background(), SliceSource(tagJobs(300, res2)))
	if err != nil {
		t.Fatal(err)
	}
	// The second request must ride the warm pool: no fresh allocations
	// beyond (at most a sliver of) what the first request provoked.
	grown := st2.PoolAllocs - st1.PoolAllocs
	if grown*2 > st1.PoolAllocs {
		t.Fatalf("second request allocated %d new buffers (first run total %d)", grown, st1.PoolAllocs)
	}
	if st2.PoolReuses <= st1.PoolReuses {
		t.Fatalf("reuses did not grow across requests: %d -> %d", st1.PoolReuses, st2.PoolReuses)
	}
}

func TestPipelineChanSourceStreams(t *testing.T) {
	p, err := NewPipeline(streamCfg(), tagPrep, routeExec)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 50
	res := &results{preds: make([]int, n)}
	for i := range res.preds {
		res.preds[i] = -1
	}
	ch := make(chan Job)
	go func() {
		for i := 0; i < n; i++ {
			ch <- Job{Index: i, Tag: res}
			if i%10 == 0 {
				time.Sleep(time.Millisecond) // trickle, not batch-aligned
			}
		}
		close(ch)
	}()
	st, err := p.Process(context.Background(), ChanSource(context.Background(), ch))
	if err != nil {
		t.Fatal(err)
	}
	if st.Images != n {
		t.Fatalf("images %d", st.Images)
	}
	for i, got := range res.preds {
		if got != i {
			t.Fatalf("job %d routed to %d", i, got)
		}
	}
}

func TestPipelineCancellationStopsInFlightStream(t *testing.T) {
	cfg := streamCfg()
	cfg.Workers = 2
	var prepped atomic.Int64
	slowPrep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
		prepped.Add(1)
		time.Sleep(2 * time.Millisecond)
		return nil
	}
	p, err := NewPipeline(cfg, slowPrep, func(b *tensor.Tensor, refs []Ref) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// An endless source: the request can only end via cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Job)
	go func() {
		for i := 0; ; i++ {
			select {
			case ch <- Job{Index: i}:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var procErr error
	go func() {
		_, procErr = p.Process(ctx, ChanSource(ctx, ch))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Process did not return (deadlock)")
	}
	if !errors.Is(procErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", procErr)
	}
	// The pipeline survives the cancelled request and serves the next one.
	res := &results{preds: make([]int, 20)}
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = Job{Index: i, Tag: res}
	}
	if _, err := p.Process(context.Background(), SliceSource(jobs)); err != nil {
		t.Fatalf("request after cancellation: %v", err)
	}
}

func TestPipelinePrepErrorConfinedToRequest(t *testing.T) {
	boom := errors.New("bad image")
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
		if res, ok := job.Tag.(*results); ok && res.offset == -1 && job.Index == 5 {
			return boom
		}
		return tagPrep(ws, job, out)
	}
	p, err := NewPipeline(streamCfg(), prep, routeExec)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bad := &results{preds: make([]int, 200), offset: -1}
	good := &results{preds: make([]int, 200)}
	var wg sync.WaitGroup
	var badErr, goodErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, badErr = p.Process(context.Background(), SliceSource(tagJobs(200, bad)))
	}()
	go func() {
		defer wg.Done()
		_, goodErr = p.Process(context.Background(), SliceSource(tagJobs(200, good)))
	}()
	wg.Wait()
	if !errors.Is(badErr, boom) {
		t.Fatalf("bad request err = %v, want boom", badErr)
	}
	if goodErr != nil {
		t.Fatalf("good request failed alongside: %v", goodErr)
	}
	// The offset==-1 sentinel collides with routeExec's offset math only if
	// results were routed for the failed request; the good request must be
	// complete and correct.
	for i, got := range good.preds {
		if got != i {
			t.Fatalf("good request job %d routed to %d", i, got)
		}
	}
}

func TestPipelineExecErrorFailsRequestNotPipeline(t *testing.T) {
	boom := errors.New("exec boom")
	exec := func(batch *tensor.Tensor, refs []Ref) error {
		for _, r := range refs {
			if res, ok := r.Tag.(*results); ok && res.offset == -1 {
				return boom
			}
		}
		return routeExec(batch, refs)
	}
	p, err := NewPipeline(streamCfg(), tagPrep, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bad := &results{preds: make([]int, 50), offset: -1}
	if _, err := p.Process(context.Background(), SliceSource(tagJobs(50, bad))); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want exec boom", err)
	}
	good := &results{preds: make([]int, 50)}
	if _, err := p.Process(context.Background(), SliceSource(tagJobs(50, good))); err != nil {
		t.Fatalf("pipeline did not survive exec failure: %v", err)
	}
}

// TestPipelineErrorReturnsPooledBuffers: after a failed request fully
// drains, every pooled buffer the pipeline handed out must be back on the
// free list — error paths may not leak tensors.
func TestPipelineErrorReturnsPooledBuffers(t *testing.T) {
	boom := errors.New("boom")
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
		if job.Index == 37 {
			return boom
		}
		return tagPrep(ws, job, out)
	}
	p, err := NewPipeline(streamCfg(), prep, routeExec)
	if err != nil {
		t.Fatal(err)
	}
	res := &results{preds: make([]int, 300)}
	if _, err := p.Process(context.Background(), SliceSource(tagJobs(300, res))); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	p.Close()
	allocs, _ := p.poolStats()
	if free := p.pools[0].Free(); free != allocs {
		t.Fatalf("pool leaked buffers after failed run: %d free of %d allocated", free, allocs)
	}
}

func TestPipelineProcessAfterCloseFails(t *testing.T) {
	p, err := NewPipeline(streamCfg(), tagPrep, routeExec)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Process(context.Background(), SliceSource(tagJobs(1, &results{preds: make([]int, 1)}))); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("err = %v, want ErrPipelineClosed", err)
	}
}

// TestRunIsStreamingWrapper: the legacy one-shot API must behave exactly as
// before on top of the streaming core, including pooled-buffer hygiene on
// the error path (verified indirectly via engine_test.go's abort tests).
func TestRunIsStreamingWrapper(t *testing.T) {
	var seen sync.Map
	prep := tagPrep
	exec := func(batch *tensor.Tensor, indices []int) error {
		for _, idx := range indices {
			if _, dup := seen.LoadOrStore(idx, true); dup {
				return fmt.Errorf("index %d executed twice", idx)
			}
		}
		return nil
	}
	e, err := New(streamCfg(), prep, exec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	st, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Images != 100 || st.Throughput <= 0 {
		t.Fatalf("stats %+v", st)
	}
	count := 0
	seen.Range(func(k, v any) bool { count++; return true })
	if count != 100 {
		t.Fatalf("executed %d of 100", count)
	}
}

// TestMPMCCloseUnblocksConcurrentPuts: many producers blocked on a full
// queue must all fail out with ErrClosed when the queue closes — the
// shutdown path the streaming pipeline leans on.
func TestMPMCCloseUnblocksConcurrentPuts(t *testing.T) {
	q := NewMPMCQueue[int](1)
	if err := q.Put(0); err != nil {
		t.Fatal(err)
	}
	const blocked = 8
	errs := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		go func(i int) { errs <- q.Put(i) }(i)
	}
	// Let every producer reach the full-queue wait.
	time.Sleep(20 * time.Millisecond)
	q.Close()
	for i := 0; i < blocked; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("blocked Put returned %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("blocked Put did not unblock on Close")
		}
	}
	// The element enqueued before Close still drains.
	if v, ok := q.Take(); !ok || v != 0 {
		t.Fatalf("drain after close: v=%d ok=%v", v, ok)
	}
	if _, ok := q.Take(); ok {
		t.Fatal("empty closed queue reported ok")
	}
}

// TestPipelineMultiShapeClasses: a pipeline declaring several shape classes
// must route every job to a batch of its own class's geometry (and batch
// size), never mixing shapes, while concurrent requests of different
// classes share the warm workers.
func TestPipelineMultiShapeClasses(t *testing.T) {
	cfg := Config{
		Workers: 4, Streams: 2, BatchSize: 8,
		Shapes:     [][3]int{{3, 4, 4}, {3, 6, 6}, {1, 2, 2}},
		BatchSizes: []int{0, 4, 0}, // class 1 runs smaller batches
	}
	sampleLens := []int{3 * 4 * 4, 3 * 6 * 6, 1 * 2 * 2}
	maxBatch := []int{8, 4, 8}
	exec := func(batch *tensor.Tensor, refs []Ref) error {
		n := batch.Shape[0]
		sampleLen := batch.Len() / n
		class := -1
		for c, l := range sampleLens {
			if l == sampleLen {
				class = c
			}
		}
		if class < 0 {
			return fmt.Errorf("batch with unknown sample length %d", sampleLen)
		}
		if n > maxBatch[class] {
			return fmt.Errorf("class %d batch of %d exceeds its batch size %d", class, n, maxBatch[class])
		}
		for i, r := range refs {
			res := r.Tag.(*results)
			if res.offset != class {
				return fmt.Errorf("class %d batch carries a job of class %d", class, res.offset)
			}
			got := batch.Data[i*sampleLen]
			if got != float32(r.Index) {
				return fmt.Errorf("batch slot %d carries %v, want %d", i, got, r.Index)
			}
			res.mu.Lock()
			res.preds[r.Index] = int(got)
			res.mu.Unlock()
		}
		return nil
	}
	p, err := NewPipeline(cfg, tagPrep, exec)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const perClass = 100
	var wg sync.WaitGroup
	resSlices := make([]*results, len(sampleLens))
	errs := make([]error, len(sampleLens))
	for c := range sampleLens {
		// offset doubles as the request's class marker for exec above.
		resSlices[c] = &results{preds: make([]int, perClass), offset: c}
		jobs := make([]Job, perClass)
		for i := range jobs {
			jobs[i] = Job{Index: i, Tag: resSlices[c], Class: c}
		}
		wg.Add(1)
		go func(c int, jobs []Job) {
			defer wg.Done()
			_, errs[c] = p.Process(context.Background(), SliceSource(jobs))
		}(c, jobs)
	}
	wg.Wait()
	for c := range sampleLens {
		if errs[c] != nil {
			t.Fatalf("class %d: %v", c, errs[c])
		}
		for i, got := range resSlices[c].preds {
			if got != i {
				t.Fatalf("class %d job %d routed to %d", c, i, got)
			}
		}
	}
}

// TestPipelineRejectsInvalidClass: a job naming a shape class the pipeline
// does not have must fail its own request without wedging the pipeline.
func TestPipelineRejectsInvalidClass(t *testing.T) {
	p, err := NewPipeline(streamCfg(), tagPrep, routeExec)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res := &results{preds: make([]int, 2)}
	jobs := []Job{{Index: 0, Tag: res}, {Index: 1, Tag: res, Class: 3}}
	if _, err := p.Process(context.Background(), SliceSource(jobs)); err == nil {
		t.Fatal("out-of-range shape class should fail the request")
	}
	good := &results{preds: make([]int, 8)}
	if _, err := p.Process(context.Background(), SliceSource(tagJobs(8, good))); err != nil {
		t.Fatalf("pipeline did not survive the invalid job: %v", err)
	}
}
