package engine

import (
	"sync"

	"smol/internal/tensor"
)

// TensorPool is a free list of identically-shaped tensors, implementing the
// buffer-reuse optimization of §6.1: the caller of the engine only needs
// inference results, never the intermediate preprocessed buffers, so those
// buffers cycle through the pool instead of the allocator.
type TensorPool struct {
	mu    sync.Mutex
	shape []int
	free  []*tensor.Tensor

	// Stats.
	allocs int
	reuses int
}

// NewTensorPool creates a pool of tensors with the given shape, pre-warming
// it with warm buffers. Over-allocating (warm > workers) keeps producers
// from contending with consumers, per the paper.
func NewTensorPool(shape []int, warm int) *TensorPool {
	p := &TensorPool{shape: append([]int(nil), shape...)}
	for i := 0; i < warm; i++ {
		p.free = append(p.free, tensor.New(p.shape...))
		p.allocs++
	}
	return p
}

// Get returns a tensor from the pool, allocating if empty.
func (p *TensorPool) Get() *tensor.Tensor {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		p.reuses++
		return t
	}
	p.allocs++
	return tensor.New(p.shape...)
}

// Put returns a tensor to the pool. Tensors of the wrong shape are dropped.
func (p *TensorPool) Put(t *tensor.Tensor) {
	if t == nil {
		return
	}
	if len(t.Shape) != len(p.shape) {
		return
	}
	for i := range p.shape {
		if t.Shape[i] != p.shape[i] {
			return
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, t)
}

// Free returns how many tensors sit idle in the pool. When no run is in
// flight every tensor the pool ever allocated should be back on the free
// list — the invariant the engine's error paths are tested against.
func (p *TensorPool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Stats returns (allocations, reuses).
func (p *TensorPool) Stats() (allocs, reuses int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocs, p.reuses
}

// PinnedArena models the pinned staging memory of §6.1: a fixed set of
// preallocated batch-sized buffers. Real CUDA pinned memory makes
// host-to-device copies ~2-3x faster; in this engine the benefit realized
// is allocation-free, reusable batch staging, and the simulator separately
// charges unpinned transfers a higher per-batch overhead.
type PinnedArena struct {
	mu   sync.Mutex
	cond *sync.Cond
	free [][]float32
	size int
}

// NewPinnedArena preallocates n buffers of size floats each.
func NewPinnedArena(n, size int) *PinnedArena {
	a := &PinnedArena{size: size}
	a.cond = sync.NewCond(&a.mu)
	for i := 0; i < n; i++ {
		a.free = append(a.free, make([]float32, size))
	}
	return a
}

// Acquire blocks until a staging buffer is available.
func (a *PinnedArena) Acquire() []float32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.free) == 0 {
		a.cond.Wait()
	}
	b := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return b
}

// Release returns a staging buffer to the arena.
func (a *PinnedArena) Release(b []float32) {
	if len(b) != a.size {
		panic("engine: releasing foreign buffer to arena")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = append(a.free, b)
	a.cond.Signal()
}
