// Package engine is Smol's runtime engine (§6.1): a real multi-producer
// multi-consumer pipeline in which preprocessing workers decode and
// transform images into reusable buffers, and consumer streams assemble
// batches for DNN execution. Every systems optimization the paper ablates
// in Figures 7 and 8 — threading, memory reuse, pinned staging buffers,
// and the preprocessing DAG — is individually toggleable.
package engine

import (
	"errors"
	"sync"
)

// MPMCQueue is a bounded multi-producer multi-consumer FIFO queue, the Go
// analogue of folly::MPMCQueue used by the paper's implementation. It
// blocks on Put when full and on Take when empty, and supports draining
// close semantics.
type MPMCQueue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []T
	head     int
	tail     int
	count    int
	closed   bool

	// PutStalls counts Put calls that had to wait for space — the engine's
	// backpressure signal.
	putStalls int
}

// NewMPMCQueue creates a queue with the given capacity.
func NewMPMCQueue[T any](capacity int) *MPMCQueue[T] {
	if capacity <= 0 {
		panic("engine: queue capacity must be positive")
	}
	q := &MPMCQueue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// ErrClosed is returned by Put after Close.
var ErrClosed = errors.New("engine: queue closed")

// Put enqueues v, blocking while the queue is full. It returns ErrClosed if
// the queue was closed.
func (q *MPMCQueue[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	stalled := false
	for q.count == len(q.buf) && !q.closed {
		if !stalled {
			q.putStalls++
			stalled = true
		}
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.buf[q.tail] = v
	q.tail = (q.tail + 1) % len(q.buf)
	q.count++
	q.notEmpty.Signal()
	return nil
}

// Take dequeues one element, blocking while the queue is empty. ok is false
// when the queue is closed and drained.
func (q *MPMCQueue[T]) Take() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.count == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.notFull.Signal()
	return v, true
}

// TakeUpTo dequeues up to max elements into dst, blocking until at least
// one element is available or the queue is drained. It returns the number
// dequeued (0 means closed and drained). Batch consumers use this to
// assemble accelerator batches in one critical section.
func (q *MPMCQueue[T]) TakeUpTo(dst []T, max int) int {
	if max > len(dst) {
		max = len(dst)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	n := q.count
	if n > max {
		n = max
	}
	var zero T
	for i := 0; i < n; i++ {
		dst[i] = q.buf[q.head]
		q.buf[q.head] = zero
		q.head = (q.head + 1) % len(q.buf)
	}
	q.count -= n
	if n > 0 {
		q.notFull.Broadcast()
	}
	return n
}

// Close marks the queue closed: pending and future Puts fail, Takes drain
// the remaining elements then report ok=false.
func (q *MPMCQueue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// Len returns the current element count.
func (q *MPMCQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// PutStalls returns how many Put calls blocked on a full queue.
func (q *MPMCQueue[T]) PutStalls() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.putStalls
}
