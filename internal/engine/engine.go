package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"smol/internal/tensor"
)

// Options toggles the engine's systems optimizations individually, for the
// lesion and factor analyses of Figures 7 and 8.
type Options struct {
	// DisableThreading runs a single preprocessing worker.
	DisableThreading bool
	// DisableMemReuse allocates a fresh tensor per image instead of pooling.
	DisableMemReuse bool
	// DisablePinned allocates a fresh staging buffer per batch and performs
	// the extra copy a non-pinned transfer path implies.
	DisablePinned bool
}

// Config describes the pipeline topology.
type Config struct {
	// Workers is the number of preprocessing goroutines; zero means
	// GOMAXPROCS (the paper's producers == vCPUs heuristic).
	Workers int
	// Streams is the number of batch-assembly consumers (CUDA streams).
	Streams int
	// QueueCap is the bounded queue capacity; zero means 4x batch size.
	QueueCap int
	// BatchSize is the execution batch size; zero means 32.
	BatchSize int
	// SampleShape is the (C, H, W) shape every preprocessed sample has.
	SampleShape [3]int
	Opts        Options
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Opts.DisableThreading {
		c.Workers = 1
	}
	if c.Streams <= 0 {
		c.Streams = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.QueueCap < c.BatchSize {
		c.QueueCap = 4 * c.BatchSize
	}
	return c
}

// Job is one unit of input: an encoded image plus its position in the
// input order.
type Job struct {
	Index int
	Data  []byte
}

// PrepFunc decodes and preprocesses one job into out, which has
// SampleShape. It runs concurrently on many workers; implementations must
// confine mutable state to the worker (the engine passes a distinct
// workerState to each).
type PrepFunc func(ws *WorkerState, job Job, out *tensor.Tensor) error

// ExecFunc consumes an assembled batch: batch is (n, C, H, W) and indices
// lists the job indices in batch order. It is called from multiple stream
// goroutines.
type ExecFunc func(batch *tensor.Tensor, indices []int) error

// WorkerState carries per-worker scratch so PrepFuncs can reuse memory
// without synchronization.
type WorkerState struct {
	// ID is the worker index.
	ID int
	// Scratch is an arbitrary per-worker value, set up by the caller via
	// Engine.InitWorker.
	Scratch any
}

// Stats summarizes one engine run.
type Stats struct {
	Images          int
	Elapsed         time.Duration
	Throughput      float64 // images/sec
	Batches         int
	QueueFullStalls int
	PoolAllocs      int
	PoolReuses      int
	// MeanLatency and MaxLatency measure per-image latency from the start
	// of an image's preprocessing to the completion of the batch that
	// carried it — the real-engine counterpart of the simulator's latency
	// tracking and the quantity Constraint.MaxLatencyUS caps.
	MeanLatency time.Duration
	MaxLatency  time.Duration
}

// Engine executes jobs through the preprocessing/execution pipeline.
type Engine struct {
	cfg  Config
	prep PrepFunc
	exec ExecFunc
	// InitWorker, when non-nil, initializes each worker's scratch state.
	InitWorker func(ws *WorkerState)
}

// New constructs an engine.
func New(cfg Config, prep PrepFunc, exec ExecFunc) (*Engine, error) {
	cfg = cfg.withDefaults()
	if prep == nil || exec == nil {
		return nil, fmt.Errorf("engine: prep and exec functions are required")
	}
	if cfg.SampleShape[0] <= 0 || cfg.SampleShape[1] <= 0 || cfg.SampleShape[2] <= 0 {
		return nil, fmt.Errorf("engine: invalid sample shape %v", cfg.SampleShape)
	}
	return &Engine{cfg: cfg, prep: prep, exec: exec}, nil
}

// item is a preprocessed sample flowing through the queue. Only the pointer
// crosses goroutines, avoiding copies (§6.1: "Smol only passes pointers
// between workers").
type item struct {
	index int
	buf   *tensor.Tensor
	// start is when the item's preprocessing began, for latency tracking.
	start time.Time
}

// Run pushes all jobs through the pipeline and blocks until every batch has
// been executed. The first error from any stage aborts the run.
func (e *Engine) Run(jobs []Job) (Stats, error) {
	cfg := e.cfg
	shape := []int{cfg.SampleShape[0], cfg.SampleShape[1], cfg.SampleShape[2]}
	sampleLen := shape[0] * shape[1] * shape[2]

	pool := NewTensorPool(shape, cfg.QueueCap+cfg.Workers+cfg.Streams*cfg.BatchSize)
	arena := NewPinnedArena(cfg.Streams+1, cfg.BatchSize*sampleLen)
	queue := NewMPMCQueue[item](cfg.QueueCap)

	var (
		next     atomic.Int64
		firstErr atomic.Value
		wgProd   sync.WaitGroup
		wgCons   sync.WaitGroup
		batches  atomic.Int64
	)
	setErr := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}

	start := time.Now()
	// Producers.
	for w := 0; w < cfg.Workers; w++ {
		wgProd.Add(1)
		go func(id int) {
			defer wgProd.Done()
			ws := &WorkerState{ID: id}
			if e.InitWorker != nil {
				e.InitWorker(ws)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || firstErr.Load() != nil {
					return
				}
				prepStart := time.Now()
				var buf *tensor.Tensor
				if cfg.Opts.DisableMemReuse {
					buf = tensor.New(shape...)
				} else {
					buf = pool.Get()
				}
				if err := e.prep(ws, jobs[i], buf); err != nil {
					setErr(fmt.Errorf("engine: job %d: %w", jobs[i].Index, err))
					queue.Close()
					return
				}
				if err := queue.Put(item{index: jobs[i].Index, buf: buf, start: prepStart}); err != nil {
					return // queue closed by an erroring stage
				}
			}
		}(w)
	}

	// Consumers (streams). Each stream accumulates latency locally and
	// merges under latMu when it drains.
	var (
		latMu  sync.Mutex
		latSum time.Duration
		latMax time.Duration
	)
	scratch := make([][]item, cfg.Streams)
	for s := 0; s < cfg.Streams; s++ {
		scratch[s] = make([]item, cfg.BatchSize)
		wgCons.Add(1)
		go func(id int) {
			defer wgCons.Done()
			var localSum, localMax time.Duration
			defer func() {
				latMu.Lock()
				latSum += localSum
				if localMax > latMax {
					latMax = localMax
				}
				latMu.Unlock()
			}()
			items := scratch[id]
			indices := make([]int, cfg.BatchSize)
			for {
				n := queue.TakeUpTo(items, cfg.BatchSize)
				if n == 0 {
					return
				}
				var staging []float32
				if cfg.Opts.DisablePinned {
					// Unpinned path: fresh allocation plus an extra staging
					// copy, as DALI-to-TensorRT style integrations require.
					staging = make([]float32, cfg.BatchSize*sampleLen)
					tmp := make([]float32, n*sampleLen)
					for i := 0; i < n; i++ {
						copy(tmp[i*sampleLen:], items[i].buf.Data)
					}
					copy(staging, tmp)
				} else {
					staging = arena.Acquire()
					for i := 0; i < n; i++ {
						copy(staging[i*sampleLen:], items[i].buf.Data)
					}
				}
				for i := 0; i < n; i++ {
					indices[i] = items[i].index
					if !cfg.Opts.DisableMemReuse {
						pool.Put(items[i].buf)
					}
					items[i].buf = nil
				}
				batch := tensor.FromData(staging[:n*sampleLen], n, shape[0], shape[1], shape[2])
				err := e.exec(batch, indices[:n])
				if !cfg.Opts.DisablePinned {
					arena.Release(staging)
				}
				done := time.Now()
				for i := 0; i < n; i++ {
					lat := done.Sub(items[i].start)
					localSum += lat
					if lat > localMax {
						localMax = lat
					}
				}
				batches.Add(1)
				if err != nil {
					setErr(fmt.Errorf("engine: exec: %w", err))
					queue.Close()
					return
				}
			}
		}(s)
	}

	wgProd.Wait()
	queue.Close()
	wgCons.Wait()

	if err, _ := firstErr.Load().(error); err != nil {
		return Stats{}, err
	}
	elapsed := time.Since(start)
	allocs, reuses := pool.Stats()
	st := Stats{
		Images:          len(jobs),
		Elapsed:         elapsed,
		Batches:         int(batches.Load()),
		QueueFullStalls: queue.PutStalls(),
		PoolAllocs:      allocs,
		PoolReuses:      reuses,
		MaxLatency:      latMax,
	}
	if len(jobs) > 0 {
		st.MeanLatency = latSum / time.Duration(len(jobs))
	}
	if elapsed > 0 {
		st.Throughput = float64(len(jobs)) / elapsed.Seconds()
	}
	return st, nil
}
