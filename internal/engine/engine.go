package engine

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"smol/internal/tensor"
)

// Options toggles the engine's systems optimizations individually, for the
// lesion and factor analyses of Figures 7 and 8.
type Options struct {
	// DisableThreading runs a single preprocessing worker.
	DisableThreading bool
	// DisableMemReuse allocates a fresh tensor per image instead of pooling.
	DisableMemReuse bool
	// DisablePinned allocates a fresh staging buffer per batch and performs
	// the extra copy a non-pinned transfer path implies.
	DisablePinned bool
}

// Config describes the pipeline topology.
type Config struct {
	// Workers is the number of preprocessing goroutines; zero means
	// GOMAXPROCS (the paper's producers == vCPUs heuristic).
	Workers int
	// Streams is the number of batch-assembly consumers (CUDA streams).
	Streams int
	// QueueCap is the bounded queue capacity; zero means 4x batch size.
	QueueCap int
	// BatchSize is the execution batch size; zero means 32.
	BatchSize int
	// SampleShape is the (C, H, W) shape every preprocessed sample has.
	// It describes the single shape class 0 when Shapes is empty.
	SampleShape [3]int
	// Shapes, when non-empty, declares the pipeline's shape classes: every
	// job names one via Job.Class, and the pipeline keeps a tensor pool,
	// staging arena, bounded queue, and batch-assembly streams per class.
	// Batches never mix classes, so a multi-variant model zoo can share one
	// warm pipeline while each variant keeps its own input geometry.
	Shapes [][3]int
	// BatchSizes optionally overrides BatchSize per shape class (parallel to
	// Shapes; zero entries fall back to BatchSize), letting large-input
	// classes run smaller batches than cheap ones.
	BatchSizes []int
	Opts       Options
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Opts.DisableThreading {
		c.Workers = 1
	}
	if c.Streams <= 0 {
		c.Streams = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.QueueCap < c.BatchSize {
		c.QueueCap = 4 * c.BatchSize
	}
	return c
}

// Job is one unit of input: an encoded image plus its position in the
// input order. Tag is an opaque per-job payload the engine threads through
// to the execution stage's Refs; streaming callers use it to route results
// back to the submitting request.
type Job struct {
	Index int
	Data  []byte
	Tag   any
	// Class is the job's shape class (an index into Config.Shapes); leave 0
	// for single-shape pipelines.
	Class int
}

// PrepFunc decodes and preprocesses one job into out, which has
// SampleShape. It runs concurrently on many workers; implementations must
// confine mutable state to the worker (the engine passes a distinct
// workerState to each).
type PrepFunc func(ws *WorkerState, job Job, out *tensor.Tensor) error

// ExecFunc consumes an assembled batch: batch is (n, C, H, W) and indices
// lists the job indices in batch order. It is called from multiple stream
// goroutines.
type ExecFunc func(batch *tensor.Tensor, indices []int) error

// WorkerState carries per-worker scratch so PrepFuncs can reuse memory
// without synchronization.
type WorkerState struct {
	// ID is the worker index.
	ID int
	// Scratch is an arbitrary per-worker value, set up by the caller via
	// Engine.InitWorker.
	Scratch any
}

// Stats summarizes one engine run (one Run call or one streamed request).
type Stats struct {
	Images          int
	Elapsed         time.Duration
	Throughput      float64 // images/sec
	Batches         int
	QueueFullStalls int
	PoolAllocs      int
	PoolReuses      int
	// MeanLatency and MaxLatency measure per-image latency from the start
	// of an image's preprocessing to the completion of the batch that
	// carried it — the real-engine counterpart of the simulator's latency
	// tracking and the quantity Constraint.MaxLatencyUS caps.
	//
	// On a long-lived Pipeline, QueueFullStalls, PoolAllocs and PoolReuses
	// are cumulative over the pipeline's lifetime; the other fields are
	// per-request.
	MeanLatency time.Duration
	MaxLatency  time.Duration
}

// Engine executes jobs through the preprocessing/execution pipeline.
type Engine struct {
	cfg  Config
	prep PrepFunc
	exec ExecFunc
	// InitWorker, when non-nil, initializes each worker's scratch state.
	InitWorker func(ws *WorkerState)
}

// New constructs an engine.
func New(cfg Config, prep PrepFunc, exec ExecFunc) (*Engine, error) {
	cfg = cfg.withDefaults()
	if prep == nil || exec == nil {
		return nil, fmt.Errorf("engine: prep and exec functions are required")
	}
	if _, err := classGeoms(cfg); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, prep: prep, exec: exec}, nil
}

// item is a preprocessed sample flowing through the queue. Only the pointer
// crosses goroutines, avoiding copies (§6.1: "Smol only passes pointers
// between workers"). req binds the sample to the request that submitted it
// so results, errors, and latency route per request.
type item struct {
	index int
	tag   any
	buf   *tensor.Tensor
	// start is when the item's preprocessing began, for latency tracking.
	start time.Time
	req   *request
}

// adaptExec lifts an index-based ExecFunc to the streaming BatchFunc.
func adaptExec(exec ExecFunc) BatchFunc {
	return func(batch *tensor.Tensor, refs []Ref) error {
		indices := make([]int, len(refs))
		for i, r := range refs {
			indices[i] = r.Index
		}
		return exec(batch, indices)
	}
}

// Start brings up a long-lived streaming Pipeline with this engine's
// configuration and callbacks. The pipeline's workers, tensor pool, and
// pinned arena stay resident across requests until Close; concurrent
// Process calls share them.
func (e *Engine) Start() (*Pipeline, error) {
	p, err := NewPipeline(e.cfg, e.prep, adaptExec(e.exec))
	if err != nil {
		return nil, err
	}
	p.InitWorker = e.InitWorker
	return p, nil
}

// Run pushes all jobs through the pipeline and blocks until every batch has
// been executed. The first error from any stage aborts the run. It is a
// thin one-shot wrapper over the streaming core: a private Pipeline is
// started, the jobs are streamed through it, and it is torn down again.
// Callers that issue many requests should hold a Pipeline (via Start) and
// call Process instead, keeping the pool and arena warm.
func (e *Engine) Run(jobs []Job) (Stats, error) {
	p, err := e.Start()
	if err != nil {
		return Stats{}, err
	}
	defer p.Close()
	return p.Process(context.Background(), SliceSource(jobs))
}
