package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smol/internal/tensor"
)

func TestMPMCBasicFIFO(t *testing.T) {
	q := NewMPMCQueue[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Take()
		if !ok || v != i {
			t.Fatalf("take %d: got %d ok=%v", i, v, ok)
		}
	}
	q.Close()
	if _, ok := q.Take(); ok {
		t.Fatal("closed empty queue should report !ok")
	}
	if err := q.Put(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
}

func TestMPMCBlockingPut(t *testing.T) {
	q := NewMPMCQueue[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		q.Put(2) // must block until a Take
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Put should have blocked on a full queue")
	case <-time.After(20 * time.Millisecond):
	}
	if v, _ := q.Take(); v != 1 {
		t.Fatalf("got %d", v)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Put did not unblock")
	}
	if q.PutStalls() != 1 {
		t.Fatalf("stalls = %d", q.PutStalls())
	}
}

func TestMPMCConcurrentStress(t *testing.T) {
	const producers, consumers, perProducer = 8, 4, 500
	q := NewMPMCQueue[int](16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put(p*perProducer + i); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	var seen sync.Map
	var count atomic.Int64
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Take()
				if !ok {
					return
				}
				if _, dup := seen.LoadOrStore(v, true); dup {
					t.Errorf("duplicate value %d", v)
				}
				count.Add(1)
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	if count.Load() != producers*perProducer {
		t.Fatalf("consumed %d of %d", count.Load(), producers*perProducer)
	}
}

func TestMPMCTakeUpTo(t *testing.T) {
	q := NewMPMCQueue[int](8)
	for i := 0; i < 5; i++ {
		q.Put(i)
	}
	dst := make([]int, 8)
	n := q.TakeUpTo(dst, 3)
	if n != 3 || dst[0] != 0 || dst[2] != 2 {
		t.Fatalf("n=%d dst=%v", n, dst)
	}
	n = q.TakeUpTo(dst, 8)
	if n != 2 || dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("n=%d dst=%v", n, dst)
	}
	q.Close()
	if n := q.TakeUpTo(dst, 8); n != 0 {
		t.Fatalf("drained closed queue returned %d", n)
	}
}

func TestTensorPoolReuse(t *testing.T) {
	p := NewTensorPool([]int{3, 4, 4}, 2)
	a := p.Get()
	b := p.Get()
	c := p.Get() // beyond warm: fresh allocation
	if a == b || b == c {
		t.Fatal("pool returned the same tensor twice")
	}
	p.Put(a)
	d := p.Get()
	if d != a {
		t.Fatal("pool did not reuse returned tensor")
	}
	allocs, reuses := p.Stats()
	if allocs != 3 || reuses != 3 {
		t.Fatalf("allocs=%d reuses=%d", allocs, reuses)
	}
	// Wrong-shape tensors are rejected silently.
	p.Put(tensor.New(1, 2))
	if got := p.Get(); got == nil || got.Len() != 3*4*4 {
		t.Fatal("foreign tensor leaked into pool")
	}
}

func TestPinnedArenaBlocksWhenExhausted(t *testing.T) {
	a := NewPinnedArena(1, 16)
	buf := a.Acquire()
	acquired := make(chan []float32)
	go func() { acquired <- a.Acquire() }()
	select {
	case <-acquired:
		t.Fatal("Acquire should have blocked")
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(buf)
	select {
	case b := <-acquired:
		if len(b) != 16 {
			t.Fatalf("buffer len %d", len(b))
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire did not unblock")
	}
}

func TestPinnedArenaRejectsForeignBuffer(t *testing.T) {
	a := NewPinnedArena(1, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Release(make([]float32, 4))
}

// runEngine pushes n jobs through an engine whose prep writes a marker and
// whose exec records every index it sees.
func runEngine(t *testing.T, cfg Config, n int) (Stats, *sync.Map) {
	t.Helper()
	cfg.SampleShape = [3]int{3, 8, 8}
	var seen sync.Map
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
		for i := range out.Data {
			out.Data[i] = float32(job.Index)
		}
		return nil
	}
	exec := func(batch *tensor.Tensor, indices []int) error {
		for bi, idx := range indices {
			// Verify the batch content matches the job that produced it.
			if batch.Data[bi*3*8*8] != float32(idx) {
				return fmt.Errorf("batch slot %d has %v, want %d", bi, batch.Data[bi*3*8*8], idx)
			}
			if _, dup := seen.LoadOrStore(idx, true); dup {
				return fmt.Errorf("index %d executed twice", idx)
			}
		}
		return nil
	}
	e, err := New(cfg, prep, exec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	st, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return st, &seen
}

func TestEngineProcessesAllJobsExactlyOnce(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 4, Streams: 2, BatchSize: 16},
		{Workers: 1, Streams: 1, BatchSize: 4},
		{Workers: 3, Streams: 2, BatchSize: 8, Opts: Options{DisableMemReuse: true}},
		{Workers: 3, Streams: 2, BatchSize: 8, Opts: Options{DisablePinned: true}},
		{Workers: 3, Streams: 2, BatchSize: 8, Opts: Options{DisableThreading: true}},
	} {
		n := 257 // deliberately not a batch multiple
		st, seen := runEngine(t, cfg, n)
		if st.Images != n {
			t.Fatalf("cfg %+v: images %d", cfg, st.Images)
		}
		count := 0
		seen.Range(func(k, v any) bool { count++; return true })
		if count != n {
			t.Fatalf("cfg %+v: executed %d of %d", cfg, count, n)
		}
		if st.Batches < n/cfg.BatchSize {
			t.Fatalf("cfg %+v: too few batches %d", cfg, st.Batches)
		}
		if st.Throughput <= 0 {
			t.Fatalf("cfg %+v: bad throughput", cfg)
		}
	}
}

func TestEngineMemReuseReducesAllocations(t *testing.T) {
	cfgReuse := Config{Workers: 4, Streams: 2, BatchSize: 16}
	stReuse, _ := runEngine(t, cfgReuse, 2000)
	if stReuse.PoolReuses == 0 {
		t.Fatal("pooled engine never reused a buffer")
	}
	// Pool allocations should be bounded by pipeline depth, not image count.
	if stReuse.PoolAllocs > 300 {
		t.Fatalf("pooled engine allocated %d buffers for 2000 images", stReuse.PoolAllocs)
	}
}

func TestEnginePrepErrorAborts(t *testing.T) {
	cfg := Config{Workers: 2, Streams: 1, BatchSize: 4, SampleShape: [3]int{3, 4, 4}}
	boom := errors.New("boom")
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
		if job.Index == 10 {
			return boom
		}
		return nil
	}
	exec := func(batch *tensor.Tensor, indices []int) error { return nil }
	e, err := New(cfg, prep, exec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	if _, err := e.Run(jobs); !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestEngineExecErrorAborts(t *testing.T) {
	cfg := Config{Workers: 2, Streams: 2, BatchSize: 4, SampleShape: [3]int{3, 4, 4}}
	boom := errors.New("exec boom")
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error { return nil }
	var calls atomic.Int64
	exec := func(batch *tensor.Tensor, indices []int) error {
		if calls.Add(1) == 3 {
			return boom
		}
		return nil
	}
	e, err := New(cfg, prep, exec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 200)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	if _, err := e.Run(jobs); !errors.Is(err, boom) {
		t.Fatalf("expected exec boom, got %v", err)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(Config{}, nil, nil); err == nil {
		t.Fatal("nil funcs should be rejected")
	}
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error { return nil }
	exec := func(batch *tensor.Tensor, indices []int) error { return nil }
	if _, err := New(Config{SampleShape: [3]int{0, 4, 4}}, prep, exec); err == nil {
		t.Fatal("invalid shape should be rejected")
	}
}

func TestEngineWorkerStateIsolation(t *testing.T) {
	cfg := Config{Workers: 4, Streams: 1, BatchSize: 8, SampleShape: [3]int{3, 4, 4}}
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
		// Each worker increments only its own counter; no locking needed.
		ws.Scratch = ws.Scratch.(int) + 1
		return nil
	}
	exec := func(batch *tensor.Tensor, indices []int) error { return nil }
	e, err := New(cfg, prep, exec)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	total := 0
	e.InitWorker = func(ws *WorkerState) { ws.Scratch = 0 }
	jobs := make([]Job, 500)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	// Wrap prep to harvest counters at the end via a finalizer-style check:
	// instead, run and verify the sum via a second pass.
	if _, err := e.Run(jobs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	_ = total // counters live in worker state; the absence of a race (under
	// -race) is the assertion here.
}

func TestEngineLatencyTracked(t *testing.T) {
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
		time.Sleep(200 * time.Microsecond)
		return nil
	}
	exec := func(batch *tensor.Tensor, indices []int) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	}
	e, err := New(Config{Workers: 2, Streams: 2, BatchSize: 8,
		SampleShape: [3]int{3, 4, 4}}, prep, exec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	st, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanLatency <= 0 || st.MaxLatency <= 0 {
		t.Fatalf("latency not tracked: %+v", st)
	}
	if st.MeanLatency > st.MaxLatency {
		t.Fatalf("mean %v exceeds max %v", st.MeanLatency, st.MaxLatency)
	}
	// Every image at least pays its own preprocessing plus its batch's
	// execution; the max cannot exceed the whole run.
	if st.MeanLatency < 300*time.Microsecond {
		t.Fatalf("mean latency %v below single-image floor", st.MeanLatency)
	}
	if st.MaxLatency > st.Elapsed {
		t.Fatalf("max latency %v exceeds elapsed %v", st.MaxLatency, st.Elapsed)
	}
}

// TestEngineGreedyBatchingBoundsLatency: unlike a strict full-batch
// assembler (what the simulator and the worst-case estimator model), the
// engine's TakeUpTo consumers dispatch whatever is ready. Per-image latency
// must therefore stay far below the full-batch fill time — greedy batching
// is why the analytic estimate is a safe upper bound for the real engine.
func TestEngineGreedyBatchingBoundsLatency(t *testing.T) {
	const prepDelay = 150 * time.Microsecond
	prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
		time.Sleep(prepDelay)
		return nil
	}
	exec := func(b *tensor.Tensor, indices []int) error { return nil }
	const batch = 64
	e, err := New(Config{Workers: 2, Streams: 1, BatchSize: batch,
		SampleShape: [3]int{3, 4, 4}}, prep, exec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 256)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	st, err := e.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// A strict assembler would hold the first image of each batch for
	// batch/workers prep times (~4.8ms here); greedy dispatch should stay
	// well under half of that.
	fill := time.Duration(batch/2) * prepDelay
	if st.MeanLatency >= fill/2 {
		t.Fatalf("mean latency %v suggests full-batch waiting (fill %v)", st.MeanLatency, fill)
	}
}
