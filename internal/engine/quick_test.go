package engine

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"smol/internal/tensor"
)

// TestQuickMPMCConservation: for arbitrary producer/consumer counts,
// capacities, and item counts, every item put is taken exactly once and
// nothing is invented — the queue conserves elements under concurrency.
func TestQuickMPMCConservation(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		producers := 1 + rng.Intn(4)
		consumers := 1 + rng.Intn(4)
		capacity := 1 + rng.Intn(16)
		perProducer := 1 + rng.Intn(200)
		total := producers * perProducer

		q := NewMPMCQueue[int](capacity)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					if err := q.Put(p*perProducer + i); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}(p)
		}
		go func() {
			wg.Wait()
			q.Close()
		}()

		seen := make([]bool, total)
		var mu sync.Mutex
		var cg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			cg.Add(1)
			go func() {
				defer cg.Done()
				for {
					v, ok := q.Take()
					if !ok {
						return
					}
					mu.Lock()
					if v < 0 || v >= total || seen[v] {
						t.Errorf("item %d out of range or duplicated", v)
					} else {
						seen[v] = true
					}
					mu.Unlock()
				}
			}()
		}
		cg.Wait()
		for i, s := range seen {
			if !s {
				t.Logf("seed %d: item %d lost", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMPMCSingleThreadFIFO: with one producer and one consumer the
// queue is strictly FIFO for any interleaving of puts and takes.
func TestQuickMPMCSingleThreadFIFO(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		capacity := 1 + rng.Intn(8)
		q := NewMPMCQueue[int](capacity)
		next := 0   // next value to put
		expect := 0 // next value we must take
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 && q.Len() < capacity {
				if err := q.Put(next); err != nil {
					return false
				}
				next++
			} else if q.Len() > 0 {
				v, ok := q.Take()
				if !ok || v != expect {
					t.Logf("seed %d: took %d want %d", seed, v, expect)
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEngineProcessesEveryJob: for arbitrary worker/stream/batch
// configurations the pipelined engine preprocesses and executes each job
// exactly once, in any order — the engine-level conservation property.
func TestQuickEngineProcessesEveryJob(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		workers := 1 + rng.Intn(4)
		streams := 1 + rng.Intn(3)
		batch := 1 + rng.Intn(16)
		jobs := make([]Job, 1+rng.Intn(150))
		for i := range jobs {
			jobs[i] = Job{Index: i}
		}

		var mu sync.Mutex
		counts := make([]int, len(jobs))
		prep := func(ws *WorkerState, job Job, out *tensor.Tensor) error {
			for i := range out.Data {
				out.Data[i] = float32(job.Index)
			}
			return nil
		}
		exec := func(b *tensor.Tensor, indices []int) error {
			mu.Lock()
			defer mu.Unlock()
			for _, ix := range indices {
				counts[ix]++
			}
			return nil
		}
		e, err := New(Config{Workers: workers, Streams: streams, BatchSize: batch,
			SampleShape: [3]int{3, 8, 8}}, prep, exec)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if _, err := e.Run(jobs); err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		for i, c := range counts {
			if c != 1 {
				t.Logf("seed %d: job %d executed %d times", seed, i, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}
