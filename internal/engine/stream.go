package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"smol/internal/tensor"
)

// ErrPipelineClosed is returned by Process calls issued against a closed
// pipeline, and by requests interrupted when the pipeline shuts down.
var ErrPipelineClosed = errors.New("engine: pipeline closed")

// Ref identifies one sample of an assembled batch back to its submitter:
// the job's Index plus the opaque Tag the job carried. Streaming exec
// callbacks use Refs to route per-sample results to the right concurrent
// request — a batch may interleave samples from several requests.
type Ref struct {
	Index int
	Tag   any
}

// BatchFunc consumes an assembled batch in streaming mode: batch is
// (n, C, H, W) and refs identifies each sample in batch order. It is called
// from multiple stream goroutines concurrently.
type BatchFunc func(batch *tensor.Tensor, refs []Ref) error

// Source yields the jobs of one request, one at a time. Next returns
// ok=false when the stream ends, or a non-nil error to abort the request.
// Next must honour the cancellation of the context its request was
// submitted with (return promptly once the context is done) — SliceSource
// never blocks, and ChanSource binds the context for exactly this reason.
type Source interface {
	Next() (job Job, ok bool, err error)
}

// sliceSource streams a fixed slice of jobs.
type sliceSource struct {
	jobs []Job
	i    int
}

// SliceSource adapts a slice of jobs into a Source.
func SliceSource(jobs []Job) Source { return &sliceSource{jobs: jobs} }

func (s *sliceSource) Next() (Job, bool, error) {
	if s.i >= len(s.jobs) {
		return Job{}, false, nil
	}
	j := s.jobs[s.i]
	s.i++
	return j, true, nil
}

// chanSource streams jobs from a channel until it is closed or ctx is done.
type chanSource struct {
	ctx context.Context
	ch  <-chan Job
}

// ChanSource adapts a receive channel into a Source. Pass the same context
// that is given to Process so Next unblocks when the request is cancelled;
// otherwise close ch to end the stream.
func ChanSource(ctx context.Context, ch <-chan Job) Source {
	return &chanSource{ctx: ctx, ch: ch}
}

func (s *chanSource) Next() (Job, bool, error) {
	select {
	case j, ok := <-s.ch:
		return j, ok, nil
	case <-s.ctx.Done():
		return Job{}, false, s.ctx.Err()
	}
}

// task is one submitted job bound to its originating request.
type task struct {
	job Job
	req *request
}

// request tracks one Process call: its completion accounting, first error,
// and per-request statistics. Items of many requests interleave freely in
// the shared pipeline; the request pointer rides along on each item.
type request struct {
	ctx context.Context

	mu         sync.Mutex
	err        error
	pending    int // submitted but not yet executed or dropped
	feedDone   bool
	doneClosed bool

	// Per-request statistics, guarded by mu.
	submitted int
	executed  int
	batches   int
	latSum    time.Duration
	latMax    time.Duration

	done chan struct{}
}

func newRequest(ctx context.Context) *request {
	return &request{ctx: ctx, done: make(chan struct{})}
}

// fail records the request's first error. Later errors are dropped.
func (r *request) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

func (r *request) firstErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// abandoned reports whether in-flight work for this request should be
// dropped: the request was cancelled or has already failed. A cancelled
// request records the context error here, so dropping work can never be
// mistaken for successful completion.
func (r *request) abandoned() bool {
	if err := r.ctx.Err(); err != nil {
		r.fail(err)
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err != nil
}

// add accounts for one submitted job.
func (r *request) add() {
	r.mu.Lock()
	r.pending++
	r.submitted++
	r.mu.Unlock()
}

// finish accounts for one job leaving the pipeline. executed jobs record
// their end-to-end latency; dropped jobs (abandoned or failed) do not.
func (r *request) finish(executed bool, lat time.Duration) {
	r.mu.Lock()
	r.pending--
	if executed {
		r.executed++
		r.latSum += lat
		if lat > r.latMax {
			r.latMax = lat
		}
	}
	r.maybeCloseLocked()
	r.mu.Unlock()
}

// feedFinished marks that no more jobs will be submitted.
func (r *request) feedFinished() {
	r.mu.Lock()
	r.feedDone = true
	r.maybeCloseLocked()
	r.mu.Unlock()
}

func (r *request) maybeCloseLocked() {
	if r.feedDone && r.pending == 0 && !r.doneClosed {
		r.doneClosed = true
		close(r.done)
	}
}

// Pipeline is the long-lived streaming engine core: resident preprocessing
// workers, batch-assembly streams, tensor pool, and pinned staging arena,
// all shared by every concurrent Process call. One pipeline serves many
// requests; per-request results are routed through each job's Ref.
//
// A Pipeline starts its goroutines lazily on the first Process call and
// runs until Close. Set InitWorker (if needed) before the first Process.
type Pipeline struct {
	cfg  Config
	prep PrepFunc
	exec BatchFunc

	// InitWorker, when non-nil, initializes each worker's scratch state.
	// It must be set before the first Process call.
	InitWorker func(ws *WorkerState)

	// classes is the resolved per-shape-class geometry; pools, arenas and
	// queues are parallel to it. Jobs name their class via Job.Class, and
	// each class gets its own batch-assembly streams, so batches never mix
	// sample shapes and every class keeps an allocation-free warm path.
	classes []classGeom
	pools   []*TensorPool
	arenas  []*PinnedArena
	queues  []*MPMCQueue[item]
	subs    chan task
	stop    chan struct{}

	startOnce sync.Once
	started   atomic.Bool
	closeOnce sync.Once
	wgWorkers sync.WaitGroup
	wgStreams sync.WaitGroup

	// mu/closed/feeders coordinate shutdown with in-flight Process calls:
	// Close waits for every registered feeder to stop submitting before it
	// drains the submission channel, so no task can slip in after the drain
	// and strand its request.
	mu      sync.Mutex
	closed  bool
	feeders sync.WaitGroup

	batches atomic.Int64 // lifetime batches dispatched
}

// classGeom is the resolved geometry of one shape class: its sample shape,
// batch size, and queue capacity.
type classGeom struct {
	shape     [3]int
	sampleLen int
	batch     int
	queueCap  int
}

// classGeoms resolves Config.Shapes/BatchSizes (falling back to the
// single-shape SampleShape/BatchSize) into per-class geometry.
func classGeoms(cfg Config) ([]classGeom, error) {
	shapes := cfg.Shapes
	if len(shapes) == 0 {
		shapes = [][3]int{cfg.SampleShape}
	}
	if len(cfg.BatchSizes) > len(shapes) {
		return nil, fmt.Errorf("engine: %d batch sizes for %d shape classes",
			len(cfg.BatchSizes), len(shapes))
	}
	out := make([]classGeom, len(shapes))
	for i, s := range shapes {
		if s[0] <= 0 || s[1] <= 0 || s[2] <= 0 {
			return nil, fmt.Errorf("engine: invalid sample shape %v (class %d)", s, i)
		}
		batch := cfg.BatchSize
		if i < len(cfg.BatchSizes) && cfg.BatchSizes[i] > 0 {
			batch = cfg.BatchSizes[i]
		}
		qc := cfg.QueueCap
		if qc < batch {
			qc = 4 * batch
		}
		out[i] = classGeom{shape: s, sampleLen: s[0] * s[1] * s[2], batch: batch, queueCap: qc}
	}
	return out, nil
}

// NewPipeline constructs a streaming pipeline. prep runs on the resident
// worker goroutines; exec consumes assembled batches and routes per-sample
// results via refs.
func NewPipeline(cfg Config, prep PrepFunc, exec BatchFunc) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if prep == nil || exec == nil {
		return nil, fmt.Errorf("engine: prep and exec functions are required")
	}
	classes, err := classGeoms(cfg)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:     cfg,
		prep:    prep,
		exec:    exec,
		classes: classes,
		subs:    make(chan task, classes[0].queueCap),
		stop:    make(chan struct{}),
	}
	for _, g := range classes {
		shape := []int{g.shape[0], g.shape[1], g.shape[2]}
		p.pools = append(p.pools, NewTensorPool(shape, g.queueCap+cfg.Workers+cfg.Streams*g.batch))
		p.arenas = append(p.arenas, NewPinnedArena(cfg.Streams+1, g.batch*g.sampleLen))
		p.queues = append(p.queues, NewMPMCQueue[item](g.queueCap))
	}
	return p, nil
}

// start spawns the resident workers and per-class streams exactly once.
func (p *Pipeline) start() {
	p.startOnce.Do(func() {
		p.started.Store(true)
		for w := 0; w < p.cfg.Workers; w++ {
			p.wgWorkers.Add(1)
			go p.runWorker(w)
		}
		for c := range p.classes {
			for s := 0; s < p.cfg.Streams; s++ {
				p.wgStreams.Add(1)
				go p.runStream(c)
			}
		}
	})
}

// addFeeder registers a Process call as an active submitter. It fails once
// Close has begun.
func (p *Pipeline) addFeeder() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.feeders.Add(1)
	return true
}

// Close shuts the pipeline down: feeders stop submitting, workers finish
// their current job, the queue drains through the streams, and all resident
// goroutines exit. Close blocks until shutdown completes. Jobs that were
// submitted but never picked up fail their requests with ErrPipelineClosed;
// jobs already preprocessed still execute.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		close(p.stop)
		p.feeders.Wait()
		if p.started.Load() {
			p.wgWorkers.Wait()
			// Fail tasks the workers never picked up.
			for {
				select {
				case t := <-p.subs:
					t.req.fail(ErrPipelineClosed)
					t.req.finish(false, 0)
					continue
				default:
				}
				break
			}
			for _, q := range p.queues {
				q.Close()
			}
			p.wgStreams.Wait()
		}
	})
}

// newBuf fetches a sample buffer of one shape class, honouring the
// memory-reuse toggle. The caller owns the buffer and must hand it back
// through recycle on every path.
//
//smol:owns
//smol:acquire tensorbuf
func (p *Pipeline) newBuf(class int) *tensor.Tensor {
	if p.cfg.Opts.DisableMemReuse {
		s := p.classes[class].shape
		return tensor.New(s[0], s[1], s[2])
	}
	return p.pools[class].Get()
}

// recycle returns a sample buffer to its class pool (no-op when reuse is
// off).
//
//smol:release tensorbuf
func (p *Pipeline) recycle(class int, buf *tensor.Tensor) {
	if !p.cfg.Opts.DisableMemReuse {
		p.pools[class].Put(buf)
	}
}

// poolStats sums allocation/reuse counters across the class pools.
func (p *Pipeline) poolStats() (allocs, reuses int) {
	for _, pool := range p.pools {
		a, r := pool.Stats()
		allocs += a
		reuses += r
	}
	return allocs, reuses
}

// queueStalls sums full-queue Put stalls across the class queues.
func (p *Pipeline) queueStalls() int {
	total := 0
	for _, q := range p.queues {
		total += q.PutStalls()
	}
	return total
}

func (p *Pipeline) runWorker(id int) {
	defer p.wgWorkers.Done()
	ws := &WorkerState{ID: id}
	if p.InitWorker != nil {
		p.InitWorker(ws)
	}
	for {
		select {
		case <-p.stop:
			return
		case t := <-p.subs:
			p.prepOne(ws, t)
		}
	}
}

// prepOne preprocesses one submitted job and enqueues it for batching.
// Failures are confined to the job's request: the pipeline keeps serving
// other requests. A successfully enqueued item carries its buffer's
// ownership to the class stream, which recycles it after batch assembly.
//
//smol:owns
func (p *Pipeline) prepOne(ws *WorkerState, t task) {
	req := t.req
	if req.abandoned() {
		req.finish(false, 0)
		return
	}
	class := t.job.Class
	prepStart := time.Now()
	buf := p.newBuf(class)
	if err := p.prep(ws, t.job, buf); err != nil {
		p.recycle(class, buf)
		req.fail(fmt.Errorf("engine: job %d: %w", t.job.Index, err))
		req.finish(false, 0)
		return
	}
	it := item{index: t.job.Index, tag: t.job.Tag, buf: buf, start: prepStart, req: req}
	if err := p.queues[class].Put(it); err != nil {
		// Pipeline shutting down underneath the request.
		p.recycle(class, buf)
		req.fail(ErrPipelineClosed)
		req.finish(false, 0)
	}
}

// runStream assembles and executes batches for one shape class. Per-class
// streams mean a batch only ever carries samples of its class's geometry.
func (p *Pipeline) runStream(class int) {
	defer p.wgStreams.Done()
	cfg := p.cfg
	g := p.classes[class]
	shape := g.shape
	sampleLen := g.sampleLen
	queue := p.queues[class]
	arena := p.arenas[class]
	items := make([]item, g.batch)
	refs := make([]Ref, g.batch)
	for {
		n := queue.TakeUpTo(items, g.batch)
		if n == 0 {
			return // closed and drained
		}
		// Drop items whose requests were cancelled or already failed,
		// returning their buffers to the pool.
		m := 0
		for i := 0; i < n; i++ {
			if items[i].req.abandoned() {
				p.recycle(class, items[i].buf)
				items[i].req.finish(false, 0)
				items[i].buf = nil
				continue
			}
			items[m] = items[i]
			m++
		}
		if m == 0 {
			continue
		}
		// Stage the batch. The pinned path reuses arena buffers; the
		// unpinned path pays a fresh allocation plus an extra copy, as
		// DALI-to-TensorRT style integrations require.
		var staging []float32
		if cfg.Opts.DisablePinned {
			staging = make([]float32, g.batch*sampleLen)
			tmp := make([]float32, m*sampleLen)
			for i := 0; i < m; i++ {
				copy(tmp[i*sampleLen:], items[i].buf.Data)
			}
			copy(staging, tmp)
		} else {
			staging = arena.Acquire()
			for i := 0; i < m; i++ {
				copy(staging[i*sampleLen:], items[i].buf.Data)
			}
		}
		for i := 0; i < m; i++ {
			refs[i] = Ref{Index: items[i].index, Tag: items[i].tag}
			p.recycle(class, items[i].buf)
			items[i].buf = nil
		}
		batch := tensor.FromData(staging[:m*sampleLen], m, shape[0], shape[1], shape[2])
		err := p.exec(batch, refs[:m])
		if !cfg.Opts.DisablePinned {
			arena.Release(staging)
		}
		p.batches.Add(1)
		done := time.Now()
		if err != nil {
			// An exec failure poisons every request with a sample in this
			// batch, but the pipeline itself keeps serving.
			wrapped := fmt.Errorf("engine: exec: %w", err)
			for i := 0; i < m; i++ {
				items[i].req.fail(wrapped)
			}
			for i := 0; i < m; i++ {
				items[i].req.finish(false, 0)
			}
			continue
		}
		// Count each distinct request once per batch, then complete items.
		for i := 0; i < m; i++ {
			first := true
			for j := 0; j < i; j++ {
				if items[j].req == items[i].req {
					first = false
					break
				}
			}
			if first {
				items[i].req.mu.Lock()
				items[i].req.batches++
				items[i].req.mu.Unlock()
			}
		}
		for i := 0; i < m; i++ {
			items[i].req.finish(true, done.Sub(items[i].start))
		}
	}
}

// Process streams one request's jobs through the shared pipeline and blocks
// until every job has executed, the context is cancelled, or a stage fails.
// Many Process calls may run concurrently against one pipeline; they share
// the warm workers, tensor pool, and staging arena, and their samples may
// share batches.
//
// On cancellation Process returns promptly with the context's error;
// already-submitted jobs are dropped at the next pipeline stage and their
// buffers returned to the pool.
func (p *Pipeline) Process(ctx context.Context, src Source) (Stats, error) {
	if !p.addFeeder() {
		return Stats{}, ErrPipelineClosed
	}
	p.start()

	req := newRequest(ctx)
	start := time.Now()

feed:
	for {
		job, ok, err := src.Next()
		if err != nil {
			req.fail(err)
			break
		}
		if !ok {
			break
		}
		if job.Class < 0 || job.Class >= len(p.classes) {
			req.fail(fmt.Errorf("engine: job %d: shape class %d out of range [0,%d)",
				job.Index, job.Class, len(p.classes)))
			break
		}
		req.add()
		select {
		case p.subs <- task{job: job, req: req}:
		case <-ctx.Done():
			req.finish(false, 0) // never submitted
			req.fail(ctx.Err())
			break feed
		case <-p.stop:
			req.finish(false, 0)
			req.fail(ErrPipelineClosed)
			break feed
		}
		if req.firstErr() != nil {
			break // a stage already failed; stop feeding
		}
	}
	req.feedFinished()
	p.feeders.Done()

	select {
	case <-req.done:
	case <-ctx.Done():
		req.fail(ctx.Err())
	}
	if err := req.firstErr(); err != nil {
		return Stats{}, err
	}

	elapsed := time.Since(start)
	allocs, reuses := p.poolStats()
	req.mu.Lock()
	st := Stats{
		Images:          req.submitted,
		Elapsed:         elapsed,
		Batches:         req.batches,
		QueueFullStalls: p.queueStalls(),
		PoolAllocs:      allocs,
		PoolReuses:      reuses,
		MaxLatency:      req.latMax,
	}
	if req.executed > 0 {
		st.MeanLatency = req.latSum / time.Duration(req.executed)
	}
	executed := req.executed
	req.mu.Unlock()
	if elapsed > 0 {
		st.Throughput = float64(executed) / elapsed.Seconds()
	}
	return st, nil
}
