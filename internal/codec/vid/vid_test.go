package vid

import (
	"errors"
	"math"
	"testing"

	"smol/internal/img"
)

// syntheticVideo renders n frames of a bright square moving across a smooth
// gradient background — easy motion for the codec to chase.
func syntheticVideo(w, h, n int) []*img.Image {
	frames := make([]*img.Image, n)
	for t := 0; t < n; t++ {
		m := img.New(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				m.Set(x, y, uint8(x*255/w), uint8(y*255/h), 60)
			}
		}
		// Moving square, sized to fit small frames.
		side := 12
		if side > w/2 {
			side = w / 2
		}
		if side > h/2 {
			side = h / 2
		}
		sx := (t * 3) % (w - side)
		sy := (t * 2) % (h - side)
		for y := sy; y < sy+side; y++ {
			for x := sx; x < sx+side; x++ {
				m.Set(x, y, 250, 240, 20)
			}
		}
		frames[t] = m
	}
	return frames
}

func avgPSNR(t *testing.T, orig, dec []*img.Image) float64 {
	t.Helper()
	if len(orig) != len(dec) {
		t.Fatalf("frame count %d != %d", len(dec), len(orig))
	}
	var s float64
	for i := range orig {
		p := img.PSNR(orig[i], dec[i])
		if p > 99 {
			p = 99 // cap infinities
		}
		s += p
	}
	return s / float64(len(orig))
}

func TestRoundTripQuality(t *testing.T) {
	frames := syntheticVideo(64, 48, 20)
	data, err := Encode(frames, EncodeOptions{Quality: 90, GOP: 10})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAll(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p := avgPSNR(t, frames, dec); p < 30 {
		t.Fatalf("q90 avg PSNR = %v", p)
	}
}

func TestQualityOrdering(t *testing.T) {
	frames := syntheticVideo(48, 48, 10)
	enc := func(q int) ([]byte, float64) {
		data, err := Encode(frames, EncodeOptions{Quality: q, GOP: 5})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeAll(data, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return data, avgPSNR(t, frames, dec)
	}
	d90, p90 := enc(90)
	d40, p40 := enc(40)
	if p90 <= p40 {
		t.Fatalf("PSNR ordering: q90=%v q40=%v", p90, p40)
	}
	if len(d90) <= len(d40) {
		t.Fatalf("size ordering: q90=%d q40=%d", len(d90), len(d40))
	}
}

func TestPFramesCompressBetterThanAllIntra(t *testing.T) {
	frames := syntheticVideo(64, 64, 30)
	withP, err := Encode(frames, EncodeOptions{Quality: 70, GOP: 30})
	if err != nil {
		t.Fatal(err)
	}
	allI, err := Encode(frames, EncodeOptions{Quality: 70, GOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(withP) >= len(allI) {
		t.Fatalf("P-frames (%d bytes) should beat all-intra (%d bytes)", len(withP), len(allI))
	}
}

func TestDecoderMetadata(t *testing.T) {
	frames := syntheticVideo(50, 34, 7)
	data, err := Encode(frames, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 50 || d.Height() != 34 || d.NumFrames() != 7 {
		t.Fatalf("metadata %dx%d n=%d", d.Width(), d.Height(), d.NumFrames())
	}
}

func TestStreamingDecode(t *testing.T) {
	frames := syntheticVideo(32, 32, 5)
	data, err := Encode(frames, EncodeOptions{Quality: 80, GOP: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		f, err := d.Next()
		if errors.Is(err, ErrEndOfStream) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.W != 32 || f.H != 32 {
			t.Fatalf("frame dims %dx%d", f.W, f.H)
		}
		count++
	}
	if count != 5 {
		t.Fatalf("decoded %d frames", count)
	}
	if d.Stats().FramesDecoded != 5 {
		t.Fatalf("stats %+v", d.Stats())
	}
}

func TestDisableDeblockReducesFidelityAndWork(t *testing.T) {
	frames := syntheticVideo(64, 64, 24)
	data, err := Encode(frames, EncodeOptions{Quality: 55, GOP: 24})
	if err != nil {
		t.Fatal(err)
	}
	dWith, err := NewDecoder(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var decWith []*img.Image
	for {
		f, err := dWith.Next()
		if errors.Is(err, ErrEndOfStream) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		decWith = append(decWith, f)
	}
	dWithout, err := NewDecoder(data, DecodeOptions{DisableDeblock: true})
	if err != nil {
		t.Fatal(err)
	}
	var decWithout []*img.Image
	for {
		f, err := dWithout.Next()
		if errors.Is(err, ErrEndOfStream) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		decWithout = append(decWithout, f)
	}
	if dWith.Stats().DeblockedEdges == 0 {
		t.Fatal("deblocking filter never fired")
	}
	if dWithout.Stats().DeblockedEdges != 0 {
		t.Fatal("disabled deblock still filtered edges")
	}
	pWith := avgPSNR(t, frames, decWith)
	pWithout := avgPSNR(t, frames, decWithout)
	// Skipping the in-loop filter must not improve fidelity (it drifts from
	// the encoder's reference).
	if pWithout > pWith+0.01 {
		t.Fatalf("no-deblock PSNR %v unexpectedly above deblocked %v", pWithout, pWith)
	}
}

func TestSkipModeFires(t *testing.T) {
	// A completely static video should be nearly all skip macroblocks after
	// the first frame.
	static := make([]*img.Image, 10)
	base := img.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			base.Set(x, y, 100, 150, uint8(x*2))
		}
	}
	for i := range static {
		static[i] = base.Clone()
	}
	data, err := Encode(static, EncodeOptions{Quality: 70, GOP: 10})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := d.Next(); errors.Is(err, ErrEndOfStream) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	// In-loop deblocking perturbs the reference near block edges, so interior
	// macroblocks skip but edge-adjacent ones may carry small residuals; a
	// majority of skips is the meaningful assertion.
	totalPMBs := 9 * (64 / 16) * (64 / 16)
	if st.SkippedMBs < totalPMBs/2 {
		t.Fatalf("skip MBs = %d of %d P-frame MBs", st.SkippedMBs, totalPMBs)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(nil, EncodeOptions{}); err == nil {
		t.Fatal("expected error for empty input")
	}
	a := img.New(10, 10)
	b := img.New(11, 10)
	if _, err := Encode([]*img.Image{a, b}, EncodeOptions{}); err == nil {
		t.Fatal("expected error for mismatched dims")
	}
}

func TestDecodeErrors(t *testing.T) {
	frames := syntheticVideo(32, 32, 3)
	data, err := Encode(frames, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(nil, DecodeOptions{}); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := NewDecoder([]byte("XXXX0123456789012345678"), DecodeOptions{}); err == nil {
		t.Fatal("expected error for bad magic")
	}
	// Truncate mid-stream: decoding should fail, not hang or panic.
	d, err := NewDecoder(data[:len(data)-10], DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := d.Next()
		if err != nil {
			if errors.Is(err, ErrEndOfStream) {
				t.Fatal("truncated stream decoded to completion")
			}
			break
		}
	}
}

func TestOddDimensions(t *testing.T) {
	for _, dims := range [][2]int{{17, 9}, {16, 16}, {33, 31}} {
		frames := syntheticVideo(dims[0], dims[1], 4)
		data, err := Encode(frames, EncodeOptions{Quality: 85, GOP: 2})
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		dec, err := DecodeAll(data, DecodeOptions{})
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if len(dec) != 4 || dec[0].W != dims[0] || dec[0].H != dims[1] {
			t.Fatalf("%v: got %d frames of %dx%d", dims, len(dec), dec[0].W, dec[0].H)
		}
	}
}

func TestMotionSearchFindsShift(t *testing.T) {
	// ref shifted right by 3 pixels: the search should find mv=(3,0) and a
	// zero SAD. Three-step search is a local method, so the test content is
	// smooth (as in natural video); on white noise TSS legitimately stalls
	// in local minima, just like production encoders.
	ref := newPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			ref.pix[y*64+x] = uint8(128 + 100*math.Sin(float64(x)/5)*math.Cos(float64(y)/7))
		}
	}
	cur := newPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur.pix[y*64+x] = ref.at(x+3, y)
		}
	}
	mvx, mvy, sad := motionSearch(cur, ref, 16, 16)
	if mvx != 3 || mvy != 0 {
		t.Fatalf("mv = (%d,%d), want (3,0)", mvx, mvy)
	}
	if sad != 0 {
		t.Fatalf("sad = %d, want 0", sad)
	}
}

func TestQuantFor(t *testing.T) {
	if quantFor(100) != 2 {
		t.Fatalf("quantFor(100) = %d", quantFor(100))
	}
	if quantFor(1) <= quantFor(50) {
		t.Fatal("lower quality must quantize more coarsely")
	}
	if quantFor(0) != quantFor(60) {
		t.Fatal("zero quality should default to 60")
	}
}
