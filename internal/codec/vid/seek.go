package vid

import (
	"encoding/binary"
	"fmt"
)

// GOPEntry locates one group of pictures inside an encoded stream: the byte
// offset of its I-frame record, the stream position of that frame, and how
// many frames the group holds. The codec is closed-loop and an I-frame
// carries no references, so every GOP is an independent decode unit — a
// decoder dropped at Offset with empty reference state reconstructs the
// group bit-identically to a sequential decode.
type GOPEntry struct {
	// Offset is the byte offset of the I-frame record header ([type][len])
	// from the start of the stream.
	Offset int64
	// FirstFrame is the stream index of the GOP's I-frame.
	FirstFrame int
	// Frames is the number of frames in the group (the last group may be
	// shorter than the stream's nominal GOP interval).
	Frames int
	// W, H are the decoded (visible) frame dimensions. Every GOP of a
	// stream shares the header geometry; they are recorded per entry so a
	// persisted index is self-describing.
	W, H int
}

// IndexGOPs scans a stream's record headers and returns its GOP table. The
// scan reads five bytes per frame (type + payload length) and never
// inflates or decodes a payload, so indexing is O(frames) pointer hops —
// cheap enough to run at ingest and persist beside the stream.
func IndexGOPs(data []byte) ([]GOPEntry, error) {
	d, err := NewDecoder(data, DecodeOptions{})
	if err != nil {
		return nil, err
	}
	return scanGOPs(d)
}

// scanGOPs walks the record headers of a freshly positioned decoder.
func scanGOPs(d *Decoder) ([]GOPEntry, error) {
	index := make([]GOPEntry, 0, (d.n+maxInt(d.gop, 1)-1)/maxInt(d.gop, 1))
	pos := 4 + 18
	for i := 0; i < d.n; i++ {
		if pos+5 > len(d.data) {
			return nil, fmt.Errorf("vid: truncated frame header at frame %d", i)
		}
		ftype := d.data[pos]
		plen := int(binary.BigEndian.Uint32(d.data[pos+1:]))
		switch ftype {
		case 'I':
			index = append(index, GOPEntry{
				Offset: int64(pos), FirstFrame: i, W: d.w, H: d.h,
			})
		case 'P':
			if len(index) == 0 {
				return nil, fmt.Errorf("vid: frame %d is a P-frame before any I-frame", i)
			}
		default:
			return nil, fmt.Errorf("vid: unknown frame type %q at frame %d", ftype, i)
		}
		index[len(index)-1].Frames++
		pos += 5 + plen
		if pos > len(d.data) {
			return nil, fmt.Errorf("vid: truncated frame payload at frame %d", i)
		}
	}
	return index, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SetGOPIndex installs a previously computed GOP table (e.g. one persisted
// by a media store at ingest), saving the header scan. The table must
// describe exactly this stream.
func (d *Decoder) SetGOPIndex(index []GOPEntry) error {
	total := 0
	for i, e := range index {
		if e.Offset < 4+18 || e.Offset >= int64(len(d.data)) {
			return fmt.Errorf("vid: GOP %d offset %d outside stream", i, e.Offset)
		}
		if e.FirstFrame != total || e.Frames <= 0 {
			return fmt.Errorf("vid: GOP %d covers frames [%d,%d) but the table reaches %d", i, e.FirstFrame, e.FirstFrame+e.Frames, total)
		}
		total += e.Frames
	}
	if total != d.n {
		return fmt.Errorf("vid: GOP index covers %d frames, stream has %d", total, d.n)
	}
	d.index = index
	return nil
}

// GOPIndex returns the stream's GOP table, scanning the record headers on
// first use (SetGOPIndex skips the scan). The returned slice is shared; do
// not mutate it.
func (d *Decoder) GOPIndex() ([]GOPEntry, error) {
	if d.index == nil {
		index, err := scanGOPs(d)
		if err != nil {
			return nil, err
		}
		d.index = index
	}
	return d.index, nil
}

// SeekGOP repositions the decoder at the start of GOP g: the next decoded
// frame is that group's I-frame. The reference frame is released (parked
// for recycling — an I-frame needs none), so the decode that follows is
// bit-identical to a sequential decode arriving at the same frame. Frames
// jumped over are counted in DecodeStats.FramesBypassed; they are never
// inflated or motion-compensated.
//
//smol:noalloc
func (d *Decoder) SeekGOP(g int) error {
	index, err := d.GOPIndex()
	if err != nil {
		return err
	}
	if g < 0 || g >= len(index) {
		//smol:coldpath caller error
		return fmt.Errorf("vid: GOP %d out of range [0,%d)", g, len(index))
	}
	e := index[g]
	if e.FirstFrame > d.idx {
		d.stats.FramesBypassed += e.FirstFrame - d.idx
	}
	d.pos = int(e.Offset)
	d.idx = e.FirstFrame
	if d.ref != nil {
		// Park the released reference rather than dropping it: reconFrame
		// recycles it, keeping a seeking decoder allocation-free.
		if d.spare == nil {
			d.spare = d.ref
		} else {
			d.parked = d.ref
		}
		d.ref = nil
	}
	d.stats.GOPSeeks++
	return nil
}

// SeekFrame positions the decoder so the next decoded frame is frame n,
// using the cheapest legal route: if n lies in the current GOP at or ahead
// of the decoder position, the intervening frames are reference material
// and are skip-decoded; otherwise the decoder jumps straight to n's GOP
// (bypassing every record in between) and skip-decodes only within the
// group. Backward seeks never replay the stream prefix.
//
//smol:noalloc
func (d *Decoder) SeekFrame(n int) error {
	if n < 0 || n >= d.n {
		//smol:coldpath caller error
		return fmt.Errorf("vid: frame %d out of range [0,%d)", n, d.n)
	}
	index, err := d.GOPIndex()
	if err != nil {
		return err
	}
	// Binary search for the GOP containing n: the greatest g with
	// FirstFrame <= n.
	lo, hi := 0, len(index)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if index[mid].FirstFrame <= n {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	e := index[lo]
	if d.idx > n || d.idx < e.FirstFrame || (d.ref == nil && d.idx != e.FirstFrame) {
		// Behind the target's I-frame, past the target, or mid-GOP without a
		// reference (a prior seek landed here and nothing was decoded yet):
		// jump to the containing GOP.
		if err := d.SeekGOP(lo); err != nil {
			return err
		}
	}
	// The remaining frames are n's reference chain; decode them without RGB
	// conversion.
	for d.idx < n {
		if err := d.Skip(); err != nil {
			return err
		}
	}
	return nil
}
