package vid

import (
	"bytes"
	"errors"
	"testing"

	"smol/internal/analysis/alloctest"
	"smol/internal/img"
)

// TestIndexGOPs: the header-only scan must recover exactly the GOP
// structure the encoder emitted, across regular streams, a last partial
// GOP, all-intra (GOP=1) streams, and streams shorter than one GOP.
func TestIndexGOPs(t *testing.T) {
	cases := []struct {
		name        string
		frames, gop int
	}{
		{"regular", 12, 4},
		{"last-partial", 13, 5},
		{"all-intra", 6, 1},
		{"single-gop", 4, 30},
		{"one-frame", 1, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := testClipGOP(t, tc.frames, 48, 32, tc.gop)
			index, err := IndexGOPs(enc)
			if err != nil {
				t.Fatal(err)
			}
			wantGroups := (tc.frames + tc.gop - 1) / tc.gop
			if len(index) != wantGroups {
				t.Fatalf("%d GOPs indexed, want %d", len(index), wantGroups)
			}
			total := 0
			for g, e := range index {
				if e.FirstFrame != g*tc.gop {
					t.Fatalf("GOP %d starts at frame %d, want %d", g, e.FirstFrame, g*tc.gop)
				}
				if e.W != 48 || e.H != 32 {
					t.Fatalf("GOP %d dims %dx%d, want 48x32", g, e.W, e.H)
				}
				if enc[e.Offset] != 'I' {
					t.Fatalf("GOP %d offset %d points at %q, want an I-frame record", g, e.Offset, enc[e.Offset])
				}
				total += e.Frames
			}
			if total != tc.frames {
				t.Fatalf("index covers %d frames, stream has %d", total, tc.frames)
			}
			last := index[len(index)-1]
			if want := tc.frames - (wantGroups-1)*tc.gop; last.Frames != want {
				t.Fatalf("last GOP holds %d frames, want %d", last.Frames, want)
			}
		})
	}
	if _, err := IndexGOPs([]byte("not a video")); err == nil {
		t.Fatal("indexing garbage should error")
	}
}

// TestSeekGOPDecodeEquivalence: dropping a decoder at any GOP boundary and
// decoding the whole group must be bit-identical to a sequential decode of
// the stream — the GOP is an independent decode unit. Covers every GOP of a
// last-partial stream plus the GOP=1 and single-GOP extremes, with the
// deblocking filter both on and off.
func TestSeekGOPDecodeEquivalence(t *testing.T) {
	cases := []struct {
		name        string
		frames, gop int
	}{
		{"last-partial", 13, 5},
		{"all-intra", 6, 1},
		{"single-gop", 4, 30},
	}
	for _, tc := range cases {
		for _, deblock := range []bool{true, false} {
			opts := DecodeOptions{DisableDeblock: !deblock}
			enc := testClipGOP(t, tc.frames, 64, 48, tc.gop)
			all, err := DecodeAll(enc, opts)
			if err != nil {
				t.Fatal(err)
			}
			index, err := IndexGOPs(enc)
			if err != nil {
				t.Fatal(err)
			}
			for g, e := range index {
				dec, err := NewDecoder(enc, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := dec.SeekGOP(g); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < e.Frames; i++ {
					got, err := dec.Next()
					if err != nil {
						t.Fatalf("%s deblock=%v GOP %d frame %d: %v", tc.name, deblock, g, i, err)
					}
					if !bytes.Equal(got.Pix, all[e.FirstFrame+i].Pix) {
						t.Fatalf("%s deblock=%v: GOP %d frame %d diverges from sequential decode", tc.name, deblock, g, i)
					}
				}
				if stats := dec.Stats(); stats.FramesBypassed != e.FirstFrame || stats.GOPSeeks != 1 {
					t.Fatalf("GOP %d stats %+v: want %d bypassed, 1 seek", g, stats, e.FirstFrame)
				}
			}
		}
	}
}

// TestSeekFrameEquivalence: random access through SeekFrame — forward,
// backward, within-GOP, cross-GOP, and repeated positions — must hand back
// frames bit-identical to a sequential decode, while never decoding frames
// outside each target's reference chain.
func TestSeekFrameEquivalence(t *testing.T) {
	const frames, gop = 23, 5
	enc := testClipGOP(t, frames, 64, 48, gop)
	all, err := DecodeAll(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Forward cross-GOP, backward, same frame again, within-GOP forward,
	// the last frame of the last (partial) GOP, then frame 0.
	targets := []int{0, 12, 3, 3, 4, 22, 0, 21, 10}
	decoded := 0
	for _, n := range targets {
		if err := dec.SeekFrame(n); err != nil {
			t.Fatal(err)
		}
		got, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Pix, all[n].Pix) {
			t.Fatalf("frame %d via SeekFrame diverges from sequential decode", n)
		}
		// Each access decodes at most the target's in-GOP reference chain.
		chain := n%gop + 1
		decoded += chain
	}
	stats := dec.Stats()
	if stats.FramesDecoded > decoded {
		t.Fatalf("%d frames decoded, reference chains only need %d", stats.FramesDecoded, decoded)
	}
	if stats.GOPSeeks == 0 || stats.FramesBypassed == 0 {
		t.Fatalf("random access reported no seek work: %+v", stats)
	}
	if err := dec.SeekFrame(frames); err == nil {
		t.Fatal("seeking past the end should error")
	}
	if err := dec.SeekFrame(-1); err == nil {
		t.Fatal("seeking to a negative frame should error")
	}
}

// TestSeekFrameStrideMatchesSkip: sampling every stride-th frame through
// SeekFrame must match the Skip-based sequential sampler bit-for-bit while
// bypassing the GOPs no sample lands in.
func TestSeekFrameStrideMatchesSkip(t *testing.T) {
	const frames, gop, stride = 61, 4, 12
	enc := testClipGOP(t, frames, 64, 48, gop)
	skipDec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seekDec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < frames; n += stride {
		for skipped := n - stride + 1; skipped < n; skipped++ {
			if skipped >= 0 {
				if err := skipDec.Skip(); err != nil {
					t.Fatal(err)
				}
			}
		}
		want, err := skipDec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := seekDec.SeekFrame(n); err != nil {
			t.Fatal(err)
		}
		got, err := seekDec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Pix, want.Pix) {
			t.Fatalf("frame %d: seek sampling diverges from skip sampling", n)
		}
	}
	seq := skipDec.Stats().FramesDecoded
	seek := seekDec.Stats().FramesDecoded
	if seek >= seq {
		t.Fatalf("seek sampling decoded %d frames, skip sampling %d — seek saved nothing", seek, seq)
	}
	// Every frame up to the last sample is either decoded or bypassed.
	last := ((frames - 1) / stride) * stride
	if got := seek + seekDec.Stats().FramesBypassed; got != last+1 {
		t.Fatalf("decoded+bypassed = %d, want %d", got, last+1)
	}
}

// TestSetGOPIndex: an injected (persisted) index must behave exactly like a
// scanned one, and malformed tables are rejected.
func TestSetGOPIndex(t *testing.T) {
	enc := testClipGOP(t, 11, 48, 32, 4)
	index, err := IndexGOPs(enc)
	if err != nil {
		t.Fatal(err)
	}
	all, err := DecodeAll(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetGOPIndex(index); err != nil {
		t.Fatal(err)
	}
	if err := dec.SeekFrame(9); err != nil {
		t.Fatal(err)
	}
	got, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, all[9].Pix) {
		t.Fatal("injected index produced a divergent frame")
	}

	bad := append([]GOPEntry(nil), index...)
	bad[1].FirstFrame++
	dec2, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec2.SetGOPIndex(bad); err == nil {
		t.Fatal("a gapped GOP table should be rejected")
	}
	if err := dec2.SetGOPIndex(index[:1]); err == nil {
		t.Fatal("a short GOP table should be rejected")
	}
}

// TestSeekWarmPathAllocates: a warm decoder sampling via SeekFrame — the
// store-backed hot path — must stay allocation-free: the parked reference
// frame recycles through reconFrame, and the lazily built index is reused.
func TestSeekWarmPathAllocates(t *testing.T) {
	// alloctest measures 100+ runs after warm-up; with one seek+decode per
	// run cycling through the clip, a long clip keeps positions varied.
	enc := testClipGOP(t, 120, 64, 48, 6)
	dec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var dst *img.Image
	n := 0
	step := func() {
		if err := dec.SeekFrame(n); err != nil {
			t.Fatal(err)
		}
		m, err := dec.NextInto(dst)
		if err != nil {
			t.Fatal(err)
		}
		dst = m
		n = (n + 37) % 120
	}
	// Warm: build the index, the frame pair, the DEFLATE reader.
	for i := 0; i < 10; i++ {
		step()
	}
	// As with NextInto, tolerate at most one stray allocation per run for
	// flate Reset bookkeeping.
	alloctest.Run(t, "smol/internal/codec/vid.Decoder.SeekFrame", 1, step,
		"smol/internal/codec/vid.Decoder.SeekGOP")
}

// TestSeekAfterEndOfStream: a decoder that ran off the end must be
// reusable: seeking back repositions it without a rebuild.
func TestSeekAfterEndOfStream(t *testing.T) {
	enc := testClipGOP(t, 9, 48, 32, 3)
	dec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := dec.Next(); err != nil {
			if !errors.Is(err, ErrEndOfStream) {
				t.Fatal(err)
			}
			break
		}
	}
	if err := dec.SeekFrame(4); err != nil {
		t.Fatal(err)
	}
	all, err := DecodeAll(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, all[4].Pix) {
		t.Fatal("seek after end-of-stream produced a divergent frame")
	}
}
