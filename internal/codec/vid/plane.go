package vid

import "smol/internal/img"

// plane is a single padded 8-bit channel.
type plane struct {
	w, h int
	pix  []uint8
}

func newPlane(w, h int) *plane {
	return &plane{w: w, h: h, pix: make([]uint8, w*h)}
}

func (p *plane) clone() *plane {
	out := &plane{w: p.w, h: p.h, pix: make([]uint8, len(p.pix))}
	copy(out.pix, p.pix)
	return out
}

// at reads with edge clamping.
func (p *plane) at(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= p.w {
		x = p.w - 1
	}
	if y < 0 {
		y = 0
	} else if y >= p.h {
		y = p.h - 1
	}
	return p.pix[y*p.w+x]
}

// frame is a 4:2:0 planar YCbCr frame padded to macroblock multiples.
type frame struct {
	y, cb, cr *plane
}

func newFrame(padW, padH int) *frame {
	return &frame{
		y:  newPlane(padW, padH),
		cb: newPlane(padW/2, padH/2),
		cr: newPlane(padW/2, padH/2),
	}
}

func (f *frame) clone() *frame {
	return &frame{y: f.y.clone(), cb: f.cb.clone(), cr: f.cr.clone()}
}

// rgbToFrame converts an RGB image to padded 4:2:0 planes. Padding uses edge
// replication.
func rgbToFrame(m *img.Image, padW, padH int) *frame {
	f := newFrame(padW, padH)
	// Full-resolution luma and chroma first.
	cbFull := newPlane(padW, padH)
	crFull := newPlane(padW, padH)
	for y := 0; y < padH; y++ {
		sy := y
		if sy >= m.H {
			sy = m.H - 1
		}
		for x := 0; x < padW; x++ {
			sx := x
			if sx >= m.W {
				sx = m.W - 1
			}
			i := (sy*m.W + sx) * 3
			r := float64(m.Pix[i])
			g := float64(m.Pix[i+1])
			b := float64(m.Pix[i+2])
			f.y.pix[y*padW+x] = img.ClampF(0.299*r + 0.587*g + 0.114*b)
			cbFull.pix[y*padW+x] = img.ClampF(128 - 0.168736*r - 0.331264*g + 0.5*b)
			crFull.pix[y*padW+x] = img.ClampF(128 + 0.5*r - 0.418688*g - 0.081312*b)
		}
	}
	// 2x2 box downsample chroma.
	cw := padW / 2
	for y := 0; y < padH/2; y++ {
		for x := 0; x < cw; x++ {
			s := int(cbFull.pix[(2*y)*padW+2*x]) + int(cbFull.pix[(2*y)*padW+2*x+1]) +
				int(cbFull.pix[(2*y+1)*padW+2*x]) + int(cbFull.pix[(2*y+1)*padW+2*x+1])
			f.cb.pix[y*cw+x] = uint8((s + 2) / 4)
			s = int(crFull.pix[(2*y)*padW+2*x]) + int(crFull.pix[(2*y)*padW+2*x+1]) +
				int(crFull.pix[(2*y+1)*padW+2*x]) + int(crFull.pix[(2*y+1)*padW+2*x+1])
			f.cr.pix[y*cw+x] = uint8((s + 2) / 4)
		}
	}
	return f
}

// frameToRGB converts the visible wxh region back to interleaved RGB.
func frameToRGB(f *frame, w, h int) *img.Image {
	return frameToRGBInto(f, w, h, nil)
}

// frameToRGBInto converts into dst, reusing it when the dimensions match
// and allocating a fresh image otherwise (nil is always valid).
func frameToRGBInto(f *frame, w, h int, dst *img.Image) *img.Image {
	m := dst
	if m == nil || m.W != w || m.H != h {
		m = img.New(w, h)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			yy := float64(f.y.pix[y*f.y.w+x])
			cb := float64(f.cb.at(x/2, y/2)) - 128
			cr := float64(f.cr.at(x/2, y/2)) - 128
			i := (y*w + x) * 3
			m.Pix[i] = img.ClampF(yy + 1.402*cr)
			m.Pix[i+1] = img.ClampF(yy - 0.344136*cb - 0.714136*cr)
			m.Pix[i+2] = img.ClampF(yy + 1.772*cb)
		}
	}
	return m
}
