package vid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickRoundTripShape: for arbitrary frame geometry, count, quality,
// and GOP, decode(encode(v)) preserves frame count and dimensions and
// reconstructs with reasonable fidelity.
func TestQuickRoundTripShape(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		w := 16 + rng.Intn(64)
		h := 16 + rng.Intn(64)
		n := 1 + rng.Intn(12)
		q := 40 + rng.Intn(60)
		gop := 1 + rng.Intn(8)
		frames := syntheticVideo(w, h, n)
		data, err := Encode(frames, EncodeOptions{Quality: q, GOP: gop})
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		dec, err := DecodeAll(data, DecodeOptions{})
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if len(dec) != n {
			t.Logf("seed %d: %d frames, want %d", seed, len(dec), n)
			return false
		}
		for _, fr := range dec {
			if fr.W != w || fr.H != h {
				t.Logf("seed %d: frame %dx%d, want %dx%d", seed, fr.W, fr.H, w, h)
				return false
			}
		}
		if p := avgPSNR(t, frames, dec); p < 20 {
			t.Logf("seed %d: PSNR %.1f too low for q%d", seed, p, q)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeblockToggleAlwaysDecodes: disabling the deblocking filter must
// never break decoding, for any geometry and GOP structure; it only trades
// fidelity for work.
func TestQuickDeblockToggleAlwaysDecodes(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		w := 16 + rng.Intn(48)
		h := 16 + rng.Intn(48)
		n := 2 + rng.Intn(10)
		frames := syntheticVideo(w, h, n)
		data, err := Encode(frames, EncodeOptions{Quality: 30 + rng.Intn(70), GOP: 1 + rng.Intn(6)})
		if err != nil {
			return false
		}
		withDB, err := DecodeAll(data, DecodeOptions{})
		if err != nil {
			t.Logf("seed %d: deblock decode: %v", seed, err)
			return false
		}
		noDB, err := DecodeAll(data, DecodeOptions{DisableDeblock: true})
		if err != nil {
			t.Logf("seed %d: no-deblock decode: %v", seed, err)
			return false
		}
		return len(withDB) == n && len(noDB) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
