package vid

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"smol/internal/codec/blockdct"
	"smol/internal/img"
)

// loadBlock copies an 8x8 block at pixel origin (x0, y0) from p.
func loadBlock(p *plane, x0, y0 int, b *blockdct.Block) {
	for y := 0; y < blockSize; y++ {
		row := p.pix[(y0+y)*p.w+x0:]
		for x := 0; x < blockSize; x++ {
			b[y*blockSize+x] = int32(row[x])
		}
	}
}

// storeBlock writes an 8x8 block of clamped samples to p at (x0, y0).
func storeBlock(p *plane, x0, y0 int, b *blockdct.Block) {
	for y := 0; y < blockSize; y++ {
		row := p.pix[(y0+y)*p.w+x0:]
		for x := 0; x < blockSize; x++ {
			v := b[y*blockSize+x]
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			row[x] = uint8(v)
		}
	}
}

// encodeIntra codes every block of cur independently, reconstructing into
// recon. Returns the serialized payload.
func encodeIntra(cur, recon *frame, quant int32) []byte {
	w := &coefWriter{}
	var coeffs, samples blockdct.Block
	planes := []struct {
		src, dst *plane
		comp     int
	}{{cur.y, recon.y, 0}, {cur.cb, recon.cb, 1}, {cur.cr, recon.cr, 2}}
	for _, pl := range planes {
		for by := 0; by < pl.src.h/blockSize; by++ {
			for bx := 0; bx < pl.src.w/blockSize; bx++ {
				loadBlock(pl.src, bx*blockSize, by*blockSize, &samples)
				blockdct.FDCT(&samples, &coeffs)
				w.writeBlock(&coeffs, quant, pl.comp, true)
				// Reconstruct from the quantized coefficients.
				for i := range coeffs {
					coeffs[i] *= quant
				}
				blockdct.IDCT(&coeffs, &samples)
				storeBlock(pl.dst, bx*blockSize, by*blockSize, &samples)
			}
		}
	}
	return w.buf
}

// decodeIntra is the inverse of encodeIntra.
func decodeIntra(payload []byte, out *frame, quant int32, stats *DecodeStats) error {
	r := &coefReader{buf: payload}
	var coeffs, samples blockdct.Block
	planes := []struct {
		dst  *plane
		comp int
	}{{out.y, 0}, {out.cb, 1}, {out.cr, 2}}
	for _, pl := range planes {
		for by := 0; by < pl.dst.h/blockSize; by++ {
			for bx := 0; bx < pl.dst.w/blockSize; bx++ {
				if err := r.readBlock(&coeffs, quant, pl.comp, true); err != nil {
					return err
				}
				blockdct.IDCT(&coeffs, &samples)
				stats.BlocksIDCT++
				storeBlock(pl.dst, bx*blockSize, by*blockSize, &samples)
			}
		}
	}
	return nil
}

// sad16 computes the sum of absolute differences between the 16x16 luma
// macroblock of cur at (cx, cy) and ref at (cx+mvx, cy+mvy), with edge
// clamping on ref.
func sad16(cur, ref *plane, cx, cy, mvx, mvy int) int {
	s := 0
	for y := 0; y < mbSize; y++ {
		for x := 0; x < mbSize; x++ {
			c := int(cur.pix[(cy+y)*cur.w+cx+x])
			r := int(ref.at(cx+x+mvx, cy+y+mvy))
			d := c - r
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

// motionSearch performs a three-step search (TSS) for the best full-pel
// motion vector within +/-searchRange.
func motionSearch(cur, ref *plane, cx, cy int) (mvx, mvy, sad int) {
	bestX, bestY := 0, 0
	best := sad16(cur, ref, cx, cy, 0, 0)
	for step := searchRange / 2; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, d := range [8][2]int{
				{-step, 0}, {step, 0}, {0, -step}, {0, step},
				{-step, -step}, {-step, step}, {step, -step}, {step, step},
			} {
				nx, ny := bestX+d[0], bestY+d[1]
				if nx < -searchRange || nx > searchRange || ny < -searchRange || ny > searchRange {
					continue
				}
				s := sad16(cur, ref, cx, cy, nx, ny)
				if s < best {
					best, bestX, bestY = s, nx, ny
					improved = true
				}
			}
		}
	}
	return bestX, bestY, best
}

// predictMB builds the motion-compensated prediction of one macroblock into
// pred (a scratch frame), reading from ref.
func predictMB(ref *frame, mbx, mby, mvx, mvy int, predY *[mbSize * mbSize]int32, predCb, predCr *[(mbSize / 2) * (mbSize / 2)]int32) {
	cx, cy := mbx*mbSize, mby*mbSize
	for y := 0; y < mbSize; y++ {
		for x := 0; x < mbSize; x++ {
			predY[y*mbSize+x] = int32(ref.y.at(cx+x+mvx, cy+y+mvy))
		}
	}
	ccx, ccy := cx/2, cy/2
	cmvx, cmvy := mvx/2, mvy/2
	for y := 0; y < mbSize/2; y++ {
		for x := 0; x < mbSize/2; x++ {
			predCb[y*(mbSize/2)+x] = int32(ref.cb.at(ccx+x+cmvx, ccy+y+cmvy))
			predCr[y*(mbSize/2)+x] = int32(ref.cr.at(ccx+x+cmvx, ccy+y+cmvy))
		}
	}
}

// mb block layout: 4 luma 8x8 blocks then Cb 8x8 then Cr 8x8.
type mbResidual struct {
	blocks [6]blockdct.Block
}

// encodeInter codes cur against ref, reconstructing into recon.
func encodeInter(cur, ref, recon *frame, quant int32) []byte {
	w := &coefWriter{}
	mbsX := cur.y.w / mbSize
	mbsY := cur.y.h / mbSize
	var predY [mbSize * mbSize]int32
	var predCb, predCr [(mbSize / 2) * (mbSize / 2)]int32
	var res mbResidual
	var coeffs blockdct.Block
	for mby := 0; mby < mbsY; mby++ {
		for mbx := 0; mbx < mbsX; mbx++ {
			cx, cy := mbx*mbSize, mby*mbSize
			mvx, mvy, _ := motionSearch(cur.y, ref.y, cx, cy)
			predictMB(ref, mbx, mby, mvx, mvy, &predY, &predCb, &predCr)

			// Compute residual blocks and quantize them (via a dry-run
			// writer) to make the skip decision.
			computeResiduals(cur, cx, cy, &predY, &predCb, &predCr, &res)
			allZero := true
			var quantized [6]blockdct.Block
			for b := 0; b < 6; b++ {
				blockdct.FDCTRaw(&res.blocks[b], &coeffs)
				quantized[b] = coeffs
				for i := range coeffs {
					c := coeffs[i]
					var q int32
					if c >= 0 {
						q = (c + quant/2) / quant
					} else {
						q = -((-c + quant/2) / quant)
					}
					quantized[b][i] = q
					if q != 0 {
						allZero = false
					}
				}
			}

			if allZero && mvx == 0 && mvy == 0 {
				w.buf = append(w.buf, 0) // skip mode
				reconstructMB(recon, cx, cy, &predY, &predCb, &predCr, nil, quant)
				continue
			}
			w.buf = append(w.buf, 1) // inter mode
			w.buf = append(w.buf, byte(int8(mvx)), byte(int8(mvy)))
			for b := 0; b < 6; b++ {
				// Serialize the already-quantized block: writeBlock expects
				// unquantized input, so emit with quant=1.
				blk := quantized[b]
				w.writeBlock(&blk, 1, 0, false)
			}
			reconstructMB(recon, cx, cy, &predY, &predCb, &predCr, &quantized, quant)
		}
	}
	return w.buf
}

// computeResiduals fills res with cur - pred for the 6 blocks of the MB.
func computeResiduals(cur *frame, cx, cy int, predY *[mbSize * mbSize]int32, predCb, predCr *[(mbSize / 2) * (mbSize / 2)]int32, res *mbResidual) {
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			b := &res.blocks[dy*2+dx]
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					py := dy*blockSize + y
					px := dx*blockSize + x
					c := int32(cur.y.pix[(cy+py)*cur.y.w+cx+px])
					b[y*blockSize+x] = c - predY[py*mbSize+px]
				}
			}
		}
	}
	half := mbSize / 2
	ccx, ccy := cx/2, cy/2
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			c := int32(cur.cb.pix[(ccy+y)*cur.cb.w+ccx+x])
			res.blocks[4][y*blockSize+x] = c - predCb[y*half+x]
			c = int32(cur.cr.pix[(ccy+y)*cur.cr.w+ccx+x])
			res.blocks[5][y*blockSize+x] = c - predCr[y*half+x]
		}
	}
}

// reconstructMB writes pred (+ dequantized residual when non-nil) into recon.
func reconstructMB(recon *frame, cx, cy int, predY *[mbSize * mbSize]int32, predCb, predCr *[(mbSize / 2) * (mbSize / 2)]int32, quantized *[6]blockdct.Block, quant int32) {
	var coeffs, resid blockdct.Block
	addBlock := func(dst *plane, x0, y0 int, pred []int32, predStride int, q *blockdct.Block) {
		if q != nil {
			coeffs = *q
			for i := range coeffs {
				coeffs[i] *= quant
			}
			blockdct.IDCTRaw(&coeffs, &resid)
		} else {
			resid = blockdct.Block{}
		}
		for y := 0; y < blockSize; y++ {
			row := dst.pix[(y0+y)*dst.w+x0:]
			for x := 0; x < blockSize; x++ {
				v := pred[y*predStride+x] + resid[y*blockSize+x]
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				row[x] = uint8(v)
			}
		}
	}
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			var q *blockdct.Block
			if quantized != nil {
				q = &quantized[dy*2+dx]
			}
			addBlock(recon.y, cx+dx*blockSize, cy+dy*blockSize,
				predY[dy*blockSize*mbSize+dx*blockSize:], mbSize, q)
		}
	}
	half := mbSize / 2
	var qcb, qcr *blockdct.Block
	if quantized != nil {
		qcb, qcr = &quantized[4], &quantized[5]
	}
	addBlock(recon.cb, cx/2, cy/2, predCb[:], half, qcb)
	addBlock(recon.cr, cx/2, cy/2, predCr[:], half, qcr)
}

// decodeInter is the inverse of encodeInter.
func decodeInter(payload []byte, ref, out *frame, quant int32, stats *DecodeStats) error {
	r := &coefReader{buf: payload}
	mbsX := out.y.w / mbSize
	mbsY := out.y.h / mbSize
	var predY [mbSize * mbSize]int32
	var predCb, predCr [(mbSize / 2) * (mbSize / 2)]int32
	for mby := 0; mby < mbsY; mby++ {
		for mbx := 0; mbx < mbsX; mbx++ {
			cx, cy := mbx*mbSize, mby*mbSize
			mode, err := r.readByte()
			if err != nil {
				return err
			}
			switch mode {
			case 0: // skip
				predictMB(ref, mbx, mby, 0, 0, &predY, &predCb, &predCr)
				reconstructMB(out, cx, cy, &predY, &predCb, &predCr, nil, quant)
				stats.SkippedMBs++
			case 1: // inter with residual
				bx, err := r.readByte()
				if err != nil {
					return err
				}
				by, err := r.readByte()
				if err != nil {
					return err
				}
				mvx, mvy := int(int8(bx)), int(int8(by))
				predictMB(ref, mbx, mby, mvx, mvy, &predY, &predCb, &predCr)
				var quantized [6]blockdct.Block
				for b := 0; b < 6; b++ {
					if err := r.readBlock(&quantized[b], 1, 0, false); err != nil {
						return err
					}
					stats.BlocksIDCT++
				}
				reconstructMB(out, cx, cy, &predY, &predCb, &predCr, &quantized, quant)
				stats.InterMBs++
			default:
				return fmt.Errorf("vid: unknown macroblock mode %d", mode)
			}
		}
	}
	return nil
}

// deblockFrame applies the in-loop deblocking filter across 8x8 block
// boundaries of all planes. A nil stats skips counting (encoder side).
func deblockFrame(f *frame, stats *DecodeStats) {
	const alphaT = 24 // edge activation threshold
	const betaT = 8   // local gradient threshold
	edges := 0
	filter := func(p *plane) {
		// Vertical boundaries.
		for x := blockSize; x < p.w; x += blockSize {
			for y := 0; y < p.h; y++ {
				i := y*p.w + x
				p1, p0 := int(p.pix[i-2]), int(p.pix[i-1])
				q0, q1 := int(p.pix[i]), int(p.pix[i+1])
				d := q0 - p0
				if abs(d) < alphaT && abs(p1-p0) < betaT && abs(q1-q0) < betaT {
					delta := d / 4
					p.pix[i-1] = img.Clamp8(p0 + delta)
					p.pix[i] = img.Clamp8(q0 - delta)
					edges++
				}
			}
		}
		// Horizontal boundaries.
		for y := blockSize; y < p.h; y += blockSize {
			for x := 0; x < p.w; x++ {
				i := y*p.w + x
				p1, p0 := int(p.pix[i-2*p.w]), int(p.pix[i-p.w])
				q0, q1 := int(p.pix[i]), int(p.pix[i+p.w])
				d := q0 - p0
				if abs(d) < alphaT && abs(p1-p0) < betaT && abs(q1-q0) < betaT {
					delta := d / 4
					p.pix[i-p.w] = img.Clamp8(p0 + delta)
					p.pix[i] = img.Clamp8(q0 - delta)
					edges++
				}
			}
		}
	}
	filter(f.y)
	filter(f.cb)
	filter(f.cr)
	if stats != nil {
		stats.DeblockedEdges += edges
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Decoder streams frames out of an encoded bitstream. A Decoder holds
// reusable decode state — the reference frame P-frames predict from, a spare
// reconstruction frame, the DEFLATE reader, and the inflated payload buffer
// — so a resident decoder serving a stream performs no per-frame
// allocations beyond the output image, and none at all through NextInto
// with a recycled destination.
type Decoder struct {
	data    []byte
	pos     int
	opts    DecodeOptions
	w, h    int
	padW    int
	padH    int
	n       int
	gop     int
	quality int
	quant   int32
	idx     int
	ref     *frame
	stats   DecodeStats

	// spare is the recycled reconstruction target: every plane of every
	// frame is fully rewritten by decodeIntra/decodeInter, so the previous
	// reference can ping-pong back in once it stops being predicted from.
	spare *frame
	// parked holds the reference frame a SeekGOP releases: the next GOP's
	// I-frame needs no reference, but the frame's storage is kept so a
	// seeking decoder stays allocation-free (see reconFrame).
	parked *frame
	// index is the per-GOP byte-offset table, built lazily by GOPIndex or
	// injected by SetGOPIndex from a store sidecar.
	index []GOPEntry
	// inflater and payloadSrc are the resettable DEFLATE state; payload is
	// the reused inflated-frame buffer.
	inflater   io.ReadCloser
	payloadSrc bytes.Reader
	payload    []byte
}

// NewDecoder parses the stream header.
func NewDecoder(data []byte, opts DecodeOptions) (*Decoder, error) {
	if len(data) < 4+18 || string(data[:4]) != string(magic[:]) {
		return nil, errors.New("vid: bad magic")
	}
	hdr := data[4:]
	if binary.BigEndian.Uint16(hdr[0:]) != 1 {
		return nil, errors.New("vid: unsupported version")
	}
	w := int(binary.BigEndian.Uint32(hdr[2:]))
	h := int(binary.BigEndian.Uint32(hdr[6:]))
	n := int(binary.BigEndian.Uint32(hdr[10:]))
	gop := int(binary.BigEndian.Uint16(hdr[14:]))
	quality := int(hdr[16])
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 || n < 0 {
		return nil, errors.New("vid: invalid header")
	}
	// Guard allocations against corrupted headers: cap total pixels (8K
	// video is ~33M px) and require the stream to be long enough to hold
	// at least a frame header per claimed frame.
	if w*h > 1<<26 {
		return nil, fmt.Errorf("vid: implausible frame size %dx%d", w, h)
	}
	if n > (len(data)-4-18)/5 {
		return nil, fmt.Errorf("vid: %d frames claimed but only %d payload bytes", n, len(data)-4-18)
	}
	return &Decoder{
		data: data, pos: 4 + 18, opts: opts,
		w: w, h: h, padW: padTo(w, mbSize), padH: padTo(h, mbSize),
		n: n, gop: gop, quality: quality, quant: quantFor(quality),
	}, nil
}

// Info summarizes a stream header without decoding any frames.
type Info struct {
	// W, H are the visible frame dimensions.
	W, H int
	// Frames is the total frame count.
	Frames int
	// GOP is the I-frame interval (decode cost per frame amortizes an
	// expensive intra frame over GOP-1 cheaper predicted ones).
	GOP int
	// Quality is the encoder quality the stream was produced with.
	Quality int
}

// Probe parses a stream header. It is the planner's peek: cheap enough to
// run per request, with the geometry and GOP the decode cost model needs.
func Probe(data []byte) (Info, error) {
	d, err := NewDecoder(data, DecodeOptions{})
	if err != nil {
		return Info{}, err
	}
	return Info{W: d.w, H: d.h, Frames: d.n, GOP: d.gop, Quality: d.quality}, nil
}

// Width returns the frame width in pixels.
func (d *Decoder) Width() int { return d.w }

// Height returns the frame height in pixels.
func (d *Decoder) Height() int { return d.h }

// NumFrames returns the total number of frames in the stream.
func (d *Decoder) NumFrames() int { return d.n }

// Stats returns the cumulative decode statistics.
func (d *Decoder) Stats() DecodeStats { return d.stats }

// ErrEndOfStream is returned by Next after the last frame.
var ErrEndOfStream = errors.New("vid: end of stream")

// inflate decompresses one frame record into the decoder's reused payload
// buffer, resetting the resident DEFLATE reader instead of allocating one.
//
//smol:noalloc
func (d *Decoder) inflate(compressed []byte) ([]byte, error) {
	d.payloadSrc.Reset(compressed)
	if d.inflater == nil {
		//smol:coldpath first frame builds the resident DEFLATE reader
		d.inflater = flate.NewReader(&d.payloadSrc)
	} else if err := d.inflater.(flate.Resetter).Reset(&d.payloadSrc, nil); err != nil {
		return nil, err
	}
	buf := d.payload[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := d.inflater.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	d.payload = buf
	return buf, nil
}

// reconFrame returns the reconstruction target for the next frame,
// recycling the spare (or a seek-parked reference) when one is resident.
func (d *Decoder) reconFrame() *frame {
	if d.spare != nil {
		f := d.spare
		d.spare = nil
		return f
	}
	if d.parked != nil {
		f := d.parked
		d.parked = nil
		return f
	}
	return newFrame(d.padW, d.padH)
}

// decodeNext advances the stream by one frame and returns the reconstructed
// (deblocked, unless disabled) frame. The previous reference frame is
// recycled as the next reconstruction target: decodeIntra and decodeInter
// rewrite every sample of every plane, so recycled contents never leak.
//
//smol:noalloc
func (d *Decoder) decodeNext() (*frame, error) {
	if d.idx >= d.n {
		return nil, ErrEndOfStream
	}
	if d.pos+5 > len(d.data) {
		//smol:coldpath malformed stream
		return nil, errors.New("vid: truncated frame header")
	}
	ftype := d.data[d.pos]
	plen := int(binary.BigEndian.Uint32(d.data[d.pos+1:]))
	d.pos += 5
	if d.pos+plen > len(d.data) {
		//smol:coldpath malformed stream
		return nil, errors.New("vid: truncated frame payload")
	}
	compressed := d.data[d.pos : d.pos+plen]
	d.pos += plen
	d.stats.CompressedBytes += plen
	payload, err := d.inflate(compressed)
	if err != nil {
		//smol:coldpath malformed stream
		return nil, fmt.Errorf("vid: frame %d: %w", d.idx, err)
	}
	recon := d.reconFrame()
	switch ftype {
	case 'I':
		if err := decodeIntra(payload, recon, d.quant, &d.stats); err != nil {
			d.spare = recon
			//smol:coldpath malformed stream
			return nil, fmt.Errorf("vid: frame %d: %w", d.idx, err)
		}
		d.stats.IntraMBs += (d.padW / mbSize) * (d.padH / mbSize)
	case 'P':
		if d.ref == nil {
			d.spare = recon
			//smol:coldpath malformed stream
			return nil, errors.New("vid: P-frame without reference")
		}
		if err := decodeInter(payload, d.ref, recon, d.quant, &d.stats); err != nil {
			d.spare = recon
			//smol:coldpath malformed stream
			return nil, fmt.Errorf("vid: frame %d: %w", d.idx, err)
		}
	default:
		d.spare = recon
		//smol:coldpath malformed stream
		return nil, fmt.Errorf("vid: unknown frame type %q", ftype)
	}
	if !d.opts.DisableDeblock {
		deblockFrame(recon, &d.stats)
	}
	d.spare = d.ref
	d.ref = recon
	d.idx++
	d.stats.FramesDecoded++
	return recon, nil
}

// Next decodes and returns the next frame, or ErrEndOfStream. Each call
// allocates a fresh output image; resident decoders should prefer NextInto
// with a recycled destination.
func (d *Decoder) Next() (*img.Image, error) {
	return d.NextInto(nil)
}

// NextInto decodes the next frame into dst, which is reused when it matches
// the stream dimensions and allocated otherwise (nil is always valid). A
// warm decoder cycling destinations through a pool decodes without
// per-frame allocations.
//
//smol:noalloc
func (d *Decoder) NextInto(dst *img.Image) (*img.Image, error) {
	recon, err := d.decodeNext()
	if err != nil {
		return nil, err
	}
	return frameToRGBInto(recon, d.w, d.h, dst), nil
}

// Skip decodes the next frame without converting it to RGB, advancing the
// reference state P-frames need. Stride-sampling callers Skip the frames
// they do not classify, saving the color conversion (the only part of
// decode a sampled stream can actually omit — motion compensation needs
// every reference).
//
//smol:noalloc
func (d *Decoder) Skip() error {
	_, err := d.decodeNext()
	return err
}

// DecodeAll decodes every frame in the stream.
func DecodeAll(data []byte, opts DecodeOptions) ([]*img.Image, error) {
	d, err := NewDecoder(data, opts)
	if err != nil {
		return nil, err
	}
	frames := make([]*img.Image, 0, d.NumFrames())
	for {
		f, err := d.Next()
		if errors.Is(err, ErrEndOfStream) {
			return frames, nil
		}
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
}
