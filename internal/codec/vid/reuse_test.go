package vid

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"smol/internal/analysis/alloctest"
	"smol/internal/img"
)

// renderTestFrames renders n frames with real motion so P-frames exercise
// motion compensation, skip mode, and residual coding.
func renderTestFrames(n, w, h int) []*img.Image {
	rng := rand.New(rand.NewSource(11))
	frames := make([]*img.Image, n)
	for f := range frames {
		m := img.New(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				m.Set(x, y, uint8(60+x), uint8(80+y), uint8(100+((x+y)&31)))
			}
		}
		// Two movers at different speeds.
		for _, mv := range [][3]int{{f * 2, h / 4, 200}, {w - f*3, h / 2, 240}} {
			for dy := 0; dy < 6; dy++ {
				for dx := 0; dx < 10; dx++ {
					x, y := mv[0]+dx, mv[1]+dy
					if x >= 0 && x < w && y < h {
						m.Set(x, y, uint8(mv[2]), uint8(mv[2]-30), uint8(rng.Intn(40)+180))
					}
				}
			}
		}
		frames[f] = m
	}
	return frames
}

// testClipGOP encodes a rendered clip with an explicit I-frame interval.
func testClipGOP(t testing.TB, n, w, h, gop int) []byte {
	t.Helper()
	enc, err := Encode(renderTestFrames(n, w, h), EncodeOptions{Quality: 70, GOP: gop})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// testClip encodes a rendered clip with the default test GOP of 5.
func testClip(t testing.TB, n, w, h int) []byte {
	t.Helper()
	return testClipGOP(t, n, w, h, 5)
}

// TestDecoderReuseEquivalence: a resident decoder recycling its reference
// frames, DEFLATE reader, and output images through NextInto must produce
// frames bit-identical to a fresh decoder allocated per frame (decoding the
// stream prefix from scratch each time). Reused state is an execution
// strategy, never a semantics change.
func TestDecoderReuseEquivalence(t *testing.T) {
	enc := testClip(t, 12, 64, 48)
	for _, deblock := range []bool{true, false} {
		opts := DecodeOptions{DisableDeblock: !deblock}
		warm, err := NewDecoder(enc, opts)
		if err != nil {
			t.Fatal(err)
		}
		var recycled [2]*img.Image
		for i := 0; ; i++ {
			got, err := warm.NextInto(recycled[i%2])
			if errors.Is(err, ErrEndOfStream) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			recycled[i%2] = got
			// Fresh decoder per frame: decode the prefix from scratch.
			fresh, err := NewDecoder(enc, opts)
			if err != nil {
				t.Fatal(err)
			}
			var want *img.Image
			for j := 0; j <= i; j++ {
				want, err = fresh.Next()
				if err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(got.Pix, want.Pix) {
				t.Fatalf("deblock=%v frame %d: reused decoder diverges from fresh decode", deblock, i)
			}
		}
	}
}

// TestDecoderSkipEquivalence: Skip must advance the reference state exactly
// as Next does, so stride-sampled frames decode bit-identical to a full
// decode, while skipping the RGB conversion work.
func TestDecoderSkipEquivalence(t *testing.T) {
	enc := testClip(t, 13, 64, 48)
	all, err := DecodeAll(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const stride = 3
	dec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(all); i++ {
		if i%stride != 0 {
			if err := dec.Skip(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Pix, all[i].Pix) {
			t.Fatalf("frame %d: stride decode diverges from full decode", i)
		}
	}
	if err := dec.Skip(); !errors.Is(err, ErrEndOfStream) {
		t.Fatalf("Skip past the end returned %v, want ErrEndOfStream", err)
	}
}

// TestDecoderWarmPathAllocates: a warm resident decoder cycling two
// destination images must decode P-frames with at most the payload-growth
// allocations of its first frames — steady state is allocation-free.
func TestDecoderWarmPathAllocates(t *testing.T) {
	// alloctest.Run decodes 100+ measured frames on top of the warm-up, so
	// the clip must outlast both phases.
	enc := testClip(t, 120, 64, 48)
	dec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var dst *img.Image
	// Warm: first GOP allocates frames, payload buffer, inflater.
	for i := 0; i < 10; i++ {
		if dst, err = dec.NextInto(dst); err != nil {
			t.Fatal(err)
		}
	}
	// The flate reader's Reset keeps its window; tolerate at most one
	// stray allocation per frame for dictionary bookkeeping.
	alloctest.Run(t, "smol/internal/codec/vid.Decoder.NextInto", 1, func() {
		m, err := dec.NextInto(dst)
		if err != nil {
			t.Fatal(err)
		}
		dst = m
	}, "smol/internal/codec/vid.Decoder.decodeNext", "smol/internal/codec/vid.Decoder.inflate")

	// Skip shares the decode core but omits the RGB conversion; a warm
	// skip must stay equally allocation-free.
	skipDec, err := NewDecoder(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := skipDec.Skip(); err != nil {
			t.Fatal(err)
		}
	}
	alloctest.Run(t, "smol/internal/codec/vid.Decoder.Skip", 1, func() {
		if err := skipDec.Skip(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestProbe: the header peek reports the stream geometry without decoding.
func TestProbe(t *testing.T) {
	enc := testClip(t, 7, 48, 32)
	info, err := Probe(enc)
	if err != nil {
		t.Fatal(err)
	}
	if info.W != 48 || info.H != 32 || info.Frames != 7 || info.GOP != 5 || info.Quality != 70 {
		t.Fatalf("probe reported %+v", info)
	}
	if _, err := Probe([]byte("not a video")); err == nil {
		t.Fatal("probing garbage should error")
	}
}

// BenchmarkDecoderResident measures the warm streaming decode path —
// resident decoder, recycled reference frames and output images — with and
// without the deblocking filter (the §6.4 reduced-fidelity lever).
func BenchmarkDecoderResident(b *testing.B) {
	enc := testClip(b, 30, 160, 96)
	for _, bc := range []struct {
		name    string
		deblock bool
	}{{"deblock-on", true}, {"deblock-off", false}} {
		b.Run(bc.name, func(b *testing.B) {
			var dst *img.Image
			frames := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := NewDecoder(enc, DecodeOptions{DisableDeblock: !bc.deblock})
				if err != nil {
					b.Fatal(err)
				}
				for {
					m, err := dec.NextInto(dst)
					if errors.Is(err, ErrEndOfStream) {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					dst = m
					frames++
				}
			}
			b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}
