// Package vid implements a simplified H.264-style video codec: intra-coded
// I-frames and motion-compensated P-frames over 4:2:0 YCbCr planes, 8x8 DCT
// residual coding, and an in-loop deblocking filter.
//
// The decoder exposes the two low-fidelity levers the paper uses for video:
//
//   - Reduced-fidelity decoding: the deblocking filter can be disabled
//     (DecodeOptions.DisableDeblock), trading visual quality for decode
//     speed, exactly as H.264/HEVC decoders permit.
//   - Natively present low resolution: the encoder happily encodes the same
//     content at multiple resolutions; the data generators store both.
//
// The bitstream is frame-sequential: a fixed header, then one record per
// frame ([type][len][DEFLATE payload]). The codec is closed-loop: the
// encoder reconstructs exactly what the decoder will, so P-frame references
// never drift (unless the decoder intentionally skips deblocking).
package vid

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"

	"smol/internal/codec/blockdct"
	"smol/internal/img"
)

const (
	mbSize    = 16 // macroblock edge (luma)
	blockSize = blockdct.Size
	// searchRange is the full-pel motion search range.
	searchRange = 8
)

var magic = [4]byte{'S', 'V', 'I', 'D'}

// EncodeOptions configures Encode.
type EncodeOptions struct {
	// Quality in [1,100]; zero means 60. Higher is better fidelity.
	Quality int
	// GOP is the I-frame interval; zero means 30.
	GOP int
}

// DecodeOptions configures decoding fidelity.
type DecodeOptions struct {
	// DisableDeblock skips the in-loop deblocking filter for faster,
	// reduced-fidelity decoding (the paper's §6.4).
	DisableDeblock bool
}

// DecodeStats reports the work performed by a decoder so far.
type DecodeStats struct {
	FramesDecoded   int
	BlocksIDCT      int
	DeblockedEdges  int
	SkippedMBs      int
	InterMBs        int
	IntraMBs        int
	CompressedBytes int
	// GOPSeeks counts SeekGOP jumps: each one repositions the decoder at an
	// I-frame byte offset without touching the records in between.
	GOPSeeks int
	// FramesBypassed counts frames never inflated or motion-compensated
	// because a seek jumped over them — the work a Skip loop would have paid.
	FramesBypassed int
}

// Add accumulates other into s (aggregating per-worker decoder stats).
func (s *DecodeStats) Add(other DecodeStats) {
	s.FramesDecoded += other.FramesDecoded
	s.BlocksIDCT += other.BlocksIDCT
	s.DeblockedEdges += other.DeblockedEdges
	s.SkippedMBs += other.SkippedMBs
	s.InterMBs += other.InterMBs
	s.IntraMBs += other.IntraMBs
	s.CompressedBytes += other.CompressedBytes
	s.GOPSeeks += other.GOPSeeks
	s.FramesBypassed += other.FramesBypassed
}

// quantFor maps quality to the flat quantizer step used for all
// coefficients. Quality 100 -> 1 (near lossless), 1 -> 100 (very coarse).
func quantFor(quality int) int32 {
	if quality <= 0 {
		quality = 60
	}
	if quality > 100 {
		quality = 100
	}
	q := int32((100-quality)+1) * 2
	if q < 1 {
		q = 1
	}
	return q
}

func padTo(v, m int) int { return ((v + m - 1) / m) * m }

// Encode compresses frames. All frames must share dimensions.
func Encode(frames []*img.Image, opts EncodeOptions) ([]byte, error) {
	if len(frames) == 0 {
		return nil, errors.New("vid: no frames")
	}
	w, h := frames[0].W, frames[0].H
	for i, f := range frames {
		if f.W != w || f.H != h {
			return nil, fmt.Errorf("vid: frame %d dimensions %dx%d != %dx%d", i, f.W, f.H, w, h)
		}
	}
	gop := opts.GOP
	if gop <= 0 {
		gop = 30
	}
	quality := opts.Quality
	if quality <= 0 {
		quality = 60
	}

	var out bytes.Buffer
	out.Write(magic[:])
	var hdr [18]byte
	binary.BigEndian.PutUint16(hdr[0:], 1) // version
	binary.BigEndian.PutUint32(hdr[2:], uint32(w))
	binary.BigEndian.PutUint32(hdr[6:], uint32(h))
	binary.BigEndian.PutUint32(hdr[10:], uint32(len(frames)))
	binary.BigEndian.PutUint16(hdr[14:], uint16(gop))
	hdr[16] = byte(quality)
	out.Write(hdr[:])

	padW, padH := padTo(w, mbSize), padTo(h, mbSize)
	quant := quantFor(quality)
	var ref *frame
	for i, fimg := range frames {
		cur := rgbToFrame(fimg, padW, padH)
		var payload []byte
		var ftype byte
		if i%gop == 0 || ref == nil {
			ftype = 'I'
			recon := newFrame(padW, padH)
			payload = encodeIntra(cur, recon, quant)
			deblockFrame(recon, nil)
			ref = recon
		} else {
			ftype = 'P'
			recon := newFrame(padW, padH)
			payload = encodeInter(cur, ref, recon, quant)
			deblockFrame(recon, nil)
			ref = recon
		}
		compressed := deflateBytes(payload)
		out.WriteByte(ftype)
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(compressed)))
		out.Write(lenBuf[:])
		out.Write(compressed)
	}
	return out.Bytes(), nil
}

func deflateBytes(p []byte) []byte {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		panic(err)
	}
	if _, err := fw.Write(p); err != nil {
		panic(err)
	}
	if err := fw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// coefWriter serializes quantized blocks as (DC svarint, AC run-length
// pairs) with a 0xFF end-of-block run sentinel.
type coefWriter struct {
	buf    []byte
	tmp    [binary.MaxVarintLen64]byte
	dcPred [3]int32
}

func (w *coefWriter) putVarint(v int32) {
	n := binary.PutVarint(w.tmp[:], int64(v))
	w.buf = append(w.buf, w.tmp[:n]...)
}

// writeBlock quantizes coeffs in place and serializes them. comp selects the
// DC predictor (0=Y, 1=Cb, 2=Cr). Returns true if all coefficients
// quantized to zero (useful for skip decisions).
func (w *coefWriter) writeBlock(coeffs *blockdct.Block, quant int32, comp int, differential bool) bool {
	allZero := true
	for i := range coeffs {
		c := coeffs[i]
		if c >= 0 {
			coeffs[i] = (c + quant/2) / quant
		} else {
			coeffs[i] = -((-c + quant/2) / quant)
		}
		if coeffs[i] != 0 {
			allZero = false
		}
	}
	dc := coeffs[0]
	if differential {
		diff := dc - w.dcPred[comp]
		w.dcPred[comp] = dc
		w.putVarint(diff)
	} else {
		w.putVarint(dc)
	}
	run := 0
	for k := 1; k < blockdct.N; k++ {
		v := coeffs[blockdct.Zigzag[k]]
		if v == 0 {
			run++
			continue
		}
		for run > 254 {
			w.buf = append(w.buf, 254)
			w.putVarint(0) // long zero run continuation
			run -= 255
		}
		w.buf = append(w.buf, byte(run))
		w.putVarint(v)
		run = 0
	}
	w.buf = append(w.buf, 0xff) // EOB
	return allZero
}

// coefReader mirrors coefWriter.
type coefReader struct {
	buf    []byte
	pos    int
	dcPred [3]int32
}

var errCorrupt = errors.New("vid: corrupt payload")

func (r *coefReader) readVarint() (int32, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errCorrupt
	}
	r.pos += n
	return int32(v), nil
}

func (r *coefReader) readByte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errCorrupt
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// readBlock reads and dequantizes one block into coeffs (natural order).
func (r *coefReader) readBlock(coeffs *blockdct.Block, quant int32, comp int, differential bool) error {
	for i := range coeffs {
		coeffs[i] = 0
	}
	dc, err := r.readVarint()
	if err != nil {
		return err
	}
	if differential {
		r.dcPred[comp] += dc
		coeffs[0] = r.dcPred[comp] * quant
	} else {
		coeffs[0] = dc * quant
	}
	k := 1
	for {
		run, err := r.readByte()
		if err != nil {
			return err
		}
		if run == 0xff {
			break
		}
		v, err := r.readVarint()
		if err != nil {
			return err
		}
		k += int(run)
		if v == 0 { // long-run continuation token
			k++
			continue
		}
		if k >= blockdct.N {
			return errCorrupt
		}
		coeffs[blockdct.Zigzag[k]] = v * quant
		k++
	}
	return nil
}
