package vid

import (
	"math/rand"
	"testing"
)

// TestTruncationNeverPanics: every prefix of a valid video stream must
// yield an error or a (possibly shorter) valid frame sequence — never a
// panic. Streaming analytics engines routinely see cut-off files.
func TestTruncationNeverPanics(t *testing.T) {
	frames := syntheticVideo(32, 24, 8)
	enc, err := Encode(frames, EncodeOptions{Quality: 70, GOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if len(enc) > 4096 {
		stride = len(enc) / 4096
	}
	for n := 0; n < len(enc); n += stride {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d/%d: panic: %v", n, len(enc), r)
				}
			}()
			dec, err := DecodeAll(enc[:n], DecodeOptions{})
			if err == nil && len(dec) > len(frames) {
				t.Fatalf("prefix %d: decoded %d frames from a %d-frame stream", n, len(dec), len(frames))
			}
		}()
	}
}

// TestByteCorruptionNeverPanics: single-byte corruption anywhere in the
// stream must never panic the decoder, with and without the deblocking
// filter.
func TestByteCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	frames := syntheticVideo(24, 24, 6)
	enc, err := Encode(frames, EncodeOptions{Quality: 60, GOP: 3})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), enc...)
		corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		opts := DecodeOptions{DisableDeblock: trial%2 == 0}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			DecodeAll(corrupted, opts) //nolint:errcheck
		}()
	}
}
