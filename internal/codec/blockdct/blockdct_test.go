package blockdct

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFDCTIDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var in, coeffs, out Block
		for i := range in {
			in[i] = int32(rng.Intn(256))
		}
		FDCT(&in, &coeffs)
		IDCT(&coeffs, &out)
		for i := range in {
			if d := in[i] - out[i]; d < -2 || d > 2 {
				t.Fatalf("trial %d idx %d: %d -> %d", trial, i, in[i], out[i])
			}
		}
	}
}

func TestRawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		var in, coeffs, out Block
		for i := range in {
			in[i] = int32(rng.Intn(511) - 255) // residual range
		}
		FDCTRaw(&in, &coeffs)
		IDCTRaw(&coeffs, &out)
		for i := range in {
			if d := in[i] - out[i]; d < -2 || d > 2 {
				t.Fatalf("trial %d idx %d: %d -> %d", trial, i, in[i], out[i])
			}
		}
	}
}

func TestIDCTClamps(t *testing.T) {
	var coeffs, out Block
	coeffs[0] = 1 << 14 // absurd DC
	IDCT(&coeffs, &out)
	for _, v := range out {
		if v < 0 || v > 255 {
			t.Fatalf("IDCT output %d out of range", v)
		}
	}
	coeffs[0] = -(1 << 14)
	IDCTRaw(&coeffs, &out)
	for _, v := range out {
		if v < -255 || v > 255 {
			t.Fatalf("IDCTRaw output %d out of range", v)
		}
	}
}

func TestZigzagPermutation(t *testing.T) {
	var seen [N]bool
	for _, z := range Zigzag {
		if seen[z] {
			t.Fatal("duplicate in zigzag")
		}
		seen[z] = true
	}
	for i, z := range Zigzag {
		if Unzigzag[z] != i {
			t.Fatal("Unzigzag is not the inverse")
		}
	}
	// First few entries follow the standard scan.
	want := []int{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if Zigzag[i] != w {
			t.Fatalf("Zigzag[%d] = %d, want %d", i, Zigzag[i], w)
		}
	}
}

// Property: DCT is linear — FDCT(a+b) == FDCT(a)+FDCT(b) within rounding.
func TestFDCTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, sum, fa, fb, fsum Block
		for i := range a {
			a[i] = int32(rng.Intn(100))
			b[i] = int32(rng.Intn(100))
			sum[i] = a[i] + b[i]
		}
		FDCTRaw(&a, &fa)
		FDCTRaw(&b, &fb)
		FDCTRaw(&sum, &fsum)
		for i := range fa {
			if d := fsum[i] - fa[i] - fb[i]; d < -2 || d > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval-ish energy preservation for the orthonormal transform.
func TestEnergyPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var in, coeffs Block
	for i := range in {
		in[i] = int32(rng.Intn(256))
	}
	FDCTRaw(&in, &coeffs)
	var eIn, eOut float64
	for i := range in {
		eIn += float64(in[i]) * float64(in[i])
		eOut += float64(coeffs[i]) * float64(coeffs[i])
	}
	ratio := eOut / eIn
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("energy ratio = %v", ratio)
	}
}
