package blockdct

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFDCTIDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		var in, coeffs, out Block
		for i := range in {
			in[i] = int32(rng.Intn(256))
		}
		FDCT(&in, &coeffs)
		IDCT(&coeffs, &out)
		for i := range in {
			if d := in[i] - out[i]; d < -2 || d > 2 {
				t.Fatalf("trial %d idx %d: %d -> %d", trial, i, in[i], out[i])
			}
		}
	}
}

func TestRawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		var in, coeffs, out Block
		for i := range in {
			in[i] = int32(rng.Intn(511) - 255) // residual range
		}
		FDCTRaw(&in, &coeffs)
		IDCTRaw(&coeffs, &out)
		for i := range in {
			if d := in[i] - out[i]; d < -2 || d > 2 {
				t.Fatalf("trial %d idx %d: %d -> %d", trial, i, in[i], out[i])
			}
		}
	}
}

func TestIDCTClamps(t *testing.T) {
	var coeffs, out Block
	coeffs[0] = 1 << 14 // absurd DC
	IDCT(&coeffs, &out)
	for _, v := range out {
		if v < 0 || v > 255 {
			t.Fatalf("IDCT output %d out of range", v)
		}
	}
	coeffs[0] = -(1 << 14)
	IDCTRaw(&coeffs, &out)
	for _, v := range out {
		if v < -255 || v > 255 {
			t.Fatalf("IDCTRaw output %d out of range", v)
		}
	}
}

func TestZigzagPermutation(t *testing.T) {
	var seen [N]bool
	for _, z := range Zigzag {
		if seen[z] {
			t.Fatal("duplicate in zigzag")
		}
		seen[z] = true
	}
	for i, z := range Zigzag {
		if Unzigzag[z] != i {
			t.Fatal("Unzigzag is not the inverse")
		}
	}
	// First few entries follow the standard scan.
	want := []int{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if Zigzag[i] != w {
			t.Fatalf("Zigzag[%d] = %d, want %d", i, Zigzag[i], w)
		}
	}
}

// Property: DCT is linear — FDCT(a+b) == FDCT(a)+FDCT(b) within rounding.
func TestFDCTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, sum, fa, fb, fsum Block
		for i := range a {
			a[i] = int32(rng.Intn(100))
			b[i] = int32(rng.Intn(100))
			sum[i] = a[i] + b[i]
		}
		FDCTRaw(&a, &fa)
		FDCTRaw(&b, &fb)
		FDCTRaw(&sum, &fsum)
		for i := range fa {
			if d := fsum[i] - fa[i] - fb[i]; d < -2 || d > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval-ish energy preservation for the orthonormal transform.
func TestEnergyPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var in, coeffs Block
	for i := range in {
		in[i] = int32(rng.Intn(256))
	}
	FDCTRaw(&in, &coeffs)
	var eIn, eOut float64
	for i := range in {
		eIn += float64(in[i]) * float64(in[i])
		eOut += float64(coeffs[i]) * float64(coeffs[i])
	}
	ratio := eOut / eIn
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("energy ratio = %v", ratio)
	}
}

// TestIDCTScaledDCOnly: a DC-only block reconstructs to the constant
// DC/8 + 128 at every output size, the invariant that makes scaled and
// full decodes agree on flat content.
func TestIDCTScaledDCOnly(t *testing.T) {
	for _, dc := range []int32{-1024, -400, 0, 8, 400, 1016} {
		var coeffs, out Block
		coeffs[0] = dc
		want := dc/8 + 128
		if want < 0 {
			want = 0
		} else if want > 255 {
			want = 255
		}
		for _, n := range []int{8, 4, 2, 1} {
			IDCTScaled(&coeffs, &out, n)
			for i := 0; i < n*n; i++ {
				got := out[i]
				if got < want-1 || got > want+1 {
					t.Fatalf("n=%d dc=%d: sample %d = %d, want ~%d", n, dc, i, got, want)
				}
			}
		}
	}
}

// TestIDCTScaledMatchesBoxAverage: for band-limited blocks (only the
// lowest n x n frequencies populated) the reduced reconstruction must
// equal the box average of the full reconstruction — the scaled basis is
// exactly the box response of the surviving frequencies.
func TestIDCTScaledMatchesBoxAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 2, 1} {
		r := Size / n
		for trial := 0; trial < 50; trial++ {
			var coeffs, full, scaled Block
			for v := 0; v < n; v++ {
				for u := 0; u < n; u++ {
					coeffs[v*Size+u] = int32(rng.Intn(401) - 200)
				}
			}
			coeffs[0] = int32(rng.Intn(1200) - 600)
			IDCT(&coeffs, &full)
			IDCTScaled(&coeffs, &scaled, n)
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					var sum int32
					clipped := false
					for dy := 0; dy < r; dy++ {
						for dx := 0; dx < r; dx++ {
							s := full[(y*r+dy)*Size+x*r+dx]
							if s == 0 || s == 255 {
								clipped = true
							}
							sum += s
						}
					}
					// Clamping in the full-resolution reconstruction is a
					// nonlinearity the scaled path cannot reproduce.
					if clipped {
						continue
					}
					want := (sum + int32(r*r)/2) / int32(r*r)
					got := scaled[y*n+x]
					if got < want-2 || got > want+2 {
						t.Fatalf("n=%d trial %d (%d,%d): scaled %d, box average %d",
							n, trial, x, y, got, want)
					}
				}
			}
		}
	}
}

// TestIDCTScaledFullSizePassthrough: n = Size must equal the plain IDCT.
func TestIDCTScaledFullSizePassthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var coeffs, a, b Block
	for i := range coeffs {
		coeffs[i] = int32(rng.Intn(200) - 100)
	}
	IDCT(&coeffs, &a)
	IDCTScaled(&coeffs, &b, Size)
	if a != b {
		t.Fatal("IDCTScaled(8) diverges from IDCT")
	}
}
