// Package blockdct provides the 8x8 block DCT-II/DCT-III transforms shared
// by the JPEG and video codecs, plus the JPEG zig-zag scan order.
//
// Two variants exist: the level-shifted forms used for intra-coded image
// samples (subtract 128 before the forward transform, add 128 and clamp to
// [0,255] after the inverse), and raw forms used for motion-compensation
// residuals, which are already zero-centered.
package blockdct

import "math"

// Size is the block edge length fixed by the JPEG/H.26x 8x8 transform.
const Size = 8

// N is the number of coefficients per block.
const N = Size * Size

// Block is a natural-order 8x8 block of samples or coefficients.
type Block [N]int32

// Zigzag maps zig-zag order index -> natural order index.
var Zigzag = [N]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Unzigzag maps natural order index -> zig-zag order index.
var Unzigzag [N]int

// cosTable[u][x] = cos((2x+1) u pi / 16).
var cosTable [Size][Size]float64

func init() {
	for i, z := range Zigzag {
		Unzigzag[z] = i
	}
	for u := 0; u < Size; u++ {
		for x := 0; x < Size; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// fdctShift computes the forward DCT of samples-offset.
func fdctShift(samples, out *Block, offset int32) {
	var tmp [Size][Size]float64
	for y := 0; y < Size; y++ {
		for u := 0; u < Size; u++ {
			var s float64
			for x := 0; x < Size; x++ {
				s += float64(samples[y*Size+x]-offset) * cosTable[u][x]
			}
			tmp[y][u] = s
		}
	}
	for u := 0; u < Size; u++ {
		for v := 0; v < Size; v++ {
			var s float64
			for y := 0; y < Size; y++ {
				s += tmp[y][u] * cosTable[v][y]
			}
			out[v*Size+u] = int32(math.RoundToEven(0.25 * alpha(u) * alpha(v) * s))
		}
	}
}

// idctShift computes the inverse DCT, adds offset, and clamps to [lo, hi].
func idctShift(coeffs, out *Block, offset, lo, hi int32) {
	var tmp [Size][Size]float64
	for u := 0; u < Size; u++ {
		for y := 0; y < Size; y++ {
			var s float64
			for v := 0; v < Size; v++ {
				s += alpha(v) * float64(coeffs[v*Size+u]) * cosTable[v][y]
			}
			tmp[y][u] = s
		}
	}
	for y := 0; y < Size; y++ {
		for x := 0; x < Size; x++ {
			var s float64
			for u := 0; u < Size; u++ {
				s += alpha(u) * tmp[y][u] * cosTable[u][x]
			}
			v := int32(math.RoundToEven(0.25*s)) + offset
			if v < lo {
				v = lo
			} else if v > hi {
				v = hi
			}
			out[y*Size+x] = v
		}
	}
}

// FDCT transforms level-shifted image samples (range [0,255]).
func FDCT(samples, out *Block) { fdctShift(samples, out, 128) }

// IDCT inverts FDCT, producing clamped samples in [0,255].
func IDCT(coeffs, out *Block) { idctShift(coeffs, out, 128, 0, 255) }

// FDCTRaw transforms zero-centered residual samples.
func FDCTRaw(samples, out *Block) { fdctShift(samples, out, 0) }

// IDCTRaw inverts FDCTRaw, clamping residuals to [-255, 255].
func IDCTRaw(coeffs, out *Block) { idctShift(coeffs, out, 0, -255, 255) }
