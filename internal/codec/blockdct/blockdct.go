// Package blockdct provides the 8x8 block DCT-II/DCT-III transforms shared
// by the JPEG and video codecs, plus the JPEG zig-zag scan order.
//
// Two variants exist: the level-shifted forms used for intra-coded image
// samples (subtract 128 before the forward transform, add 128 and clamp to
// [0,255] after the inverse), and raw forms used for motion-compensation
// residuals, which are already zero-centered.
package blockdct

import "math"

// Size is the block edge length fixed by the JPEG/H.26x 8x8 transform.
const Size = 8

// N is the number of coefficients per block.
const N = Size * Size

// Block is a natural-order 8x8 block of samples or coefficients.
type Block [N]int32

// Zigzag maps zig-zag order index -> natural order index.
var Zigzag = [N]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Unzigzag maps natural order index -> zig-zag order index.
var Unzigzag [N]int

// cosTable[u][x] = cos((2x+1) u pi / 16).
var cosTable [Size][Size]float64

func init() {
	for i, z := range Zigzag {
		Unzigzag[z] = i
	}
	for u := 0; u < Size; u++ {
		for x := 0; x < Size; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// fdctShift computes the forward DCT of samples-offset.
func fdctShift(samples, out *Block, offset int32) {
	var tmp [Size][Size]float64
	for y := 0; y < Size; y++ {
		for u := 0; u < Size; u++ {
			var s float64
			for x := 0; x < Size; x++ {
				s += float64(samples[y*Size+x]-offset) * cosTable[u][x]
			}
			tmp[y][u] = s
		}
	}
	for u := 0; u < Size; u++ {
		for v := 0; v < Size; v++ {
			var s float64
			for y := 0; y < Size; y++ {
				s += tmp[y][u] * cosTable[v][y]
			}
			out[v*Size+u] = int32(math.RoundToEven(0.25 * alpha(u) * alpha(v) * s))
		}
	}
}

// idctShift computes the inverse DCT, adds offset, and clamps to [lo, hi].
func idctShift(coeffs, out *Block, offset, lo, hi int32) {
	var tmp [Size][Size]float64
	for u := 0; u < Size; u++ {
		for y := 0; y < Size; y++ {
			var s float64
			for v := 0; v < Size; v++ {
				s += alpha(v) * float64(coeffs[v*Size+u]) * cosTable[v][y]
			}
			tmp[y][u] = s
		}
	}
	for y := 0; y < Size; y++ {
		for x := 0; x < Size; x++ {
			var s float64
			for u := 0; u < Size; u++ {
				s += alpha(u) * tmp[y][u] * cosTable[u][x]
			}
			v := int32(math.RoundToEven(0.25*s)) + offset
			if v < lo {
				v = lo
			} else if v > hi {
				v = hi
			}
			out[y*Size+x] = v
		}
	}
}

// ScaledSizes lists the reduced reconstruction edge lengths IDCTScaled
// supports, besides the full Size: 8/2, 8/4 and 8/8.
var ScaledSizes = []int{4, 2, 1}

// scaledBasis[i][u][x] is the reduced-IDCT basis for n = 4>>i:
//
//	T[u][x] = alpha(u) * g(u) * cos((2x+1) u pi / (2n))
//
// where g(u) = sin(r*u*pi/16) / (r*sin(u*pi/16)) with r = 8/n is the box
// response of averaging r consecutive samples. With this basis the n-point
// reconstruction equals the area (box) downsample of the full 8x8
// reconstruction, truncated to the lowest n x n frequencies — so scaled
// decoding approximates full-decode-then-box-downsample, exactly the
// equivalence codec tests assert. DC behaves identically to the full IDCT
// (a DC-only block reconstructs to the constant DC/8 + 128 at every size).
var scaledBasis [3][4][4]float64

func init() {
	for i, n := range ScaledSizes {
		r := float64(Size / n)
		for u := 0; u < n; u++ {
			g := 1.0
			if u > 0 {
				theta := float64(u) * math.Pi / 16
				g = math.Sin(r*theta) / (r * math.Sin(theta))
			}
			for x := 0; x < n; x++ {
				scaledBasis[i][u][x] = alpha(u) * g *
					math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*float64(n)))
			}
		}
	}
}

func scaledIndex(n int) int {
	switch n {
	case 4:
		return 0
	case 2:
		return 1
	case 1:
		return 2
	default:
		panic("blockdct: unsupported scaled IDCT size")
	}
}

// IDCTScaled reconstructs an n x n block (n in {8, 4, 2, 1}) from the
// lowest n x n frequency coefficients of an 8x8 JPEG block, writing
// row-major n x n samples into out[0:n*n]. n = Size is the full IDCT; the
// reduced sizes cost O(n^3) instead of O(Size^3) per block and produce the
// 1/2, 1/4 and 1/8 resolution reconstructions DCT-domain scaled decoding
// serves.
func IDCTScaled(coeffs, out *Block, n int) {
	if n == Size {
		IDCT(coeffs, out)
		return
	}
	t := &scaledBasis[scaledIndex(n)]
	var tmp [4][4]float64
	for u := 0; u < n; u++ {
		for y := 0; y < n; y++ {
			var s float64
			for v := 0; v < n; v++ {
				s += t[v][y] * float64(coeffs[v*Size+u])
			}
			tmp[y][u] = s
		}
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			var s float64
			for u := 0; u < n; u++ {
				s += t[u][x] * tmp[y][u]
			}
			v := int32(math.RoundToEven(0.25*s)) + 128
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			out[y*n+x] = v
		}
	}
}

// FDCT transforms level-shifted image samples (range [0,255]).
func FDCT(samples, out *Block) { fdctShift(samples, out, 128) }

// IDCT inverts FDCT, producing clamped samples in [0,255].
func IDCT(coeffs, out *Block) { idctShift(coeffs, out, 128, 0, 255) }

// FDCTRaw transforms zero-centered residual samples.
func FDCTRaw(samples, out *Block) { fdctShift(samples, out, 0) }

// IDCTRaw inverts FDCTRaw, clamping residuals to [-255, 255].
func IDCTRaw(coeffs, out *Block) { idctShift(coeffs, out, 0, -255, 255) }
