package spng

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"smol/internal/img"
)

// Progressive (multi-resolution) encoding, the JPEG2000-style feature of
// the paper's Table 4: the image is stored as a resolution pyramid —
// a small base level plus per-level upsampling residuals — so a decoder
// needing only a low-resolution rendition reads and reconstructs only a
// prefix of the stream. This is "multi-resolution decoding": decode work
// scales with the requested resolution, not the stored one.

var progMagic = [4]byte{'S', 'P', 'G', 'P'}

// EncodeProgressive compresses m as a resolution pyramid with the given
// number of levels (>= 1). Level 0 is the full image downsampled by
// 2^(levels-1); each subsequent level doubles the resolution, storing the
// residual against the bilinear upsampling of the previous level. With
// levels == 1 the format degenerates to a plain spng stream in a wrapper.
func EncodeProgressive(m *img.Image, levels int) ([]byte, error) {
	if levels < 1 {
		return nil, errors.New("spng: progressive needs at least one level")
	}
	maxLevels := 1
	for s := 2; m.W/s >= 8 && m.H/s >= 8; s *= 2 {
		maxLevels++
	}
	if levels > maxLevels {
		levels = maxLevels
	}
	// Build the pyramid top-down: renditions[k] is the image at level k.
	renditions := make([]*img.Image, levels)
	renditions[levels-1] = m
	for k := levels - 2; k >= 0; k-- {
		prev := renditions[k+1]
		renditions[k] = prev.ResizeBilinear((prev.W+1)/2, (prev.H+1)/2)
	}

	var out bytes.Buffer
	out.Write(progMagic[:])
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(m.W))
	binary.BigEndian.PutUint32(hdr[4:], uint32(m.H))
	binary.BigEndian.PutUint16(hdr[8:], uint16(levels))
	out.Write(hdr[:])

	writeChunk := func(p []byte) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(p)))
		out.Write(n[:])
		out.Write(p)
	}
	// Base level: plain lossless encoding.
	writeChunk(Encode(renditions[0], 0))
	// Residual levels: difference against the upsampled previous level,
	// offset by 128 so the residual fits a byte, then spng-compressed
	// (residuals are smooth, so they compress well).
	for k := 1; k < levels; k++ {
		cur := renditions[k]
		up := renditions[k-1].ResizeBilinear(cur.W, cur.H)
		resid := img.New(cur.W, cur.H)
		for i := range cur.Pix {
			resid.Pix[i] = uint8(int(cur.Pix[i]) - int(up.Pix[i]) + 128)
		}
		writeChunk(Encode(resid, 0))
	}
	return out.Bytes(), nil
}

// ProgressiveStats reports the work a progressive decode performed.
type ProgressiveStats struct {
	LevelsDecoded int
	LevelsTotal   int
	BytesRead     int
	BytesTotal    int
}

// DecodeProgressive reconstructs the smallest pyramid level whose
// resolution is at least (minW, minH) — or the full image when both are
// zero — reading only the prefix of the stream that level needs.
//
// Residual arithmetic saturates at the byte boundaries, so renditions are
// near-lossless approximations; the final level reproduces the original
// exactly except where residuals clipped (rare on natural content), which
// tests bound.
func DecodeProgressive(data []byte, minW, minH int) (*img.Image, *ProgressiveStats, error) {
	if len(data) < 14 || !bytes.Equal(data[:4], progMagic[:]) {
		return nil, nil, errors.New("spng: bad progressive magic")
	}
	fullW := int(binary.BigEndian.Uint32(data[4:]))
	fullH := int(binary.BigEndian.Uint32(data[8:]))
	levels := int(binary.BigEndian.Uint16(data[12:]))
	if fullW <= 0 || fullH <= 0 || levels < 1 || levels > 16 {
		return nil, nil, fmt.Errorf("spng: invalid progressive header %dx%d/%d", fullW, fullH, levels)
	}
	stats := &ProgressiveStats{LevelsTotal: levels, BytesTotal: len(data)}
	pos := 14
	readChunk := func() ([]byte, error) {
		if pos+4 > len(data) {
			return nil, errors.New("spng: truncated progressive chunk header")
		}
		n := int(binary.BigEndian.Uint32(data[pos:]))
		pos += 4
		if n < 0 || pos+n > len(data) {
			return nil, errors.New("spng: truncated progressive chunk")
		}
		p := data[pos : pos+n]
		pos += n
		return p, nil
	}

	var cur *img.Image
	for k := 0; k < levels; k++ {
		chunk, err := readChunk()
		if err != nil {
			return nil, nil, err
		}
		dec, err := Decode(chunk)
		if err != nil {
			return nil, nil, fmt.Errorf("spng: level %d: %w", k, err)
		}
		if k == 0 {
			cur = dec
		} else {
			up := cur.ResizeBilinear(dec.W, dec.H)
			for i := range dec.Pix {
				up.Pix[i] = img.Clamp8(int(up.Pix[i]) + int(dec.Pix[i]) - 128)
			}
			cur = up
		}
		stats.LevelsDecoded++
		stats.BytesRead = pos
		enough := minW > 0 && minH > 0 && cur.W >= minW && cur.H >= minH
		if enough {
			break
		}
	}
	return cur, stats, nil
}
