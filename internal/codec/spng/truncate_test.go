package spng

import (
	"math/rand"
	"testing"

	"smol/internal/img"
)

func fuzzImage(rng *rand.Rand, w, h int) *img.Image {
	m := img.New(w, h)
	for i := range m.Pix {
		m.Pix[i] = byte(rng.Intn(256))
	}
	return m
}

// TestTruncationNeverPanics: every prefix of a valid stream must yield an
// error or a valid image from the plain, row-streaming, and progressive
// decoders — never a panic.
func TestTruncationNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := fuzzImage(rng, 33, 27)
	flat := Encode(m, 0)
	prog, err := EncodeProgressive(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, f func()) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: panic: %v", name, r)
			}
		}()
		f()
	}
	for n := 0; n < len(flat); n++ {
		p := flat[:n]
		check("decode", func() { Decode(p) })       //nolint:errcheck
		check("rows", func() { DecodeRows(p, 10) }) //nolint:errcheck
	}
	for n := 0; n < len(prog); n++ {
		p := prog[:n]
		check("progressive", func() { DecodeProgressive(p, 8, 8) }) //nolint:errcheck
	}
}

// TestByteCorruptionNeverPanics: arbitrary single-byte corruption must
// never panic the DEFLATE-backed decoder.
func TestByteCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := fuzzImage(rng, 24, 24)
	enc := Encode(m, 0)
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), enc...)
		corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			Decode(corrupted) //nolint:errcheck
		}()
	}
}
