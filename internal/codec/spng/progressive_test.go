package spng

import (
	"testing"

	"smol/internal/img"
)

func TestProgressiveFullReconstruction(t *testing.T) {
	m := gradientImage(96, 64)
	data, err := EncodeProgressive(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := DecodeProgressive(data, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 96 || got.H != 64 {
		t.Fatalf("dims %dx%d", got.W, got.H)
	}
	if stats.LevelsDecoded != 3 {
		t.Fatalf("decoded %d levels", stats.LevelsDecoded)
	}
	// Residual coding saturates only at extremes; smooth content should
	// reconstruct near-perfectly.
	if d := img.MeanAbsDiff(m, got); d > 0.5 {
		t.Fatalf("full reconstruction MAD %v", d)
	}
}

func TestProgressivePartialDecodeDoesLessWork(t *testing.T) {
	m := gradientImage(128, 128)
	data, err := EncodeProgressive(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	small, sStats, err := DecodeProgressive(data, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	full, fStats, err := DecodeProgressive(data, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if small.W >= full.W {
		t.Fatalf("partial decode returned %dx%d", small.W, small.H)
	}
	if small.W < 20 || small.H < 20 {
		t.Fatalf("partial decode below requested minimum: %dx%d", small.W, small.H)
	}
	if sStats.LevelsDecoded >= fStats.LevelsDecoded {
		t.Fatalf("partial decoded %d levels, full %d", sStats.LevelsDecoded, fStats.LevelsDecoded)
	}
	if sStats.BytesRead >= fStats.BytesRead {
		t.Fatalf("partial read %d bytes, full %d", sStats.BytesRead, fStats.BytesRead)
	}
}

func TestProgressiveLevelClamping(t *testing.T) {
	// Tiny images cannot host many levels; the encoder clamps.
	m := gradientImage(16, 16)
	data, err := EncodeProgressive(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := DecodeProgressive(data, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 16 || stats.LevelsTotal > 3 {
		t.Fatalf("dims %d levels %d", got.W, stats.LevelsTotal)
	}
}

func TestProgressiveSingleLevel(t *testing.T) {
	m := gradientImage(32, 24)
	data, err := EncodeProgressive(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeProgressive(data, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := img.MeanAbsDiff(m, got); d != 0 {
		t.Fatalf("single level should be lossless (MAD %v)", d)
	}
}

func TestProgressiveErrors(t *testing.T) {
	if _, err := EncodeProgressive(gradientImage(8, 8), 0); err == nil {
		t.Fatal("zero levels should error")
	}
	m := gradientImage(64, 64)
	data, err := EncodeProgressive(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		[]byte("XXXX0123456789"),
		data[:10],
		data[:len(data)/2],
	}
	for i, c := range cases {
		if _, _, err := DecodeProgressive(c, 0, 0); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
