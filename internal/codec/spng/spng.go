// Package spng implements a PNG-style lossless image codec: per-row
// predictive filters (None/Sub/Up/Average/Paeth, chosen per row by the
// minimum-sum-of-absolute-differences heuristic, as libpng does) over a
// DEFLATE stream.
//
// It stands in for the PNG thumbnails of the paper (libspng). Because the
// stream is row-sequential, it supports the "early stopping" low-fidelity
// feature of Table 4: DecodeRows inflates and unfilters only the first N
// rows, doing proportionally less work.
package spng

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"smol/internal/img"
)

// magic identifies an spng stream.
var magic = [4]byte{'S', 'P', 'N', 'G'}

// filter codes, matching PNG's definitions.
const (
	fNone = iota
	fSub
	fUp
	fAverage
	fPaeth
	numFilters
)

// Encode compresses m losslessly. level is the flate compression level
// (flate.DefaultCompression if 0).
func Encode(m *img.Image, level int) []byte {
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(m.W))
	binary.BigEndian.PutUint32(hdr[4:], uint32(m.H))
	buf.Write(hdr[:])

	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		panic(fmt.Sprintf("spng: flate writer: %v", err)) // only on bad level
	}
	stride := m.W * 3
	prev := make([]byte, stride) // zeroed: the row above row 0
	filtered := make([][]byte, numFilters)
	for i := range filtered {
		filtered[i] = make([]byte, stride)
	}
	for y := 0; y < m.H; y++ {
		row := m.Pix[y*stride : (y+1)*stride]
		best := chooseFilter(row, prev, filtered)
		if _, err := fw.Write([]byte{byte(best)}); err != nil {
			panic(err) // bytes.Buffer cannot fail
		}
		if _, err := fw.Write(filtered[best]); err != nil {
			panic(err)
		}
		prev = row
	}
	if err := fw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// chooseFilter applies every filter to row and returns the index of the one
// with the smallest sum of absolute (signed-byte) values.
func chooseFilter(row, prev []byte, filtered [][]byte) int {
	applyFilters(row, prev, filtered)
	best, bestScore := 0, -1
	for f := 0; f < numFilters; f++ {
		score := 0
		for _, b := range filtered[f] {
			v := int(int8(b))
			if v < 0 {
				v = -v
			}
			score += v
		}
		if bestScore < 0 || score < bestScore {
			best, bestScore = f, score
		}
	}
	return best
}

func applyFilters(row, prev []byte, filtered [][]byte) {
	const bpp = 3
	for i := range row {
		var left, up, upLeft byte
		if i >= bpp {
			left = row[i-bpp]
			upLeft = prev[i-bpp]
		}
		up = prev[i]
		filtered[fNone][i] = row[i]
		filtered[fSub][i] = row[i] - left
		filtered[fUp][i] = row[i] - up
		filtered[fAverage][i] = row[i] - byte((int(left)+int(up))/2)
		filtered[fPaeth][i] = row[i] - paeth(left, up, upLeft)
	}
}

// paeth is PNG's Paeth predictor.
func paeth(a, b, c byte) byte {
	p := int(a) + int(b) - int(c)
	pa, pb, pc := abs(p-int(a)), abs(p-int(b)), abs(p-int(c))
	if pa <= pb && pa <= pc {
		return a
	}
	if pb <= pc {
		return b
	}
	return c
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DecodeStats reports the work a (possibly partial) decode performed.
type DecodeStats struct {
	RowsDecoded int
	RowsTotal   int
}

// Decode decompresses the full image.
func Decode(data []byte) (*img.Image, error) {
	m, _, err := DecodeRows(data, 0)
	return m, err
}

// DecodeHeader returns the image dimensions without inflating pixel data.
func DecodeHeader(data []byte) (w, h int, err error) {
	if len(data) < 12 || !bytes.Equal(data[:4], magic[:]) {
		return 0, 0, errors.New("spng: bad magic")
	}
	w = int(binary.BigEndian.Uint32(data[4:]))
	h = int(binary.BigEndian.Uint32(data[8:]))
	if w <= 0 || h <= 0 || w > 1<<20 || h > 1<<20 || w*h > 1<<26 {
		return 0, 0, fmt.Errorf("spng: invalid dimensions %dx%d", w, h)
	}
	return w, h, nil
}

// DecodeRows decompresses only the first maxRows rows (all rows when
// maxRows <= 0), returning an image of exactly the decoded height. Because
// rows are stored top-to-bottom in one DEFLATE stream, stopping early skips
// both inflation and unfiltering of the remaining rows.
func DecodeRows(data []byte, maxRows int) (*img.Image, *DecodeStats, error) {
	w, h, err := DecodeHeader(data)
	if err != nil {
		return nil, nil, err
	}
	rows := h
	if maxRows > 0 && maxRows < h {
		rows = maxRows
	}
	stats := &DecodeStats{RowsTotal: h}
	fr := flate.NewReader(bytes.NewReader(data[12:]))
	defer fr.Close()
	br := bufio.NewReader(fr)

	out := img.New(w, rows)
	stride := w * 3
	prev := make([]byte, stride)
	for y := 0; y < rows; y++ {
		ftype, err := br.ReadByte()
		if err != nil {
			return nil, nil, fmt.Errorf("spng: row %d filter: %w", y, err)
		}
		if ftype >= numFilters {
			return nil, nil, fmt.Errorf("spng: row %d: invalid filter %d", y, ftype)
		}
		row := out.Pix[y*stride : (y+1)*stride]
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, nil, fmt.Errorf("spng: row %d pixels: %w", y, err)
		}
		unfilter(int(ftype), row, prev)
		prev = row
		stats.RowsDecoded++
	}
	return out, stats, nil
}

func unfilter(ftype int, row, prev []byte) {
	const bpp = 3
	switch ftype {
	case fNone:
	case fSub:
		for i := bpp; i < len(row); i++ {
			row[i] += row[i-bpp]
		}
	case fUp:
		for i := range row {
			row[i] += prev[i]
		}
	case fAverage:
		for i := range row {
			var left byte
			if i >= bpp {
				left = row[i-bpp]
			}
			row[i] += byte((int(left) + int(prev[i])) / 2)
		}
	case fPaeth:
		for i := range row {
			var left, upLeft byte
			if i >= bpp {
				left = row[i-bpp]
				upLeft = prev[i-bpp]
			}
			row[i] += paeth(left, prev[i], upLeft)
		}
	}
}
