package spng

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"smol/internal/img"
)

func gradientImage(w, h int) *img.Image {
	m := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m.Set(x, y, uint8(x*3), uint8(y*5), uint8(x+y))
		}
	}
	return m
}

func noiseImage(rng *rand.Rand, w, h int) *img.Image {
	m := img.New(w, h)
	rng.Read(m.Pix)
	return m
}

func TestRoundTripLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []*img.Image{
		gradientImage(64, 48),
		noiseImage(rng, 31, 17),
		gradientImage(1, 1),
		gradientImage(7, 128),
	} {
		data := Encode(m, 0)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%dx%d: %v", m.W, m.H, err)
		}
		if got.W != m.W || got.H != m.H || !bytes.Equal(got.Pix, m.Pix) {
			t.Fatalf("%dx%d: lossless round trip failed", m.W, m.H)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := noiseImage(rng, 1+rng.Intn(40), 1+rng.Intn(40))
		got, err := Decode(Encode(m, 0))
		return err == nil && bytes.Equal(got.Pix, m.Pix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionOnSmoothContent(t *testing.T) {
	m := gradientImage(128, 128)
	data := Encode(m, 0)
	if len(data) >= len(m.Pix) {
		t.Fatalf("smooth content did not compress: %d >= %d", len(data), len(m.Pix))
	}
}

func TestDecodeHeader(t *testing.T) {
	m := gradientImage(77, 33)
	data := Encode(m, 0)
	w, h, err := DecodeHeader(data)
	if err != nil || w != 77 || h != 33 {
		t.Fatalf("header = %d,%d,%v", w, h, err)
	}
}

func TestDecodeRowsEarlyStop(t *testing.T) {
	m := gradientImage(40, 100)
	data := Encode(m, 0)
	part, stats, err := DecodeRows(data, 25)
	if err != nil {
		t.Fatal(err)
	}
	if part.H != 25 || part.W != 40 {
		t.Fatalf("dims %dx%d", part.W, part.H)
	}
	if stats.RowsDecoded != 25 || stats.RowsTotal != 100 {
		t.Fatalf("stats %+v", stats)
	}
	// Decoded rows must match the full decode exactly.
	full, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	want := full.Crop(img.Rect{X1: 40, Y1: 25})
	if !bytes.Equal(part.Pix, want.Pix) {
		t.Fatal("early-stop rows differ from full decode")
	}
}

func TestDecodeRowsBeyondHeight(t *testing.T) {
	m := gradientImage(10, 10)
	data := Encode(m, 0)
	got, stats, err := DecodeRows(data, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got.H != 10 || stats.RowsDecoded != 10 {
		t.Fatalf("H=%d rows=%d", got.H, stats.RowsDecoded)
	}
}

func TestDecodeErrors(t *testing.T) {
	m := gradientImage(16, 16)
	data := Encode(m, 0)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("QOIF1234567890")},
		{"truncated header", data[:6]},
		{"truncated body", data[:len(data)/2]},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPaethMatchesSpec(t *testing.T) {
	// Exhaustive check of the predictor's tie-breaking rules against the
	// PNG specification's reference semantics.
	for a := 0; a < 256; a += 17 {
		for b := 0; b < 256; b += 17 {
			for c := 0; c < 256; c += 17 {
				got := paeth(byte(a), byte(b), byte(c))
				p := a + b - c
				pa, pb, pc := abs(p-a), abs(p-b), abs(p-c)
				var want byte
				switch {
				case pa <= pb && pa <= pc:
					want = byte(a)
				case pb <= pc:
					want = byte(b)
				default:
					want = byte(c)
				}
				if got != want {
					t.Fatalf("paeth(%d,%d,%d) = %d, want %d", a, b, c, got, want)
				}
			}
		}
	}
}

func TestFilterChoiceVaries(t *testing.T) {
	// Vertical gradient rows should prefer Up; the filter chooser must not
	// be stuck on a single filter for all content.
	m := img.New(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			m.Set(x, y, uint8(y*8), uint8(y*8), uint8(y*8))
		}
	}
	vertical := Encode(m, 0)
	rng := rand.New(rand.NewSource(9))
	noisy := Encode(noiseImage(rng, 32, 32), 0)
	if len(vertical) >= len(noisy) {
		t.Fatalf("vertical gradient (%d bytes) should compress far better than noise (%d bytes)",
			len(vertical), len(noisy))
	}
}
