package jpeg

import "fmt"

// encHuff is an encoder-side Huffman table: code and size per symbol.
type encHuff struct {
	code [256]uint16
	size [256]uint8
}

// buildEncHuff derives canonical codes from a huffSpec, exactly as JPEG's
// Annex C specifies.
func buildEncHuff(spec huffSpec) *encHuff {
	var h encHuff
	code := uint16(0)
	k := 0
	for length := 1; length <= 16; length++ {
		for i := 0; i < int(spec.counts[length-1]); i++ {
			sym := spec.values[k]
			h.code[sym] = code
			h.size[sym] = uint8(length)
			code++
			k++
		}
		code <<= 1
	}
	return &h
}

// decHuff is a decoder-side Huffman table using the standard JPEG
// min-code/max-code/value-pointer decode procedure (T.81 Annex F.2.2.3).
type decHuff struct {
	minCode [17]int32
	maxCode [17]int32 // -1 when no codes of this length
	valPtr  [17]int32
	values  []byte
}

// buildDecHuff derives the decode tables from a huffSpec.
func buildDecHuff(spec huffSpec) *decHuff {
	h := &decHuff{values: append([]byte(nil), spec.values...)}
	code := int32(0)
	k := int32(0)
	for length := 1; length <= 16; length++ {
		n := int32(spec.counts[length-1])
		if n == 0 {
			h.maxCode[length] = -1
		} else {
			h.valPtr[length] = k
			h.minCode[length] = code
			code += n
			k += n
			h.maxCode[length] = code - 1
		}
		code <<= 1
	}
	return h
}

// decode reads one Huffman-coded symbol from the bit reader.
func (h *decHuff) decode(br *bitReader) (byte, error) {
	code := int32(0)
	for length := 1; length <= 16; length++ {
		bit, err := br.readBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(bit)
		if h.maxCode[length] >= 0 && code <= h.maxCode[length] {
			idx := h.valPtr[length] + code - h.minCode[length]
			if int(idx) >= len(h.values) {
				return 0, fmt.Errorf("jpeg: corrupt huffman stream")
			}
			return h.values[idx], nil
		}
	}
	return 0, fmt.Errorf("jpeg: invalid huffman code")
}

// bitCount returns the number of bits needed to represent |v| (the JPEG
// "magnitude category").
func bitCount(v int32) uint8 {
	if v < 0 {
		v = -v
	}
	var n uint8
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// encodeMagnitude maps a signed value to its JPEG magnitude bits.
func encodeMagnitude(v int32, n uint8) uint16 {
	if v >= 0 {
		return uint16(v)
	}
	return uint16(v + (1 << n) - 1)
}

// extendMagnitude reconstructs a signed value from n magnitude bits (T.81
// F.2.2.1 EXTEND).
func extendMagnitude(bits uint16, n uint8) int32 {
	if n == 0 {
		return 0
	}
	v := int32(bits)
	if v < 1<<(n-1) {
		v += -(1 << n) + 1
	}
	return v
}
