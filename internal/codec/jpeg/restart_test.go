package jpeg

import (
	"testing"

	"smol/internal/img"
)

func TestRestartIntervalRoundTrip(t *testing.T) {
	m := testImage(128, 96, 21)
	for _, sub := range []Subsampling{Sub444, Sub420} {
		for _, interval := range []int{1, 4, 7, 16} {
			plain := Encode(m, EncodeOptions{Quality: 90, Subsampling: sub})
			withRST := Encode(m, EncodeOptions{Quality: 90, Subsampling: sub, RestartInterval: interval})
			if len(withRST) <= len(plain) {
				t.Fatalf("%v/%d: restart markers should add bytes (%d vs %d)",
					sub, interval, len(withRST), len(plain))
			}
			decPlain, err := Decode(plain)
			if err != nil {
				t.Fatal(err)
			}
			decRST, err := Decode(withRST)
			if err != nil {
				t.Fatalf("%v/%d: %v", sub, interval, err)
			}
			// Restart markers change the entropy framing, not the pixels.
			if d := img.MeanAbsDiff(decPlain, decRST); d != 0 {
				t.Fatalf("%v/%d: restart framing changed pixels (MAD=%v)", sub, interval, d)
			}
		}
	}
}

func TestRestartROISkipsEntropyDecoding(t *testing.T) {
	m := testImage(256, 256, 22)
	// One restart segment per MCU row (256/8 = 32 MCUs per row).
	data := Encode(m, EncodeOptions{Quality: 85, RestartInterval: 32})
	full, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	roi := img.Rect{X0: 96, Y0: 160, X1: 160, Y1: 224}
	part, region, stats, err := DecodeWithOptions(data, DecodeOptions{ROI: &roi})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MCUsSkippedEntropy == 0 {
		t.Fatal("ROI below segment boundaries should skip whole restart segments")
	}
	if stats.EntropyBytesSkipped == 0 {
		t.Fatal("skipping segments should pass over compressed bytes")
	}
	// Rows above the ROI were skipped: entropy-decoded MCUs cover only
	// [firstSegment, lastNeededRow].
	if stats.MCUsEntropyDecoded+stats.MCUsSkippedEntropy > stats.MCUsTotal {
		t.Fatalf("MCU accounting broken: %+v", stats)
	}
	wantSkipped := (roi.Y0 / 8) * 32 // all full rows above the ROI
	if stats.MCUsSkippedEntropy != wantSkipped {
		t.Fatalf("skipped %d MCUs, want %d", stats.MCUsSkippedEntropy, wantSkipped)
	}
	// Pixels must still match the full decode exactly.
	want := full.Crop(region)
	if d := img.MeanAbsDiff(part, want); d != 0 {
		t.Fatalf("restart-skip ROI decode differs from full decode (MAD=%v)", d)
	}
}

func TestRestartROICheaperThanPlainROI(t *testing.T) {
	m := testImage(256, 256, 23)
	plain := Encode(m, EncodeOptions{Quality: 85})
	withRST := Encode(m, EncodeOptions{Quality: 85, RestartInterval: 32})
	roi := img.Rect{X0: 96, Y0: 192, X1: 160, Y1: 256}
	_, _, plainStats, err := DecodeWithOptions(plain, DecodeOptions{ROI: &roi})
	if err != nil {
		t.Fatal(err)
	}
	_, _, rstStats, err := DecodeWithOptions(withRST, DecodeOptions{ROI: &roi})
	if err != nil {
		t.Fatal(err)
	}
	// Without restarts, every MCU above the ROI is entropy-decoded; with
	// them, most are skipped.
	if rstStats.MCUsEntropyDecoded >= plainStats.MCUsEntropyDecoded {
		t.Fatalf("restart ROI decoded %d MCUs, plain ROI %d",
			rstStats.MCUsEntropyDecoded, plainStats.MCUsEntropyDecoded)
	}
	if rstStats.EntropyBytesRead >= plainStats.EntropyBytesRead {
		t.Fatalf("restart ROI read %d entropy bytes, plain ROI %d",
			rstStats.EntropyBytesRead, plainStats.EntropyBytesRead)
	}
}

func TestRestartCorruptMarkerDetected(t *testing.T) {
	m := testImage(64, 64, 24)
	data := Encode(m, EncodeOptions{Quality: 85, RestartInterval: 4})
	// Find the first restart marker in the scan and corrupt it.
	corrupted := append([]byte(nil), data...)
	found := false
	for i := len(corrupted) / 3; i+1 < len(corrupted); i++ {
		if corrupted[i] == 0xff && isRST(corrupted[i+1]) {
			corrupted[i+1] = 0xc7 // not a restart marker
			found = true
			break
		}
	}
	if !found {
		t.Skip("no restart marker found to corrupt")
	}
	if _, err := Decode(corrupted); err == nil {
		t.Fatal("corrupt restart marker should fail decoding")
	}
}
