package jpeg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smol/internal/img"
)

// quickCfg keeps the property tests fast while still exploring a wide
// parameter space.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}

// randImage renders a deterministic pseudo-random image of the given size.
func randImage(rng *rand.Rand, w, h int) *img.Image {
	m := img.New(w, h)
	for i := range m.Pix {
		m.Pix[i] = byte(rng.Intn(256))
	}
	return m
}

// TestQuickRoundTripDimensions: decode(encode(m)) preserves dimensions and
// never errors for arbitrary sizes, qualities, and subsampling modes.
func TestQuickRoundTripDimensions(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		w := 1 + rng.Intn(80)
		h := 1 + rng.Intn(80)
		q := 1 + rng.Intn(100)
		m := randImage(rng, w, h)
		enc := Encode(m, EncodeOptions{Quality: q, Subsampling: Subsampling(rng.Intn(2))})
		dec, err := Decode(enc)
		if err != nil {
			t.Logf("seed %d (%dx%d q%d): %v", seed, w, h, q, err)
			return false
		}
		return dec.W == w && dec.H == h
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickROIMatchesFullDecode: for arbitrary ROIs, the partially decoded
// region is pixel-identical to the same region of a full decode — partial
// decoding changes work, never values (Algorithm 1's correctness
// requirement).
func TestQuickROIMatchesFullDecode(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		w := 16 + rng.Intn(96)
		h := 16 + rng.Intn(96)
		m := randImage(rng, w, h)
		enc := Encode(m, EncodeOptions{Quality: 50 + rng.Intn(50), Subsampling: Subsampling(rng.Intn(2))})
		full, err := Decode(enc)
		if err != nil {
			return false
		}
		// An arbitrary rectangle inside the image.
		x0 := rng.Intn(w)
		y0 := rng.Intn(h)
		roi := img.Rect{X0: x0, Y0: y0, X1: x0 + 1 + rng.Intn(w-x0), Y1: y0 + 1 + rng.Intn(h-y0)}
		part, region, _, err := DecodeWithOptions(enc, DecodeOptions{ROI: &roi})
		if err != nil {
			t.Logf("seed %d roi %+v: %v", seed, roi, err)
			return false
		}
		// The returned region must contain the requested ROI.
		if region.X0 > roi.X0 || region.Y0 > roi.Y0 || region.X1 < roi.X1 || region.Y1 < roi.Y1 {
			t.Logf("seed %d: region %+v does not cover roi %+v", seed, region, roi)
			return false
		}
		for y := 0; y < part.H; y++ {
			for x := 0; x < part.W; x++ {
				for c := 0; c < 3; c++ {
					if part.Pix[(y*part.W+x)*3+c] != full.Pix[((y+region.Y0)*w+x+region.X0)*3+c] {
						t.Logf("seed %d: mismatch at (%d,%d) c%d", seed, x, y, c)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEarlyStopPrefixMatches: decoding with an arbitrary early-stop
// row yields rows identical to the full decode's prefix.
func TestQuickEarlyStopPrefixMatches(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		w := 8 + rng.Intn(64)
		h := 16 + rng.Intn(64)
		m := randImage(rng, w, h)
		enc := Encode(m, EncodeOptions{Quality: 80})
		full, err := Decode(enc)
		if err != nil {
			return false
		}
		stop := 1 + rng.Intn(h)
		part, region, _, err := DecodeWithOptions(enc, DecodeOptions{EarlyStopRow: stop})
		if err != nil {
			t.Logf("seed %d stop %d: %v", seed, stop, err)
			return false
		}
		if region.Y0 != 0 || region.Y1 < stop {
			t.Logf("seed %d: early-stop region %+v misses row %d", seed, region, stop)
			return false
		}
		for i := 0; i < part.W*part.H*3; i++ {
			if part.Pix[i] != full.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRestartIntervalRoundTrip: restart markers at arbitrary
// intervals never change decoded pixels.
func TestQuickRestartIntervalRoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		w := 24 + rng.Intn(48)
		h := 24 + rng.Intn(48)
		m := randImage(rng, w, h)
		plain := Encode(m, EncodeOptions{Quality: 75})
		withRST := Encode(m, EncodeOptions{Quality: 75, RestartInterval: 1 + rng.Intn(8)})
		a, err := Decode(plain)
		if err != nil {
			return false
		}
		b, err := Decode(withRST)
		if err != nil {
			t.Logf("seed %d: restart decode failed: %v", seed, err)
			return false
		}
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}
