package jpeg

import (
	"math/rand"
	"testing"
)

// TestTruncationNeverPanics: decoding every prefix of a valid stream must
// return an error or a valid image, never panic or loop — the robustness a
// runtime engine needs when fed damaged inputs.
func TestTruncationNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := randImage(rng, 40, 32)
	enc := Encode(m, EncodeOptions{Quality: 80, RestartInterval: 4})
	for n := 0; n < len(enc); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d/%d bytes: panic: %v", n, len(enc), r)
				}
			}()
			dec, err := Decode(enc[:n])
			if err == nil && (dec == nil || dec.W != 40 || dec.H != 32) {
				t.Fatalf("prefix %d: nil error with bad image", n)
			}
		}()
	}
}

// TestBitFlipsNeverPanic: single-byte corruptions anywhere in the stream
// must never panic the decoder.
func TestBitFlipsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randImage(rng, 32, 24)
	enc := Encode(m, EncodeOptions{Quality: 70})
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), enc...)
		corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v", trial, r)
				}
			}()
			Decode(corrupted) //nolint:errcheck // any outcome but a panic is acceptable
		}()
	}
}
