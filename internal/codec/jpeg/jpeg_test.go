package jpeg

import (
	"math"
	"math/rand"
	"testing"

	"smol/internal/img"
)

// testImage builds a structured image: smooth gradients plus blocks of
// texture, so compression has both easy and hard regions.
func testImage(w, h int, seed int64) *img.Image {
	rng := rand.New(rand.NewSource(seed))
	m := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := uint8((x * 255) / w)
			g := uint8((y * 255) / h)
			b := uint8((x + y) % 256)
			if (x/16+y/16)%2 == 0 {
				b = uint8(rng.Intn(256))
			}
			m.Set(x, y, r, g, b)
		}
	}
	return m
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var in, coeffs, out block
		for i := range in {
			in[i] = int32(rng.Intn(256))
		}
		fdct(&in, &coeffs)
		idct(&coeffs, &out)
		for i := range in {
			d := in[i] - out[i]
			if d < -2 || d > 2 {
				t.Fatalf("trial %d: sample %d: %d -> %d", trial, i, in[i], out[i])
			}
		}
	}
}

func TestDCTDCOnly(t *testing.T) {
	// A constant block must produce only a DC coefficient.
	var in, coeffs block
	for i := range in {
		in[i] = 200
	}
	fdct(&in, &coeffs)
	if coeffs[0] != (200-128)*8 {
		t.Fatalf("DC = %d, want %d", coeffs[0], (200-128)*8)
	}
	for i := 1; i < 64; i++ {
		if coeffs[i] != 0 {
			t.Fatalf("AC[%d] = %d, want 0", i, coeffs[i])
		}
	}
}

func TestHuffmanTablesRoundTrip(t *testing.T) {
	specs := []huffSpec{stdDCLuma, stdACLuma, stdDCChroma, stdACChroma}
	for si, spec := range specs {
		enc := buildEncHuff(spec)
		dec := buildDecHuff(spec)
		// Encode each symbol then decode it back.
		for _, sym := range spec.values {
			var bw bitWriter
			bw.writeBits(enc.code[sym], enc.size[sym])
			bw.flush()
			br := &bitReader{data: bw.buf}
			got, err := dec.decode(br)
			if err != nil {
				t.Fatalf("spec %d sym %#x: %v", si, sym, err)
			}
			if got != sym {
				t.Fatalf("spec %d: encoded %#x decoded %#x", si, sym, got)
			}
		}
	}
}

func TestMagnitudeRoundTrip(t *testing.T) {
	for v := int32(-2047); v <= 2047; v++ {
		n := bitCount(v)
		got := extendMagnitude(encodeMagnitude(v, n), n)
		if got != v {
			t.Fatalf("magnitude round trip: %d -> %d (n=%d)", v, got, n)
		}
	}
}

func TestBitIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var bw bitWriter
	type item struct {
		bits uint16
		n    uint8
	}
	var items []item
	for i := 0; i < 1000; i++ {
		n := uint8(1 + rng.Intn(12))
		bits := uint16(rng.Intn(1 << n))
		items = append(items, item{bits, n})
		bw.writeBits(bits, n)
	}
	bw.flush()
	br := &bitReader{data: bw.buf}
	for i, it := range items {
		got, err := br.readBits(it.n)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.bits {
			t.Fatalf("item %d: wrote %d read %d (n=%d)", i, it.bits, got, it.n)
		}
	}
}

func TestByteStuffing(t *testing.T) {
	var bw bitWriter
	bw.writeBits(0xffff, 16)
	bw.flush()
	// Expect ff 00 ff 00.
	want := []byte{0xff, 0x00, 0xff, 0x00}
	if len(bw.buf) != len(want) {
		t.Fatalf("buf = %x", bw.buf)
	}
	for i := range want {
		if bw.buf[i] != want[i] {
			t.Fatalf("buf = %x, want %x", bw.buf, want)
		}
	}
	br := &bitReader{data: bw.buf}
	got, err := br.readBits(16)
	if err != nil || got != 0xffff {
		t.Fatalf("read %x err %v", got, err)
	}
}

func roundTripPSNR(t *testing.T, m *img.Image, opts EncodeOptions) float64 {
	t.Helper()
	data := Encode(m, opts)
	dec, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.W != m.W || dec.H != m.H {
		t.Fatalf("dims %dx%d, want %dx%d", dec.W, dec.H, m.W, m.H)
	}
	return img.PSNR(m, dec)
}

func TestEncodeDecodeQuality(t *testing.T) {
	m := testImage(96, 64, 3)
	p95 := roundTripPSNR(t, m, EncodeOptions{Quality: 95})
	p75 := roundTripPSNR(t, m, EncodeOptions{Quality: 75})
	p30 := roundTripPSNR(t, m, EncodeOptions{Quality: 30})
	if p95 < 30 {
		t.Fatalf("q95 PSNR = %v, want >= 30 dB", p95)
	}
	if !(p95 > p75 && p75 > p30) {
		t.Fatalf("PSNR ordering violated: q95=%v q75=%v q30=%v", p95, p75, p30)
	}
}

func TestEncodeSizeDecreasesWithQuality(t *testing.T) {
	m := testImage(128, 128, 4)
	s95 := len(Encode(m, EncodeOptions{Quality: 95}))
	s75 := len(Encode(m, EncodeOptions{Quality: 75}))
	s30 := len(Encode(m, EncodeOptions{Quality: 30}))
	if !(s95 > s75 && s75 > s30) {
		t.Fatalf("size ordering violated: %d %d %d", s95, s75, s30)
	}
}

func TestEncodeDecode420(t *testing.T) {
	// The test image has per-pixel random chroma noise, which 4:2:0
	// legitimately discards, so the threshold is low; smooth-content
	// fidelity is covered by TestGrayImageChromaNeutral.
	m := testImage(96, 64, 5)
	p := roundTripPSNR(t, m, EncodeOptions{Quality: 90, Subsampling: Sub420})
	if p < 18 {
		t.Fatalf("4:2:0 PSNR = %v", p)
	}
	// 4:2:0 should compress smaller than 4:4:4 at equal quality.
	s444 := len(Encode(m, EncodeOptions{Quality: 90, Subsampling: Sub444}))
	s420 := len(Encode(m, EncodeOptions{Quality: 90, Subsampling: Sub420}))
	if s420 >= s444 {
		t.Fatalf("4:2:0 (%d bytes) not smaller than 4:4:4 (%d bytes)", s420, s444)
	}
}

func TestOddDimensions(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {7, 5}, {9, 17}, {33, 31}, {17, 16}} {
		m := testImage(dims[0], dims[1], 6)
		for _, sub := range []Subsampling{Sub444, Sub420} {
			data := Encode(m, EncodeOptions{Quality: 90, Subsampling: sub})
			dec, err := Decode(data)
			if err != nil {
				t.Fatalf("%v %v: %v", dims, sub, err)
			}
			if dec.W != m.W || dec.H != m.H {
				t.Fatalf("%v %v: got %dx%d", dims, sub, dec.W, dec.H)
			}
		}
	}
}

func TestDecodeHeader(t *testing.T) {
	m := testImage(123, 45, 7)
	data := Encode(m, EncodeOptions{})
	w, h, err := DecodeHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if w != 123 || h != 45 {
		t.Fatalf("header dims %dx%d", w, h)
	}
}

func TestROIDecodeMatchesFullDecode(t *testing.T) {
	m := testImage(128, 96, 8)
	for _, sub := range []Subsampling{Sub444, Sub420} {
		data := Encode(m, EncodeOptions{Quality: 92, Subsampling: sub})
		full, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		roi := img.Rect{X0: 30, Y0: 20, X1: 90, Y1: 70}
		part, region, _, err := DecodeWithOptions(data, DecodeOptions{ROI: &roi})
		if err != nil {
			t.Fatalf("%v: %v", sub, err)
		}
		if region.X0 > roi.X0 || region.Y0 > roi.Y0 || region.X1 < roi.X1 || region.Y1 < roi.Y1 {
			t.Fatalf("%v: region %+v does not contain ROI %+v", sub, region, roi)
		}
		want := full.Crop(region)
		if part.W != want.W || part.H != want.H {
			t.Fatalf("%v: dims %dx%d want %dx%d", sub, part.W, part.H, want.W, want.H)
		}
		if d := img.MeanAbsDiff(part, want); d != 0 {
			t.Fatalf("%v: ROI decode differs from full decode crop (MAD=%v)", sub, d)
		}
	}
}

func TestROIDecodeSkipsWork(t *testing.T) {
	m := testImage(256, 256, 9)
	data := Encode(m, EncodeOptions{Quality: 85})
	_, _, fullStats, err := DecodeWithOptions(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	roi := img.CenterCropRect(256, 256, 64, 64)
	_, _, roiStats, err := DecodeWithOptions(data, DecodeOptions{ROI: &roi})
	if err != nil {
		t.Fatal(err)
	}
	if roiStats.BlocksIDCT >= fullStats.BlocksIDCT/4 {
		t.Fatalf("ROI should IDCT far fewer blocks: %d vs %d", roiStats.BlocksIDCT, fullStats.BlocksIDCT)
	}
	if roiStats.MCUsEntropyDecoded >= fullStats.MCUsEntropyDecoded {
		t.Fatalf("ROI should entropy-decode fewer MCUs (early stop): %d vs %d",
			roiStats.MCUsEntropyDecoded, fullStats.MCUsEntropyDecoded)
	}
	if roiStats.EntropyBytesRead >= fullStats.EntropyBytesRead {
		t.Fatalf("ROI should read fewer entropy bytes: %d vs %d",
			roiStats.EntropyBytesRead, fullStats.EntropyBytesRead)
	}
}

func TestEarlyStopDecode(t *testing.T) {
	m := testImage(64, 128, 10)
	data := Encode(m, EncodeOptions{Quality: 92})
	full, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	part, region, stats, err := DecodeWithOptions(data, DecodeOptions{EarlyStopRow: 40})
	if err != nil {
		t.Fatal(err)
	}
	if region.Y1 < 40 {
		t.Fatalf("region %+v should cover requested rows", region)
	}
	want := full.Crop(region)
	if d := img.MeanAbsDiff(part, want); d != 0 {
		t.Fatalf("early-stop rows differ (MAD=%v)", d)
	}
	if stats.MCUsEntropyDecoded >= stats.MCUsTotal {
		t.Fatal("early stop did not skip trailing MCUs")
	}
}

func TestDecodeErrors(t *testing.T) {
	m := testImage(32, 32, 11)
	data := Encode(m, EncodeOptions{})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no SOI", []byte{0x12, 0x34}},
		{"truncated header", data[:8]},
		{"truncated scan", data[:len(data)-len(data)/3]},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDecodeROIOutsideImage(t *testing.T) {
	m := testImage(32, 32, 12)
	data := Encode(m, EncodeOptions{})
	roi := img.Rect{X0: 100, Y0: 100, X1: 120, Y1: 120}
	if _, _, _, err := DecodeWithOptions(data, DecodeOptions{ROI: &roi}); err == nil {
		t.Fatal("expected error for out-of-bounds ROI")
	}
}

func TestQuantTableScaling(t *testing.T) {
	q100 := scaleQuantTable(&stdLumaQuant, 100)
	for i, v := range q100 {
		if v != 1 {
			t.Fatalf("q100[%d] = %d, want 1", i, v)
		}
	}
	q50 := scaleQuantTable(&stdLumaQuant, 50)
	for i := range q50 {
		if q50[i] != stdLumaQuant[i] {
			t.Fatalf("q50 should equal the base table at index %d", i)
		}
	}
	q10 := scaleQuantTable(&stdLumaQuant, 10)
	for i := range q10 {
		if q10[i] < q50[i] {
			t.Fatalf("q10 should be coarser than q50 at index %d", i)
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	var seen [64]bool
	for _, z := range zigzag {
		if z < 0 || z >= 64 || seen[z] {
			t.Fatalf("zigzag is not a permutation")
		}
		seen[z] = true
	}
	for i, z := range zigzag {
		if unzigzag[z] != i {
			t.Fatal("unzigzag is not the inverse of zigzag")
		}
	}
}

func TestGrayImageChromaNeutral(t *testing.T) {
	// A pure gray image should survive 4:2:0 with high fidelity since chroma
	// is constant.
	m := img.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := uint8((x*4 + y) % 256)
			m.Set(x, y, v, v, v)
		}
	}
	data := Encode(m, EncodeOptions{Quality: 95, Subsampling: Sub420})
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p := img.PSNR(m, dec); p < 35 && !math.IsInf(p, 1) {
		t.Fatalf("gray PSNR = %v", p)
	}
}
