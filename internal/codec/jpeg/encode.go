package jpeg

import (
	"fmt"

	"smol/internal/img"
)

// Subsampling selects the chroma subsampling mode of the encoded image.
type Subsampling int

const (
	// Sub444 encodes chroma at full resolution (one 8x8 block per component
	// per MCU).
	Sub444 Subsampling = iota
	// Sub420 encodes chroma at half resolution in both dimensions (16x16
	// luma MCUs), the dominant mode in photographic JPEGs.
	Sub420
)

func (s Subsampling) String() string {
	switch s {
	case Sub444:
		return "4:4:4"
	case Sub420:
		return "4:2:0"
	default:
		return fmt.Sprintf("Subsampling(%d)", int(s))
	}
}

// EncodeOptions configures Encode.
type EncodeOptions struct {
	// Quality is the IJG quality setting in [1, 100]. Zero means 75.
	Quality int
	// Subsampling selects 4:4:4 or 4:2:0 chroma subsampling.
	Subsampling Subsampling
	// RestartInterval, when > 0, emits a restart marker every this many
	// MCUs (the DRI mechanism of T.81 §B.2.4.4). Restart segments are
	// independently decodable, which lets ROI decoding skip the entropy
	// decoding of whole segments before the region of interest — the
	// "macroblock-based partial decoding" of the paper's Figure 3.
	RestartInterval int
}

// DefaultQuality is used when EncodeOptions.Quality is zero.
const DefaultQuality = 75

// Encode compresses m as a baseline JFIF JPEG.
func Encode(m *img.Image, opts EncodeOptions) []byte {
	q := opts.Quality
	if q == 0 {
		q = DefaultQuality
	}
	lumaQ := scaleQuantTable(&stdLumaQuant, q)
	chromaQ := scaleQuantTable(&stdChromaQuant, q)

	e := &encoder{
		lumaQ:    lumaQ,
		chromaQ:  chromaQ,
		dcLuma:   buildEncHuff(stdDCLuma),
		acLuma:   buildEncHuff(stdACLuma),
		dcChroma: buildEncHuff(stdDCChroma),
		acChroma: buildEncHuff(stdACChroma),
		restart:  opts.RestartInterval,
	}

	e.writeMarkers(m.W, m.H, opts.Subsampling)
	y, cb, cr := rgbToPlanarYCbCr(m)
	switch opts.Subsampling {
	case Sub420:
		e.encodeScan420(m.W, m.H, y, cb, cr)
	default:
		e.encodeScan444(m.W, m.H, y, cb, cr)
	}
	e.bw.flush()
	e.out = append(e.out, e.bw.buf...)
	e.out = append(e.out, 0xff, 0xd9) // EOI
	return e.out
}

type encoder struct {
	out     []byte
	bw      bitWriter
	lumaQ   [64]int32
	chromaQ [64]int32

	dcLuma, acLuma     *encHuff
	dcChroma, acChroma *encHuff

	dcPred [3]int32

	// restart is the restart interval in MCUs (0 = disabled).
	restart    int
	mcuCount   int
	restartIdx int
}

// maybeRestart emits a restart marker after every restart-interval MCUs,
// flushing the bit stream to a byte boundary and resetting DC prediction.
func (e *encoder) maybeRestart(remainingMCUs int) {
	e.mcuCount++
	if e.restart == 0 || e.mcuCount%e.restart != 0 || remainingMCUs == 0 {
		return
	}
	e.bw.flush()
	e.bw.buf = append(e.bw.buf, 0xff, 0xd0+byte(e.restartIdx&7))
	e.restartIdx++
	e.dcPred = [3]int32{}
}

func (e *encoder) writeMarkers(w, h int, sub Subsampling) {
	// SOI.
	e.out = append(e.out, 0xff, 0xd8)
	// APP0 JFIF header.
	e.segment(0xe0, []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0})
	// DQT: table 0 (luma), table 1 (chroma), zig-zag order.
	dqt := make([]byte, 0, 2*65)
	dqt = append(dqt, 0x00)
	for i := 0; i < 64; i++ {
		dqt = append(dqt, byte(e.lumaQ[zigzag[i]]))
	}
	dqt = append(dqt, 0x01)
	for i := 0; i < 64; i++ {
		dqt = append(dqt, byte(e.chromaQ[zigzag[i]]))
	}
	e.segment(0xdb, dqt)
	// SOF0: baseline, 8-bit, 3 components.
	hs, vs := byte(1), byte(1)
	if sub == Sub420 {
		hs, vs = 2, 2
	}
	sof := []byte{
		8, // precision
		byte(h >> 8), byte(h), byte(w >> 8), byte(w),
		3,
		1, hs<<4 | vs, 0, // Y: sampling, quant table 0
		2, 0x11, 1, // Cb
		3, 0x11, 1, // Cr
	}
	e.segment(0xc0, sof)
	// DHT: four standard tables.
	e.segment(0xc4, dhtPayload(0x00, stdDCLuma))
	e.segment(0xc4, dhtPayload(0x10, stdACLuma))
	e.segment(0xc4, dhtPayload(0x01, stdDCChroma))
	e.segment(0xc4, dhtPayload(0x11, stdACChroma))
	// DRI: restart interval in MCUs.
	if e.restart > 0 {
		e.segment(0xdd, []byte{byte(e.restart >> 8), byte(e.restart)})
	}
	// SOS.
	e.segment(0xda, []byte{
		3,
		1, 0x00, // Y uses DC 0 / AC 0
		2, 0x11, // Cb uses DC 1 / AC 1
		3, 0x11, // Cr
		0, 63, 0, // spectral selection (baseline fixed)
	})
}

func dhtPayload(class byte, spec huffSpec) []byte {
	p := make([]byte, 0, 1+16+len(spec.values))
	p = append(p, class)
	p = append(p, spec.counts[:]...)
	p = append(p, spec.values...)
	return p
}

func (e *encoder) segment(marker byte, payload []byte) {
	n := len(payload) + 2
	e.out = append(e.out, 0xff, marker, byte(n>>8), byte(n))
	e.out = append(e.out, payload...)
}

// plane is a padded planar channel.
type plane struct {
	w, h int
	pix  []uint8
}

func (p *plane) at(x, y int) uint8 {
	if x >= p.w {
		x = p.w - 1
	}
	if y >= p.h {
		y = p.h - 1
	}
	return p.pix[y*p.w+x]
}

// rgbToPlanarYCbCr converts to full-range JFIF YCbCr planes.
func rgbToPlanarYCbCr(m *img.Image) (y, cb, cr *plane) {
	n := m.W * m.H
	y = &plane{w: m.W, h: m.H, pix: make([]uint8, n)}
	cb = &plane{w: m.W, h: m.H, pix: make([]uint8, n)}
	cr = &plane{w: m.W, h: m.H, pix: make([]uint8, n)}
	for i := 0; i < n; i++ {
		r := float64(m.Pix[i*3])
		g := float64(m.Pix[i*3+1])
		b := float64(m.Pix[i*3+2])
		y.pix[i] = img.ClampF(0.299*r + 0.587*g + 0.114*b)
		cb.pix[i] = img.ClampF(128 - 0.168736*r - 0.331264*g + 0.5*b)
		cr.pix[i] = img.ClampF(128 + 0.5*r - 0.418688*g - 0.081312*b)
	}
	return y, cb, cr
}

// downsample2x2 box-averages a plane to half resolution (rounding up).
func downsample2x2(p *plane) *plane {
	w := (p.w + 1) / 2
	h := (p.h + 1) / 2
	out := &plane{w: w, h: h, pix: make([]uint8, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := int(p.at(2*x, 2*y)) + int(p.at(2*x+1, 2*y)) +
				int(p.at(2*x, 2*y+1)) + int(p.at(2*x+1, 2*y+1))
			out.pix[y*w+x] = uint8((s + 2) / 4)
		}
	}
	return out
}

// loadBlock extracts an 8x8 block at (bx*8, by*8) with edge replication.
func loadBlock(p *plane, bx, by int, b *block) {
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			b[y*blockSize+x] = int32(p.at(bx*blockSize+x, by*blockSize+y))
		}
	}
}

// encodeBlock runs DCT, quantization and entropy coding for one block.
func (e *encoder) encodeBlock(samples *block, quant *[64]int32, comp int, dc, ac *encHuff) {
	var coeffs block
	fdct(samples, &coeffs)
	var quantized block
	for i := 0; i < 64; i++ {
		c := coeffs[i]
		q := quant[i]
		// Round to nearest with proper sign handling.
		if c >= 0 {
			quantized[i] = (c + q/2) / q
		} else {
			quantized[i] = -((-c + q/2) / q)
		}
	}
	// DC coefficient: difference coding.
	diff := quantized[0] - e.dcPred[comp]
	e.dcPred[comp] = quantized[0]
	n := bitCount(diff)
	e.bw.writeBits(uint16(dc.code[n]), dc.size[n])
	e.bw.writeBits(encodeMagnitude(diff, n), n)
	// AC coefficients: run-length of zeros in zig-zag order.
	run := 0
	for k := 1; k < 64; k++ {
		v := quantized[zigzag[k]]
		if v == 0 {
			run++
			continue
		}
		for run > 15 {
			// ZRL: sixteen zeros.
			e.bw.writeBits(uint16(ac.code[0xf0]), ac.size[0xf0])
			run -= 16
		}
		nn := bitCount(v)
		sym := byte(run<<4) | nn
		e.bw.writeBits(uint16(ac.code[sym]), ac.size[sym])
		e.bw.writeBits(encodeMagnitude(v, nn), nn)
		run = 0
	}
	if run > 0 {
		e.bw.writeBits(uint16(ac.code[0x00]), ac.size[0x00]) // EOB
	}
}

func (e *encoder) encodeScan444(w, h int, y, cb, cr *plane) {
	mcusX := (w + blockSize - 1) / blockSize
	mcusY := (h + blockSize - 1) / blockSize
	total := mcusX * mcusY
	var b block
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			loadBlock(y, mx, my, &b)
			e.encodeBlock(&b, &e.lumaQ, 0, e.dcLuma, e.acLuma)
			loadBlock(cb, mx, my, &b)
			e.encodeBlock(&b, &e.chromaQ, 1, e.dcChroma, e.acChroma)
			loadBlock(cr, mx, my, &b)
			e.encodeBlock(&b, &e.chromaQ, 2, e.dcChroma, e.acChroma)
			e.maybeRestart(total - (my*mcusX + mx + 1))
		}
	}
}

func (e *encoder) encodeScan420(w, h int, y, cb, cr *plane) {
	cbDown := downsample2x2(cb)
	crDown := downsample2x2(cr)
	mcusX := (w + 15) / 16
	mcusY := (h + 15) / 16
	total := mcusX * mcusY
	var b block
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			// Four luma blocks in raster order within the MCU.
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					loadBlock(y, mx*2+dx, my*2+dy, &b)
					e.encodeBlock(&b, &e.lumaQ, 0, e.dcLuma, e.acLuma)
				}
			}
			loadBlock(cbDown, mx, my, &b)
			e.encodeBlock(&b, &e.chromaQ, 1, e.dcChroma, e.acChroma)
			loadBlock(crDown, mx, my, &b)
			e.encodeBlock(&b, &e.chromaQ, 2, e.dcChroma, e.acChroma)
			e.maybeRestart(total - (my*mcusX + mx + 1))
		}
	}
}
