package jpeg

import (
	"fmt"
	"io"
)

// bitWriter writes MSB-first bits with JPEG 0xFF byte stuffing.
type bitWriter struct {
	buf   []byte
	acc   uint32
	nbits uint
}

func (w *bitWriter) writeBits(bits uint16, n uint8) {
	if n == 0 {
		return
	}
	w.acc = w.acc<<n | uint32(bits)&((1<<n)-1)
	w.nbits += uint(n)
	for w.nbits >= 8 {
		b := byte(w.acc >> (w.nbits - 8))
		w.buf = append(w.buf, b)
		if b == 0xff {
			w.buf = append(w.buf, 0x00) // byte stuffing
		}
		w.nbits -= 8
	}
}

// flush pads the final partial byte with 1-bits as the standard requires.
func (w *bitWriter) flush() {
	if w.nbits > 0 {
		pad := 8 - w.nbits
		w.writeBits((1<<pad)-1, uint8(pad))
	}
}

// bitReader reads MSB-first bits from entropy-coded data, removing 0xFF00
// stuffing and stopping at markers.
type bitReader struct {
	data []byte
	pos  int
	acc  uint32
	n    uint
	// bytesRead counts entropy bytes consumed, used by the partial-decoding
	// statistics to quantify early-stop savings.
	bytesRead int
}

var errMarker = fmt.Errorf("jpeg: marker in entropy stream")

func (r *bitReader) fill() error {
	for r.n <= 24 {
		if r.pos >= len(r.data) {
			if r.n == 0 {
				return io.ErrUnexpectedEOF
			}
			return nil
		}
		b := r.data[r.pos]
		if b == 0xff {
			if r.pos+1 >= len(r.data) {
				return io.ErrUnexpectedEOF
			}
			next := r.data[r.pos+1]
			if next == 0x00 {
				r.pos += 2 // stuffed byte
				r.bytesRead += 2
			} else {
				// A real marker terminates the entropy stream.
				if r.n == 0 {
					return errMarker
				}
				return nil
			}
		} else {
			r.pos++
			r.bytesRead++
		}
		r.acc = r.acc<<8 | uint32(b)
		r.n += 8
	}
	return nil
}

func (r *bitReader) readBit() (uint8, error) {
	if r.n == 0 {
		if err := r.fill(); err != nil {
			return 0, err
		}
		if r.n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
	}
	r.n--
	return uint8(r.acc>>r.n) & 1, nil
}

func (r *bitReader) readBits(n uint8) (uint16, error) {
	var v uint16
	for i := uint8(0); i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint16(b)
	}
	return v, nil
}

// isRST reports whether b is a restart marker byte (0xD0..0xD7).
func isRST(b byte) bool { return b >= 0xd0 && b <= 0xd7 }

// syncToRestart discards any buffered partial byte, consumes the expected
// restart marker, and leaves the reader positioned at the start of the next
// restart segment.
func (r *bitReader) syncToRestart() error {
	// Drop buffered bits: the encoder byte-aligned before the marker, so
	// anything buffered is padding.
	r.acc, r.n = 0, 0
	if r.pos+2 > len(r.data) {
		return io.ErrUnexpectedEOF
	}
	if r.data[r.pos] != 0xff || !isRST(r.data[r.pos+1]) {
		return fmt.Errorf("jpeg: expected restart marker at offset %d, found %02x%02x",
			r.pos, r.data[r.pos], r.data[r.pos+1])
	}
	r.pos += 2
	r.bytesRead += 2
	return nil
}

// skipRestartSegments scans the raw entropy stream for the k-th restart
// marker without entropy-decoding, positioning the reader just past it.
// It returns the number of compressed bytes skipped. This is what makes
// restart intervals valuable for ROI decoding: segments before the region
// of interest cost only a byte scan, not Huffman decoding.
func (r *bitReader) skipRestartSegments(k int) (int, error) {
	start := r.pos
	seen := 0
	for i := r.pos; i+1 < len(r.data); i++ {
		if r.data[i] != 0xff {
			continue
		}
		next := r.data[i+1]
		if isRST(next) {
			seen++
			if seen == k {
				r.pos = i + 2
				r.acc, r.n = 0, 0
				return r.pos - start, nil
			}
			i++ // step past the marker byte
		} else if next == 0x00 {
			i++ // stuffed byte, not a marker
		} else {
			return 0, fmt.Errorf("jpeg: hit marker %02x while skipping restart segments", next)
		}
	}
	return 0, io.ErrUnexpectedEOF
}
