// Package jpeg implements a from-scratch baseline JPEG (JFIF) encoder and
// decoder with the partial-decoding capabilities Smol exploits:
//
//   - ROI decoding: only macroblocks intersecting a caller-supplied region of
//     interest go through dequantization, IDCT, upsampling and color
//     conversion (the paper's Algorithm 1).
//   - Early stopping: entropy decoding halts after the last macroblock row
//     the ROI needs, skipping the rest of the scan entirely.
//
// The subset implemented is baseline sequential DCT, 8-bit, 3-component
// YCbCr with 4:4:4 or 4:2:0 chroma subsampling and the standard (Annex K)
// Huffman tables. This covers everything the preprocessing experiments need
// while keeping the decoder's cost profile (entropy decode > IDCT > color
// convert) faithful to real JPEG decoders.
package jpeg

import "smol/internal/codec/blockdct"

// blockSize is the DCT block edge length fixed by the JPEG standard.
const blockSize = blockdct.Size

// block is a natural-order 8x8 coefficient or sample block.
type block = blockdct.Block

func fdct(samples, out *block) { blockdct.FDCT(samples, out) }
func idct(coeffs, out *block)  { blockdct.IDCT(coeffs, out) }

// idctScaled reconstructs n x n samples (n in {4, 2, 1}) from the lowest
// n x n frequencies, the kernel behind DecodeOptions.Scale.
func idctScaled(coeffs, out *block, n int) { blockdct.IDCTScaled(coeffs, out, n) }
