package jpeg

import (
	"errors"
	"fmt"

	"smol/internal/img"
)

// DecodeStats reports how much work a (possibly partial) decode performed.
// The partial-decoding experiments use these counters to verify that ROI and
// early-stop decoding genuinely skip work.
type DecodeStats struct {
	// MCUsEntropyDecoded counts MCUs whose entropy data was consumed.
	MCUsEntropyDecoded int
	// MCUsTotal is the number of MCUs in the image.
	MCUsTotal int
	// BlocksIDCT counts 8x8 blocks that went through dequantization + IDCT.
	BlocksIDCT int
	// BlocksTotal is the total number of 8x8 blocks in the image.
	BlocksTotal int
	// EntropyBytesRead counts compressed bytes consumed from the scan.
	EntropyBytesRead int
	// PixelsColorConverted counts output pixels that were color converted.
	PixelsColorConverted int
	// MCUsSkippedEntropy counts MCUs whose entropy decoding was skipped
	// entirely by jumping over restart segments before the ROI.
	MCUsSkippedEntropy int
	// EntropyBytesSkipped counts compressed bytes passed over by the
	// restart-segment scan (cheap byte scan, no Huffman decoding).
	EntropyBytesSkipped int
}

// DecodeOptions configures partial decoding.
type DecodeOptions struct {
	// ROI, when non-nil, restricts reconstruction to the macroblock-aligned
	// region containing the rectangle (pixel coordinates). Entropy decoding
	// still proceeds sequentially (as in real JPEG), but dequantization,
	// IDCT, upsampling, and color conversion are skipped outside the region,
	// and the scan stops after the last MCU row the region needs.
	ROI *img.Rect
	// EarlyStopRow, when > 0, decodes only pixel rows [0, EarlyStopRow),
	// stopping the scan at the first MCU row past it. Ignored when ROI is
	// set (the ROI implies its own stopping row).
	EarlyStopRow int
}

// Decode decompresses a baseline JPEG produced by Encode (or any conforming
// baseline 3-component JFIF stream using 4:4:4 or 4:2:0 sampling).
func Decode(data []byte) (*img.Image, error) {
	m, _, _, err := DecodeWithOptions(data, DecodeOptions{})
	return m, err
}

// DecodeHeader parses only far enough to return the image dimensions.
func DecodeHeader(data []byte) (w, h int, err error) {
	d := &decoder{data: data}
	if err := d.parseSegments(true); err != nil {
		return 0, 0, err
	}
	return d.width, d.height, nil
}

// DecodeWithOptions decodes with partial-decoding options. The returned
// image covers only the reconstructed region, whose placement in the full
// image is given by the returned rectangle. With no options the region is
// the whole image.
func DecodeWithOptions(data []byte, opts DecodeOptions) (*img.Image, img.Rect, *DecodeStats, error) {
	d := &decoder{data: data}
	if err := d.parseSegments(false); err != nil {
		return nil, img.Rect{}, nil, err
	}
	m, region, err := d.decodeScan(opts)
	if err != nil {
		return nil, img.Rect{}, nil, err
	}
	return m, region, &d.stats, nil
}

type component struct {
	id       byte
	hSamp    int
	vSamp    int
	quantSel byte
	dcSel    byte
	acSel    byte
}

type decoder struct {
	data   []byte
	width  int
	height int
	comps  [3]component

	quant [4][64]int32
	dcTab [4]*decHuff
	acTab [4]*decHuff

	restartInterval int
	scanStart       int
	stats           DecodeStats
}

var errTruncated = errors.New("jpeg: truncated data")

func (d *decoder) parseSegments(headerOnly bool) error {
	p := 0
	if len(d.data) < 2 || d.data[0] != 0xff || d.data[1] != 0xd8 {
		return errors.New("jpeg: missing SOI")
	}
	p = 2
	for {
		if p+4 > len(d.data) {
			return errTruncated
		}
		if d.data[p] != 0xff {
			return fmt.Errorf("jpeg: expected marker at offset %d", p)
		}
		marker := d.data[p+1]
		p += 2
		if marker == 0xd9 { // EOI before SOS
			return errors.New("jpeg: no scan data")
		}
		if p+2 > len(d.data) {
			return errTruncated
		}
		n := int(d.data[p])<<8 | int(d.data[p+1])
		if n < 2 || p+n > len(d.data) {
			return errTruncated
		}
		payload := d.data[p+2 : p+n]
		p += n
		switch marker {
		case 0xc0: // SOF0 baseline
			if err := d.parseSOF(payload); err != nil {
				return err
			}
			if headerOnly {
				return nil
			}
		case 0xc1, 0xc2, 0xc3:
			return fmt.Errorf("jpeg: unsupported SOF marker 0xff%02x (only baseline)", marker)
		case 0xc4: // DHT
			if err := d.parseDHT(payload); err != nil {
				return err
			}
		case 0xdb: // DQT
			if err := d.parseDQT(payload); err != nil {
				return err
			}
		case 0xda: // SOS
			if err := d.parseSOS(payload); err != nil {
				return err
			}
			d.scanStart = p
			return nil
		case 0xdd: // DRI
			if len(payload) < 2 {
				return errTruncated
			}
			d.restartInterval = int(payload[0])<<8 | int(payload[1])
		default:
			// APPn, COM etc: skip.
		}
	}
}

func (d *decoder) parseSOF(p []byte) error {
	if len(p) < 6 {
		return errTruncated
	}
	if p[0] != 8 {
		return fmt.Errorf("jpeg: unsupported precision %d", p[0])
	}
	d.height = int(p[1])<<8 | int(p[2])
	d.width = int(p[3])<<8 | int(p[4])
	if d.width == 0 || d.height == 0 {
		return errors.New("jpeg: zero dimensions")
	}
	// Guard decode allocations against corrupted SOF dimensions: cap total
	// pixels well above any realistic photo but far below an OOM.
	if d.width*d.height > 1<<26 {
		return fmt.Errorf("jpeg: implausible dimensions %dx%d", d.width, d.height)
	}
	if p[5] != 3 {
		return fmt.Errorf("jpeg: unsupported component count %d", p[5])
	}
	if len(p) < 6+3*3 {
		return errTruncated
	}
	for i := 0; i < 3; i++ {
		c := p[6+i*3:]
		d.comps[i] = component{
			id:       c[0],
			hSamp:    int(c[1] >> 4),
			vSamp:    int(c[1] & 0xf),
			quantSel: c[2],
		}
		if c[2] > 3 {
			return errors.New("jpeg: bad quant table selector")
		}
	}
	y, cb, cr := d.comps[0], d.comps[1], d.comps[2]
	is444 := y.hSamp == 1 && y.vSamp == 1
	is420 := y.hSamp == 2 && y.vSamp == 2
	if !(is444 || is420) || cb.hSamp != 1 || cb.vSamp != 1 || cr.hSamp != 1 || cr.vSamp != 1 {
		return fmt.Errorf("jpeg: unsupported sampling %dx%d/%dx%d/%dx%d",
			y.hSamp, y.vSamp, cb.hSamp, cb.vSamp, cr.hSamp, cr.vSamp)
	}
	return nil
}

func (d *decoder) parseDQT(p []byte) error {
	for len(p) > 0 {
		prec := p[0] >> 4
		id := p[0] & 0xf
		if prec != 0 {
			return errors.New("jpeg: 16-bit quant tables unsupported")
		}
		if id > 3 || len(p) < 65 {
			return errTruncated
		}
		for i := 0; i < 64; i++ {
			v := int32(p[1+i])
			if v == 0 {
				return errors.New("jpeg: zero quantizer")
			}
			d.quant[id][zigzag[i]] = v
		}
		p = p[65:]
	}
	return nil
}

func (d *decoder) parseDHT(p []byte) error {
	for len(p) > 0 {
		if len(p) < 17 {
			return errTruncated
		}
		class := p[0] >> 4
		id := p[0] & 0xf
		if class > 1 || id > 3 {
			return errors.New("jpeg: bad huffman table id")
		}
		var spec huffSpec
		total := 0
		for i := 0; i < 16; i++ {
			spec.counts[i] = p[1+i]
			total += int(p[1+i])
		}
		if len(p) < 17+total {
			return errTruncated
		}
		spec.values = append([]byte(nil), p[17:17+total]...)
		if class == 0 {
			d.dcTab[id] = buildDecHuff(spec)
		} else {
			d.acTab[id] = buildDecHuff(spec)
		}
		p = p[17+total:]
	}
	return nil
}

func (d *decoder) parseSOS(p []byte) error {
	if len(p) < 1 || int(p[0]) != 3 || len(p) < 1+3*2+3 {
		return errors.New("jpeg: unsupported SOS")
	}
	for i := 0; i < 3; i++ {
		id := p[1+i*2]
		sel := p[2+i*2]
		found := false
		for j := range d.comps {
			if d.comps[j].id == id {
				d.comps[j].dcSel = sel >> 4
				d.comps[j].acSel = sel & 0xf
				found = true
			}
		}
		if !found {
			return errors.New("jpeg: SOS references unknown component")
		}
	}
	return nil
}

// decodeScan entropy-decodes MCUs and reconstructs the requested region.
func (d *decoder) decodeScan(opts DecodeOptions) (*img.Image, img.Rect, error) {
	is420 := d.comps[0].hSamp == 2
	mcuW, mcuH := blockSize, blockSize
	if is420 {
		mcuW, mcuH = 16, 16
	}
	mcusX := (d.width + mcuW - 1) / mcuW
	mcusY := (d.height + mcuH - 1) / mcuH
	blocksPerMCU := 3
	if is420 {
		blocksPerMCU = 6
	}
	d.stats.MCUsTotal = mcusX * mcusY
	d.stats.BlocksTotal = d.stats.MCUsTotal * blocksPerMCU

	// Determine the reconstruction region (MCU-aligned) and stop row.
	region := img.Rect{X0: 0, Y0: 0, X1: d.width, Y1: d.height}
	if opts.ROI != nil {
		region = opts.ROI.Intersect(img.Rect{X1: d.width, Y1: d.height})
		if region.Empty() {
			return nil, img.Rect{}, errors.New("jpeg: ROI outside image")
		}
		region = region.AlignTo(mcuW, d.width, d.height)
	} else if opts.EarlyStopRow > 0 && opts.EarlyStopRow < d.height {
		region.Y1 = opts.EarlyStopRow
		region = region.AlignTo(mcuH, d.width, d.height)
	}
	lastMCURow := (region.Y1 - 1) / mcuH
	mcuX0 := region.X0 / mcuW
	mcuX1 := (region.X1 - 1) / mcuW

	// Planar buffers sized to the region.
	rw, rh := region.W(), region.H()
	// Luma plane padded to MCU multiple; chroma at subsampled size.
	lumaW := ((rw + mcuW - 1) / mcuW) * mcuW
	lumaH := ((rh + mcuH - 1) / mcuH) * mcuH
	yPlane := &plane{w: lumaW, h: lumaH, pix: make([]uint8, lumaW*lumaH)}
	cw, ch := lumaW, lumaH
	if is420 {
		cw, ch = lumaW/2, lumaH/2
	}
	cbPlane := &plane{w: cw, h: ch, pix: make([]uint8, cw*ch)}
	crPlane := &plane{w: cw, h: ch, pix: make([]uint8, cw*ch)}

	for i := range d.comps {
		c := &d.comps[i]
		if d.dcTab[c.dcSel] == nil || d.acTab[c.acSel] == nil {
			return nil, img.Rect{}, errors.New("jpeg: scan references missing huffman table")
		}
	}

	br := &bitReader{data: d.data[d.scanStart:]}
	var dcPred [3]int32
	var coeffs, samples block

	decodeBlock := func(comp int, reconstruct bool, dst *plane, bx, by int) error {
		c := &d.comps[comp]
		dc := d.dcTab[c.dcSel]
		ac := d.acTab[c.acSel]
		// DC.
		sym, err := dc.decode(br)
		if err != nil {
			return err
		}
		bits, err := br.readBits(sym)
		if err != nil {
			return err
		}
		for i := range coeffs {
			coeffs[i] = 0
		}
		dcPred[comp] += extendMagnitude(bits, sym)
		coeffs[0] = dcPred[comp]
		// AC.
		for k := 1; k < 64; {
			sym, err := ac.decode(br)
			if err != nil {
				return err
			}
			run := int(sym >> 4)
			size := sym & 0xf
			if size == 0 {
				if run == 15 { // ZRL
					k += 16
					continue
				}
				break // EOB
			}
			k += run
			if k > 63 {
				return errors.New("jpeg: AC coefficient index overflow")
			}
			bits, err := br.readBits(size)
			if err != nil {
				return err
			}
			coeffs[zigzag[k]] = extendMagnitude(bits, size)
			k++
		}
		if !reconstruct {
			return nil
		}
		q := &d.quant[c.quantSel]
		for i := 0; i < 64; i++ {
			coeffs[i] *= q[i]
		}
		idct(&coeffs, &samples)
		d.stats.BlocksIDCT++
		// Store into destination plane (clipped).
		for yy := 0; yy < blockSize; yy++ {
			py := by*blockSize + yy
			if py < 0 || py >= dst.h {
				continue
			}
			for xx := 0; xx < blockSize; xx++ {
				px := bx*blockSize + xx
				if px < 0 || px >= dst.w {
					continue
				}
				dst.pix[py*dst.w+px] = uint8(samples[yy*blockSize+xx])
			}
		}
		return nil
	}

	// Restart-segment fast path: when the stream has restart intervals and
	// the ROI starts below the top, whole segments before the first needed
	// MCU row are skipped with a byte scan instead of Huffman decoding.
	startIdx := 0
	endIdx := (lastMCURow + 1) * mcusX
	if d.restartInterval > 0 && region.Y0 > 0 {
		firstNeeded := (region.Y0 / mcuH) * mcusX
		if segs := firstNeeded / d.restartInterval; segs > 0 {
			skipped, err := br.skipRestartSegments(segs)
			if err != nil {
				return nil, img.Rect{}, err
			}
			startIdx = segs * d.restartInterval
			d.stats.MCUsSkippedEntropy = startIdx
			d.stats.EntropyBytesSkipped = skipped
		}
	}

scan:
	for idx := startIdx; idx < endIdx; idx++ {
		if d.restartInterval > 0 && idx > startIdx && idx%d.restartInterval == 0 {
			if err := br.syncToRestart(); err != nil {
				return nil, img.Rect{}, err
			}
			dcPred = [3]int32{}
		}
		my := idx / mcusX
		mx := idx % mcusX
		reconstruct := my*mcuH >= region.Y0 && mx >= mcuX0 && mx <= mcuX1
		// Block coordinates relative to the region's plane origin.
		relMX := mx - mcuX0
		relMY := my - region.Y0/mcuH
		var err error
		if is420 {
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					err = decodeBlock(0, reconstruct, yPlane, relMX*2+dx, relMY*2+dy)
					if err != nil {
						break scan
					}
				}
			}
			if err = decodeBlock(1, reconstruct, cbPlane, relMX, relMY); err != nil {
				break scan
			}
			if err = decodeBlock(2, reconstruct, crPlane, relMX, relMY); err != nil {
				break scan
			}
		} else {
			if err = decodeBlock(0, reconstruct, yPlane, relMX, relMY); err != nil {
				break scan
			}
			if err = decodeBlock(1, reconstruct, cbPlane, relMX, relMY); err != nil {
				break scan
			}
			if err = decodeBlock(2, reconstruct, crPlane, relMX, relMY); err != nil {
				break scan
			}
		}
		d.stats.MCUsEntropyDecoded++
	}
	if d.stats.MCUsEntropyDecoded < endIdx-startIdx {
		return nil, img.Rect{}, errTruncated
	}
	d.stats.EntropyBytesRead = br.bytesRead

	// Color conversion for the region.
	out := img.New(rw, rh)
	d.stats.PixelsColorConverted = rw * rh
	for y := 0; y < rh; y++ {
		for x := 0; x < rw; x++ {
			yy := int(yPlane.pix[y*yPlane.w+x])
			var cbv, crv int
			if is420 {
				cbv = int(cbPlane.at(x/2, y/2))
				crv = int(crPlane.at(x/2, y/2))
			} else {
				cbv = int(cbPlane.pix[y*cbPlane.w+x])
				crv = int(crPlane.pix[y*crPlane.w+x])
			}
			r := float64(yy) + 1.402*float64(crv-128)
			g := float64(yy) - 0.344136*float64(cbv-128) - 0.714136*float64(crv-128)
			b := float64(yy) + 1.772*float64(cbv-128)
			i := (y*rw + x) * 3
			out.Pix[i] = img.ClampF(r)
			out.Pix[i+1] = img.ClampF(g)
			out.Pix[i+2] = img.ClampF(b)
		}
	}
	return out, region, nil
}
