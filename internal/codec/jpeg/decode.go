package jpeg

import (
	"bytes"
	"errors"
	"fmt"

	"smol/internal/codec/blockdct"
	"smol/internal/img"
)

// DecodeStats reports how much work a (possibly partial) decode performed.
// The partial-decoding experiments use these counters to verify that ROI,
// early-stop, and scaled decoding genuinely skip work.
type DecodeStats struct {
	// MCUsEntropyDecoded counts MCUs whose entropy data was consumed.
	MCUsEntropyDecoded int
	// MCUsTotal is the number of MCUs in the image.
	MCUsTotal int
	// BlocksIDCT counts 8x8 blocks that went through dequantization + IDCT.
	BlocksIDCT int
	// BlocksTotal is the total number of 8x8 blocks in the image.
	BlocksTotal int
	// IDCTSamples counts samples produced by inverse transforms: 64 per
	// block at full resolution, (8/Scale)^2 per block for scaled decoding.
	// The ratio IDCTSamples/BlocksIDCT exposes how much reconstruction
	// arithmetic a reduced-resolution decode skipped.
	IDCTSamples int
	// EntropyBytesRead counts compressed bytes consumed from the scan.
	EntropyBytesRead int
	// PixelsColorConverted counts output pixels that were color converted.
	PixelsColorConverted int
	// MCUsSkippedEntropy counts MCUs whose entropy decoding was skipped
	// entirely by jumping over restart segments before the ROI.
	MCUsSkippedEntropy int
	// EntropyBytesSkipped counts compressed bytes passed over by the
	// restart-segment scan (cheap byte scan, no Huffman decoding).
	EntropyBytesSkipped int
}

// DecodeOptions configures partial and reduced-resolution decoding.
type DecodeOptions struct {
	// ROI, when non-nil, restricts reconstruction to the macroblock-aligned
	// region containing the rectangle (pixel coordinates). Entropy decoding
	// still proceeds sequentially (as in real JPEG), but dequantization,
	// IDCT, upsampling, and color conversion are skipped outside the region,
	// and the scan stops after the last MCU row the region needs.
	ROI *img.Rect
	// EarlyStopRow, when > 0, decodes only pixel rows [0, EarlyStopRow),
	// stopping the scan at the first MCU row past it. Ignored when ROI is
	// set (the ROI implies its own stopping row).
	EarlyStopRow int
	// Scale, when > 1, reconstructs at reduced resolution directly in the
	// DCT domain: each 8x8 block inverse-transforms only its lowest
	// (8/Scale)^2 frequencies through a reduced 4x4/2x2/1x1 IDCT, so IDCT
	// and color conversion cost shrinks by ~Scale^2 while entropy decoding
	// is unchanged. Supported values are 1 (or 0), 2, 4 and 8. The output
	// approximates a full decode followed by a box downsample by Scale,
	// with dimensions img.ScaledDims of the reconstructed region. Composes
	// with ROI and EarlyStopRow, whose coordinates stay in full-resolution
	// pixels.
	Scale int
	// Dst, when non-nil, receives the decoded pixels: it is reshaped (the
	// buffer is reused when large enough) and returned, so warm serving
	// paths decode into pooled images instead of allocating per frame.
	Dst *img.Image
}

// SupportedScales lists the decode scales DecodeOptions.Scale accepts:
// full resolution plus the reduced reconstructions blockdct provides.
// Planners (preproc.Spec.DecodeScales) should use this list so they never
// propose a scale the decoder rejects.
func SupportedScales() []int {
	scales := []int{1}
	for _, n := range blockdct.ScaledSizes {
		scales = append(scales, blockSize/n)
	}
	return scales
}

// AlignedRegion returns the MCU-aligned cover of roi that a ROI decode
// reconstructs for an image of the given dimensions and MCU edge length,
// or an empty rectangle when roi misses the image. It is the single
// source of truth shared by the decoder and plan compilers that need the
// decoded geometry before decoding (e.g. the runtime's ingest planner).
func AlignedRegion(roi img.Rect, w, h, mcu int) img.Rect {
	region := roi.Intersect(img.Rect{X1: w, Y1: h})
	if region.Empty() {
		return img.Rect{}
	}
	return region.AlignTo(mcu, w, h)
}

// Decode decompresses a baseline JPEG produced by Encode (or any conforming
// baseline 3-component JFIF stream using 4:4:4 or 4:2:0 sampling).
func Decode(data []byte) (*img.Image, error) {
	m, _, _, err := DecodeWithOptions(data, DecodeOptions{})
	return m, err
}

// DecodeHeader parses only far enough to return the image dimensions.
func DecodeHeader(data []byte) (w, h int, err error) {
	d := &decoder{}
	d.reset(data)
	if err := d.parseSegments(true); err != nil {
		return 0, 0, err
	}
	return d.width, d.height, nil
}

// DecodeWithOptions decodes with partial-decoding options. The returned
// image covers only the reconstructed region, whose placement in the full
// image is given by the returned rectangle (always in full-resolution
// coordinates; with Scale > 1 the image holds the region downscaled by
// Scale). With no options the region is the whole image.
func DecodeWithOptions(data []byte, opts DecodeOptions) (*img.Image, img.Rect, *DecodeStats, error) {
	var r Decoder
	if _, _, err := r.Parse(data); err != nil {
		return nil, img.Rect{}, nil, err
	}
	return r.Decode(opts)
}

// Decoder is a reusable decoder for serving paths. Parse reads a stream's
// headers exactly once; Size, MCUSize and Decode then operate on the parsed
// state, removing the double header parse that chaining DecodeHeader with
// DecodeWithOptions costs. A warm Decoder also retains its Huffman tables
// (rebuilt only when a stream's DHT segments differ from the previous
// ones), its planar scratch, and — with DecodeOptions.Dst — the output
// image, so steady-state decoding performs no heap allocations.
//
// A Decoder is not safe for concurrent use; serving gives each worker its
// own.
type Decoder struct {
	d decoder
}

// Parse reads the stream's headers through SOS and returns the image
// dimensions. It must precede Decode and invalidates any previous state.
//
//smol:noalloc
func (r *Decoder) Parse(data []byte) (w, h int, err error) {
	r.d.reset(data)
	if err := r.d.parseSegments(false); err != nil {
		r.d.scanStart = 0
		return 0, 0, err
	}
	return r.d.width, r.d.height, nil
}

// Size returns the dimensions of the parsed image.
func (r *Decoder) Size() (w, h int) { return r.d.width, r.d.height }

// MCUSize returns the MCU edge length in pixels of the parsed image: 8 for
// 4:4:4 streams, 16 for 4:2:0. ROI regions align outward to this grid.
func (r *Decoder) MCUSize() int {
	if r.d.comps[0].hSamp == 2 {
		return 16
	}
	return blockSize
}

// Decode reconstructs the parsed stream with the given options. It may be
// called repeatedly with different options without re-parsing. The returned
// stats pointer aliases the Decoder and is valid until the next Decode or
// Parse call.
//
//smol:noalloc
func (r *Decoder) Decode(opts DecodeOptions) (*img.Image, img.Rect, *DecodeStats, error) {
	if r.d.scanStart == 0 {
		//smol:coldpath API misuse
		return nil, img.Rect{}, nil, errors.New("jpeg: Decode before successful Parse")
	}
	r.d.stats = DecodeStats{}
	m, region, err := r.d.decodeScan(opts)
	if err != nil {
		return nil, img.Rect{}, nil, err
	}
	return m, region, &r.d.stats, nil
}

type component struct {
	id       byte
	hSamp    int
	vSamp    int
	quantSel byte
	dcSel    byte
	acSel    byte
}

type decoder struct {
	data   []byte
	width  int
	height int
	comps  [3]component

	quant [4][64]int32
	// dqtSeen marks quant tables defined by the current stream, so a warm
	// Decoder cannot silently reuse a previous stream's tables when a
	// malformed stream omits its DQT segment.
	dqtSeen [4]bool
	dcTab   [4]*decHuff
	acTab   [4]*decHuff
	// dhtRaw caches each table's raw DHT segment and dhtSeen marks tables
	// defined by the current stream: identical segments (the common case —
	// most encoders, including this repo's, always emit the Annex K
	// tables) reuse the previously built decode tables without allocating.
	dhtRaw  [2][4][]byte
	dhtSeen [2][4]bool

	restartInterval int
	scanStart       int
	stats           DecodeStats

	// Per-scan state and reusable scratch: the bit reader, DC predictors
	// and block buffers live here (not on the stack of decodeScan) so the
	// block decode loop needs no closure, and the planar buffers are
	// reused across images by a warm Decoder.
	br      bitReader
	dcPred  [3]int32
	coeffs  block
	samples block
	planes  [3]plane
}

var errTruncated = errors.New("jpeg: truncated data")

// reset prepares the decoder for a new stream, keeping reusable caches
// (Huffman tables, quant storage, planar scratch).
func (d *decoder) reset(data []byte) {
	d.data = data
	d.width, d.height = 0, 0
	d.comps = [3]component{}
	d.dhtSeen = [2][4]bool{}
	d.dqtSeen = [4]bool{}
	d.restartInterval = 0
	d.scanStart = 0
	d.stats = DecodeStats{}
}

// sizedPlane returns planar scratch i reshaped to w x h, reusing its pixel
// buffer when possible. Contents are undefined; decodeScan writes every
// sample the color-conversion pass reads.
func (d *decoder) sizedPlane(i, w, h int) *plane {
	p := &d.planes[i]
	p.w, p.h = w, h
	if cap(p.pix) < w*h {
		p.pix = make([]uint8, w*h)
	} else {
		p.pix = p.pix[:w*h]
	}
	return p
}

func (d *decoder) parseSegments(headerOnly bool) error {
	p := 0
	if len(d.data) < 2 || d.data[0] != 0xff || d.data[1] != 0xd8 {
		return errors.New("jpeg: missing SOI")
	}
	p = 2
	for {
		if p+4 > len(d.data) {
			return errTruncated
		}
		if d.data[p] != 0xff {
			return fmt.Errorf("jpeg: expected marker at offset %d", p)
		}
		marker := d.data[p+1]
		p += 2
		if marker == 0xd9 { // EOI before SOS
			return errors.New("jpeg: no scan data")
		}
		if p+2 > len(d.data) {
			return errTruncated
		}
		n := int(d.data[p])<<8 | int(d.data[p+1])
		if n < 2 || p+n > len(d.data) {
			return errTruncated
		}
		payload := d.data[p+2 : p+n]
		p += n
		switch marker {
		case 0xc0: // SOF0 baseline
			if err := d.parseSOF(payload); err != nil {
				return err
			}
			if headerOnly {
				return nil
			}
		case 0xc1, 0xc2, 0xc3:
			return fmt.Errorf("jpeg: unsupported SOF marker 0xff%02x (only baseline)", marker)
		case 0xc4: // DHT
			if err := d.parseDHT(payload); err != nil {
				return err
			}
		case 0xdb: // DQT
			if err := d.parseDQT(payload); err != nil {
				return err
			}
		case 0xda: // SOS
			if err := d.parseSOS(payload); err != nil {
				return err
			}
			d.scanStart = p
			return nil
		case 0xdd: // DRI
			if len(payload) < 2 {
				return errTruncated
			}
			d.restartInterval = int(payload[0])<<8 | int(payload[1])
		default:
			// APPn, COM etc: skip.
		}
	}
}

func (d *decoder) parseSOF(p []byte) error {
	if len(p) < 6 {
		return errTruncated
	}
	if p[0] != 8 {
		return fmt.Errorf("jpeg: unsupported precision %d", p[0])
	}
	d.height = int(p[1])<<8 | int(p[2])
	d.width = int(p[3])<<8 | int(p[4])
	if d.width == 0 || d.height == 0 {
		return errors.New("jpeg: zero dimensions")
	}
	// Guard decode allocations against corrupted SOF dimensions: cap total
	// pixels well above any realistic photo but far below an OOM.
	if d.width*d.height > 1<<26 {
		return fmt.Errorf("jpeg: implausible dimensions %dx%d", d.width, d.height)
	}
	if p[5] != 3 {
		return fmt.Errorf("jpeg: unsupported component count %d", p[5])
	}
	if len(p) < 6+3*3 {
		return errTruncated
	}
	for i := 0; i < 3; i++ {
		c := p[6+i*3:]
		d.comps[i] = component{
			id:       c[0],
			hSamp:    int(c[1] >> 4),
			vSamp:    int(c[1] & 0xf),
			quantSel: c[2],
		}
		if c[2] > 3 {
			return errors.New("jpeg: bad quant table selector")
		}
	}
	y, cb, cr := d.comps[0], d.comps[1], d.comps[2]
	is444 := y.hSamp == 1 && y.vSamp == 1
	is420 := y.hSamp == 2 && y.vSamp == 2
	if !(is444 || is420) || cb.hSamp != 1 || cb.vSamp != 1 || cr.hSamp != 1 || cr.vSamp != 1 {
		return fmt.Errorf("jpeg: unsupported sampling %dx%d/%dx%d/%dx%d",
			y.hSamp, y.vSamp, cb.hSamp, cb.vSamp, cr.hSamp, cr.vSamp)
	}
	return nil
}

func (d *decoder) parseDQT(p []byte) error {
	for len(p) > 0 {
		prec := p[0] >> 4
		id := p[0] & 0xf
		if prec != 0 {
			return errors.New("jpeg: 16-bit quant tables unsupported")
		}
		if id > 3 || len(p) < 65 {
			return errTruncated
		}
		for i := 0; i < 64; i++ {
			v := int32(p[1+i])
			if v == 0 {
				return errors.New("jpeg: zero quantizer")
			}
			d.quant[id][zigzag[i]] = v
		}
		d.dqtSeen[id] = true
		p = p[65:]
	}
	return nil
}

func (d *decoder) parseDHT(p []byte) error {
	for len(p) > 0 {
		if len(p) < 17 {
			return errTruncated
		}
		class := p[0] >> 4
		id := p[0] & 0xf
		if class > 1 || id > 3 {
			return errors.New("jpeg: bad huffman table id")
		}
		total := 0
		for i := 0; i < 16; i++ {
			total += int(p[1+i])
		}
		if len(p) < 17+total {
			return errTruncated
		}
		seg := p[:17+total]
		tab := &d.dcTab[id]
		if class == 1 {
			tab = &d.acTab[id]
		}
		// Rebuild only when the table actually changed since the last
		// stream this decoder saw.
		if *tab == nil || !bytes.Equal(d.dhtRaw[class][id], seg) {
			var spec huffSpec
			copy(spec.counts[:], seg[1:17])
			spec.values = append([]byte(nil), seg[17:]...)
			*tab = buildDecHuff(spec)
			d.dhtRaw[class][id] = append(d.dhtRaw[class][id][:0], seg...)
		}
		d.dhtSeen[class][id] = true
		p = p[17+total:]
	}
	return nil
}

func (d *decoder) parseSOS(p []byte) error {
	if len(p) < 1 || int(p[0]) != 3 || len(p) < 1+3*2+3 {
		return errors.New("jpeg: unsupported SOS")
	}
	for i := 0; i < 3; i++ {
		id := p[1+i*2]
		sel := p[2+i*2]
		found := false
		for j := range d.comps {
			if d.comps[j].id == id {
				d.comps[j].dcSel = sel >> 4
				d.comps[j].acSel = sel & 0xf
				found = true
			}
		}
		if !found {
			return errors.New("jpeg: SOS references unknown component")
		}
	}
	return nil
}

// decodeBlock entropy-decodes one 8x8 block and, when reconstruct is set,
// dequantizes, inverse-transforms at the requested sub-resolution (sub x
// sub samples, sub = 8/scale) and stores the samples into dst at block
// coordinates (bx, by) on the scaled grid.
func (d *decoder) decodeBlock(comp int, reconstruct bool, dst *plane, bx, by, sub int) error {
	c := &d.comps[comp]
	dc := d.dcTab[c.dcSel]
	ac := d.acTab[c.acSel]
	br := &d.br
	// DC.
	sym, err := dc.decode(br)
	if err != nil {
		return err
	}
	bits, err := br.readBits(sym)
	if err != nil {
		return err
	}
	coeffs := &d.coeffs
	for i := range coeffs {
		coeffs[i] = 0
	}
	d.dcPred[comp] += extendMagnitude(bits, sym)
	coeffs[0] = d.dcPred[comp]
	// AC.
	for k := 1; k < 64; {
		sym, err := ac.decode(br)
		if err != nil {
			return err
		}
		run := int(sym >> 4)
		size := sym & 0xf
		if size == 0 {
			if run == 15 { // ZRL
				k += 16
				continue
			}
			break // EOB
		}
		k += run
		if k > 63 {
			return errors.New("jpeg: AC coefficient index overflow")
		}
		bits, err := br.readBits(size)
		if err != nil {
			return err
		}
		coeffs[zigzag[k]] = extendMagnitude(bits, size)
		k++
	}
	if !reconstruct {
		return nil
	}
	q := &d.quant[c.quantSel]
	samples := &d.samples
	if sub == blockSize {
		for i := 0; i < 64; i++ {
			coeffs[i] *= q[i]
		}
		idct(coeffs, samples)
	} else {
		// Only the lowest sub x sub frequencies feed the reduced IDCT.
		for v := 0; v < sub; v++ {
			for u := 0; u < sub; u++ {
				coeffs[v*blockSize+u] *= q[v*blockSize+u]
			}
		}
		idctScaled(coeffs, samples, sub)
	}
	d.stats.BlocksIDCT++
	d.stats.IDCTSamples += sub * sub
	// Store into destination plane (clipped).
	for yy := 0; yy < sub; yy++ {
		py := by*sub + yy
		if py < 0 || py >= dst.h {
			continue
		}
		for xx := 0; xx < sub; xx++ {
			px := bx*sub + xx
			if px < 0 || px >= dst.w {
				continue
			}
			dst.pix[py*dst.w+px] = uint8(samples[yy*sub+xx])
		}
	}
	return nil
}

// decodeScan entropy-decodes MCUs and reconstructs the requested region at
// the requested scale.
func (d *decoder) decodeScan(opts DecodeOptions) (*img.Image, img.Rect, error) {
	scale := opts.Scale
	if scale == 0 {
		scale = 1
	}
	switch scale {
	case 1, 2, 4, 8:
	default:
		return nil, img.Rect{}, fmt.Errorf("jpeg: unsupported decode scale 1/%d (want 1, 2, 4 or 8)", scale)
	}
	sub := blockSize / scale // reconstructed samples per block edge

	is420 := d.comps[0].hSamp == 2
	mcuW, mcuH := blockSize, blockSize
	if is420 {
		mcuW, mcuH = 16, 16
	}
	mcusX := (d.width + mcuW - 1) / mcuW
	mcusY := (d.height + mcuH - 1) / mcuH
	blocksPerMCU := 3
	if is420 {
		blocksPerMCU = 6
	}
	d.stats.MCUsTotal = mcusX * mcusY
	d.stats.BlocksTotal = d.stats.MCUsTotal * blocksPerMCU

	// Determine the reconstruction region (MCU-aligned, full-resolution
	// coordinates) and stop row.
	region := img.Rect{X0: 0, Y0: 0, X1: d.width, Y1: d.height}
	if opts.ROI != nil {
		region = AlignedRegion(*opts.ROI, d.width, d.height, mcuW)
		if region.Empty() {
			return nil, img.Rect{}, errors.New("jpeg: ROI outside image")
		}
	} else if opts.EarlyStopRow > 0 && opts.EarlyStopRow < d.height {
		region.Y1 = opts.EarlyStopRow
		region = region.AlignTo(mcuH, d.width, d.height)
	}
	lastMCURow := (region.Y1 - 1) / mcuH
	mcuX0 := region.X0 / mcuW
	mcuX1 := (region.X1 - 1) / mcuW

	// Planar buffers sized to the region at the output scale: each 8x8
	// block contributes sub x sub samples.
	rw, rh := region.W(), region.H()
	blocksX := ((rw + mcuW - 1) / mcuW) * mcuW / blockSize
	blocksY := ((rh + mcuH - 1) / mcuH) * mcuH / blockSize
	lumaW := blocksX * sub
	lumaH := blocksY * sub
	cw, ch := lumaW, lumaH
	if is420 {
		cw, ch = lumaW/2, lumaH/2
	}
	yPlane := d.sizedPlane(0, lumaW, lumaH)
	cbPlane := d.sizedPlane(1, cw, ch)
	crPlane := d.sizedPlane(2, cw, ch)

	for i := range d.comps {
		c := &d.comps[i]
		if c.dcSel > 3 || c.acSel > 3 ||
			!d.dhtSeen[0][c.dcSel] || !d.dhtSeen[1][c.acSel] ||
			d.dcTab[c.dcSel] == nil || d.acTab[c.acSel] == nil {
			return nil, img.Rect{}, errors.New("jpeg: scan references missing huffman table")
		}
		if !d.dqtSeen[c.quantSel] {
			return nil, img.Rect{}, errors.New("jpeg: scan references missing quant table")
		}
	}

	d.br = bitReader{data: d.data[d.scanStart:]}
	d.dcPred = [3]int32{}

	// Restart-segment fast path: when the stream has restart intervals and
	// the ROI starts below the top, whole segments before the first needed
	// MCU row are skipped with a byte scan instead of Huffman decoding.
	startIdx := 0
	endIdx := (lastMCURow + 1) * mcusX
	if d.restartInterval > 0 && region.Y0 > 0 {
		firstNeeded := (region.Y0 / mcuH) * mcusX
		if segs := firstNeeded / d.restartInterval; segs > 0 {
			skipped, err := d.br.skipRestartSegments(segs)
			if err != nil {
				return nil, img.Rect{}, err
			}
			startIdx = segs * d.restartInterval
			d.stats.MCUsSkippedEntropy = startIdx
			d.stats.EntropyBytesSkipped = skipped
		}
	}

scan:
	for idx := startIdx; idx < endIdx; idx++ {
		if d.restartInterval > 0 && idx > startIdx && idx%d.restartInterval == 0 {
			if err := d.br.syncToRestart(); err != nil {
				return nil, img.Rect{}, err
			}
			d.dcPred = [3]int32{}
		}
		my := idx / mcusX
		mx := idx % mcusX
		reconstruct := my*mcuH >= region.Y0 && mx >= mcuX0 && mx <= mcuX1
		// Block coordinates relative to the region's plane origin.
		relMX := mx - mcuX0
		relMY := my - region.Y0/mcuH
		var err error
		if is420 {
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					err = d.decodeBlock(0, reconstruct, yPlane, relMX*2+dx, relMY*2+dy, sub)
					if err != nil {
						break scan
					}
				}
			}
			if err = d.decodeBlock(1, reconstruct, cbPlane, relMX, relMY, sub); err != nil {
				break scan
			}
			if err = d.decodeBlock(2, reconstruct, crPlane, relMX, relMY, sub); err != nil {
				break scan
			}
		} else {
			if err = d.decodeBlock(0, reconstruct, yPlane, relMX, relMY, sub); err != nil {
				break scan
			}
			if err = d.decodeBlock(1, reconstruct, cbPlane, relMX, relMY, sub); err != nil {
				break scan
			}
			if err = d.decodeBlock(2, reconstruct, crPlane, relMX, relMY, sub); err != nil {
				break scan
			}
		}
		d.stats.MCUsEntropyDecoded++
	}
	if d.stats.MCUsEntropyDecoded < endIdx-startIdx {
		return nil, img.Rect{}, errTruncated
	}
	d.stats.EntropyBytesRead = d.br.bytesRead

	// Color conversion for the region at the output scale. A scaled luma
	// sample (x, y) originates from the same block grid position as the
	// corresponding scaled chroma sample, so the subsampling relation is
	// unchanged: 4:2:0 chroma still upsamples 2x relative to luma.
	ow, oh := img.ScaledDims(rw, rh, scale)
	out := opts.Dst
	if out == nil {
		out = img.New(ow, oh)
	} else {
		out.Reset(ow, oh)
	}
	d.stats.PixelsColorConverted = ow * oh
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			yy := int(yPlane.pix[y*yPlane.w+x])
			var cbv, crv int
			if is420 {
				cbv = int(cbPlane.at(x/2, y/2))
				crv = int(crPlane.at(x/2, y/2))
			} else {
				cbv = int(cbPlane.pix[y*cbPlane.w+x])
				crv = int(crPlane.pix[y*crPlane.w+x])
			}
			r := float64(yy) + 1.402*float64(crv-128)
			g := float64(yy) - 0.344136*float64(cbv-128) - 0.714136*float64(crv-128)
			b := float64(yy) + 1.772*float64(cbv-128)
			i := (y*ow + x) * 3
			out.Pix[i] = img.ClampF(r)
			out.Pix[i+1] = img.ClampF(g)
			out.Pix[i+2] = img.ClampF(b)
		}
	}
	return out, region, nil
}
