package jpeg

import (
	"fmt"
	"math/rand"
	"testing"

	"smol/internal/analysis/alloctest"
	"smol/internal/img"
)

// smoothTestImage renders a band-limited image (gradients plus a few low
// frequency waves) whose energy sits in the frequencies scaled decoding
// keeps, so full-decode-then-downsample is a meaningful reference.
func smoothTestImage(rng *rand.Rand, w, h int) *img.Image {
	m := img.New(w, h)
	fx := 1 + rng.Intn(3)
	fy := 1 + rng.Intn(3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := 40 + 170*x/w
			g := 40 + 170*y/h
			b := 128 + int(90*cosApprox(float64(fx*x)/float64(w))*cosApprox(float64(fy*y)/float64(h)))
			m.Set(x, y, clamp8(r), clamp8(g), clamp8(b))
		}
	}
	return m
}

func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// cosApprox is cos(2*pi*t) via a coarse table-free polynomial — precision
// is irrelevant, it only shapes low-frequency content.
func cosApprox(t float64) float64 {
	t -= float64(int(t))
	x := 2*t - 1 // [-1, 1]
	return 2*x*x - 1
}

type scaleCase struct {
	name    string
	w, h    int
	sub     Subsampling
	restart int
	// tol is the accepted mean abs diff vs full decode + box downsample.
	// 4:2:0 tolerates more: the reference keeps per-quadrant chroma
	// averages while scaled decode shares one chroma sample per reduced
	// block, an approximation inherent to subsampled scaled decoding.
	tol float64
}

func scaleCases() []scaleCase {
	return []scaleCase{
		{"444-64x48", 64, 48, Sub444, 0, 5},
		{"420-64x48", 64, 48, Sub420, 0, 13},
		{"444-odd-101x77", 101, 77, Sub444, 0, 5},
		{"420-odd-101x77", 101, 77, Sub420, 0, 13},
		{"444-restart-96x64", 96, 64, Sub444, 4, 5},
		{"420-restart-96x64", 96, 64, Sub420, 3, 13},
	}
}

// TestScaledDecodeMatchesBoxDownsample: decoding at 1/2, 1/4 and 1/8 must
// approximate full decode + box downsample — the scaled IDCT basis is the
// box response of the full reconstruction truncated to the surviving
// frequencies — across both chroma subsampling modes, odd dimensions and
// restart-marker streams.
func TestScaledDecodeMatchesBoxDownsample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range scaleCases() {
		t.Run(tc.name, func(t *testing.T) {
			m := smoothTestImage(rng, tc.w, tc.h)
			enc := Encode(m, EncodeOptions{Quality: 92, Subsampling: tc.sub, RestartInterval: tc.restart})
			full, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			for _, scale := range []int{2, 4, 8} {
				scaled, _, _, err := DecodeWithOptions(enc, DecodeOptions{Scale: scale})
				if err != nil {
					t.Fatalf("scale %d: %v", scale, err)
				}
				wantW, wantH := img.ScaledDims(tc.w, tc.h, scale)
				if scaled.W != wantW || scaled.H != wantH {
					t.Fatalf("scale %d: got %dx%d, want %dx%d", scale, scaled.W, scaled.H, wantW, wantH)
				}
				want := full.DownsampleBox(scale)
				if d := img.MeanAbsDiff(scaled, want); d > tc.tol {
					t.Errorf("scale %d: mean abs diff %.2f vs full+box-downsample", scale, d)
				}
			}
		})
	}
}

// TestScaledDecodeFlatExact: a flat-color image is all DC, which every
// reduced IDCT reconstructs identically to the full one, so scaled decode
// must match full decode + downsample exactly.
func TestScaledDecodeFlatExact(t *testing.T) {
	for _, sub := range []Subsampling{Sub444, Sub420} {
		m := img.New(48, 32)
		for i := range m.Pix {
			m.Pix[i] = []uint8{180, 90, 60}[i%3]
		}
		enc := Encode(m, EncodeOptions{Quality: 90, Subsampling: sub})
		full, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		for _, scale := range []int{2, 4, 8} {
			scaled, _, _, err := DecodeWithOptions(enc, DecodeOptions{Scale: scale})
			if err != nil {
				t.Fatal(err)
			}
			want := full.DownsampleBox(scale)
			if d := img.MeanAbsDiff(scaled, want); d != 0 {
				t.Errorf("sub %v scale %d: flat image diff %v, want exact", sub, scale, d)
			}
		}
	}
}

// TestScaledDecodeSkipsIDCTWork asserts via DecodeStats that scaled
// decoding performs genuinely less reconstruction work: entropy decoding is
// unchanged (every MCU still parsed) while IDCT sample production and color
// conversion shrink by ~scale^2.
func TestScaledDecodeSkipsIDCTWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := smoothTestImage(rng, 128, 96)
	enc := Encode(m, EncodeOptions{Quality: 90, Subsampling: Sub420})
	_, _, fullStats, err := DecodeWithOptions(enc, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.IDCTSamples != fullStats.BlocksIDCT*64 {
		t.Fatalf("full decode: %d IDCT samples for %d blocks", fullStats.IDCTSamples, fullStats.BlocksIDCT)
	}
	for _, scale := range []int{2, 4, 8} {
		_, _, st, err := DecodeWithOptions(enc, DecodeOptions{Scale: scale})
		if err != nil {
			t.Fatal(err)
		}
		if st.MCUsEntropyDecoded != fullStats.MCUsEntropyDecoded ||
			st.EntropyBytesRead != fullStats.EntropyBytesRead {
			t.Errorf("scale %d: entropy work changed (%d MCUs, %d bytes)", scale,
				st.MCUsEntropyDecoded, st.EntropyBytesRead)
		}
		sub := 8 / scale
		if st.IDCTSamples != st.BlocksIDCT*sub*sub {
			t.Errorf("scale %d: %d IDCT samples for %d blocks, want %d per block",
				scale, st.IDCTSamples, st.BlocksIDCT, sub*sub)
		}
		if st.IDCTSamples*scale*scale != fullStats.IDCTSamples {
			t.Errorf("scale %d: IDCT samples %d not 1/%d of full %d",
				scale, st.IDCTSamples, scale*scale, fullStats.IDCTSamples)
		}
		ow, oh := img.ScaledDims(128, 96, scale)
		if st.PixelsColorConverted != ow*oh {
			t.Errorf("scale %d: color converted %d pixels, want %d", scale, st.PixelsColorConverted, ow*oh)
		}
	}
}

// TestScaledDecodeComposesWithROI: Scale composes with the ROI machinery —
// the region stays in full-resolution coordinates, reconstruction happens
// on the scaled grid, and the result matches cropping the full decode to
// the region then box-downsampling.
func TestScaledDecodeComposesWithROI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range scaleCases() {
		t.Run(tc.name, func(t *testing.T) {
			m := smoothTestImage(rng, tc.w, tc.h)
			enc := Encode(m, EncodeOptions{Quality: 92, Subsampling: tc.sub, RestartInterval: tc.restart})
			full, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			roi := img.Rect{X0: tc.w / 4, Y0: tc.h / 4, X1: tc.w * 3 / 4, Y1: tc.h * 3 / 4}
			for _, scale := range []int{2, 4, 8} {
				part, region, st, err := DecodeWithOptions(enc, DecodeOptions{ROI: &roi, Scale: scale})
				if err != nil {
					t.Fatalf("scale %d: %v", scale, err)
				}
				wantW, wantH := img.ScaledDims(region.W(), region.H(), scale)
				if part.W != wantW || part.H != wantH {
					t.Fatalf("scale %d: got %dx%d, want %dx%d (region %+v)",
						scale, part.W, part.H, wantW, wantH, region)
				}
				want := full.Crop(region).DownsampleBox(scale)
				if d := img.MeanAbsDiff(part, want); d > tc.tol {
					t.Errorf("scale %d: mean abs diff %.2f vs cropped full decode", scale, d)
				}
				if st.BlocksIDCT >= st.BlocksTotal {
					t.Errorf("scale %d: ROI decode reconstructed every block", scale)
				}
			}
		})
	}
}

// TestDecoderSingleParse: the reusable Decoder parses headers once and then
// serves multiple Decode calls with different options, matching the
// one-shot API exactly.
func TestDecoderSingleParse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := smoothTestImage(rng, 80, 56)
	enc := Encode(m, EncodeOptions{Quality: 90, Subsampling: Sub420})

	var dec Decoder
	if _, _, _, err := dec.Decode(DecodeOptions{}); err == nil {
		t.Fatal("Decode before Parse should fail")
	}
	w, h, err := dec.Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if w != 80 || h != 56 {
		t.Fatalf("parsed %dx%d", w, h)
	}
	if got := dec.MCUSize(); got != 16 {
		t.Fatalf("4:2:0 MCU size %d, want 16", got)
	}
	for _, opts := range []DecodeOptions{
		{},
		{Scale: 4},
		{ROI: &img.Rect{X0: 16, Y0: 16, X1: 64, Y1: 48}},
		{ROI: &img.Rect{X0: 16, Y0: 16, X1: 64, Y1: 48}, Scale: 2},
	} {
		want, wantRegion, wantStats, err := DecodeWithOptions(enc, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, region, stats, err := dec.Decode(opts)
		if err != nil {
			t.Fatal(err)
		}
		if region != wantRegion {
			t.Fatalf("opts %+v: region %+v, want %+v", opts, region, wantRegion)
		}
		if d := img.MeanAbsDiff(got, want); d != 0 {
			t.Fatalf("opts %+v: pixels diverge from one-shot decode (diff %v)", opts, d)
		}
		if *stats != *wantStats {
			t.Fatalf("opts %+v: stats %+v, want %+v", opts, stats, wantStats)
		}
	}
	// A 4:4:4 stream reports the smaller MCU grid after re-Parse.
	enc444 := Encode(m, EncodeOptions{Quality: 90, Subsampling: Sub444})
	if _, _, err := dec.Parse(enc444); err != nil {
		t.Fatal(err)
	}
	if got := dec.MCUSize(); got != 8 {
		t.Fatalf("4:4:4 MCU size %d, want 8", got)
	}
}

// TestDecoderWarmPathAllocates0: a warm Decoder decoding into a
// caller-supplied Dst image must not allocate: Huffman tables, planar
// scratch and the output buffer are all reused across frames. This is the
// allocs/op regression guard for the serving ingest path.
func TestDecoderWarmPathAllocates0(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := smoothTestImage(rng, 96, 64)
	for _, scale := range []int{1, 4} {
		enc := Encode(m, EncodeOptions{Quality: 90, Subsampling: Sub420})
		var dec Decoder
		dst := &img.Image{}
		warm := func() {
			if _, _, err := dec.Parse(enc); err != nil {
				t.Fatal(err)
			}
			out, _, _, err := dec.Decode(DecodeOptions{Scale: scale, Dst: dst})
			if err != nil {
				t.Fatal(err)
			}
			dst = out
		}
		warm() // size the scratch
		alloctest.Run(t, "smol/internal/codec/jpeg.Decoder.Decode", 0, warm,
			"smol/internal/codec/jpeg.Decoder.Parse")
	}
}

// TestScaledDecodeInvalidScale rejects unsupported scales.
func TestScaledDecodeInvalidScale(t *testing.T) {
	m := img.New(16, 16)
	enc := Encode(m, EncodeOptions{})
	for _, scale := range []int{3, 5, 16, -1} {
		if _, _, _, err := DecodeWithOptions(enc, DecodeOptions{Scale: scale}); err == nil {
			t.Errorf("scale %d accepted", scale)
		}
	}
}

// TestScaledDecodePSNRImprovesWithResolution: fidelity against the
// bilinear-resized original should degrade monotonically-ish with scale but
// stay usable at 1/8 — a coarse guard that reduced reconstruction is not
// garbage.
func TestScaledDecodePSNRImprovesWithResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := smoothTestImage(rng, 160, 120)
	enc := Encode(m, EncodeOptions{Quality: 92})
	full, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []int{2, 4, 8} {
		scaled, _, _, err := DecodeWithOptions(enc, DecodeOptions{Scale: scale})
		if err != nil {
			t.Fatal(err)
		}
		ref := full.DownsampleBox(scale)
		if d := img.MeanAbsDiff(scaled, ref); d > 6 {
			t.Errorf("scale %d: diff %.2f from reference downsample", scale, d)
		}
	}
}

var sinkImage *img.Image

func BenchmarkDecodeScaledHD(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := smoothTestImage(rng, 1920, 1080)
	enc := Encode(m, EncodeOptions{Quality: 90, Subsampling: Sub420})
	for _, scale := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("scale%d", scale), func(b *testing.B) {
			var dec Decoder
			dst := &img.Image{}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := dec.Parse(enc); err != nil {
					b.Fatal(err)
				}
				out, _, _, err := dec.Decode(DecodeOptions{Scale: scale, Dst: dst})
				if err != nil {
					b.Fatal(err)
				}
				dst = out
			}
			sinkImage = dst
		})
	}
}

// stripSegments removes all segments with the given marker from a JPEG
// stream (test helper for malformed-stream handling).
func stripSegments(t *testing.T, data []byte, marker byte) []byte {
	t.Helper()
	out := append([]byte(nil), data[:2]...) // SOI
	p := 2
	for p+4 <= len(data) {
		if data[p] != 0xff {
			t.Fatal("bad marker sync")
		}
		m := data[p+1]
		n := int(data[p+2])<<8 | int(data[p+3])
		seg := data[p : p+2+n]
		p += 2 + n
		if m != marker {
			out = append(out, seg...)
		}
		if m == 0xda { // SOS: rest is entropy data
			out = append(out, data[p:]...)
			break
		}
	}
	return out
}

// TestWarmDecoderRejectsMissingDQT: a warm Decoder must not silently reuse
// the previous stream's quantization tables when a malformed stream omits
// its DQT segment — both cold and warm decoders must fail identically.
func TestWarmDecoderRejectsMissingDQT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := smoothTestImage(rng, 48, 32)
	good := Encode(m, EncodeOptions{Quality: 90})
	noDQT := stripSegments(t, good, 0xdb)
	if _, err := Decode(noDQT); err == nil {
		t.Fatal("cold decode of DQT-less stream should fail")
	}
	var dec Decoder
	if _, _, err := dec.Parse(good); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := dec.Decode(DecodeOptions{}); err != nil {
		t.Fatal(err)
	}
	// The warm decoder still holds the good stream's quant tables; they
	// must not leak into the next stream.
	if _, _, err := dec.Parse(noDQT); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := dec.Decode(DecodeOptions{}); err == nil {
		t.Fatal("warm decode of DQT-less stream should fail, not reuse stale quant tables")
	}
}
