package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 1000)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		acc.Add(xs[i])
	}
	if !almostEq(acc.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("acc mean %v vs %v", acc.Mean(), Mean(xs))
	}
	if !almostEq(acc.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("acc var %v vs %v", acc.Variance(), Variance(xs))
	}
	if acc.N() != len(xs) {
		t.Fatalf("N = %d", acc.N())
	}
}

func TestLinReg(t *testing.T) {
	// Exact line: y = 2x + 1.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9}
	fit := LinReg(xs, ys)
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestLinRegNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 0.5*x-3+rng.NormFloat64()*0.01)
	}
	fit := LinReg(xs, ys)
	if !almostEq(fit.Slope, 0.5, 1e-3) || !almostEq(fit.Intercept, -3, 1e-2) {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.9999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestParetoFrontierBasic(t *testing.T) {
	pts := []Point2{
		{X: 1, Y: 10, Tag: 0},
		{X: 2, Y: 9, Tag: 1},
		{X: 3, Y: 11, Tag: 2}, // dominates 0 and 1
		{X: 4, Y: 5, Tag: 3},
		{X: 0.5, Y: 12, Tag: 4},
	}
	front := ParetoFrontier(pts)
	// Expected frontier (ascending X): (0.5,12), (3,11), (4,5).
	want := []int{4, 2, 3}
	if len(front) != len(want) {
		t.Fatalf("frontier = %+v", front)
	}
	for i, tag := range want {
		if front[i].Tag != tag {
			t.Fatalf("frontier[%d] = %+v, want tag %d", i, front[i], tag)
		}
	}
}

func TestParetoFrontierDuplicates(t *testing.T) {
	pts := []Point2{{X: 1, Y: 1, Tag: 0}, {X: 1, Y: 1, Tag: 1}, {X: 1, Y: 2, Tag: 2}}
	front := ParetoFrontier(pts)
	if len(front) != 1 || front[0].Tag != 2 {
		t.Fatalf("frontier = %+v", front)
	}
}

// Property: no point on the frontier is dominated by any input point, and
// every input point is dominated-or-equal by some frontier point.
func TestParetoFrontierProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var pts []Point2
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point2{X: float64(raw[i] % 100), Y: float64(raw[i+1] % 100), Tag: i})
		}
		front := ParetoFrontier(pts)
		for _, fp := range front {
			for _, p := range pts {
				if Dominates(p, fp) {
					return false
				}
			}
		}
		for _, p := range pts {
			covered := false
			for _, fp := range front {
				if Dominates(fp, p) || (fp.X == p.X && fp.Y == p.Y) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range = %d,%d", under, over)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", h.Counts, wantCounts)
		}
	}
}

func TestHarmonicMeanThroughput(t *testing.T) {
	// Two stages at 100 im/s each compose to 50 im/s sequentially.
	if got := HarmonicMeanThroughput(100, 100); !almostEq(got, 50, 1e-12) {
		t.Fatalf("got %v", got)
	}
	if got := HarmonicMeanThroughput(100, 0); got != 0 {
		t.Fatalf("got %v", got)
	}
	// Single stage passes through.
	if got := HarmonicMeanThroughput(123); !almostEq(got, 123, 1e-9) {
		t.Fatalf("got %v", got)
	}
}

func TestConfidenceInterval(t *testing.T) {
	xs := make([]float64, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	hw := ConfidenceInterval95(xs)
	// Should be about 1.96/sqrt(10000) ~= 0.0196.
	if hw < 0.015 || hw > 0.025 {
		t.Fatalf("hw = %v", hw)
	}
	if !math.IsInf(ConfidenceInterval95([]float64{1}), 1) {
		t.Fatal("single sample should give infinite CI")
	}
}

func TestCIHalfWidth(t *testing.T) {
	got := CIHalfWidth(4, 100, 1.96)
	if !almostEq(got, 1.96*0.2, 1e-12) {
		t.Fatalf("got %v", got)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); !almostEq(got, 0.1, 1e-12) {
		t.Fatalf("got %v", got)
	}
	if got := RelErr(90, 100); !almostEq(got, 0.1, 1e-12) {
		t.Fatalf("got %v", got)
	}
}
