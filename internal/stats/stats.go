// Package stats provides the small statistical toolkit used across the
// repository: summary statistics, confidence intervals, Pareto frontiers,
// linear regression, and streaming accumulators. Everything operates on
// float64 and is deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs. It returns 0 when
// fewer than two samples are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// zScore95 is the two-sided 95% normal quantile.
const zScore95 = 1.959963984540054

// ConfidenceInterval95 returns the half-width of the two-sided 95% normal
// confidence interval for the mean of xs.
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.Inf(1)
	}
	return zScore95 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// CIHalfWidth returns the half-width of the normal confidence interval for a
// mean estimated from n samples with the given sample variance, at z standard
// scores (for example 1.96 for 95%).
func CIHalfWidth(variance float64, n int, z float64) float64 {
	if n < 1 {
		return math.Inf(1)
	}
	return z * math.Sqrt(variance/float64(n))
}

// Accumulator is a streaming mean/variance accumulator (Welford's online
// algorithm). The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples seen.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the running unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// LinearFit holds the result of a simple least-squares linear regression
// y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinReg fits y = a*x + b by least squares and reports the coefficient of
// determination. It panics if the slices differ in length or have fewer than
// two points.
func LinReg(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: LinReg length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: LinReg needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinReg with zero x variance")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			r := ys[i] - (slope*xs[i] + intercept)
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// Point2 is a 2-D point used for Pareto frontier computations. Both
// dimensions are maximized.
type Point2 struct {
	X, Y float64
	// Tag carries caller-defined identity through frontier computation.
	Tag int
}

// ParetoFrontier returns the subset of pts not dominated by any other point,
// where point a dominates b when a.X >= b.X && a.Y >= b.Y with at least one
// strict inequality. The result is sorted by ascending X.
func ParetoFrontier(pts []Point2) []Point2 {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point2(nil), pts...)
	// Sort by X descending; ties broken by Y descending so the best Y at
	// each X is seen first.
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X > sorted[j].X
		}
		return sorted[i].Y > sorted[j].Y
	})
	var out []Point2
	bestY := math.Inf(-1)
	prevX := math.Inf(1)
	for _, p := range sorted {
		if p.Y > bestY {
			// A point with equal X but lower Y is dominated; equal X equal Y
			// duplicates are also dropped (p.Y > bestY is strict).
			if p.X == prevX && len(out) > 0 {
				// Same X as an already-kept point with higher Y: dominated.
				continue
			}
			out = append(out, p)
			bestY = p.Y
			prevX = p.X
		}
	}
	// Reverse to ascending X.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Dominates reports whether a dominates b under maximize-both semantics.
func Dominates(a, b Point2) bool {
	return a.X >= b.X && a.Y >= b.Y && (a.X > b.X || a.Y > b.Y)
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records x, tracking out-of-range values separately.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard float rounding at the upper edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range samples recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// OutOfRange returns the counts of samples below Lo and at/above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// HarmonicMeanThroughput composes sequential stage throughputs: the
// throughput of running stages back-to-back (unpipelined) is the harmonic
// composition 1 / sum(1/t_i). Zero or negative throughputs yield 0.
func HarmonicMeanThroughput(ts ...float64) float64 {
	var inv float64
	for _, t := range ts {
		if t <= 0 {
			return 0
		}
		inv += 1 / t
	}
	if inv == 0 {
		return 0
	}
	return 1 / inv
}

// RelErr returns |est-actual|/actual. It panics if actual is zero.
func RelErr(est, actual float64) float64 {
	if actual == 0 {
		panic("stats: RelErr with zero actual")
	}
	return math.Abs(est-actual) / math.Abs(actual)
}
