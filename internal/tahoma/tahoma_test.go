package tahoma

import (
	"math"
	"math/rand"
	"testing"

	"smol/internal/data"
	"smol/internal/img"
	"smol/internal/nn"
	"smol/internal/tensor"
)

func TestSpecConfigs(t *testing.T) {
	cfgs := SpecConfigs(64)
	if len(cfgs) != 8 {
		t.Fatalf("got %d configs, want 8 (the paper's representative set)", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if seen[c.Name] {
			t.Fatalf("duplicate config %q", c.Name)
		}
		seen[c.Name] = true
		if c.InputRes != 32 && c.InputRes != 64 {
			t.Fatalf("%s: unexpected resolution %d", c.Name, c.InputRes)
		}
	}
}

func TestNewTinyCNNShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range SpecConfigs(32) {
		m, err := NewTinyCNN(rng, cfg, 5)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		x := nnRandInput(rng, 2, cfg.InputRes)
		y := m.Forward(x, false)
		if y.Shape[0] != 2 || y.Shape[1] != 5 {
			t.Fatalf("%s: output %v", cfg.Name, y.Shape)
		}
	}
}

func TestNewTinyCNNValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewTinyCNN(rng, TinyCNNConfig{}, 2); err == nil {
		t.Fatal("empty config should error")
	}
	if _, err := NewTinyCNN(rng, TinyCNNConfig{Widths: []int{4, 8, 16}, InputRes: 4}, 2); err == nil {
		t.Fatal("too-deep config for tiny input should error")
	}
}

func nnRandInput(rng *rand.Rand, n, res int) *tensor.Tensor {
	x := tensor.New(n, 3, res, res)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	return x
}

func TestCascadeOnTrainedModels(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models (~20s); skipped in -short mode")
	}
	// Train a weak spec model and a strong target model on an easy
	// dataset, then verify the cascade's characteristic behaviour.
	spec := data.DatasetSpec{Name: "cascade-test", NumClasses: 4, TrainN: 480, TestN: 160,
		FullRes: 32, ThumbRes: 16}
	ds := data.Generate(spec)

	toRes := func(set []data.LabeledImage, res int) []nn.Sample {
		return data.ToSamples(set, func(m *img.Image) *img.Image {
			if m.W == res {
				return m
			}
			return m.ResizeBilinear(res, res)
		})
	}
	specTrain := toRes(ds.Train, 16)
	specTest := toRes(ds.Test, 16)
	tgtTrain := toRes(ds.Train, 32)
	tgtTest := toRes(ds.Test, 32)

	rng := rand.New(rand.NewSource(3))
	specModel, err := NewTinyCNN(rng, TinyCNNConfig{Name: "t", Widths: []int{6}, InputRes: 16}, 4)
	if err != nil {
		t.Fatal(err)
	}
	nn.Fit(specModel, specTrain, nn.TrainConfig{Epochs: 3, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: 4})

	tgtCfg, err := nn.VariantConfig(nn.VariantA, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	target, err := nn.NewResNet(rand.New(rand.NewSource(5)), tgtCfg)
	if err != nil {
		t.Fatal(err)
	}
	nn.Fit(target, tgtTrain, nn.TrainConfig{Epochs: 4, BatchSize: 32, LR: 0.05, Momentum: 0.9, Seed: 6})

	targetAcc := nn.Evaluate(target, tgtTest, 64)
	if targetAcc < 0.8 {
		t.Fatalf("target model too weak to test cascades: %v", targetAcc)
	}

	c := Cascade{Spec: specModel, SpecRes: 16, Target: target, TargetRes: 32, Threshold: 0.9}
	res, err := c.Evaluate(specTest, tgtTest)
	if err != nil {
		t.Fatal(err)
	}
	if res.PassRate <= 0 || res.PassRate > 1 {
		t.Fatalf("pass rate %v", res.PassRate)
	}
	// Cascading with a strong target cannot be much worse than spec alone.
	if res.Accuracy < res.SpecOnlyAccuracy-0.05 {
		t.Fatalf("cascade accuracy %v below spec-only %v", res.Accuracy, res.SpecOnlyAccuracy)
	}

	// Threshold sweep: pass rate must rise monotonically with threshold.
	sweep, err := c.SweepThresholds(specTest, tgtTest, []float64{0, 0.5, 0.9, 1.01})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].PassRate < sweep[i-1].PassRate {
			t.Fatalf("pass rate not monotone: %+v", sweep)
		}
	}
	// Threshold 0: nothing passes; spec decides everything.
	if sweep[0].PassRate != 0 {
		t.Fatalf("threshold 0 pass rate %v", sweep[0].PassRate)
	}
	if math.Abs(sweep[0].Accuracy-res.SpecOnlyAccuracy) > 1e-9 {
		t.Fatal("threshold-0 accuracy should equal spec-only accuracy")
	}
	// Threshold > 1: everything passes; accuracy equals target accuracy.
	if sweep[3].PassRate != 1 {
		t.Fatalf("threshold 1.01 pass rate %v", sweep[3].PassRate)
	}
	if math.Abs(sweep[3].Accuracy-targetAcc) > 1e-9 {
		t.Fatalf("all-pass accuracy %v vs target accuracy %v", sweep[3].Accuracy, targetAcc)
	}
}

func TestEvaluateValidation(t *testing.T) {
	c := Cascade{}
	if _, err := c.Evaluate(nil, nil); err == nil {
		t.Fatal("empty sets should error")
	}
	a := []nn.Sample{{Label: 0}}
	b := []nn.Sample{{Label: 1}}
	if _, err := c.Evaluate(a, b); err == nil {
		t.Fatal("label mismatch should error")
	}
}
