// Package tahoma implements the Tahoma baseline (Anderson et al., ICDE
// 2019): classification query processing with cascades of specialized NNs
// in front of an accurate target DNN. Images whose specialized-model
// confidence clears a threshold take the cheap exit; the rest pass through
// to the target. Tahoma's cost model (the paper's Eq. 3) ignores
// pipelining, which Table 3 and §8.3 quantify.
package tahoma

import (
	"fmt"
	"math"
	"math/rand"

	"smol/internal/nn"
	"smol/internal/tensor"
)

// TinyCNNConfig describes one specialized model: a small conv net at a
// (possibly reduced) input resolution. The paper's Tahoma trains 24 such
// models; its evaluation uses a representative 8.
type TinyCNNConfig struct {
	Name string
	// Widths are the channel counts of successive conv-pool stages.
	Widths []int
	// InputRes is the square input resolution the model runs at.
	InputRes int
}

// SpecConfigs returns the 8 representative specialized-model
// configurations used as the Tahoma baseline (width x depth x resolution
// grid).
func SpecConfigs(fullRes int) []TinyCNNConfig {
	half := fullRes / 2
	return []TinyCNNConfig{
		{Name: "tiny-4", Widths: []int{4}, InputRes: half},
		{Name: "tiny-8", Widths: []int{8}, InputRes: half},
		{Name: "tiny-4x8", Widths: []int{4, 8}, InputRes: half},
		{Name: "tiny-8x16", Widths: []int{8, 16}, InputRes: half},
		{Name: "small-8", Widths: []int{8}, InputRes: fullRes},
		{Name: "small-16", Widths: []int{16}, InputRes: fullRes},
		{Name: "small-8x16", Widths: []int{8, 16}, InputRes: fullRes},
		{Name: "small-16x32", Widths: []int{16, 32}, InputRes: fullRes},
	}
}

// NewTinyCNN builds a specialized model: conv-bn-relu-maxpool stages, then
// global average pooling and a linear classifier.
func NewTinyCNN(rng *rand.Rand, cfg TinyCNNConfig, numClasses int) (*nn.Model, error) {
	if len(cfg.Widths) == 0 || numClasses <= 0 {
		return nil, fmt.Errorf("tahoma: invalid config %+v", cfg)
	}
	res := cfg.InputRes
	var layers []nn.Layer
	inC := 3
	for _, w := range cfg.Widths {
		if res < 2 {
			return nil, fmt.Errorf("tahoma: input resolution %d too small for %d stages",
				cfg.InputRes, len(cfg.Widths))
		}
		layers = append(layers,
			nn.NewConv2D(rng, inC, w, 3, 1, 1),
			nn.NewBatchNorm2D(w),
			&nn.ReLU{},
			&nn.MaxPool2{},
		)
		inC = w
		res /= 2
	}
	layers = append(layers, &nn.GlobalAvgPool{}, nn.NewLinear(rng, inC, numClasses))
	return &nn.Model{Layers: layers}, nil
}

// Cascade pairs a trained specialized model with a target model and a
// confidence threshold.
type Cascade struct {
	Name string
	Spec *nn.Model
	// SpecRes is the input resolution the specialized model expects.
	SpecRes int
	Target  *nn.Model
	// TargetRes is the input resolution the target model expects.
	TargetRes int
	// Threshold is the minimum specialized-model confidence (max softmax
	// probability) for taking the cheap exit.
	Threshold float64
}

// EvalResult reports cascade behaviour on a labelled set.
type EvalResult struct {
	// Accuracy is the end-to-end cascade accuracy.
	Accuracy float64
	// PassRate is the fraction of inputs forwarded to the target model
	// (the alpha of Eq. 2/3).
	PassRate float64
	// SpecOnlyAccuracy is the specialized model's standalone accuracy.
	SpecOnlyAccuracy float64
}

// Evaluate runs the cascade over aligned sample sets: specSamples at
// SpecRes and targetSamples at TargetRes, index-aligned with identical
// labels.
func (c Cascade) Evaluate(specSamples, targetSamples []nn.Sample) (EvalResult, error) {
	if len(specSamples) != len(targetSamples) {
		return EvalResult{}, fmt.Errorf("tahoma: sample sets misaligned (%d vs %d)",
			len(specSamples), len(targetSamples))
	}
	if len(specSamples) == 0 {
		return EvalResult{}, fmt.Errorf("tahoma: empty evaluation set")
	}
	correct, passed, specCorrect := 0, 0, 0
	for i := range specSamples {
		s := specSamples[i]
		if s.Label != targetSamples[i].Label {
			return EvalResult{}, fmt.Errorf("tahoma: label mismatch at %d", i)
		}
		pred, conf := PredictWithConfidence(c.Spec, s.X)
		if pred == s.Label {
			specCorrect++
		}
		final := pred
		if conf < c.Threshold {
			passed++
			tp, _ := PredictWithConfidence(c.Target, targetSamples[i].X)
			final = tp
		}
		if final == s.Label {
			correct++
		}
	}
	n := float64(len(specSamples))
	return EvalResult{
		Accuracy:         float64(correct) / n,
		PassRate:         float64(passed) / n,
		SpecOnlyAccuracy: float64(specCorrect) / n,
	}, nil
}

// PredictWithConfidence runs a single sample through the model and returns
// the argmax class and its softmax probability.
func PredictWithConfidence(m *nn.Model, x *tensor.Tensor) (int, float64) {
	batch := tensor.FromData(x.Data, 1, x.Shape[0], x.Shape[1], x.Shape[2])
	logits := m.Forward(batch, false)
	k := logits.Shape[1]
	best := 0
	for j := 1; j < k; j++ {
		if logits.Data[j] > logits.Data[best] {
			best = j
		}
	}
	// Stable softmax for the winning probability.
	maxv := float64(logits.Data[best])
	var sum float64
	for j := 0; j < k; j++ {
		sum += math.Exp(float64(logits.Data[j]) - maxv)
	}
	return best, 1 / sum
}

// SweepThresholds evaluates the cascade at several confidence thresholds,
// tracing its accuracy/pass-rate curve (each point is one Tahoma plan).
func (c Cascade) SweepThresholds(specSamples, targetSamples []nn.Sample, thresholds []float64) ([]EvalResult, error) {
	out := make([]EvalResult, 0, len(thresholds))
	for _, th := range thresholds {
		cc := c
		cc.Threshold = th
		r, err := cc.Evaluate(specSamples, targetSamples)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
