package smol

import (
	"fmt"
	"runtime"
	"time"

	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/codec/vid"
	"smol/internal/costmodel"
	"smol/internal/hw"
	"smol/internal/img"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

// QoS is a serving quality target, set per runtime (RuntimeConfig.QoS) and
// overridable per request (Server.ClassifyQoS). The zero value asks for
// maximum throughput: the planner picks the cheapest zoo entry with no
// accuracy floor.
type QoS struct {
	// MinAccuracy requires the chosen zoo entry's measured validation
	// accuracy to be at least this floor; among feasible entries the
	// planner maximizes predicted throughput.
	MinAccuracy float64
	// MaxLatencyUS caps the predicted worst-case per-image latency in
	// microseconds (the latency-constrained deployment of §3.1). Zero
	// means unconstrained.
	MaxLatencyUS float64
}

// ServePlan is the planner's decision for one request: the zoo entry it
// routed the request to, the joint decode/preprocessing plan for the
// request's input class, and the calibrated cost-model predictions that
// justified the choice. smol-query -explain prints it next to the measured
// throughput.
type ServePlan struct {
	// Entry is the chosen zoo entry ("variant@res", "variant@res/int8").
	Entry string
	// Variant and InputRes split Entry into its parts.
	Variant  string
	InputRes int
	// Precision is the numeric tier the request runs at: PrecisionFP32 or
	// PrecisionInt8. Strict accuracy floors keep bit-identical f32; floors
	// below an int8 twin's measured accuracy get the fast tier.
	Precision string
	// Accuracy is the effective accuracy the planner's QoS floor was
	// checked against: the entry's measured validation accuracy, minus
	// any decode-fidelity penalties on video plans (deblocking disabled,
	// undersized stored rendition).
	Accuracy float64
	// InputFormat describes the representative input class the plan was
	// selected for (codec and encoded dimensions of the request's first
	// image).
	InputFormat string
	// DecodeScale is the reduced decode factor the joint plan chose for
	// that input class (1 = full-resolution decode).
	DecodeScale int
	// Deblock reports whether the in-loop deblocking filter runs during
	// decode (video requests only; false is the reduced-fidelity fast
	// decode of §6.4). Still-image plans leave it false.
	Deblock bool
	// Stream is the natively-stored rendition the video planner routed the
	// request to: 0 is the primary stream, n > 0 is VideoOpts.Variants[n-1]
	// (the paper's natively-present low-resolution lever). Still-image
	// plans leave it 0.
	Stream int
	// Preproc names the optimized post-decode operator chain.
	Preproc string
	// PredictedThroughput is the calibrated Eq. 4 estimate (im/s) for this
	// plan on the live machine.
	PredictedThroughput float64
	// PredictedLatencyUS is the calibrated worst-case per-image latency
	// estimate.
	PredictedLatencyUS float64
}

func (p ServePlan) String() string {
	prec := p.Precision
	if prec == "" {
		prec = PrecisionFP32
	}
	return fmt.Sprintf("%s [%s] on %s: decode 1/%d, %s, predicted %.0f im/s (acc %.3f)",
		p.Entry, prec, p.InputFormat, p.DecodeScale, p.Preproc, p.PredictedThroughput, p.Accuracy)
}

// selKey memoizes planner decisions per (input class, QoS) pair.
type selKey struct {
	w, h  int
	codec Codec
	qos   QoS
}

// selection is one memoized planner decision.
type selection struct {
	entry *rtEntry
	plan  ServePlan
}

// maxCachedSelections bounds the planner's memo; beyond it the memo resets
// (selections are cheap to recompute — the expensive parts, calibration
// and ingest-plan compilation, have their own caches).
const maxCachedSelections = 256

// planFor picks the zoo entry for one request: it peeks at the first
// input's header to establish the request's input class, builds the
// calibrated D x F plan space (every zoo entry against that class, each
// with its jointly optimized decode scale and preprocessing chain), and
// selects the best plan under the QoS constraint — the paper's joint
// preprocessing/inference optimization running live inside the serving
// path.
func (r *Runtime) planFor(inputs []MediaInput, qos QoS) (*rtEntry, ServePlan, error) {
	if len(inputs) == 0 {
		// An empty request has no input class to cost and no work to
		// bound: route it by accuracy alone (no calibration, no plan
		// search) so it stays the no-op it always was, while a genuinely
		// unsatisfiable accuracy floor still fails loudly.
		var best *rtEntry
		for _, ent := range r.entries {
			if ent.Accuracy >= qos.MinAccuracy && (best == nil || ent.Accuracy > best.Accuracy) {
				best = ent
			}
		}
		if best == nil {
			return nil, ServePlan{}, fmt.Errorf("smol: no zoo entry meets accuracy floor %v", qos.MinAccuracy)
		}
		return best, ServePlan{Entry: best.name, Variant: best.Variant,
			InputRes: best.InputRes, Precision: best.PrecisionLabel(),
			Accuracy: best.Accuracy, DecodeScale: 1}, nil
	}
	if inputs[0].Codec == CodecVideo {
		return nil, ServePlan{}, fmt.Errorf("smol: video streams are served by ClassifyVideo/EstimateMean, not Classify")
	}
	w, h, err := peekDims(inputs[0])
	if err != nil {
		return nil, ServePlan{}, fmt.Errorf("smol: reading input header: %w", err)
	}
	key := selKey{w: w, h: h, codec: inputs[0].Codec, qos: qos}
	r.selMu.Lock()
	sel, ok := r.sels[key]
	r.selMu.Unlock()
	if ok {
		return sel.entry, sel.plan, nil
	}
	sel, err = r.selectPlan(key)
	if err != nil {
		return nil, ServePlan{}, err
	}
	r.selMu.Lock()
	if len(r.sels) >= maxCachedSelections {
		r.sels = make(map[selKey]selection)
	}
	r.sels[key] = sel
	r.selMu.Unlock()
	return sel.entry, sel.plan, nil
}

// selectPlan runs the calibrated plan search for one (input class, QoS)
// pair and lowers the winner into a ServePlan.
func (r *Runtime) selectPlan(key selKey) (selection, error) {
	env := costmodel.DefaultEnv()
	env.VCPUs = r.workerCount()
	env.BatchSize = r.batchSize()
	env.Calibration = r.calibrate()

	kind := hw.FormatJPEG
	if key.codec == CodecPNG {
		kind = hw.FormatPNG
	}
	format := costmodel.Format{
		Name: fmt.Sprintf("%s %dx%d", key.codec, key.w, key.h),
		Kind: kind, W: key.w, H: key.h, Quality: 90,
	}

	// Build one candidate plan per zoo entry, with the same joint
	// decode-scale + preprocessing optimization the ingest compiler runs,
	// so the predicted plan is the one the runtime will actually execute.
	plans := make([]costmodel.Plan, 0, len(r.entries))
	for _, ent := range r.entries {
		var scales []int
		if key.codec == CodecJPEG && !r.cfg.DisableScaledDecode {
			scales = jpegDecodeScales
		}
		specW, specH := key.w, key.h
		entFormat := format
		if key.codec == CodecJPEG && r.cfg.ROIDecode {
			// The executed ingest plan decodes only the MCU-aligned cover
			// of the central crop; cost the same geometry. The stream's
			// real MCU size is unknown until decode, so assume the
			// worst-case 16px grid (4:2:0) — at most one MCU of slack per
			// edge against what ingestFor will compile.
			_, region := roiGeometry(key.w, key.h, ent.InputRes, 16)
			specW, specH = region.W(), region.H()
			entFormat.ROIFraction = float64(specW*specH) / float64(key.w*key.h)
		}
		spec := preproc.ServeSpec(specW, specH, ent.InputRes, r.cfg.Mean, r.cfg.Std, scales)
		pplan, err := preproc.Optimize(spec)
		if err != nil {
			return selection{}, fmt.Errorf("smol: optimizing preproc for %s: %w", ent.name, err)
		}
		p := costmodel.Plan{
			DNN: costmodel.DNNChoice{
				Name: ent.name, InputRes: ent.InputRes, Accuracy: ent.Accuracy,
			},
			Format: entFormat, Preproc: pplan, PreprocSpec: spec,
		}
		if sc := pplan.DecodeScale(); sc > 1 {
			p.Format.DecodeScale = sc
		}
		plans = append(plans, p)
	}
	evals, err := costmodel.Evaluate(plans, env)
	if err != nil {
		return selection{}, err
	}
	best, err := costmodel.Select(evals, costmodel.Constraint{
		MinAccuracy:  key.qos.MinAccuracy,
		MaxLatencyUS: key.qos.MaxLatencyUS,
	})
	if err != nil {
		return selection{}, fmt.Errorf("smol: no zoo entry satisfies QoS %+v: %w", key.qos, err)
	}
	ent := r.byName[best.Plan.DNN.Name]
	if ent == nil {
		return selection{}, fmt.Errorf("smol: planner chose unknown entry %q", best.Plan.DNN.Name)
	}
	return selection{
		entry: ent,
		plan: ServePlan{
			Entry:               ent.name,
			Variant:             ent.Variant,
			InputRes:            ent.InputRes,
			Precision:           ent.PrecisionLabel(),
			Accuracy:            ent.Accuracy,
			InputFormat:         format.Name,
			DecodeScale:         best.Plan.Preproc.DecodeScale(),
			Preproc:             best.Plan.Preproc.Describe(),
			PredictedThroughput: best.Throughput,
			PredictedLatencyUS:  best.LatencyUS,
		},
	}, nil
}

// peekDims reads the encoded dimensions from an input's header without
// decoding it. Unknown codecs fail here, at planning time, with the same
// verdict the prep workers would reach later.
func peekDims(in MediaInput) (w, h int, err error) {
	switch in.Codec {
	case CodecJPEG:
		return jpeg.DecodeHeader(in.Data)
	case CodecPNG:
		return spng.DecodeHeader(in.Data)
	case CodecVideo:
		info, err := vid.Probe(in.Data)
		if err != nil {
			return 0, 0, err
		}
		return info.W, info.H, nil
	default:
		return 0, 0, fmt.Errorf("smol: unsupported codec %v", in.Codec)
	}
}

func (r *Runtime) workerCount() int {
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	if r.cfg.Opts.DisableThreading {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

func (r *Runtime) batchSize() int {
	if r.cfg.BatchSize > 0 {
		return r.cfg.BatchSize
	}
	return 32
}

// calibrate measures this machine once per runtime: every zoo entry's real
// per-image forward time (through the same compiled plan serving uses) and
// the ratio of live to modeled CPU preprocessing cost. The planner's
// estimators then rank plans by the hardware they are actually running on
// — the live counterpart of the BENCH_*.json tracking — instead of the
// paper's static testbed profiles.
func (r *Runtime) calibrate() *hw.Calibration {
	r.calOnce.Do(func() {
		cal := &hw.Calibration{ExecUS: make(map[string]float64, len(r.entries))}
		for _, ent := range r.entries {
			cal.ExecUS[ent.name] = r.measureExecUS(ent)
		}
		cal.PreprocScale = r.measurePreprocScale()
		r.cal = cal
	})
	return r.cal
}

// videoCalibrate extends the base calibration with the video decode
// reference measurement, lazily on the first video request so still-only
// servers never pay for it. The write is ordered before every video
// planner's read by the sync.Once.
func (r *Runtime) videoCalibrate() *hw.Calibration {
	cal := r.calibrate()
	r.vidCalOnce.Do(func() {
		cal.VideoScale = r.measureVideoScale()
	})
	return cal
}

// clampScale bounds a measured/modeled cost ratio against pathological
// measurements (debuggers, contended CI machines).
func clampScale(scale float64) float64 {
	if scale < 0.02 {
		return 0.02
	}
	if scale > 50 {
		return 50
	}
	return scale
}

// measureExecUS times one entry's batch forward (best of a few warm runs)
// and returns microseconds per image.
func (r *Runtime) measureExecUS(ent *rtEntry) float64 {
	n := 4
	if bs := r.batchSize(); bs < n {
		n = bs
	}
	x := tensor.New(n, 3, ent.InputRes, ent.InputRes)
	preds := make([]int, n)
	run := func() time.Duration {
		start := time.Now()
		if ent.qplan != nil {
			ent.qplan.PredictInto(x, preds)
		} else if ent.plan != nil {
			ent.plan.PredictInto(x, preds)
		} else {
			ent.execMu.Lock()
			ent.Model.Predict(x)
			ent.execMu.Unlock()
		}
		return time.Since(start)
	}
	run() // warm arenas and layer caches
	best := run()
	if d := run(); d < best {
		best = d
	}
	return best.Seconds() * 1e6 / float64(n)
}

// measurePreprocScale times a fixed reference decode+preprocess workload
// and returns the live/modeled cost ratio.
func (r *Runtime) measurePreprocScale() float64 {
	const refW, refH, refRes = 192, 192, 64
	m := img.New(refW, refH)
	for y := 0; y < refH; y++ {
		for x := 0; x < refW; x++ {
			m.Set(x, y, uint8(x*3), uint8(y*5), uint8((x+y)*2))
		}
	}
	enc := jpeg.Encode(m, jpeg.EncodeOptions{Quality: 90})
	spec := preproc.ServeSpec(refW, refH, refRes, r.cfg.Mean, r.cfg.Std, nil)
	plan, err := preproc.Optimize(spec)
	if err != nil {
		return 1
	}
	ex := preproc.NewExecutor()
	out := tensor.New(3, refRes, refRes)
	run := func() (time.Duration, error) {
		start := time.Now()
		dec, err := jpeg.Decode(enc)
		if err != nil {
			return 0, err
		}
		if err := ex.Execute(plan, dec, out); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if _, err := run(); err != nil { // warm the executor scratch
		return 1
	}
	best, err := run()
	if err != nil {
		return 1
	}
	if d, err := run(); err == nil && d < best {
		best = d
	}
	modeled := hw.DecodeCostUS(hw.DecodeSpec{Format: hw.FormatJPEG, W: refW, H: refH, Quality: 90})
	for _, oc := range preproc.OpCosts(plan, spec) {
		modeled += hw.PostprocCostUS(oc)
	}
	if modeled <= 0 {
		return 1
	}
	return clampScale(best.Seconds() * 1e6 / modeled)
}

// measureVideoScale times a fixed reference vid decode (a short clip with
// real motion, so P-frames exercise compensation and residual coding) and
// returns the live/modeled cost ratio — the video counterpart of
// measurePreprocScale, feeding hw.Calibration.VideoScale.
func (r *Runtime) measureVideoScale() float64 {
	const refW, refH, refFrames, refGOP = 64, 48, 8, 4
	frames := make([]*img.Image, refFrames)
	for f := range frames {
		m := img.New(refW, refH)
		for y := 0; y < refH; y++ {
			for x := 0; x < refW; x++ {
				m.Set(x, y, uint8(x*4), uint8(y*5), uint8((x+y)*2))
			}
		}
		// A moving bright bar gives the encoder real motion to chase.
		for y := refH / 3; y < 2*refH/3; y++ {
			for x := 0; x < refW/8; x++ {
				m.Set((x+f*3)%refW, y, 250, 240, 200)
			}
		}
		frames[f] = m
	}
	enc, err := vid.Encode(frames, vid.EncodeOptions{Quality: 70, GOP: refGOP})
	if err != nil {
		return 1
	}
	var dst *img.Image
	run := func() (time.Duration, error) {
		dec, err := vid.NewDecoder(enc, vid.DecodeOptions{})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for {
			m, err := dec.NextInto(dst)
			if err == vid.ErrEndOfStream {
				break
			}
			if err != nil {
				return 0, err
			}
			dst = m
		}
		return time.Since(start), nil
	}
	if _, err := run(); err != nil { // warm the decoder path
		return 1
	}
	best, err := run()
	if err != nil {
		return 1
	}
	if d, err := run(); err == nil && d < best {
		best = d
	}
	modeled := hw.DecodeCostUS(hw.DecodeSpec{
		Format: hw.FormatVideoH264, W: refW, H: refH, GOP: refGOP,
	}) * refFrames
	if modeled <= 0 {
		return 1
	}
	return clampScale(best.Seconds() * 1e6 / modeled)
}
